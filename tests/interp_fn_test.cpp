//===--- tests/interp_fn_test.cpp - function-level interpreter tests ----------===//
//
// Direct tests of the MidIR evaluator on hand-built IR functions: operator
// semantics, control flow (If/Yield/Exit), image ops, and error paths.
//
//===----------------------------------------------------------------------===//

#include <cmath>

#include <gtest/gtest.h>

#include "interp/interp.h"
#include "kernels/kernel.h"
#include "ir/builder.h"
#include "synth/synth.h"

namespace diderot {
namespace {

using interp::CallResult;
using interp::evalFunction;
using interp::RtVal;
using ir::Builder;
using ir::Op;
using ir::ValueId;

double asReal(const RtVal &V) { return std::get<Tensor>(V).asScalar(); }

/// Evaluate a single-op function f(args) = op(args).
template <typename BuildFn>
Result<CallResult> evalWith(std::vector<Type> ParamTys,
                            std::vector<RtVal> Args, BuildFn &&Build) {
  ir::Function F;
  F.Name = "t";
  Builder B(F);
  std::vector<ValueId> Params;
  for (Type &T : ParamTys)
    Params.push_back(B.addParam(std::move(T)));
  ValueId R = Build(B, Params);
  F.ResultTypes = {F.typeOf(R)};
  B.exit(ir::ExitAttr::Continue, {R});
  B.finish();
  std::vector<RtVal> Globals;
  return evalFunction(F, Args, Globals);
}

TEST(InterpFn, ScalarArithmetic) {
  auto R = evalWith({Type::real(), Type::real()},
                    {Tensor::scalar(3.0), Tensor::scalar(4.0)},
                    [](Builder &B, const std::vector<ValueId> &P) {
                      ValueId M = B.emit(Op::Mul, {P[0], P[1]}, Type::real());
                      return B.emit(Op::Add, {M, P[0]}, Type::real());
                    });
  ASSERT_TRUE(R.isOk()) << R.message();
  EXPECT_DOUBLE_EQ(asReal(R->Results[0]), 15.0);
}

TEST(InterpFn, IntegerOps) {
  auto R = evalWith({Type::integer(), Type::integer()},
                    {int64_t(17), int64_t(5)},
                    [](Builder &B, const std::vector<ValueId> &P) {
                      ValueId D = B.emit(Op::Div, {P[0], P[1]},
                                         Type::integer());
                      ValueId M = B.emit(Op::Mod, {P[0], P[1]},
                                         Type::integer());
                      return B.emit(Op::Mul, {D, M}, Type::integer());
                    });
  ASSERT_TRUE(R.isOk());
  EXPECT_EQ(std::get<int64_t>(R->Results[0]), 3 * 2);
}

TEST(InterpFn, DivisionByZeroIsAnError) {
  auto R = evalWith({Type::integer()}, {int64_t(1)},
                    [](Builder &B, const std::vector<ValueId> &P) {
                      ValueId Z = B.constInt(0);
                      return B.emit(Op::Div, {P[0], Z}, Type::integer());
                    });
  ASSERT_FALSE(R.isOk());
  EXPECT_NE(R.message().find("division by zero"), std::string::npos);
}

TEST(InterpFn, TensorOpsAndIndexing) {
  Tensor M(Shape{2, 2}, {1, 2, 3, 4});
  auto R = evalWith({Type::tensor(Shape{2, 2})}, {M},
                    [](Builder &B, const std::vector<ValueId> &P) {
                      ValueId T = B.emit(Op::Transpose, {P[0]},
                                         Type::tensor(Shape{2, 2}));
                      return B.emit(Op::TensorIndex, {T}, Type::real(),
                                    std::vector<int>{0, 1});
                    });
  ASSERT_TRUE(R.isOk());
  EXPECT_DOUBLE_EQ(asReal(R->Results[0]), 3.0); // transpose swaps (0,1)
}

TEST(InterpFn, IfSelectsRegion) {
  for (bool Cond : {true, false}) {
    auto R = evalWith(
        {Type::boolean()}, {Cond},
        [](Builder &B, const std::vector<ValueId> &P) {
          B.pushRegion();
          ValueId T = B.constReal(1.0);
          B.yield({T});
          ir::Region Then = B.popRegion();
          B.pushRegion();
          ValueId E = B.constReal(2.0);
          B.yield({E});
          ir::Region Else = B.popRegion();
          return B.emitIf(P[0], std::move(Then), std::move(Else),
                          {Type::real()})[0];
        });
    ASSERT_TRUE(R.isOk());
    EXPECT_DOUBLE_EQ(asReal(R->Results[0]), Cond ? 1.0 : 2.0);
  }
}

TEST(InterpFn, ExitInsideIfPropagates) {
  // if (c) exit[stabilize](42) else yield; exit[continue](7)
  ir::Function F;
  F.Name = "t";
  F.ResultTypes = {Type::real()};
  Builder B(F);
  ValueId C = B.addParam(Type::boolean());
  B.pushRegion();
  ValueId V42 = B.constReal(42.0);
  B.exit(ir::ExitAttr::Stabilize, {V42});
  ir::Region Then = B.popRegion();
  B.pushRegion();
  B.yield({});
  ir::Region Else = B.popRegion();
  B.emitIf(C, std::move(Then), std::move(Else), {});
  ValueId V7 = B.constReal(7.0);
  B.exit(ir::ExitAttr::Continue, {V7});
  B.finish();

  std::vector<RtVal> Globals;
  auto R1 = evalFunction(F, {RtVal(true)}, Globals);
  ASSERT_TRUE(R1.isOk());
  EXPECT_EQ(R1->Kind, ir::ExitAttr::Stabilize);
  EXPECT_DOUBLE_EQ(asReal(R1->Results[0]), 42.0);
  auto R2 = evalFunction(F, {RtVal(false)}, Globals);
  ASSERT_TRUE(R2.isOk());
  EXPECT_EQ(R2->Kind, ir::ExitAttr::Continue);
  EXPECT_DOUBLE_EQ(asReal(R2->Results[0]), 7.0);
}

TEST(InterpFn, GlobalsAreReadable) {
  ir::Function F;
  F.Name = "t";
  F.ResultTypes = {Type::real()};
  Builder B(F);
  ValueId G = B.emit(Op::GlobalGet, {}, Type::real(), int64_t(1));
  B.exit(ir::ExitAttr::Continue, {G});
  B.finish();
  std::vector<RtVal> Globals = {RtVal(int64_t(5)), RtVal(Tensor::scalar(9.5))};
  auto R = evalFunction(F, {}, Globals);
  ASSERT_TRUE(R.isOk());
  EXPECT_DOUBLE_EQ(asReal(R->Results[0]), 9.5);
}

TEST(InterpFn, ImageOpsProbeMachinery) {
  // WorldToImage + InsideTest + VoxelLoad against a known image.
  auto Img = std::make_shared<const Image>(
      synth::sampledPolynomial2d(8, 0, 1, 0, 0)); // f = x over [-1,1]
  ir::Function F;
  F.Name = "t";
  F.ResultTypes = {Type::real(), Type::boolean()};
  Builder B(F);
  ValueId ImgV = B.addParam(Type::image(2, Shape{}));
  ValueId Pos = B.addParam(Type::vec(2));
  ValueId Xi = B.emit(Op::WorldToImage, {ImgV, Pos}, Type::vec(2));
  ValueId X0 = B.emit(Op::TensorIndex, {Xi}, Type::real(),
                      std::vector<int>{0});
  ValueId Fl = B.emit(Op::Floor, {X0}, Type::real());
  ValueId N0 = B.emit(Op::RealToInt, {Fl}, Type::integer());
  ValueId X1 = B.emit(Op::TensorIndex, {Xi}, Type::real(),
                      std::vector<int>{1});
  ValueId Fl1 = B.emit(Op::Floor, {X1}, Type::real());
  ValueId N1 = B.emit(Op::RealToInt, {Fl1}, Type::integer());
  ValueId In = B.emit(Op::InsideTest, {ImgV, N0, N1}, Type::boolean(),
                      int64_t(1));
  ValueId V = B.emit(Op::VoxelLoad, {ImgV, N0, N1}, Type::real(),
                     ir::VoxelAttr{{0, 0}, 0});
  B.exit(ir::ExitAttr::Continue, {V, In});
  B.finish();

  std::vector<RtVal> Globals;
  // World (0,0) maps to index (3.5, 3.5): voxel (3,3) holds f(x_3) where
  // x_3 = -1 + 2*3/7.
  Tensor P{Shape{2}};
  auto R = evalFunction(F, {RtVal(Img), RtVal(P)}, Globals);
  ASSERT_TRUE(R.isOk()) << R.message();
  EXPECT_NEAR(asReal(R->Results[0]), -1.0 + 2.0 * 3 / 7, 1e-12);
  EXPECT_TRUE(std::get<bool>(R->Results[1]));
}

TEST(InterpFn, KernelWeightMatchesKernelLibrary) {
  ir::Function F;
  F.Name = "t";
  F.ResultTypes = {Type::real()};
  Builder B(F);
  ValueId Frac = B.addParam(Type::real());
  ValueId W = B.emit(Op::KernelWeight, {Frac}, Type::real(),
                     ir::KernelWeightAttr{"ctmr", 1, -1});
  B.exit(ir::ExitAttr::Continue, {W});
  B.finish();
  std::vector<RtVal> Globals;
  auto R = evalFunction(F, {RtVal(Tensor::scalar(0.3))}, Globals);
  ASSERT_TRUE(R.isOk());
  Kernel D = kernels::ctmr().derivative();
  EXPECT_NEAR(asReal(R->Results[0]), D.weightPoly(-1).eval(0.3), 1e-14);
}

TEST(InterpFn, MissingExitIsAnError) {
  ir::Function F;
  F.Name = "t";
  F.ResultTypes = {};
  Builder B(F);
  B.yield({}); // yield at function level: runs off the end
  B.finish();
  std::vector<RtVal> Globals;
  auto R = evalFunction(F, {}, Globals);
  ASSERT_FALSE(R.isOk());
  EXPECT_NE(R.message().find("without Exit"), std::string::npos);
}

TEST(InterpFn, MathFunctions) {
  auto R = evalWith({Type::real()}, {Tensor::scalar(0.5)},
                    [](Builder &B, const std::vector<ValueId> &P) {
                      ValueId S = B.emit(Op::Asin, {P[0]}, Type::real());
                      ValueId C = B.emit(Op::Cos, {S}, Type::real());
                      return B.emit(Op::Atan2, {P[0], C}, Type::real());
                    });
  ASSERT_TRUE(R.isOk());
  double S = std::asin(0.5);
  EXPECT_NEAR(asReal(R->Results[0]), std::atan2(0.5, std::cos(S)), 1e-14);
}

TEST(InterpFn, SelectAndLogic) {
  auto R = evalWith(
      {Type::boolean(), Type::real(), Type::real()},
      {true, Tensor::scalar(1.0), Tensor::scalar(2.0)},
      [](Builder &B, const std::vector<ValueId> &P) {
        ValueId NotC = B.emit(Op::Not, {P[0]}, Type::boolean());
        return B.emit(Op::Select, {NotC, P[1], P[2]}, Type::real());
      });
  ASSERT_TRUE(R.isOk());
  EXPECT_DOUBLE_EQ(asReal(R->Results[0]), 2.0);
}

} // namespace
} // namespace diderot

//===--- tests/http_test.cpp - hardened HTTP parser and mini-server ----------===//
//
// Part of the Diderot-C++ reproduction (PLDI 2012).
//
// The malformed-request corpus for support/http.h's pure parser — every
// rejection path gets a case — plus live-socket tests of the server's
// hardening behavior (400/413/408, one request per connection).
//
//===----------------------------------------------------------------------===//

#include "support/http.h"

#include <cstring>
#include <string>

#if defined(__unix__) || defined(__APPLE__)
#define HAVE_SOCKETS 1
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

#include <gtest/gtest.h>

using namespace diderot;
using http::Parse;
using http::ParseLimits;
using http::Request;

namespace {

Parse parse(const std::string &Wire, Request &R,
            const ParseLimits &L = ParseLimits()) {
  std::string Err;
  return http::parseRequest(Wire, R, Err, L);
}

Parse parse(const std::string &Wire, const ParseLimits &L = ParseLimits()) {
  Request R;
  return parse(Wire, R, L);
}

} // namespace

//===----------------------------------------------------------------------===//
// Valid requests
//===----------------------------------------------------------------------===//

TEST(HttpParse, SimpleGet) {
  Request R;
  ASSERT_EQ(parse("GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n", R), Parse::Ok);
  EXPECT_EQ(R.Method, "GET");
  EXPECT_EQ(R.Path, "/metrics");
  EXPECT_EQ(R.Query, "");
  EXPECT_EQ(R.Version, "HTTP/1.1");
  EXPECT_EQ(R.header("host"), "x");
}

TEST(HttpParse, PostWithBody) {
  Request R;
  ASSERT_EQ(parse("POST /run HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello", R),
            Parse::Ok);
  EXPECT_EQ(R.Body, "hello");
}

TEST(HttpParse, BodyMayContainBareLfAndControlBytes) {
  // The head scan must not extend into the body.
  Request R;
  std::string Body = "a\nb\001c"; // octal escape: "\x01c" would swallow the c
  ASSERT_EQ(parse("POST / HTTP/1.1\r\nContent-Length: 5\r\n\r\n" + Body, R),
            Parse::Ok);
  EXPECT_EQ(R.Body, Body);
}

TEST(HttpParse, RepeatedHeadersPreservedInOrder) {
  Request R;
  ASSERT_EQ(parse("POST / HTTP/1.1\r\nX-Diderot-Input: a=1\r\n"
                  "X-Diderot-Input: b=2\r\nContent-Length: 0\r\n\r\n",
                  R),
            Parse::Ok);
  auto Vals = R.headerValues("x-diderot-input");
  ASSERT_EQ(Vals.size(), 2u);
  EXPECT_EQ(Vals[0], "a=1");
  EXPECT_EQ(Vals[1], "b=2");
}

TEST(HttpParse, HeaderNamesLowerCasedValuesTrimmed) {
  Request R;
  ASSERT_EQ(parse("GET / HTTP/1.0\r\nX-ThInG:  padded \r\n\r\n", R),
            Parse::Ok);
  EXPECT_EQ(R.header("x-thing"), "padded");
}

TEST(HttpParse, QueryStringDecoding) {
  Request R;
  ASSERT_EQ(parse("GET /jobs?id=j%2D1&name=a+b HTTP/1.1\r\n\r\n", R),
            Parse::Ok);
  EXPECT_EQ(R.Path, "/jobs");
  EXPECT_EQ(R.queryParam("id"), "j-1");
  EXPECT_EQ(R.queryParam("name"), "a b");
  EXPECT_EQ(R.queryParam("absent"), "");
}

TEST(HttpParse, IdenticalContentLengthsAgree) {
  // Repetition with the same value is legal per RFC 7230.
  EXPECT_EQ(parse("POST / HTTP/1.1\r\nContent-Length: 2\r\n"
                  "Content-Length: 2\r\n\r\nab"),
            Parse::Ok);
}

//===----------------------------------------------------------------------===//
// Incremental reads (prefixes are NeedMore, never Bad)
//===----------------------------------------------------------------------===//

TEST(HttpParse, PrefixesNeedMore) {
  const std::string Full =
      "POST /run HTTP/1.1\r\nContent-Length: 4\r\n\r\nbody";
  // Every strict prefix must be NeedMore; the whole thing Ok.
  for (size_t N = 0; N < Full.size(); ++N)
    ASSERT_EQ(parse(Full.substr(0, N)), Parse::NeedMore) << "prefix " << N;
  EXPECT_EQ(parse(Full), Parse::Ok);
}

//===----------------------------------------------------------------------===//
// Malformed-request corpus
//===----------------------------------------------------------------------===//

TEST(HttpParse, BareLfRequestLine) {
  EXPECT_EQ(parse("GET / HTTP/1.1\n\r\n"), Parse::Bad);
}

TEST(HttpParse, BareLfHeaderLine) {
  EXPECT_EQ(parse("GET / HTTP/1.1\r\nHost: x\nY: z\r\n\r\n"), Parse::Bad);
}

TEST(HttpParse, MissingSecondSpace) {
  EXPECT_EQ(parse("GET /\r\n\r\n"), Parse::Bad);
}

TEST(HttpParse, ExtraSpaceInRequestLine) {
  EXPECT_EQ(parse("GET / index HTTP/1.1\r\n\r\n"), Parse::Bad);
}

TEST(HttpParse, LowerCaseMethod) {
  EXPECT_EQ(parse("get / HTTP/1.1\r\n\r\n"), Parse::Bad);
}

TEST(HttpParse, OverlongMethod) {
  EXPECT_EQ(parse(std::string(17, 'G') + " / HTTP/1.1\r\n\r\n"), Parse::Bad);
}

TEST(HttpParse, NonOriginFormTarget) {
  EXPECT_EQ(parse("GET http://evil/ HTTP/1.1\r\n\r\n"), Parse::Bad);
  EXPECT_EQ(parse("OPTIONS * HTTP/1.1\r\n\r\n"), Parse::Bad);
}

TEST(HttpParse, BadVersion) {
  EXPECT_EQ(parse("GET / HTTP/2.0\r\n\r\n"), Parse::Bad);
  EXPECT_EQ(parse("GET / HTTP/1.\r\n\r\n"), Parse::Bad);
  EXPECT_EQ(parse("GET / banana\r\n\r\n"), Parse::Bad);
}

TEST(HttpParse, ControlByteInRequestLine) {
  EXPECT_EQ(parse("GET /\x01 HTTP/1.1\r\n\r\n"), Parse::Bad);
}

TEST(HttpParse, HeaderWithoutColon) {
  EXPECT_EQ(parse("GET / HTTP/1.1\r\nno-colon-here\r\n\r\n"), Parse::Bad);
}

TEST(HttpParse, EmptyHeaderName) {
  EXPECT_EQ(parse("GET / HTTP/1.1\r\n: value\r\n\r\n"), Parse::Bad);
}

TEST(HttpParse, SpaceInHeaderName) {
  // "Header : v" — the space before the colon is not a token byte.
  EXPECT_EQ(parse("GET / HTTP/1.1\r\nHost : x\r\n\r\n"), Parse::Bad);
}

TEST(HttpParse, ControlByteInHeaderValue) {
  EXPECT_EQ(parse("GET / HTTP/1.1\r\nHost: a\002b\r\n\r\n"), Parse::Bad);
}

TEST(HttpParse, NonNumericContentLength) {
  EXPECT_EQ(parse("POST / HTTP/1.1\r\nContent-Length: ten\r\n\r\n"),
            Parse::Bad);
  EXPECT_EQ(parse("POST / HTTP/1.1\r\nContent-Length: -1\r\n\r\n"),
            Parse::Bad);
}

TEST(HttpParse, ConflictingContentLengths) {
  EXPECT_EQ(parse("POST / HTTP/1.1\r\nContent-Length: 2\r\n"
                  "Content-Length: 3\r\n\r\nab"),
            Parse::Bad);
}

TEST(HttpParse, TransferEncodingRejected) {
  EXPECT_EQ(parse("POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"),
            Parse::Bad);
}

//===----------------------------------------------------------------------===//
// Limits
//===----------------------------------------------------------------------===//

TEST(HttpParse, RequestLineWithoutCrlfOverLimit) {
  // A CRLF-less flood longer than the request-line cap must be TooLarge,
  // not NeedMore — otherwise a client can buffer bytes forever.
  ParseLimits L;
  L.MaxRequestLine = 64;
  EXPECT_EQ(parse(std::string(65, 'A'), L), Parse::TooLarge);
  EXPECT_EQ(parse(std::string(64, 'A'), L), Parse::NeedMore);
}

TEST(HttpParse, RequestLineTooLong) {
  ParseLimits L;
  L.MaxRequestLine = 32;
  EXPECT_EQ(parse("GET /" + std::string(64, 'a') + " HTTP/1.1\r\n\r\n", L),
            Parse::TooLarge);
}

TEST(HttpParse, HeaderBlockTooLarge) {
  ParseLimits L;
  L.MaxHeaderBytes = 64;
  std::string Req = "GET / HTTP/1.1\r\n";
  for (int H = 0; H < 16; ++H)
    Req += "X-Pad-" + std::to_string(H) + ": aaaaaaaaaaaaaaaa\r\n";
  // Terminated or not, an oversized header block is TooLarge.
  EXPECT_EQ(parse(Req + "\r\n", L), Parse::TooLarge);
  EXPECT_EQ(parse(Req, L), Parse::TooLarge);
}

TEST(HttpParse, BodyOverLimit) {
  ParseLimits L;
  L.MaxBodyBytes = 8;
  EXPECT_EQ(parse("POST / HTTP/1.1\r\nContent-Length: 9\r\n\r\n", L),
            Parse::TooLarge);
  EXPECT_EQ(parse("POST / HTTP/1.1\r\nContent-Length: 8\r\n\r\n12345678", L),
            Parse::Ok);
}

//===----------------------------------------------------------------------===//
// Response serialization
//===----------------------------------------------------------------------===//

TEST(HttpResponse, Serialization) {
  http::Response R;
  R.Code = 202;
  R.Body = "queued\n";
  R.ExtraHeaders.emplace_back("X-Diderot-Job", "j-7");
  std::string Wire = http::serializeResponse(R);
  EXPECT_NE(Wire.find("HTTP/1.1 202 Accepted\r\n"), std::string::npos);
  EXPECT_NE(Wire.find("Content-Length: 7\r\n"), std::string::npos);
  EXPECT_NE(Wire.find("Connection: close\r\n"), std::string::npos);
  EXPECT_NE(Wire.find("X-Diderot-Job: j-7\r\n"), std::string::npos);
  EXPECT_EQ(Wire.substr(Wire.size() - 7), "queued\n");
}

TEST(HttpResponse, StatusTextKnownCodes) {
  EXPECT_STREQ(http::statusText(200), "OK");
  EXPECT_STREQ(http::statusText(429), "Too Many Requests");
  EXPECT_STREQ(http::statusText(599), "Status");
}

//===----------------------------------------------------------------------===//
// Live server
//===----------------------------------------------------------------------===//

#if HAVE_SOCKETS

namespace {

/// Send \p Wire to 127.0.0.1:\p Port and read the whole response.
std::string roundTrip(int Port, const std::string &Wire) {
  int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (Fd < 0)
    return "";
  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  Addr.sin_port = htons(static_cast<uint16_t>(Port));
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0) {
    ::close(Fd);
    return "";
  }
  if (!Wire.empty())
    (void)::send(Fd, Wire.data(), Wire.size(), 0);
  std::string Out;
  char Buf[4096];
  ssize_t N;
  while ((N = ::recv(Fd, Buf, sizeof(Buf), 0)) > 0)
    Out.append(Buf, static_cast<size_t>(N));
  ::close(Fd);
  return Out;
}

} // namespace

TEST(HttpServer, ServesAndRoutes) {
  http::Server S;
  ASSERT_TRUE(S.start(0, [](const Request &R) {
                 http::Response Resp;
                 Resp.Body = R.Method + " " + R.Path + "|" + R.Body;
                 return Resp;
               }).isOk());
  std::string Got = roundTrip(
      S.port(), "POST /echo HTTP/1.1\r\nContent-Length: 3\r\n\r\nabc");
  EXPECT_NE(Got.find("200 OK"), std::string::npos);
  EXPECT_NE(Got.find("POST /echo|abc"), std::string::npos);
  S.stop();
}

TEST(HttpServer, MalformedGets400) {
  http::Server S;
  ASSERT_TRUE(S.start(0, [](const Request &) {
                 return http::Response();
               }).isOk());
  std::string Got = roundTrip(S.port(), "get / HTTP/1.1\r\n\r\n");
  EXPECT_NE(Got.find("400 Bad Request"), std::string::npos);
  S.stop();
}

TEST(HttpServer, OversizedGets413) {
  http::Server S;
  http::Server::Options O;
  O.Limits.MaxBodyBytes = 16;
  ASSERT_TRUE(S.start(0, [](const Request &) { return http::Response(); },
                      O).isOk());
  std::string Got = roundTrip(
      S.port(), "POST / HTTP/1.1\r\nContent-Length: 64\r\n\r\n");
  EXPECT_NE(Got.find("413 Payload Too Large"), std::string::npos);
  S.stop();
}

TEST(HttpServer, SlowClientGets408) {
  http::Server S;
  http::Server::Options O;
  O.RecvTimeoutMs = 200; // keep the test fast
  ASSERT_TRUE(S.start(0, [](const Request &) { return http::Response(); },
                      O).isOk());
  // Send an incomplete request and then just wait: the read must time out
  // and the server reply 408 rather than hold the connection open.
  std::string Got = roundTrip(S.port(), "GET / HTTP/1.1\r\n");
  EXPECT_NE(Got.find("408 Request Timeout"), std::string::npos);
  S.stop();
}

TEST(HttpServer, StopIsIdempotentAndRestartable) {
  http::Server S;
  ASSERT_TRUE(S.start(0, [](const Request &) {
                 return http::Response();
               }).isOk());
  S.stop();
  S.stop();
  ASSERT_TRUE(S.start(0, [](const Request &) {
                 return http::Response();
               }).isOk());
  EXPECT_NE(roundTrip(S.port(), "GET / HTTP/1.1\r\n\r\n").find("200 OK"),
            std::string::npos);
  S.stop();
}

#endif // HAVE_SOCKETS

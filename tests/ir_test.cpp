//===--- tests/ir_test.cpp - IR infrastructure tests ------------------------===//

#include <gtest/gtest.h>

#include "ir/builder.h"
#include "ir/ir.h"

namespace diderot::ir {
namespace {

/// Build: func(x: real) -> (real) { v = x + 1.0; exit v }
Function makeSimpleFn() {
  Function F;
  F.Name = "f";
  F.ResultTypes = {Type::real()};
  Builder B(F);
  ValueId X = B.addParam(Type::real());
  ValueId One = B.constReal(1.0);
  ValueId Sum = B.emit(Op::Add, {X, One}, Type::real());
  B.exit(ExitAttr::Continue, {Sum});
  B.finish();
  return F;
}

TEST(Ir, BuilderProducesVerifiableFunction) {
  Function F = makeSimpleFn();
  EXPECT_EQ(verify(F, High), "");
  EXPECT_EQ(verify(F, Mid), "");
  EXPECT_EQ(verify(F, Low), "");
  EXPECT_EQ(F.NumParams, 1);
  EXPECT_EQ(countAllOps(F), 3);
  EXPECT_EQ(countOps(F, Op::Add), 1);
}

TEST(Ir, PrintContainsStructure) {
  Function F = makeSimpleFn();
  std::string S = print(F);
  EXPECT_NE(S.find("func @f"), std::string::npos);
  EXPECT_NE(S.find("add"), std::string::npos);
  EXPECT_NE(S.find("exit[continue]"), std::string::npos);
}

TEST(Ir, VerifierRejectsMissingTerminator) {
  Function F;
  F.Name = "bad";
  Builder B(F);
  B.constReal(1.0);
  B.finish(); // no terminator
  EXPECT_NE(verify(F, High), "");
}

TEST(Ir, VerifierRejectsUseBeforeDef) {
  Function F;
  F.Name = "bad";
  F.ResultTypes = {Type::real()};
  ValueId Ghost = F.newValue(Type::real()); // never defined
  Builder B(F);
  B.exit(ExitAttr::Continue, {Ghost});
  B.finish();
  EXPECT_NE(verify(F, High), "");
}

TEST(Ir, VerifierRejectsWrongLevelOps) {
  Function F;
  F.Name = "lvl";
  F.ResultTypes = {};
  Builder B(F);
  ValueId Img = B.addParam(Type::image(2, Shape{}));
  B.emit(Op::Convolve, {Img}, Type::field(1, 2, Shape{}),
         ConvolveAttr{"ctmr", 0});
  B.exit(ExitAttr::Continue, {});
  B.finish();
  EXPECT_EQ(verify(F, High), "");
  EXPECT_NE(verify(F, Mid), "") << "field ops must be rejected at MidIR";
  EXPECT_NE(verify(F, Low), "");
}

TEST(Ir, VerifierChecksIfStructure) {
  Function F;
  F.Name = "iff";
  F.ResultTypes = {Type::real()};
  Builder B(F);
  ValueId C = B.addParam(Type::boolean());
  B.pushRegion();
  ValueId T = B.constReal(1.0);
  B.yield({T});
  Region Then = B.popRegion();
  B.pushRegion();
  ValueId E = B.constReal(2.0);
  B.yield({E});
  Region Else = B.popRegion();
  std::vector<ValueId> R = B.emitIf(C, std::move(Then), std::move(Else),
                                    {Type::real()});
  B.exit(ExitAttr::Continue, {R[0]});
  B.finish();
  EXPECT_EQ(verify(F, High), "");
  EXPECT_EQ(countOps(F, Op::If), 1);
  EXPECT_EQ(countOps(F, Op::Yield), 2);
}

TEST(Ir, VerifierRejectsBranchValueEscape) {
  // A value defined inside a branch must not be used after the if.
  Function F;
  F.Name = "esc";
  F.ResultTypes = {Type::real()};
  Builder B(F);
  ValueId C = B.addParam(Type::boolean());
  B.pushRegion();
  ValueId T = B.constReal(1.0);
  B.yield({T});
  Region Then = B.popRegion();
  B.pushRegion();
  ValueId E = B.constReal(2.0);
  B.yield({E});
  Region Else = B.popRegion();
  B.emitIf(C, std::move(Then), std::move(Else), {Type::real()});
  B.exit(ExitAttr::Continue, {T}); // escapes the then-region
  B.finish();
  EXPECT_NE(verify(F, High), "");
}

TEST(Ir, VerifierRejectsExitArityMismatch) {
  Function F;
  F.Name = "arity";
  F.ResultTypes = {Type::real(), Type::real()};
  Builder B(F);
  ValueId V = B.constReal(1.0);
  B.exit(ExitAttr::Continue, {V}); // needs two results
  B.finish();
  EXPECT_NE(verify(F, High), "");
}

TEST(Ir, VerifierRejectsDoubleDefinition) {
  Function F;
  F.Name = "dd";
  F.ResultTypes = {};
  Builder B(F);
  ValueId V = B.constReal(1.0);
  // Manually append another instruction defining the same value.
  Instr I(Op::ConstReal);
  I.A = 2.0;
  I.Results.push_back(V);
  B.exit(ExitAttr::Continue, {});
  B.finish();
  F.Body.Body.insert(F.Body.Body.begin(), std::move(I));
  EXPECT_NE(verify(F, High), "");
}

TEST(Ir, AttrPrinting) {
  EXPECT_EQ(attrStr(Attr(int64_t(42))), "42");
  EXPECT_EQ(attrStr(Attr(true)), "true");
  EXPECT_EQ(attrStr(Attr(ConvolveAttr{"bspln3", 2})), "bspln3''");
  EXPECT_EQ(attrStr(Attr(KernelWeightAttr{"ctmr", 1, -1})), "ctmr/d1/tap-1");
  EXPECT_EQ(attrStr(Attr(ExitAttr{ExitAttr::Die})), "die");
  EXPECT_EQ(attrStr(Attr(std::vector<int>{1, 2})), "[1,2]");
}

TEST(Ir, OpLevelTables) {
  // Field ops are High-only; probing machinery is Mid; expansions are Low.
  EXPECT_EQ(opLevels(Op::Probe), unsigned(High));
  EXPECT_EQ(opLevels(Op::FieldDiff), unsigned(High));
  EXPECT_EQ(opLevels(Op::KernelWeight), unsigned(Mid));
  EXPECT_EQ(opLevels(Op::WorldToImage), unsigned(Mid));
  EXPECT_EQ(opLevels(Op::PolyEval), unsigned(Low));
  EXPECT_EQ(opLevels(Op::EigenVals), unsigned(Low));
  EXPECT_EQ(opLevels(Op::VoxelLoad), unsigned(Mid | Low));
  EXPECT_EQ(opLevels(Op::Add), unsigned(High | Mid | Low));
}

TEST(Ir, PurityClassification) {
  EXPECT_TRUE(isPure(Op::Add));
  EXPECT_TRUE(isPure(Op::VoxelLoad)); // images are immutable
  EXPECT_FALSE(isPure(Op::If));
  EXPECT_FALSE(isPure(Op::Exit));
  EXPECT_FALSE(isPure(Op::Yield));
}

} // namespace
} // namespace diderot::ir

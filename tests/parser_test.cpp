//===--- tests/parser_test.cpp ---------------------------------------------===//

#include <gtest/gtest.h>

#include "frontend/parser.h"
#include "testprograms.h"

namespace diderot {
namespace {

ExprPtr parseExpr(const std::string &S, bool ExpectOk = true) {
  DiagnosticEngine D;
  Parser P(S, D);
  ExprPtr E = P.parseExpressionOnly();
  if (ExpectOk) {
    EXPECT_FALSE(D.hasErrors()) << S << "\n" << D.str();
  }
  return E;
}

std::unique_ptr<Program> parseProgram(const std::string &S,
                                      bool ExpectOk = true) {
  DiagnosticEngine D;
  Parser P(S, D);
  auto Prog = P.parseProgram();
  if (ExpectOk) {
    EXPECT_FALSE(D.hasErrors()) << D.str();
  }
  return Prog;
}

TEST(Parser, Literals) {
  EXPECT_EQ(parseExpr("42")->Kind, ExprKind::IntLit);
  EXPECT_EQ(parseExpr("4.25")->Kind, ExprKind::RealLit);
  EXPECT_EQ(parseExpr("true")->Kind, ExprKind::BoolLit);
  EXPECT_EQ(parseExpr("\"s\"")->Kind, ExprKind::StringLit);
  EXPECT_EQ(parseExpr("π")->Kind, ExprKind::PiLit);
}

TEST(Parser, PrecedenceMulOverAdd) {
  ExprPtr E = parseExpr("a + b * c");
  ASSERT_EQ(E->Kind, ExprKind::Binary);
  EXPECT_EQ(E->BOp, BinaryOp::Add);
  EXPECT_EQ(E->Kids[1]->BOp, BinaryOp::Mul);
}

TEST(Parser, PowerBindsTighterThanUnaryMinus) {
  ExprPtr E = parseExpr("-x^2");
  ASSERT_EQ(E->Kind, ExprKind::Unary);
  EXPECT_EQ(E->UOp, UnaryOp::Neg);
  EXPECT_EQ(E->Kids[0]->BOp, BinaryOp::Pow);
}

TEST(Parser, ComparisonChain) {
  ExprPtr E = parseExpr("a < b && c >= d || !e");
  ASSERT_EQ(E->Kind, ExprKind::Binary);
  EXPECT_EQ(E->BOp, BinaryOp::Or);
}

TEST(Parser, ConditionalExpression) {
  // Python-style: `1.0 if c else 2.0`, right associative.
  ExprPtr E = parseExpr("1.0 if c else 2.0 if d else 3.0");
  ASSERT_EQ(E->Kind, ExprKind::Cond);
  EXPECT_EQ(E->Kids[0]->Kind, ExprKind::RealLit); // then
  EXPECT_EQ(E->Kids[1]->Kind, ExprKind::Ident);   // cond
  EXPECT_EQ(E->Kids[2]->Kind, ExprKind::Cond);    // nested else
}

TEST(Parser, NablaBindsBeforeApplication) {
  // ∇F(pos) parses as (∇F)(pos), per the paper's examples.
  ExprPtr E = parseExpr("∇F(pos)");
  ASSERT_EQ(E->Kind, ExprKind::Apply);
  const Expr &Callee = *E->Kids[0];
  ASSERT_EQ(Callee.Kind, ExprKind::Unary);
  EXPECT_EQ(Callee.UOp, UnaryOp::Nabla);
  EXPECT_EQ(Callee.Kids[0]->Name, "F");
}

TEST(Parser, NablaOtimesChain) {
  // ∇⊗∇F(pos) is ((∇⊗(∇F))(pos).
  ExprPtr E = parseExpr("∇⊗∇F(pos)");
  ASSERT_EQ(E->Kind, ExprKind::Apply);
  const Expr &Outer = *E->Kids[0];
  ASSERT_EQ(Outer.Kind, ExprKind::Unary);
  EXPECT_EQ(Outer.UOp, UnaryOp::NablaOtimes);
  EXPECT_EQ(Outer.Kids[0]->UOp, UnaryOp::Nabla);
}

TEST(Parser, NormExpression) {
  ExprPtr E = parseExpr("|a - b|");
  ASSERT_EQ(E->Kind, ExprKind::Norm);
  EXPECT_EQ(E->Kids[0]->BOp, BinaryOp::Sub);
}

TEST(Parser, NormWithCallInside) {
  ExprPtr E = parseExpr("|V(pos0)|");
  ASSERT_EQ(E->Kind, ExprKind::Norm);
  EXPECT_EQ(E->Kids[0]->Kind, ExprKind::Apply);
}

TEST(Parser, TensorConstructor) {
  ExprPtr E = parseExpr("[1.0, 2.0, 3.0]");
  ASSERT_EQ(E->Kind, ExprKind::TensorCons);
  EXPECT_EQ(E->Kids.size(), 3u);
}

TEST(Parser, NestedTensorConstructor) {
  ExprPtr E = parseExpr("[[1.0, 0.0], [0.0, 1.0]]");
  ASSERT_EQ(E->Kind, ExprKind::TensorCons);
  EXPECT_EQ(E->Kids[0]->Kind, ExprKind::TensorCons);
}

TEST(Parser, IndexAndIdentity) {
  ExprPtr E = parseExpr("m[1,2]");
  ASSERT_EQ(E->Kind, ExprKind::Index);
  EXPECT_EQ(E->Kids.size(), 3u);
  ExprPtr I = parseExpr("identity[3]");
  ASSERT_EQ(I->Kind, ExprKind::Index);
}

TEST(Parser, UnicodeBinaryOps) {
  EXPECT_EQ(parseExpr("u • v")->BOp, BinaryOp::Dot);
  EXPECT_EQ(parseExpr("u × v")->BOp, BinaryOp::Cross);
  EXPECT_EQ(parseExpr("u ⊗ v")->BOp, BinaryOp::Outer);
  EXPECT_EQ(parseExpr("img ⊛ bspln3")->BOp, BinaryOp::Convolve);
}

TEST(Parser, CastSyntax) {
  ExprPtr E = parseExpr("real(r)*rVec");
  ASSERT_EQ(E->Kind, ExprKind::Binary);
  EXPECT_EQ(E->Kids[0]->Kind, ExprKind::Apply);
  EXPECT_EQ(E->Kids[0]->Name, "real");
}

TEST(Parser, VrLiteProgramStructure) {
  auto P = parseProgram(testprog::VrLite);
  EXPECT_EQ(P->Globals.size(), 11u);
  EXPECT_TRUE(P->Globals[0].IsInput);
  EXPECT_EQ(P->Globals[0].Name, "stepSz");
  EXPECT_FALSE(P->Globals[9].IsInput); // img
  EXPECT_EQ(P->Strand.Name, "RayCast");
  EXPECT_EQ(P->Strand.Params.size(), 2u);
  EXPECT_EQ(P->Strand.State.size(), 5u);
  EXPECT_TRUE(P->Strand.State[4].IsOutput);
  ASSERT_TRUE(P->Strand.UpdateBody);
  EXPECT_TRUE(P->Init.IsGrid);
  EXPECT_EQ(P->Init.StrandName, "RayCast");
  EXPECT_EQ(P->Init.Iters.size(), 2u);
  EXPECT_EQ(P->Init.Iters[0].Var, "vi");
}

TEST(Parser, Lic2dProgramStructure) {
  auto P = parseProgram(testprog::Lic2d);
  EXPECT_EQ(P->Strand.Name, "LIC");
  ASSERT_EQ(P->Strand.Params.size(), 1u);
  EXPECT_TRUE(P->Strand.Params[0].Ty.isVector());
  EXPECT_TRUE(P->Init.IsGrid);
  // Strand argument is a computed tensor constructor.
  ASSERT_EQ(P->Init.Args.size(), 1u);
  EXPECT_EQ(P->Init.Args[0]->Kind, ExprKind::TensorCons);
}

TEST(Parser, IsocontourCollectionInit) {
  auto P = parseProgram(testprog::Isocontour);
  EXPECT_FALSE(P->Init.IsGrid);
  EXPECT_EQ(P->Strand.Name, "sample");
}

TEST(Parser, CurvatureProgramParses) {
  auto P = parseProgram(testprog::Curvature);
  EXPECT_EQ(P->Strand.Name, "RayCast");
}

TEST(Parser, OpAssignForms) {
  auto P = parseProgram(R"(
input real a = 1.0;
strand S (int i) {
  output real x = 0.0;
  update { x += a; x -= a; x *= a; x /= a; stabilize; }
}
initially [ S(i) | i in 0 .. 3 ];
)");
  const Stmt &Body = *P->Strand.UpdateBody;
  ASSERT_EQ(Body.Body.size(), 5u);
  EXPECT_EQ(Body.Body[0]->AOp, AssignOp::AddSet);
  EXPECT_EQ(Body.Body[3]->AOp, AssignOp::DivSet);
}

TEST(Parser, TypeSyntaxRoundTrip) {
  auto P = parseProgram(R"(
input tensor[3,3] m = identity[3];
input real{4} s = {1.0, 2.0, 3.0, 4.0};
kernel#2 k = bspln3;
strand S (int i) {
  output real x = 0.0;
  update { stabilize; }
}
initially [ S(i) | i in 0 .. 3 ];
)");
  EXPECT_EQ(P->Globals[0].Ty, Type::tensor(Shape{3, 3}));
  EXPECT_EQ(P->Globals[1].Ty, Type::sequence(Type::real(), 4));
  EXPECT_EQ(P->Globals[2].Ty, Type::kernel(2));
}

TEST(Parser, ErrorMissingSemicolon) {
  DiagnosticEngine D;
  Parser P("input real a = 1.0\nstrand S (int i) { output real x = 0.0; "
           "update { stabilize; } }\ninitially [ S(i) | i in 0 .. 3 ];",
           D);
  P.parseProgram();
  EXPECT_TRUE(D.hasErrors());
}

TEST(Parser, ErrorBadStatementRecovers) {
  DiagnosticEngine D;
  Parser P(R"(
strand S (int i) {
  output real x = 0.0;
  update { ); x = 1.0; stabilize; }
}
initially [ S(i) | i in 0 .. 3 ];
)",
           D);
  auto Prog = P.parseProgram();
  EXPECT_TRUE(D.hasErrors());
  // The parse must still terminate and produce a strand.
  EXPECT_EQ(Prog->Strand.Name, "S");
}

TEST(Parser, ErrorRunawayInputTerminates) {
  DiagnosticEngine D;
  Parser P("strand ) ) ) ) ) ) ) ( ( ( ( [ [ [ ;;;", D);
  P.parseProgram();
  EXPECT_TRUE(D.hasErrors());
}

TEST(Parser, StabilizeMethodVsStatement) {
  auto P = parseProgram(R"(
strand S (int i) {
  output real x = 0.0;
  update { stabilize; }
  stabilize { x = 1.0; }
}
initially [ S(i) | i in 0 .. 3 ];
)");
  ASSERT_TRUE(P->Strand.StabilizeBody);
  EXPECT_EQ(P->Strand.StabilizeBody->Body.size(), 1u);
}

} // namespace
} // namespace diderot

#!/usr/bin/env bash
# Black-box smoke test of a real diderotd process: start it on an ephemeral
# port, compile the same program twice (the second must be a cache hit), run
# it, poll the job, fetch the NRRD output and its request trace, scrape
# /metrics — then restart the daemon on the same cache dir and prove the
# warm-up compile is served from disk without a host-compiler invocation.
# Run by CI (daemon-smoke job) and runnable locally:
#
#   tests/daemon_smoke.sh build/src/serve/diderotd tests/cli_isocontour.diderot
#
# Set TRACE_ARTIFACT=/path/to/trace.json to keep the daemon's merged
# GET /trace output after the run (CI uploads it as a build artifact; open
# it in Perfetto / chrome://tracing).
set -euo pipefail

DIDEROTD=${1:?usage: daemon_smoke.sh <diderotd> <program.diderot>}
PROGRAM=${2:?usage: daemon_smoke.sh <diderotd> <program.diderot>}
TRACE_ARTIFACT=${TRACE_ARTIFACT:-}

WORK=$(mktemp -d)
CACHE="$WORK/cache"
PORTFILE="$WORK/port"
DPID=""
cleanup() {
  [ -n "$DPID" ] && kill "$DPID" 2>/dev/null || true
  wait 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

fail() { echo "daemon_smoke: FAIL: $*" >&2; exit 1; }

start_daemon() {
  rm -f "$PORTFILE"
  # --trace-sample all: the smoke runs one job; sample it so the merged
  # GET /trace artifact carries its full per-superstep timeline.
  "$DIDEROTD" --port 0 --port-file "$PORTFILE" --cache-dir "$CACHE" \
              --trace-sample all &
  DPID=$!
  for _ in $(seq 1 100); do
    [ -s "$PORTFILE" ] && break
    kill -0 "$DPID" 2>/dev/null || fail "daemon exited during startup"
    sleep 0.1
  done
  [ -s "$PORTFILE" ] || fail "daemon never wrote its port file"
  PORT=$(cat "$PORTFILE")
  # The port file appears when the socket is bound; /healthz answering 200
  # proves the whole request path (HTTP threads, scheduler, registry) is up
  # — no sleep-based guessing.
  for _ in $(seq 1 100); do
    if curl -sf "http://127.0.0.1:$PORT/healthz" | grep -q '"status":"ok"'; then
      echo "daemon_smoke: daemon pid $DPID healthy on port $PORT"
      return
    fi
    kill -0 "$DPID" 2>/dev/null || fail "daemon exited during startup"
    sleep 0.1
  done
  fail "daemon never became healthy"
}

stop_daemon() {
  kill "$DPID"
  wait "$DPID" 2>/dev/null || true
  DPID=""
}

post() { # post <path> [extra curl args...]
  local path=$1; shift
  curl -sS -X POST --data-binary @"$PROGRAM" "$@" "http://127.0.0.1:$PORT$path"
}

start_daemon

# 1. Cold compile, then the same bytes again: second answer must be cached.
R1=$(post /compile)
echo "daemon_smoke: compile #1: $R1"
echo "$R1" | grep -q '"cached":false' || fail "first compile claimed cached"
R2=$(post /compile)
echo "daemon_smoke: compile #2: $R2"
echo "$R2" | grep -q '"cached":true' || fail "second compile was not a cache hit"

# 2. Async run: submit, poll to completion, fetch the output bytes.
RUN=$(post /run -H 'X-Diderot-Input: ddro=synth:portrait:48')
echo "daemon_smoke: run: $RUN"
JOB=$(echo "$RUN" | sed -n 's/.*"job":"\([^"]*\)".*/\1/p')
[ -n "$JOB" ] || fail "no job id in /run response"

STATE=""
for _ in $(seq 1 300); do
  POLL=$(curl -sS "http://127.0.0.1:$PORT/jobs/$JOB")
  STATE=$(echo "$POLL" | sed -n 's/.*"state":"\([^"]*\)".*/\1/p')
  if [ "$STATE" = done ] || [ "$STATE" = failed ]; then break; fi
  sleep 0.1
done
echo "daemon_smoke: job: $POLL"
[ "$STATE" = done ] || fail "job did not finish (state: ${STATE:-none})"
echo "$POLL" | grep -q '"outcome":"converged"' || fail "job did not converge"

curl -sS "http://127.0.0.1:$PORT/jobs/$JOB/output" -o "$WORK/out.nrrd"
head -c 4 "$WORK/out.nrrd" | grep -q NRRD || fail "output is not a NRRD file"
echo "daemon_smoke: output: $(wc -c < "$WORK/out.nrrd") NRRD bytes"

# 2b. The job's request trace: retrievable for every job, one trace id,
# and at least the queue-wait span of the coarse set (docs/TRACING.md).
TRACE=$(curl -sS "http://127.0.0.1:$PORT/jobs/$JOB/trace")
echo "$TRACE" | grep -q '"traceId":"[0-9a-f]\{32\}"' ||
  fail "job trace has no trace id"
echo "$TRACE" | grep -q '"queue-wait"' || fail "job trace has no queue-wait span"
echo "$TRACE" | grep -q '"run"' || fail "job trace has no run span"
echo "daemon_smoke: trace: $(echo "$TRACE" | wc -c) bytes for job $JOB"

# 2c. The merged recent-jobs timeline; kept as a CI artifact when asked.
MERGED=$(curl -sS "http://127.0.0.1:$PORT/trace")
echo "$MERGED" | grep -q '"traceEvents"' || fail "GET /trace is not a chrome trace"
if [ -n "$TRACE_ARTIFACT" ]; then
  echo "$MERGED" > "$TRACE_ARTIFACT"
  echo "daemon_smoke: saved merged trace to $TRACE_ARTIFACT"
fi

# 3. Metrics reflect what just happened.
METRICS=$(curl -sS "http://127.0.0.1:$PORT/metrics")
echo "$METRICS" | grep -q '^diderot_daemon_cache_hits_total [1-9]' ||
  fail "metrics do not show a program-cache hit"
echo "$METRICS" | grep -q 'diderot_daemon_jobs_total{state="done"} [1-9]' ||
  fail "metrics do not show the finished job"

# 4. Restart on the same cache dir: warming up must be a *disk* hit — the
# artifact built before the restart is reused, no host compiler run.
stop_daemon
start_daemon
R3=$(post /compile)
echo "daemon_smoke: compile after restart: $R3"
echo "$R3" | grep -q '"cached":false' || fail "registry unexpectedly warm after restart"
METRICS=$(curl -sS "http://127.0.0.1:$PORT/metrics")
echo "$METRICS" | grep -q '^diderot_daemon_native_disk_hits_total [1-9]' ||
  fail "restart warm-up was not served from the disk cache"
echo "$METRICS" | grep -q '^diderot_daemon_native_host_compiles_total 0' ||
  fail "restart warm-up invoked the host compiler"

echo "daemon_smoke: PASS"

#!/usr/bin/env bash
# Chaos smoke test of a real diderotd process: the self-healing serving
# path under three injected failures (docs/ROBUSTNESS.md, "Failure
# containment"):
#
#   1. A poisoned host compiler trips the per-program circuit breaker
#      (503 + Retry-After without burning compile attempts), and the
#      breaker closes again through a half-open probe once the compiler
#      heals.
#   2. SIGTERM under load drains gracefully: new work is refused, the jobs
#      already accepted finish inside --drain-ms, and the daemon exits 0
#      with no job abandoned in "queued".
#   3. A cache artifact corrupted between restarts (crash truncation) is
#      quarantined and recompiled — the daemon never dlopens a .so whose
#      bytes disagree with the index.
#   4. A job with an injected strand fault under --record-on-failure leaves
#      a replay bundle; fetching it over HTTP and replaying it offline with
#      `diderotc --replay` reproduces the same outcome at the same
#      superstep, bit-exactly (docs/REPLAY.md). When $CHAOS_ARTIFACT_DIR is
#      set, the fetched bundle and its replay report are copied there so CI
#      can upload them as build artifacts.
#
# Run by CI (daemon-chaos job) and runnable locally:
#
#   tests/daemon_chaos.sh build/src/serve/diderotd tests/cli_isocontour.diderot
set -euo pipefail

DIDEROTD=${1:?usage: daemon_chaos.sh <diderotd> <program.diderot> [diderotc]}
PROGRAM=${2:?usage: daemon_chaos.sh <diderotd> <program.diderot> [diderotc]}
DIDEROTC=${3:-"$(dirname "$DIDEROTD")/../driver/diderotc"}

WORK=$(mktemp -d)
CACHE="$WORK/cache"
PORTFILE="$WORK/port"
POISON_FLAG="$WORK/poison"
DPID=""
cleanup() {
  [ -n "$DPID" ] && kill "$DPID" 2>/dev/null || true
  wait 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

fail() { echo "daemon_chaos: FAIL: $*" >&2; exit 1; }

# A compiler wrapper that fails fast while $POISON_FLAG exists and execs
# the real compiler otherwise — so poisoning is toggled without restarting
# the daemon (DIDEROT_CXX is read per compile, and is deliberately not part
# of the cache key).
WRAPPER="$WORK/cxx-wrapper.sh"
cat > "$WRAPPER" <<EOF
#!/bin/sh
if [ -e "$POISON_FLAG" ]; then
  echo "chaos: compiler poisoned" >&2
  exit 1
fi
exec c++ "\$@"
EOF
chmod +x "$WRAPPER"

start_daemon() { # start_daemon [extra diderotd args...]
  rm -f "$PORTFILE"
  DIDEROT_CXX="$WRAPPER" "$DIDEROTD" --port 0 --port-file "$PORTFILE" \
      --cache-dir "$CACHE" "$@" 2> "$WORK/daemon.log" &
  DPID=$!
  for _ in $(seq 1 100); do
    [ -s "$PORTFILE" ] && break
    kill -0 "$DPID" 2>/dev/null || { cat "$WORK/daemon.log" >&2;
                                     fail "daemon exited during startup"; }
    sleep 0.1
  done
  [ -s "$PORTFILE" ] || fail "daemon never wrote its port file"
  PORT=$(cat "$PORTFILE")
  for _ in $(seq 1 100); do
    curl -sf "http://127.0.0.1:$PORT/healthz" >/dev/null 2>&1 && return
    kill -0 "$DPID" 2>/dev/null || { cat "$WORK/daemon.log" >&2;
                                     fail "daemon exited during startup"; }
    sleep 0.1
  done
  fail "daemon never became healthy"
}

stop_daemon() {
  kill "$DPID"
  wait "$DPID" 2>/dev/null || true
  DPID=""
}

post_compile() { # post_compile -> "<http-code> <body>"
  curl -sS -o "$WORK/body" -w '%{http_code}' -X POST \
       --data-binary @"$PROGRAM" "http://127.0.0.1:$PORT/compile"
}

# Buffered on purpose: piping curl straight into `grep -q` makes grep exit
# at the first match, curl die on EPIPE (exit 23), and pipefail turn a
# successful match into a failure once the metrics body outgrows one pipe
# buffer. Fetch to a file, then grep the file.
metrics() { curl -sS -o "$WORK/metrics.txt" "http://127.0.0.1:$PORT/metrics"; }

# ---------------------------------------------------------------------------
# Scenario 1: poisoned compiler -> breaker opens -> heals -> breaker closes.
# ---------------------------------------------------------------------------
start_daemon --breaker-fails 2 --breaker-open-ms 2000 --compile-timeout-ms 60000

touch "$POISON_FLAG"
C1=$(post_compile); C2=$(post_compile)
[ "$C1" = 400 ] || fail "poisoned compile #1 expected 400, got $C1"
[ "$C2" = 400 ] || fail "poisoned compile #2 expected 400, got $C2"
# Two consecutive failures opened the breaker: the third request is denied
# fast, with the retry contract, before any compile attempt.
C3=$(curl -sS -D "$WORK/hdrs" -o "$WORK/body" -w '%{http_code}' -X POST \
     --data-binary @"$PROGRAM" "http://127.0.0.1:$PORT/compile")
[ "$C3" = 503 ] || fail "breaker should deny with 503, got $C3"
grep -qi '^Retry-After:' "$WORK/hdrs" || fail "503 has no Retry-After header"
curl -sS "http://127.0.0.1:$PORT/healthz" | grep -q '"breakerOpen":1' ||
  fail "healthz does not show the open breaker"
metrics
grep -q '^diderot_daemon_breaker_trips_total [1-9]' "$WORK/metrics.txt" ||
  fail "metrics do not show the breaker trip"
echo "daemon_chaos: breaker opened after 2 poisoned compiles, denies with 503"

# Heal the compiler, wait out the cooldown: the next request is the single
# half-open probe, and its success closes the breaker.
rm -f "$POISON_FLAG"
sleep 2.2
C4=$(post_compile)
[ "$C4" = 200 ] || fail "post-heal probe compile expected 200, got $C4 ($(cat "$WORK/body"))"
curl -sS "http://127.0.0.1:$PORT/healthz" | grep -q '"breakerOpen":0' ||
  fail "breaker did not close after the successful probe"
echo "daemon_chaos: breaker closed after the half-open probe succeeded"

# ---------------------------------------------------------------------------
# Scenario 2: SIGTERM under load drains within --drain-ms, no queued orphans.
# ---------------------------------------------------------------------------
stop_daemon
start_daemon --drain-ms 30000 --job-workers 1
# Warm once so the in-flight jobs below are cache hits (fast, deterministic).
[ "$(post_compile)" = 200 ] || fail "warm-up compile failed"

for I in $(seq 1 8); do
  curl -sS -X POST --data-binary @"$PROGRAM" \
       -H 'X-Diderot-Input: ddro=synth:portrait:48' \
       "http://127.0.0.1:$PORT/run" > "$WORK/run$I.json"
  grep -q '"job"' "$WORK/run$I.json" || fail "submit #$I not accepted"
done
kill -TERM "$DPID"
sleep 0.2 # the signal loop polls every 100 ms; let the drain flag flip
# While draining, new work must be refused...
DRAIN_CODE=$(curl -s -o /dev/null -w '%{http_code}' -X POST \
             --data-binary @"$PROGRAM" "http://127.0.0.1:$PORT/run" || true)
DRAIN_CODE=${DRAIN_CODE:-000}
# ...(000 = the listener already closed: the queue drained before our probe).
case "$DRAIN_CODE" in 503|000) ;; *) fail "submit during drain got $DRAIN_CODE, want 503";; esac
wait "$DPID" && DRAIN_RC=0 || DRAIN_RC=$?
DPID=""
[ "$DRAIN_RC" = 0 ] || { cat "$WORK/daemon.log" >&2;
                         fail "daemon exit $DRAIN_RC: drain budget exhausted"; }
grep -q 'draining: refusing new work' "$WORK/daemon.log" ||
  fail "daemon log has no draining record"
grep -q 'drain budget exhausted' "$WORK/daemon.log" &&
  fail "drain unexpectedly ran out of budget (queued jobs were cancelled)"
echo "daemon_chaos: SIGTERM drained 8 in-flight jobs and exited 0"

# ---------------------------------------------------------------------------
# Scenario 3: artifact corrupted across a restart -> quarantine + recompile.
# ---------------------------------------------------------------------------
SO=$(ls "$CACHE"/ddr-*.so 2>/dev/null | head -1)
[ -n "$SO" ] || fail "no cached artifact to corrupt"
: > "$SO" # crash-style truncation to zero bytes
start_daemon
C5=$(post_compile)
[ "$C5" = 200 ] || fail "compile against corrupted cache expected 200, got $C5 ($(cat "$WORK/body"))"
metrics
grep -q '^diderot_daemon_cache_quarantined_total [1-9]' "$WORK/metrics.txt" ||
  fail "corrupt artifact was not quarantined"
grep -q '^diderot_daemon_native_host_compiles_total [1-9]' "$WORK/metrics.txt" ||
  fail "corrupt artifact was not recompiled"
ls "$CACHE/quarantine"/ddr-*.so.* >/dev/null 2>&1 ||
  fail "quarantine directory holds no artifact"
# And the recompiled artifact actually serves a correct run.
RUN=$(curl -sS -X POST --data-binary @"$PROGRAM" \
      -H 'X-Diderot-Input: ddro=synth:portrait:48' "http://127.0.0.1:$PORT/run")
JOB=$(echo "$RUN" | sed -n 's/.*"job":"\([^"]*\)".*/\1/p')
[ -n "$JOB" ] || fail "no job id after recompile"
STATE=""
for _ in $(seq 1 300); do
  POLL=$(curl -sS "http://127.0.0.1:$PORT/jobs/$JOB")
  STATE=$(echo "$POLL" | sed -n 's/.*"state":"\([^"]*\)".*/\1/p')
  if [ "$STATE" = done ] || [ "$STATE" = failed ]; then break; fi
  sleep 0.1
done
[ "$STATE" = done ] || fail "post-recompile run did not finish (state: ${STATE:-none})"
echo "$POLL" | grep -q '"outcome":"converged"' || fail "post-recompile run did not converge"
echo "daemon_chaos: truncated artifact quarantined, recompiled, and served"
stop_daemon

# ---------------------------------------------------------------------------
# Scenario 4: injected-fault job -> failure bundle -> offline replay MATCH.
# ---------------------------------------------------------------------------
start_daemon --record-on-failure --recordings-dir "$WORK/recordings"
RUN=$(curl -sS -X POST --data-binary @"$PROGRAM" \
      -H 'X-Diderot-Input: ddro=synth:portrait:48' \
      -H 'X-Diderot-Fault: 3@1' "http://127.0.0.1:$PORT/run")
JOB=$(echo "$RUN" | sed -n 's/.*"job":"\([^"]*\)".*/\1/p')
[ -n "$JOB" ] || fail "fault-injected submit not accepted"
STATE=""
for _ in $(seq 1 300); do
  POLL=$(curl -sS "http://127.0.0.1:$PORT/jobs/$JOB")
  STATE=$(echo "$POLL" | sed -n 's/.*"state":"\([^"]*\)".*/\1/p')
  if [ "$STATE" = done ] || [ "$STATE" = failed ]; then break; fi
  sleep 0.1
done
[ "$STATE" = done ] || fail "fault-injected job did not finish (state: ${STATE:-none})"
echo "$POLL" | grep -q '"faulted":1' || fail "job does not report the injected fault"
echo "$POLL" | grep -q '"bundle":true' || fail "no failure bundle recorded for the job"
OUTCOME=$(echo "$POLL" | sed -n 's/.*"outcome":"\([^"]*\)".*/\1/p')
STEPS=$(echo "$POLL" | sed -n 's/.*"steps":\([0-9]*\).*/\1/p')
metrics
grep -q '^diderot_daemon_recordings_total [1-9]' "$WORK/metrics.txt" ||
  fail "metrics do not count the recording"

# Fetch the bundle over HTTP and replay it offline: same outcome at the
# same superstep, digest streams bit-identical.
BUNDLE="$WORK/$JOB-bundle.tar"
curl -sSf -o "$BUNDLE" "http://127.0.0.1:$PORT/jobs/$JOB/bundle" ||
  fail "bundle fetch failed"
[ -s "$BUNDLE" ] || fail "fetched bundle is empty"
REPLAY_RC=0
"$DIDEROTC" --replay "$BUNDLE" > "$WORK/replay.txt" 2>&1 || REPLAY_RC=$?
[ "$REPLAY_RC" = 0 ] || { cat "$WORK/replay.txt" >&2;
                          fail "diderotc --replay exited $REPLAY_RC"; }
grep -q 'verdict: MATCH' "$WORK/replay.txt" ||
  { cat "$WORK/replay.txt" >&2; fail "replay verdict is not MATCH"; }
grep -q "recorded $OUTCOME after $STEPS supersteps" "$WORK/replay.txt" ||
  { cat "$WORK/replay.txt" >&2;
    fail "replay does not reproduce outcome '$OUTCOME' at superstep $STEPS"; }
grep -q "replayed $OUTCOME after $STEPS supersteps" "$WORK/replay.txt" ||
  { cat "$WORK/replay.txt" >&2;
    fail "replayed outcome differs from the recording"; }
# The daemon's own in-process verification agrees.
curl -sSf "http://127.0.0.1:$PORT/recordings/$JOB/replay" | \
  grep -q 'verdict: MATCH' || fail "daemon-side replay verification diverged"
if [ -n "${CHAOS_ARTIFACT_DIR:-}" ]; then
  mkdir -p "$CHAOS_ARTIFACT_DIR"
  cp "$BUNDLE" "$WORK/replay.txt" "$CHAOS_ARTIFACT_DIR/"
fi
echo "daemon_chaos: failure bundle fetched and replayed to MATCH ($OUTCOME @ $STEPS steps)"
stop_daemon

echo "daemon_chaos: PASS"

//===--- tests/cache_robustness_test.cpp - compile-cache crash consistency ---===//
//
// Part of the Diderot-C++ reproduction (PLDI 2012).
//
// codegen/cache.h maintenance layer against hostile on-disk state: index
// round-trips, pre-v2 (4-column) rows, truncated/garbage index lines,
// artifact verification against size + hash, quarantine of corrupt .so
// files, and LRU eviction under a byte cap. Everything here works on
// synthetic cache directories — no host compiles, no dlopen.
//
//===----------------------------------------------------------------------===//

#include "codegen/cache.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace fs = std::filesystem;
using namespace diderot;
using namespace diderot::codegen;

namespace {

/// A throwaway cache directory, removed on destruction.
struct TempCacheDir {
  fs::path Dir;
  TempCacheDir() {
    Dir = fs::temp_directory_path() /
          ("ddr-cache-test-" + std::to_string(::getpid()) + "-" +
           std::to_string(reinterpret_cast<uintptr_t>(this)));
    fs::create_directories(Dir);
  }
  ~TempCacheDir() {
    std::error_code Ec;
    fs::remove_all(Dir, Ec);
  }
  std::string str() const { return Dir.string(); }

  /// Plant a fake artifact ddr-<key>.so with the given contents.
  void plantSo(const std::string &Key, const std::string &Contents) const {
    std::ofstream Out(Dir / ("ddr-" + Key + ".so"), std::ios::binary);
    Out << Contents;
  }

  std::string soPath(const std::string &Key) const {
    return (Dir / ("ddr-" + Key + ".so")).string();
  }
};

/// 32-hex keys (what a Hash128 hex digest looks like).
std::string fakeKey(char Fill) { return std::string(32, Fill); }

const CacheIndexEntry *findEntry(const std::vector<CacheIndexEntry> &Es,
                                 const std::string &Key) {
  for (const CacheIndexEntry &E : Es)
    if (E.Key == Key)
      return &E;
  return nullptr;
}

TEST(CacheIndex, RecordThenReadRoundTrips) {
  TempCacheDir T;
  std::string K = fakeKey('a');
  T.plantSo(K, "fake shared object bytes");
  recordCacheArtifact(T.str(), K, "prog.diderot");

  auto Entries = readCacheIndexEntries(T.str());
  ASSERT_EQ(Entries.size(), 1u);
  EXPECT_EQ(Entries[0].Key, K);
  EXPECT_EQ(Entries[0].Program, "prog.diderot");
  EXPECT_EQ(Entries[0].SoBytes,
            static_cast<int64_t>(std::string("fake shared object bytes").size()));
  EXPECT_EQ(Entries[0].SoHash.size(), 32u);
  EXPECT_GT(Entries[0].UnixMs, 0);
  EXPECT_GE(Entries[0].LastUsedMs, Entries[0].UnixMs);
}

TEST(CacheIndex, MissingIndexIsEmptyNotAnError) {
  TempCacheDir T;
  EXPECT_TRUE(readCacheIndexEntries(T.str()).empty());
}

TEST(CacheIndex, V1FourColumnRowsStillParse) {
  TempCacheDir T;
  std::string K = fakeKey('b');
  {
    std::ofstream Out(T.Dir / cacheIndexFile());
    Out << K << "\tlegacy.diderot\t1700000000000\tg++ 13\n";
  }
  auto Entries = readCacheIndexEntries(T.str());
  ASSERT_EQ(Entries.size(), 1u);
  EXPECT_EQ(Entries[0].Key, K);
  EXPECT_EQ(Entries[0].Program, "legacy.diderot");
  EXPECT_EQ(Entries[0].SoBytes, -1); // unverifiable, not corrupt
  EXPECT_TRUE(Entries[0].SoHash.empty());
  EXPECT_EQ(Entries[0].LastUsedMs, 1700000000000); // falls back to UnixMs
}

TEST(CacheIndex, TruncatedAndGarbageLinesAreSkipped) {
  TempCacheDir T;
  std::string Good = fakeKey('c');
  {
    std::ofstream Out(T.Dir / cacheIndexFile());
    Out << "torn-line-without-tabs\n";
    Out << "shortkey\tprog\t1\tid\n"; // key is not 32 hex chars
    Out << Good << "\tok.diderot\t1700000000000\tg++ 13\n";
    Out << Good.substr(0, 30); // torn final line (crash mid-write of a
                               // pre-atomic-rename index)
  }
  auto Entries = readCacheIndexEntries(T.str());
  ASSERT_EQ(Entries.size(), 1u);
  EXPECT_EQ(Entries[0].Key, Good);
}

TEST(CacheIndex, TouchRefreshesLastUsed) {
  TempCacheDir T;
  std::string K = fakeKey('d');
  T.plantSo(K, "bytes");
  recordCacheArtifact(T.str(), K, "prog");
  auto Before = readCacheIndexEntries(T.str());
  ASSERT_EQ(Before.size(), 1u);

  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  touchCacheArtifact(T.str(), K);
  auto After = readCacheIndexEntries(T.str());
  ASSERT_EQ(After.size(), 1u);
  EXPECT_GT(After[0].LastUsedMs, Before[0].LastUsedMs);
  EXPECT_EQ(After[0].SoHash, Before[0].SoHash); // touch never rehashes

  // Touching a key with no row is a no-op, not a row invention.
  touchCacheArtifact(T.str(), fakeKey('e'));
  EXPECT_EQ(readCacheIndexEntries(T.str()).size(), 1u);
}

TEST(CacheVerify, OkWhenSizeAndHashMatch) {
  TempCacheDir T;
  std::string K = fakeKey('f');
  T.plantSo(K, "correct contents");
  recordCacheArtifact(T.str(), K, "prog");
  EXPECT_EQ(verifyCacheArtifact(T.str(), K), ArtifactVerdict::Ok);
}

TEST(CacheVerify, UnverifiableWithoutARowOrWithAV1Row) {
  TempCacheDir T;
  std::string K = fakeKey('1');
  T.plantSo(K, "whatever");
  // No index row at all.
  EXPECT_EQ(verifyCacheArtifact(T.str(), K), ArtifactVerdict::Unverifiable);
  // A v1 row (no size/hash columns).
  {
    std::ofstream Out(T.Dir / cacheIndexFile());
    Out << K << "\tprog\t1\tid\n";
  }
  EXPECT_EQ(verifyCacheArtifact(T.str(), K), ArtifactVerdict::Unverifiable);
}

TEST(CacheVerify, ZeroByteArtifactIsCorrupt) {
  TempCacheDir T;
  std::string K = fakeKey('2');
  T.plantSo(K, "real contents");
  recordCacheArtifact(T.str(), K, "prog");
  T.plantSo(K, ""); // crash-truncated to zero bytes after install
  EXPECT_EQ(verifyCacheArtifact(T.str(), K), ArtifactVerdict::Corrupt);
}

TEST(CacheVerify, BitFlippedArtifactIsCorrupt) {
  TempCacheDir T;
  std::string K = fakeKey('3');
  std::string Contents = "some shared object contents";
  T.plantSo(K, Contents);
  recordCacheArtifact(T.str(), K, "prog");
  Contents[4] ^= 0x01; // same size, one flipped bit
  T.plantSo(K, Contents);
  EXPECT_EQ(verifyCacheArtifact(T.str(), K), ArtifactVerdict::Corrupt);
}

TEST(CacheVerify, MissingArtifactWithARowIsCorrupt) {
  TempCacheDir T;
  std::string K = fakeKey('4');
  T.plantSo(K, "contents");
  recordCacheArtifact(T.str(), K, "prog");
  fs::remove(T.Dir / ("ddr-" + K + ".so"));
  EXPECT_EQ(verifyCacheArtifact(T.str(), K), ArtifactVerdict::Corrupt);
}

TEST(CacheQuarantine, MovesTheArtifactAndDropsTheRow) {
  TempCacheDir T;
  std::string K = fakeKey('5');
  T.plantSo(K, "poisoned");
  recordCacheArtifact(T.str(), K, "prog");
  uint64_t Before = cacheQuarantineCount();

  quarantineCacheArtifact(T.str(), K, "hash mismatch in test");

  EXPECT_FALSE(fs::exists(T.soPath(K))); // moved out of the serving path
  EXPECT_EQ(findEntry(readCacheIndexEntries(T.str()), K), nullptr);
  EXPECT_EQ(cacheQuarantineCount(), Before + 1);

  // The artifact and a .reason sidecar landed in quarantine/.
  fs::path Q = T.Dir / cacheQuarantineDir();
  ASSERT_TRUE(fs::is_directory(Q));
  bool FoundSo = false, FoundReason = false;
  for (const auto &Ent : fs::directory_iterator(Q)) {
    std::string Name = Ent.path().filename().string();
    if (Name.find("ddr-" + K + ".so") == 0) {
      if (Name.size() > 7 && Name.rfind(".reason") == Name.size() - 7)
        FoundReason = true;
      else
        FoundSo = true;
    }
  }
  EXPECT_TRUE(FoundSo);
  EXPECT_TRUE(FoundReason);
}

TEST(CacheEvict, LruUnderAByteCapProtectsTheNewestKey) {
  TempCacheDir T;
  // Three 1000-byte artifacts recorded oldest-to-newest. Tell LRU apart
  // with explicit touches rather than timing assumptions.
  std::string K1 = fakeKey('6'), K2 = fakeKey('7'), K3 = fakeKey('8');
  for (const std::string &K : {K1, K2, K3}) {
    T.plantSo(K, std::string(1000, 'x'));
    recordCacheArtifact(T.str(), K, "prog");
    std::this_thread::sleep_for(std::chrono::milliseconds(3));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(3));
  touchCacheArtifact(T.str(), K1); // K1 is now the warmest; K2 the coldest

  uint64_t Before = cacheEvictionCount();
  // Cap at 2500 bytes: one eviction needed, and K3 (just installed) is
  // protected — so the coldest unprotected artifact, K2, must go.
  uint64_t Evicted = enforceCacheCap(T.str(), 2500, /*ProtectKey=*/K3);
  EXPECT_EQ(Evicted, 1u);
  EXPECT_EQ(cacheEvictionCount(), Before + 1);
  EXPECT_TRUE(fs::exists(T.soPath(K1)));
  EXPECT_FALSE(fs::exists(T.soPath(K2)));
  EXPECT_TRUE(fs::exists(T.soPath(K3)));

  auto Entries = readCacheIndexEntries(T.str());
  EXPECT_NE(findEntry(Entries, K1), nullptr);
  EXPECT_EQ(findEntry(Entries, K2), nullptr); // row dropped with the file
  EXPECT_NE(findEntry(Entries, K3), nullptr);
}

TEST(CacheEvict, NoCapOrUnderCapEvictsNothing) {
  TempCacheDir T;
  std::string K = fakeKey('9');
  T.plantSo(K, std::string(100, 'x'));
  recordCacheArtifact(T.str(), K, "prog");
  EXPECT_EQ(enforceCacheCap(T.str(), 1000000), 0u);
  EXPECT_TRUE(fs::exists(T.soPath(K)));
}

TEST(CacheEvict, OrphanArtifactsWithoutIndexRowsAreStillEvictable) {
  TempCacheDir T;
  // An artifact with no index row (a v0-era file, or a crash between the
  // .so rename and the index rewrite) must still count toward the cap and
  // be evictable by file mtime.
  std::string Orphan = fakeKey('a');
  T.plantSo(Orphan, std::string(2000, 'x'));
  EXPECT_EQ(enforceCacheCap(T.str(), 500), 1u);
  EXPECT_FALSE(fs::exists(T.soPath(Orphan)));
}

} // namespace

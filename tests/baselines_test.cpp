//===--- tests/baselines_test.cpp - hand-coded baseline sanity tests ----------===//

#include <cmath>
#include <fstream>

#include <gtest/gtest.h>

#include "baselines/baselines.h"
#include "image/pnm.h"
#include "synth/synth.h"

namespace diderot {
namespace {

TEST(Baselines, VrLiteRendersTheHand) {
  Image Hand = synth::ctHand(32);
  baselines::VrParams P;
  P.ResU = 60;
  P.ResV = 45;
  P.scaleToResolution();
  baselines::GrayImage Out = baselines::vrLite(Hand, P);
  ASSERT_EQ(Out.Pix.size(), size_t(60 * 45));
  size_t Lit = 0;
  double MaxV = 0;
  for (double V : Out.Pix) {
    EXPECT_GE(V, 0.0);
    Lit += V > 0.05;
    MaxV = std::max(MaxV, V);
  }
  // The hand covers a sizable part of the frame and shading is bounded.
  EXPECT_GT(Lit, Out.Pix.size() / 20);
  EXPECT_LT(Lit, Out.Pix.size());
  EXPECT_LE(MaxV, 1.5);
  // The center of the frame (palm) is lit; the corner is background.
  EXPECT_GT(Out.Pix[static_cast<size_t>(22 * 60 + 30)], 0.05);
  EXPECT_LT(Out.Pix[0], 0.01);
}

TEST(Baselines, IllustVrProducesColor) {
  Image Hand = synth::ctHand(24);
  Image Xfer = synth::curvatureColormap(32);
  baselines::VrParams P;
  P.ResU = 40;
  P.ResV = 30;
  P.scaleToResolution();
  baselines::RgbImage Out = baselines::illustVr(Hand, Xfer, P);
  ASSERT_EQ(Out.Pix.size(), size_t(3 * 40 * 30));
  size_t Colored = 0;
  for (size_t K = 0; K < Out.Pix.size(); K += 3)
    Colored += Out.Pix[K] + Out.Pix[K + 1] + Out.Pix[K + 2] > 0.1;
  EXPECT_GT(Colored, size_t(30));
}

TEST(Baselines, LicBlursAlongStreamlines) {
  Image Flow = synth::flow2d(96);
  Image Noise = synth::noise2d(96);
  baselines::LicParams P;
  P.ResU = 80;
  P.ResV = 80;
  baselines::GrayImage Out = baselines::lic2d(Flow, Noise, P);
  ASSERT_EQ(Out.Pix.size(), size_t(80 * 80));
  // Around the left vortex the flow is horizontal above the core; the
  // image must be smoother along x than along y there.
  auto At = [&](int U, int V) {
    return Out.Pix[static_cast<size_t>(V * 80 + U)];
  };
  int CU = static_cast<int>((-0.45 - P.Lo) / (P.Hi - P.Lo) * 79);
  int CV = static_cast<int>((0.25 - P.Lo) / (P.Hi - P.Lo) * 79);
  double Along = 0, Across = 0;
  for (int D = -6; D <= 6; ++D) {
    Along += std::abs(At(CU + D + 1, CV) - At(CU + D, CV));
    Across += std::abs(At(CU + D, CV + 1) - At(CU + D, CV));
  }
  EXPECT_LT(Along, Across);
}

TEST(Baselines, RidgeParticlesLandOnCenterlines) {
  Image Lung = synth::lungVessels(48);
  baselines::RidgeParams P;
  P.Res = 10;
  std::vector<std::array<double, 3>> Pts = baselines::ridge3d(Lung, P);
  ASSERT_GT(Pts.size(), 4u) << "some particles must converge";
  // The trunk segment runs along x=0,z=0: every converged point must be
  // close to *some* vessel (true centerlines are Gaussian ridge maxima).
  const double Tree[][7] = {
      {0.0, -0.85, 0.0, 0.0, -0.25, 0.0, 0.10},
      {0.0, -0.25, 0.0, -0.45, 0.25, 0.15, 0.075},
      {0.0, -0.25, 0.0, 0.45, 0.25, -0.15, 0.075},
      {-0.45, 0.25, 0.15, -0.70, 0.70, 0.05, 0.055},
      {-0.45, 0.25, 0.15, -0.20, 0.70, 0.35, 0.055},
      {0.45, 0.25, -0.15, 0.70, 0.70, -0.05, 0.055},
      {0.45, 0.25, -0.15, 0.20, 0.70, -0.35, 0.055},
  };
  auto DistSeg = [](const double *Pt, const double *A, const double *B) {
    double AB[3] = {B[0] - A[0], B[1] - A[1], B[2] - A[2]};
    double AP[3] = {Pt[0] - A[0], Pt[1] - A[1], Pt[2] - A[2]};
    double L2 = AB[0] * AB[0] + AB[1] * AB[1] + AB[2] * AB[2];
    double T = (AP[0] * AB[0] + AP[1] * AB[1] + AP[2] * AB[2]) / L2;
    T = std::min(1.0, std::max(0.0, T));
    double D2 = 0;
    for (int K = 0; K < 3; ++K) {
      double D = Pt[K] - (A[K] + T * AB[K]);
      D2 += D * D;
    }
    return std::sqrt(D2);
  };
  int Near = 0;
  for (const auto &Pt : Pts) {
    double Best = 1e9;
    for (const double *Seg : Tree)
      Best = std::min(Best, DistSeg(Pt.data(), Seg, Seg + 3));
    Near += Best < 0.1;
  }
  // Most converged particles are on (or very near) a centerline; junction
  // regions can host spurious ridge points.
  EXPECT_GE(Near * 4, static_cast<int>(Pts.size()) * 3);
}

TEST(Pnm, WritersProduceValidHeaders) {
  std::string Dir = ::testing::TempDir();
  std::vector<double> Gray(16 * 8, 0.5);
  ASSERT_TRUE(writePgm(Dir + "/t.pgm", 16, 8, Gray).isOk());
  std::vector<double> Rgb(16 * 8 * 3, 0.25);
  ASSERT_TRUE(writePpm(Dir + "/t.ppm", 16, 8, Rgb).isOk());
  std::ifstream P(Dir + "/t.pgm", std::ios::binary);
  std::string Magic, WH;
  std::getline(P, Magic);
  EXPECT_EQ(Magic, "P5");
  std::getline(P, WH);
  EXPECT_EQ(WH, "16 8");
  // Size check: header + pixels.
  P.seekg(0, std::ios::end);
  EXPECT_GE(static_cast<long>(P.tellg()), 16 * 8);
}

TEST(Pnm, RejectsSizeMismatch) {
  std::vector<double> Gray(10, 0.0);
  EXPECT_FALSE(writePgm(::testing::TempDir() + "/bad.pgm", 4, 4, Gray).isOk());
}

TEST(Synth, CurvatureColormapDistinguishesRegions) {
  Image Map = synth::curvatureColormap(64);
  ASSERT_EQ(Map.valueShape(), (Shape{3}));
  // Convex corner (k1,k2 both -1) is red-ish, concave (both +1) blue-ish,
  // saddle (k1=-1, k2=+1) green-ish.
  int Convex[2] = {0, 0}, Concave[2] = {63, 63}, Saddle[2] = {0, 63};
  EXPECT_GT(Map.sample(Convex, 0), Map.sample(Convex, 2));
  EXPECT_GT(Map.sample(Concave, 2), Map.sample(Concave, 0));
  EXPECT_GT(Map.sample(Saddle, 1), 0.5);
}

} // namespace
} // namespace diderot

//===--- tests/scheduler_test.cpp - bulk-synchronous scheduler tests ---------===//

#include <atomic>

#include <gtest/gtest.h>

#include "runtime/scheduler.h"

namespace diderot::rt {
namespace {

TEST(Scheduler, SequentialRunsUntilAllStable) {
  // Strand i stabilizes after i+1 updates.
  std::vector<StrandStatus> S(5, StrandStatus::Active);
  std::vector<int> Count(5, 0);
  int Steps = runSequential(
      S,
      [&](size_t I) {
        ++Count[I];
        return Count[I] > static_cast<int>(I) ? StrandStatus::Stable
                                              : StrandStatus::Active;
      },
      100);
  EXPECT_EQ(Steps, 5);
  for (size_t I = 0; I < 5; ++I) {
    EXPECT_EQ(S[I], StrandStatus::Stable);
    EXPECT_EQ(Count[I], static_cast<int>(I) + 1);
  }
}

TEST(Scheduler, SequentialHonorsMaxSteps) {
  std::vector<StrandStatus> S(3, StrandStatus::Active);
  int Steps = runSequential(
      S, [&](size_t) { return StrandStatus::Active; }, 7);
  EXPECT_EQ(Steps, 7);
  for (StrandStatus St : S)
    EXPECT_EQ(St, StrandStatus::Active);
}

TEST(Scheduler, SequentialSkipsNonActive) {
  std::vector<StrandStatus> S = {StrandStatus::Stable, StrandStatus::Active,
                                 StrandStatus::Dead};
  std::vector<int> Count(3, 0);
  runSequential(
      S,
      [&](size_t I) {
        ++Count[I];
        return StrandStatus::Stable;
      },
      100);
  EXPECT_EQ(Count[0], 0);
  EXPECT_EQ(Count[1], 1);
  EXPECT_EQ(Count[2], 0);
}

TEST(Scheduler, SequentialEmptyIsZeroSteps) {
  std::vector<StrandStatus> S;
  EXPECT_EQ(runSequential(S, [&](size_t) { return StrandStatus::Stable; },
                          100),
            0);
  std::vector<StrandStatus> AllDone(4, StrandStatus::Stable);
  EXPECT_EQ(runSequential(AllDone,
                          [&](size_t) { return StrandStatus::Stable; }, 100),
            0);
}

/// Parameterized over (workers, blockSize): the parallel scheduler must
/// update every active strand exactly once per superstep regardless of the
/// partitioning.
class ParallelSweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(ParallelSweep, EveryStrandUpdatedExactlyOncePerStep) {
  auto [Workers, Block] = GetParam();
  const size_t N = 1000;
  std::vector<StrandStatus> S(N, StrandStatus::Active);
  std::vector<std::atomic<int>> Count(N);
  int Steps = runParallel(
      S,
      [&](size_t I) {
        int C = ++Count[I];
        return C >= 3 ? StrandStatus::Stable : StrandStatus::Active;
      },
      100, Workers, Block);
  EXPECT_EQ(Steps, 3);
  for (size_t I = 0; I < N; ++I)
    EXPECT_EQ(Count[I].load(), 3) << "strand " << I;
}

TEST_P(ParallelSweep, MixedLifecycles) {
  auto [Workers, Block] = GetParam();
  const size_t N = 500;
  std::vector<StrandStatus> S(N, StrandStatus::Active);
  std::vector<std::atomic<int>> Count(N);
  runParallel(
      S,
      [&](size_t I) {
        int C = ++Count[I];
        if (I % 3 == 0)
          return StrandStatus::Dead; // dies on first update
        return C > static_cast<int>(I % 5) ? StrandStatus::Stable
                                           : StrandStatus::Active;
      },
      100, Workers, Block);
  for (size_t I = 0; I < N; ++I) {
    if (I % 3 == 0) {
      EXPECT_EQ(S[I], StrandStatus::Dead);
      EXPECT_EQ(Count[I].load(), 1);
    } else {
      EXPECT_EQ(S[I], StrandStatus::Stable);
      EXPECT_EQ(Count[I].load(), static_cast<int>(I % 5) + 1);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ParallelSweep,
    ::testing::Combine(::testing::Values(1, 2, 4, 8),
                       ::testing::Values(1, 16, 4096)));

TEST(Scheduler, ParallelZeroWorkersFallsBackToSequential) {
  std::vector<StrandStatus> S(10, StrandStatus::Active);
  int Steps = runParallel(
      S, [&](size_t) { return StrandStatus::Stable; }, 100, 0);
  EXPECT_EQ(Steps, 1);
}

TEST(Scheduler, ParallelHonorsMaxSteps) {
  std::vector<StrandStatus> S(100, StrandStatus::Active);
  int Steps = runParallel(
      S, [&](size_t) { return StrandStatus::Active; }, 5, 4, 16);
  EXPECT_EQ(Steps, 5);
}

TEST(Scheduler, ParallelClampsNonPositiveBlockSize) {
  // BlockSize <= 0 used to divide by zero computing the block count; it must
  // clamp to DefaultBlockSize and still update every strand.
  for (int Block : {0, -1, -4096}) {
    const size_t N = 1000;
    std::vector<StrandStatus> S(N, StrandStatus::Active);
    std::vector<std::atomic<int>> Count(N);
    int Steps = runParallel(
        S,
        [&](size_t I) {
          int C = ++Count[I];
          return C >= 2 ? StrandStatus::Stable : StrandStatus::Active;
        },
        100, 4, Block);
    EXPECT_EQ(Steps, 2) << "BlockSize " << Block;
    for (size_t I = 0; I < N; ++I)
      EXPECT_EQ(Count[I].load(), 2) << "strand " << I;
  }
}

} // namespace
} // namespace diderot::rt

//===--- tests/scheduler_test.cpp - bulk-synchronous scheduler tests ---------===//

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>

#include <gtest/gtest.h>

#include "runtime/scheduler.h"

namespace diderot::rt {
namespace {

TEST(Scheduler, SequentialRunsUntilAllStable) {
  // Strand i stabilizes after i+1 updates.
  std::vector<StrandStatus> S(5, StrandStatus::Active);
  std::vector<int> Count(5, 0);
  int Steps = runSequential(
      S,
      [&](size_t I) {
        ++Count[I];
        return Count[I] > static_cast<int>(I) ? StrandStatus::Stable
                                              : StrandStatus::Active;
      },
      100);
  EXPECT_EQ(Steps, 5);
  for (size_t I = 0; I < 5; ++I) {
    EXPECT_EQ(S[I], StrandStatus::Stable);
    EXPECT_EQ(Count[I], static_cast<int>(I) + 1);
  }
}

TEST(Scheduler, SequentialHonorsMaxSteps) {
  std::vector<StrandStatus> S(3, StrandStatus::Active);
  int Steps = runSequential(
      S, [&](size_t) { return StrandStatus::Active; }, 7);
  EXPECT_EQ(Steps, 7);
  for (StrandStatus St : S)
    EXPECT_EQ(St, StrandStatus::Active);
}

TEST(Scheduler, SequentialSkipsNonActive) {
  std::vector<StrandStatus> S = {StrandStatus::Stable, StrandStatus::Active,
                                 StrandStatus::Dead};
  std::vector<int> Count(3, 0);
  runSequential(
      S,
      [&](size_t I) {
        ++Count[I];
        return StrandStatus::Stable;
      },
      100);
  EXPECT_EQ(Count[0], 0);
  EXPECT_EQ(Count[1], 1);
  EXPECT_EQ(Count[2], 0);
}

TEST(Scheduler, SequentialEmptyIsZeroSteps) {
  std::vector<StrandStatus> S;
  EXPECT_EQ(runSequential(S, [&](size_t) { return StrandStatus::Stable; },
                          100),
            0);
  std::vector<StrandStatus> AllDone(4, StrandStatus::Stable);
  EXPECT_EQ(runSequential(AllDone,
                          [&](size_t) { return StrandStatus::Stable; }, 100),
            0);
}

/// Parameterized over (workers, blockSize): the parallel scheduler must
/// update every active strand exactly once per superstep regardless of the
/// partitioning.
class ParallelSweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(ParallelSweep, EveryStrandUpdatedExactlyOncePerStep) {
  auto [Workers, Block] = GetParam();
  const size_t N = 1000;
  std::vector<StrandStatus> S(N, StrandStatus::Active);
  std::vector<std::atomic<int>> Count(N);
  int Steps = runParallel(
      S,
      [&](size_t I) {
        int C = ++Count[I];
        return C >= 3 ? StrandStatus::Stable : StrandStatus::Active;
      },
      100, Workers, Block);
  EXPECT_EQ(Steps, 3);
  for (size_t I = 0; I < N; ++I)
    EXPECT_EQ(Count[I].load(), 3) << "strand " << I;
}

TEST_P(ParallelSweep, MixedLifecycles) {
  auto [Workers, Block] = GetParam();
  const size_t N = 500;
  std::vector<StrandStatus> S(N, StrandStatus::Active);
  std::vector<std::atomic<int>> Count(N);
  runParallel(
      S,
      [&](size_t I) {
        int C = ++Count[I];
        if (I % 3 == 0)
          return StrandStatus::Dead; // dies on first update
        return C > static_cast<int>(I % 5) ? StrandStatus::Stable
                                           : StrandStatus::Active;
      },
      100, Workers, Block);
  for (size_t I = 0; I < N; ++I) {
    if (I % 3 == 0) {
      EXPECT_EQ(S[I], StrandStatus::Dead);
      EXPECT_EQ(Count[I].load(), 1);
    } else {
      EXPECT_EQ(S[I], StrandStatus::Stable);
      EXPECT_EQ(Count[I].load(), static_cast<int>(I % 5) + 1);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ParallelSweep,
    ::testing::Combine(::testing::Values(1, 2, 4, 8),
                       ::testing::Values(1, 16, 4096)));

TEST(Scheduler, ParallelZeroWorkersFallsBackToSequential) {
  std::vector<StrandStatus> S(10, StrandStatus::Active);
  int Steps = runParallel(
      S, [&](size_t) { return StrandStatus::Stable; }, 100, 0);
  EXPECT_EQ(Steps, 1);
}

TEST(Scheduler, ParallelHonorsMaxSteps) {
  std::vector<StrandStatus> S(100, StrandStatus::Active);
  int Steps = runParallel(
      S, [&](size_t) { return StrandStatus::Active; }, 5, 4, 16);
  EXPECT_EQ(Steps, 5);
}

TEST(Scheduler, ParallelZeroMaxStepsSpawnsNoWorkAndRunsNothing) {
  // MaxSteps <= 0 used to spawn the full worker set, rendezvous at the
  // barrier once, and tear it down having updated nothing. Now it returns
  // before any thread exists.
  for (int MaxSteps : {0, -1}) {
    std::vector<StrandStatus> S(100, StrandStatus::Active);
    std::atomic<int> Updates{0};
    int Steps = runParallel(
        S,
        [&](size_t) {
          ++Updates;
          return StrandStatus::Stable;
        },
        MaxSteps, 4, 16);
    EXPECT_EQ(Steps, 0) << "MaxSteps " << MaxSteps;
    EXPECT_EQ(Updates.load(), 0);
    for (StrandStatus St : S)
      EXPECT_EQ(St, StrandStatus::Active);
  }
}

TEST(Scheduler, ParallelNoActiveStrandsRunsNothing) {
  std::vector<StrandStatus> Empty;
  EXPECT_EQ(runParallel(Empty,
                        [&](size_t) { return StrandStatus::Stable; }, 100,
                        4),
            0);
  std::vector<StrandStatus> AllDone(64, StrandStatus::Stable);
  AllDone[10] = StrandStatus::Dead;
  std::atomic<int> Updates{0};
  EXPECT_EQ(runParallel(AllDone,
                        [&](size_t) {
                          ++Updates;
                          return StrandStatus::Stable;
                        },
                        100, 4, 8),
            0);
  EXPECT_EQ(Updates.load(), 0);
}

TEST(Scheduler, ParallelMoreWorkersThanBlocksClampsAndCompletes) {
  // 2 blocks of work, 16 workers requested: surplus workers could never
  // claim a block (the active set only shrinks), so the scheduler clamps
  // before spawning and the run still updates every strand once per step.
  const size_t N = 2 * 8;
  std::vector<StrandStatus> S(N, StrandStatus::Active);
  std::vector<std::atomic<int>> Count(N);
  int Steps = runParallel(
      S,
      [&](size_t I) {
        int C = ++Count[I];
        return C >= 3 ? StrandStatus::Stable : StrandStatus::Active;
      },
      100, 16, 8);
  EXPECT_EQ(Steps, 3);
  for (size_t I = 0; I < N; ++I)
    EXPECT_EQ(Count[I].load(), 3) << "strand " << I;
}

TEST(Scheduler, ParallelClampsNonPositiveBlockSize) {
  // BlockSize <= 0 used to divide by zero computing the block count; it must
  // clamp to DefaultBlockSize and still update every strand.
  for (int Block : {0, -1, -4096}) {
    const size_t N = 1000;
    std::vector<StrandStatus> S(N, StrandStatus::Active);
    std::vector<std::atomic<int>> Count(N);
    int Steps = runParallel(
        S,
        [&](size_t I) {
          int C = ++Count[I];
          return C >= 2 ? StrandStatus::Stable : StrandStatus::Active;
        },
        100, 4, Block);
    EXPECT_EQ(Steps, 2) << "BlockSize " << Block;
    for (size_t I = 0; I < N; ++I)
      EXPECT_EQ(Count[I].load(), 2) << "strand " << I;
  }
}

//===----------------------------------------------------------------------===//
// Run-policy containment. This file is also compiled into test_runtime_tsan,
// so every test here certifies under ThreadSanitizer that the stop protocol
// (mid-superstep deadline/budget stop, barrier drain, worker join) is
// race-free.
//===----------------------------------------------------------------------===//

TEST(RunPolicy, DefaultIsInert) {
  RunPolicy P;
  EXPECT_FALSE(P.active());
  RunControl Ctl(P);
  Ctl.begin(0);
  EXPECT_FALSE(Ctl.deadlineExpired());
  EXPECT_FALSE(Ctl.stopRequested());
  EXPECT_EQ(Ctl.finish(true), RunOutcome::Converged);
  EXPECT_EQ(Ctl.finish(false), RunOutcome::StepLimit);
}

TEST(RunPolicy, SequentialExceptionTrappedOthersConverge) {
  std::vector<StrandStatus> S(5, StrandStatus::Active);
  RunControl Ctl((RunPolicy()));
  int Steps = runSequential(
      S,
      [&](size_t I) -> StrandStatus {
        if (I == 2)
          throw std::runtime_error("boom");
        return StrandStatus::Stable;
      },
      100, nullptr, &Ctl);
  EXPECT_EQ(Steps, 1);
  for (size_t I = 0; I < 5; ++I)
    EXPECT_EQ(S[I], I == 2 ? StrandStatus::Faulted : StrandStatus::Stable);
  std::vector<StrandFault> F = Ctl.takeFaults();
  ASSERT_EQ(F.size(), 1u);
  EXPECT_EQ(F[0].Strand, 2u);
  EXPECT_EQ(F[0].Step, 0);
  EXPECT_EQ(F[0].Kind, FaultKind::Exception);
  EXPECT_EQ(F[0].Message, "boom");
  // A trapped fault under an unlimited budget does not change the verdict.
  EXPECT_EQ(Ctl.finish(true), RunOutcome::Converged);
}

TEST(RunPolicy, SequentialFaultBudgetStopsOnFirstFault) {
  RunPolicy P;
  P.MaxFaults = 0; // zero tolerance
  RunControl Ctl(P);
  std::vector<StrandStatus> S(8, StrandStatus::Active);
  int Updates = 0;
  runSequential(
      S,
      [&](size_t) -> StrandStatus {
        ++Updates;
        throw std::runtime_error("boom");
      },
      100, nullptr, &Ctl);
  // The first fault requests the stop; the per-strand check prevents any
  // further updates this superstep.
  EXPECT_EQ(Updates, 1);
  EXPECT_EQ(Ctl.faultCount(), 1);
  EXPECT_EQ(Ctl.finish(false), RunOutcome::FaultBudget);
}

TEST(RunPolicy, SequentialDeadlineStopsBeforeAnyUpdate) {
  RunPolicy P;
  P.DeadlineNs = 1; // expired by the time the first strand is reached
  RunControl Ctl(P);
  std::vector<StrandStatus> S(4, StrandStatus::Active);
  int Updates = 0;
  int Steps = runSequential(
      S,
      [&](size_t) {
        ++Updates;
        return StrandStatus::Active;
      },
      100, nullptr, &Ctl);
  EXPECT_EQ(Steps, 0);
  EXPECT_EQ(Updates, 0);
  EXPECT_EQ(Ctl.finish(false), RunOutcome::Deadline);
}

TEST(RunPolicy, SequentialWatchdogFlagsDivergence) {
  RunPolicy P;
  P.WatchdogSteps = 3;
  RunControl Ctl(P);
  std::vector<StrandStatus> S(4, StrandStatus::Active);
  int Steps = runSequential(
      S, [&](size_t) { return StrandStatus::Active; }, 100, nullptr, &Ctl);
  EXPECT_EQ(Steps, 3);
  EXPECT_EQ(Ctl.finish(false), RunOutcome::Diverged);
}

TEST(RunPolicy, SequentialWatchdogResetsOnProgress) {
  RunPolicy P;
  P.WatchdogSteps = 3;
  RunControl Ctl(P);
  // One strand retires every other superstep; the quiet streak never
  // reaches 3, so the run converges normally.
  std::vector<StrandStatus> S(8, StrandStatus::Active);
  std::vector<int> Count(8, 0);
  int Steps = runSequential(
      S,
      [&](size_t I) {
        return ++Count[I] > static_cast<int>(2 * I)
                   ? StrandStatus::Stable
                   : StrandStatus::Active;
      },
      100, nullptr, &Ctl);
  EXPECT_EQ(Steps, 15);
  EXPECT_EQ(Ctl.finish(true), RunOutcome::Converged);
}

TEST(RunPolicy, SequentialInjectionPlan) {
  RunPolicy P;
  P.Plan.at(3, 1, observe::FaultKind::Injected);
  P.Plan.at(1, 0, observe::FaultKind::Exception);
  RunControl Ctl(P);
  std::vector<StrandStatus> S(6, StrandStatus::Active);
  std::vector<int> Count(6, 0);
  runSequential(
      S,
      [&](size_t I) {
        return ++Count[I] >= 3 ? StrandStatus::Stable : StrandStatus::Active;
      },
      100, nullptr, &Ctl);
  EXPECT_EQ(S[1], StrandStatus::Faulted);
  EXPECT_EQ(S[3], StrandStatus::Faulted);
  EXPECT_EQ(Count[1], 0); // injected before the update ran
  EXPECT_EQ(Count[3], 1); // faulted in its second superstep
  for (size_t I : {0u, 2u, 4u, 5u})
    EXPECT_EQ(S[I], StrandStatus::Stable);
  std::vector<StrandFault> F = Ctl.takeFaults();
  ASSERT_EQ(F.size(), 2u);
  EXPECT_EQ(F[0].Strand, 1u);
  EXPECT_EQ(F[0].Kind, FaultKind::Exception);
  EXPECT_EQ(F[1].Strand, 3u);
  EXPECT_EQ(F[1].Step, 1);
  EXPECT_EQ(F[1].Kind, FaultKind::Injected);
  EXPECT_EQ(Ctl.finish(true), RunOutcome::Converged);
}

/// Deadline expiry mid-superstep under the full 8-worker pool: every worker
/// must drain out of its strand loop, still commit its Recorder span, reach
/// both barriers, and join — and the recorded rows must stay rectangular.
TEST(RunPolicyParallel, DeadlineStopsMidSuperstepAndJoins) {
  const int Workers = 8;
  const size_t N = 256;
  RunPolicy P;
  P.DeadlineNs = 5 * 1000 * 1000; // 5 ms; the superstep needs ~32 ms
  RunControl Ctl(P);
  observe::Recorder Rec;
  Rec.start(Workers);
  std::vector<StrandStatus> S(N, StrandStatus::Active);
  std::atomic<int> Updates{0};
  int Steps = runParallel(
      S,
      [&](size_t) {
        Updates.fetch_add(1, std::memory_order_relaxed);
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        return StrandStatus::Active;
      },
      100, Workers, 4, &Rec, &Ctl);
  // runParallel returning proves all workers joined.
  EXPECT_EQ(Ctl.finish(false), RunOutcome::Deadline);
  EXPECT_LT(Updates.load(), static_cast<int>(N)); // stopped mid-superstep
  RunStats R = Rec.take(Steps, Workers);
  ASSERT_EQ(R.Workers.size(), static_cast<size_t>(Workers));
  uint64_t SpanSum = 0;
  for (const std::vector<observe::WorkerSpan> &Row : R.Workers) {
    // Every worker committed a span for every superstep — no torn rows.
    EXPECT_EQ(Row.size(), static_cast<size_t>(Steps));
    for (const observe::WorkerSpan &Sp : Row)
      SpanSum += Sp.Updated;
  }
  EXPECT_EQ(SpanSum, R.Totals.Updated);
  EXPECT_EQ(SpanSum, static_cast<uint64_t>(Updates.load()));
}

/// Fault-budget exhaustion with every strand throwing: the stop propagates
/// to all 8 workers, the pool shuts down, and every fault that was recorded
/// before the stop is preserved.
TEST(RunPolicyParallel, FaultBudgetStopsAllWorkersJoin) {
  const int Workers = 8;
  const size_t N = 4096;
  RunPolicy P;
  P.MaxFaults = 10;
  RunControl Ctl(P);
  std::vector<StrandStatus> S(N, StrandStatus::Active);
  runParallel(
      S,
      [&](size_t) -> StrandStatus { throw std::runtime_error("boom"); },
      100, Workers, 16, nullptr, &Ctl);
  EXPECT_EQ(Ctl.finish(false), RunOutcome::FaultBudget);
  // At least 11 faults were needed to trip the budget; concurrent workers
  // may overshoot slightly, but every recorded fault is consistent.
  std::vector<StrandFault> F = Ctl.takeFaults();
  EXPECT_GE(F.size(), 11u);
  EXPECT_EQ(static_cast<int64_t>(F.size()), Ctl.faultCount());
  size_t Faulted = 0;
  for (StrandStatus St : S)
    Faulted += St == StrandStatus::Faulted;
  EXPECT_EQ(Faulted, F.size());
  for (const StrandFault &Fault : F) {
    EXPECT_EQ(Fault.Kind, FaultKind::Exception);
    EXPECT_EQ(Fault.Message, "boom");
    EXPECT_GE(Fault.Worker, 0);
    EXPECT_LT(Fault.Worker, Workers);
  }
}

TEST(RunPolicyParallel, WatchdogFlagsDivergence) {
  RunPolicy P;
  P.WatchdogSteps = 2;
  RunControl Ctl(P);
  std::vector<StrandStatus> S(100, StrandStatus::Active);
  int Steps = runParallel(
      S, [&](size_t) { return StrandStatus::Active; }, 100, 4, 16, nullptr,
      &Ctl);
  EXPECT_EQ(Steps, 2);
  EXPECT_EQ(Ctl.finish(false), RunOutcome::Diverged);
}

TEST(RunPolicyParallel, ExceptionTrappedOthersConverge) {
  const int Workers = 8;
  const size_t N = 500;
  RunControl Ctl((RunPolicy()));
  std::vector<StrandStatus> S(N, StrandStatus::Active);
  std::vector<std::atomic<int>> Count(N);
  int Steps = runParallel(
      S,
      [&](size_t I) -> StrandStatus {
        if (I == 13)
          throw std::runtime_error("boom");
        int C = ++Count[I];
        return C >= 2 ? StrandStatus::Stable : StrandStatus::Active;
      },
      100, Workers, 16, nullptr, &Ctl);
  EXPECT_EQ(Steps, 2);
  EXPECT_EQ(Ctl.finish(true), RunOutcome::Converged);
  for (size_t I = 0; I < N; ++I)
    EXPECT_EQ(S[I], I == 13 ? StrandStatus::Faulted : StrandStatus::Stable);
  std::vector<StrandFault> F = Ctl.takeFaults();
  ASSERT_EQ(F.size(), 1u);
  EXPECT_EQ(F[0].Strand, 13u);
}

} // namespace
} // namespace diderot::rt

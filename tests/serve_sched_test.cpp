//===--- tests/serve_sched_test.cpp - fair job scheduler ---------------------===//
//
// Part of the Diderot-C++ reproduction (PLDI 2012).
//
// serve/job_queue.h: concurrency, strict round-robin fairness across keys,
// the capacity bound, and stop semantics. Also compiled (from source) into
// an instrumented binary as the serve_sched TSan case — keep it free of
// uninstrumented native-engine code.
//
//===----------------------------------------------------------------------===//

#include "serve/job_queue.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

using namespace diderot;
using serve::FairScheduler;

TEST(FairScheduler, RunsSubmittedJobs) {
  FairScheduler S;
  FairScheduler::Options O;
  O.Workers = 4;
  S.start(O);
  std::atomic<int> Ran{0};
  for (int J = 0; J < 32; ++J)
    ASSERT_TRUE(S.submit("k" + std::to_string(J % 3), [&] { ++Ran; }).isOk());
  S.waitIdle();
  EXPECT_EQ(Ran.load(), 32);
  EXPECT_EQ(S.depth(), 0);
  EXPECT_EQ(S.inFlight(), 0);
  S.stop();
}

TEST(FairScheduler, RoundRobinAcrossKeys) {
  // One worker, and a gate job holding it while we queue a backlog: 3 jobs
  // for key A, then 1 job for key B. Fairness means B's single job must run
  // after at most one A job, not behind A's whole backlog.
  FairScheduler S;
  FairScheduler::Options O;
  O.Workers = 1;
  S.start(O);

  std::mutex Mu;
  std::condition_variable Cv;
  bool Open = false;
  std::vector<std::string> RunOrder; // guarded by Mu
  auto Gate = [&] {
    std::unique_lock<std::mutex> L(Mu);
    Cv.wait(L, [&] { return Open; });
  };
  ASSERT_TRUE(S.submit("gate", Gate).isOk());
  // The worker is now (or will shortly be) parked in the gate job; the
  // submissions below all queue behind it.
  auto Mark = [&](const char *Tag) {
    return [&, Tag] {
      std::lock_guard<std::mutex> L(Mu);
      RunOrder.push_back(Tag);
    };
  };
  ASSERT_TRUE(S.submit("A", Mark("A1")).isOk());
  ASSERT_TRUE(S.submit("A", Mark("A2")).isOk());
  ASSERT_TRUE(S.submit("A", Mark("A3")).isOk());
  ASSERT_TRUE(S.submit("B", Mark("B1")).isOk());
  {
    std::lock_guard<std::mutex> L(Mu);
    Open = true;
  }
  Cv.notify_all();
  S.waitIdle();

  ASSERT_EQ(RunOrder.size(), 4u);
  // Strict rotation: A1 (A's turn), B1 (B's turn), A2, A3.
  EXPECT_EQ(RunOrder[0], "A1");
  EXPECT_EQ(RunOrder[1], "B1");
  EXPECT_EQ(RunOrder[2], "A2");
  EXPECT_EQ(RunOrder[3], "A3");
  S.stop();
}

TEST(FairScheduler, CapacityBound) {
  FairScheduler S;
  FairScheduler::Options O;
  O.Workers = 1;
  O.Capacity = 2;
  S.start(O);
  std::mutex Mu;
  std::condition_variable Cv;
  bool Open = false;
  ASSERT_TRUE(S.submit("gate", [&] {
                 std::unique_lock<std::mutex> L(Mu);
                 Cv.wait(L, [&] { return Open; });
               }).isOk());
  // Wait for the gate job to be picked up so capacity applies to the rest.
  while (S.inFlight() != 1)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  EXPECT_TRUE(S.submit("a", [] {}).isOk());
  EXPECT_TRUE(S.submit("b", [] {}).isOk());
  Status Full = S.submit("c", [] {});
  EXPECT_FALSE(Full.isOk());
  EXPECT_EQ(Full.message(), "queue full");
  EXPECT_EQ(S.depth(), 2);
  {
    std::lock_guard<std::mutex> L(Mu);
    Open = true;
  }
  Cv.notify_all();
  S.waitIdle();
  S.stop();
}

TEST(FairScheduler, ZeroCapacityRejectsEverything) {
  FairScheduler S;
  FairScheduler::Options O;
  O.Capacity = 0;
  S.start(O);
  EXPECT_FALSE(S.submit("k", [] {}).isOk());
  S.stop();
}

TEST(FairScheduler, SubmitAfterStopFails) {
  FairScheduler S;
  S.start({});
  S.stop();
  EXPECT_FALSE(S.submit("k", [] {}).isOk());
}

TEST(FairScheduler, StopDiscardsQueuedFinishesRunning) {
  FairScheduler S;
  FairScheduler::Options O;
  O.Workers = 1;
  S.start(O);
  std::mutex Mu;
  std::condition_variable Cv;
  bool Open = false;
  std::atomic<bool> GateRan{false};
  std::atomic<int> QueuedRan{0};
  ASSERT_TRUE(S.submit("gate", [&] {
                 std::unique_lock<std::mutex> L(Mu);
                 Cv.wait(L, [&] { return Open; });
                 GateRan = true;
               }).isOk());
  while (S.inFlight() != 1)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  ASSERT_TRUE(S.submit("x", [&] { ++QueuedRan; }).isOk());
  std::thread Stopper([&] { S.stop(); });
  // Release the gate after stop() has begun; the running job must complete,
  // the queued one must be discarded.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  {
    std::lock_guard<std::mutex> L(Mu);
    Open = true;
  }
  Cv.notify_all();
  Stopper.join();
  EXPECT_TRUE(GateRan.load());
  EXPECT_EQ(QueuedRan.load(), 0);
}

TEST(FairScheduler, StopInvokesCancelCallbackOfEachDiscardedJob) {
  // stop() used to discard queued jobs silently — a daemon caller could
  // never tell its clients what happened to them. Now every discarded
  // entry's cancel callback runs exactly once, after the workers have
  // joined; entries that did run must not be cancelled.
  FairScheduler S;
  FairScheduler::Options O;
  O.Workers = 1;
  S.start(O);
  std::mutex Mu;
  std::condition_variable Cv;
  bool Open = false;
  ASSERT_TRUE(S.submit("gate", [&] {
                 std::unique_lock<std::mutex> L(Mu);
                 Cv.wait(L, [&] { return Open; });
               }).isOk());
  while (S.inFlight() != 1)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  std::atomic<int> Ran{0};
  std::atomic<int> Cancelled{0};
  std::atomic<bool> GateDone{false};
  for (int J = 0; J < 5; ++J)
    ASSERT_TRUE(S.submit("k" + std::to_string(J), [&] { ++Ran; },
                         [&] {
                           // Ordering contract: cancels fire only after
                           // running work has drained.
                           EXPECT_TRUE(GateDone.load());
                           ++Cancelled;
                         })
                    .isOk());
  std::thread Stopper([&] { S.stop(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  {
    std::lock_guard<std::mutex> L(Mu);
    Open = true;
    GateDone = true;
  }
  Cv.notify_all();
  Stopper.join();
  EXPECT_EQ(Ran.load(), 0);
  EXPECT_EQ(Cancelled.load(), 5);
  // A second stop must not re-run the cancels.
  S.stop();
  EXPECT_EQ(Cancelled.load(), 5);
}

TEST(FairScheduler, JobsWithoutCancelCallbackStillDiscardQuietly) {
  FairScheduler S;
  FairScheduler::Options O;
  O.Workers = 1;
  S.start(O);
  std::mutex Mu;
  std::condition_variable Cv;
  bool Open = false;
  ASSERT_TRUE(S.submit("gate", [&] {
                 std::unique_lock<std::mutex> L(Mu);
                 Cv.wait(L, [&] { return Open; });
               }).isOk());
  while (S.inFlight() != 1)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  // No cancel callback: the old two-argument submit keeps compiling and a
  // null cancel is simply skipped.
  ASSERT_TRUE(S.submit("x", [] {}).isOk());
  std::thread Stopper([&] { S.stop(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  {
    std::lock_guard<std::mutex> L(Mu);
    Open = true;
  }
  Cv.notify_all();
  Stopper.join();
}

TEST(FairScheduler, ManyThreadsSubmitConcurrently) {
  FairScheduler S;
  FairScheduler::Options O;
  O.Workers = 4;
  O.Capacity = 4096;
  S.start(O);
  std::atomic<int> Ran{0};
  std::vector<std::thread> Producers;
  for (int P = 0; P < 8; ++P)
    Producers.emplace_back([&, P] {
      for (int J = 0; J < 64; ++J)
        while (!S.submit("p" + std::to_string(P), [&] { ++Ran; }).isOk())
          std::this_thread::yield();
    });
  for (std::thread &T : Producers)
    T.join();
  S.waitIdle();
  EXPECT_EQ(Ran.load(), 8 * 64);
  S.stop();
}

TEST(FairScheduler, WaitIdleForDrainsWithinBudget) {
  FairScheduler S;
  FairScheduler::Options O;
  O.Workers = 2;
  S.start(O);
  std::atomic<int> Ran{0};
  for (int J = 0; J < 8; ++J)
    ASSERT_TRUE(S.submit("k", [&] { ++Ran; }).isOk());
  EXPECT_TRUE(S.waitIdleFor(10000));
  EXPECT_EQ(Ran.load(), 8);
  S.stop();
}

TEST(FairScheduler, WaitIdleForTimesOutWhenAJobOutlivesTheBudget) {
  FairScheduler S;
  FairScheduler::Options O;
  O.Workers = 1;
  S.start(O);

  std::mutex Mu;
  std::condition_variable Cv;
  bool Release = false;
  ASSERT_TRUE(S.submit("slow", [&] {
                 std::unique_lock<std::mutex> L(Mu);
                 Cv.wait(L, [&] { return Release; });
               }).isOk());

  // The job is parked on the gate: a short budget must time out (false),
  // and a zero budget is a non-blocking check.
  EXPECT_FALSE(S.waitIdleFor(50));
  EXPECT_FALSE(S.waitIdleFor(0));

  {
    std::lock_guard<std::mutex> G(Mu);
    Release = true;
  }
  Cv.notify_all();
  EXPECT_TRUE(S.waitIdleFor(10000));
  EXPECT_TRUE(S.waitIdleFor(0)); // idle now: non-blocking check is true
  S.stop();
}

//===--- tests/subprocess_test.cpp - supervised child-process execution ------===//
//
// Part of the Diderot-C++ reproduction (PLDI 2012).
//
// The failure-containment contract of support/subprocess.h: a hung child is
// killed at the wall-clock budget (whole process group, so grandchildren
// die too), diagnostics are captured and bounded, exec failures and signal
// deaths are classified, and only signal deaths retry.
//
//===----------------------------------------------------------------------===//

#include "support/subprocess.h"

#include <chrono>
#include <cstdlib>

#include <gtest/gtest.h>

namespace diderot::support {
namespace {

SubprocessCommand sh(const std::string &Script) {
  SubprocessCommand C;
  C.Argv = {"/bin/sh", "-c", Script};
  return C;
}

TEST(Subprocess, CapturesCombinedOutputAndExitCode) {
  auto R = runSupervised(sh("echo out; echo err 1>&2; exit 0"));
  ASSERT_TRUE(R.isOk()) << R.message();
  EXPECT_TRUE(R->succeeded());
  EXPECT_EQ(R->ExitCode, 0);
  EXPECT_FALSE(R->TimedOut);
  EXPECT_EQ(R->TermSignal, 0);
  EXPECT_NE(R->Output.find("out"), std::string::npos);
  EXPECT_NE(R->Output.find("err"), std::string::npos);
  EXPECT_EQ(R->Attempts, 1);
  EXPECT_GT(R->WallNs, 0u);
}

TEST(Subprocess, NonzeroExitIsDeterministicAndNeverRetried) {
  SubprocessCommand C = sh("exit 3");
  C.MaxRetries = 5;
  C.BackoffMs = 1;
  auto R = runSupervised(C);
  ASSERT_TRUE(R.isOk()) << R.message();
  EXPECT_FALSE(R->succeeded());
  EXPECT_EQ(R->ExitCode, 3);
  EXPECT_EQ(R->Attempts, 1) << "compile errors must not retry";
}

TEST(Subprocess, ExecFailureReportsExit127) {
  SubprocessCommand C;
  C.Argv = {"/nonexistent/diderot-no-such-binary"};
  auto R = runSupervised(C);
  ASSERT_TRUE(R.isOk()) << R.message();
  EXPECT_EQ(R->ExitCode, 127);
}

TEST(Subprocess, EmptyArgvIsASupervisorError) {
  SubprocessCommand C;
  EXPECT_FALSE(runSupervised(C).isOk());
  C.Argv = {""};
  EXPECT_FALSE(runSupervised(C).isOk());
}

TEST(Subprocess, HungChildIsKilledAtTheTimeout) {
  SubprocessCommand C = sh("echo started; sleep 600");
  C.TimeoutMs = 300;
  auto T0 = std::chrono::steady_clock::now();
  auto R = runSupervised(C);
  auto ElapsedMs = std::chrono::duration_cast<std::chrono::milliseconds>(
                       std::chrono::steady_clock::now() - T0)
                       .count();
  ASSERT_TRUE(R.isOk()) << R.message();
  EXPECT_TRUE(R->TimedOut);
  EXPECT_FALSE(R->succeeded());
  // Output emitted before the hang is still delivered.
  EXPECT_NE(R->Output.find("started"), std::string::npos);
  // Returned promptly — the worker is reusable, not wedged for 600s.
  EXPECT_LT(ElapsedMs, 10000);
  EXPECT_EQ(R->Attempts, 1) << "timeouts must not retry";
}

TEST(Subprocess, TimeoutKillsTheWholeProcessGroup) {
  // The shell exits immediately but leaves a backgrounded grandchild
  // holding the pipe's write end; without the group kill the supervisor
  // would block on EOF for 600 seconds.
  SubprocessCommand C = sh("sleep 600 & wait");
  C.TimeoutMs = 300;
  auto T0 = std::chrono::steady_clock::now();
  auto R = runSupervised(C);
  auto ElapsedMs = std::chrono::duration_cast<std::chrono::milliseconds>(
                       std::chrono::steady_clock::now() - T0)
                       .count();
  ASSERT_TRUE(R.isOk()) << R.message();
  EXPECT_TRUE(R->TimedOut);
  EXPECT_LT(ElapsedMs, 10000);
}

TEST(Subprocess, EscapedGrandchildCannotHangThePostKillDrain) {
  // A grandchild that left the process group (setsid, the daemonizing
  // build-tool pattern) survives the timeout's group kill while still
  // holding the inherited write end of the output pipe. EOF never comes;
  // the post-kill drain must give up after its bounded grace instead of
  // blocking until the grandchild exits.
  if (::system("command -v setsid >/dev/null 2>&1") != 0)
    GTEST_SKIP() << "setsid not available";
  SubprocessCommand C = sh("setsid sleep 600 & sleep 600");
  C.TimeoutMs = 300;
  auto T0 = std::chrono::steady_clock::now();
  auto R = runSupervised(C);
  auto ElapsedMs = std::chrono::duration_cast<std::chrono::milliseconds>(
                       std::chrono::steady_clock::now() - T0)
                       .count();
  ASSERT_TRUE(R.isOk()) << R.message();
  EXPECT_TRUE(R->TimedOut);
  // Timeout (300 ms) + drain grace (500 ms) + slack; nowhere near the
  // grandchild's 600 s lifetime.
  EXPECT_LT(ElapsedMs, 10000);
}

TEST(Subprocess, SignalDeathRetriesWithBackoff) {
  SubprocessCommand C = sh("kill -KILL $$");
  C.MaxRetries = 2;
  C.BackoffMs = 1;
  auto R = runSupervised(C);
  ASSERT_TRUE(R.isOk()) << R.message();
  EXPECT_EQ(R->TermSignal, SIGKILL);
  EXPECT_FALSE(R->succeeded());
  EXPECT_EQ(R->Attempts, 3) << "signal deaths are the transient class";
}

TEST(Subprocess, OutputIsCappedWithoutWedgingTheChild) {
  // ~4 MiB of output against the 1 MiB capture cap: excess must be read
  // and discarded (a full pipe would block the child forever).
  SubprocessCommand C =
      sh("i=0; while [ $i -lt 4096 ]; do printf '%1024d' $i; i=$((i+1)); done");
  C.TimeoutMs = 60000;
  auto R = runSupervised(C);
  ASSERT_TRUE(R.isOk()) << R.message();
  EXPECT_TRUE(R->succeeded()) << R->ExitCode;
  EXPECT_LE(R->Output.size(), SubprocessMaxCapture);
  EXPECT_GE(R->Output.size(), SubprocessMaxCapture / 2);
}

TEST(Subprocess, SplitCommandWords) {
  EXPECT_TRUE(splitCommandWords("").empty());
  EXPECT_TRUE(splitCommandWords("   \t ").empty());
  EXPECT_EQ(splitCommandWords("-O3"), (std::vector<std::string>{"-O3"}));
  EXPECT_EQ(splitCommandWords(" -O3  -ffast-math\tg++ "),
            (std::vector<std::string>{"-O3", "-ffast-math", "g++"}));
}

} // namespace
} // namespace diderot::support

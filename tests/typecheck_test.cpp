//===--- tests/typecheck_test.cpp ------------------------------------------===//

#include <gtest/gtest.h>

#include "frontend/parser.h"
#include "frontend/typecheck.h"
#include "testprograms.h"

namespace diderot {
namespace {

/// Parse + check; returns the program when everything succeeded.
std::unique_ptr<Program> checkOk(const std::string &Src) {
  DiagnosticEngine D;
  Parser P(Src, D);
  auto Prog = P.parseProgram();
  EXPECT_FALSE(D.hasErrors()) << D.str();
  bool Ok = typeCheck(*Prog, D);
  EXPECT_TRUE(Ok) << D.str();
  return Prog;
}

/// Parse + check expecting a type error whose message contains \p Needle.
void checkFails(const std::string &Src, const std::string &Needle) {
  DiagnosticEngine D;
  Parser P(Src, D);
  auto Prog = P.parseProgram();
  ASSERT_FALSE(D.hasErrors()) << "parse failed, not a type test:\n" << D.str();
  bool Ok = typeCheck(*Prog, D);
  EXPECT_FALSE(Ok) << "expected a type error mentioning '" << Needle << "'";
  EXPECT_NE(D.str().find(Needle), std::string::npos)
      << "diagnostics were:\n"
      << D.str();
}

/// A minimal valid program with a hole for global declarations and update
/// statements.
std::string wrap(const std::string &Globals, const std::string &Update) {
  return strf(Globals, R"(
strand S (int i) {
  output real out = 0.0;
  update { )",
              Update, R"( stabilize; }
}
initially [ S(i) | i in 0 .. 3 ];
)");
}

TEST(TypeCheck, PaperProgramsCheck) {
  checkOk(testprog::VrLite);
  checkOk(testprog::Lic2d);
  checkOk(testprog::Isocontour);
  checkOk(testprog::Curvature);
}

TEST(TypeCheck, ConvolutionTyping) {
  // Figure 2 rule: image(d)[s] ⊛ kernel#k : field#k(d)[s].
  auto P = checkOk(wrap(R"(
image(3)[] img = load("x.nrrd");
field#2(3)[] F = img ⊛ bspln3;
)",
                        ""));
  EXPECT_EQ(P->Globals[1].Init->Ty, Type::field(2, 3, Shape{}));
}

TEST(TypeCheck, ConvolutionKernelFirst) {
  checkOk(wrap("field#1(2)[] f = ctmr ⊛ load(\"d.nrrd\");\n", ""));
}

TEST(TypeCheck, ConvolutionContinuityMismatch) {
  checkFails(wrap(R"(
image(3)[] img = load("x.nrrd");
field#2(3)[] F = img ⊛ tent;
)",
                  ""),
             "field#0(3)[]");
}

TEST(TypeCheck, GradientTyping) {
  // ∇ : field#k(d)[] -> field#(k-1)(d)[d], k > 0.
  checkOk(wrap(R"(
field#2(3)[] F = load("x.nrrd") ⊛ bspln3;
field#1(3)[3] G = ∇F;
)",
               ""));
}

TEST(TypeCheck, GradientNeedsDifferentiability) {
  checkFails(wrap(R"(
field#0(2)[] R = load("r.nrrd") ⊛ tent;
field#0(2)[2] G = ∇R;
)",
                  ""),
             "differentiable");
}

TEST(TypeCheck, GradientOfVectorFieldNeedsOtimes) {
  checkFails(wrap(R"(
field#1(2)[2] V = load("v.nrrd") ⊛ ctmr;
field#0(2)[2,2] J = ∇V;
)",
                  ""),
             "∇⊗");
}

TEST(TypeCheck, HessianTyping) {
  // ∇⊗ appends the domain dimension to the range shape.
  checkOk(wrap(R"(
field#2(3)[] F = load("x.nrrd") ⊛ bspln3;
field#0(3)[3,3] H = ∇⊗∇F;
)",
               ""));
}

TEST(TypeCheck, ProbeTyping) {
  checkOk(wrap("field#2(3)[] F = load(\"x.nrrd\") ⊛ bspln3;\n",
               "real v = F([0.0, 0.0, 0.0]);"));
  checkOk(wrap("field#1(2)[2] V = load(\"v.nrrd\") ⊛ ctmr;\n",
               "vec2 v = V([0.0, 0.0]);"));
}

TEST(TypeCheck, ProbePositionDimensionMismatch) {
  checkFails(wrap("field#2(3)[] F = load(\"x.nrrd\") ⊛ bspln3;\n",
                  "real v = F([0.0, 0.0]);"),
             "probe position");
}

TEST(TypeCheck, InsideTyping) {
  checkOk(wrap("field#2(3)[] F = load(\"x.nrrd\") ⊛ bspln3;\n",
               "bool b = inside([0.0,0.0,0.0], F);"));
  checkFails(wrap("field#2(3)[] F = load(\"x.nrrd\") ⊛ bspln3;\n",
                  "bool b = inside([0.0,0.0], F);"),
             "inside position");
}

TEST(TypeCheck, FieldArithmetic) {
  checkOk(wrap(R"(
field#2(3)[] F = load("x.nrrd") ⊛ bspln3;
field#1(3)[] G = load("y.nrrd") ⊛ ctmr;
field#1(3)[] S = F + G;
field#2(3)[] T = 2.0 * F;
field#2(3)[] U = F / 3.0;
field#2(3)[] N = -F;
)",
               ""));
}

TEST(TypeCheck, FieldAddTakesMinContinuity) {
  // field#2 + field#1 is field#1, not field#2.
  checkFails(wrap(R"(
field#2(3)[] F = load("x.nrrd") ⊛ bspln3;
field#1(3)[] G = load("y.nrrd") ⊛ ctmr;
field#2(3)[] S = F + G;
)",
                  ""),
             "field#1(3)[]");
}

TEST(TypeCheck, TensorOperators) {
  checkOk(wrap("", R"(
vec3 u = [1.0, 2.0, 3.0];
vec3 v = [4.0, 5.0, 6.0];
real d = u • v;
vec3 c = u × v;
tensor[3,3] o = u ⊗ v;
real n = |u|;
tensor[3,3] m = identity[3];
vec3 mv = m • u;
real tr = trace(m);
)"));
}

TEST(TypeCheck, DotContractionShapes) {
  // matrix • matrix -> matrix; matrix • vector -> vector.
  checkOk(wrap("", R"(
tensor[3,3] a = identity[3];
tensor[3,3] b = a • a;
vec3 v = a • [1.0, 0.0, 0.0];
)"));
  checkFails(wrap("", "real x = [1.0,2.0] • [1.0,2.0,3.0];"), "no instance");
}

TEST(TypeCheck, StrictIntRealSeparation) {
  checkFails(wrap("", "real x = 1 + 2.0;"), "no instance");
  checkOk(wrap("", "real x = real(1) + 2.0;"));
}

TEST(TypeCheck, PowAllowsIntExponent) {
  checkOk(wrap("", "real x = 2.0; real y = x^2;"));
}

TEST(TypeCheck, ImmutableGlobals) {
  checkFails(wrap("input real g = 1.0;\n", "g = 2.0;"), "immutable");
}

TEST(TypeCheck, ParamsImmutable) {
  checkFails(R"(
strand S (int i) {
  output real out = 0.0;
  update { i = 3; stabilize; }
}
initially [ S(i) | i in 0 .. 3 ];
)",
             "immutable");
}

TEST(TypeCheck, UndefinedVariable) {
  checkFails(wrap("", "real x = nothere;"), "undefined variable");
}

TEST(TypeCheck, AssignTypeMismatch) {
  checkFails(wrap("", "real x = 1.0; x = true;"), "cannot assign");
}

TEST(TypeCheck, ConditionMustBeBool) {
  checkFails(wrap("", "if (1) { out = 1.0; }"), "must be bool");
}

TEST(TypeCheck, CondExprBranchMismatch) {
  checkFails(wrap("", "real x = 1.0 if true else 2;"), "different types");
}

TEST(TypeCheck, LoadOnlyAtGlobalScope) {
  checkFails(wrap("", "image(2)[] i = load(\"x.nrrd\");"),
             "global scope");
}

TEST(TypeCheck, FieldsCannotBeInputs) {
  checkFails(wrap("input field#2(3)[] F;\n", ""), "cannot be input");
}

TEST(TypeCheck, OutputRequired) {
  checkFails(R"(
strand S (int i) {
  real x = 0.0;
  update { x = 1.0; stabilize; }
}
initially [ S(i) | i in 0 .. 3 ];
)",
             "no output variables");
}

TEST(TypeCheck, StateInitsSeeParams) {
  checkOk(R"(
strand S (vec2 p) {
  vec2 q = 2.0 * p;
  output real out = |q|;
  update { stabilize; }
}
initially [ S([0.1*real(i), 0.0]) | i in 0 .. 3 ];
)");
}

TEST(TypeCheck, InitArgCountMismatch) {
  checkFails(R"(
strand S (int i, int j) {
  output real out = 0.0;
  update { stabilize; }
}
initially [ S(i) | i in 0 .. 3 ];
)",
             "takes 2 arguments");
}

TEST(TypeCheck, IteratorBoundsMustBeInt) {
  checkFails(R"(
strand S (int i) {
  output real out = 0.0;
  update { stabilize; }
}
initially [ S(i) | i in 0 .. 3.5 ];
)",
             "must be int");
}

TEST(TypeCheck, EigenBuiltins) {
  checkOk(wrap("", R"(
tensor[3,3] h = identity[3];
vec3 ev = evals(h);
tensor[3,3] evs = evecs(h);
tensor[2,2] h2 = identity[2];
vec2 ev2 = evals(h2);
)"));
}

TEST(TypeCheck, SequenceTypesAndIndexing) {
  checkOk(wrap("", R"(
real{3} s = {1.0, 2.0, 3.0};
real x = s[1];
int k = 2;
real y = s[k];
)"));
  checkFails(wrap("", "real{2} s = {1.0, true};"), "same type");
}

TEST(TypeCheck, TensorIndexing) {
  checkOk(wrap("", R"(
tensor[3,3] m = identity[3];
real x = m[0,1];
vec3 row = m[2];
)"));
  checkFails(wrap("", "tensor[3,3] m = identity[3]; real x = m[0,1,2];"),
             "cannot be indexed");
}

TEST(TypeCheck, NablaOnNonField) {
  checkFails(wrap("", "vec3 v = [1.0,2.0,3.0]; real q = |∇v|;"),
             "requires a scalar field");
}

TEST(TypeCheck, ShadowingInNestedBlockAllowed) {
  checkOk(wrap("", R"(
real x = 1.0;
if (true) { real y = 2.0; out = x + y; }
)"));
}

TEST(TypeCheck, RedefinitionInSameScopeRejected) {
  checkFails(wrap("", "real x = 1.0; real x = 2.0;"), "redefinition");
}

TEST(TypeCheck, StabilizeOutsideUpdateRejected) {
  checkFails(R"(
strand S (int i) {
  output real out = 0.0;
  update { stabilize; }
  stabilize { die; }
}
initially [ S(i) | i in 0 .. 3 ];
)",
             "only allowed in the update method");
}

TEST(TypeCheck, MinMaxOverloads) {
  checkOk(wrap("", R"(
real a = max(1.0, 2.0);
int b = max(1, 2);
real c = min(a, 3.0);
)"));
}

TEST(TypeCheck, AsciiOperatorAliases) {
  // dot/cross/outer/convolve are function spellings of the Unicode ops.
  checkOk(wrap("field#1(2)[] f = convolve(load(\"d.nrrd\"), ctmr);\n", R"(
vec3 u = [1.0, 2.0, 3.0];
vec3 v = [4.0, 5.0, 6.0];
real d = dot(u, v);
vec3 c = cross(u, v);
tensor[3,3] o = outer(u, v);
)"));
  checkFails(wrap("", "real x = dot(1.0, 2.0);"), "no instance");
  checkFails(wrap("", "real x = dot(1.0);"), "two arguments");
}

TEST(TypeCheck, AsciiAliasShadowedByVariable) {
  // A probe of a field named `dot` must win over the builtin alias.
  checkOk(wrap("field#1(2)[] dot = ctmr ⊛ load(\"d.nrrd\");\n",
               "real x = dot([0.1, 0.2]);"));
}

TEST(TypeCheck, NormalizedCurvatureExpression) {
  // The heart of Figure 3, as one expression chain.
  checkOk(wrap(R"(
field#2(3)[] F = load("x.nrrd") ⊛ bspln3;
)",
               R"(
vec3 grad = -∇F([0.5,0.5,0.5]);
vec3 norm = normalize(grad);
tensor[3,3] H = ∇⊗∇F([0.5,0.5,0.5]);
tensor[3,3] P = identity[3] - norm⊗norm;
tensor[3,3] G = -(P•H•P)/|grad|;
real disc = sqrt(2.0*|G|^2 - trace(G)^2);
)"));
}

} // namespace
} // namespace diderot

//===--- tests/engine_test.cpp - execution engine semantics -----------------===//
//
// Differential and semantic tests of the two engines: the MidIR interpreter
// (reference semantics) and the native engine (generated C++ compiled by the
// host compiler, the paper's pipeline). Probes are validated against
// analytic fields and against the Teem-style baseline library.
//
//===----------------------------------------------------------------------===//

#include <cmath>

#include <gtest/gtest.h>

#include "driver/driver.h"
#include "synth/synth.h"
#include "teem/probe.h"
#include "testprograms.h"

namespace diderot {
namespace {

std::unique_ptr<rt::ProgramInstance> makeInstance(const std::string &Src,
                                                  Engine Eng,
                                                  bool DoublePrec = false) {
  CompileOptions Opts;
  Opts.Eng = Eng;
  Opts.DoublePrecision = DoublePrec;
  Result<CompiledProgram> CP = compileString(Src, Opts, "test");
  EXPECT_TRUE(CP.isOk()) << CP.message();
  if (!CP.isOk())
    return nullptr;
  Result<std::unique_ptr<rt::ProgramInstance>> I = CP->instantiate();
  EXPECT_TRUE(I.isOk()) << I.message();
  if (!I.isOk())
    return nullptr;
  return I.take();
}

/// A program that probes field quantities at each strand's grid position and
/// outputs them. \p Body computes `output <ty> out = ...` from pos.
std::string probeGridProgram(const std::string &FieldDecl,
                             const std::string &OutDecl,
                             const std::string &Update, int Res = 5) {
  return strf(R"(
input image(3)[] img;
)",
              FieldDecl, R"(
input int res = )",
              Res, R"(;
strand S (int xi, int yi, int zi) {
  vec3 pos = [ -0.5 + real(xi)/real(res-1),
               -0.5 + real(yi)/real(res-1),
               -0.5 + real(zi)/real(res-1) ];
)",
              OutDecl, R"(
  update { )",
              Update, R"( stabilize; }
}
initially [ S(xi, yi, zi) | xi in 0 .. res-1, yi in 0 .. res-1,
                            zi in 0 .. res-1 ];
)");
}

//===----------------------------------------------------------------------===//
// Probe semantics vs analytic fields (interpreter engine)
//===----------------------------------------------------------------------===//

TEST(Engine, ProbeReconstructsSeparablePolynomial) {
  // f(x,y,z) = 1 + 2x - y + 0.5z + 0.25xyz: exactly reproduced by bspln3
  // (linear precision per axis, separable product).
  auto I = makeInstance(
      probeGridProgram("field#2(3)[] F = img ⊛ bspln3;",
                       "output real out = 0.0;", "out = F(pos);"),
      Engine::Interp);
  ASSERT_TRUE(I);
  ASSERT_TRUE(
      I->setInputImage("img", synth::sampledPolynomial3d(16, 1, 2, -1, 0.5,
                                                         0.25))
          .isOk());
  ASSERT_TRUE(I->initialize().isOk());
  ASSERT_TRUE(I->run(10, 1).isOk());
  std::vector<double> Out;
  ASSERT_TRUE(I->getOutput("out", Out).isOk());
  int Res = 5, K = 0;
  for (int X = 0; X < Res; ++X)
    for (int Y = 0; Y < Res; ++Y)
      for (int Z = 0; Z < Res; ++Z) {
        double PX = -0.5 + X / 4.0, PY = -0.5 + Y / 4.0, PZ = -0.5 + Z / 4.0;
        double Want = 1 + 2 * PX - PY + 0.5 * PZ + 0.25 * PX * PY * PZ;
        EXPECT_NEAR(Out[static_cast<size_t>(K++)], Want, 1e-10);
      }
}

TEST(Engine, GradientProbeMatchesAnalytic) {
  auto I = makeInstance(
      probeGridProgram("field#2(3)[] F = img ⊛ bspln3;",
                       "output vec3 out = [0.0,0.0,0.0];",
                       "out = ∇F(pos);"),
      Engine::Interp);
  ASSERT_TRUE(I);
  ASSERT_TRUE(
      I->setInputImage("img",
                       synth::sampledPolynomial3d(16, 1, 2, -1, 0.5, 0.25))
          .isOk());
  ASSERT_TRUE(I->initialize().isOk());
  ASSERT_TRUE(I->run(10, 1).isOk());
  std::vector<double> Out;
  ASSERT_TRUE(I->getOutput("out", Out).isOk());
  int Res = 5;
  size_t K = 0;
  for (int X = 0; X < Res; ++X)
    for (int Y = 0; Y < Res; ++Y)
      for (int Z = 0; Z < Res; ++Z) {
        double PX = -0.5 + X / 4.0, PY = -0.5 + Y / 4.0, PZ = -0.5 + Z / 4.0;
        EXPECT_NEAR(Out[K++], 2 + 0.25 * PY * PZ, 1e-9);
        EXPECT_NEAR(Out[K++], -1 + 0.25 * PX * PZ, 1e-9);
        EXPECT_NEAR(Out[K++], 0.5 + 0.25 * PX * PY, 1e-9);
      }
}

TEST(Engine, HessianProbeMatchesAnalytic) {
  // f = 0.25xyz: Hessian has zero diagonal and 0.25*{z,y,x} off-diagonal.
  auto I = makeInstance(
      probeGridProgram("field#2(3)[] F = img ⊛ bspln3;",
                       "output tensor[3,3] out = identity[3];",
                       "out = ∇⊗∇F(pos);"),
      Engine::Interp);
  ASSERT_TRUE(I);
  ASSERT_TRUE(I->setInputImage(
                   "img", synth::sampledPolynomial3d(16, 0, 0, 0, 0, 0.25))
                  .isOk());
  ASSERT_TRUE(I->initialize().isOk());
  ASSERT_TRUE(I->run(10, 1).isOk());
  std::vector<double> Out;
  ASSERT_TRUE(I->getOutput("out", Out).isOk());
  int Res = 5;
  size_t K = 0;
  for (int X = 0; X < Res; ++X)
    for (int Y = 0; Y < Res; ++Y)
      for (int Z = 0; Z < Res; ++Z) {
        double P[3] = {-0.5 + X / 4.0, -0.5 + Y / 4.0, -0.5 + Z / 4.0};
        double Want[9] = {0,
                          0.25 * P[2],
                          0.25 * P[1],
                          0.25 * P[2],
                          0,
                          0.25 * P[0],
                          0.25 * P[1],
                          0.25 * P[0],
                          0};
        for (int C = 0; C < 9; ++C)
          EXPECT_NEAR(Out[K++], Want[C], 1e-8);
      }
}

TEST(Engine, ProbeAgreesWithTeemBaseline) {
  // The same reconstruction through the compiler and through the Teem-style
  // library must agree to double-precision noise.
  Image Img = synth::ctHand(24);
  auto I = makeInstance(
      probeGridProgram("field#2(3)[] F = img ⊛ bspln3;",
                       "output vec3 outg = [0.0,0.0,0.0];\n"
                       "  output real outv = 0.0;",
                       "outv = F(pos); outg = ∇F(pos);"),
      Engine::Interp);
  ASSERT_TRUE(I);
  ASSERT_TRUE(I->setInputImage("img", Img).isOk());
  ASSERT_TRUE(I->initialize().isOk());
  ASSERT_TRUE(I->run(10, 1).isOk());
  std::vector<double> V, G;
  ASSERT_TRUE(I->getOutput("outv", V).isOk());
  ASSERT_TRUE(I->getOutput("outg", G).isOk());

  teem::ProbeCtx Ctx(Img);
  Ctx.setKernel(0, teem::kernelBspln3(0));
  Ctx.setKernel(1, teem::kernelBspln3(1));
  Ctx.setQuery(teem::ItemValue | teem::ItemGradient);
  Ctx.update();
  int Res = 5;
  size_t K = 0;
  for (int X = 0; X < Res; ++X)
    for (int Y = 0; Y < Res; ++Y)
      for (int Z = 0; Z < Res; ++Z) {
        double P[3] = {-0.5 + X / 4.0, -0.5 + Y / 4.0, -0.5 + Z / 4.0};
        ASSERT_TRUE(Ctx.probe(P));
        EXPECT_NEAR(V[K], Ctx.value()[0], 1e-11);
        for (int C = 0; C < 3; ++C)
          EXPECT_NEAR(G[K * 3 + static_cast<size_t>(C)], Ctx.gradient()[C],
                      1e-10);
        ++K;
      }
}

//===----------------------------------------------------------------------===//
// Native engine differential tests
//===----------------------------------------------------------------------===//

/// Run the same program+inputs on both engines, return both outputs.
void runBoth(const std::string &Src, const Image &Img,
             const std::string &OutName, std::vector<double> &A,
             std::vector<double> &B, int Workers = 1) {
  for (int Which = 0; Which < 2; ++Which) {
    auto I = makeInstance(Src, Which ? Engine::Native : Engine::Interp,
                          /*DoublePrec=*/true);
    ASSERT_TRUE(I);
    ASSERT_TRUE(I->setInputImage("img", Img).isOk());
    ASSERT_TRUE(I->initialize().isOk());
    Result<rt::RunStats> R = I->run(1000, Workers);
    ASSERT_TRUE(R.isOk()) << R.message();
    ASSERT_TRUE(I->getOutput(OutName, Which ? B : A).isOk());
  }
}

TEST(Engine, NativeMatchesInterpOnCurvatureProbes) {
  // Gradient + Hessian + tensor algebra, double precision: bitwise-close.
  std::string Src = probeGridProgram(
      "field#2(3)[] F = img ⊛ bspln3;",
      "output real out = 0.0;",
      R"(vec3 grad = ∇F(pos);
      tensor[3,3] H = ∇⊗∇F(pos);
      vec3 n = normalize(grad);
      tensor[3,3] P = identity[3] - n⊗n;
      tensor[3,3] G = (P•H•P)/(|grad| + 0.001);
      out = sqrt(max(0.0, 2.0*|G|^2 - trace(G)^2));)");
  std::vector<double> A, B;
  runBoth(Src, synth::ctHand(20), "out", A, B);
  ASSERT_EQ(A.size(), B.size());
  for (size_t K = 0; K < A.size(); ++K)
    EXPECT_NEAR(A[K], B[K], 1e-9) << "strand " << K;
}

TEST(Engine, NativeMatchesInterpOnEigensystems) {
  std::string Src = probeGridProgram(
      "field#2(3)[] F = img ⊛ bspln3;",
      "output vec3 out = [0.0,0.0,0.0];",
      R"(tensor[3,3] H = ∇⊗∇F(pos);
      out = evals(H);)");
  std::vector<double> A, B;
  runBoth(Src, synth::lungVessels(20), "out", A, B);
  ASSERT_EQ(A.size(), B.size());
  for (size_t K = 0; K < A.size(); ++K)
    EXPECT_NEAR(A[K], B[K], 1e-8);
}

TEST(Engine, ParallelExecutionIsDeterministic) {
  // Strands are independent; any worker count must give identical results.
  std::string Src = probeGridProgram(
      "field#2(3)[] F = img ⊛ bspln3;", "output real out = 0.0;",
      "out = F(pos) + |∇F(pos)|;", /*Res=*/9);
  Image Img = synth::ctHand(20);
  std::vector<double> Ref;
  for (int Workers : {1, 2, 4, 8}) {
    auto I = makeInstance(Src, Engine::Interp);
    ASSERT_TRUE(I);
    ASSERT_TRUE(I->setInputImage("img", Img).isOk());
    ASSERT_TRUE(I->initialize().isOk());
    ASSERT_TRUE(I->run(10, Workers).isOk());
    std::vector<double> Out;
    ASSERT_TRUE(I->getOutput("out", Out).isOk());
    if (Workers == 1)
      Ref = Out;
    else
      EXPECT_EQ(Out, Ref) << "workers=" << Workers;
  }
}

TEST(Engine, NativeParallelMatchesSequential) {
  std::string Src = probeGridProgram(
      "field#2(3)[] F = img ⊛ bspln3;", "output real out = 0.0;",
      "out = F(pos);", /*Res=*/9);
  Image Img = synth::ctHand(16);
  std::vector<double> Ref;
  for (int Workers : {1, 4}) {
    auto I = makeInstance(Src, Engine::Native);
    ASSERT_TRUE(I);
    ASSERT_TRUE(I->setInputImage("img", Img).isOk());
    ASSERT_TRUE(I->initialize().isOk());
    ASSERT_TRUE(I->run(10, Workers).isOk());
    std::vector<double> Out;
    ASSERT_TRUE(I->getOutput("out", Out).isOk());
    if (Workers == 1)
      Ref = Out;
    else
      EXPECT_EQ(Out, Ref);
  }
  // Small-block scheduling must agree as well.
  auto I = makeInstance(Src, Engine::Native);
  ASSERT_TRUE(I);
  ASSERT_TRUE(I->setInputImage("img", Img).isOk());
  ASSERT_TRUE(I->initialize().isOk());
  ASSERT_TRUE(I->run(10, 3, /*BlockSize=*/16).isOk());
  std::vector<double> Out;
  ASSERT_TRUE(I->getOutput("out", Out).isOk());
  EXPECT_EQ(Out, Ref);
}

//===----------------------------------------------------------------------===//
// Strand lifecycle semantics
//===----------------------------------------------------------------------===//

const char *LifecycleSrc = R"(
strand S (int i) {
  output real x = real(i);
  int age = 0;
  update {
    age += 1;
    if (i == 0) die;
    if (age >= i) stabilize;
    x = x + 1.0;
  }
}
initially { S(i) | i in 0 .. 4 };
)";

TEST(Engine, CollectionOutputSkipsDeadStrands) {
  for (Engine E : {Engine::Interp, Engine::Native}) {
    auto I = makeInstance(LifecycleSrc, E);
    ASSERT_TRUE(I);
    ASSERT_TRUE(I->initialize().isOk());
    ASSERT_TRUE(I->run(100, 1).isOk());
    EXPECT_EQ(I->numStrands(), 5u);
    EXPECT_EQ(I->numDead(), 1u);
    EXPECT_EQ(I->numStable(), 4u);
    std::vector<double> X;
    ASSERT_TRUE(I->getOutput("x", X).isOk());
    // Strand i stabilizes after i updates, having incremented x (i-1) times
    // (the stabilize superstep does not run the tail assignment? It does:
    // assignment precedes the next update; in update age>=i stabilizes
    // before x+=1). Strand 1: age 1 >= 1 -> stabilize with x=1.
    ASSERT_EQ(X.size(), 4u);
    EXPECT_DOUBLE_EQ(X[0], 1.0);
    EXPECT_DOUBLE_EQ(X[1], 3.0);
    EXPECT_DOUBLE_EQ(X[2], 5.0);
    EXPECT_DOUBLE_EQ(X[3], 7.0);
  }
}

TEST(Engine, StabilizeMethodRunsOnStabilize) {
  const char *Src = R"(
strand S (int i) {
  output real x = 0.0;
  update { x = 1.0; stabilize; }
  stabilize { x = 42.0; }
}
initially [ S(i) | i in 0 .. 2 ];
)";
  for (Engine E : {Engine::Interp, Engine::Native}) {
    auto I = makeInstance(Src, E);
    ASSERT_TRUE(I);
    ASSERT_TRUE(I->initialize().isOk());
    ASSERT_TRUE(I->run(10, 1).isOk());
    std::vector<double> X;
    ASSERT_TRUE(I->getOutput("x", X).isOk());
    for (double V : X)
      EXPECT_DOUBLE_EQ(V, 42.0);
  }
}

TEST(Engine, GridOutputDims) {
  const char *Src = R"(
strand S (int r, int c) {
  output real x = real(r*10 + c);
  update { stabilize; }
}
initially [ S(r, c) | r in 0 .. 2, c in 0 .. 3 ];
)";
  auto I = makeInstance(Src, Engine::Interp);
  ASSERT_TRUE(I);
  ASSERT_TRUE(I->initialize().isOk());
  ASSERT_TRUE(I->run(10, 1).isOk());
  EXPECT_EQ(I->outputDims(), (std::vector<int>{3, 4}));
  std::vector<double> X;
  ASSERT_TRUE(I->getOutput("x", X).isOk());
  ASSERT_EQ(X.size(), 12u);
  // First iterator is the slow axis; last iterator is fastest.
  EXPECT_DOUBLE_EQ(X[0], 0.0);
  EXPECT_DOUBLE_EQ(X[1], 1.0);
  EXPECT_DOUBLE_EQ(X[4], 10.0);
  EXPECT_DOUBLE_EQ(X[11], 23.0);
}

TEST(Engine, InputsDefaultsAndErrors) {
  const char *Src = R"(
input real a = 2.5;
input int n;
strand S (int i) {
  output real x = a * real(n);
  update { stabilize; }
}
initially [ S(i) | i in 0 .. 0 ];
)";
  auto I = makeInstance(Src, Engine::Interp);
  ASSERT_TRUE(I);
  // n has no default: initialize must fail until it is set.
  EXPECT_FALSE(I->initialize().isOk());
  auto I2 = makeInstance(Src, Engine::Interp);
  ASSERT_TRUE(I2);
  ASSERT_TRUE(I2->setInputInt("n", 4).isOk());
  ASSERT_TRUE(I2->initialize().isOk());
  ASSERT_TRUE(I2->run(10, 1).isOk());
  std::vector<double> X;
  ASSERT_TRUE(I2->getOutput("x", X).isOk());
  EXPECT_DOUBLE_EQ(X[0], 10.0); // default a=2.5 * n=4
  // Type errors on inputs are rejected.
  auto I3 = makeInstance(Src, Engine::Interp);
  EXPECT_FALSE(I3->setInputReal("n", 1.5).isOk());
  EXPECT_FALSE(I3->setInputReal("nothere", 1.0).isOk());
}

TEST(Engine, MaxSuperstepsBoundsRunaway) {
  const char *Src = R"(
strand S (int i) {
  output real x = 0.0;
  update { x += 1.0; }
}
initially [ S(i) | i in 0 .. 3 ];
)";
  auto I = makeInstance(Src, Engine::Interp);
  ASSERT_TRUE(I);
  ASSERT_TRUE(I->initialize().isOk());
  Result<rt::RunStats> Steps = I->run(7, 1);
  ASSERT_TRUE(Steps.isOk());
  EXPECT_EQ(Steps->Steps, 7);
  std::vector<double> X;
  ASSERT_TRUE(I->getOutput("x", X).isOk());
  EXPECT_DOUBLE_EQ(X[0], 7.0);
}

TEST(Engine, SinglePrecisionIsClose) {
  std::string Src = probeGridProgram("field#2(3)[] F = img ⊛ bspln3;",
                                     "output real out = 0.0;",
                                     "out = F(pos);");
  Image Img = synth::ctHand(16);
  std::vector<double> A, B;
  for (int DoubleP = 0; DoubleP < 2; ++DoubleP) {
    auto I = makeInstance(Src, Engine::Native, DoubleP != 0);
    ASSERT_TRUE(I);
    ASSERT_TRUE(I->setInputImage("img", Img).isOk());
    ASSERT_TRUE(I->initialize().isOk());
    ASSERT_TRUE(I->run(10, 1).isOk());
    ASSERT_TRUE(I->getOutput("out", DoubleP ? B : A).isOk());
  }
  for (size_t K = 0; K < A.size(); ++K)
    EXPECT_NEAR(A[K], B[K], 1e-4);
}

} // namespace
} // namespace diderot

//===--- tests/support_test.cpp - support library unit tests --------------===//

#include <gtest/gtest.h>

#include "support/diagnostics.h"
#include "support/hash.h"
#include "support/result.h"
#include "support/strings.h"
#include "support/unicode.h"

namespace diderot {
namespace {

TEST(Result, SuccessCarriesValue) {
  Result<int> R(42);
  ASSERT_TRUE(R.isOk());
  EXPECT_EQ(*R, 42);
}

TEST(Result, ErrorCarriesMessage) {
  Result<int> R = Result<int>::error("boom");
  ASSERT_FALSE(R.isOk());
  EXPECT_EQ(R.message(), "boom");
}

TEST(Result, TakeMovesValue) {
  Result<std::string> R(std::string("payload"));
  EXPECT_EQ(R.take(), "payload");
}

TEST(Status, DefaultIsOk) {
  Status S;
  EXPECT_TRUE(S.isOk());
}

TEST(Status, ErrorReportsMessage) {
  Status S = Status::error("nope");
  EXPECT_FALSE(S.isOk());
  EXPECT_EQ(S.message(), "nope");
}

TEST(Strings, Strf) {
  EXPECT_EQ(strf("a", 1, "b", 2.5), "a1b2.5");
  EXPECT_EQ(strf(), "");
}

TEST(Strings, SplitJoinRoundTrip) {
  std::vector<std::string> Parts = splitString("a,b,,c", ',');
  ASSERT_EQ(Parts.size(), 4u);
  EXPECT_EQ(Parts[2], "");
  EXPECT_EQ(joinStrings(Parts, ","), "a,b,,c");
}

TEST(Strings, SplitNoSeparator) {
  std::vector<std::string> Parts = splitString("abc", ',');
  ASSERT_EQ(Parts.size(), 1u);
  EXPECT_EQ(Parts[0], "abc");
}

TEST(Strings, Trim) {
  EXPECT_EQ(trimString("  x y \t\n"), "x y");
  EXPECT_EQ(trimString(""), "");
  EXPECT_EQ(trimString("   "), "");
}

TEST(Strings, StartsEndsWith) {
  EXPECT_TRUE(startsWith("NRRD0005", "NRRD"));
  EXPECT_FALSE(startsWith("NR", "NRRD"));
  EXPECT_TRUE(endsWith("file.nrrd", ".nrrd"));
  EXPECT_FALSE(endsWith("nrrd", ".nrrd"));
}

TEST(Strings, ParseIntAcceptsWholeTrimmedDecimals) {
  int V = 7;
  EXPECT_TRUE(parseInt("0", V));
  EXPECT_EQ(V, 0);
  EXPECT_TRUE(parseInt("42", V));
  EXPECT_EQ(V, 42);
  EXPECT_TRUE(parseInt("-13", V));
  EXPECT_EQ(V, -13);
  EXPECT_TRUE(parseInt("+8", V));
  EXPECT_EQ(V, 8);
  EXPECT_TRUE(parseInt("  19 \t", V)); // surrounding whitespace trimmed
  EXPECT_EQ(V, 19);
  EXPECT_TRUE(parseInt("2147483647", V));
  EXPECT_EQ(V, 2147483647);
  EXPECT_TRUE(parseInt("-2147483648", V));
  EXPECT_EQ(V, -2147483647 - 1);
}

TEST(Strings, ParseIntRejectsJunkAndLeavesOutUntouched) {
  int V = 77;
  for (const char *Bad :
       {"", "   ", "x", "12x", "x12", "1 2", "0x10", "12.5", "--3", "+-3",
        "+", "-", "2147483648", "-2147483649", "99999999999999999999"}) {
    EXPECT_FALSE(parseInt(Bad, V)) << "'" << Bad << "'";
    EXPECT_EQ(V, 77) << "Out clobbered by '" << Bad << "'";
  }
}

TEST(Strings, ParseInt64CoversFullRange) {
  int64_t V = 7;
  EXPECT_TRUE(parseInt64("9223372036854775807", V));
  EXPECT_EQ(V, INT64_MAX);
  EXPECT_TRUE(parseInt64("-9223372036854775808", V));
  EXPECT_EQ(V, INT64_MIN);
  EXPECT_TRUE(parseInt64("-1", V));
  EXPECT_EQ(V, -1);
  V = 7;
  // One past either end must fail, not wrap.
  EXPECT_FALSE(parseInt64("9223372036854775808", V));
  EXPECT_FALSE(parseInt64("-9223372036854775809", V));
  EXPECT_FALSE(parseInt64("18446744073709551615", V));
  EXPECT_EQ(V, 7);
}

TEST(Strings, FormatRealAlwaysFloating) {
  EXPECT_EQ(formatReal(1.0), "1.0");
  EXPECT_EQ(formatReal(-2.0), "-2.0");
  EXPECT_EQ(formatReal(0.5), "0.5");
  // Round-trips through strtod exactly.
  double V = 0.1234567890123456789;
  EXPECT_EQ(std::strtod(formatReal(V).c_str(), nullptr), V);
}

TEST(Unicode, AsciiPassThrough) {
  std::string S = "abc";
  size_t Pos = 0;
  EXPECT_EQ(decodeUtf8(S, Pos), 'a');
  EXPECT_EQ(Pos, 1u);
}

TEST(Unicode, RoundTripMathOperators) {
  for (uint32_t CP : {uchar::Nabla, uchar::CircledAst, uchar::OTimes,
                      uchar::Times, uchar::Bullet, uchar::Pi}) {
    std::string S;
    encodeUtf8(CP, S);
    size_t Pos = 0;
    EXPECT_EQ(decodeUtf8(S, Pos), CP);
    EXPECT_EQ(Pos, S.size());
  }
}

TEST(Unicode, MalformedYieldsReplacement) {
  std::string S = "\xC3"; // truncated 2-byte sequence
  size_t Pos = 0;
  EXPECT_EQ(decodeUtf8(S, Pos), 0xFFFDu);
  EXPECT_EQ(Pos, 1u);
}

TEST(Unicode, FourByteSequence) {
  std::string S;
  encodeUtf8(0x1F600, S); // emoji, 4 bytes
  EXPECT_EQ(S.size(), 4u);
  size_t Pos = 0;
  EXPECT_EQ(decodeUtf8(S, Pos), 0x1F600u);
}

TEST(Diagnostics, CountsErrorsOnly) {
  DiagnosticEngine DE;
  DE.warning({1, 1}, "w");
  EXPECT_FALSE(DE.hasErrors());
  DE.error({2, 3}, "e");
  DE.note({2, 4}, "n");
  EXPECT_TRUE(DE.hasErrors());
  EXPECT_EQ(DE.numErrors(), 1u);
  EXPECT_EQ(DE.diagnostics().size(), 3u);
}

TEST(Diagnostics, Rendering) {
  DiagnosticEngine DE;
  DE.error({3, 7}, "bad type");
  EXPECT_EQ(DE.str(), "3:7: error: bad type\n");
}

TEST(Hash128, HexIs32LowercaseDigits) {
  support::Hash128 H = support::fnv1a128("diderot");
  std::string Hex = H.hex();
  ASSERT_EQ(Hex.size(), 32u);
  for (char C : Hex)
    EXPECT_TRUE((C >= '0' && C <= '9') || (C >= 'a' && C <= 'f')) << Hex;
  // Deterministic across calls and across processes (pure function of input).
  EXPECT_EQ(Hex, support::fnv1a128("diderot").hex());
  // Known FNV-1a/128 property: hashing nothing yields the offset basis.
  support::Fnv128 Empty;
  EXPECT_EQ(Empty.digest().hex(), "6c62272e07bb014262b821756295c58d");
}

TEST(Hash128, LateDifferingInputsGetDistinctDigests) {
  // The whole point of replacing std::hash: a difference in the final byte
  // of a large input must change the digest.
  std::string A(8192, 'x');
  std::string B = A;
  B.back() = 'y';
  EXPECT_NE(support::fnv1a128(A), support::fnv1a128(B));
  EXPECT_NE(support::fnv1a128(A).hex(), support::fnv1a128(B).hex());
}

TEST(Hash128, FieldDelimitersPreventConcatenationCollisions) {
  // ("ab","c") vs ("a","bc"): raw update() concatenates and collides;
  // updateField() interposes the NUL delimiter and must not.
  support::Fnv128 Raw1, Raw2;
  Raw1.update("ab");
  Raw1.update("c");
  Raw2.update("a");
  Raw2.update("bc");
  EXPECT_EQ(Raw1.digest(), Raw2.digest());

  support::Fnv128 F1, F2;
  F1.updateField(std::string("ab"));
  F1.updateField(std::string("c"));
  F2.updateField(std::string("a"));
  F2.updateField(std::string("bc"));
  EXPECT_NE(F1.digest(), F2.digest());
}

TEST(Hash128, IntegerFieldsChangeDigest) {
  support::Fnv128 F1, F2;
  F1.updateField(static_cast<int64_t>(0));
  F2.updateField(static_cast<int64_t>(1));
  EXPECT_NE(F1.digest(), F2.digest());
  // Strict weak ordering so Hash128 can key std::map directly.
  EXPECT_TRUE(F1.digest() < F2.digest() || F2.digest() < F1.digest());
}

} // namespace
} // namespace diderot

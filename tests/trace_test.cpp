//===--- tests/trace_test.cpp - request tracing and structured logging -------===//
//
// Part of the Diderot-C++ reproduction (PLDI 2012).
//
// The tracing vocabulary (support/trace.h): traceparent parsing against the
// W3C grammar, context minting, head sampling, the trace ring, the golden
// Chrome-trace span tree built from an injected clock and id source, the
// Recorder bridge (observe::appendRunSpans), and the structured logger
// (support/log.h). The multithreaded cases double as the trace_tsan
// workload.
//
//===----------------------------------------------------------------------===//

#include "support/trace.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "observe/observe.h"
#include "support/log.h"
#include "support/strings.h"

#ifndef DIDEROT_REPO_DIR
#define DIDEROT_REPO_DIR "."
#endif

namespace diderot {
namespace {

using namespace diderot::tracing;

//===----------------------------------------------------------------------===//
// Trace ids and the traceparent wire format
//===----------------------------------------------------------------------===//

TEST(TraceId, HexFormatting) {
  TraceId T{0x0123456789abcdefull, 0xfedcba9876543210ull};
  EXPECT_EQ(hexTraceId(T), "0123456789abcdeffedcba9876543210");
  EXPECT_EQ(hexSpanId(0xdeadbeefull), "00000000deadbeef");
  EXPECT_FALSE(TraceId{}.valid());
  EXPECT_TRUE(T.valid());
}

TEST(Traceparent, RoundTrip) {
  SequentialIdSource Ids(7);
  TraceContext C = makeRoot(Ids, /*Sampled=*/true);
  ASSERT_TRUE(C.valid());
  std::string Header = C.traceparent();
  EXPECT_EQ(Header.size(), 55u);
  TraceContext Back;
  ASSERT_TRUE(parseTraceparent(Header, Back));
  EXPECT_EQ(Back.Trace, C.Trace);
  EXPECT_EQ(Back.Span, C.Span);
  EXPECT_TRUE(Back.Sampled);
}

TEST(Traceparent, UnsampledFlag) {
  TraceContext C;
  ASSERT_TRUE(parseTraceparent(
      "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-00", C));
  EXPECT_FALSE(C.Sampled);
  EXPECT_EQ(hexTraceId(C.Trace), "0af7651916cd43dd8448eb211c80319c");
  EXPECT_EQ(hexSpanId(C.Span), "b7ad6b7169203331");
}

TEST(Traceparent, RejectsMalformed) {
  TraceContext C;
  // Too short / empty.
  EXPECT_FALSE(parseTraceparent("", C));
  EXPECT_FALSE(parseTraceparent("00-abc-def-01", C));
  // Version ff is reserved-invalid.
  EXPECT_FALSE(parseTraceparent(
      "ff-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01", C));
  // Non-hex digits.
  EXPECT_FALSE(parseTraceparent(
      "00-0af7651916cd43dd8448eb211c80319z-b7ad6b7169203331-01", C));
  // All-zero trace id and span id are reserved-invalid.
  EXPECT_FALSE(parseTraceparent(
      "00-00000000000000000000000000000000-b7ad6b7169203331-01", C));
  EXPECT_FALSE(parseTraceparent(
      "00-0af7651916cd43dd8448eb211c80319c-0000000000000000-01", C));
  // Wrong separators.
  EXPECT_FALSE(parseTraceparent(
      "00_0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01", C));
  // Version 00 must be exactly 55 chars.
  EXPECT_FALSE(parseTraceparent(
      "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01-extra", C));
  // A failed parse leaves the output untouched.
  EXPECT_FALSE(C.valid());
}

TEST(Traceparent, AcceptsFutureVersionWithTrailingData) {
  // Unknown future versions that keep the version-00 field layout must be
  // accepted, even with extra fields after the flags (the spec requires
  // forward compatibility).
  TraceContext C;
  EXPECT_TRUE(parseTraceparent(
      "42-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01-whatever",
      C));
  EXPECT_TRUE(C.Sampled);
}

TEST(TraceContext, ChildKeepsTraceAndSampling) {
  SequentialIdSource Ids;
  TraceContext Root = makeRoot(Ids, true);
  TraceContext Child = makeChild(Root, Ids);
  EXPECT_EQ(Child.Trace, Root.Trace);
  EXPECT_NE(Child.Span, Root.Span);
  EXPECT_TRUE(Child.Sampled);
}

TEST(IdSource, DefaultProducesDistinctNonZero) {
  IdSource &Ids = defaultIdSource();
  std::set<uint64_t> Seen;
  for (int I = 0; I < 1000; ++I) {
    uint64_t V = Ids.nextId();
    EXPECT_NE(V, 0u);
    Seen.insert(V);
  }
  EXPECT_EQ(Seen.size(), 1000u);
}

//===----------------------------------------------------------------------===//
// Sampling
//===----------------------------------------------------------------------===//

TEST(SampleSpec, Parsing) {
  uint32_t N = 99;
  EXPECT_TRUE(parseSampleSpec("1/16", N));
  EXPECT_EQ(N, 16u);
  EXPECT_TRUE(parseSampleSpec("8", N));
  EXPECT_EQ(N, 8u);
  EXPECT_TRUE(parseSampleSpec("all", N));
  EXPECT_EQ(N, 1u);
  EXPECT_TRUE(parseSampleSpec("1", N));
  EXPECT_EQ(N, 1u);
  EXPECT_TRUE(parseSampleSpec("off", N));
  EXPECT_EQ(N, 0u);
  EXPECT_TRUE(parseSampleSpec("none", N));
  EXPECT_EQ(N, 0u);
  EXPECT_TRUE(parseSampleSpec("0", N));
  EXPECT_EQ(N, 0u);
  N = 99;
  EXPECT_FALSE(parseSampleSpec("", N));
  EXPECT_FALSE(parseSampleSpec("2/16", N));
  EXPECT_FALSE(parseSampleSpec("1/", N));
  EXPECT_FALSE(parseSampleSpec("sixteen", N));
  EXPECT_EQ(N, 99u) << "failed parse must leave the output untouched";
}

TEST(HeadSampler, Rates) {
  HeadSampler Never(0);
  HeadSampler Always(1);
  HeadSampler Quarter(4);
  int NeverHits = 0, AlwaysHits = 0, QuarterHits = 0;
  for (int I = 0; I < 1000; ++I) {
    NeverHits += Never.sample();
    AlwaysHits += Always.sample();
    QuarterHits += Quarter.sample();
  }
  EXPECT_EQ(NeverHits, 0);
  EXPECT_EQ(AlwaysHits, 1000);
  EXPECT_EQ(QuarterHits, 250);
}

TEST(HeadSampler, FirstRequestIsSampled) {
  HeadSampler S(16);
  EXPECT_TRUE(S.sample()) << "a fresh daemon must sample its first job";
  EXPECT_FALSE(S.sample());
}

TEST(HeadSampler, ConcurrentCountIsExact) {
  // 1-in-4 sampling over 8 threads x 1000 draws: the atomic counter makes
  // the total exact no matter the interleaving.
  HeadSampler S(4);
  std::atomic<int> Hits{0};
  std::vector<std::thread> Ts;
  for (int T = 0; T < 8; ++T)
    Ts.emplace_back([&] {
      int Mine = 0;
      for (int I = 0; I < 1000; ++I)
        Mine += S.sample();
      Hits.fetch_add(Mine);
    });
  for (auto &T : Ts)
    T.join();
  EXPECT_EQ(Hits.load(), 2000);
}

//===----------------------------------------------------------------------===//
// The trace ring
//===----------------------------------------------------------------------===//

SpanTree treeWithTrace(uint64_t Lo) {
  SpanTree T;
  T.Trace = {1, Lo};
  Span Root;
  Root.Id = Lo;
  Root.Name = "job";
  T.add(std::move(Root));
  return T;
}

TEST(TraceRing, EvictsOldestBeyondCapacity) {
  TraceRing R(3);
  for (uint64_t I = 1; I <= 5; ++I)
    R.add(treeWithTrace(I));
  EXPECT_EQ(R.size(), 3u);
  std::vector<SpanTree> Trees = R.snapshot();
  ASSERT_EQ(Trees.size(), 3u);
  EXPECT_EQ(Trees.front().Trace.Lo, 3u) << "oldest first, 1 and 2 evicted";
  EXPECT_EQ(Trees.back().Trace.Lo, 5u);
}

TEST(TraceRing, ConcurrentAddAndSnapshot) {
  TraceRing R(16);
  std::vector<std::thread> Ts;
  for (int T = 0; T < 4; ++T)
    Ts.emplace_back([&R, T] {
      for (uint64_t I = 0; I < 200; ++I) {
        R.add(treeWithTrace(static_cast<uint64_t>(T) * 1000 + I + 1));
        if (I % 50 == 0)
          (void)R.snapshot();
      }
    });
  for (auto &T : Ts)
    T.join();
  EXPECT_EQ(R.size(), 16u);
}

//===----------------------------------------------------------------------===//
// Golden span tree: injected clock + ids -> byte-stable Chrome trace
//===----------------------------------------------------------------------===//

/// The span tree a daemon job would produce, built from deterministic
/// sources: a manual clock (1ms ticks) and sequential ids, with a
/// synthetic two-worker two-superstep RunStats attached under the run
/// span and one trapped fault.
tracing::SpanTree goldenTree() {
  SequentialIdSource Ids(1);
  ManualClock Clk(1000000); // 1ms epoch, so timestamps are visibly non-zero

  SpanTree T;
  TraceContext Root = makeRoot(Ids, /*Sampled=*/true);
  T.Trace = Root.Trace;
  T.Sampled = true;
  T.Job = "j-1";
  T.Program = "vr-lite";

  Span RootSpan;
  RootSpan.Id = Root.Span;
  RootSpan.Name = "job";
  RootSpan.Cat = "serve";
  RootSpan.BeginNs = Clk.nowNs();

  Clk.advance(1000000);
  Span Compile;
  Compile.Id = Ids.nextId();
  Compile.Parent = Root.Span;
  Compile.Name = "compile";
  Compile.Cat = "serve";
  Compile.BeginNs = Clk.nowNs();
  Clk.advance(5000000);
  Compile.EndNs = Clk.nowNs();
  Compile.Args.emplace_back("key", "interp:demo");

  Span Queue;
  Queue.Id = Ids.nextId();
  Queue.Parent = Root.Span;
  Queue.Name = "queue-wait";
  Queue.Cat = "serve";
  Queue.BeginNs = Clk.nowNs();
  Clk.advance(2000000);
  Queue.EndNs = Clk.nowNs();

  Span RunSpan;
  RunSpan.Id = Ids.nextId();
  RunSpan.Parent = Root.Span;
  RunSpan.Name = "run";
  RunSpan.Cat = "serve";
  RunSpan.BeginNs = Clk.nowNs();
  uint64_t RunBegin = RunSpan.BeginNs;
  Clk.advance(4000000);
  RunSpan.EndNs = Clk.nowNs();
  RunSpan.Args.emplace_back("steps", "2");
  RunSpan.Args.emplace_back("outcome", "converged");

  Clk.advance(1000000);
  Span Seal = RootSpan; // close the root at the final instant
  Seal.EndNs = Clk.nowNs();

  T.add(std::move(Seal));
  T.add(std::move(Compile));
  T.add(std::move(Queue));
  uint64_t RunId = T.add(std::move(RunSpan));

  observe::RunStats R;
  R.Steps = 2;
  R.NumWorkers = 2;
  R.Enabled = true;
  R.Workers.resize(2);
  for (int W = 0; W < 2; ++W)
    for (int S = 0; S < 2; ++S) {
      observe::WorkerSpan Sp;
      Sp.Step = S;
      Sp.Updated = 100 + W * 10 + S;
      Sp.Stabilized = S == 1 ? 50u : 0u;
      Sp.Died = 0;
      Sp.BlocksClaimed = 4;
      Sp.BeginNs = static_cast<uint64_t>(S) * 2000000;
      Sp.EndNs = Sp.BeginNs + 1500000 + static_cast<uint64_t>(W) * 100000;
      R.Workers[W].push_back(Sp);
    }
  observe::StrandFault F;
  F.Strand = 42;
  F.Step = 1;
  F.Worker = 1;
  F.Ns = 3000000;
  F.Message = "probe outside domain";
  R.Faults.push_back(F);

  observe::appendRunSpans(T, RunId, RunBegin, R, Ids);
  return T;
}

void checkGolden(const std::string &Name, const std::string &Text) {
  std::string Path =
      std::string(DIDEROT_REPO_DIR) + "/tests/golden/" + Name + ".golden";
  if (std::getenv("DIDEROT_UPDATE_GOLDEN")) {
    std::ofstream Out(Path);
    ASSERT_TRUE(Out.good()) << "cannot write " << Path;
    Out << Text;
    return;
  }
  std::ifstream In(Path);
  ASSERT_TRUE(In.good()) << "missing golden file " << Path
                         << " (regenerate with DIDEROT_UPDATE_GOLDEN=1)";
  std::ostringstream SS;
  SS << In.rdbuf();
  EXPECT_EQ(SS.str(), Text) << "span-tree export drifted from " << Path
                            << " (regenerate with DIDEROT_UPDATE_GOLDEN=1 "
                               "if the change is intentional)";
}

TEST(GoldenTrace, SpanTreeChromeTraceMatchesSnapshot) {
  checkGolden("trace_chrome", observe::spanTreeChromeTrace(goldenTree()));
}

TEST(SpanTree, ExportCarriesStructure) {
  std::string J = observe::spanTreeChromeTrace(goldenTree());
  // One trace id everywhere, parent links present, worker rows named.
  EXPECT_NE(J.find("\"traceId\":\"00000000000000010000000000000002\""),
            std::string::npos)
      << J;
  EXPECT_NE(J.find("\"queue-wait\""), std::string::npos);
  EXPECT_NE(J.find("\"compile\""), std::string::npos);
  EXPECT_NE(J.find("superstep 1"), std::string::npos);
  EXPECT_NE(J.find("run worker 1"), std::string::npos);
  EXPECT_NE(J.find("\"fault\""), std::string::npos);
  EXPECT_NE(J.find("\"job\":\"j-1\""), std::string::npos);
}

TEST(SpanTree, MergedTraceSeparatesJobsByPid) {
  SpanTree A = goldenTree();
  SpanTree B = goldenTree();
  B.Job = "j-2";
  std::string J = observe::mergedChromeTrace({A, B});
  EXPECT_NE(J.find("\"jobs\":2"), std::string::npos);
  EXPECT_NE(J.find("\"pid\":1"), std::string::npos);
  EXPECT_NE(J.find("\"pid\":2"), std::string::npos);
  EXPECT_NE(J.find("job j-2"), std::string::npos);
}

TEST(SpanTree, NamesAreJsonEscaped) {
  SpanTree T;
  T.Trace = {1, 2};
  Span S;
  S.Id = 3;
  S.Name = "evil \"name\"\nwith\tcontrol";
  S.Args.emplace_back("k\"ey", "va\\lue");
  T.add(std::move(S));
  std::string J = observe::spanTreeChromeTrace(T);
  EXPECT_NE(J.find("evil \\\"name\\\"\\nwith\\tcontrol"), std::string::npos)
      << J;
  EXPECT_NE(J.find("k\\\"ey"), std::string::npos);
  EXPECT_NE(J.find("va\\\\lue"), std::string::npos);
}

TEST(JsonEscape, SharedHelperCoversControls) {
  EXPECT_EQ(jsonEscape("plain"), "plain");
  EXPECT_EQ(jsonEscape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(jsonEscape("\n\t\r\b\f"), "\\n\\t\\r\\b\\f");
  EXPECT_EQ(jsonEscape(std::string(1, '\x01')), "\\u0001");
  // observe::jsonEscape is a forward to the same routine.
  EXPECT_EQ(observe::jsonEscape("a\"b"), jsonEscape("a\"b"));
}

//===----------------------------------------------------------------------===//
// Structured logging
//===----------------------------------------------------------------------===//

/// Capture everything a logger writes into a string via tmpfile.
struct LogCapture {
  std::FILE *F = nullptr;
  LogCapture() { F = std::tmpfile(); }
  ~LogCapture() {
    if (F)
      std::fclose(F);
  }
  std::string text() {
    std::fflush(F);
    long Sz = std::ftell(F);
    std::rewind(F);
    std::string S(static_cast<size_t>(Sz), '\0');
    size_t N = std::fread(S.data(), 1, S.size(), F);
    S.resize(N);
    std::fseek(F, 0, SEEK_END);
    return S;
  }
};

TEST(Logger, JsonRecordsCarryFields) {
  LogCapture Cap;
  logging::Logger L;
  logging::Logger::Options O;
  O.Json = true;
  O.MinLevel = logging::Level::Debug;
  O.Out = Cap.F;
  L.configure(O);
  L.log(logging::Level::Info, "job done",
        {logging::strField("job", "j-7"),
         logging::strField("trace", "00ff"),
         logging::numField("steps", static_cast<int64_t>(12)),
         logging::boolField("sampled", true)});
  std::string Out = Cap.text();
  EXPECT_NE(Out.find("\"level\":\"info\""), std::string::npos) << Out;
  EXPECT_NE(Out.find("\"msg\":\"job done\""), std::string::npos);
  EXPECT_NE(Out.find("\"job\":\"j-7\""), std::string::npos);
  EXPECT_NE(Out.find("\"trace\":\"00ff\""), std::string::npos);
  EXPECT_NE(Out.find("\"steps\":12"), std::string::npos);
  EXPECT_NE(Out.find("\"sampled\":true"), std::string::npos);
  EXPECT_NE(Out.find("\"ts\":\""), std::string::npos);
  EXPECT_EQ(Out.back(), '\n');
}

TEST(Logger, JsonEscapesMessageAndValues) {
  LogCapture Cap;
  logging::Logger L;
  logging::Logger::Options O;
  O.Json = true;
  O.Out = Cap.F;
  L.configure(O);
  L.log(logging::Level::Warn, "bad \"input\"\nline",
        {logging::strField("path", "a\\b")});
  std::string Out = Cap.text();
  EXPECT_NE(Out.find("bad \\\"input\\\"\\nline"), std::string::npos) << Out;
  EXPECT_NE(Out.find("a\\\\b"), std::string::npos);
}

TEST(Logger, LevelFilteringDropsBelowMin) {
  LogCapture Cap;
  logging::Logger L;
  logging::Logger::Options O;
  O.MinLevel = logging::Level::Warn;
  O.Out = Cap.F;
  L.configure(O);
  L.log(logging::Level::Debug, "nope");
  L.log(logging::Level::Info, "nope");
  L.log(logging::Level::Warn, "yes-warn");
  L.log(logging::Level::Error, "yes-error");
  std::string Out = Cap.text();
  EXPECT_EQ(Out.find("nope"), std::string::npos) << Out;
  EXPECT_NE(Out.find("yes-warn"), std::string::npos);
  EXPECT_NE(Out.find("yes-error"), std::string::npos);
  EXPECT_EQ(L.emitted(), 2u);
}

TEST(Logger, RateLimitSuppressesAndCounts) {
  LogCapture Cap;
  logging::Logger L;
  logging::Logger::Options O;
  O.Out = Cap.F;
  L.configure(O);
  int Written = 0;
  for (int I = 0; I < 10; ++I)
    Written += L.logEvery("burst", 2, logging::Level::Warn, "flood");
  EXPECT_EQ(Written, 2) << "2-per-second budget";
  EXPECT_EQ(L.suppressed(), 8u);
  // A different key has its own budget.
  EXPECT_TRUE(L.logEvery("other", 2, logging::Level::Warn, "fine"));
}

TEST(Logger, TextModeIsKeyValue) {
  LogCapture Cap;
  logging::Logger L;
  logging::Logger::Options O;
  O.Out = Cap.F;
  L.configure(O);
  L.log(logging::Level::Info, "job done",
        {logging::strField("job", "j-3"),
         logging::strField("error", "two words")});
  std::string Out = Cap.text();
  EXPECT_NE(Out.find("info"), std::string::npos);
  EXPECT_NE(Out.find("job done"), std::string::npos);
  EXPECT_NE(Out.find("job=j-3"), std::string::npos);
  EXPECT_NE(Out.find("error=\"two words\""), std::string::npos) << Out;
}

TEST(Logger, ConcurrentWritersNeverInterleave) {
  LogCapture Cap;
  logging::Logger L;
  logging::Logger::Options O;
  O.Out = Cap.F;
  L.configure(O);
  std::vector<std::thread> Ts;
  for (int T = 0; T < 4; ++T)
    Ts.emplace_back([&L, T] {
      for (int I = 0; I < 100; ++I)
        L.log(logging::Level::Info, strf("msg-", T, "-", I),
              {logging::numField("i", static_cast<int64_t>(I))});
    });
  for (auto &T : Ts)
    T.join();
  EXPECT_EQ(L.emitted(), 400u);
  std::string Out = Cap.text();
  // Every line is complete: starts with a timestamp year, ends cleanly.
  std::istringstream SS(Out);
  std::string Line;
  size_t Lines = 0;
  while (std::getline(SS, Line)) {
    ++Lines;
    EXPECT_EQ(Line.compare(0, 2, "20"), 0) << "torn line: " << Line;
  }
  EXPECT_EQ(Lines, 400u);
}

} // namespace
} // namespace diderot

//===--- tests/kernel_test.cpp - reconstruction kernel tests ---------------===//

#include <cmath>

#include <gtest/gtest.h>

#include "kernels/kernel.h"

namespace diderot {
namespace {

TEST(Kernel, TentBasics) {
  const Kernel &K = kernels::tent();
  EXPECT_EQ(K.support(), 1);
  EXPECT_EQ(K.continuity(), 0);
  EXPECT_DOUBLE_EQ(K.eval(0.0), 1.0);
  EXPECT_DOUBLE_EQ(K.eval(0.5), 0.5);
  EXPECT_DOUBLE_EQ(K.eval(-0.5), 0.5);
  EXPECT_DOUBLE_EQ(K.eval(1.0), 0.0);
  EXPECT_DOUBLE_EQ(K.eval(-2.0), 0.0);
}

TEST(Kernel, CtmrInterpolates) {
  // Interpolating kernels are 1 at 0 and 0 at other integers.
  const Kernel &K = kernels::ctmr();
  EXPECT_EQ(K.support(), 2);
  EXPECT_EQ(K.continuity(), 1);
  EXPECT_NEAR(K.eval(0.0), 1.0, 1e-14);
  EXPECT_NEAR(K.eval(1.0), 0.0, 1e-14);
  EXPECT_NEAR(K.eval(-1.0), 0.0, 1e-14);
}

TEST(Kernel, Bspln3DoesNotInterpolate) {
  const Kernel &K = kernels::bspln3();
  EXPECT_EQ(K.support(), 2);
  EXPECT_EQ(K.continuity(), 2);
  EXPECT_NEAR(K.eval(0.0), 2.0 / 3.0, 1e-14);
  EXPECT_NEAR(K.eval(1.0), 1.0 / 6.0, 1e-14);
  EXPECT_NEAR(K.eval(-1.0), 1.0 / 6.0, 1e-14);
}

TEST(Kernel, Bspln5Properties) {
  const Kernel &K = kernels::bspln5();
  EXPECT_EQ(K.support(), 3);
  EXPECT_EQ(K.continuity(), 4);
  // B-spline central value: 66/120.
  EXPECT_NEAR(K.eval(0.0), 66.0 / 120.0, 1e-14);
  EXPECT_NEAR(K.eval(1.0), 26.0 / 120.0, 1e-13);
  EXPECT_NEAR(K.eval(2.0), 1.0 / 120.0, 1e-13);
}

TEST(Kernel, ByNameLookup) {
  EXPECT_NE(kernels::byName("tent"), nullptr);
  EXPECT_NE(kernels::byName("ctmr"), nullptr);
  EXPECT_NE(kernels::byName("bspln3"), nullptr);
  EXPECT_NE(kernels::byName("bspln5"), nullptr);
  EXPECT_EQ(kernels::byName("nosuch"), nullptr);
  EXPECT_EQ(kernels::allNames().size(), 4u);
}

TEST(Kernel, IntegralIsOne) {
  for (const std::string &Name : kernels::allNames()) {
    const Kernel *K = kernels::byName(Name);
    EXPECT_NEAR(K->integral(), 1.0, 1e-12) << Name;
    // The derivative kernel integrates to zero (h is compactly supported).
    EXPECT_NEAR(K->derivative().integral(), 0.0, 1e-12) << Name;
  }
}

TEST(Kernel, DerivativeTracksLevels) {
  Kernel D1 = kernels::bspln3().derivative();
  EXPECT_EQ(D1.derivLevel(), 1);
  EXPECT_EQ(D1.continuity(), 1);
  Kernel D2 = D1.derivative();
  EXPECT_EQ(D2.derivLevel(), 2);
  EXPECT_EQ(D2.continuity(), 0);
  EXPECT_EQ(D1.support(), 2);
}

TEST(Kernel, WeightPolyMatchesEval) {
  // weightPoly(i)(f) must equal h(f - i) for f in [0,1).
  for (const std::string &Name : kernels::allNames()) {
    const Kernel *K = kernels::byName(Name);
    int S = K->support();
    for (int I = 1 - S; I <= S; ++I)
      for (double F : {0.0, 0.1, 0.35, 0.72, 0.99})
        EXPECT_NEAR(K->weightPoly(I).eval(F), K->eval(F - I), 1e-13)
            << Name << " offset " << I << " f " << F;
  }
}

/// Parameterized over (kernel, position): properties that every
/// reconstruction kernel must satisfy.
class KernelProperty
    : public ::testing::TestWithParam<std::tuple<std::string, double>> {};

TEST_P(KernelProperty, PartitionOfUnity) {
  const Kernel *K = kernels::byName(std::get<0>(GetParam()));
  double F = std::get<1>(GetParam());
  int S = K->support();
  double Sum = 0.0;
  for (int I = 1 - S; I <= S; ++I)
    Sum += K->eval(F - I);
  EXPECT_NEAR(Sum, 1.0, 1e-12);
}

TEST_P(KernelProperty, DerivativeWeightsSumToZero) {
  // Use the weight-polynomial form (what probe expansion emits): at knots
  // the pointwise derivative of a C0 kernel is one-sided, but the piece
  // table is always consistent.
  const Kernel *K = kernels::byName(std::get<0>(GetParam()));
  Kernel D = K->derivative();
  double F = std::get<1>(GetParam());
  int S = K->support();
  double Sum = 0.0;
  for (int I = 1 - S; I <= S; ++I)
    Sum += D.weightPoly(I).eval(F);
  EXPECT_NEAR(Sum, 0.0, 1e-12);
}

TEST_P(KernelProperty, FirstMomentReproducesLinear) {
  // Reconstructing samples of f(x)=x must give x exactly for kernels with
  // linear precision (all four built-ins have it).
  const Kernel *K = kernels::byName(std::get<0>(GetParam()));
  double F = std::get<1>(GetParam());
  int S = K->support();
  double Sum = 0.0;
  for (int I = 1 - S; I <= S; ++I)
    Sum += static_cast<double>(I) * K->eval(F - I);
  EXPECT_NEAR(Sum, F, 1e-12);
}

TEST_P(KernelProperty, SymbolicDerivativeMatchesFiniteDifference) {
  const Kernel *K = kernels::byName(std::get<0>(GetParam()));
  Kernel D = K->derivative();
  double X = std::get<1>(GetParam()) * K->support() * 0.9; // inside support
  const double H = 1e-6;
  // Stay away from knots where one-sided derivatives differ.
  if (std::abs(X - std::round(X)) < 1e-3)
    X += 0.01;
  double FD = (K->eval(X + H) - K->eval(X - H)) / (2 * H);
  EXPECT_NEAR(D.eval(X), FD, 1e-5);
}

TEST_P(KernelProperty, EvalDerivShortcutAgrees) {
  const Kernel *K = kernels::byName(std::get<0>(GetParam()));
  double X = std::get<1>(GetParam());
  Kernel D1 = K->derivative();
  Kernel D2 = D1.derivative();
  EXPECT_NEAR(K->evalDeriv(X, 1), D1.eval(X), 1e-13);
  EXPECT_NEAR(K->evalDeriv(X, 2), D2.eval(X), 1e-13);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, KernelProperty,
    ::testing::Combine(::testing::Values("tent", "ctmr", "bspln3", "bspln5"),
                       ::testing::Values(0.0, 0.125, 0.25, 0.5, 0.75, 0.9)));

/// Continuity class at the knots: a C^k kernel has matching one-sided values
/// of derivatives 0..k at every integer.
class KernelContinuity : public ::testing::TestWithParam<std::string> {};

TEST_P(KernelContinuity, MatchedAtKnots) {
  const Kernel *K = kernels::byName(GetParam());
  int CK = K->continuity();
  const double Eps = 1e-7;
  for (int Level = 0; Level <= CK; ++Level) {
    for (int Knot = -K->support() + 1; Knot < K->support(); ++Knot) {
      double Left = K->evalDeriv(Knot - Eps, Level);
      double Right = K->evalDeriv(Knot + Eps, Level);
      EXPECT_NEAR(Left, Right, 1e-4)
          << GetParam() << " C" << Level << " at knot " << Knot;
    }
    // Also continuous down to zero at the support boundary.
    double S = K->support();
    EXPECT_NEAR(K->evalDeriv(S - Eps, Level), 0.0, 1e-4) << "level " << Level;
    EXPECT_NEAR(K->evalDeriv(-S + Eps, Level), 0.0, 1e-4) << "level " << Level;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, KernelContinuity,
                         ::testing::Values("tent", "ctmr", "bspln3", "bspln5"));

TEST(Kernel, DerivativeIsOdd) {
  for (const std::string &Name : kernels::allNames()) {
    Kernel D = kernels::byName(Name)->derivative();
    for (double X : {0.2, 0.7, 1.3, 1.9})
      EXPECT_NEAR(D.eval(X), -D.eval(-X), 1e-12) << Name;
  }
}

} // namespace
} // namespace diderot

//===--- tests/observe_test.cpp - engine-level telemetry tests ---------------===//
//
// End-to-end checks of the observability subsystem through both engines:
// collected counter totals must match the instance's numStable()/numDead(),
// superstep span counts must match the returned step count (sequential and
// parallel), and the JSON exporters must produce well-formed output with
// one worker timeline row per worker.
//
//===----------------------------------------------------------------------===//

#include <cctype>
#include <cstring>
#include <string>

#include <gtest/gtest.h>

#include "driver/driver.h"
#include "observe/observe.h"
#include "synth/synth.h"

namespace diderot {
namespace {

// Strand (xi, yi) stabilizes after (xi % 4) + 1 updates; strands with
// yi == 0 die on their first update. Mixed lifetimes and deaths exercise
// every counter.
const char *MixedProgram = R"(
input int res = 12;
strand S (int xi, int yi) {
  int n = 0;
  output real out = 0.0;
  update {
    n += 1;
    out = real(n);
    if (yi == 0) die;
    if (n > xi - (xi / 4) * 4) stabilize;
  }
}
initially [ S(xi, yi) | yi in 0 .. res-1, xi in 0 .. res-1 ];
)";

std::unique_ptr<rt::ProgramInstance> makeInstance(Engine Eng) {
  CompileOptions Opts;
  Opts.Eng = Eng;
  Result<CompiledProgram> CP = compileString(MixedProgram, Opts, "observe");
  EXPECT_TRUE(CP.isOk()) << CP.message();
  if (!CP.isOk())
    return nullptr;
  Result<std::unique_ptr<rt::ProgramInstance>> I = CP->instantiate();
  EXPECT_TRUE(I.isOk()) << I.message();
  if (!I.isOk())
    return nullptr;
  return I.take();
}

//===----------------------------------------------------------------------===//
// Minimal JSON well-formedness checker (objects/arrays/strings/numbers/
// literals) — enough to prove the exporters emit parseable JSON without a
// JSON library dependency.
//===----------------------------------------------------------------------===//

struct JsonChecker {
  const std::string &S;
  size_t P = 0;
  bool Ok = true;

  void ws() {
    while (P < S.size() && std::isspace(static_cast<unsigned char>(S[P])))
      ++P;
  }
  bool eat(char C) {
    ws();
    if (P < S.size() && S[P] == C) {
      ++P;
      return true;
    }
    return false;
  }
  void fail() { Ok = false; }
  void value() {
    if (!Ok)
      return;
    ws();
    if (P >= S.size())
      return fail();
    char C = S[P];
    if (C == '{')
      return object();
    if (C == '[')
      return array();
    if (C == '"')
      return string();
    if (C == '-' || std::isdigit(static_cast<unsigned char>(C)))
      return number();
    for (const char *Lit : {"true", "false", "null"})
      if (S.compare(P, std::strlen(Lit), Lit) == 0) {
        P += std::strlen(Lit);
        return;
      }
    fail();
  }
  void object() {
    if (!eat('{'))
      return fail();
    if (eat('}'))
      return;
    do {
      string();
      if (!Ok || !eat(':'))
        return fail();
      value();
      if (!Ok)
        return;
    } while (eat(','));
    if (!eat('}'))
      fail();
  }
  void array() {
    if (!eat('['))
      return fail();
    if (eat(']'))
      return;
    do {
      value();
      if (!Ok)
        return;
    } while (eat(','));
    if (!eat(']'))
      fail();
  }
  void string() {
    if (!eat('"'))
      return fail();
    while (P < S.size() && S[P] != '"') {
      if (S[P] == '\\')
        ++P;
      ++P;
    }
    if (P >= S.size())
      return fail();
    ++P; // closing quote
  }
  void number() {
    while (P < S.size() &&
           (std::isdigit(static_cast<unsigned char>(S[P])) || S[P] == '-' ||
            S[P] == '+' || S[P] == '.' || S[P] == 'e' || S[P] == 'E'))
      ++P;
  }
};

bool jsonParses(const std::string &Text) {
  JsonChecker C{Text};
  C.value();
  C.ws();
  return C.Ok && C.P == Text.size();
}

size_t countOccurrences(const std::string &Text, const std::string &Needle) {
  size_t N = 0;
  for (size_t P = Text.find(Needle); P != std::string::npos;
       P = Text.find(Needle, P + Needle.size()))
    ++N;
  return N;
}

//===----------------------------------------------------------------------===//
// Both engines, sequential and parallel
//===----------------------------------------------------------------------===//

class ObserveEngines
    : public ::testing::TestWithParam<std::tuple<Engine, int>> {};

TEST_P(ObserveEngines, TotalsMatchInstanceCountsAndSpansMatchSteps) {
  auto [Eng, Workers] = GetParam();
  auto I = makeInstance(Eng);
  ASSERT_TRUE(I);
  ASSERT_TRUE(I->initialize().isOk());
  Result<rt::RunStats> R =
      I->run(100, Workers, rt::DefaultBlockSize, /*CollectStats=*/true);
  ASSERT_TRUE(R.isOk()) << R.message();

  EXPECT_TRUE(R->Enabled);
  EXPECT_GT(R->Steps, 0);
  // Every strand retires, so retired totals must match the instance exactly.
  EXPECT_EQ(R->totalStabilized(), I->numStable());
  EXPECT_EQ(R->totalDied(), I->numDead());
  EXPECT_EQ(R->totalRetired(), I->numStable() + I->numDead());
  EXPECT_EQ(I->numStable() + I->numDead(), I->numStrands());

  // One timeline row per worker (sequential runs get one row), with one
  // span per executed superstep.
  size_t Rows = static_cast<size_t>(Workers <= 0 ? 1 : Workers);
  ASSERT_EQ(R->Workers.size(), Rows);
  for (const std::vector<observe::WorkerSpan> &Row : R->Workers)
    EXPECT_EQ(Row.size(), static_cast<size_t>(R->Steps));
  EXPECT_EQ(R->Supersteps.size(), static_cast<size_t>(R->Steps));

  // Aggregates are consistent with the atomic totals.
  uint64_t StepUpdated = 0, StepStab = 0, StepDied = 0;
  for (const observe::StepStats &S : R->Supersteps) {
    StepUpdated += S.Updated;
    StepStab += S.Stabilized;
    StepDied += S.Died;
  }
  EXPECT_EQ(StepUpdated, R->totalUpdated());
  EXPECT_EQ(StepStab, R->totalStabilized());
  EXPECT_EQ(StepDied, R->totalDied());
}

TEST_P(ObserveEngines, DisabledRunStillReportsSteps) {
  auto [Eng, Workers] = GetParam();
  auto I = makeInstance(Eng);
  ASSERT_TRUE(I);
  ASSERT_TRUE(I->initialize().isOk());
  Result<rt::RunStats> R = I->run(100, Workers);
  ASSERT_TRUE(R.isOk()) << R.message();
  EXPECT_FALSE(R->Enabled);
  EXPECT_GT(R->Steps, 0);
  EXPECT_TRUE(R->Workers.empty());
  EXPECT_TRUE(R->Supersteps.empty());
  EXPECT_EQ(R->totalUpdated(), 0u);
}

TEST_P(ObserveEngines, ExportersEmitWellFormedJson) {
  auto [Eng, Workers] = GetParam();
  auto I = makeInstance(Eng);
  ASSERT_TRUE(I);
  ASSERT_TRUE(I->initialize().isOk());
  Result<rt::RunStats> R =
      I->run(100, Workers, rt::DefaultBlockSize, /*CollectStats=*/true);
  ASSERT_TRUE(R.isOk()) << R.message();

  std::string Stats = observe::statsJson(*R);
  EXPECT_TRUE(jsonParses(Stats)) << Stats;
  EXPECT_NE(Stats.find("\"supersteps\""), std::string::npos);
  EXPECT_NE(Stats.find("\"workers\""), std::string::npos);

  std::string Trace = observe::chromeTrace(*R);
  EXPECT_TRUE(jsonParses(Trace)) << Trace;
  EXPECT_NE(Trace.find("\"traceEvents\""), std::string::npos);
  // One thread_name metadata row per worker timeline...
  size_t Rows = static_cast<size_t>(Workers <= 0 ? 1 : Workers);
  EXPECT_EQ(countOccurrences(Trace, "\"thread_name\""), Rows);
  // ...and one complete event per (worker, superstep) span.
  EXPECT_EQ(countOccurrences(Trace, "\"ph\":\"X\""),
            Rows * static_cast<size_t>(R->Steps));

  std::string Summary = observe::formatSummary(*R);
  EXPECT_NE(Summary.find("superstep"), std::string::npos);
  EXPECT_NE(Summary.find("total"), std::string::npos);
}

INSTANTIATE_TEST_SUITE_P(
    Engines, ObserveEngines,
    ::testing::Combine(::testing::Values(Engine::Interp, Engine::Native),
                       ::testing::Values(0, 1, 4)));

} // namespace
} // namespace diderot

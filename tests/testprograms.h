//===--- tests/testprograms.h - shared Diderot program fixtures ------------===//
//
// The paper's example programs (Figures 1, 5, 7 and the curvature code of
// Figure 3), adapted only where the paper elides details (concrete input
// defaults, grid-to-world mapping in the initialization). Shared by the
// front-end, pipeline, and engine tests.
//
//===----------------------------------------------------------------------===//

#ifndef DIDEROT_TESTS_TESTPROGRAMS_H
#define DIDEROT_TESTS_TESTPROGRAMS_H

namespace diderot::testprog {

/// Figure 1: simple direct volume renderer (vr-lite).
inline const char *VrLite = R"(
// Simple direct volume rendering (paper Figure 1)
input real stepSz = 0.1;          // size of steps
input vec3 eye = [6.0, 0.0, 0.0]; // eye location
input vec3 orig = [4.0, -2.4, -2.4];
input vec3 cVec = [0.0, 0.024, 0.0];
input vec3 rVec = [0.0, 0.0, 0.024];
input real opacMin = 0.25;
input real opacMax = 0.65;
input int imgResU = 50;
input int imgResV = 50;
image(3)[] img = load("hand.nrrd");
field#2(3)[] F = img ⊛ bspln3;

strand RayCast (int r, int c) {
  vec3 pos = orig + real(r)*rVec + real(c)*cVec;
  vec3 dir = normalize(pos - eye);
  real t = 0.0;
  real transp = 1.0;
  output real gray = 0.0;

  update {
    pos = pos + stepSz*dir;
    t = t + stepSz;
    if (inside(pos, F)) {
      real val = F(pos);
      if (val > opacMin) {
        real opac = 1.0 if val > opacMax
                    else (val - opacMin)/(opacMax - opacMin);
        vec3 norm = -normalize(∇F(pos));
        gray += transp*opac*max(0.0, -dir • norm);
        transp *= 1.0 - opac;
      }
    }
    if (t > 14.0) stabilize;
  }
}

initially [ RayCast(ui, vi) | vi in 0 .. imgResV-1,
                              ui in 0 .. imgResU-1 ];
)";

/// Figure 5: line integral convolution.
inline const char *Lic2d = R"(
// Line Integral Convolution (paper Figure 5)
input int stepNum = 12;
input real h = 0.01;
input int resU = 40;
input int resV = 40;
field#1(2)[2] V = load("vectors.nrrd") ⊛ ctmr;
field#0(2)[] R = load("rand.nrrd") ⊛ tent;

strand LIC (vec2 pos0) {
  vec2 forw = pos0;
  vec2 back = pos0;
  output real sum = R(pos0);
  int step = 0;

  update {
    forw += h*V(forw + 0.5*h*V(forw));
    back -= h*V(back - 0.5*h*V(back));
    sum += R(forw) + R(back);
    step += 1;
    if (step == stepNum) {
      sum *= |V(pos0)| / real(1 + 2*stepNum);
      stabilize;
    }
  }
}

initially [ LIC([ -0.85 + 1.7*real(ui)/real(resU-1),
                  -0.85 + 1.7*real(vi)/real(resV-1) ])
          | vi in 0 .. resV-1, ui in 0 .. resU-1 ];
)";

/// Figure 7: particle-based isocontour sampling. Uses `die`, a collection
/// initialization, and state initializers that probe fields.
inline const char *Isocontour = R"(
// Detecting isocontours (paper Figure 7)
input int stepsMax = 12;
input real epsilon = 0.00001;
input int res = 30;
field#1(2)[] f = ctmr ⊛ load("ddro.nrrd");

strand sample (int ui, int vi) {
  output vec2 pos = [ -0.9 + 1.8*real(ui)/real(res-1),
                      -0.9 + 1.8*real(vi)/real(res-1) ];
  // set isovalue to closest of 50, 30, or 10
  real f0 = 50.0 if f(pos) >= 40.0
       else 30.0 if f(pos) >= 20.0
       else 10.0;
  int steps = 0;
  update {
    if (!inside(pos, f) || steps > stepsMax)
      die;
    vec2 grad = ∇f(pos);
    vec2 delta = // the Newton-Raphson step
      normalize(grad) * (f(pos) - f0)/|grad|;
    if (|delta| < epsilon)
      stabilize;
    pos -= delta;
    steps += 1;
  }
}

initially { sample(ui, vi) | vi in 0 .. res-1, ui in 0 .. res-1 };
)";

/// Figure 3's curvature computation embedded in a small renderer
/// (illust-vr's core): exercises Hessians (∇⊗∇), tensor algebra, and a
/// 2-D transfer-function field.
inline const char *Curvature = R"(
// Curvature-based transfer function (paper Figure 3, abbreviated renderer)
input real stepSz = 0.1;
input vec3 eye = [6.0, 0.0, 0.0];
input vec3 orig = [4.0, -2.4, -2.4];
input vec3 cVec = [0.0, 0.024, 0.0];
input vec3 rVec = [0.0, 0.0, 0.024];
input real isoval = 0.5;
input int imgResU = 40;
input int imgResV = 40;
image(3)[] img = load("hand.nrrd");
field#2(3)[] F = img ⊛ bspln3;
field#0(2)[3] RGB = tent ⊛ load("xfer.nrrd");

strand RayCast (int r, int c) {
  vec3 pos = orig + real(r)*rVec + real(c)*cVec;
  vec3 dir = normalize(pos - eye);
  real t = 0.0;
  real transp = 1.0;
  vec3 accum = [0.0, 0.0, 0.0];
  output vec3 outRGB = [0.0, 0.0, 0.0];

  update {
    pos = pos + stepSz*dir;
    t = t + stepSz;
    if (inside(pos, F)) {
      real val = F(pos);
      if (val > isoval) {
        vec3 grad = -∇F(pos);
        vec3 norm = normalize(grad);
        tensor[3,3] H = ∇⊗∇F(pos);
        tensor[3,3] P = identity[3] - norm⊗norm;
        tensor[3,3] G = -(P•H•P)/|grad|;
        real disc = sqrt(max(0.0, 2.0*|G|^2 - trace(G)^2));
        real k1 = (trace(G) + disc)/2.0;
        real k2 = (trace(G) - disc)/2.0;
        vec3 matRGB = RGB([ max(-1.0, min(1.0, 6.0*k1)),
                            max(-1.0, min(1.0, 6.0*k2)) ]);
        real opac = 0.8;
        accum += transp*opac*matRGB;
        transp *= 1.0 - opac;
      }
    }
    if (t > 14.0 || transp < 0.01) {
      outRGB = accum;
      stabilize;
    }
  }
}

initially [ RayCast(ui, vi) | vi in 0 .. imgResV-1,
                              ui in 0 .. imgResU-1 ];
)";

} // namespace diderot::testprog

#endif // DIDEROT_TESTS_TESTPROGRAMS_H

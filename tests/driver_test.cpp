//===--- tests/driver_test.cpp - compiler driver API tests ---------------------===//

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

#include "driver/driver.h"
#include "nrrd/nrrd.h"
#include "synth/synth.h"

namespace diderot {
namespace {

const char *Tiny = R"(
input real s = 3.0;
strand S (int i) {
  output real x = 0.0;
  update { x = s * real(i); stabilize; }
}
initially [ S(i) | i in 0 .. 3 ];
)";

TEST(Driver, CompileStringProducesModules) {
  Result<CompiledProgram> CP = compileString(Tiny, {}, "tiny");
  ASSERT_TRUE(CP.isOk()) << CP.message();
  EXPECT_EQ(CP->midModule().CurLevel, unsigned(ir::Mid));
  EXPECT_EQ(CP->lowModule().CurLevel, unsigned(ir::Low));
  EXPECT_FALSE(CP->emitCpp().empty());
}

TEST(Driver, ParseErrorsAreReported) {
  Result<CompiledProgram> CP = compileString("strand {", {}, "broken");
  ASSERT_FALSE(CP.isOk());
  EXPECT_NE(CP.message().find("parse errors"), std::string::npos);
}

TEST(Driver, TypeErrorsAreReported) {
  Result<CompiledProgram> CP = compileString(R"(
strand S (int i) {
  output real x = true;
  update { stabilize; }
}
initially [ S(i) | i in 0 .. 3 ];
)",
                                             {}, "illtyped");
  ASSERT_FALSE(CP.isOk());
  EXPECT_NE(CP.message().find("type errors"), std::string::npos);
}

TEST(Driver, CompileFileAndNameDerivation) {
  std::string Path = ::testing::TempDir() + "/drv_test.diderot";
  {
    std::ofstream Out(Path);
    Out << Tiny;
  }
  Result<CompiledProgram> CP = compileFile(Path);
  ASSERT_TRUE(CP.isOk()) << CP.message();
  EXPECT_EQ(CP->midModule().Name, "drv_test");
  std::remove(Path.c_str());
  EXPECT_FALSE(compileFile("/no/such/file.diderot").isOk());
}

TEST(Driver, InstancesAreIndependent) {
  Result<CompiledProgram> CP = compileString(Tiny, {}, "indep");
  ASSERT_TRUE(CP.isOk()) << CP.message();
  auto I1 = CP->instantiate();
  auto I2 = CP->instantiate();
  ASSERT_TRUE(I1.isOk() && I2.isOk());
  ASSERT_TRUE((*I1)->setInputReal("s", 2.0).isOk());
  ASSERT_TRUE((*I2)->setInputReal("s", 10.0).isOk());
  ASSERT_TRUE((*I1)->initialize().isOk());
  ASSERT_TRUE((*I2)->initialize().isOk());
  ASSERT_TRUE((*I1)->run(10, 0).isOk());
  ASSERT_TRUE((*I2)->run(10, 0).isOk());
  std::vector<double> A, B;
  ASSERT_TRUE((*I1)->getOutput("x", A).isOk());
  ASSERT_TRUE((*I2)->getOutput("x", B).isOk());
  EXPECT_DOUBLE_EQ(A[3], 6.0);
  EXPECT_DOUBLE_EQ(B[3], 30.0);
}

TEST(Driver, InputIntrospection) {
  Result<CompiledProgram> CP = compileString(Tiny, {}, "inspect");
  ASSERT_TRUE(CP.isOk());
  auto I = CP->instantiate();
  ASSERT_TRUE(I.isOk());
  std::vector<rt::InputDesc> Ins = (*I)->inputs();
  ASSERT_EQ(Ins.size(), 1u);
  EXPECT_EQ(Ins[0].Name, "s");
  EXPECT_EQ(Ins[0].TypeName, "real");
  EXPECT_TRUE(Ins[0].HasDefault);
  std::vector<rt::OutputDesc> Outs = (*I)->outputs();
  ASSERT_EQ(Outs.size(), 1u);
  EXPECT_EQ(Outs[0].Name, "x");
  EXPECT_FALSE(Outs[0].IsInt);
}

TEST(Driver, LoadGlobalReadsNrrdAtInitialize) {
  // A program that load()s a file: write a NRRD, point the program at it.
  std::string Path = ::testing::TempDir() + "/drv_img.nrrd";
  Image Img = synth::sampledPolynomial2d(8, 1, 2, 0, 0); // f = 1 + 2x
  ASSERT_TRUE(nrrdWrite(Img.toNrrd(), Path).isOk());
  std::string Src = strf(R"(
field#1(2)[] f = ctmr ⊛ load(")", Path, R"(");
strand S (int i) {
  output real x = 0.0;
  update { x = f([0.25, 0.0]); stabilize; }
}
initially [ S(i) | i in 0 .. 1 ];
)");
  for (Engine E : {Engine::Interp, Engine::Native}) {
    CompileOptions Opts;
    Opts.Eng = E;
    Opts.DoublePrecision = true;
    Result<CompiledProgram> CP = compileString(Src, Opts, "loader");
    ASSERT_TRUE(CP.isOk()) << CP.message();
    auto I = CP->instantiate();
    ASSERT_TRUE(I.isOk()) << I.message();
    ASSERT_TRUE((*I)->initialize().isOk());
    ASSERT_TRUE((*I)->run(10, 0).isOk());
    std::vector<double> X;
    ASSERT_TRUE((*I)->getOutput("x", X).isOk());
    EXPECT_NEAR(X[0], 1.5, 1e-9);
  }
  std::remove(Path.c_str());
}

TEST(Driver, MissingLoadFileFailsAtInitialize) {
  std::string Src = R"(
field#1(2)[] f = ctmr ⊛ load("/no/such/file.nrrd");
strand S (int i) {
  output real x = 0.0;
  update { x = f([0.0, 0.0]); stabilize; }
}
initially [ S(i) | i in 0 .. 1 ];
)";
  CompileOptions Opts;
  Opts.Eng = Engine::Interp;
  Result<CompiledProgram> CP = compileString(Src, Opts, "missing");
  ASSERT_TRUE(CP.isOk()) << CP.message();
  auto I = CP->instantiate();
  ASSERT_TRUE(I.isOk());
  Status S = (*I)->initialize();
  EXPECT_FALSE(S.isOk());
}

TEST(Driver, OptimizationTogglesPreserveSemantics) {
  for (bool VN : {false, true})
    for (bool Contract : {false, true}) {
      CompileOptions Opts;
      Opts.Eng = Engine::Interp;
      Opts.EnableValueNumbering = VN;
      Opts.EnableContract = Contract;
      Result<CompiledProgram> CP = compileString(Tiny, Opts, "toggle");
      ASSERT_TRUE(CP.isOk()) << CP.message();
      auto I = CP->instantiate();
      ASSERT_TRUE(I.isOk());
      ASSERT_TRUE((*I)->initialize().isOk());
      ASSERT_TRUE((*I)->run(10, 0).isOk());
      std::vector<double> X;
      ASSERT_TRUE((*I)->getOutput("x", X).isOk());
      EXPECT_DOUBLE_EQ(X[2], 6.0) << "VN=" << VN << " C=" << Contract;
    }
}

} // namespace
} // namespace diderot

//===--- tests/serve_pool_test.cpp - pooled scheduling through the daemon ----===//
//
// Part of the Diderot-C++ reproduction (PLDI 2012).
//
// The serving-side face of the persistent StrandPool: a daemon configured
// with --scheduler pooled (or a request carrying X-Diderot-Scheduler)
// runs its jobs on the pool, repeated /run jobs reuse the parked threads
// instead of growing the pool, and the run-limit headers that used to go
// through bare atoi now 400 on malformed values. Interp-engine only, so
// the whole file also compiles into the serve_pool_tsan target (the runs
// execute in-process, on the host's own pool singleton — which is exactly
// what lets these tests observe the thread count directly).
//
//===----------------------------------------------------------------------===//

#include "serve/daemon.h"

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

#include <gtest/gtest.h>

#include "runtime/scheduler.h"

namespace diderot {
namespace {

/// Enough strands for several blocks per worker, so pooled runs exercise
/// the deques; strand i stabilizes after (i % 4) + 1 updates.
const char *PoolProg = R"(
strand S (int i) {
  int it = 0;
  output real v = real(i);
  update {
    it += 1;
    v = v + 1.0;
    if (it > i - (i / 4) * 4) stabilize;
  }
}
initially [ S(i) | i in 0 .. 63 ];
)";

std::string tempDir(const char *Tag) {
  auto P = std::filesystem::temp_directory_path() /
           (std::string("diderot-serve-pool-test-") + Tag + "-" +
            std::to_string(::getpid()));
  std::filesystem::create_directories(P);
  return P.string();
}

struct Reply {
  int Code = 0;
  std::string Body;
  std::string Raw;
};

Reply httpDo(int Port, const std::string &Method, const std::string &Path,
             const std::string &Body = "",
             const std::vector<std::pair<std::string, std::string>> &Headers =
                 {}) {
  Reply Out;
  int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (Fd < 0)
    return Out;
  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  Addr.sin_port = htons(static_cast<uint16_t>(Port));
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0) {
    ::close(Fd);
    return Out;
  }
  std::string Wire = Method + " " + Path + " HTTP/1.1\r\n";
  for (const auto &[K, V] : Headers)
    Wire += K + ": " + V + "\r\n";
  Wire += "Content-Length: " + std::to_string(Body.size()) + "\r\n\r\n";
  Wire += Body;
  size_t Off = 0;
  while (Off < Wire.size()) {
    ssize_t N = ::send(Fd, Wire.data() + Off, Wire.size() - Off, 0);
    if (N <= 0)
      break;
    Off += static_cast<size_t>(N);
  }
  char Buf[8192];
  ssize_t N;
  while ((N = ::recv(Fd, Buf, sizeof(Buf), 0)) > 0)
    Out.Raw.append(Buf, static_cast<size_t>(N));
  ::close(Fd);
  if (Out.Raw.size() > 12)
    Out.Code = std::atoi(Out.Raw.c_str() + 9);
  size_t HdrEnd = Out.Raw.find("\r\n\r\n");
  if (HdrEnd != std::string::npos)
    Out.Body = Out.Raw.substr(HdrEnd + 4);
  return Out;
}

std::string jsonField(const std::string &Json, const std::string &Key) {
  size_t P = Json.find("\"" + Key + "\":");
  if (P == std::string::npos)
    return "";
  P += Key.size() + 3;
  if (P < Json.size() && Json[P] == '"') {
    size_t E = Json.find('"', P + 1);
    return Json.substr(P + 1, E - P - 1);
  }
  size_t E = Json.find_first_of(",}", P);
  return Json.substr(P, E - P);
}

std::string runAndWait(int Port, const std::string &Src,
                       std::vector<std::pair<std::string, std::string>>
                           Headers = {}) {
  Reply R = httpDo(Port, "POST", "/run", Src, Headers);
  EXPECT_EQ(R.Code, 202) << R.Raw;
  std::string Id = jsonField(R.Body, "job");
  EXPECT_FALSE(Id.empty());
  for (int Tries = 0; Tries < 600; ++Tries) {
    Reply J = httpDo(Port, "GET", "/jobs/" + Id);
    EXPECT_EQ(J.Code, 200);
    std::string State = jsonField(J.Body, "state");
    if (State == "done" || State == "failed")
      return J.Body;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ADD_FAILURE() << "job " << Id << " did not finish";
  return "";
}

serve::DaemonOptions pooledOptions(const std::string &CacheDir,
                                   int RunWorkers = 4) {
  serve::DaemonOptions O;
  O.Compile.Eng = Engine::Interp;
  O.Compile.WorkDir = CacheDir;
  O.RunWorkers = RunWorkers;
  O.RunScheduler = rt::Scheduler::Pooled;
  return O;
}

} // namespace

TEST(ServePool, PooledDefaultRunsJobsToDone) {
  serve::Daemon D;
  ASSERT_TRUE(D.start(pooledOptions(tempDir("default"))).isOk());
  std::string Job = runAndWait(D.port(), PoolProg);
  EXPECT_EQ(jsonField(Job, "state"), "done");
  serve::Daemon::Counters C = D.counters();
  EXPECT_EQ(C.JobsDone, 1u);
  EXPECT_EQ(C.JobsFailed, 0u);
  D.stop();
}

TEST(ServePool, RepeatedJobsReuseParkedThreads) {
  // The acceptance property of the whole PR: N jobs through a pooled
  // daemon park and reuse the same pool threads — the pool warms once and
  // never grows after that. Interp runs execute in the daemon's (= this
  // test's) process, so the singleton we interrogate is the one the jobs
  // ran on.
  serve::Daemon D;
  ASSERT_TRUE(D.start(pooledOptions(tempDir("reuse"))).isOk());
  EXPECT_EQ(jsonField(runAndWait(D.port(), PoolProg), "state"), "done");
  rt::StrandPool &P = rt::StrandPool::instance();
  int Warm = P.threadCount();
  EXPECT_GE(Warm, 1);
  uint64_t Parks0 = P.parkCount();
  const int Jobs = 10;
  for (int J = 0; J < Jobs; ++J)
    EXPECT_EQ(jsonField(runAndWait(D.port(), PoolProg), "state"), "done");
  EXPECT_EQ(P.threadCount(), Warm) << "pool grew across identical jobs";
  // Every job parked its workers back (>= because other activity on the
  // process-wide pool may add parks, never remove them).
  EXPECT_GE(P.parkCount() - Parks0, static_cast<uint64_t>(Jobs));
  EXPECT_EQ(D.counters().JobsDone, static_cast<uint64_t>(Jobs) + 1);
  D.stop();
}

TEST(ServePool, SchedulerHeaderOverridesDaemonDefault) {
  // Daemon defaults to bsp; the request opts into pooled per job.
  std::string Cache = tempDir("override");
  serve::DaemonOptions O = pooledOptions(Cache);
  O.RunScheduler = rt::Scheduler::Bsp;
  serve::Daemon D;
  ASSERT_TRUE(D.start(O).isOk());
  EXPECT_EQ(jsonField(runAndWait(D.port(), PoolProg,
                                 {{"X-Diderot-Scheduler", "pooled"}}),
                      "state"),
            "done");
  // And the reverse: a pooled daemon serving an explicit bsp request.
  EXPECT_EQ(jsonField(runAndWait(D.port(), PoolProg,
                                 {{"X-Diderot-Scheduler", "bsp"}}),
                      "state"),
            "done");
  EXPECT_EQ(D.counters().JobsDone, 2u);
  D.stop();
}

TEST(ServePool, MalformedRunHeadersAre400NamingTheHeader) {
  serve::Daemon D;
  ASSERT_TRUE(D.start(pooledOptions(tempDir("badhdr"))).isOk());
  struct Case {
    const char *Header;
    const char *Value;
  };
  for (const Case &C : {Case{"X-Diderot-Scheduler", "fastest"},
                        Case{"X-Diderot-Scheduler", "POOLED"},
                        Case{"X-Diderot-Steps", "ten"},
                        Case{"X-Diderot-Steps", "-1"},
                        Case{"X-Diderot-Steps", "1e9"},
                        Case{"X-Diderot-Run-Workers", "4x"},
                        Case{"X-Diderot-Run-Workers", "-2"},
                        Case{"X-Diderot-Deadline-Ms", "soon"},
                        Case{"X-Diderot-Deadline-Ms", "-5"},
                        // Would overflow ns: must be rejected, not wrap.
                        Case{"X-Diderot-Deadline-Ms",
                             "99999999999999999999"}}) {
    Reply R = httpDo(D.port(), "POST", "/run", PoolProg,
                     {{C.Header, C.Value}});
    EXPECT_EQ(R.Code, 400) << C.Header << ": " << C.Value << "\n" << R.Raw;
    EXPECT_NE(R.Body.find(C.Header), std::string::npos)
        << "400 body must name the offending header; got: " << R.Body;
  }
  // Nothing was enqueued by any of those.
  serve::Daemon::Counters C = D.counters();
  EXPECT_EQ(C.JobsDone + C.JobsFailed, 0u);
  // Well-formed values on the same headers still work.
  EXPECT_EQ(jsonField(runAndWait(D.port(), PoolProg,
                                 {{"X-Diderot-Steps", "50"},
                                  {"X-Diderot-Run-Workers", "2"},
                                  {"X-Diderot-Deadline-Ms", "60000"},
                                  {"X-Diderot-Scheduler", "pooled"}}),
                      "state"),
            "done");
  D.stop();
}

TEST(ServePool, StopWithQueuedJobsFailsThemAsCancelled) {
  // One job worker held by a spinning job with a generous deadline; the
  // jobs queued behind it are cancelled by stop() and must surface as
  // failed with the shutdown message, not vanish.
  const char *Spin = R"(
strand S (int i) {
  output real v = 0.0;
  update { v += 1.0; }
}
initially [ S(i) | i in 0 .. 3 ];
)";
  serve::DaemonOptions O = pooledOptions(tempDir("cancel"), 1);
  O.JobWorkers = 1;
  O.MaxSupersteps = 1000000000; // the deadline, not the step cap, ends it
  serve::Daemon D;
  ASSERT_TRUE(D.start(O).isOk());
  Reply Gate = httpDo(D.port(), "POST", "/run", Spin,
                      {{"X-Diderot-Deadline-Ms", "400"}});
  ASSERT_EQ(Gate.Code, 202) << Gate.Raw;
  Reply Queued = httpDo(D.port(), "POST", "/run", PoolProg);
  ASSERT_EQ(Queued.Code, 202) << Queued.Raw;
  std::string QueuedId = jsonField(Queued.Body, "job");
  // Give the worker a moment to pick up the gate job, then stop: the
  // spinning job finishes at its deadline, the queued one is cancelled.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  uint64_t FailedBefore = D.counters().JobsFailed;
  D.stop();
  EXPECT_EQ(D.counters().JobsFailed, FailedBefore + 1);
  (void)QueuedId;
}

} // namespace diderot

//===--- tests/image_test.cpp - oriented image tests -----------------------===//

#include <cmath>

#include <gtest/gtest.h>

#include "image/image.h"

namespace diderot {
namespace {

TEST(Image, ConstructionDefaults) {
  Image Img(3, Shape{}, {4, 5, 6});
  EXPECT_EQ(Img.dim(), 3);
  EXPECT_EQ(Img.numComponents(), 1);
  EXPECT_EQ(Img.numSamples(), 120u);
  // Identity orientation.
  double Idx[3] = {1, 2, 3}, World[3];
  Img.indexToWorld(Idx, World);
  EXPECT_DOUBLE_EQ(World[0], 1.0);
  EXPECT_DOUBLE_EQ(World[2], 3.0);
}

TEST(Image, SampleSetGet) {
  Image Img(2, Shape{}, {3, 3});
  int Idx[2] = {1, 2};
  Img.setSample(Idx, 0, 7.5);
  EXPECT_DOUBLE_EQ(Img.sample(Idx, 0), 7.5);
}

TEST(Image, SampleClampsOutOfRange) {
  Image Img(2, Shape{}, {2, 2});
  int In[2] = {1, 1};
  Img.setSample(In, 0, 9.0);
  int Out[2] = {5, 7};
  EXPECT_DOUBLE_EQ(Img.sample(Out, 0), 9.0);
  int Neg[2] = {-3, 1};
  int Expect[2] = {0, 1};
  EXPECT_DOUBLE_EQ(Img.sample(Neg, 0), Img.sample(Expect, 0));
}

TEST(Image, VectorValuedLayout) {
  Image Img(2, Shape{2}, {2, 2});
  EXPECT_EQ(Img.numComponents(), 2);
  int Idx[2] = {1, 0};
  Img.setSample(Idx, 0, 1.0);
  Img.setSample(Idx, 1, 2.0);
  Tensor T = Img.tensorAt(Idx);
  EXPECT_EQ(T.shape(), (Shape{2}));
  EXPECT_DOUBLE_EQ(T[0], 1.0);
  EXPECT_DOUBLE_EQ(T[1], 2.0);
}

TEST(Image, OrientationRoundTrip) {
  Image Img(2, Shape{}, {10, 10});
  // Anisotropic spacing with a rotation.
  double C = std::cos(0.3), S = std::sin(0.3);
  Img.setOrientation({0.5 * C, -0.7 * S, 0.5 * S, 0.7 * C}, {3.0, -2.0});
  double Idx[2] = {4.25, 7.5}, World[2], Back[2];
  Img.indexToWorld(Idx, World);
  Img.worldToIndex(World, Back);
  EXPECT_NEAR(Back[0], Idx[0], 1e-12);
  EXPECT_NEAR(Back[1], Idx[1], 1e-12);
}

TEST(Image, SpacingSetsDiagonal) {
  Image Img(3, Shape{}, {5, 5, 5});
  Img.setSpacing({0.5, 1.0, 2.0});
  double Idx[3] = {2, 2, 2}, World[3];
  Img.indexToWorld(Idx, World);
  EXPECT_DOUBLE_EQ(World[0], 1.0);
  EXPECT_DOUBLE_EQ(World[1], 2.0);
  EXPECT_DOUBLE_EQ(World[2], 4.0);
}

TEST(Image, GradientTransformIsInverseTranspose) {
  Image Img(2, Shape{}, {4, 4});
  Img.setOrientation({2.0, 1.0, 0.0, 3.0}, {0.0, 0.0});
  const std::vector<double> &MI = Img.worldToIndexMatrix();
  const std::vector<double> &MIT = Img.gradientTransform();
  EXPECT_DOUBLE_EQ(MIT[0], MI[0]);
  EXPECT_DOUBLE_EQ(MIT[1], MI[2]);
  EXPECT_DOUBLE_EQ(MIT[2], MI[1]);
  EXPECT_DOUBLE_EQ(MIT[3], MI[3]);
}

TEST(Image, InsideSupport) {
  Image Img(1, Shape{}, {10});
  // Support 2 (ctmr/bspln3): need n-1 >= 0 and n+2 <= 9, so x in [1, 7+1).
  double X = 0.5;
  EXPECT_FALSE(Img.insideSupport(&X, 2));
  X = 1.0;
  EXPECT_TRUE(Img.insideSupport(&X, 2));
  X = 7.9;
  EXPECT_TRUE(Img.insideSupport(&X, 2));
  X = 8.0;
  EXPECT_FALSE(Img.insideSupport(&X, 2));
  // Support 1 (tent): x in [0, 9).
  X = 0.0;
  EXPECT_TRUE(Img.insideSupport(&X, 1));
  X = 8.999;
  EXPECT_TRUE(Img.insideSupport(&X, 1));
  X = 9.0;
  EXPECT_FALSE(Img.insideSupport(&X, 1));
}

TEST(Image, NrrdRoundTripScalar) {
  Image Img(2, Shape{}, {3, 4});
  Img.setSpacing({0.5, 0.25});
  int Idx[2];
  for (int Y = 0; Y < 4; ++Y)
    for (int X = 0; X < 3; ++X) {
      Idx[0] = X;
      Idx[1] = Y;
      Img.setSample(Idx, 0, X * 10 + Y);
    }
  Nrrd N = Img.toNrrd();
  Result<Image> Back = Image::fromNrrd(N, 2, Shape{});
  ASSERT_TRUE(Back.isOk()) << Back.message();
  EXPECT_EQ(Back->sizes(), Img.sizes());
  for (int Y = 0; Y < 4; ++Y)
    for (int X = 0; X < 3; ++X) {
      Idx[0] = X;
      Idx[1] = Y;
      EXPECT_DOUBLE_EQ(Back->sample(Idx, 0), Img.sample(Idx, 0));
    }
  // Orientation survives.
  double I[2] = {1, 1}, W[2];
  Back->indexToWorld(I, W);
  EXPECT_DOUBLE_EQ(W[0], 0.5);
  EXPECT_DOUBLE_EQ(W[1], 0.25);
}

TEST(Image, NrrdRoundTripVector) {
  Image Img(2, Shape{2}, {3, 3});
  int Idx[2] = {2, 1};
  Img.setSample(Idx, 1, -4.5);
  Nrrd N = Img.toNrrd();
  EXPECT_EQ(N.dimension(), 3);
  EXPECT_EQ(N.Sizes[0], 2);
  Result<Image> Back = Image::fromNrrd(N, 2, Shape{2});
  ASSERT_TRUE(Back.isOk()) << Back.message();
  EXPECT_DOUBLE_EQ(Back->sample(Idx, 1), -4.5);
}

TEST(Image, FromNrrdDimensionMismatch) {
  Image Img(2, Shape{}, {3, 3});
  Nrrd N = Img.toNrrd();
  EXPECT_FALSE(Image::fromNrrd(N, 3, Shape{}).isOk());
  EXPECT_FALSE(Image::fromNrrd(N, 2, Shape{3}).isOk());
}

TEST(Image, FromNrrdComponentMismatch) {
  Image Img(2, Shape{3}, {3, 3});
  Nrrd N = Img.toNrrd();
  EXPECT_FALSE(Image::fromNrrd(N, 2, Shape{2}).isOk());
}

} // namespace
} // namespace diderot

//===--- tests/pool_test.cpp - persistent pool scheduler tests ---------------===//
//
// The runPooled scheduler and the StrandPool behind it: BSP semantics
// (every active strand updated exactly once per superstep), block stealing
// under imbalance, thread reuse across runs (the no-thread-growth
// property), Lease serialization of concurrent runs, policy containment
// (deadline, fault budget), and the edge cases shared with the bsp
// scheduler (MaxSteps <= 0, no active strands, more workers than blocks).
//
// This file is also compiled into test_pool_tsan, so everything here
// certifies under ThreadSanitizer that the park/dispatch protocol and the
// per-deque stealing locks are race-free.
//
//===----------------------------------------------------------------------===//

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "observe/metrics.h"
#include "runtime/scheduler.h"

namespace diderot::rt {
namespace {

//===----------------------------------------------------------------------===//
// BSP semantics on the pool
//===----------------------------------------------------------------------===//

/// Same sweep as the bsp scheduler's: every active strand updated exactly
/// once per superstep, for any (workers, blockSize) partitioning.
class PooledSweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(PooledSweep, EveryStrandUpdatedExactlyOncePerStep) {
  auto [Workers, Block] = GetParam();
  const size_t N = 1000;
  std::vector<StrandStatus> S(N, StrandStatus::Active);
  std::vector<std::atomic<int>> Count(N);
  int Steps = runPooled(
      S,
      [&](size_t I) {
        int C = ++Count[I];
        return C >= 3 ? StrandStatus::Stable : StrandStatus::Active;
      },
      100, Workers, Block);
  EXPECT_EQ(Steps, 3);
  for (size_t I = 0; I < N; ++I)
    EXPECT_EQ(Count[I].load(), 3) << "strand " << I;
}

TEST_P(PooledSweep, MixedLifecycles) {
  auto [Workers, Block] = GetParam();
  const size_t N = 500;
  std::vector<StrandStatus> S(N, StrandStatus::Active);
  std::vector<std::atomic<int>> Count(N);
  runPooled(
      S,
      [&](size_t I) {
        int C = ++Count[I];
        if (I % 3 == 0)
          return StrandStatus::Dead;
        return C > static_cast<int>(I % 5) ? StrandStatus::Stable
                                           : StrandStatus::Active;
      },
      100, Workers, Block);
  for (size_t I = 0; I < N; ++I) {
    if (I % 3 == 0) {
      EXPECT_EQ(S[I], StrandStatus::Dead);
      EXPECT_EQ(Count[I].load(), 1);
    } else {
      EXPECT_EQ(S[I], StrandStatus::Stable);
      EXPECT_EQ(Count[I].load(), static_cast<int>(I % 5) + 1);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PooledSweep,
    ::testing::Combine(::testing::Values(1, 2, 4, 8),
                       ::testing::Values(1, 16, 4096)));

TEST(Pooled, ZeroWorkersFallsBackToSequential) {
  std::vector<StrandStatus> S(10, StrandStatus::Active);
  int Steps = runPooled(
      S, [&](size_t) { return StrandStatus::Stable; }, 100, 0);
  EXPECT_EQ(Steps, 1);
  int Before = StrandPool::instance().threadCount();
  runPooled(S, [&](size_t) { return StrandStatus::Stable; }, 100, -3);
  // The sequential fallback must not touch the pool.
  EXPECT_EQ(StrandPool::instance().threadCount(), Before);
}

TEST(Pooled, HonorsMaxSteps) {
  std::vector<StrandStatus> S(100, StrandStatus::Active);
  int Steps = runPooled(
      S, [&](size_t) { return StrandStatus::Active; }, 5, 4, 16);
  EXPECT_EQ(Steps, 5);
}

TEST(Pooled, ClampsNonPositiveBlockSize) {
  for (int Block : {0, -1, -4096}) {
    const size_t N = 1000;
    std::vector<StrandStatus> S(N, StrandStatus::Active);
    std::vector<std::atomic<int>> Count(N);
    int Steps = runPooled(
        S,
        [&](size_t I) {
          int C = ++Count[I];
          return C >= 2 ? StrandStatus::Stable : StrandStatus::Active;
        },
        100, 4, Block);
    EXPECT_EQ(Steps, 2) << "BlockSize " << Block;
    for (size_t I = 0; I < N; ++I)
      EXPECT_EQ(Count[I].load(), 2) << "strand " << I;
  }
}

//===----------------------------------------------------------------------===//
// Edge cases: no work means no dispatch (both schedulers)
//===----------------------------------------------------------------------===//

TEST(Pooled, ZeroMaxStepsRunsNothing) {
  for (int MaxSteps : {0, -1}) {
    std::vector<StrandStatus> S(100, StrandStatus::Active);
    std::atomic<int> Updates{0};
    int Steps = runPooled(
        S,
        [&](size_t) {
          ++Updates;
          return StrandStatus::Stable;
        },
        MaxSteps, 4, 16);
    EXPECT_EQ(Steps, 0) << "MaxSteps " << MaxSteps;
    EXPECT_EQ(Updates.load(), 0);
  }
}

TEST(Pooled, NoActiveStrandsRunsNothing) {
  std::vector<StrandStatus> Empty;
  EXPECT_EQ(runPooled(Empty, [&](size_t) { return StrandStatus::Stable; },
                      100, 4),
            0);
  std::vector<StrandStatus> AllDone(64, StrandStatus::Stable);
  std::atomic<int> Updates{0};
  EXPECT_EQ(runPooled(AllDone,
                      [&](size_t) {
                        ++Updates;
                        return StrandStatus::Stable;
                      },
                      100, 4, 8),
            0);
  EXPECT_EQ(Updates.load(), 0);
}

TEST(Pooled, MoreWorkersThanBlocksClampsAndCompletes) {
  // 3 blocks of work, 8 workers requested: the scheduler must clamp to 3
  // and still update every strand exactly once per superstep.
  const size_t N = 3 * 16;
  std::vector<StrandStatus> S(N, StrandStatus::Active);
  std::vector<std::atomic<int>> Count(N);
  int Steps = runPooled(
      S,
      [&](size_t I) {
        int C = ++Count[I];
        return C >= 2 ? StrandStatus::Stable : StrandStatus::Active;
      },
      100, 8, 16);
  EXPECT_EQ(Steps, 2);
  for (size_t I = 0; I < N; ++I)
    EXPECT_EQ(Count[I].load(), 2) << "strand " << I;
}

//===----------------------------------------------------------------------===//
// Pool persistence: thread reuse, parks, lease serialization
//===----------------------------------------------------------------------===//

TEST(StrandPoolReuse, RepeatedRunsDoNotGrowThreadCount) {
  const int Workers = 4;
  auto RunOnce = [&] {
    std::vector<StrandStatus> S(256, StrandStatus::Active);
    std::vector<std::atomic<int>> Count(S.size());
    runPooled(
        S,
        [&](size_t I) {
          return ++Count[I] >= 2 ? StrandStatus::Stable
                                 : StrandStatus::Active;
        },
        100, Workers, 16);
  };
  RunOnce(); // pool warmed to >= Workers threads
  StrandPool &P = StrandPool::instance();
  int After = P.threadCount();
  EXPECT_GE(After, Workers);
  uint64_t Parks0 = P.parkCount();
  for (int R = 0; R < 20; ++R)
    RunOnce();
  // The whole point of the pool: twenty more runs, zero new threads.
  EXPECT_EQ(P.threadCount(), After);
  // Each completed run parks each of its workers exactly once.
  EXPECT_EQ(P.parkCount() - Parks0, 20u * Workers);
}

TEST(StrandPoolReuse, GrowsLazilyToLargestRequest) {
  std::vector<StrandStatus> S(4096, StrandStatus::Active);
  std::vector<std::atomic<int>> Count(S.size());
  auto Update = [&](size_t I) {
    return ++Count[I] >= 1 ? StrandStatus::Stable : StrandStatus::Active;
  };
  runPooled(S, Update, 100, 2, 64);
  StrandPool &P = StrandPool::instance();
  int AfterSmall = P.threadCount();
  EXPECT_GE(AfterSmall, 2);
  for (auto &C : Count)
    C = 0;
  std::fill(S.begin(), S.end(), StrandStatus::Active);
  runPooled(S, Update, 100, 6, 64);
  // A larger request grows the pool; a later smaller one reuses it.
  int AfterBig = P.threadCount();
  EXPECT_GE(AfterBig, 6);
  for (auto &C : Count)
    C = 0;
  std::fill(S.begin(), S.end(), StrandStatus::Active);
  runPooled(S, Update, 100, 3, 64);
  EXPECT_EQ(P.threadCount(), AfterBig);
}

TEST(StrandPoolReuse, ConcurrentRunsSerializeAndBothComplete) {
  // Two host threads issue pooled runs at once; the Lease's RunMu must
  // serialize them so both see correct per-superstep semantics.
  auto RunAndCheck = [&] {
    const size_t N = 2000;
    std::vector<StrandStatus> S(N, StrandStatus::Active);
    std::vector<std::atomic<int>> Count(N);
    int Steps = runPooled(
        S,
        [&](size_t I) {
          int C = ++Count[I];
          return C >= 3 ? StrandStatus::Stable : StrandStatus::Active;
        },
        100, 4, 64);
    EXPECT_EQ(Steps, 3);
    for (size_t I = 0; I < N; ++I)
      EXPECT_EQ(Count[I].load(), 3);
  };
  std::thread A(RunAndCheck), B(RunAndCheck);
  A.join();
  B.join();
}

//===----------------------------------------------------------------------===//
// Stealing
//===----------------------------------------------------------------------===//

TEST(PooledStealing, ImbalancedWorkIsStolenAndCounted) {
  // One-strand blocks, with all the heavy strands dealt to the last
  // worker's contiguous chunk: the other workers drain their own deques
  // almost instantly and must steal from the heavy one to finish the
  // superstep. The armed registry counts those steals.
  const int Workers = 4;
  const size_t N = 64; // 64 blocks of 1 strand; worker 3 gets blocks 48..63
  observe::Recorder Rec;
  Rec.start(Workers, false, /*CollectMetrics=*/true);
  std::vector<StrandStatus> S(N, StrandStatus::Active);
  std::vector<std::atomic<int>> Hit(N);
  int Steps = runPooled(
      S,
      [&](size_t I) {
        ++Hit[I];
        if (I >= 48)
          std::this_thread::sleep_for(std::chrono::milliseconds(2));
        return StrandStatus::Stable;
      },
      100, Workers, /*BlockSize=*/1, &Rec);
  EXPECT_EQ(Steps, 1);
  for (size_t I = 0; I < N; ++I)
    EXPECT_EQ(Hit[I].load(), 1) << "strand " << I; // stolen, never duplicated
  RunStats R = Rec.take(Steps, Workers);
  ASSERT_TRUE(R.Metrics.Enabled);
  EXPECT_GT(R.Metrics.Counters[observe::McBlocksStolen], 0u);
  EXPECT_EQ(R.Metrics.Counters[observe::McPoolParks],
            static_cast<uint64_t>(Workers));
  EXPECT_GE(R.Metrics.Gauges[observe::MgPoolThreads],
            static_cast<int64_t>(Workers));
  // Spans stay rectangular on the pool exactly as on bsp.
  ASSERT_EQ(R.Workers.size(), static_cast<size_t>(Workers));
  uint64_t SpanSum = 0;
  for (const std::vector<observe::WorkerSpan> &Row : R.Workers) {
    ASSERT_EQ(Row.size(), 1u);
    SpanSum += Row[0].Updated;
  }
  EXPECT_EQ(SpanSum, N);
}

TEST(PooledStealing, BalancedWorkNeedsNoStealsToBeCorrect) {
  // No assertion on the steal count itself (a fast worker may still race
  // ahead and steal) — only that correctness never depends on it.
  const size_t N = 8 * 4096;
  observe::Recorder Rec;
  Rec.start(4, false, /*CollectMetrics=*/true);
  std::vector<StrandStatus> S(N, StrandStatus::Active);
  std::vector<std::atomic<int>> Count(N);
  int Steps = runPooled(
      S,
      [&](size_t I) {
        int C = ++Count[I];
        return C >= 2 ? StrandStatus::Stable : StrandStatus::Active;
      },
      100, 4, 4096, &Rec);
  EXPECT_EQ(Steps, 2);
  for (size_t I = 0; I < N; ++I)
    EXPECT_EQ(Count[I].load(), 2) << "strand " << I;
}

//===----------------------------------------------------------------------===//
// Policy containment on the pool
//===----------------------------------------------------------------------===//

TEST(PooledPolicy, DeadlineStopsMidSuperstepAndReparks) {
  const int Workers = 8;
  const size_t N = 256;
  RunPolicy P;
  P.DeadlineNs = 5 * 1000 * 1000; // 5 ms; the superstep needs ~32 ms
  RunControl Ctl(P);
  observe::Recorder Rec;
  Rec.start(Workers);
  std::vector<StrandStatus> S(N, StrandStatus::Active);
  std::atomic<int> Updates{0};
  int Steps = runPooled(
      S,
      [&](size_t) {
        Updates.fetch_add(1, std::memory_order_relaxed);
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        return StrandStatus::Active;
      },
      100, Workers, 4, &Rec, &Ctl);
  // runPooled returning proves the Lease drained: all workers re-parked.
  EXPECT_EQ(Ctl.finish(false), RunOutcome::Deadline);
  EXPECT_LT(Updates.load(), static_cast<int>(N));
  RunStats R = Rec.take(Steps, Workers);
  ASSERT_EQ(R.Workers.size(), static_cast<size_t>(Workers));
  uint64_t SpanSum = 0;
  for (const std::vector<observe::WorkerSpan> &Row : R.Workers) {
    EXPECT_EQ(Row.size(), static_cast<size_t>(Steps));
    for (const observe::WorkerSpan &Sp : Row)
      SpanSum += Sp.Updated;
  }
  EXPECT_EQ(SpanSum, static_cast<uint64_t>(Updates.load()));
  // The pool survives a policy stop: the next run reuses it.
  std::vector<StrandStatus> S2(64, StrandStatus::Active);
  EXPECT_EQ(runPooled(S2, [&](size_t) { return StrandStatus::Stable; }, 100,
                      Workers, 4),
            1);
}

TEST(PooledPolicy, AlreadyExpiredDeadlineRunsNoUpdate) {
  RunPolicy P;
  P.DeadlineNs = 1;
  RunControl Ctl(P);
  std::vector<StrandStatus> S(100, StrandStatus::Active);
  std::atomic<int> Updates{0};
  runPooled(
      S,
      [&](size_t) {
        ++Updates;
        return StrandStatus::Active;
      },
      100, 4, 16, nullptr, &Ctl);
  // The per-block check fires before any strand of that block updates, so
  // an expired-at-entry deadline stops the run with zero work done.
  EXPECT_EQ(Ctl.finish(false), RunOutcome::Deadline);
  EXPECT_EQ(Updates.load(), 0);
}

TEST(PooledPolicy, FaultBudgetStopsAllWorkersRepark) {
  const int Workers = 8;
  const size_t N = 4096;
  RunPolicy P;
  P.MaxFaults = 10;
  RunControl Ctl(P);
  std::vector<StrandStatus> S(N, StrandStatus::Active);
  runPooled(
      S,
      [&](size_t) -> StrandStatus { throw std::runtime_error("boom"); },
      100, Workers, 16, nullptr, &Ctl);
  EXPECT_EQ(Ctl.finish(false), RunOutcome::FaultBudget);
  std::vector<StrandFault> F = Ctl.takeFaults();
  EXPECT_GE(F.size(), 11u);
  size_t Faulted = 0;
  for (StrandStatus St : S)
    Faulted += St == StrandStatus::Faulted;
  EXPECT_EQ(Faulted, F.size());
}

TEST(PooledPolicy, WatchdogFlagsDivergence) {
  RunPolicy P;
  P.WatchdogSteps = 2;
  RunControl Ctl(P);
  std::vector<StrandStatus> S(100, StrandStatus::Active);
  int Steps = runPooled(
      S, [&](size_t) { return StrandStatus::Active; }, 100, 4, 16, nullptr,
      &Ctl);
  EXPECT_EQ(Steps, 2);
  EXPECT_EQ(Ctl.finish(false), RunOutcome::Diverged);
}

TEST(PooledPolicy, ExceptionTrappedOthersConverge) {
  const size_t N = 500;
  RunControl Ctl((RunPolicy()));
  std::vector<StrandStatus> S(N, StrandStatus::Active);
  std::vector<std::atomic<int>> Count(N);
  int Steps = runPooled(
      S,
      [&](size_t I) -> StrandStatus {
        if (I == 13)
          throw std::runtime_error("boom");
        int C = ++Count[I];
        return C >= 2 ? StrandStatus::Stable : StrandStatus::Active;
      },
      100, 8, 16, nullptr, &Ctl);
  EXPECT_EQ(Steps, 2);
  EXPECT_EQ(Ctl.finish(true), RunOutcome::Converged);
  for (size_t I = 0; I < N; ++I)
    EXPECT_EQ(S[I], I == 13 ? StrandStatus::Faulted : StrandStatus::Stable);
}

//===----------------------------------------------------------------------===//
// Dispatch plumbing
//===----------------------------------------------------------------------===//

TEST(SchedulerName, RoundTripsAndRejectsJunk) {
  EXPECT_STREQ(schedulerName(Scheduler::Bsp), "bsp");
  EXPECT_STREQ(schedulerName(Scheduler::Pooled), "pooled");
  Scheduler S = Scheduler::Bsp;
  EXPECT_TRUE(parseSchedulerName("pooled", S));
  EXPECT_EQ(S, Scheduler::Pooled);
  EXPECT_TRUE(parseSchedulerName("bsp", S));
  EXPECT_EQ(S, Scheduler::Bsp);
  S = Scheduler::Pooled;
  for (const char *Bad : {"", "BSP", "Pooled", "pool", "bsp ", "threaded"}) {
    EXPECT_FALSE(parseSchedulerName(Bad, S)) << "'" << Bad << "'";
    EXPECT_EQ(S, Scheduler::Pooled) << "Out clobbered by '" << Bad << "'";
  }
}

TEST(SchedulerName, RunScheduledDispatchesBoth) {
  for (Scheduler Sched : {Scheduler::Bsp, Scheduler::Pooled}) {
    const size_t N = 300;
    std::vector<StrandStatus> S(N, StrandStatus::Active);
    std::vector<std::atomic<int>> Count(N);
    int Steps = runScheduled(
        Sched, S,
        [&](size_t I) {
          int C = ++Count[I];
          return C >= 2 ? StrandStatus::Stable : StrandStatus::Active;
        },
        100, 4, 16);
    EXPECT_EQ(Steps, 2) << schedulerName(Sched);
    for (size_t I = 0; I < N; ++I)
      EXPECT_EQ(Count[I].load(), 2) << schedulerName(Sched) << " strand "
                                    << I;
  }
}

} // namespace
} // namespace diderot::rt

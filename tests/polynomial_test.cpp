//===--- tests/polynomial_test.cpp -----------------------------------------===//

#include <gtest/gtest.h>

#include "kernels/polynomial.h"

namespace diderot {
namespace {

TEST(Polynomial, ZeroPolynomial) {
  Polynomial P;
  EXPECT_TRUE(P.isZero());
  EXPECT_EQ(P.degree(), -1);
  EXPECT_EQ(P.eval(3.0), 0.0);
}

TEST(Polynomial, ConstantAndX) {
  EXPECT_EQ(Polynomial::constant(5.0).eval(100.0), 5.0);
  EXPECT_EQ(Polynomial::x().eval(7.0), 7.0);
}

TEST(Polynomial, TrimsTrailingZeros) {
  Polynomial P({1.0, 2.0, 0.0, 0.0});
  EXPECT_EQ(P.degree(), 1);
}

TEST(Polynomial, HornerEvaluation) {
  // 1 + 2x + 3x^2 at x=2 -> 17
  Polynomial P({1, 2, 3});
  EXPECT_DOUBLE_EQ(P.eval(2.0), 17.0);
  EXPECT_DOUBLE_EQ(P.eval(-1.0), 2.0);
}

TEST(Polynomial, Derivative) {
  Polynomial P({1, 2, 3}); // 1 + 2x + 3x^2
  Polynomial D = P.derivative();
  EXPECT_EQ(D.degree(), 1);
  EXPECT_DOUBLE_EQ(D.coeff(0), 2.0);
  EXPECT_DOUBLE_EQ(D.coeff(1), 6.0);
  EXPECT_TRUE(Polynomial::constant(4.0).derivative().isZero());
}

TEST(Polynomial, AntiderivativeInvertsDerivative) {
  Polynomial P({3, 1, 4, 1, 5});
  Polynomial Back = P.antiderivative().derivative();
  EXPECT_EQ(Back, P);
}

TEST(Polynomial, Arithmetic) {
  Polynomial A({1, 1});  // 1 + x
  Polynomial B({2, -1}); // 2 - x
  EXPECT_DOUBLE_EQ((A + B).eval(5.0), 3.0);
  EXPECT_DOUBLE_EQ((A - B).eval(5.0), 2 * 5.0 - 1.0);
  // (1+x)(2-x) = 2 + x - x^2
  Polynomial P = A * B;
  EXPECT_EQ(P.degree(), 2);
  EXPECT_DOUBLE_EQ(P.eval(3.0), 2 + 3 - 9);
}

TEST(Polynomial, CancellationShrinksDegree) {
  Polynomial A({0, 0, 1});  // x^2
  Polynomial B({1, 0, -1}); // 1 - x^2
  EXPECT_EQ((A + B).degree(), 0);
}

TEST(Polynomial, Power) {
  // (1 - x)^3 = 1 - 3x + 3x^2 - x^3
  Polynomial P = Polynomial({1, -1}).pow(3);
  EXPECT_DOUBLE_EQ(P.coeff(0), 1.0);
  EXPECT_DOUBLE_EQ(P.coeff(1), -3.0);
  EXPECT_DOUBLE_EQ(P.coeff(2), 3.0);
  EXPECT_DOUBLE_EQ(P.coeff(3), -1.0);
  EXPECT_EQ(Polynomial({2, 1}).pow(0), Polynomial::constant(1.0));
}

TEST(Polynomial, ComposeLinear) {
  // p(x) = x^2 + 1, p(2t + 3) = 4t^2 + 12t + 10
  Polynomial P({1, 0, 1});
  Polynomial C = P.composeLinear(2.0, 3.0);
  EXPECT_DOUBLE_EQ(C.coeff(0), 10.0);
  EXPECT_DOUBLE_EQ(C.coeff(1), 12.0);
  EXPECT_DOUBLE_EQ(C.coeff(2), 4.0);
}

TEST(Polynomial, ComposeNegation) {
  // p(-t) mirrors odd coefficients.
  Polynomial P({1, 2, 3, 4});
  Polynomial C = P.composeLinear(-1.0, 0.0);
  EXPECT_DOUBLE_EQ(C.coeff(0), 1.0);
  EXPECT_DOUBLE_EQ(C.coeff(1), -2.0);
  EXPECT_DOUBLE_EQ(C.coeff(2), 3.0);
  EXPECT_DOUBLE_EQ(C.coeff(3), -4.0);
}

TEST(Polynomial, Render) {
  EXPECT_EQ(Polynomial().str(), "0");
  EXPECT_EQ(Polynomial({1.0, 0.0, -2.5, 1.5}).str(), "1.0 - 2.5*x^2 + 1.5*x^3");
  EXPECT_EQ(Polynomial({0.0, 1.0}).str(), "x");
}

class PolynomialComposeSweep : public ::testing::TestWithParam<int> {};

TEST_P(PolynomialComposeSweep, ComposeAgreesWithDirectEvaluation) {
  int K = GetParam();
  Polynomial P({0.5, -1.0, 2.0, 0.25, -0.125});
  double A = 0.5 + 0.25 * K, B = -1.0 + 0.3 * K;
  Polynomial C = P.composeLinear(A, B);
  for (double T : {-2.0, -0.5, 0.0, 0.3, 1.0, 2.5})
    EXPECT_NEAR(C.eval(T), P.eval(A * T + B), 1e-10);
}

TEST_P(PolynomialComposeSweep, DerivativeChainRule) {
  int K = GetParam();
  Polynomial P({1.0, 0.5 * K, -2.0, 1.0});
  double A = 1.0 + 0.5 * K;
  // d/dt p(a t + b) = a p'(a t + b)
  Polynomial Lhs = P.composeLinear(A, 0.7).derivative();
  Polynomial Rhs = P.derivative().composeLinear(A, 0.7) * A;
  for (double T : {-1.0, 0.0, 0.5, 2.0})
    EXPECT_NEAR(Lhs.eval(T), Rhs.eval(T), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sweep, PolynomialComposeSweep, ::testing::Range(0, 8));

} // namespace
} // namespace diderot

//===--- tests/fault_test.cpp - fault-containment end-to-end tests -----------===//
//
// Drives the fault-tolerant runtime (docs/ROBUSTNESS.md) through both
// engines and both schedulers: injected exceptions, strict-fp NaN traps,
// interpreter evaluation errors, wall-clock deadlines, fault budgets, and
// the convergence watchdog. Every case must terminate with the right
// RunOutcome and StrandFault records — never a process abort, never a hung
// worker.
//
//===----------------------------------------------------------------------===//

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <tuple>

#include <gtest/gtest.h>

#include "driver/driver.h"
#include "observe/observe.h"
#include "runtime/scheduler.h"

namespace diderot {
namespace {

using observe::FaultKind;
using observe::RunOutcome;

/// Strand i stabilizes after three updates; strand 3's state goes NaN on its
/// first update (sqrt of a negative), which only strict-fp notices.
const char *NanProgram = R"(
strand S (int i) {
  int it = 0;
  output real y = 1.0;
  update {
    it += 1;
    y = (sqrt(-y) if i == 3 else y + 1.0);
    if (it == 3) stabilize;
  }
}
initially [ S(i) | i in 0 .. 7 ];
)";

/// Converges after three updates; the victim for injection plans.
const char *ConvergingProgram = R"(
strand S (int i) {
  int it = 0;
  output real y = 0.0;
  update {
    it += 1;
    y = y + real(i);
    if (it == 3) stabilize;
  }
}
initially [ S(i) | i in 0 .. 7 ];
)";

/// Never stabilizes: deadline / watchdog / step-limit fodder.
const char *DivergingProgram = R"(
strand S (int i) {
  output real y = 0.0;
  update {
    y = y + sin(y + real(i)) + 1.0;
  }
}
initially [ S(i) | i in 0 .. 7 ];
)";

std::unique_ptr<rt::ProgramInstance> makeInstance(const char *Src,
                                                  Engine Eng) {
  CompileOptions Opts;
  Opts.Eng = Eng;
  Result<CompiledProgram> CP = compileString(Src, Opts, "fault");
  EXPECT_TRUE(CP.isOk()) << CP.message();
  if (!CP.isOk())
    return nullptr;
  Result<std::unique_ptr<rt::ProgramInstance>> I = CP->instantiate();
  EXPECT_TRUE(I.isOk()) << I.message();
  if (!I.isOk())
    return nullptr;
  EXPECT_TRUE((*I)->initialize().isOk());
  return I.take();
}

/// (engine, workers): workers == 0 is the sequential loop, > 0 the pool.
class FaultMatrix
    : public ::testing::TestWithParam<std::tuple<Engine, int>> {};

TEST_P(FaultMatrix, InjectedExceptionIsTrappedAndRunConverges) {
  auto [Eng, Workers] = GetParam();
  auto I = makeInstance(ConvergingProgram, Eng);
  ASSERT_NE(I, nullptr);
  rt::RunConfig RC;
  RC.MaxSupersteps = 100;
  RC.NumWorkers = Workers;
  RC.Policy.Plan.at(3, 1, FaultKind::Exception);
  Result<rt::RunStats> R = I->run(RC);
  ASSERT_TRUE(R.isOk()) << R.message();
  EXPECT_EQ(R->Outcome, RunOutcome::Converged);
  EXPECT_EQ(I->numFaulted(), 1u);
  EXPECT_EQ(I->numStable(), 7u);
  EXPECT_EQ(I->numDead(), 0u);
  ASSERT_EQ(R->Faults.size(), 1u);
  EXPECT_EQ(R->Faults[0].Strand, 3u);
  EXPECT_EQ(R->Faults[0].Step, 1);
  EXPECT_EQ(R->Faults[0].Kind, FaultKind::Exception);
  EXPECT_FALSE(R->Faults[0].Message.empty());
}

TEST_P(FaultMatrix, InjectedFaultKindPropagates) {
  auto [Eng, Workers] = GetParam();
  auto I = makeInstance(ConvergingProgram, Eng);
  ASSERT_NE(I, nullptr);
  rt::RunConfig RC;
  RC.MaxSupersteps = 100;
  RC.NumWorkers = Workers;
  RC.Policy.Plan.at(5, 0, FaultKind::Injected);
  Result<rt::RunStats> R = I->run(RC);
  ASSERT_TRUE(R.isOk()) << R.message();
  EXPECT_EQ(R->Outcome, RunOutcome::Converged);
  ASSERT_EQ(R->Faults.size(), 1u);
  EXPECT_EQ(R->Faults[0].Strand, 5u);
  EXPECT_EQ(R->Faults[0].Kind, FaultKind::Injected);
}

TEST_P(FaultMatrix, StrictFpTrapsNaNStrand) {
  auto [Eng, Workers] = GetParam();
  auto I = makeInstance(NanProgram, Eng);
  ASSERT_NE(I, nullptr);
  rt::RunConfig RC;
  RC.MaxSupersteps = 100;
  RC.NumWorkers = Workers;
  RC.Policy.StrictFp = true;
  Result<rt::RunStats> R = I->run(RC);
  ASSERT_TRUE(R.isOk()) << R.message();
  EXPECT_EQ(R->Outcome, RunOutcome::Converged);
  EXPECT_EQ(I->numFaulted(), 1u);
  EXPECT_EQ(I->numStable(), 7u);
  ASSERT_EQ(R->Faults.size(), 1u);
  EXPECT_EQ(R->Faults[0].Strand, 3u);
  EXPECT_EQ(R->Faults[0].Step, 0);
  EXPECT_EQ(R->Faults[0].Kind, FaultKind::NonFinite);
}

TEST_P(FaultMatrix, WithoutStrictFpNaNPropagatesSilently) {
  auto [Eng, Workers] = GetParam();
  auto I = makeInstance(NanProgram, Eng);
  ASSERT_NE(I, nullptr);
  Result<rt::RunStats> R = I->run(100, Workers);
  ASSERT_TRUE(R.isOk()) << R.message();
  EXPECT_EQ(R->Outcome, RunOutcome::Converged);
  EXPECT_EQ(I->numFaulted(), 0u);
  EXPECT_EQ(I->numStable(), 8u);
  EXPECT_TRUE(R->Faults.empty());
}

TEST_P(FaultMatrix, DeadlineStopsDivergingRun) {
  auto [Eng, Workers] = GetParam();
  auto I = makeInstance(DivergingProgram, Eng);
  ASSERT_NE(I, nullptr);
  rt::RunConfig RC;
  RC.MaxSupersteps = 1000000000;
  RC.NumWorkers = Workers;
  RC.Policy.DeadlineNs = 50 * 1000 * 1000; // 50 ms
  Result<rt::RunStats> R = I->run(RC);
  ASSERT_TRUE(R.isOk()) << R.message();
  EXPECT_EQ(R->Outcome, RunOutcome::Deadline);
  EXPECT_EQ(I->numStable(), 0u);
  EXPECT_TRUE(R->Faults.empty());
}

TEST_P(FaultMatrix, WatchdogFlagsDivergence) {
  auto [Eng, Workers] = GetParam();
  auto I = makeInstance(DivergingProgram, Eng);
  ASSERT_NE(I, nullptr);
  rt::RunConfig RC;
  RC.MaxSupersteps = 100000;
  RC.NumWorkers = Workers;
  RC.Policy.WatchdogSteps = 5;
  Result<rt::RunStats> R = I->run(RC);
  ASSERT_TRUE(R.isOk()) << R.message();
  EXPECT_EQ(R->Outcome, RunOutcome::Diverged);
  EXPECT_EQ(R->Steps, 5);
}

TEST_P(FaultMatrix, StepLimitReportedWithoutAnyPolicy) {
  auto [Eng, Workers] = GetParam();
  auto I = makeInstance(DivergingProgram, Eng);
  ASSERT_NE(I, nullptr);
  Result<rt::RunStats> R = I->run(3, Workers);
  ASSERT_TRUE(R.isOk()) << R.message();
  EXPECT_EQ(R->Steps, 3);
  EXPECT_EQ(R->Outcome, RunOutcome::StepLimit);
}

TEST_P(FaultMatrix, ConvergedReportedWithoutAnyPolicy) {
  auto [Eng, Workers] = GetParam();
  auto I = makeInstance(ConvergingProgram, Eng);
  ASSERT_NE(I, nullptr);
  Result<rt::RunStats> R = I->run(100, Workers);
  ASSERT_TRUE(R.isOk()) << R.message();
  EXPECT_EQ(R->Outcome, RunOutcome::Converged);
  EXPECT_TRUE(R->Faults.empty());
}

TEST_P(FaultMatrix, FaultBudgetStopsRun) {
  auto [Eng, Workers] = GetParam();
  auto I = makeInstance(ConvergingProgram, Eng);
  ASSERT_NE(I, nullptr);
  rt::RunConfig RC;
  RC.MaxSupersteps = 100;
  RC.NumWorkers = Workers;
  RC.Policy.MaxFaults = 0; // zero tolerance
  RC.Policy.Plan.at(2, 0, FaultKind::Exception);
  Result<rt::RunStats> R = I->run(RC);
  ASSERT_TRUE(R.isOk()) << R.message();
  EXPECT_EQ(R->Outcome, RunOutcome::FaultBudget);
  EXPECT_GE(R->Faults.size(), 1u);
}

/// Faults show up in the exporters: the summary names the outcome, the
/// stats JSON carries a faults array, and lifecycle tracing records a
/// "fault" strand event.
TEST_P(FaultMatrix, FaultsSurfaceThroughExporters) {
  auto [Eng, Workers] = GetParam();
  auto I = makeInstance(ConvergingProgram, Eng);
  ASSERT_NE(I, nullptr);
  rt::RunConfig RC;
  RC.MaxSupersteps = 100;
  RC.NumWorkers = Workers;
  RC.CollectStats = true;
  RC.CollectLifecycle = true;
  RC.Policy.Plan.at(4, 1, FaultKind::Exception);
  Result<rt::RunStats> R = I->run(RC);
  ASSERT_TRUE(R.isOk()) << R.message();
  std::string Summary = observe::formatSummary(*R);
  EXPECT_NE(Summary.find("outcome: converged, 1 fault(s)"), std::string::npos)
      << Summary;
  std::string Json = observe::statsJson(*R);
  EXPECT_NE(Json.find("\"outcome\":\"converged\""), std::string::npos) << Json;
  EXPECT_NE(Json.find("\"faults\":[{"), std::string::npos) << Json;
  std::string Trace = observe::chromeTrace(*R);
  EXPECT_NE(Trace.find("fault strand 4"), std::string::npos) << Trace;
  bool SawFaultEvent = false;
  for (const observe::StrandEvent &E : R->Events)
    SawFaultEvent |= E.Kind == observe::StrandEventKind::Fault && E.Strand == 4;
  EXPECT_TRUE(SawFaultEvent);
}

INSTANTIATE_TEST_SUITE_P(
    EnginesAndSchedulers, FaultMatrix,
    ::testing::Combine(::testing::Values(Engine::Interp, Engine::Native),
                       ::testing::Values(0, 4)),
    [](const ::testing::TestParamInfo<std::tuple<Engine, int>> &I) {
      return std::string(std::get<0>(I.param) == Engine::Interp ? "interp"
                                                                : "native") +
             (std::get<1>(I.param) ? "_par" : "_seq");
    });

/// Interpreter evaluation errors (here: integer division by zero) become
/// trapped faults instead of failing the whole run when a policy is active.
TEST(FaultInterp, EvalErrorBecomesTrappedFault) {
  const char *Src = R"(
strand S (int i) {
  int z = 0;
  output real y = 0.0;
  update {
    z = 1 / (i - 3);
    y = real(z);
    stabilize;
  }
}
initially [ S(i) | i in 0 .. 7 ];
)";
  auto I = makeInstance(Src, Engine::Interp);
  ASSERT_NE(I, nullptr);
  rt::RunConfig RC;
  RC.MaxSupersteps = 10;
  RC.Policy.MaxFaults = 10; // an active policy arms the trap boundary
  Result<rt::RunStats> R = I->run(RC);
  ASSERT_TRUE(R.isOk()) << R.message();
  EXPECT_EQ(R->Outcome, RunOutcome::Converged);
  EXPECT_EQ(I->numFaulted(), 1u);
  EXPECT_EQ(I->numStable(), 7u);
  ASSERT_EQ(R->Faults.size(), 1u);
  EXPECT_EQ(R->Faults[0].Strand, 3u);
  EXPECT_EQ(R->Faults[0].Kind, FaultKind::Exception);
  EXPECT_NE(R->Faults[0].Message.find("division by zero"), std::string::npos)
      << R->Faults[0].Message;
}

/// Without a policy the interpreter keeps its historical contract: an
/// evaluation error fails the run.
TEST(FaultInterp, EvalErrorWithoutPolicyFailsRun) {
  const char *Src = R"(
strand S (int i) {
  int z = 0;
  output real y = 0.0;
  update {
    z = 1 / (i - 3);
    y = real(z);
    stabilize;
  }
}
initially [ S(i) | i in 0 .. 7 ];
)";
  auto I = makeInstance(Src, Engine::Interp);
  ASSERT_NE(I, nullptr);
  Result<rt::RunStats> R = I->run(10, 0);
  EXPECT_FALSE(R.isOk());
}

/// Faulted strands contribute zeros to grid outputs, like dead strands.
TEST(FaultOutputs, FaultedStrandsAreZeroInGrids) {
  auto I = makeInstance(ConvergingProgram, Engine::Interp);
  ASSERT_NE(I, nullptr);
  rt::RunConfig RC;
  RC.MaxSupersteps = 100;
  RC.Policy.Plan.at(3, 0, FaultKind::Injected);
  Result<rt::RunStats> R = I->run(RC);
  ASSERT_TRUE(R.isOk()) << R.message();
  std::vector<double> Out;
  ASSERT_TRUE(I->getOutput("y", Out).isOk());
  // `initially [...]` is a grid: every cell appears, faulted ones as zero.
  ASSERT_EQ(Out.size(), 8u);
  EXPECT_DOUBLE_EQ(Out[3], 0.0);  // faulted before its first update
  EXPECT_DOUBLE_EQ(Out[4], 12.0); // three updates of y += 4
}

/// The deadline check is amortized to one clock read per 256 strands (and
/// one per claimed block) instead of per strand. These tests pin down the
/// promptness that amortization must not cost: with updates that take
/// nanoseconds, a 20 ms deadline still stops each scheduler well inside a
/// generous CI-tolerant bound, because at cheap-update rates 256 strands
/// pass in microseconds.
TEST(DeadlinePromptness, AmortizedCheckStillStopsAllSchedulersQuickly) {
  using Clock = std::chrono::steady_clock;
  const int64_t DeadlineNs = 20 * 1000 * 1000; // 20 ms
  const int64_t BoundNs = 2000 * 1000 * 1000LL; // 2 s: CI-load tolerant
  struct Case {
    const char *Name;
    int Workers;
    rt::Scheduler Sched;
  };
  for (const Case &C : {Case{"sequential", 0, rt::Scheduler::Bsp},
                        Case{"bsp", 4, rt::Scheduler::Bsp},
                        Case{"pooled", 4, rt::Scheduler::Pooled}}) {
    rt::RunPolicy P;
    P.DeadlineNs = DeadlineNs;
    rt::RunControl Ctl(P);
    // Few cheap never-stabilizing strands: supersteps are microseconds, so
    // the run leans on the per-boundary and amortized per-strand checks.
    std::vector<rt::StrandStatus> S(512, rt::StrandStatus::Active);
    std::atomic<uint64_t> Updates{0};
    Clock::time_point T0 = Clock::now();
    rt::runScheduled(
        C.Sched, S,
        [&](size_t) {
          Updates.fetch_add(1, std::memory_order_relaxed);
          return rt::StrandStatus::Active;
        },
        1 << 30, C.Workers, 64, nullptr, &Ctl);
    int64_t ElapsedNs =
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             T0)
            .count();
    EXPECT_EQ(Ctl.finish(false), RunOutcome::Deadline) << C.Name;
    EXPECT_GT(Updates.load(), 0u) << C.Name;
    EXPECT_LT(ElapsedNs, BoundNs) << C.Name << " took " << ElapsedNs
                                  << " ns against a " << DeadlineNs
                                  << " ns deadline";
  }
}

} // namespace
} // namespace diderot

//===--- tests/replay_test.cpp - flight recorder record/replay ---------------===//
//
// The record/replay subsystem (docs/REPLAY.md) end to end: the ustar
// bundle archive, the manifest/digest/state wire formats, cross-scheduler
// and cross-engine digest determinism, record -> replay fidelity (including
// fault-injection plans), first-divergence diagnosis with source-map field
// names, and the daemon's failure capture (--record-on-failure, GET
// /jobs/<id>/bundle, GET /recordings, LRU bounding, metrics).
//
//===----------------------------------------------------------------------===//

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

#include <gtest/gtest.h>

#include "driver/driver.h"
#include "driver/record.h"
#include "observe/fault.h"
#include "observe/replay.h"
#include "serve/daemon.h"
#include "support/tarball.h"

namespace diderot {
namespace {

namespace fs = std::filesystem;

/// Converges after four updates with real arithmetic in the loop, so every
/// superstep changes the digest.
const char *StepProgram = R"(
strand S (int i) {
  int it = 0;
  output real y = real(i);
  update {
    it += 1;
    y = (y + real(i)) / 3.0 + sqrt(y + 1.0);
    if (it == 4) stabilize;
  }
}
initially [ S(i) | i in 0 .. 7 ];
)";

std::string tempDir(const char *Tag) {
  auto P = fs::temp_directory_path() /
           (std::string("diderot-replay-test-") + Tag + "-" +
            std::to_string(::getpid()));
  fs::create_directories(P);
  return P.string();
}

std::unique_ptr<rt::ProgramInstance> makeInstance(const CompiledProgram &CP) {
  Result<std::unique_ptr<rt::ProgramInstance>> I = CP.instantiate();
  EXPECT_TRUE(I.isOk()) << I.message();
  return I.isOk() ? std::move(*I) : nullptr;
}

Result<CompiledProgram> compileWith(Engine Eng, bool DoublePrec = false) {
  CompileOptions Opts;
  Opts.Eng = Eng;
  Opts.DoublePrecision = DoublePrec;
  return compileString(StepProgram, Opts, "replay_step");
}

/// Run StepProgram once under \p RC (digests armed) and return the digest
/// entries.
std::vector<support::Hash128> digestsUnder(const CompiledProgram &CP,
                                           rt::RunConfig RC) {
  std::unique_ptr<rt::ProgramInstance> I = makeInstance(CP);
  if (!I)
    return {};
  EXPECT_TRUE(I->initialize().isOk());
  RC.CollectDigests = true;
  Result<rt::RunStats> Run = I->run(RC);
  EXPECT_TRUE(Run.isOk()) << Run.message();
  const observe::DigestLog *L = I->digestLog();
  EXPECT_NE(L, nullptr);
  return L ? L->Entries : std::vector<support::Hash128>{};
}

//===----------------------------------------------------------------------===//
// Tarball
//===----------------------------------------------------------------------===//

TEST(Tarball, RoundTrip) {
  support::TarEntries In = {
      {"manifest.json", "{\"schema\":1}"},
      {"program.diderot", std::string("strand S () {}\n")},
      {"digests.tsv", std::string(4096, 'x')}, // multi-block payload
      {"empty", ""},
  };
  Result<std::string> Tar = support::tarSerialize(In);
  ASSERT_TRUE(Tar.isOk()) << Tar.message();
  EXPECT_EQ(Tar->size() % 512, 0u);
  Result<support::TarEntries> Out = support::tarParse(*Tar);
  ASSERT_TRUE(Out.isOk()) << Out.message();
  ASSERT_EQ(Out->size(), In.size());
  for (size_t I = 0; I < In.size(); ++I) {
    EXPECT_EQ((*Out)[I].first, In[I].first);
    EXPECT_EQ((*Out)[I].second, In[I].second);
  }
}

TEST(Tarball, DirectoryRoundTripIsDeterministic) {
  std::string Dir = tempDir("tar");
  std::ofstream(Dir + "/b.txt") << "bee";
  std::ofstream(Dir + "/a.txt") << "ay";
  Result<std::string> T1 = support::tarDirectory(Dir);
  Result<std::string> T2 = support::tarDirectory(Dir);
  ASSERT_TRUE(T1.isOk()) << T1.message();
  EXPECT_EQ(*T1, *T2); // sorted names, zeroed mtimes: byte-identical
  std::string Out = Dir + "-out";
  ASSERT_TRUE(support::tarExtract(*T1, Out).isOk());
  std::ifstream A(Out + "/a.txt"), B(Out + "/b.txt");
  std::string SA, SB;
  A >> SA;
  B >> SB;
  EXPECT_EQ(SA, "ay");
  EXPECT_EQ(SB, "bee");
  fs::remove_all(Dir);
  fs::remove_all(Out);
}

TEST(Tarball, RejectsEscapingNames) {
  EXPECT_FALSE(support::tarSerialize({{"../escape", "x"}}).isOk());
  EXPECT_FALSE(support::tarSerialize({{std::string(120, 'n'), "x"}}).isOk());
  // An archive whose member name has a separator must not extract.
  Result<std::string> Tar = support::tarSerialize({{"ok.txt", "fine"}});
  ASSERT_TRUE(Tar.isOk());
  std::string Evil = *Tar;
  // Patch the name field in place ("ok.txt" -> "a/b.txt" fits).
  std::string Name = "a/b.txt";
  Evil.replace(0, Name.size() + 1, Name + '\0');
  std::string Dir = tempDir("tar-evil");
  EXPECT_FALSE(support::tarExtract(Evil, Dir).isOk());
  fs::remove_all(Dir);
}

//===----------------------------------------------------------------------===//
// Wire formats
//===----------------------------------------------------------------------===//

observe::ReplayBundle sampleBundle() {
  observe::ReplayBundle B;
  B.Program = "sample";
  B.Source = "strand S () {}\n";
  B.AbiVersion = 7;
  B.CompilerId = "c++ 13";
  B.GitSha = "abc123";
  B.EngineNative = false;
  B.DoublePrecision = true;
  B.EnableContract = false;
  B.ExtraCxxFlags = "-ffp-contract=off";
  B.MaxSupersteps = 42;
  B.NumWorkers = 3;
  B.BlockSize = 16;
  B.SchedulerName = "pooled";
  B.DeadlineNs = 5000000;
  B.MaxFaults = 2;
  B.WatchdogSteps = 9;
  B.StrictFp = true;
  B.Plan.push_back({3, 1, static_cast<int>(observe::FaultKind::Injected)});
  B.Inputs.push_back({"ddro", "synth:portrait:48", false});
  B.Inputs.push_back({"img", "input-00ff.nrrd", true});
  B.SlotNames = {"param0", "pos[0]", "pos[1]", "f0"};
  B.Outcome = "fault-budget";
  B.Steps = 7;
  B.NumStrands = 144;
  B.OutputDigest = "deadbeefdeadbeefdeadbeefdeadbeef";
  return B;
}

TEST(ReplayFormat, ManifestRoundTrip) {
  observe::ReplayBundle B = sampleBundle();
  observe::ReplayBundle C;
  ASSERT_TRUE(observe::manifestFromJson(observe::manifestToJson(B), C).isOk());
  EXPECT_EQ(C.Program, B.Program);
  EXPECT_EQ(C.AbiVersion, B.AbiVersion);
  EXPECT_EQ(C.CompilerId, B.CompilerId);
  EXPECT_EQ(C.GitSha, B.GitSha);
  EXPECT_EQ(C.EngineNative, B.EngineNative);
  EXPECT_EQ(C.DoublePrecision, B.DoublePrecision);
  EXPECT_EQ(C.EnableContract, B.EnableContract);
  EXPECT_EQ(C.ExtraCxxFlags, B.ExtraCxxFlags);
  EXPECT_EQ(C.MaxSupersteps, B.MaxSupersteps);
  EXPECT_EQ(C.NumWorkers, B.NumWorkers);
  EXPECT_EQ(C.BlockSize, B.BlockSize);
  EXPECT_EQ(C.SchedulerName, B.SchedulerName);
  EXPECT_EQ(C.DeadlineNs, B.DeadlineNs);
  EXPECT_EQ(C.MaxFaults, B.MaxFaults);
  EXPECT_EQ(C.WatchdogSteps, B.WatchdogSteps);
  EXPECT_EQ(C.StrictFp, B.StrictFp);
  ASSERT_EQ(C.Plan.size(), 1u);
  EXPECT_EQ(C.Plan[0].Strand, 3u);
  EXPECT_EQ(C.Plan[0].Step, 1);
  ASSERT_EQ(C.Inputs.size(), 2u);
  EXPECT_EQ(C.Inputs[0].Name, "ddro");
  EXPECT_FALSE(C.Inputs[0].IsFile);
  EXPECT_TRUE(C.Inputs[1].IsFile);
  EXPECT_EQ(C.SlotNames, B.SlotNames);
  EXPECT_EQ(C.Outcome, B.Outcome);
  EXPECT_EQ(C.Steps, B.Steps);
  EXPECT_EQ(C.NumStrands, B.NumStrands);
  EXPECT_EQ(C.OutputDigest, B.OutputDigest);
}

TEST(ReplayFormat, ManifestRejectsBadSchema) {
  observe::ReplayBundle B;
  EXPECT_FALSE(observe::manifestFromJson("{\"schema\":99}", B).isOk());
  EXPECT_FALSE(observe::manifestFromJson("not json", B).isOk());
}

TEST(ReplayFormat, DigestAndStateTsvRoundTrip) {
  observe::DigestLog L;
  L.NumStrands = 2;
  L.NumSlots = 3;
  L.HasStates = true;
  L.Entries = {{1, 2}, {0xffffffffffffffffull, 0}};
  L.Status = {0, 1, 2, 3};
  L.Slots.assign(12, 0);
  L.Slots[5] = 0x3ff0000000000000ull; // 1.0
  observe::DigestLog M;
  ASSERT_TRUE(observe::digestsFromTsv(observe::digestsToTsv(L), M).isOk());
  EXPECT_EQ(M.Entries, L.Entries);
  ASSERT_TRUE(observe::statesFromTsv(observe::statesToTsv(L), M).isOk());
  EXPECT_EQ(M.NumStrands, L.NumStrands);
  EXPECT_EQ(M.NumSlots, L.NumSlots);
  EXPECT_EQ(M.Status, L.Status);
  EXPECT_EQ(M.Slots, L.Slots);
}

TEST(ReplayFormat, BundleDirectoryRoundTrip) {
  std::string Dir = tempDir("bundle");
  observe::ReplayBundle B = sampleBundle();
  B.Digests.Entries = {{7, 8}, {9, 10}};
  std::map<std::string, std::string> Files{{"input-00ff.nrrd", "NRRD0004\n"}};
  ASSERT_TRUE(observe::writeBundle(Dir, B, Files).isOk());
  // The manifest is the completion marker; every file must be present.
  EXPECT_TRUE(fs::exists(fs::path(Dir) / observe::bundleManifestFile()));
  EXPECT_TRUE(fs::exists(fs::path(Dir) / observe::bundleSourceFile()));
  EXPECT_TRUE(fs::exists(fs::path(Dir) / "input-00ff.nrrd"));
  Result<observe::ReplayBundle> C = observe::readBundle(Dir);
  ASSERT_TRUE(C.isOk()) << C.message();
  EXPECT_EQ(C->Source, B.Source);
  EXPECT_EQ(C->Digests.Entries, B.Digests.Entries);
  EXPECT_EQ(C->Outcome, "fault-budget");
  fs::remove_all(Dir);
}

//===----------------------------------------------------------------------===//
// Determinism across schedulers and engines (the digest contract)
//===----------------------------------------------------------------------===//

TEST(ReplayDeterminism, SchedulersAgree) {
  Result<CompiledProgram> CP = compileWith(Engine::Interp);
  ASSERT_TRUE(CP.isOk()) << CP.message();
  rt::RunConfig Seq;
  Seq.MaxSupersteps = 100;
  Seq.NumWorkers = 0;
  rt::RunConfig Bsp = Seq;
  Bsp.NumWorkers = 3;
  Bsp.Sched = rt::Scheduler::Bsp;
  rt::RunConfig Pooled = Seq;
  Pooled.NumWorkers = 3;
  Pooled.Sched = rt::Scheduler::Pooled;
  std::vector<support::Hash128> A = digestsUnder(*CP, Seq);
  std::vector<support::Hash128> B = digestsUnder(*CP, Bsp);
  std::vector<support::Hash128> C = digestsUnder(*CP, Pooled);
  ASSERT_FALSE(A.empty());
  EXPECT_EQ(A, B) << "sequential vs bsp digest streams differ";
  EXPECT_EQ(A, C) << "sequential vs pooled digest streams differ";
}

TEST(ReplayDeterminism, NativeDoubleMatchesInterp) {
  Result<CompiledProgram> CI = compileWith(Engine::Interp);
  ASSERT_TRUE(CI.isOk()) << CI.message();
  Result<CompiledProgram> CN = compileWith(Engine::Native, /*DoublePrec=*/true);
  ASSERT_TRUE(CN.isOk()) << CN.message();
  rt::RunConfig RC;
  RC.MaxSupersteps = 100;
  std::vector<support::Hash128> A = digestsUnder(*CI, RC);
  std::vector<support::Hash128> B = digestsUnder(*CN, RC);
  ASSERT_FALSE(A.empty());
  ASSERT_FALSE(B.empty()) << "native digest capture missing (ABI < 7?)";
  EXPECT_EQ(A, B) << "interp vs native-double digest streams differ";
  // And across schedulers on the native side too.
  rt::RunConfig Pooled = RC;
  Pooled.NumWorkers = 3;
  Pooled.Sched = rt::Scheduler::Pooled;
  EXPECT_EQ(A, digestsUnder(*CN, Pooled));
}

//===----------------------------------------------------------------------===//
// Record -> replay fidelity
//===----------------------------------------------------------------------===//

/// Record one interp run of StepProgram into \p Dir (state log included)
/// under \p RC and return the recorded bundle.
observe::ReplayBundle recordRun(const std::string &Dir, rt::RunConfig RC) {
  Result<CompiledProgram> CP = compileWith(Engine::Interp);
  EXPECT_TRUE(CP.isOk()) << CP.message();
  CompileOptions Opts;
  Opts.Eng = Engine::Interp;
  FlightRecorder Rec;
  Rec.begin(Dir, "replay_step", StepProgram, Opts, CP->midModule());
  std::unique_ptr<rt::ProgramInstance> I = makeInstance(*CP);
  EXPECT_TRUE(I->initialize().isOk());
  Rec.armConfig(RC);
  Result<rt::RunStats> Run = I->run(RC);
  EXPECT_TRUE(Run.isOk()) << Run.message();
  EXPECT_TRUE(Rec.finish(*I, *Run).isOk());
  return Rec.bundle();
}

TEST(ReplayFidelity, RecordReplayMatches) {
  std::string Dir = tempDir("fid");
  rt::RunConfig RC;
  RC.MaxSupersteps = 100;
  observe::ReplayBundle B = recordRun(Dir, RC);
  EXPECT_EQ(B.Outcome, "converged");
  EXPECT_EQ(B.Steps, 4);
  Result<ReplayReport> R = replayBundle(Dir);
  ASSERT_TRUE(R.isOk()) << R.message();
  EXPECT_TRUE(R->Match) << R->Text;
  EXPECT_TRUE(R->DigestsCompared);
  EXPECT_FALSE(R->Div.Diverged) << R->Div.Summary;
  EXPECT_NE(R->Text.find("verdict: MATCH"), std::string::npos);
  fs::remove_all(Dir);
}

TEST(ReplayFidelity, FaultPlanReplaysToSameOutcome) {
  std::string Dir = tempDir("fault");
  rt::RunConfig RC;
  RC.MaxSupersteps = 100;
  RC.Policy.MaxFaults = 0; // first injected fault ends the run
  RC.Policy.Plan.at(3, 1, observe::FaultKind::Injected);
  observe::ReplayBundle B = recordRun(Dir, RC);
  EXPECT_EQ(B.Outcome, "fault-budget");
  ASSERT_EQ(B.Plan.size(), 1u) << "fault plan must ride in the bundle";
  Result<ReplayReport> R = replayBundle(Dir);
  ASSERT_TRUE(R.isOk()) << R.message();
  EXPECT_EQ(R->ReplayedOutcome, "fault-budget");
  EXPECT_EQ(R->ReplayedSteps, B.Steps);
  EXPECT_TRUE(R->Match) << R->Text;
  fs::remove_all(Dir);
}

TEST(ReplayFidelity, PerturbationPinpointedByStrandAndField) {
  std::string Dir = tempDir("perturb");
  rt::RunConfig RC;
  RC.MaxSupersteps = 100;
  recordRun(Dir, RC);
  // Tamper with the recording: strand 3's y at digest entry 2 gains one
  // ULP, and that entry's digest is bumped so the streams disagree there.
  Result<observe::ReplayBundle> BR = observe::readBundle(Dir);
  ASSERT_TRUE(BR.isOk()) << BR.message();
  observe::ReplayBundle B = *BR;
  ASSERT_TRUE(B.Digests.HasStates);
  auto YIt = std::find(B.SlotNames.begin(), B.SlotNames.end(), "y");
  ASSERT_NE(YIt, B.SlotNames.end());
  size_t YSlot = static_cast<size_t>(YIt - B.SlotNames.begin());
  size_t Strands = static_cast<size_t>(B.Digests.NumStrands);
  size_t Slots = static_cast<size_t>(B.Digests.NumSlots);
  constexpr size_t Entry = 2, Strand = 3;
  B.Digests.Slots[(Entry * Strands + Strand) * Slots + YSlot] ^= 1;
  B.Digests.Entries[Entry].Lo ^= 1;
  ASSERT_TRUE(observe::writeBundle(Dir, B).isOk());

  Result<ReplayReport> R = replayBundle(Dir);
  ASSERT_TRUE(R.isOk()) << R.message();
  EXPECT_FALSE(R->Match);
  ASSERT_TRUE(R->Div.Diverged);
  EXPECT_EQ(R->Div.Superstep, 2);
  EXPECT_EQ(R->Div.Strand, 3);
  EXPECT_EQ(R->Div.SlotName, "y");
  EXPECT_NE(R->Text.find("field 'y'"), std::string::npos) << R->Text;
  fs::remove_all(Dir);
}

TEST(ReplayFidelity, DumpStrandUsesSourceMapNames) {
  std::string Dir = tempDir("dump");
  rt::RunConfig RC;
  RC.MaxSupersteps = 100;
  observe::ReplayBundle B = recordRun(Dir, RC);
  Result<std::string> D = observe::dumpStrand(B, 3, 2);
  ASSERT_TRUE(D.isOk()) << D.message();
  EXPECT_NE(D->find("param0"), std::string::npos) << *D;
  EXPECT_NE(D->find("y"), std::string::npos) << *D;
  EXPECT_FALSE(observe::dumpStrand(B, 999, 2).isOk());
  EXPECT_FALSE(observe::dumpStrand(B, 3, 999).isOk());
  fs::remove_all(Dir);
}

TEST(ReplayFidelity, ReplaysFromTarArchive) {
  std::string Dir = tempDir("tarrep");
  rt::RunConfig RC;
  RC.MaxSupersteps = 100;
  recordRun(Dir, RC);
  Result<std::string> Tar = support::tarDirectory(Dir);
  ASSERT_TRUE(Tar.isOk());
  std::string TarPath = Dir + ".tar";
  std::ofstream(TarPath, std::ios::binary) << *Tar;
  Result<ReplayReport> R = replayBundle(TarPath);
  ASSERT_TRUE(R.isOk()) << R.message();
  EXPECT_TRUE(R->Match) << R->Text;
  fs::remove_all(Dir);
  fs::remove(TarPath);
}

//===----------------------------------------------------------------------===//
// Daemon failure capture
//===----------------------------------------------------------------------===//

#if defined(__unix__) || defined(__APPLE__)

struct Reply {
  int Code = 0;
  std::string Body;
};

Reply httpDo(int Port, const std::string &Method, const std::string &Path,
             const std::string &Body = "",
             const std::vector<std::pair<std::string, std::string>> &Headers =
                 {}) {
  Reply Out;
  int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (Fd < 0)
    return Out;
  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  Addr.sin_port = htons(static_cast<uint16_t>(Port));
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0) {
    ::close(Fd);
    return Out;
  }
  std::string Wire = Method + " " + Path + " HTTP/1.1\r\n";
  for (const auto &[K, V] : Headers)
    Wire += K + ": " + V + "\r\n";
  Wire += "Content-Length: " + std::to_string(Body.size()) + "\r\n\r\n" + Body;
  size_t Off = 0;
  while (Off < Wire.size()) {
    ssize_t N = ::send(Fd, Wire.data() + Off, Wire.size() - Off, 0);
    if (N <= 0)
      break;
    Off += static_cast<size_t>(N);
  }
  char Buf[8192];
  ssize_t N;
  std::string Raw;
  while ((N = ::recv(Fd, Buf, sizeof(Buf), 0)) > 0)
    Raw.append(Buf, static_cast<size_t>(N));
  ::close(Fd);
  if (Raw.size() > 12)
    Out.Code = std::atoi(Raw.c_str() + 9);
  size_t HdrEnd = Raw.find("\r\n\r\n");
  if (HdrEnd != std::string::npos)
    Out.Body = Raw.substr(HdrEnd + 4);
  return Out;
}

/// Submit StepProgram with one injected fault and wait for the job to end.
/// Returns the job id.
std::string runFaultedJob(int Port) {
  Reply R = httpDo(Port, "POST", "/run", StepProgram,
                   {{"X-Diderot-Fault", "3@1"}});
  EXPECT_EQ(R.Code, 202) << R.Body;
  size_t P = R.Body.find("\"job\":\"");
  EXPECT_NE(P, std::string::npos);
  std::string Job = R.Body.substr(P + 7);
  Job = Job.substr(0, Job.find('"'));
  for (int I = 0; I < 500; ++I) {
    Reply Poll = httpDo(Port, "GET", "/jobs/" + Job);
    if (Poll.Body.find("\"state\":\"done\"") != std::string::npos ||
        Poll.Body.find("\"state\":\"failed\"") != std::string::npos)
      break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return Job;
}

serve::DaemonOptions recordingDaemonOptions(const std::string &Dir) {
  serve::DaemonOptions O;
  O.Compile.Eng = Engine::Interp;
  O.Compile.WorkDir = Dir;
  O.RecordOnFailure = true;
  O.TraceSampleN = 1; // every job sampled: the record span must appear
  return O;
}

TEST(DaemonRecord, FaultedJobBundleServedAndReplays) {
  std::string Dir = tempDir("daemon");
  serve::Daemon D;
  ASSERT_TRUE(D.start(recordingDaemonOptions(Dir)).isOk());
  std::string Job = runFaultedJob(D.port());
  D.waitIdle();

  // The job record says a bundle exists...
  Reply Poll = httpDo(D.port(), "GET", "/jobs/" + Job);
  EXPECT_NE(Poll.Body.find("\"bundle\":true"), std::string::npos) << Poll.Body;
  EXPECT_NE(Poll.Body.find("\"faulted\":1"), std::string::npos) << Poll.Body;
  EXPECT_EQ(D.counters().RecordingsTotal, 1u);

  // ...the recordings listing shows it...
  Reply List = httpDo(D.port(), "GET", "/recordings");
  EXPECT_EQ(List.Code, 200);
  EXPECT_NE(List.Body.find("\"id\":\"" + Job + "\""), std::string::npos)
      << List.Body;

  // ...the bundle is fetchable as a tar and replays to the same outcome...
  Reply Tar = httpDo(D.port(), "GET", "/jobs/" + Job + "/bundle");
  ASSERT_EQ(Tar.Code, 200);
  std::string TarPath = Dir + "/fetched.tar";
  std::ofstream(TarPath, std::ios::binary) << Tar.Body;
  Result<ReplayReport> R = replayBundle(TarPath);
  ASSERT_TRUE(R.isOk()) << R.message();
  EXPECT_TRUE(R->Match) << R->Text;
  ASSERT_EQ(R->Bundle.Plan.size(), 1u); // the injected fault rode along
  EXPECT_EQ(R->Bundle.Plan[0].Strand, 3u);

  // ...the daemon's own replay verification agrees (and no divergence is
  // counted)...
  Reply Verify = httpDo(D.port(), "GET", "/recordings/" + Job + "/replay");
  EXPECT_EQ(Verify.Code, 200);
  EXPECT_NE(Verify.Body.find("verdict: MATCH"), std::string::npos)
      << Verify.Body;
  EXPECT_EQ(D.counters().ReplayDivergence, 0u);

  // ...and the sampled trace carries the record span.
  Reply Trace = httpDo(D.port(), "GET", "/jobs/" + Job + "/trace");
  EXPECT_NE(Trace.Body.find("\"record\""), std::string::npos) << Trace.Body;

  // Jobs without a bundle 404, unknown recordings 404, traversal rejected.
  EXPECT_EQ(httpDo(D.port(), "GET", "/jobs/nope/bundle").Code, 404);
  EXPECT_EQ(httpDo(D.port(), "GET", "/recordings/nope").Code, 404);
  EXPECT_EQ(httpDo(D.port(), "GET", "/recordings/../cache").Code, 404);
  D.stop();
  fs::remove_all(Dir);
}

TEST(DaemonRecord, ConvergedJobRecordsNothing) {
  std::string Dir = tempDir("daemon-ok");
  serve::Daemon D;
  ASSERT_TRUE(D.start(recordingDaemonOptions(Dir)).isOk());
  Reply R = httpDo(D.port(), "POST", "/run", StepProgram);
  ASSERT_EQ(R.Code, 202);
  D.waitIdle();
  EXPECT_EQ(D.counters().RecordingsTotal, 0u);
  Reply List = httpDo(D.port(), "GET", "/recordings");
  EXPECT_NE(List.Body.find("\"recordings\":[]"), std::string::npos)
      << List.Body;
  D.stop();
  fs::remove_all(Dir);
}

TEST(DaemonRecord, RecordingsCapEvictsOldest) {
  std::string Dir = tempDir("daemon-cap");
  serve::DaemonOptions O = recordingDaemonOptions(Dir);
  O.RecordingsMaxBytes = 1; // every new bundle evicts all older ones
  serve::Daemon D;
  ASSERT_TRUE(D.start(O).isOk());
  std::string J1 = runFaultedJob(D.port());
  D.waitIdle();
  std::string J2 = runFaultedJob(D.port());
  D.waitIdle();
  EXPECT_EQ(D.counters().RecordingsTotal, 2u);
  EXPECT_GE(D.counters().RecordingsEvicted, 1u);
  Reply List = httpDo(D.port(), "GET", "/recordings");
  EXPECT_EQ(List.Body.find("\"id\":\"" + J1 + "\""), std::string::npos)
      << List.Body;
  EXPECT_NE(List.Body.find("\"id\":\"" + J2 + "\""), std::string::npos)
      << List.Body;
  EXPECT_EQ(httpDo(D.port(), "GET", "/jobs/" + J1 + "/bundle").Code, 404);
  D.stop();
  fs::remove_all(Dir);
}

TEST(DaemonRecord, MetricsExposeGaugesAndRecorderCounters) {
  std::string Dir = tempDir("daemon-metrics");
  serve::Daemon D;
  ASSERT_TRUE(D.start(recordingDaemonOptions(Dir)).isOk());
  runFaultedJob(D.port());
  D.waitIdle();
  Reply M = httpDo(D.port(), "GET", "/metrics");
  ASSERT_EQ(M.Code, 200);
  // The live load gauges (queue depth, jobs in flight) with gauge TYPE
  // lines, idle at scrape time.
  EXPECT_NE(M.Body.find("# TYPE diderot_daemon_queue_depth gauge"),
            std::string::npos);
  EXPECT_NE(M.Body.find("diderot_daemon_queue_depth 0"), std::string::npos);
  EXPECT_NE(M.Body.find("# TYPE diderot_daemon_jobs_inflight gauge"),
            std::string::npos);
  EXPECT_NE(M.Body.find("diderot_daemon_jobs_inflight 0"), std::string::npos);
  // The flight-recorder counters.
  EXPECT_NE(M.Body.find("diderot_daemon_recordings_total 1"),
            std::string::npos);
  EXPECT_NE(M.Body.find("diderot_daemon_recordings_evicted_total 0"),
            std::string::npos);
  EXPECT_NE(M.Body.find("diderot_daemon_replay_divergence_total 0"),
            std::string::npos);
  D.stop();
  fs::remove_all(Dir);
}

#endif // unix

} // namespace
} // namespace diderot

//===--- tests/teem_probe_test.cpp - baseline probing library tests --------===//

#include <cmath>

#include <gtest/gtest.h>

#include "synth/synth.h"
#include "teem/probe.h"

namespace diderot {
namespace {

using teem::ItemGradient;
using teem::ItemHessian;
using teem::ItemValue;
using teem::ProbeCtx;

TEST(TeemProbe, ValueReconstructsLinearField2d) {
  // f(x,y) = 1 + 2x + 3y; tent reconstruction is exact for bilinear data.
  Image Img = synth::sampledPolynomial2d(16, 1, 2, 3, 0);
  ProbeCtx Ctx(Img);
  Ctx.setKernel(0, teem::kernelTent(0));
  Ctx.setQuery(ItemValue);
  Ctx.update();
  ASSERT_TRUE(Ctx.probe2(0.21, -0.37));
  EXPECT_NEAR(Ctx.value()[0], 1 + 2 * 0.21 + 3 * -0.37, 1e-12);
}

TEST(TeemProbe, OutsideReturnsFalse) {
  Image Img = synth::sampledPolynomial2d(8, 0, 1, 0, 0);
  ProbeCtx Ctx(Img);
  Ctx.setKernel(0, teem::kernelCtmr(0));
  Ctx.setQuery(ItemValue);
  Ctx.update();
  EXPECT_FALSE(Ctx.probe2(1.0, 0.0)); // on the last sample: support spills
  EXPECT_FALSE(Ctx.probe2(5.0, 0.0));
  EXPECT_TRUE(Ctx.probe2(0.0, 0.0));
}

TEST(TeemProbe, GradientOfLinearField3d) {
  // f = 1 + 2x - holds everywhere; gradient (2, 0.5, -1.5) in world space.
  Image Img = synth::sampledPolynomial3d(12, 1, 2, 0.5, -1.5, 0);
  ProbeCtx Ctx(Img);
  Ctx.setKernel(0, teem::kernelBspln3(0));
  Ctx.setKernel(1, teem::kernelBspln3(1));
  Ctx.setQuery(ItemValue | ItemGradient);
  Ctx.update();
  ASSERT_TRUE(Ctx.probe3(0.1, -0.2, 0.15));
  EXPECT_NEAR(Ctx.gradient()[0], 2.0, 1e-10);
  EXPECT_NEAR(Ctx.gradient()[1], 0.5, 1e-10);
  EXPECT_NEAR(Ctx.gradient()[2], -1.5, 1e-10);
}

TEST(TeemProbe, HessianOfBilinearField) {
  // f = x*y has Hessian [[0,1],[1,0]] everywhere.
  Image Img = synth::sampledPolynomial2d(16, 0, 0, 0, 1);
  ProbeCtx Ctx(Img);
  for (int L = 0; L <= 2; ++L)
    Ctx.setKernel(L, teem::kernelBspln3(L));
  Ctx.setQuery(ItemHessian);
  Ctx.update();
  ASSERT_TRUE(Ctx.probe2(0.2, 0.3));
  const double *H = Ctx.hessian();
  EXPECT_NEAR(H[0], 0.0, 1e-9);
  EXPECT_NEAR(H[1], 1.0, 1e-9);
  EXPECT_NEAR(H[2], 1.0, 1e-9);
  EXPECT_NEAR(H[3], 0.0, 1e-9);
}

TEST(TeemProbe, VectorImageProbesBothComponents) {
  Image Img = synth::flow2d(32);
  ProbeCtx Ctx(Img);
  Ctx.setKernel(0, teem::kernelCtmr(0));
  Ctx.setQuery(ItemValue);
  Ctx.update();
  ASSERT_TRUE(Ctx.probe2(0.45, 0.0));
  // Near the right vortex center the velocity is small but the saddle term
  // contributes 0.3*0.45 in x.
  EXPECT_NEAR(Ctx.value()[0], 0.3 * 0.45, 0.1);
}

TEST(TeemProbe, GradientRespectsOrientation) {
  // Same samples, two different orientations: world gradient must differ by
  // M^{-T}.
  Image Img = synth::sampledPolynomial2d(16, 0, 1, 1, 0);
  ProbeCtx Ctx(Img);
  Ctx.setKernel(0, teem::kernelBspln3(0));
  Ctx.setKernel(1, teem::kernelBspln3(1));
  Ctx.setQuery(ItemGradient);
  Ctx.update();
  ASSERT_TRUE(Ctx.probe2(0.0, 0.0));
  double GX = Ctx.gradient()[0], GY = Ctx.gradient()[1];
  EXPECT_NEAR(GX, 1.0, 1e-10);
  EXPECT_NEAR(GY, 1.0, 1e-10);
}

TEST(TeemProbe, ValueMatchesDirectConvolution1dSlice) {
  // Cross-check the probe against a hand-rolled separable sum.
  Image Img = synth::portrait(32);
  ProbeCtx Ctx(Img);
  Ctx.setKernel(0, teem::kernelBspln3(0));
  Ctx.setQuery(ItemValue);
  Ctx.update();
  double W[2] = {0.123, -0.234};
  ASSERT_TRUE(Ctx.probe(W));

  double Xi[2];
  Img.worldToIndex(W, Xi);
  int N0 = static_cast<int>(std::floor(Xi[0]));
  int N1 = static_cast<int>(std::floor(Xi[1]));
  double F0 = Xi[0] - N0, F1 = Xi[1] - N1;
  teem::ProbeKernel K = teem::kernelBspln3(0);
  double Sum = 0;
  for (int J = -1; J <= 2; ++J)
    for (int I = -1; I <= 2; ++I) {
      int Idx[2] = {N0 + I, N1 + J};
      Sum += Img.sample(Idx, 0) * K.Eval(F0 - I, nullptr) *
             K.Eval(F1 - J, nullptr);
    }
  EXPECT_NEAR(Ctx.value()[0], Sum, 1e-10);
}

/// Property sweep: reconstruction with each kernel family is exact on fields
/// in its precision class, at many positions.
class TeemProbeSweep : public ::testing::TestWithParam<double> {};

TEST_P(TeemProbeSweep, TentExactOnLinear) {
  Image Img = synth::sampledPolynomial2d(16, 2, -1, 0.5, 0);
  ProbeCtx Ctx(Img);
  Ctx.setKernel(0, teem::kernelTent(0));
  Ctx.setQuery(ItemValue);
  Ctx.update();
  double T = GetParam();
  ASSERT_TRUE(Ctx.probe2(T, -T * 0.5));
  EXPECT_NEAR(Ctx.value()[0], 2 - T + 0.5 * (-T * 0.5), 1e-11);
}

TEST_P(TeemProbeSweep, CtmrExactOnLinear) {
  Image Img = synth::sampledPolynomial2d(16, 1, 1, -2, 0);
  ProbeCtx Ctx(Img);
  Ctx.setKernel(0, teem::kernelCtmr(0));
  Ctx.setQuery(ItemValue);
  Ctx.update();
  double T = GetParam();
  ASSERT_TRUE(Ctx.probe2(T * 0.8, T * 0.3));
  EXPECT_NEAR(Ctx.value()[0], 1 + 0.8 * T - 2 * 0.3 * T, 1e-11);
}

INSTANTIATE_TEST_SUITE_P(Positions, TeemProbeSweep,
                         ::testing::Values(-0.6, -0.31, 0.0, 0.17, 0.44, 0.7));

} // namespace
} // namespace diderot

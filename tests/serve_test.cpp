//===--- tests/serve_test.cpp - the diderotd daemon end to end ---------------===//
//
// Part of the Diderot-C++ reproduction (PLDI 2012).
//
// Compile-once-serve-many: the program registry, the daemon's HTTP job API
// against golden direct runs, concurrent mixed-program serving, and the
// content-addressed native cache (tests named *Native* use the host
// compiler and are excluded from the serve_tsan run — TSan cannot model
// the uninstrumented dlopen'd code).
//
//===----------------------------------------------------------------------===//

#include "serve/daemon.h"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

#include <gtest/gtest.h>

#include "codegen/cache.h"
#include "nrrd/nrrd.h"
#include "serve/compile_cache.h"

namespace diderot {
namespace {

// Two small programs with distinct outputs: every strand doubles (A) or
// triples (B) its index once, then stabilizes.
const char *ProgA = R"(
input real bias = 0.0;
strand S (int i) {
  output real v = real(i);
  update { v = v * 2.0 + bias; stabilize; }
}
initially [ S(i) | i in 0 .. 7 ];
)";

const char *ProgB = R"(
input real bias = 0.0;
strand S (int i) {
  output real v = real(i);
  update { v = v * 3.0 + bias; stabilize; }
}
initially [ S(i) | i in 0 .. 7 ];
)";

// Never stabilizes — deadline and queue tests.
const char *ProgSpin = R"(
strand S (int i) {
  output real v = 0.0;
  update { v += 1.0; }
}
initially [ S(i) | i in 0 .. 3 ];
)";

std::string tempDir(const char *Tag) {
  auto P = std::filesystem::temp_directory_path() /
           (std::string("diderot-serve-test-") + Tag + "-" +
            std::to_string(::getpid()));
  std::filesystem::create_directories(P);
  return P.string();
}

/// Minimal HTTP client: send one request, return (status code, body).
struct Reply {
  int Code = 0;
  std::string Body;
  std::string Raw;
};

Reply httpDo(int Port, const std::string &Method, const std::string &Path,
             const std::string &Body = "",
             const std::vector<std::pair<std::string, std::string>> &Headers =
                 {}) {
  Reply Out;
  int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (Fd < 0)
    return Out;
  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  Addr.sin_port = htons(static_cast<uint16_t>(Port));
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0) {
    ::close(Fd);
    return Out;
  }
  std::string Wire = Method + " " + Path + " HTTP/1.1\r\n";
  for (const auto &[K, V] : Headers)
    Wire += K + ": " + V + "\r\n";
  Wire += "Content-Length: " + std::to_string(Body.size()) + "\r\n\r\n";
  Wire += Body;
  size_t Off = 0;
  while (Off < Wire.size()) {
    ssize_t N = ::send(Fd, Wire.data() + Off, Wire.size() - Off, 0);
    if (N <= 0)
      break;
    Off += static_cast<size_t>(N);
  }
  char Buf[8192];
  ssize_t N;
  while ((N = ::recv(Fd, Buf, sizeof(Buf), 0)) > 0)
    Out.Raw.append(Buf, static_cast<size_t>(N));
  ::close(Fd);
  if (Out.Raw.size() > 12)
    Out.Code = std::atoi(Out.Raw.c_str() + 9);
  size_t HdrEnd = Out.Raw.find("\r\n\r\n");
  if (HdrEnd != std::string::npos)
    Out.Body = Out.Raw.substr(HdrEnd + 4);
  return Out;
}

std::string jsonField(const std::string &Json, const std::string &Key) {
  size_t P = Json.find("\"" + Key + "\":");
  if (P == std::string::npos)
    return "";
  P += Key.size() + 3;
  if (P < Json.size() && Json[P] == '"') {
    size_t E = Json.find('"', P + 1);
    return Json.substr(P + 1, E - P - 1);
  }
  size_t E = Json.find_first_of(",}", P);
  return Json.substr(P, E - P);
}

/// Submit a run and poll until the job leaves the queue. Returns the final
/// job JSON.
std::string runAndWait(int Port, const std::string &Src,
                       std::vector<std::pair<std::string, std::string>>
                           Headers = {}) {
  Reply R = httpDo(Port, "POST", "/run", Src, Headers);
  EXPECT_EQ(R.Code, 202) << R.Raw;
  std::string Id = jsonField(R.Body, "job");
  EXPECT_FALSE(Id.empty());
  for (int Tries = 0; Tries < 3000; ++Tries) {
    Reply J = httpDo(Port, "GET", "/jobs/" + Id);
    EXPECT_EQ(J.Code, 200);
    std::string State = jsonField(J.Body, "state");
    if (State == "done" || State == "failed")
      return J.Body;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ADD_FAILURE() << "job " << Id << " did not finish";
  return "";
}

/// Direct (no daemon) reference run of \p Src under \p Opts.
std::vector<double> goldenRun(const std::string &Src,
                              const CompileOptions &Opts) {
  Result<CompiledProgram> CP = compileString(Src, Opts, "golden");
  EXPECT_TRUE(CP.isOk()) << CP.message();
  Result<std::unique_ptr<rt::ProgramInstance>> I = CP->instantiate();
  EXPECT_TRUE(I.isOk()) << I.message();
  EXPECT_TRUE((*I)->initialize().isOk());
  EXPECT_TRUE((*I)->run(100, 0).isOk());
  std::vector<double> Data;
  EXPECT_TRUE((*I)->getOutput("v", Data).isOk());
  return Data;
}

/// Fetch a finished job's output and decode the NRRD samples.
std::vector<double> fetchOutput(int Port, const std::string &JobJson) {
  std::vector<double> Out;
  std::string Id = jsonField(JobJson, "job");
  Reply R = httpDo(Port, "GET", "/jobs/" + Id + "/output");
  EXPECT_EQ(R.Code, 200) << R.Raw;
  Result<Nrrd> N = nrrdParse(R.Body);
  EXPECT_TRUE(N.isOk()) << (N.isOk() ? "" : N.message());
  if (!N.isOk())
    return Out;
  for (size_t S = 0; S < N->numSamples(); ++S)
    Out.push_back(N->sampleAsDouble(S));
  return Out;
}

serve::DaemonOptions interpOptions(const std::string &CacheDir) {
  serve::DaemonOptions O;
  O.Compile.Eng = Engine::Interp;
  O.Compile.WorkDir = CacheDir;
  return O;
}

} // namespace

//===----------------------------------------------------------------------===//
// Program registry
//===----------------------------------------------------------------------===//

TEST(ProgramRegistry, CachesBySourceContent) {
  CompileOptions Opts;
  Opts.Eng = Engine::Interp;
  serve::ProgramRegistry Reg(Opts);
  auto L1 = Reg.getOrCompile(ProgA, "a");
  ASSERT_TRUE(L1.isOk()) << L1.message();
  EXPECT_FALSE(L1->Cached);
  EXPECT_GT(L1->CompileNs, 0u);
  // Same source, different name: still a hit (content-addressed).
  auto L2 = Reg.getOrCompile(ProgA, "other-name");
  ASSERT_TRUE(L2.isOk());
  EXPECT_TRUE(L2->Cached);
  EXPECT_EQ(L1->Key, L2->Key);
  EXPECT_EQ(L1->Prog.get(), L2->Prog.get());
  auto L3 = Reg.getOrCompile(ProgB, "b");
  ASSERT_TRUE(L3.isOk());
  EXPECT_FALSE(L3->Cached);
  EXPECT_NE(L3->Key, L1->Key);
  EXPECT_EQ(Reg.hits(), 1u);
  EXPECT_EQ(Reg.misses(), 2u);
  EXPECT_EQ(Reg.size(), 2u);
}

TEST(ProgramRegistry, CompileErrorsPropagate) {
  CompileOptions CO;
  CO.Eng = Engine::Interp;
  serve::ProgramRegistry Reg(CO);
  auto L = Reg.getOrCompile("strand S { not diderot", "broken");
  EXPECT_FALSE(L.isOk());
}

//===----------------------------------------------------------------------===//
// Cache keys (the satellite: late differences must change the key)
//===----------------------------------------------------------------------===//

TEST(CacheKey, SourcesDifferingLateGetDistinctKeys) {
  // Two multi-kilobyte sources identical except for the very last byte —
  // the class of collision the old std::hash<size_t> key could not rule
  // out and a content hash must.
  std::string Base(8192, 'x');
  CompileOptions Opts;
  std::string A = Base + "1";
  std::string B = Base + "2";
  EXPECT_NE(codegen::programCacheKey(A, Opts).hex(),
            codegen::programCacheKey(B, Opts).hex());
}

TEST(CacheKey, OptionsChangeKey) {
  CompileOptions Base;
  CompileOptions Dbl = Base;
  Dbl.DoublePrecision = true;
  CompileOptions Flags = Base;
  Flags.ExtraCxxFlags = "-ffast-math";
  CompileOptions NoVn = Base;
  NoVn.EnableValueNumbering = false;
  std::string Src = "strand S (int i) { update { stabilize; } }";
  auto K = [&](const CompileOptions &O) {
    return codegen::programCacheKey(Src, O).hex();
  };
  EXPECT_NE(K(Base), K(Dbl));
  EXPECT_NE(K(Base), K(Flags));
  EXPECT_NE(K(Base), K(NoVn));
  EXPECT_EQ(K(Base), K(CompileOptions{}));
}

TEST(CacheKey, KeyIsStableAndWellFormed) {
  CompileOptions Opts;
  std::string K1 = codegen::programCacheKey("prog", Opts).hex();
  std::string K2 = codegen::programCacheKey("prog", Opts).hex();
  EXPECT_EQ(K1, K2);
  ASSERT_EQ(K1.size(), 32u);
  for (char C : K1)
    EXPECT_TRUE((C >= '0' && C <= '9') || (C >= 'a' && C <= 'f'));
}

//===----------------------------------------------------------------------===//
// Daemon HTTP API (interp engine — native covered by *Native* tests)
//===----------------------------------------------------------------------===//

TEST(Daemon, CompileIsCachedOnSecondPost) {
  serve::Daemon D;
  ASSERT_TRUE(D.start(interpOptions(tempDir("compile"))).isOk());
  Reply R1 = httpDo(D.port(), "POST", "/compile", ProgA,
                    {{"X-Diderot-Program", "a"}});
  EXPECT_EQ(R1.Code, 200) << R1.Raw;
  EXPECT_EQ(jsonField(R1.Body, "cached"), "false");
  Reply R2 = httpDo(D.port(), "POST", "/compile", ProgA);
  EXPECT_EQ(R2.Code, 200);
  EXPECT_EQ(jsonField(R2.Body, "cached"), "true");
  EXPECT_EQ(jsonField(R1.Body, "key"), jsonField(R2.Body, "key"));
  Reply Bad = httpDo(D.port(), "POST", "/compile", "strand { nope");
  EXPECT_EQ(Bad.Code, 400);
  EXPECT_EQ(httpDo(D.port(), "GET", "/compile").Code, 405);
  D.stop();
}

TEST(Daemon, RunMatchesGoldenDirectRun) {
  serve::DaemonOptions O = interpOptions(tempDir("golden"));
  serve::Daemon D;
  ASSERT_TRUE(D.start(O).isOk());
  std::string Job = runAndWait(D.port(), ProgA,
                               {{"X-Diderot-Input", "bias=0.5"}});
  EXPECT_EQ(jsonField(Job, "state"), "done");
  EXPECT_EQ(jsonField(Job, "outcome"), "converged");
  std::vector<double> Served = fetchOutput(D.port(), Job);
  Result<CompiledProgram> CP =
      compileString(ProgA, O.Compile, "golden");
  ASSERT_TRUE(CP.isOk());
  auto I = CP->instantiate();
  ASSERT_TRUE(I.isOk());
  ASSERT_TRUE((*I)->setInputReal("bias", 0.5).isOk());
  ASSERT_TRUE((*I)->initialize().isOk());
  ASSERT_TRUE((*I)->run(100, 0).isOk());
  std::vector<double> Golden;
  ASSERT_TRUE((*I)->getOutput("v", Golden).isOk());
  ASSERT_EQ(Served.size(), Golden.size());
  for (size_t K = 0; K < Golden.size(); ++K)
    EXPECT_DOUBLE_EQ(Served[K], Golden[K]) << "sample " << K;
  D.stop();
}

TEST(Daemon, ServesDistinctProgramsConcurrently) {
  serve::DaemonOptions O = interpOptions(tempDir("mixed"));
  O.JobWorkers = 4;
  O.HttpThreads = 8;
  serve::Daemon D;
  ASSERT_TRUE(D.start(O).isOk());
  std::vector<double> GoldA = goldenRun(ProgA, O.Compile);
  std::vector<double> GoldB = goldenRun(ProgB, O.Compile);
  ASSERT_FALSE(GoldA.empty());
  ASSERT_NE(GoldA, GoldB);

  std::atomic<int> Failures{0};
  std::vector<std::thread> Clients;
  for (int T = 0; T < 6; ++T)
    Clients.emplace_back([&, T] {
      // Threads interleave identical and distinct programs.
      const std::string Src = (T % 2) ? ProgB : ProgA;
      const std::vector<double> &Gold = (T % 2) ? GoldB : GoldA;
      for (int R = 0; R < 3; ++R) {
        std::string Job = runAndWait(D.port(), Src);
        if (jsonField(Job, "state") != "done") {
          ++Failures;
          continue;
        }
        std::vector<double> Got = fetchOutput(D.port(), Job);
        if (Got != Gold)
          ++Failures;
      }
    });
  for (std::thread &C : Clients)
    C.join();
  EXPECT_EQ(Failures.load(), 0);
  // 18 jobs over 2 distinct programs: exactly 2 registry misses.
  serve::Daemon::Counters C = D.counters();
  EXPECT_EQ(C.JobsDone, 18u);
  EXPECT_EQ(C.CacheMisses, 2u);
  EXPECT_GE(C.CacheHits, 16u);
  D.stop();
}

TEST(Daemon, DeadlineJobReportsDeadlineOutcome) {
  serve::Daemon D;
  ASSERT_TRUE(D.start(interpOptions(tempDir("deadline"))).isOk());
  std::string Job = runAndWait(D.port(), ProgSpin,
                               {{"X-Diderot-Steps", "100000000"},
                                {"X-Diderot-Deadline-Ms", "100"}});
  EXPECT_EQ(jsonField(Job, "state"), "done");
  EXPECT_EQ(jsonField(Job, "outcome"), "deadline");
  D.stop();
}

TEST(Daemon, FullQueueRejectsWith429) {
  serve::DaemonOptions O = interpOptions(tempDir("full"));
  O.QueueCapacity = 0; // every submit is shed
  serve::Daemon D;
  ASSERT_TRUE(D.start(O).isOk());
  Reply R = httpDo(D.port(), "POST", "/run", ProgA);
  EXPECT_EQ(R.Code, 429) << R.Raw;
  EXPECT_EQ(D.counters().JobsRejected, 1u);
  // The rejected job must not linger in the job table.
  EXPECT_EQ(httpDo(D.port(), "GET", "/jobs/j-1").Code, 404);
  D.stop();
}

TEST(Daemon, JobErrorsAndUnknownRoutes) {
  serve::Daemon D;
  ASSERT_TRUE(D.start(interpOptions(tempDir("errors"))).isOk());
  EXPECT_EQ(httpDo(D.port(), "GET", "/jobs/nope").Code, 404);
  EXPECT_EQ(httpDo(D.port(), "GET", "/nothing").Code, 404);
  EXPECT_EQ(httpDo(D.port(), "POST", "/run", "").Code, 400);
  Reply BadInput = httpDo(D.port(), "POST", "/run", ProgA,
                          {{"X-Diderot-Input", "no-equals-sign"}});
  EXPECT_EQ(BadInput.Code, 400);
  // A job that fails at input binding: state failed, output gives 409.
  std::string Job = runAndWait(D.port(), ProgA,
                               {{"X-Diderot-Input", "nosuch=1"}});
  EXPECT_EQ(jsonField(Job, "state"), "failed");
  EXPECT_NE(jsonField(Job, "error").find("nosuch"), std::string::npos);
  std::string Id = jsonField(Job, "job");
  EXPECT_EQ(httpDo(D.port(), "GET", "/jobs/" + Id + "/output").Code, 409);
  D.stop();
}

TEST(Daemon, MetricsExposeDaemonCounters) {
  serve::Daemon D;
  ASSERT_TRUE(D.start(interpOptions(tempDir("metrics"))).isOk());
  runAndWait(D.port(), ProgA);
  runAndWait(D.port(), ProgA);
  Reply M = httpDo(D.port(), "GET", "/metrics");
  EXPECT_EQ(M.Code, 200);
  for (const char *Series :
       {"diderot_daemon_cache_hits_total", "diderot_daemon_cache_misses_total",
        "diderot_daemon_queue_depth", "diderot_daemon_jobs_inflight",
        "diderot_daemon_jobs_total{state=\"done\"} 2",
        "diderot_daemon_run_seconds_count 2",
        "diderot_daemon_native_host_compiles_total"})
    EXPECT_NE(M.Body.find(Series), std::string::npos) << Series;
  D.stop();
}

TEST(Daemon, StampEnvMetaExportsCacheHitRate) {
  ::unsetenv("DIDEROT_DAEMON_CACHE_HIT_RATE");
  ::unsetenv("DIDEROT_DAEMON_QUEUE_DEPTH");
  serve::Daemon D;
  ASSERT_TRUE(D.start(interpOptions(tempDir("stamp"))).isOk());
  runAndWait(D.port(), ProgA); // miss
  runAndWait(D.port(), ProgA); // hit
  D.stampEnvMeta();
  const char *Rate = std::getenv("DIDEROT_DAEMON_CACHE_HIT_RATE");
  const char *Depth = std::getenv("DIDEROT_DAEMON_QUEUE_DEPTH");
  ASSERT_NE(Rate, nullptr);
  ASSERT_NE(Depth, nullptr);
  EXPECT_DOUBLE_EQ(std::atof(Rate), 0.5);
  EXPECT_STREQ(Depth, "0");
  D.stop();
}

//===----------------------------------------------------------------------===//
// Cache directory helpers
//===----------------------------------------------------------------------===//

TEST(CompileCache, DefaultCacheDirHonorsEnv) {
  ::setenv("DIDEROT_CACHE_DIR", "/tmp/custom-diderot-cache", 1);
  EXPECT_EQ(serve::defaultCacheDir(), "/tmp/custom-diderot-cache");
  ::unsetenv("DIDEROT_CACHE_DIR");
  EXPECT_NE(serve::defaultCacheDir().find("diderot-cpp"), std::string::npos);
}

TEST(CompileCache, ReadCacheIndexSkipsMalformedLines) {
  std::string Dir = tempDir("index");
  {
    std::string Key(32, 'a');
    std::ofstream Out(std::filesystem::path(Dir) /
                      codegen::cacheIndexFile());
    Out << Key << "\tiso\t1700000000000\tg++ host=12\n";
    Out << "short-key\tx\t0\tcc\n"; // skipped: key not 32 hex chars
    Out << "not a tsv line\n";      // skipped: too few columns
  }
  std::vector<serve::CacheEntry> E = serve::readCacheIndex(Dir);
  ASSERT_EQ(E.size(), 1u);
  EXPECT_EQ(E[0].Key, std::string(32, 'a'));
  EXPECT_EQ(E[0].Program, "iso");
  EXPECT_EQ(E[0].UnixMs, 1700000000000ll);
  EXPECT_EQ(E[0].CompilerId, "g++ host=12");
  EXPECT_TRUE(serve::readCacheIndex(tempDir("empty-index")).empty());
}

//===----------------------------------------------------------------------===//
// Native engine: the on-disk content-addressed cache
//===----------------------------------------------------------------------===//

TEST(DaemonNative, WarmCacheSurvivesPoisonedCompiler) {
  // The acceptance test for compile-once-serve-many: after warm-up, break
  // the host compiler; a warm POST /run must still succeed with zero new
  // host-compiler invocations, and a *cold* program must fail — proving
  // the poison was real, not ignored.
  std::string Cache = tempDir("poison");
  serve::DaemonOptions O;
  O.Compile.Eng = Engine::Native;
  O.Compile.WorkDir = Cache;
  serve::Daemon D;
  ASSERT_TRUE(D.start(O).isOk());

  Reply Warm = httpDo(D.port(), "POST", "/compile", ProgA);
  ASSERT_EQ(Warm.Code, 200) << Warm.Raw;
  uint64_t CompilesAfterWarmup = codegen::nativeCacheStats().HostCompiles;

  ::setenv("DIDEROT_CXX", "/nonexistent/poisoned-cxx", 1);
  std::string Job = runAndWait(D.port(), ProgA);
  EXPECT_EQ(jsonField(Job, "state"), "done") << Job;
  EXPECT_EQ(jsonField(Job, "outcome"), "converged");
  EXPECT_EQ(codegen::nativeCacheStats().HostCompiles, CompilesAfterWarmup)
      << "warm run must not invoke the host compiler";

  // The poison must bite a never-seen program (otherwise the assertion
  // above proves nothing).
  std::string Cold = runAndWait(D.port(), ProgB);
  EXPECT_EQ(jsonField(Cold, "state"), "failed") << Cold;
  ::unsetenv("DIDEROT_CXX");
  D.stop();
}

TEST(DaemonNative, CacheDirHoldsContentAddressedArtifacts) {
  std::string Cache = tempDir("artifacts");
  serve::DaemonOptions O;
  O.Compile.Eng = Engine::Native;
  O.Compile.WorkDir = Cache;
  serve::Daemon D;
  ASSERT_TRUE(D.start(O).isOk());
  Reply R = httpDo(D.port(), "POST", "/compile", ProgA,
                   {{"X-Diderot-Program", "prog-a"}});
  ASSERT_EQ(R.Code, 200) << R.Raw;

  // The .so is named by the *generated C++* key (not the source key in the
  // reply), so find it via the index the loader appended.
  std::vector<serve::CacheEntry> Index = serve::readCacheIndex(Cache);
  ASSERT_EQ(Index.size(), 1u);
  EXPECT_EQ(Index[0].Program, "prog-a");
  EXPECT_EQ(Index[0].CompilerId, codegen::hostCompilerId());
  EXPECT_TRUE(std::filesystem::exists(std::filesystem::path(Cache) /
                                      ("ddr-" + Index[0].Key + ".so")));
  D.stop();
}

//===----------------------------------------------------------------------===//
// Admission control: shed headers, graceful drain, queued-deadline expiry
//===----------------------------------------------------------------------===//

TEST(Daemon, ShedResponsesCarryRetryAfterAndQueueDepth) {
  serve::DaemonOptions O = interpOptions(tempDir("shed-headers"));
  O.QueueCapacity = 0; // every submit is shed with 429
  serve::Daemon D;
  ASSERT_TRUE(D.start(O).isOk());
  Reply R = httpDo(D.port(), "POST", "/run", ProgA);
  EXPECT_EQ(R.Code, 429) << R.Raw;
  EXPECT_NE(R.Raw.find("Retry-After:"), std::string::npos) << R.Raw;
  EXPECT_NE(R.Raw.find("X-Diderot-Queue-Depth:"), std::string::npos) << R.Raw;
  D.stop();
}

TEST(Daemon, DrainingRefusesNewWorkButKeepsGets) {
  serve::DaemonOptions O = interpOptions(tempDir("drain-gate"));
  O.DrainMs = 1000;
  serve::Daemon D;
  ASSERT_TRUE(D.start(O).isOk());
  std::string Done = runAndWait(D.port(), ProgA);
  std::string Id = jsonField(Done, "job");

  EXPECT_FALSE(D.draining());
  D.beginDrain();
  D.beginDrain(); // idempotent
  EXPECT_TRUE(D.draining());

  // POSTs are shed with the full retry contract. The hint must outlast
  // the drain window itself — when DrainMs expires the process exits, so
  // a client told to retry at exactly DrainMs would hit a dead socket.
  // DrainMs 1000 + 5 s restart slack = 6 s.
  Reply R = httpDo(D.port(), "POST", "/run", ProgA);
  EXPECT_EQ(R.Code, 503) << R.Raw;
  EXPECT_NE(R.Raw.find("Retry-After: 6\r\n"), std::string::npos) << R.Raw;
  EXPECT_EQ(httpDo(D.port(), "POST", "/compile", ProgA).Code, 503);

  // ...while polls, health, and metrics keep answering so clients can
  // collect results during the drain window.
  EXPECT_EQ(httpDo(D.port(), "GET", "/jobs/" + Id).Code, 200);
  Reply H = httpDo(D.port(), "GET", "/healthz");
  EXPECT_EQ(H.Code, 200);
  EXPECT_NE(H.Body.find("\"status\":\"draining\""), std::string::npos)
      << H.Body;
  Reply M = httpDo(D.port(), "GET", "/metrics");
  EXPECT_EQ(M.Code, 200);
  EXPECT_NE(M.Body.find("diderot_daemon_draining 1"), std::string::npos);

  EXPECT_TRUE(D.drainAndStop()); // nothing queued: drains immediately
}

TEST(Daemon, DrainAndStopLetsRunningJobsFinish) {
  serve::DaemonOptions O = interpOptions(tempDir("drain-finish"));
  O.JobWorkers = 1;
  O.DrainMs = 10000;
  serve::Daemon D;
  ASSERT_TRUE(D.start(O).isOk());

  // A job that spins until its 300 ms deadline: long enough that the drain
  // below overlaps it, short enough that it finishes well inside DrainMs.
  Reply R = httpDo(D.port(), "POST", "/run", ProgSpin,
                   {{"X-Diderot-Steps", "100000000"},
                    {"X-Diderot-Deadline-Ms", "300"}});
  ASSERT_EQ(R.Code, 202) << R.Raw;

  EXPECT_TRUE(D.drainAndStop());
  serve::Daemon::Counters C = D.counters();
  EXPECT_EQ(C.JobsDone, 1u);   // the running job finished, not cancelled
  EXPECT_EQ(C.JobsFailed, 0u);
  EXPECT_EQ(C.QueueDepth, 0);
}

TEST(Daemon, DrainBudgetExhaustedCancelsQueuedJobsNotRunningOnes) {
  serve::DaemonOptions O = interpOptions(tempDir("drain-exhaust"));
  O.JobWorkers = 1;
  O.DrainMs = 50; // far less than the running job needs
  serve::Daemon D;
  ASSERT_TRUE(D.start(O).isOk());

  // One job occupies the single worker for ~1 s; a second waits behind it.
  ASSERT_EQ(httpDo(D.port(), "POST", "/run", ProgSpin,
                   {{"X-Diderot-Steps", "100000000"},
                    {"X-Diderot-Deadline-Ms", "1000"}})
                .Code,
            202);
  ASSERT_EQ(httpDo(D.port(), "POST", "/run", ProgA).Code, 202);

  EXPECT_FALSE(D.drainAndStop()); // the budget cannot cover the running job
  serve::Daemon::Counters C = D.counters();
  // The running job was allowed to finish; the queued one was resolved
  // through the cancellation path — nothing is left parked in "queued".
  EXPECT_EQ(C.JobsDone, 1u);
  EXPECT_EQ(C.JobsFailed, 1u);
  EXPECT_EQ(C.QueueDepth, 0);
  EXPECT_EQ(C.JobsInFlight, 0);
}

TEST(Daemon, DeadlineSpentInQueueFailsFastBeforeRunning) {
  serve::DaemonOptions O = interpOptions(tempDir("queued-deadline"));
  O.JobWorkers = 1;
  serve::Daemon D;
  ASSERT_TRUE(D.start(O).isOk());

  // Occupy the only worker for ~400 ms...
  ASSERT_EQ(httpDo(D.port(), "POST", "/run", ProgSpin,
                   {{"X-Diderot-Steps", "100000000"},
                    {"X-Diderot-Deadline-Ms", "400"}})
                .Code,
            202);
  // ...then queue a job whose whole 50 ms deadline will elapse while it
  // waits. It must fail fast at dequeue — before instantiate — with a
  // typed DeadlineExceeded error, not run with a budget it no longer has.
  std::string Job = runAndWait(D.port(), ProgA,
                               {{"X-Diderot-Deadline-Ms", "50"}});
  EXPECT_EQ(jsonField(Job, "state"), "failed") << Job;
  EXPECT_NE(jsonField(Job, "error").find("DeadlineExceeded"),
            std::string::npos)
      << Job;
  EXPECT_NE(jsonField(Job, "error").find("while queued"), std::string::npos);
  EXPECT_EQ(D.counters().DeadlineExpired, 1u);
  D.stop();
}

//===----------------------------------------------------------------------===//
// Compile circuit breaker (interp engine: deterministic frontend errors)
//===----------------------------------------------------------------------===//

TEST(Daemon, BreakerOpensAfterRepeatedCompileFailures) {
  serve::DaemonOptions O = interpOptions(tempDir("breaker-open"));
  O.BreakerThreshold = 2;
  O.BreakerOpenMs = 60000; // long: this test never waits out the cooldown
  serve::Daemon D;
  ASSERT_TRUE(D.start(O).isOk());

  const char *Broken = "strand S (int i) { this does not parse }";
  // The first two failures are real compile attempts answered 400...
  EXPECT_EQ(httpDo(D.port(), "POST", "/run", Broken).Code, 400);
  EXPECT_EQ(httpDo(D.port(), "POST", "/run", Broken).Code, 400);
  // ...the third is denied by the now-open breaker without compiling.
  Reply R = httpDo(D.port(), "POST", "/run", Broken);
  EXPECT_EQ(R.Code, 503) << R.Raw;
  EXPECT_NE(R.Raw.find("Retry-After:"), std::string::npos) << R.Raw;
  EXPECT_NE(R.Body.find("breaker"), std::string::npos) << R.Body;
  // /compile for the same program is covered by the same breaker.
  EXPECT_EQ(httpDo(D.port(), "POST", "/compile", Broken).Code, 503);

  serve::Daemon::Counters C = D.counters();
  EXPECT_EQ(C.BreakerTrips, 1u);
  EXPECT_EQ(C.BreakerDenied, 2u);
  EXPECT_EQ(C.BreakerOpen, 1);

  // A healthy program is not affected — breakers are per key.
  EXPECT_EQ(jsonField(runAndWait(D.port(), ProgA), "state"), "done");

  Reply H = httpDo(D.port(), "GET", "/healthz");
  EXPECT_NE(H.Body.find("\"breakerOpen\":1"), std::string::npos) << H.Body;
  Reply M = httpDo(D.port(), "GET", "/metrics");
  EXPECT_NE(M.Body.find("diderot_daemon_compile_breaker_state"),
            std::string::npos);
  EXPECT_NE(M.Body.find("diderot_daemon_breaker_trips_total 1"),
            std::string::npos);
  D.stop();
}

//===----------------------------------------------------------------------===//
// Native engine: supervised compiles, timeout containment, recovery, LRU
//===----------------------------------------------------------------------===//

namespace {

/// Install an executable fake-compiler script and point DIDEROT_CXX at it.
std::string plantFakeCxx(const std::string &Dir, const std::string &Body) {
  std::string Path = Dir + "/fake-cxx.sh";
  {
    std::ofstream Out(Path);
    Out << "#!/bin/sh\n" << Body;
  }
  std::filesystem::permissions(Path,
                               std::filesystem::perms::owner_all |
                                   std::filesystem::perms::group_read |
                                   std::filesystem::perms::others_read);
  return Path;
}

} // namespace

TEST(DaemonNative, HungCompilerIsKilledAtTheTimeoutAndTheWorkerSurvives) {
  std::string Cache = tempDir("hung-cxx");
  const char *Warm = R"(
strand S (int i) {
  output real v = real(i);
  update { v = v * 7.0; stabilize; }
}
initially [ S(i) | i in 0 .. 7 ];
)";
  // Pre-warm one program's artifact under the default (generous) compile
  // timeout, so the recovery phase below never needs a real host compile —
  // under a loaded ctest run a second real compile could itself outlast
  // the tight 10 s budget we are about to configure.
  {
    serve::DaemonOptions O;
    O.Compile.Eng = Engine::Native;
    O.Compile.WorkDir = Cache;
    serve::Daemon D;
    ASSERT_TRUE(D.start(O).isOk());
    Reply R = httpDo(D.port(), "POST", "/compile", Warm);
    ASSERT_EQ(R.Code, 200) << R.Raw;
    D.stop();
  }

  serve::DaemonOptions O;
  O.Compile.Eng = Engine::Native;
  O.Compile.WorkDir = Cache;
  O.Compile.HostCompileTimeoutMs = 10000;
  O.Compile.HostCompileRetries = 0;
  serve::Daemon D;
  ASSERT_TRUE(D.start(O).isOk());

  // A compiler that wedges (and spawns a child of its own, so only a
  // process-group kill can clean it up). The hung program is distinct from
  // the warm one, so it misses the cache and must invoke the compiler.
  ::setenv("DIDEROT_CXX", plantFakeCxx(Cache, "sleep 600 &\nwait\n").c_str(),
           1);
  const char *Hung = R"(
strand S (int i) {
  output real v = real(i);
  update { v = v * 19.0; stabilize; }
}
initially [ S(i) | i in 0 .. 7 ];
)";
  uint64_t TimeoutsBefore = codegen::nativeCacheStats().CompileTimeouts;
  auto T0 = std::chrono::steady_clock::now();
  // POST /compile builds the .so synchronously, so the timeout surfaces in
  // the response itself.
  Reply R = httpDo(D.port(), "POST", "/compile", Hung);
  auto ElapsedMs = std::chrono::duration_cast<std::chrono::milliseconds>(
                       std::chrono::steady_clock::now() - T0)
                       .count();
  // The compile was killed at its 10 s budget — not after sleep(600).
  EXPECT_EQ(R.Code, 400) << R.Raw;
  EXPECT_NE(R.Body.find("timed out"), std::string::npos) << R.Body;
  EXPECT_GE(ElapsedMs, 10000);
  EXPECT_LT(ElapsedMs, 60000);
  EXPECT_EQ(codegen::nativeCacheStats().CompileTimeouts, TimeoutsBefore + 1);
  ::unsetenv("DIDEROT_CXX");

  // The worker is reusable: the same daemon serves the pre-warmed program
  // to completion (a disk hit — no host compile involved).
  std::string Job = runAndWait(D.port(), Warm);
  EXPECT_EQ(jsonField(Job, "state"), "done") << Job;

  Reply M = httpDo(D.port(), "GET", "/metrics");
  EXPECT_NE(M.Body.find("diderot_daemon_compile_timeouts_total"),
            std::string::npos);
  D.stop();
}

TEST(DaemonNative, BreakerClosesAfterAHalfOpenProbeSucceeds) {
  std::string Cache = tempDir("breaker-probe");
  serve::DaemonOptions O;
  O.Compile.Eng = Engine::Native;
  O.Compile.WorkDir = Cache;
  O.BreakerThreshold = 1;
  O.BreakerOpenMs = 300;
  serve::Daemon D;
  ASSERT_TRUE(D.start(O).isOk());

  const char *Prog = R"(
strand S (int i) {
  output real v = real(i);
  update { v = v * 11.0; stabilize; }
}
initially [ S(i) | i in 0 .. 7 ];
)";
  // Poisoned compiler: the first attempt fails and (threshold 1) trips the
  // breaker; the second is denied fast without touching the compiler.
  // (/compile builds the .so synchronously — the failure is in-band.)
  ::setenv("DIDEROT_CXX", "/nonexistent/poisoned-cxx", 1);
  uint64_t CompilesBefore = codegen::nativeCacheStats().HostCompiles;
  EXPECT_EQ(httpDo(D.port(), "POST", "/compile", Prog).Code, 400);
  EXPECT_EQ(httpDo(D.port(), "POST", "/compile", Prog).Code, 503);
  EXPECT_EQ(codegen::nativeCacheStats().HostCompiles, CompilesBefore + 1)
      << "the denied request must not consume a compile attempt";
  EXPECT_EQ(D.counters().BreakerOpen, 1);

  // Heal the compiler, wait out the cooldown: the next request is the
  // single half-open probe, succeeds, and closes the breaker.
  ::unsetenv("DIDEROT_CXX");
  std::this_thread::sleep_for(std::chrono::milliseconds(350));
  std::string Job = runAndWait(D.port(), Prog);
  EXPECT_EQ(jsonField(Job, "state"), "done") << Job;
  serve::Daemon::Counters C = D.counters();
  EXPECT_EQ(C.BreakerOpen, 0);
  EXPECT_EQ(C.BreakerTrips, 1u);
  D.stop();
}

TEST(DaemonNative, AbandonedHalfOpenProbeDoesNotJamTheBreaker) {
  std::string Cache = tempDir("breaker-abandon");
  serve::DaemonOptions O;
  O.Compile.Eng = Engine::Native;
  O.Compile.WorkDir = Cache;
  O.BreakerThreshold = 1;
  O.BreakerOpenMs = 300;
  serve::Daemon D;
  ASSERT_TRUE(D.start(O).isOk());

  const char *Prog = R"(
strand S (int i) {
  output real v = real(i);
  update { v = v * 23.0; stabilize; }
}
initially [ S(i) | i in 0 .. 7 ];
)";
  // Trip the breaker with a poisoned compiler (threshold 1).
  ::setenv("DIDEROT_CXX", "/nonexistent/poisoned-cxx", 1);
  ASSERT_EQ(httpDo(D.port(), "POST", "/compile", Prog).Code, 400);
  ASSERT_EQ(D.counters().BreakerOpen, 1);

  // Cooldown over: the next /run is admitted as the single half-open
  // probe — but it 400s on a malformed limit header before any compile
  // verdict exists. The probe must be released, not leaked: before the
  // fix the breaker stayed jammed, denying this key 503 forever.
  std::this_thread::sleep_for(std::chrono::milliseconds(350));
  Reply Bad = httpDo(D.port(), "POST", "/run", Prog,
                     {{"X-Diderot-Steps", "banana"}});
  EXPECT_EQ(Bad.Code, 400) << Bad.Raw;

  // Still admitted (another malformed request, another release)...
  Bad = httpDo(D.port(), "POST", "/run", Prog,
               {{"X-Diderot-Deadline-Ms", "-1"}});
  EXPECT_EQ(Bad.Code, 400) << Bad.Raw;

  // ...and with the compiler healed, a well-formed request probes,
  // succeeds, and closes the breaker.
  ::unsetenv("DIDEROT_CXX");
  std::string Job = runAndWait(D.port(), Prog);
  EXPECT_EQ(jsonField(Job, "state"), "done") << Job;
  EXPECT_EQ(D.counters().BreakerOpen, 0);
  D.stop();
}

TEST(DaemonNative, LruCapEvictsTheColdestArtifact) {
  std::string Cache = tempDir("lru-cap");
  serve::DaemonOptions O;
  O.Compile.Eng = Engine::Native;
  O.Compile.WorkDir = Cache;
  O.Compile.CacheMaxBytes = 1; // every compile evicts everything unprotected
  serve::Daemon D;
  ASSERT_TRUE(D.start(O).isOk());

  const char *ProgOld = R"(
strand S (int i) {
  output real v = real(i);
  update { v = v * 13.0; stabilize; }
}
initially [ S(i) | i in 0 .. 7 ];
)";
  const char *ProgNew = R"(
strand S (int i) {
  output real v = real(i);
  update { v = v * 17.0; stabilize; }
}
initially [ S(i) | i in 0 .. 7 ];
)";
  uint64_t EvictedBefore = codegen::nativeCacheStats().Evicted;
  ASSERT_EQ(httpDo(D.port(), "POST", "/compile", ProgOld).Code, 200);
  // The just-installed artifact is protected from its own enforcement pass.
  auto CountSo = [&] {
    int N = 0;
    for (const auto &E : std::filesystem::directory_iterator(Cache))
      if (E.path().extension() == ".so")
        ++N;
    return N;
  };
  EXPECT_EQ(CountSo(), 1);
  ASSERT_EQ(httpDo(D.port(), "POST", "/compile", ProgNew).Code, 200);
  // The second compile's enforcement evicted the first (cold, unprotected).
  EXPECT_EQ(CountSo(), 1);
  EXPECT_GT(codegen::nativeCacheStats().Evicted, EvictedBefore);
  D.stop();
}

} // namespace diderot

//===--- tests/codegen_test.cpp - C++ emission tests --------------------------===//
//
// Textual checks of the generated translation unit (the native engine's
// output): structure, precision selection, metadata tables, and the C ABI.
// Behavior is covered by the differential engine tests; these tests pin the
// contract between the emitter and the prelude.
//
//===----------------------------------------------------------------------===//

#include <gtest/gtest.h>

#include "driver/driver.h"
#include "testprograms.h"

namespace diderot {
namespace {

std::string emit(const std::string &Src, bool DoublePrec = false) {
  CompileOptions Opts;
  Opts.DoublePrecision = DoublePrec;
  Result<CompiledProgram> CP = compileString(Src, Opts, "emit_test");
  EXPECT_TRUE(CP.isOk()) << CP.message();
  if (!CP.isOk())
    return "";
  return CP->emitCpp();
}

const char *Small = R"(
input real a = 1.5;
input image(3)[] img;
field#2(3)[] F = img ⊛ bspln3;
strand S (int i) {
  output real out = 0.0;
  update { out = a * F([0.1,0.2,0.3]); stabilize; }
}
initially [ S(i) | i in 0 .. 3 ];
)";

TEST(Codegen, PrecisionSelection) {
  EXPECT_NE(emit(Small, false).find("using Real = float;"),
            std::string::npos);
  EXPECT_NE(emit(Small, true).find("using Real = double;"),
            std::string::npos);
}

TEST(Codegen, StructuralElements) {
  std::string S = emit(Small);
  EXPECT_NE(S.find("struct Globals {"), std::string::npos);
  EXPECT_NE(S.find("struct Strand {"), std::string::npos);
  EXPECT_NE(S.find("ExitKind f_update(const Globals& G, Strand& S)"),
            std::string::npos);
  EXPECT_NE(S.find("bool f_globalInit(Globals& G"), std::string::npos);
  EXPECT_NE(S.find("void f_initStrand("), std::string::npos);
  EXPECT_NE(S.find("struct Prog : ProgramBase<Prog, Real, Strand>"),
            std::string::npos);
}

TEST(Codegen, CApiExported) {
  std::string S = emit(Small);
  for (const char *Sym :
       {"ddr_create", "ddr_destroy", "ddr_set_input_scalars",
        "ddr_set_input_image", "ddr_initialize", "ddr_run", "ddr_get_output",
        "ddr_num_strands", "ddr_output_dims", "ddr_error"})
    EXPECT_NE(S.find(Sym), std::string::npos) << Sym;
  EXPECT_NE(S.find("extern \"C\""), std::string::npos);
}

TEST(Codegen, MetadataTables) {
  std::string S = emit(Small);
  EXPECT_NE(S.find("const GlobalMeta kGlobals[]"), std::string::npos);
  EXPECT_NE(S.find("{\"a\", 0, 1, 0, true, true, \"real\"}"),
            std::string::npos);
  EXPECT_NE(S.find("const OutputMeta kOutputs[]"), std::string::npos);
  EXPECT_NE(S.find("{\"out\", 1, false}"), std::string::npos);
}

TEST(Codegen, ProbeBecomesStraightLineCode) {
  std::string S = emit(Small);
  // Horner-form kernel weights and clamped voxel loads appear; no function
  // calls per tap.
  EXPECT_NE(S.find("clampIndex("), std::string::npos);
  EXPECT_NE(S.find("->Data[(size_t)("), std::string::npos);
  EXPECT_NE(S.find("->W2I["), std::string::npos);
  EXPECT_EQ(S.find("KernelWeight"), std::string::npos);
}

TEST(Codegen, NoDoubledConstQualifier) {
  std::string S = emit(Small);
  EXPECT_EQ(S.find("const const"), std::string::npos);
}

TEST(Codegen, DefaultsEmitted) {
  std::string S = emit(Small);
  EXPECT_NE(S.find("bool applyDefault(int GIdx)"), std::string::npos);
  EXPECT_NE(S.find("f_default_0"), std::string::npos);
}

TEST(Codegen, GridFlagAndIterators) {
  std::string S = emit(Small);
  EXPECT_NE(S.find("static constexpr bool IsGrid = true;"),
            std::string::npos);
  EXPECT_NE(S.find("static constexpr int NumIters = 1;"), std::string::npos);
  EXPECT_NE(S.find("int64_t f_iterLo0(const Globals& G)"),
            std::string::npos);
}

TEST(Codegen, CollectionProgram) {
  std::string S = emit(R"(
strand S (int i) {
  output real out = 0.0;
  update { die; }
}
initially { S(i) | i in 0 .. 3 };
)");
  EXPECT_NE(S.find("static constexpr bool IsGrid = false;"),
            std::string::npos);
  EXPECT_NE(S.find("return ExitKind::Die;"), std::string::npos);
}

TEST(Codegen, EigenCallsRuntimeRoutines) {
  std::string S = emit(R"(
input image(3)[] img;
field#2(3)[] F = img ⊛ bspln3;
strand S (int i) {
  output vec3 out = [0.0,0.0,0.0];
  update {
    out = evals(∇⊗∇F([0.1,0.2,0.3]));
    stabilize;
  }
}
initially [ S(i) | i in 0 .. 3 ];
)");
  EXPECT_NE(S.find("diderot::eigenvalsSym3("), std::string::npos);
}

TEST(Codegen, StabilizeMethodEmitted) {
  std::string S = emit(R"(
strand S (int i) {
  output real x = 0.0;
  update { stabilize; }
  stabilize { x = 42.0; }
}
initially [ S(i) | i in 0 .. 3 ];
)");
  EXPECT_NE(S.find("void f_stabilize(const Globals& G, Strand& S)"),
            std::string::npos);
  EXPECT_NE(S.find("f_stabilize(G, S);"), std::string::npos);
}

TEST(Codegen, PaperProgramsEmit) {
  for (const char *Src : {testprog::VrLite, testprog::Lic2d,
                          testprog::Isocontour, testprog::Curvature}) {
    std::string S = emit(Src);
    EXPECT_FALSE(S.empty());
    EXPECT_NE(S.find("ddr_create"), std::string::npos);
  }
}

TEST(Codegen, UpdateWritesBackFullState) {
  std::string S = emit(Small);
  // Params (i) plus state (pos not present here; out) written back on exit.
  EXPECT_NE(S.find("S.m0 = "), std::string::npos);
  EXPECT_NE(S.find("return ExitKind::Stabilize;"), std::string::npos);
}

} // namespace
} // namespace diderot

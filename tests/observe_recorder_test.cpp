//===--- tests/observe_recorder_test.cpp - Recorder + instrumented scheduler -===//
//
// Scheduler-level telemetry tests: Recorder spans and atomic counters
// against both schedulers, the flat wire format, and aggregation. Pure
// runtime + observe code (no engines), so this file is also compiled into
// the ThreadSanitizer binary to guard the concurrent counter paths.
//
//===----------------------------------------------------------------------===//

#include <atomic>

#include <gtest/gtest.h>

#include "observe/recorder.h"
#include "runtime/scheduler.h"

namespace diderot {
namespace {

using observe::Recorder;
using observe::RunStats;
using observe::WorkerSpan;
using rt::StrandStatus;

/// Run strands that each stabilize after (I % StepsMax) + 1 updates.
RunStats runInstrumented(int Workers, size_t N, int StepsMax,
                         int Block = rt::DefaultBlockSize) {
  std::vector<StrandStatus> S(N, StrandStatus::Active);
  std::vector<std::atomic<int>> Count(N);
  Recorder Rec;
  Rec.start(Workers <= 0 ? 0 : Workers);
  auto Update = [&](size_t I) {
    int C = ++Count[I];
    return C > static_cast<int>(I) % StepsMax ? StrandStatus::Stable
                                              : StrandStatus::Active;
  };
  int Steps = Workers <= 0
                  ? rt::runSequential(S, Update, 100, &Rec)
                  : rt::runParallel(S, Update, 100, Workers, Block, &Rec);
  return Rec.take(Steps, Workers <= 0 ? 0 : Workers);
}

TEST(Recorder, SequentialSpansMatchSteps) {
  RunStats R = runInstrumented(/*Workers=*/0, /*N=*/100, /*StepsMax=*/5);
  EXPECT_EQ(R.Steps, 5);
  ASSERT_EQ(R.Workers.size(), 1u);
  EXPECT_EQ(R.Workers[0].size(), 5u);
  EXPECT_EQ(R.Supersteps.size(), 5u);
  EXPECT_EQ(R.totalStabilized(), 100u);
  EXPECT_EQ(R.totalDied(), 0u);
  EXPECT_EQ(R.totalRetired(), 100u);
  // 100 + 80 + 60 + 40 + 20 updates for (I % 5) + 1 lifetimes.
  EXPECT_EQ(R.totalUpdated(), 300u);
  EXPECT_TRUE(R.Enabled);
}

TEST(Recorder, ParallelSpansMatchStepsAndWorkers) {
  const int Workers = 4;
  RunStats R = runInstrumented(Workers, /*N=*/1000, /*StepsMax=*/3,
                               /*Block=*/16);
  EXPECT_EQ(R.Steps, 3);
  EXPECT_EQ(R.NumWorkers, Workers);
  ASSERT_EQ(R.Workers.size(), static_cast<size_t>(Workers));
  for (const std::vector<WorkerSpan> &Row : R.Workers)
    EXPECT_EQ(Row.size(), 3u);
  EXPECT_EQ(R.Supersteps.size(), 3u);
  EXPECT_EQ(R.totalRetired(), 1000u);
  // Atomic totals must agree with the per-span sums.
  uint64_t SpanUpdated = 0, SpanBlocks = 0;
  for (const std::vector<WorkerSpan> &Row : R.Workers)
    for (const WorkerSpan &Sp : Row) {
      SpanUpdated += Sp.Updated;
      SpanBlocks += Sp.BlocksClaimed;
    }
  EXPECT_EQ(SpanUpdated, R.totalUpdated());
  EXPECT_EQ(SpanBlocks, R.Totals.BlocksClaimed);
  // Every claim is preceded by a lock acquisition; each worker also takes
  // the lock once to discover the list is empty.
  EXPECT_GE(R.Totals.LockAcquires, R.Totals.BlocksClaimed);
  // Two rendezvous per worker per superstep.
  EXPECT_EQ(R.Totals.BarrierWaits,
            static_cast<uint64_t>(2 * Workers * R.Steps));
}

TEST(Recorder, StepAggregatesSumWorkerSpans) {
  RunStats R = runInstrumented(/*Workers=*/3, /*N=*/500, /*StepsMax=*/4,
                               /*Block=*/32);
  ASSERT_EQ(R.Supersteps.size(), 4u);
  uint64_t StepUpdated = 0;
  for (const observe::StepStats &S : R.Supersteps) {
    StepUpdated += S.Updated;
    EXPECT_GE(S.EndNs, S.BeginNs);
  }
  EXPECT_EQ(StepUpdated, R.totalUpdated());
  // First superstep touches every strand.
  EXPECT_EQ(R.Supersteps[0].Updated, 500u);
}

TEST(Recorder, SpanTimesAreMonotonePerWorker) {
  RunStats R = runInstrumented(/*Workers=*/2, /*N=*/200, /*StepsMax=*/6,
                               /*Block=*/8);
  for (const std::vector<WorkerSpan> &Row : R.Workers) {
    uint64_t Prev = 0;
    for (const WorkerSpan &Sp : Row) {
      EXPECT_GE(Sp.EndNs, Sp.BeginNs);
      EXPECT_GE(Sp.BeginNs, Prev);
      Prev = Sp.EndNs;
    }
  }
  EXPECT_GE(R.WallNs, R.Workers[0].empty() ? 0 : R.Workers[0].back().EndNs);
}

TEST(Recorder, FlattenRoundTrips) {
  RunStats R = runInstrumented(/*Workers=*/3, /*N=*/300, /*StepsMax=*/4);
  std::vector<uint64_t> Flat = observe::flattenStats(R);
  RunStats Back;
  ASSERT_TRUE(observe::unflattenStats(Flat.data(), Flat.size(), Back));
  EXPECT_EQ(Back.Steps, R.Steps);
  EXPECT_EQ(Back.NumWorkers, R.NumWorkers);
  EXPECT_EQ(Back.WallNs, R.WallNs);
  EXPECT_EQ(Back.Totals.Updated, R.Totals.Updated);
  EXPECT_EQ(Back.Totals.BarrierWaits, R.Totals.BarrierWaits);
  ASSERT_EQ(Back.Workers.size(), R.Workers.size());
  for (size_t W = 0; W < R.Workers.size(); ++W) {
    ASSERT_EQ(Back.Workers[W].size(), R.Workers[W].size());
    for (size_t S = 0; S < R.Workers[W].size(); ++S) {
      EXPECT_EQ(Back.Workers[W][S].Updated, R.Workers[W][S].Updated);
      EXPECT_EQ(Back.Workers[W][S].BeginNs, R.Workers[W][S].BeginNs);
      EXPECT_EQ(Back.Workers[W][S].EndNs, R.Workers[W][S].EndNs);
    }
  }
  ASSERT_EQ(Back.Supersteps.size(), R.Supersteps.size());
  for (size_t S = 0; S < R.Supersteps.size(); ++S)
    EXPECT_EQ(Back.Supersteps[S].Updated, R.Supersteps[S].Updated);
}

TEST(Recorder, UnflattenRejectsTruncatedData) {
  RunStats R = runInstrumented(/*Workers=*/2, /*N=*/100, /*StepsMax=*/3);
  std::vector<uint64_t> Flat = observe::flattenStats(R);
  RunStats Back;
  EXPECT_FALSE(observe::unflattenStats(Flat.data(), 4, Back));
  EXPECT_FALSE(observe::unflattenStats(Flat.data(), Flat.size() - 1, Back));
}

TEST(Recorder, DisabledSchedulersRecordNothing) {
  // Null recorder: schedulers must behave exactly as before.
  std::vector<StrandStatus> S(50, StrandStatus::Active);
  int Steps = rt::runSequential(
      S, [&](size_t) { return StrandStatus::Stable; }, 100, nullptr);
  EXPECT_EQ(Steps, 1);
  std::vector<StrandStatus> S2(50, StrandStatus::Active);
  Steps = rt::runParallel(
      S2, [&](size_t) { return StrandStatus::Stable; }, 100, 2,
      rt::DefaultBlockSize, nullptr);
  EXPECT_EQ(Steps, 1);
}

TEST(Recorder, MaxStepsCutoffStillMatchesSpanCount) {
  std::vector<StrandStatus> S(64, StrandStatus::Active);
  Recorder Rec;
  Rec.start(2);
  int Steps = rt::runParallel(
      S, [&](size_t) { return StrandStatus::Active; }, 7, 2, 16, &Rec);
  RunStats R = Rec.take(Steps, 2);
  EXPECT_EQ(R.Steps, 7);
  for (const std::vector<WorkerSpan> &Row : R.Workers)
    EXPECT_EQ(Row.size(), 7u);
}

TEST(Recorder, StartResetsState) {
  Recorder Rec;
  Rec.start(1);
  Rec.beginStep(0);
  WorkerSpan Sp;
  Sp.Updated = 42;
  Rec.commit(0, Sp);
  Rec.start(2); // re-arm: old spans and totals must be gone
  RunStats R = Rec.take(0, 2);
  EXPECT_EQ(R.totalUpdated(), 0u);
  ASSERT_EQ(R.Workers.size(), 2u);
  EXPECT_TRUE(R.Workers[0].empty());
  EXPECT_TRUE(R.Supersteps.empty());
}

} // namespace
} // namespace diderot

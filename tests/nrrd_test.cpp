//===--- tests/nrrd_test.cpp - NRRD I/O tests ------------------------------===//

#include <cstdio>

#include <gtest/gtest.h>

#include "nrrd/nrrd.h"

namespace diderot {
namespace {

Nrrd makeSmallFloat() {
  Nrrd N;
  N.Type = NrrdType::Float;
  N.Sizes = {3, 2};
  N.SpaceDim = 2;
  N.SpaceDirections = {{0.5, 0.0}, {0.0, 0.5}};
  N.SpaceOrigin = {-1.0, -1.0};
  N.Content = "test";
  N.allocate();
  for (size_t I = 0; I < N.numSamples(); ++I)
    N.setSampleFromDouble(I, static_cast<double>(I) * 0.25);
  return N;
}

TEST(Nrrd, TypeSizes) {
  EXPECT_EQ(nrrdTypeSize(NrrdType::UChar), 1u);
  EXPECT_EQ(nrrdTypeSize(NrrdType::Short), 2u);
  EXPECT_EQ(nrrdTypeSize(NrrdType::Float), 4u);
  EXPECT_EQ(nrrdTypeSize(NrrdType::Double), 8u);
}

TEST(Nrrd, SerializeParseRoundTripRaw) {
  Nrrd N = makeSmallFloat();
  Result<std::string> S = nrrdSerialize(N, "raw");
  ASSERT_TRUE(S.isOk()) << S.message();
  Result<Nrrd> Back = nrrdParse(*S);
  ASSERT_TRUE(Back.isOk()) << Back.message();
  EXPECT_EQ(Back->Type, NrrdType::Float);
  EXPECT_EQ(Back->Sizes, N.Sizes);
  EXPECT_EQ(Back->SpaceDim, 2);
  ASSERT_EQ(Back->SpaceDirections.size(), 2u);
  EXPECT_DOUBLE_EQ(Back->SpaceDirections[0][0], 0.5);
  ASSERT_EQ(Back->SpaceOrigin.size(), 2u);
  EXPECT_DOUBLE_EQ(Back->SpaceOrigin[0], -1.0);
  for (size_t I = 0; I < N.numSamples(); ++I)
    EXPECT_DOUBLE_EQ(Back->sampleAsDouble(I), N.sampleAsDouble(I));
}

TEST(Nrrd, SerializeParseRoundTripAscii) {
  Nrrd N = makeSmallFloat();
  Result<std::string> S = nrrdSerialize(N, "ascii");
  ASSERT_TRUE(S.isOk());
  Result<Nrrd> Back = nrrdParse(*S);
  ASSERT_TRUE(Back.isOk()) << Back.message();
  for (size_t I = 0; I < N.numSamples(); ++I)
    EXPECT_DOUBLE_EQ(Back->sampleAsDouble(I), N.sampleAsDouble(I));
}

TEST(Nrrd, RoundTripEverySampleType) {
  for (NrrdType T : {NrrdType::UChar, NrrdType::Short, NrrdType::UShort,
                     NrrdType::Int, NrrdType::UInt, NrrdType::Float,
                     NrrdType::Double}) {
    Nrrd N;
    N.Type = T;
    N.Sizes = {4};
    N.allocate();
    N.setSampleFromDouble(0, 0);
    N.setSampleFromDouble(1, 1);
    N.setSampleFromDouble(2, 100);
    N.setSampleFromDouble(3, 7);
    Result<std::string> S = nrrdSerialize(N, "raw");
    ASSERT_TRUE(S.isOk());
    Result<Nrrd> Back = nrrdParse(*S);
    ASSERT_TRUE(Back.isOk()) << Back.message();
    EXPECT_EQ(Back->Type, T);
    EXPECT_DOUBLE_EQ(Back->sampleAsDouble(2), 100.0);
  }
}

TEST(Nrrd, IntegerClamping) {
  Nrrd N;
  N.Type = NrrdType::UChar;
  N.Sizes = {2};
  N.allocate();
  N.setSampleFromDouble(0, 300.0);
  N.setSampleFromDouble(1, -5.0);
  EXPECT_DOUBLE_EQ(N.sampleAsDouble(0), 255.0);
  EXPECT_DOUBLE_EQ(N.sampleAsDouble(1), 0.0);
}

TEST(Nrrd, FileRoundTrip) {
  Nrrd N = makeSmallFloat();
  std::string Path = ::testing::TempDir() + "/diderot_nrrd_test.nrrd";
  Status S = nrrdWrite(N, Path);
  ASSERT_TRUE(S.isOk()) << S.message();
  Result<Nrrd> Back = nrrdRead(Path);
  ASSERT_TRUE(Back.isOk()) << Back.message();
  EXPECT_EQ(Back->Sizes, N.Sizes);
  std::remove(Path.c_str());
}

TEST(Nrrd, MissingMagicRejected) {
  Result<Nrrd> R = nrrdParse("HELLO\n\n");
  EXPECT_FALSE(R.isOk());
}

TEST(Nrrd, TruncatedDataRejected) {
  std::string S = "NRRD0004\ntype: float\ndimension: 1\nsizes: 10\n"
                  "encoding: raw\nendian: little\n\nshort";
  Result<Nrrd> R = nrrdParse(S);
  ASSERT_FALSE(R.isOk());
  EXPECT_NE(R.message().find("truncated"), std::string::npos);
}

TEST(Nrrd, UnsupportedEncodingRejected) {
  std::string S = "NRRD0004\ntype: float\ndimension: 1\nsizes: 2\n"
                  "encoding: gzip\n\nxx";
  EXPECT_FALSE(nrrdParse(S).isOk());
}

TEST(Nrrd, UnsupportedTypeRejected) {
  std::string S = "NRRD0004\ntype: block\ndimension: 1\nsizes: 2\n"
                  "encoding: raw\n\nxx";
  EXPECT_FALSE(nrrdParse(S).isOk());
}

TEST(Nrrd, TypeAliasesAccepted) {
  std::string S = "NRRD0004\ntype: uint8\ndimension: 1\nsizes: 2\n"
                  "encoding: raw\nendian: little\n\nab";
  Result<Nrrd> R = nrrdParse(S);
  ASSERT_TRUE(R.isOk()) << R.message();
  EXPECT_EQ(R->Type, NrrdType::UChar);
  EXPECT_DOUBLE_EQ(R->sampleAsDouble(0), 'a');
}

TEST(Nrrd, CommentsAndKeyValuesIgnored) {
  std::string S = "NRRD0004\n# a comment\ntype: uint8\ndimension: 1\n"
                  "sizes: 1\nfoo:=bar\nencoding: raw\nendian: little\n\nz";
  Result<Nrrd> R = nrrdParse(S);
  ASSERT_TRUE(R.isOk()) << R.message();
}

TEST(Nrrd, NamedSpaceSetsDimension) {
  std::string S =
      "NRRD0005\ntype: uint8\ndimension: 3\nsizes: 2 2 2\n"
      "space: left-posterior-superior\n"
      "space directions: (1,0,0) (0,1,0) (0,0,1)\n"
      "space origin: (0,0,0)\nencoding: raw\nendian: little\n\nabcdefgh";
  Result<Nrrd> R = nrrdParse(S);
  ASSERT_TRUE(R.isOk()) << R.message();
  EXPECT_EQ(R->SpaceDim, 3);
  ASSERT_EQ(R->SpaceDirections.size(), 3u);
}

TEST(Nrrd, AsciiDataTruncatedRejected) {
  std::string S = "NRRD0004\ntype: float\ndimension: 1\nsizes: 3\n"
                  "encoding: ascii\n\n1.0 2.0";
  EXPECT_FALSE(nrrdParse(S).isOk());
}

TEST(Nrrd, NoneDirectionsSkipped) {
  // A 2-vector field over a 2-D grid: first axis is components.
  std::string S =
      "NRRD0005\ntype: uint8\ndimension: 3\nsizes: 2 2 2\n"
      "space dimension: 2\n"
      "space directions: none (1,0) (0,1)\n"
      "encoding: raw\nendian: little\n\nabcdefgh";
  Result<Nrrd> R = nrrdParse(S);
  ASSERT_TRUE(R.isOk()) << R.message();
  EXPECT_EQ(R->SpaceDim, 2);
  EXPECT_EQ(R->SpaceDirections.size(), 2u);
}

} // namespace
} // namespace diderot

//===--- tests/serve_trace_test.cpp - end-to-end request tracing -------------===//
//
// Part of the Diderot-C++ reproduction (PLDI 2012).
//
// The daemon's tracing surface (docs/TRACING.md): every job's span tree is
// retrievable at GET /jobs/<id>/trace with the coarse spans the acceptance
// bar names (queue-wait, compile-or-cache-hit, instantiate, run); incoming
// W3C traceparent headers join the caller's trace; X-Diderot-Trace is
// echoed on every response; GET /trace merges the sampled ring;
// GET /healthz reports liveness; /metrics histograms carry trace-id
// exemplars; and concurrent jobs never bleed spans into each other's
// trees. All cases use the interp engine (no host compiler), so the whole
// binary runs under TSan as serve_trace_tsan.
//
//===----------------------------------------------------------------------===//

#include "serve/daemon.h"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

#include <gtest/gtest.h>

#include "serve/compile_cache.h"
#include "support/trace.h"

namespace diderot {
namespace {

const char *ProgA = R"(
input real bias = 0.0;
strand S (int i) {
  output real v = real(i);
  update { v = v * 2.0 + bias; stabilize; }
}
initially [ S(i) | i in 0 .. 7 ];
)";

const char *ProgB = R"(
input real bias = 0.0;
strand S (int i) {
  output real v = real(i);
  update { v = v * 3.0 + bias; stabilize; }
}
initially [ S(i) | i in 0 .. 7 ];
)";

std::string tempDir(const char *Tag) {
  auto P = std::filesystem::temp_directory_path() /
           (std::string("diderot-serve-trace-test-") + Tag + "-" +
            std::to_string(::getpid()));
  std::filesystem::create_directories(P);
  return P.string();
}

struct Reply {
  int Code = 0;
  std::string Body;
  std::string Raw;

  /// Value of response header \p Name ("" when absent).
  std::string header(const std::string &Name) const {
    std::string Needle = "\r\n" + Name + ": ";
    size_t P = Raw.find(Needle);
    if (P == std::string::npos)
      return "";
    P += Needle.size();
    size_t E = Raw.find("\r\n", P);
    return Raw.substr(P, E - P);
  }
};

Reply httpDo(int Port, const std::string &Method, const std::string &Path,
             const std::string &Body = "",
             const std::vector<std::pair<std::string, std::string>> &Headers =
                 {}) {
  Reply Out;
  int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (Fd < 0)
    return Out;
  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  Addr.sin_port = htons(static_cast<uint16_t>(Port));
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0) {
    ::close(Fd);
    return Out;
  }
  std::string Wire = Method + " " + Path + " HTTP/1.1\r\n";
  for (const auto &[K, V] : Headers)
    Wire += K + ": " + V + "\r\n";
  Wire += "Content-Length: " + std::to_string(Body.size()) + "\r\n\r\n";
  Wire += Body;
  size_t Off = 0;
  while (Off < Wire.size()) {
    ssize_t N = ::send(Fd, Wire.data() + Off, Wire.size() - Off, 0);
    if (N <= 0)
      break;
    Off += static_cast<size_t>(N);
  }
  char Buf[8192];
  ssize_t N;
  while ((N = ::recv(Fd, Buf, sizeof(Buf), 0)) > 0)
    Out.Raw.append(Buf, static_cast<size_t>(N));
  ::close(Fd);
  if (Out.Raw.size() > 12)
    Out.Code = std::atoi(Out.Raw.c_str() + 9);
  size_t HdrEnd = Out.Raw.find("\r\n\r\n");
  if (HdrEnd != std::string::npos)
    Out.Body = Out.Raw.substr(HdrEnd + 4);
  return Out;
}

std::string jsonField(const std::string &Json, const std::string &Key) {
  size_t P = Json.find("\"" + Key + "\":");
  if (P == std::string::npos)
    return "";
  P += Key.size() + 3;
  if (P < Json.size() && Json[P] == '"') {
    size_t E = Json.find('"', P + 1);
    return Json.substr(P + 1, E - P - 1);
  }
  size_t E = Json.find_first_of(",}", P);
  return Json.substr(P, E - P);
}

/// Submit a run, wait for a terminal state, return the accept Reply and the
/// final job JSON through the out-params.
void runAndWait(int Port, const std::string &Src, Reply &Accept,
                std::string &FinalJson,
                std::vector<std::pair<std::string, std::string>> Headers =
                    {}) {
  Accept = httpDo(Port, "POST", "/run", Src, Headers);
  ASSERT_EQ(Accept.Code, 202) << Accept.Raw;
  std::string Id = jsonField(Accept.Body, "job");
  ASSERT_FALSE(Id.empty());
  for (int Tries = 0; Tries < 600; ++Tries) {
    Reply J = httpDo(Port, "GET", "/jobs/" + Id);
    ASSERT_EQ(J.Code, 200);
    std::string State = jsonField(J.Body, "state");
    if (State == "done" || State == "failed") {
      FinalJson = J.Body;
      return;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  FAIL() << "job " << Id << " did not finish";
}

serve::DaemonOptions interpOptions(const std::string &CacheDir) {
  serve::DaemonOptions O;
  O.Compile.Eng = Engine::Interp;
  O.Compile.WorkDir = CacheDir;
  return O;
}

//===----------------------------------------------------------------------===//
// The acceptance bar: every job's trace is retrievable with the core spans
//===----------------------------------------------------------------------===//

TEST(ServeTrace, EveryJobTraceRetrievableEvenUnsampled) {
  serve::DaemonOptions O = interpOptions(tempDir("every"));
  O.TraceSampleN = 0; // detailed sampling off — coarse spans must remain
  serve::Daemon D;
  ASSERT_TRUE(D.start(O).isOk());

  Reply Accept;
  std::string Json;
  runAndWait(D.port(), ProgA, Accept, Json);
  EXPECT_EQ(jsonField(Json, "state"), "done") << Json;

  std::string TraceId = jsonField(Json, "trace");
  ASSERT_EQ(TraceId.size(), 32u) << Json;
  EXPECT_EQ(Accept.header("X-Diderot-Trace"), TraceId);

  std::string Id = jsonField(Json, "job");
  Reply T = httpDo(D.port(), "GET", "/jobs/" + Id + "/trace");
  ASSERT_EQ(T.Code, 200) << T.Raw;
  // The spans the acceptance criterion names, under the job's one trace id.
  EXPECT_NE(T.Body.find("\"traceId\":\"" + TraceId + "\""),
            std::string::npos)
      << T.Body;
  EXPECT_NE(T.Body.find("\"queue-wait\""), std::string::npos) << T.Body;
  bool CompileOrHit =
      T.Body.find("\"compile\"") != std::string::npos ||
      T.Body.find("\"cache-hit\"") != std::string::npos;
  EXPECT_TRUE(CompileOrHit) << T.Body;
  EXPECT_NE(T.Body.find("\"instantiate\""), std::string::npos);
  EXPECT_NE(T.Body.find("\"run\""), std::string::npos);
  // Unsampled: no per-superstep Recorder spans.
  EXPECT_EQ(T.Body.find("superstep"), std::string::npos);
  EXPECT_EQ(jsonField(T.Body, "sampled"), "false");
  D.stop();
}

TEST(ServeTrace, SampledJobCarriesSuperstepSpans) {
  serve::DaemonOptions O = interpOptions(tempDir("sampled"));
  O.TraceSampleN = 1; // every job
  serve::Daemon D;
  ASSERT_TRUE(D.start(O).isOk());

  Reply Accept;
  std::string Json;
  runAndWait(D.port(), ProgA, Accept, Json);
  std::string Id = jsonField(Json, "job");
  Reply T = httpDo(D.port(), "GET", "/jobs/" + Id + "/trace");
  ASSERT_EQ(T.Code, 200);
  EXPECT_EQ(jsonField(T.Body, "sampled"), "true");
  EXPECT_NE(T.Body.find("superstep"), std::string::npos)
      << "sampled jobs attach Recorder spans under the run span: " << T.Body;
  D.stop();
}

TEST(ServeTrace, TraceConflictUntilFinished) {
  serve::DaemonOptions O = interpOptions(tempDir("conflict"));
  serve::Daemon D;
  ASSERT_TRUE(D.start(O).isOk());
  Reply T = httpDo(D.port(), "GET", "/jobs/j-999/trace");
  EXPECT_EQ(T.Code, 404);
  D.stop();
}

//===----------------------------------------------------------------------===//
// Traceparent join and header echo
//===----------------------------------------------------------------------===//

TEST(ServeTrace, JoinsIncomingTraceparent) {
  serve::DaemonOptions O = interpOptions(tempDir("join"));
  O.TraceSampleN = 0; // incoming sampled flag alone must arm sampling
  serve::Daemon D;
  ASSERT_TRUE(D.start(O).isOk());

  const std::string CallerTrace = "0af7651916cd43dd8448eb211c80319c";
  Reply Accept;
  std::string Json;
  runAndWait(D.port(), ProgA, Accept, Json,
             {{"traceparent", "00-" + CallerTrace +
                                  "-b7ad6b7169203331-01"}});
  // The job joined the caller's trace instead of minting a fresh one.
  EXPECT_EQ(jsonField(Json, "trace"), CallerTrace) << Json;
  EXPECT_EQ(Accept.header("X-Diderot-Trace"), CallerTrace);
  // Sampled flag propagated: the job landed in the /trace ring.
  Reply Merged = httpDo(D.port(), "GET", "/trace");
  ASSERT_EQ(Merged.Code, 200);
  EXPECT_NE(Merged.Body.find(CallerTrace), std::string::npos) << Merged.Body;
  D.stop();
}

TEST(ServeTrace, EchoesTraceOnErrorsToo) {
  serve::DaemonOptions O = interpOptions(tempDir("echo400"));
  serve::Daemon D;
  ASSERT_TRUE(D.start(O).isOk());
  Reply R = httpDo(D.port(), "POST", "/run", "");
  EXPECT_EQ(R.Code, 400);
  EXPECT_EQ(R.header("X-Diderot-Trace").size(), 32u) << R.Raw;
  Reply C = httpDo(D.port(), "POST", "/compile", "");
  EXPECT_EQ(C.Code, 400);
  EXPECT_EQ(C.header("X-Diderot-Trace").size(), 32u);
  D.stop();
}

TEST(ServeTrace, CompileEchoesTrace) {
  serve::DaemonOptions O = interpOptions(tempDir("compile"));
  serve::Daemon D;
  ASSERT_TRUE(D.start(O).isOk());
  Reply R = httpDo(D.port(), "POST", "/compile", ProgA);
  ASSERT_EQ(R.Code, 200) << R.Raw;
  std::string Hex = R.header("X-Diderot-Trace");
  EXPECT_EQ(Hex.size(), 32u);
  EXPECT_EQ(jsonField(R.Body, "trace"), Hex);
  D.stop();
}

//===----------------------------------------------------------------------===//
// /trace, /healthz, and exemplars
//===----------------------------------------------------------------------===//

TEST(ServeTrace, MergedTraceHoldsRecentJobs) {
  serve::DaemonOptions O = interpOptions(tempDir("merged"));
  O.TraceSampleN = 1;
  serve::Daemon D;
  ASSERT_TRUE(D.start(O).isOk());
  Reply Accept;
  std::string JsonA, JsonB;
  runAndWait(D.port(), ProgA, Accept, JsonA);
  runAndWait(D.port(), ProgB, Accept, JsonB);
  Reply Merged = httpDo(D.port(), "GET", "/trace");
  ASSERT_EQ(Merged.Code, 200);
  EXPECT_NE(Merged.Body.find(jsonField(JsonA, "trace")), std::string::npos);
  EXPECT_NE(Merged.Body.find(jsonField(JsonB, "trace")), std::string::npos);
  EXPECT_NE(Merged.Body.find("\"jobs\":2"), std::string::npos)
      << Merged.Body;
  D.stop();
}

TEST(ServeTrace, HealthzReportsReadiness) {
  serve::DaemonOptions O = interpOptions(tempDir("healthz"));
  serve::Daemon D;
  ASSERT_TRUE(D.start(O).isOk());
  Reply H = httpDo(D.port(), "GET", "/healthz");
  ASSERT_EQ(H.Code, 200) << H.Raw;
  EXPECT_EQ(jsonField(H.Body, "status"), "ok");
  EXPECT_EQ(jsonField(H.Body, "queueDepth"), "0");
  EXPECT_EQ(jsonField(H.Body, "jobWorkers"), "2");
  EXPECT_FALSE(jsonField(H.Body, "uptimeMs").empty());
  D.stop();
}

TEST(ServeTrace, MetricsCarryTraceIdExemplars) {
  serve::DaemonOptions O = interpOptions(tempDir("exemplar"));
  O.TraceSampleN = 1;
  serve::Daemon D;
  ASSERT_TRUE(D.start(O).isOk());
  Reply Accept;
  std::string Json;
  runAndWait(D.port(), ProgA, Accept, Json);
  Reply M = httpDo(D.port(), "GET", "/metrics");
  ASSERT_EQ(M.Code, 200);
  // The run histogram's worst bucket names the job that produced it.
  size_t P = M.Body.find("diderot_daemon_run_seconds_bucket");
  ASSERT_NE(P, std::string::npos);
  EXPECT_NE(M.Body.find("# {trace_id=\"" + jsonField(Json, "trace") + "\"}",
                        P),
            std::string::npos)
      << M.Body.substr(P, 2000);
  D.stop();
}

TEST(ServeTrace, SlowJobsArePromotedUnsampled) {
  serve::DaemonOptions O = interpOptions(tempDir("slow"));
  O.TraceSampleN = 0; // never sampled...
  O.SlowJobNs = 1;    // ...but everything is "slow", so everything promotes
  serve::Daemon D;
  ASSERT_TRUE(D.start(O).isOk());
  Reply Accept;
  std::string Json;
  runAndWait(D.port(), ProgA, Accept, Json);
  Reply Merged = httpDo(D.port(), "GET", "/trace");
  ASSERT_EQ(Merged.Code, 200);
  EXPECT_NE(Merged.Body.find(jsonField(Json, "trace")), std::string::npos)
      << Merged.Body;
  D.stop();
}

//===----------------------------------------------------------------------===//
// Isolation: concurrent jobs never share spans
//===----------------------------------------------------------------------===//

TEST(ServeTrace, ConcurrentJobsDoNotBleedSpans) {
  serve::DaemonOptions O = interpOptions(tempDir("bleed"));
  O.TraceSampleN = 1; // every job fully traced — maximal bleed opportunity
  O.JobWorkers = 4;
  serve::Daemon D;
  ASSERT_TRUE(D.start(O).isOk());

  constexpr int NumThreads = 6, PerThread = 3;
  std::mutex Mu;
  std::vector<std::pair<std::string, std::string>> Done; // (job, trace)
  std::vector<std::thread> Ts;
  for (int T = 0; T < NumThreads; ++T)
    Ts.emplace_back([&, T] {
      for (int I = 0; I < PerThread; ++I) {
        Reply Accept;
        std::string Json;
        runAndWait(D.port(), T % 2 ? ProgA : ProgB, Accept, Json);
        if (jsonField(Json, "state") != "done")
          continue;
        std::lock_guard<std::mutex> G(Mu);
        Done.emplace_back(jsonField(Json, "job"), jsonField(Json, "trace"));
      }
    });
  for (auto &T : Ts)
    T.join();
  ASSERT_EQ(Done.size(), static_cast<size_t>(NumThreads * PerThread));

  // Pairwise-distinct trace ids.
  std::set<std::string> Traces;
  for (const auto &[Job, Trace] : Done)
    Traces.insert(Trace);
  EXPECT_EQ(Traces.size(), Done.size()) << "trace ids must be unique";

  // Each tree references exactly its own trace id, never a sibling's, and
  // carries the full coarse-span set.
  for (const auto &[Job, Trace] : Done) {
    Reply T = httpDo(D.port(), "GET", "/jobs/" + Job + "/trace");
    ASSERT_EQ(T.Code, 200) << Job;
    EXPECT_NE(T.Body.find("\"traceId\":\"" + Trace + "\""),
              std::string::npos);
    for (const auto &[OtherJob, OtherTrace] : Done)
      if (OtherTrace != Trace)
        EXPECT_EQ(T.Body.find(OtherTrace), std::string::npos)
            << "job " << Job << " leaked spans from " << OtherJob;
    for (const char *Span : {"queue-wait", "instantiate", "run"})
      EXPECT_NE(T.Body.find(Span), std::string::npos)
          << Job << " missing " << Span;
  }
  D.stop();
}

} // namespace
} // namespace diderot

//===--- tests/metrics_test.cpp - metrics registry + exposition tests --------===//
//
// The v5 observability layer: log-linear bucket geometry, sharded histogram
// merging, the flat wire format, Prometheus/JSON exposition, the v4
// fallback (deriveMetrics), live scraping concurrently with a parallel run
// (also compiled into the TSan suite as metrics_tsan), the embedded HTTP
// endpoint, the RSS sampler, interp/native counter parity, and golden-file
// snapshots of both exposition formats.
//
//===----------------------------------------------------------------------===//

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "driver/driver.h"
#include "observe/observe.h"
#include "observe/recorder.h"
#include "runtime/scheduler.h"

#if defined(__unix__) || defined(__APPLE__)
#define DIDEROT_TEST_SOCKETS 1
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

#ifndef DIDEROT_REPO_DIR
#define DIDEROT_REPO_DIR "."
#endif

namespace diderot {
namespace {

using namespace observe;

//===----------------------------------------------------------------------===//
// Bucket geometry
//===----------------------------------------------------------------------===//

TEST(HistBuckets, IndexIsMonotoneAndInvertsBounds) {
  EXPECT_EQ(histBucketIndex(0), 0);
  EXPECT_EQ(histBucketIndex(~uint64_t(0)), NumHistBuckets - 1);
  int Prev = -1;
  for (uint64_t V : {uint64_t(0), uint64_t(1), uint64_t(7), uint64_t(8),
                     uint64_t(9), uint64_t(100), uint64_t(1000),
                     uint64_t(1) << 20, (uint64_t(1) << 20) + 1,
                     uint64_t(1) << 40, uint64_t(1) << 62, ~uint64_t(0)}) {
    int Idx = histBucketIndex(V);
    EXPECT_GE(Idx, Prev) << "not monotone at " << V;
    Prev = Idx;
    EXPECT_GE(V, histBucketLo(Idx));
    EXPECT_LE(V, histBucketHi(Idx));
  }
}

TEST(HistBuckets, BucketsTileTheRangeContiguously) {
  for (int Idx = 0; Idx < NumHistBuckets; ++Idx) {
    EXPECT_EQ(histBucketIndex(histBucketLo(Idx)), Idx);
    EXPECT_EQ(histBucketIndex(histBucketHi(Idx)), Idx);
    EXPECT_LE(histBucketLo(Idx), histBucketHi(Idx));
    if (Idx + 1 < NumHistBuckets) {
      EXPECT_EQ(histBucketHi(Idx) + 1, histBucketLo(Idx + 1));
    }
  }
  EXPECT_EQ(histBucketHi(NumHistBuckets - 1), ~uint64_t(0));
}

//===----------------------------------------------------------------------===//
// Histogram recording, merging, quantiles
//===----------------------------------------------------------------------===//

TEST(Histogram, QuantilesWithinBucketResolution) {
  Histogram H;
  H.start(0);
  for (uint64_t V = 1; V <= 1000; ++V)
    H.record(V);
  HistData D;
  H.snapshot(D);
  EXPECT_EQ(D.Count, 1000u);
  EXPECT_EQ(D.Min, 1u);
  EXPECT_EQ(D.Max, 1000u);
  EXPECT_DOUBLE_EQ(D.mean(), 500.5);
  // Log-linear buckets bound the relative quantile error at 2^-HistSubBits.
  EXPECT_NEAR(D.quantile(0.5), 500.0, 500.0 * 0.13);
  EXPECT_NEAR(D.quantile(0.9), 900.0, 900.0 * 0.13);
  EXPECT_NEAR(D.quantile(0.99), 990.0, 990.0 * 0.13);
  EXPECT_DOUBLE_EQ(D.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(D.quantile(1.0), 1000.0);
}

TEST(Histogram, ShardedMergeMatchesDirectRecording) {
  Histogram Sharded, Direct;
  Sharded.start(2);
  Direct.start(0);
  for (uint64_t V = 1; V <= 100; ++V) {
    Sharded.cell(static_cast<int>(V % 2)).record(V * 7);
    Direct.record(V * 7);
  }
  Sharded.mergeCells();
  HistData A, B;
  Sharded.snapshot(A);
  Direct.snapshot(B);
  EXPECT_EQ(A.Count, B.Count);
  EXPECT_EQ(A.Sum, B.Sum);
  EXPECT_EQ(A.Min, B.Min);
  EXPECT_EQ(A.Max, B.Max);
  EXPECT_EQ(A.Buckets, B.Buckets);
  // Merging clears the cells: a second merge must change nothing.
  Sharded.mergeCells();
  HistData A2;
  Sharded.snapshot(A2);
  EXPECT_EQ(A2.Count, A.Count);
}

TEST(Histogram, EmptySnapshotReportsZeroMin) {
  Histogram H;
  H.start(1);
  HistData D;
  H.snapshot(D);
  EXPECT_EQ(D.Count, 0u);
  EXPECT_EQ(D.Min, 0u);
  EXPECT_EQ(D.Max, 0u);
  EXPECT_TRUE(D.Buckets.empty());
  EXPECT_DOUBLE_EQ(D.quantile(0.5), 0.0);
}

//===----------------------------------------------------------------------===//
// Flat wire format (ddr_metrics_read, ABI v5)
//===----------------------------------------------------------------------===//

MetricsData sampleData() {
  Metrics M;
  M.start(3, /*Arm=*/true);
  M.counter(McUpdated).add(507);
  M.counter(McSupersteps).add(10);
  M.gauge(MgLiveStrands).set(42);
  M.gauge(MgProcessRss).set(-1); // sign must survive the uint64 wire
  for (uint64_t V : {5u, 80u, 80u, 3000u, 1u << 20})
    M.hist(MhStepWallNs).record(V);
  M.hist(MhUpdatesPerStep).record(144);
  return M.snapshot();
}

TEST(MetricsFlat, RoundTripPreservesEverything) {
  MetricsData D = sampleData();
  std::vector<uint64_t> Flat = flattenMetrics(D);
  MetricsData R;
  ASSERT_TRUE(unflattenMetrics(Flat.data(), Flat.size(), R));
  EXPECT_EQ(R.Enabled, D.Enabled);
  for (int I = 0; I < NumMetricCounters; ++I)
    EXPECT_EQ(R.Counters[I], D.Counters[I]) << "counter " << I;
  for (int I = 0; I < NumMetricGauges; ++I)
    EXPECT_EQ(R.Gauges[I], D.Gauges[I]) << "gauge " << I;
  for (int I = 0; I < NumMetricHists; ++I) {
    EXPECT_EQ(R.Hists[I].Count, D.Hists[I].Count) << "hist " << I;
    EXPECT_EQ(R.Hists[I].Sum, D.Hists[I].Sum);
    EXPECT_EQ(R.Hists[I].Min, D.Hists[I].Min);
    EXPECT_EQ(R.Hists[I].Max, D.Hists[I].Max);
    EXPECT_EQ(R.Hists[I].Buckets, D.Hists[I].Buckets);
  }
}

TEST(MetricsFlat, TruncatedBuffersAreRejected) {
  std::vector<uint64_t> Flat = flattenMetrics(sampleData());
  MetricsData R;
  EXPECT_FALSE(unflattenMetrics(nullptr, 0, R));
  EXPECT_FALSE(unflattenMetrics(Flat.data(), 2, R));
  EXPECT_FALSE(unflattenMetrics(Flat.data(), MetricsHeaderWords, R));
  EXPECT_FALSE(unflattenMetrics(Flat.data(), Flat.size() - 1, R));
}

//===----------------------------------------------------------------------===//
// Recorder folding through the real schedulers
//===----------------------------------------------------------------------===//

/// Armed run: strand I stabilizes after (I % StepsMax) + 1 updates.
rt::RunStats runArmed(int Workers, size_t N, int StepsMax,
                      int Block = rt::DefaultBlockSize) {
  std::vector<rt::StrandStatus> S(N, rt::StrandStatus::Active);
  std::vector<std::atomic<int>> Count(N);
  Recorder Rec;
  Rec.start(Workers <= 0 ? 0 : Workers, /*Lifecycle=*/false,
            /*CollectMetrics=*/true);
  auto Update = [&](size_t I) {
    int C = ++Count[I];
    return C > static_cast<int>(I) % StepsMax ? rt::StrandStatus::Stable
                                              : rt::StrandStatus::Active;
  };
  int Steps = Workers <= 0
                  ? rt::runSequential(S, Update, 100, &Rec)
                  : rt::runParallel(S, Update, 100, Workers, Block, &Rec);
  return Rec.take(Steps, Workers <= 0 ? 0 : Workers);
}

TEST(RecorderMetrics, CountersAreViewsOverSpanTotals) {
  for (int Workers : {0, 3}) {
    rt::RunStats R = runArmed(Workers, 200, 5);
    ASSERT_TRUE(R.Metrics.Enabled);
    EXPECT_EQ(R.Metrics.Counters[McUpdated], R.Totals.Updated);
    EXPECT_EQ(R.Metrics.Counters[McStabilized], R.Totals.Stabilized);
    EXPECT_EQ(R.Metrics.Counters[McDied], R.Totals.Died);
    EXPECT_EQ(R.Metrics.Counters[McBlocksClaimed], R.Totals.BlocksClaimed);
    EXPECT_EQ(R.Metrics.Counters[McLockAcquires], R.Totals.LockAcquires);
    EXPECT_EQ(R.Metrics.Counters[McBarrierWaits], R.Totals.BarrierWaits);
    EXPECT_EQ(R.Metrics.Counters[McSupersteps],
              static_cast<uint64_t>(R.Steps));
  }
}

TEST(RecorderMetrics, SuperstepHistogramsFoldOnePerStep) {
  rt::RunStats R = runArmed(/*Workers=*/2, 300, 5, /*Block=*/64);
  ASSERT_TRUE(R.Metrics.Enabled);
  EXPECT_EQ(R.Metrics.Hists[MhStepWallNs].Count,
            static_cast<uint64_t>(R.Steps));
  EXPECT_EQ(R.Metrics.Hists[MhImbalanceNs].Count,
            static_cast<uint64_t>(R.Steps));
  EXPECT_EQ(R.Metrics.Hists[MhUpdatesPerStep].Count,
            static_cast<uint64_t>(R.Steps));
  EXPECT_EQ(R.Metrics.Hists[MhUpdatesPerStep].Sum, R.Totals.Updated);
  // Every work-list lock acquisition was individually timed.
  EXPECT_EQ(R.Metrics.Hists[MhClaimNs].Count, R.Totals.LockAcquires);
  // Gauges settle at quiescence: no live strands, empty work list.
  EXPECT_EQ(R.Metrics.Gauges[MgLiveStrands], 0);
  EXPECT_EQ(R.Metrics.Gauges[MgWorklistDepth], 0);
  EXPECT_EQ(R.Metrics.Gauges[MgWorkers], 2);
}

TEST(RecorderMetrics, UnarmedRunCarriesNoMetrics) {
  std::vector<rt::StrandStatus> S(50, rt::StrandStatus::Active);
  Recorder Rec;
  Rec.start(2); // stats only, metrics unarmed
  int Steps = rt::runParallel(
      S, [&](size_t) { return rt::StrandStatus::Stable; }, 100, 2,
      rt::DefaultBlockSize, &Rec);
  rt::RunStats R = Rec.take(Steps, 2);
  EXPECT_FALSE(R.Metrics.Enabled);
  EXPECT_EQ(R.Metrics.Hists[MhStepWallNs].Count, 0u);
  // Counter views still back the legacy totals.
  EXPECT_EQ(R.Totals.Stabilized, 50u);
}

//===----------------------------------------------------------------------===//
// The v4 fallback: metrics derived from spans
//===----------------------------------------------------------------------===//

TEST(DeriveMetrics, RebuildsCountersAndStepHistogramsFromSpans) {
  // Stats-collecting run without the registry armed — what a v4 .so yields.
  std::vector<rt::StrandStatus> S(200, rt::StrandStatus::Active);
  std::vector<std::atomic<int>> Count(S.size());
  Recorder Rec;
  Rec.start(2);
  int Steps = rt::runParallel(
      S,
      [&](size_t I) {
        return ++Count[I] > static_cast<int>(I) % 4 ? rt::StrandStatus::Stable
                                                    : rt::StrandStatus::Active;
      },
      100, 2, 64, &Rec);
  rt::RunStats R = Rec.take(Steps, 2);
  ASSERT_FALSE(R.Metrics.Enabled);

  MetricsData D = deriveMetrics(R);
  EXPECT_TRUE(D.Enabled);
  EXPECT_EQ(D.Counters[McUpdated], R.Totals.Updated);
  EXPECT_EQ(D.Counters[McBlocksClaimed], R.Totals.BlocksClaimed);
  EXPECT_EQ(D.Counters[McSupersteps], R.Supersteps.size());
  EXPECT_EQ(D.Hists[MhStepWallNs].Count, R.Supersteps.size());
  EXPECT_EQ(D.Hists[MhUpdatesPerStep].Sum, R.Totals.Updated);
  // Spans carry no per-claim timing: that histogram must stay empty.
  EXPECT_EQ(D.Hists[MhClaimNs].Count, 0u);
}

//===----------------------------------------------------------------------===//
// Prometheus exposition: a scrape parser round-trips it
//===----------------------------------------------------------------------===//

/// Minimal Prometheus text parser: TYPE per metric, samples with an
/// optional {le="..."} label.
struct PromScrape {
  std::map<std::string, std::string> Types;
  std::map<std::string, double> Scalars;
  std::map<std::string, std::vector<std::pair<std::string, double>>> Buckets;
  bool Ok = true;

  explicit PromScrape(const std::string &Text) {
    std::istringstream In(Text);
    std::string Line;
    while (std::getline(In, Line)) {
      if (Line.empty())
        continue;
      if (Line[0] == '#') {
        std::istringstream LS(Line);
        std::string Hash, What, Name, Rest;
        LS >> Hash >> What >> Name;
        if (What == "TYPE") {
          LS >> Rest;
          if (Types.count(Name)) { // one TYPE per metric
            Ok = false;
            return;
          }
          Types[Name] = Rest;
        }
        continue;
      }
      size_t Brace = Line.find('{');
      size_t Space = Line.rfind(' ');
      if (Space == std::string::npos) {
        Ok = false;
        return;
      }
      double V = std::strtod(Line.c_str() + Space + 1, nullptr);
      if (Brace != std::string::npos && Brace < Space) {
        std::string Name = Line.substr(0, Brace);
        size_t LeQ = Line.find("le=\"", Brace);
        size_t LeEnd = LeQ == std::string::npos
                           ? std::string::npos
                           : Line.find('"', LeQ + 4);
        if (LeEnd == std::string::npos) {
          Ok = false;
          return;
        }
        Buckets[Name].emplace_back(Line.substr(LeQ + 4, LeEnd - LeQ - 4), V);
      } else {
        Scalars[Line.substr(0, Space)] = V;
      }
    }
  }
};

TEST(Prometheus, ScrapeRoundTripsTypesBucketsAndTotals) {
  rt::RunStats R = runArmed(/*Workers=*/2, 300, 5, /*Block=*/64);
  std::string Text = prometheusText(R.Metrics);
  PromScrape P(Text);
  ASSERT_TRUE(P.Ok) << Text;

  for (int I = 0; I < NumMetricCounters; ++I) {
    const MetricDesc &Dc = counterDesc(I);
    EXPECT_EQ(P.Types[Dc.PromName], "counter");
    ASSERT_TRUE(P.Scalars.count(Dc.PromName)) << Dc.PromName;
    EXPECT_DOUBLE_EQ(P.Scalars[Dc.PromName],
                     static_cast<double>(R.Metrics.Counters[I]));
  }
  for (int I = 0; I < NumMetricGauges; ++I)
    EXPECT_EQ(P.Types[gaugeDesc(I).PromName], "gauge");
  for (int I = 0; I < NumMetricHists; ++I) {
    const MetricDesc &Dc = histDesc(I);
    EXPECT_EQ(P.Types[Dc.PromName], "histogram");
    std::string BName = std::string(Dc.PromName) + "_bucket";
    ASSERT_TRUE(P.Buckets.count(BName)) << BName;
    const auto &Bs = P.Buckets[BName];
    // Cumulative `le` buckets: nondecreasing, ending at +Inf == _count.
    double Prev = -1.0;
    for (const auto &[Le, V] : Bs) {
      EXPECT_GE(V, Prev) << BName << " le=" << Le;
      Prev = V;
    }
    ASSERT_FALSE(Bs.empty());
    EXPECT_EQ(Bs.back().first, "+Inf");
    std::string CName = std::string(Dc.PromName) + "_count";
    ASSERT_TRUE(P.Scalars.count(CName));
    EXPECT_DOUBLE_EQ(Bs.back().second, P.Scalars[CName]);
    EXPECT_DOUBLE_EQ(P.Scalars[CName],
                     static_cast<double>(R.Metrics.Hists[I].Count));
  }
}

TEST(Summary, QuantileTableAppearsOnlyWhenMetricsEnabled) {
  rt::RunStats Armed = runArmed(/*Workers=*/2, 200, 5);
  std::string S = formatSummary(Armed);
  EXPECT_NE(S.find("histogram"), std::string::npos) << S;
  EXPECT_NE(S.find("p50"), std::string::npos);
  EXPECT_NE(S.find("p99"), std::string::npos);
  EXPECT_NE(S.find("step wall"), std::string::npos);

  std::vector<rt::StrandStatus> St(20, rt::StrandStatus::Active);
  Recorder Rec;
  Rec.start(0);
  int Steps = rt::runSequential(
      St, [&](size_t) { return rt::StrandStatus::Stable; }, 100, &Rec);
  std::string Plain = formatSummary(Rec.take(Steps, 0));
  EXPECT_EQ(Plain.find("p99"), std::string::npos) << Plain;
}

//===----------------------------------------------------------------------===//
// Live scraping concurrently with a running parallel step (TSan target)
//===----------------------------------------------------------------------===//

TEST(LiveScrape, SnapshotRacesWithNothingDuringParallelRun) {
  std::vector<rt::StrandStatus> S(5000, rt::StrandStatus::Active);
  std::vector<std::atomic<int>> Count(S.size());
  Recorder Rec;
  Rec.start(4, false, /*CollectMetrics=*/true);
  std::atomic<bool> Done{false};
  std::atomic<int> StepsRun{0};
  std::thread Runner([&] {
    int Steps = rt::runParallel(
        S,
        [&](size_t I) {
          return ++Count[I] >= 20 ? rt::StrandStatus::Stable
                                  : rt::StrandStatus::Active;
        },
        100, 4, 256, &Rec);
    StepsRun.store(Steps, std::memory_order_relaxed);
    Done.store(true, std::memory_order_release);
  });
  uint64_t LastSteps = 0;
  while (!Done.load(std::memory_order_acquire)) {
    MetricsData D = Rec.metricsData();
    // Monotone under concurrent scraping: merged totals only ever grow.
    EXPECT_GE(D.Counters[McSupersteps], LastSteps);
    LastSteps = D.Counters[McSupersteps];
    EXPECT_GE(D.Gauges[MgLiveStrands], 0);
  }
  Runner.join();
  // The final superstep folds in take(); only then is the snapshot complete.
  rt::RunStats R = Rec.take(StepsRun.load(std::memory_order_relaxed), 4);
  EXPECT_EQ(R.Metrics.Counters[McSupersteps], 20u);
  EXPECT_EQ(R.Metrics.Counters[McStabilized], 5000u);
}

//===----------------------------------------------------------------------===//
// RSS sampler and HTTP endpoint
//===----------------------------------------------------------------------===//

TEST(RssSampler, ReportsAPositiveResidentSet) {
#if !defined(__linux__)
  GTEST_SKIP() << "/proc/self/statm is Linux-only";
#endif
  EXPECT_GT(readProcessRssBytes(), 0);
  RssSampler Sampler;
  Sampler.start(/*PeriodMs=*/10);
  EXPECT_GT(Sampler.bytes(), 0);
  Sampler.stop();
  Sampler.stop(); // idempotent
}

#if DIDEROT_TEST_SOCKETS
/// Blocking HTTP/1.0 GET against 127.0.0.1:Port; returns the raw response.
std::string httpGet(int Port, const std::string &Path) {
  int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (Fd < 0)
    return "";
  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  Addr.sin_port = htons(static_cast<uint16_t>(Port));
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0) {
    ::close(Fd);
    return "";
  }
  std::string Req = "GET " + Path + " HTTP/1.0\r\n\r\n";
  ::send(Fd, Req.data(), Req.size(), 0);
  std::string Resp;
  char Buf[4096];
  ssize_t N;
  while ((N = ::recv(Fd, Buf, sizeof(Buf), 0)) > 0)
    Resp.append(Buf, static_cast<size_t>(N));
  ::close(Fd);
  return Resp;
}

TEST(MetricsServer, ServesScrapesAndRejectsOtherPaths) {
  rt::RunStats R = runArmed(/*Workers=*/2, 200, 5);
  MetricsData Snapshot = R.Metrics;
  MetricsServer Server;
  Status S = Server.start(0, [&] { return prometheusText(Snapshot); });
  ASSERT_TRUE(S.isOk()) << S.message();
  ASSERT_GT(Server.port(), 0);

  std::string Ok = httpGet(Server.port(), "/metrics");
  EXPECT_NE(Ok.find("200 OK"), std::string::npos) << Ok;
  EXPECT_NE(Ok.find("diderot_supersteps_total"), std::string::npos);
  EXPECT_NE(Ok.find("# TYPE diderot_superstep_wall_seconds histogram"),
            std::string::npos);

  std::string Missing = httpGet(Server.port(), "/nope");
  EXPECT_NE(Missing.find("404"), std::string::npos) << Missing;

  // Several scrapes in a row: one-request-per-connection must not wedge.
  for (int I = 0; I < 3; ++I)
    EXPECT_NE(httpGet(Server.port(), "/metrics").find("200 OK"),
              std::string::npos);
  Server.stop();
  Server.stop(); // idempotent
}

TEST(MetricsServer, LiveScrapeDuringParallelRun) {
  std::vector<rt::StrandStatus> S(5000, rt::StrandStatus::Active);
  std::vector<std::atomic<int>> Count(S.size());
  Recorder Rec;
  Rec.start(2, false, /*CollectMetrics=*/true);
  MetricsServer Server;
  ASSERT_TRUE(
      Server.start(0, [&] { return prometheusText(Rec.metricsData()); })
          .isOk());
  std::thread Runner([&] {
    rt::runParallel(
        S,
        [&](size_t I) {
          return ++Count[I] >= 10 ? rt::StrandStatus::Stable
                                  : rt::StrandStatus::Active;
        },
        100, 2, 256, &Rec);
  });
  std::string Resp = httpGet(Server.port(), "/metrics");
  EXPECT_NE(Resp.find("diderot_live_strands"), std::string::npos);
  Runner.join();
  // After the run the scrape reflects the final folded state.
  std::string Final = httpGet(Server.port(), "/metrics");
  EXPECT_NE(Final.find("diderot_strand_stabilized_total 5000"),
            std::string::npos)
      << Final;
  Server.stop();
}
#endif // DIDEROT_TEST_SOCKETS

//===----------------------------------------------------------------------===//
// Engine-level: interp/native parity and the live instance snapshot
//===----------------------------------------------------------------------===//

// Strand (xi, yi) stabilizes after (xi % 4) + 1 updates; strands with
// yi == 0 die on their first update. Deterministic counter totals.
const char *MixedProgram = R"(
input int res = 12;
strand S (int xi, int yi) {
  int n = 0;
  output real out = 0.0;
  update {
    n += 1;
    out = real(n);
    if (yi == 0) die;
    if (n > xi - (xi / 4) * 4) stabilize;
  }
}
initially [ S(xi, yi) | yi in 0 .. res-1, xi in 0 .. res-1 ];
)";

rt::RunStats runEngine(Engine Eng, int Workers) {
  CompileOptions Opts;
  Opts.Eng = Eng;
  Result<CompiledProgram> CP = compileString(MixedProgram, Opts, "metrics");
  EXPECT_TRUE(CP.isOk()) << CP.message();
  Result<std::unique_ptr<rt::ProgramInstance>> I = CP->instantiate();
  EXPECT_TRUE(I.isOk()) << I.message();
  EXPECT_TRUE((*I)->initialize().isOk());
  rt::RunConfig RC;
  RC.MaxSupersteps = 100;
  RC.NumWorkers = Workers;
  RC.CollectMetrics = true;
  Result<rt::RunStats> R = (*I)->run(RC);
  EXPECT_TRUE(R.isOk()) << R.message();
  return *R;
}

TEST(EngineMetrics, InterpRunCarriesRegistrySnapshot) {
  rt::RunStats R = runEngine(Engine::Interp, 2);
  ASSERT_TRUE(R.Metrics.Enabled);
  EXPECT_EQ(R.Metrics.Counters[McDied], 12u);
  EXPECT_EQ(R.Metrics.Counters[McStabilized], 132u);
  EXPECT_EQ(R.Metrics.Counters[McSupersteps],
            static_cast<uint64_t>(R.Steps));
  EXPECT_EQ(R.Metrics.Hists[MhStepWallNs].Count,
            static_cast<uint64_t>(R.Steps));
}

TEST(EngineMetrics, NativeCountersMatchInterpExactly) {
  rt::RunStats A = runEngine(Engine::Interp, 2);
  rt::RunStats B = runEngine(Engine::Native, 2);
  ASSERT_TRUE(A.Metrics.Enabled);
  ASSERT_TRUE(B.Metrics.Enabled);
  for (int I = 0; I < NumMetricCounters; ++I)
    EXPECT_EQ(A.Metrics.Counters[I], B.Metrics.Counters[I])
        << counterDesc(I).JsonName;
  EXPECT_EQ(A.Metrics.Hists[MhUpdatesPerStep].Sum,
            B.Metrics.Hists[MhUpdatesPerStep].Sum);
}

TEST(EngineMetrics, StatsJsonEmbedsTheRegistry) {
  rt::RunStats R = runEngine(Engine::Interp, 0);
  std::string J = statsJson(R);
  EXPECT_NE(J.find("\"metrics\":{"), std::string::npos);
  EXPECT_NE(J.find("\"strand_updates_total\":"), std::string::npos);
  EXPECT_NE(J.find("\"superstep_wall_ns\":"), std::string::npos);
  EXPECT_NE(J.find("\"p99\":"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Golden-file snapshots of both exposition formats
//===----------------------------------------------------------------------===//

/// Replace the wall-clock-valued pieces of a real run's snapshot with fixed
/// values so the golden text is byte-stable across machines; everything
/// else (counters, updates-per-step, live gauges) is deterministic for a
/// sequential run of MixedProgram.
MetricsData normalizedGoldenData() {
  rt::RunStats R = runEngine(Engine::Interp, /*Workers=*/0);
  MetricsData D = R.Metrics;
  for (int H : {MhStepWallNs, MhImbalanceNs, MhClaimNs}) {
    Histogram Fixed;
    Fixed.start(0);
    for (uint64_t V : {1000u, 2000u, 4000u})
      Fixed.record(V);
    D.Hists[H] = HistData();
    Fixed.snapshot(D.Hists[H]);
  }
  D.Gauges[MgProcessRss] = 0;
  return D;
}

void checkGolden(const std::string &Name, const std::string &Text) {
  std::string Path =
      std::string(DIDEROT_REPO_DIR) + "/tests/golden/" + Name + ".golden";
  if (std::getenv("DIDEROT_UPDATE_GOLDEN")) {
    std::ofstream Out(Path);
    ASSERT_TRUE(Out.good()) << "cannot write " << Path;
    Out << Text;
    return;
  }
  std::ifstream In(Path);
  ASSERT_TRUE(In.good()) << "missing golden file " << Path
                         << " (regenerate with DIDEROT_UPDATE_GOLDEN=1)";
  std::ostringstream SS;
  SS << In.rdbuf();
  EXPECT_EQ(SS.str(), Text) << "exposition drifted from " << Path
                            << " (regenerate with DIDEROT_UPDATE_GOLDEN=1 "
                               "if the change is intentional)";
}

TEST(Golden, PrometheusTextMatchesSnapshot) {
  checkGolden("metrics_prom", prometheusText(normalizedGoldenData()));
}

TEST(Golden, MetricsJsonMatchesSnapshot) {
  checkGolden("metrics_json", metricsJson(normalizedGoldenData()));
}

} // namespace
} // namespace diderot

//===--- tests/tensor_test.cpp - tensor algebra unit tests -----------------===//

#include <cmath>

#include <gtest/gtest.h>

#include "tensor/tensor.h"

namespace diderot {
namespace {

Tensor vec3(double X, double Y, double Z) { return Tensor::vector({X, Y, Z}); }

TEST(Shape, OrderAndComponents) {
  EXPECT_EQ(Shape{}.order(), 0);
  EXPECT_EQ(Shape{}.numComponents(), 1);
  EXPECT_EQ((Shape{3}).order(), 1);
  EXPECT_EQ((Shape{3, 3}).numComponents(), 9);
  EXPECT_EQ((Shape{2, 3, 4}).numComponents(), 24);
}

TEST(Shape, AppendDrop) {
  Shape S{3};
  Shape S2 = S.append(3);
  EXPECT_EQ(S2, (Shape{3, 3}));
  EXPECT_EQ(S2.dropLast(), S);
  EXPECT_EQ(Shape{}.append(2), (Shape{2}));
}

TEST(Shape, Render) {
  EXPECT_EQ(Shape{}.str(), "[]");
  EXPECT_EQ((Shape{3, 3}).str(), "[3,3]");
}

TEST(Tensor, ScalarBasics) {
  Tensor S = Tensor::scalar(2.5);
  EXPECT_TRUE(S.isScalar());
  EXPECT_EQ(S.asScalar(), 2.5);
}

TEST(Tensor, AddSubNeg) {
  Tensor A = vec3(1, 2, 3), B = vec3(4, 5, 6);
  EXPECT_EQ(add(A, B), vec3(5, 7, 9));
  EXPECT_EQ(sub(B, A), vec3(3, 3, 3));
  EXPECT_EQ(neg(A), vec3(-1, -2, -3));
}

TEST(Tensor, ScaleDivide) {
  Tensor A = vec3(1, 2, 3);
  EXPECT_EQ(scale(2.0, A), vec3(2, 4, 6));
  EXPECT_EQ(divide(A, 2.0), vec3(0.5, 1, 1.5));
}

TEST(Tensor, DotVectors) {
  EXPECT_EQ(dot(vec3(1, 2, 3), vec3(4, 5, 6)).asScalar(), 32.0);
}

TEST(Tensor, DotMatrixVector) {
  Tensor M(Shape{2, 2}, {1, 2, 3, 4});
  Tensor V = Tensor::vector({5, 6});
  Tensor R = dot(M, V);
  EXPECT_EQ(R.shape(), (Shape{2}));
  EXPECT_EQ(R[0], 17.0);
  EXPECT_EQ(R[1], 39.0);
}

TEST(Tensor, DotMatrixMatrix) {
  Tensor A(Shape{2, 2}, {1, 2, 3, 4});
  Tensor B(Shape{2, 2}, {5, 6, 7, 8});
  Tensor R = dot(A, B);
  EXPECT_EQ(R.shape(), (Shape{2, 2}));
  EXPECT_EQ(R[0], 19.0);
  EXPECT_EQ(R[1], 22.0);
  EXPECT_EQ(R[2], 43.0);
  EXPECT_EQ(R[3], 50.0);
}

TEST(Tensor, DDotMatrices) {
  Tensor A(Shape{2, 2}, {1, 2, 3, 4});
  Tensor B(Shape{2, 2}, {5, 6, 7, 8});
  // A : B = sum_ij A_ij B_ij
  EXPECT_EQ(ddot(A, B).asScalar(), 1 * 5 + 2 * 6 + 3 * 7 + 4 * 8);
}

TEST(Tensor, Cross3d) {
  EXPECT_EQ(cross(vec3(1, 0, 0), vec3(0, 1, 0)), vec3(0, 0, 1));
  EXPECT_EQ(cross(vec3(0, 1, 0), vec3(1, 0, 0)), vec3(0, 0, -1));
}

TEST(Tensor, Cross2dIsScalar) {
  Tensor R = cross(Tensor::vector({1, 0}), Tensor::vector({0, 1}));
  EXPECT_TRUE(R.isScalar());
  EXPECT_EQ(R.asScalar(), 1.0);
}

TEST(Tensor, OuterProduct) {
  Tensor R = outer(Tensor::vector({1, 2}), Tensor::vector({3, 4}));
  EXPECT_EQ(R.shape(), (Shape{2, 2}));
  EXPECT_EQ(R[0], 3.0);
  EXPECT_EQ(R[1], 4.0);
  EXPECT_EQ(R[2], 6.0);
  EXPECT_EQ(R[3], 8.0);
}

TEST(Tensor, NormAndNormalize) {
  EXPECT_DOUBLE_EQ(norm(vec3(3, 4, 0)), 5.0);
  Tensor N = normalize(vec3(3, 4, 0));
  EXPECT_NEAR(N[0], 0.6, 1e-15);
  EXPECT_NEAR(N[1], 0.8, 1e-15);
  EXPECT_NEAR(N[2], 0.0, 1e-15);
  // Zero vector is returned unchanged.
  EXPECT_EQ(normalize(vec3(0, 0, 0)), vec3(0, 0, 0));
}

TEST(Tensor, NormOfMatrixIsFrobenius) {
  Tensor M(Shape{2, 2}, {1, 2, 2, 4});
  EXPECT_DOUBLE_EQ(norm(M), 5.0);
}

TEST(Tensor, TraceIdentity) {
  EXPECT_DOUBLE_EQ(trace(Tensor::identity(3)), 3.0);
  Tensor M(Shape{2, 2}, {1, 9, 9, 4});
  EXPECT_DOUBLE_EQ(trace(M), 5.0);
}

TEST(Tensor, Determinants) {
  Tensor M2(Shape{2, 2}, {1, 2, 3, 4});
  EXPECT_DOUBLE_EQ(det(M2), -2.0);
  Tensor M3(Shape{3, 3}, {2, 0, 0, 0, 3, 0, 0, 0, 4});
  EXPECT_DOUBLE_EQ(det(M3), 24.0);
  EXPECT_DOUBLE_EQ(det(Tensor::identity(3)), 1.0);
}

TEST(Tensor, Inverse2x2) {
  Tensor M(Shape{2, 2}, {4, 7, 2, 6});
  Tensor Inv = inverse(M);
  Tensor P = dot(M, Inv);
  for (int I = 0; I < 4; ++I)
    EXPECT_NEAR(P[I], Tensor::identity(2)[I], 1e-12);
}

TEST(Tensor, Inverse3x3) {
  Tensor M(Shape{3, 3}, {2, -1, 0, -1, 2, -1, 0, -1, 2});
  Tensor P = dot(M, inverse(M));
  for (int I = 0; I < 9; ++I)
    EXPECT_NEAR(P[I], Tensor::identity(3)[I], 1e-12);
}

TEST(Tensor, Transpose) {
  Tensor M(Shape{2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor T = transpose(M);
  EXPECT_EQ(T.shape(), (Shape{3, 2}));
  EXPECT_EQ(T.at(0, 1), 4.0);
  EXPECT_EQ(T.at(2, 0), 3.0);
}

TEST(Tensor, ModulateHadamard) {
  EXPECT_EQ(modulate(vec3(1, 2, 3), vec3(4, 5, 6)), vec3(4, 10, 18));
}

TEST(Tensor, Lerp) {
  EXPECT_EQ(lerp(vec3(0, 0, 0), vec3(2, 4, 6), 0.5), vec3(1, 2, 3));
  EXPECT_EQ(lerp(Tensor::scalar(1), Tensor::scalar(3), 0.0).asScalar(), 1.0);
}

TEST(Tensor, IdentityMatrix) {
  Tensor I = Tensor::identity(3);
  EXPECT_EQ(I.at(0, 0), 1.0);
  EXPECT_EQ(I.at(0, 1), 0.0);
  EXPECT_EQ(I.at(2, 2), 1.0);
}

// Algebraic identities checked over a parameterized sweep of vectors.
class TensorIdentityTest : public ::testing::TestWithParam<int> {};

TEST_P(TensorIdentityTest, LagrangeIdentity) {
  int Seed = GetParam();
  auto R = [&](int I) { return std::sin(Seed * 37.0 + I * 11.0); };
  Tensor U = vec3(R(0), R(1), R(2));
  Tensor V = vec3(R(3), R(4), R(5));
  // |u x v|^2 + (u . v)^2 = |u|^2 |v|^2
  double LHS = std::pow(norm(cross(U, V)), 2) +
               std::pow(dot(U, V).asScalar(), 2);
  double RHS = std::pow(norm(U), 2) * std::pow(norm(V), 2);
  EXPECT_NEAR(LHS, RHS, 1e-12);
}

TEST_P(TensorIdentityTest, CrossOrthogonality) {
  int Seed = GetParam();
  auto R = [&](int I) { return std::cos(Seed * 13.0 + I * 7.0); };
  Tensor U = vec3(R(0), R(1), R(2));
  Tensor V = vec3(R(3), R(4), R(5));
  Tensor C = cross(U, V);
  EXPECT_NEAR(dot(C, U).asScalar(), 0.0, 1e-12);
  EXPECT_NEAR(dot(C, V).asScalar(), 0.0, 1e-12);
}

TEST_P(TensorIdentityTest, OuterTraceIsDot) {
  int Seed = GetParam();
  auto R = [&](int I) { return std::sin(Seed * 5.0 + I * 3.0); };
  Tensor U = vec3(R(0), R(1), R(2));
  Tensor V = vec3(R(3), R(4), R(5));
  EXPECT_NEAR(trace(outer(U, V)), dot(U, V).asScalar(), 1e-12);
}

TEST_P(TensorIdentityTest, DetOfTransposeEqual) {
  int Seed = GetParam();
  auto R = [&](int I) { return std::sin(Seed * 3.0 + I * 1.7); };
  Tensor M(Shape{3, 3}, {R(0), R(1), R(2), R(3), R(4), R(5), R(6), R(7), R(8)});
  EXPECT_NEAR(det(M), det(transpose(M)), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Sweep, TensorIdentityTest, ::testing::Range(0, 10));

} // namespace
} // namespace diderot

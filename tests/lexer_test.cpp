//===--- tests/lexer_test.cpp ----------------------------------------------===//

#include <gtest/gtest.h>

#include "frontend/lexer.h"

namespace diderot {
namespace {

std::vector<Token> lex(const std::string &S) {
  DiagnosticEngine D;
  Lexer L(S, D);
  std::vector<Token> Toks = L.lexAll();
  EXPECT_FALSE(D.hasErrors()) << D.str();
  return Toks;
}

std::vector<Tok> kinds(const std::string &S) {
  std::vector<Tok> Out;
  for (const Token &T : lex(S))
    Out.push_back(T.Kind);
  return Out;
}

TEST(Lexer, Empty) {
  EXPECT_EQ(kinds(""), (std::vector<Tok>{Tok::Eof}));
  EXPECT_EQ(kinds("   \n\t "), (std::vector<Tok>{Tok::Eof}));
}

TEST(Lexer, Identifiers) {
  std::vector<Token> T = lex("foo _bar x1");
  EXPECT_EQ(T[0].Kind, Tok::Ident);
  EXPECT_EQ(T[0].Text, "foo");
  EXPECT_EQ(T[1].Text, "_bar");
  EXPECT_EQ(T[2].Text, "x1");
}

TEST(Lexer, Keywords) {
  EXPECT_EQ(kinds("strand update stabilize die initially in"),
            (std::vector<Tok>{Tok::KwStrand, Tok::KwUpdate, Tok::KwStabilize,
                              Tok::KwDie, Tok::KwInitially, Tok::KwIn,
                              Tok::Eof}));
  EXPECT_EQ(kinds("real vec3 tensor image kernel field"),
            (std::vector<Tok>{Tok::KwReal, Tok::KwVec3, Tok::KwTensor,
                              Tok::KwImage, Tok::KwKernel, Tok::KwField,
                              Tok::Eof}));
}

TEST(Lexer, IntAndRealLiterals) {
  std::vector<Token> T = lex("42 0 3.14 1e3 2.5e-2 7.");
  EXPECT_EQ(T[0].Kind, Tok::IntLit);
  EXPECT_EQ(T[0].IntVal, 42);
  EXPECT_EQ(T[1].IntVal, 0);
  EXPECT_EQ(T[2].Kind, Tok::RealLit);
  EXPECT_DOUBLE_EQ(T[2].RealVal, 3.14);
  EXPECT_DOUBLE_EQ(T[3].RealVal, 1000.0);
  EXPECT_DOUBLE_EQ(T[4].RealVal, 0.025);
  EXPECT_DOUBLE_EQ(T[5].RealVal, 7.0);
}

TEST(Lexer, RangeDoesNotEatDots) {
  // `0 .. n-1` and `0..5`: the '..' must not merge into a real literal.
  EXPECT_EQ(kinds("0 .. 5"),
            (std::vector<Tok>{Tok::IntLit, Tok::DotDot, Tok::IntLit, Tok::Eof}));
  EXPECT_EQ(kinds("0..5"),
            (std::vector<Tok>{Tok::IntLit, Tok::DotDot, Tok::IntLit, Tok::Eof}));
}

TEST(Lexer, Strings) {
  std::vector<Token> T = lex(R"("hand.nrrd" "a\nb")");
  EXPECT_EQ(T[0].Kind, Tok::StringLit);
  EXPECT_EQ(T[0].Text, "hand.nrrd");
  EXPECT_EQ(T[1].Text, "a\nb");
}

TEST(Lexer, Operators) {
  EXPECT_EQ(kinds("+ - * / % ^ ! = == != < <= > >= && ||"),
            (std::vector<Tok>{Tok::Plus, Tok::Minus, Tok::Star, Tok::Slash,
                              Tok::Percent, Tok::Caret, Tok::Bang, Tok::Assign,
                              Tok::EqEq, Tok::BangEq, Tok::Lt, Tok::LtEq,
                              Tok::Gt, Tok::GtEq, Tok::AmpAmp, Tok::BarBar,
                              Tok::Eof}));
  EXPECT_EQ(kinds("+= -= *= /="),
            (std::vector<Tok>{Tok::PlusEq, Tok::MinusEq, Tok::StarEq,
                              Tok::SlashEq, Tok::Eof}));
}

TEST(Lexer, UnicodeOperators) {
  EXPECT_EQ(kinds("∇ ⊛ ⊗ × • π"),
            (std::vector<Tok>{Tok::Nabla, Tok::CircledAst, Tok::OTimes,
                              Tok::Cross, Tok::Bullet, Tok::Pi, Tok::Eof}));
}

TEST(Lexer, UnicodeAdjacentToIdent) {
  std::vector<Token> T = lex("∇⊗F");
  EXPECT_EQ(T[0].Kind, Tok::Nabla);
  EXPECT_EQ(T[1].Kind, Tok::OTimes);
  EXPECT_EQ(T[2].Kind, Tok::Ident);
  EXPECT_EQ(T[2].Text, "F");
}

TEST(Lexer, Comments) {
  EXPECT_EQ(kinds("x // trailing comment\ny"),
            (std::vector<Tok>{Tok::Ident, Tok::Ident, Tok::Eof}));
  EXPECT_EQ(kinds("a /* multi \n line */ b"),
            (std::vector<Tok>{Tok::Ident, Tok::Ident, Tok::Eof}));
}

TEST(Lexer, LocationsTracked) {
  DiagnosticEngine D;
  Lexer L("a\n  b", D);
  Token A = L.next();
  Token B = L.next();
  EXPECT_EQ(A.Loc.Line, 1);
  EXPECT_EQ(A.Loc.Col, 1);
  EXPECT_EQ(B.Loc.Line, 2);
  EXPECT_EQ(B.Loc.Col, 3);
}

TEST(Lexer, UnterminatedStringError) {
  DiagnosticEngine D;
  Lexer L("\"abc", D);
  Token T = L.next();
  EXPECT_EQ(T.Kind, Tok::Error);
  EXPECT_TRUE(D.hasErrors());
}

TEST(Lexer, UnterminatedCommentError) {
  DiagnosticEngine D;
  Lexer L("/* never ends", D);
  L.next();
  EXPECT_TRUE(D.hasErrors());
}

TEST(Lexer, HashAndPunct) {
  EXPECT_EQ(kinds("field#2 ( ) [ ] { } , ; : |"),
            (std::vector<Tok>{Tok::KwField, Tok::Hash, Tok::IntLit, Tok::LParen,
                              Tok::RParen, Tok::LBracket, Tok::RBracket,
                              Tok::LBrace, Tok::RBrace, Tok::Comma, Tok::Semi,
                              Tok::Colon, Tok::Bar, Tok::Eof}));
}

} // namespace
} // namespace diderot

//===--- tests/schemes_test.cpp - type scheme / unification tests -------------===//
//
// Unit tests of the matcher behind operator overloading (paper §5.1: "kinded
// type variables, shape variables, and dimension variables ... solved by
// unification").
//
//===----------------------------------------------------------------------===//

#include <gtest/gtest.h>

#include "frontend/schemes.h"

namespace diderot::sch {
namespace {

TEST(Schemes, DimVariableBindsAndChecks) {
  Bindings B;
  EXPECT_TRUE(B.bindDim(0, 3));
  EXPECT_TRUE(B.bindDim(0, 3));  // consistent rebind
  EXPECT_FALSE(B.bindDim(0, 2)); // conflict
  EXPECT_TRUE(B.bindDim(1, 2));  // distinct variable
}

TEST(Schemes, ShapeVarMatchesWholeShape) {
  Bindings B;
  ShapeScheme S = ShapeScheme::var(0);
  EXPECT_TRUE(S.match(Shape{3, 3}, B));
  EXPECT_EQ(B.Shapes.at(0), (Shape{3, 3}));
  // Same variable must match consistently.
  EXPECT_TRUE(S.match(Shape{3, 3}, B));
  EXPECT_FALSE(S.match(Shape{2}, B));
}

TEST(Schemes, ScalarSchemeOnlyMatchesScalars) {
  Bindings B;
  ShapeScheme S = ShapeScheme::scalar();
  EXPECT_TRUE(S.match(Shape{}, B));
  EXPECT_FALSE(S.match(Shape{3}, B));
}

TEST(Schemes, PrefixVarAbsorbsLeadingAxes) {
  // sigma ++ [n]: the dot operator's left operand.
  Bindings B;
  ShapeScheme S = ShapeScheme::varThen(0, ShapeElem::dimVar(1));
  EXPECT_TRUE(S.match(Shape{2, 3, 4}, B));
  EXPECT_EQ(B.Shapes.at(0), (Shape{2, 3}));
  EXPECT_EQ(B.Dims.at(1), 4);
  // A vector: sigma = [].
  Bindings B2;
  EXPECT_TRUE(S.match(Shape{5}, B2));
  EXPECT_EQ(B2.Shapes.at(0), Shape{});
  EXPECT_EQ(B2.Dims.at(1), 5);
  // A scalar cannot match (needs at least the [n] element).
  Bindings B3;
  EXPECT_FALSE(S.match(Shape{}, B3));
}

TEST(Schemes, SuffixVarAbsorbsTrailingAxes) {
  // [n] ++ tau: the dot operator's right operand.
  Bindings B;
  ShapeScheme S = ShapeScheme::elemThenVar(ShapeElem::dimVar(1), 0);
  EXPECT_TRUE(S.match(Shape{4, 2, 2}, B));
  EXPECT_EQ(B.Dims.at(1), 4);
  EXPECT_EQ(B.Shapes.at(0), (Shape{2, 2}));
}

TEST(Schemes, DotContractionUnifiesMiddleDimension) {
  // Simulate tensor[2,3] • tensor[3,4]: n must unify to 3.
  Bindings B;
  ShapeScheme L = ShapeScheme::varThen(0, ShapeElem::dimVar(9));
  ShapeScheme R = ShapeScheme::elemThenVar(ShapeElem::dimVar(9), 1);
  EXPECT_TRUE(L.match(Shape{2, 3}, B));
  EXPECT_TRUE(R.match(Shape{3, 4}, B));
  EXPECT_EQ(B.Dims.at(9), 3);
  // Mismatched contraction dimension fails on the second match.
  Bindings B2;
  EXPECT_TRUE(L.match(Shape{2, 3}, B2));
  EXPECT_FALSE(R.match(Shape{4, 4}, B2));
}

TEST(Schemes, InstantiateRebuildsShape) {
  Bindings B;
  B.bindShape(0, Shape{2, 3});
  B.bindDim(1, 4);
  ShapeScheme S = ShapeScheme::varThen(0, ShapeElem::dimVar(1));
  EXPECT_EQ(S.instantiate(B), (Shape{2, 3, 4}));
}

TEST(Schemes, FieldSchemeMatchesAllComponents) {
  Bindings B;
  STy F = STy::field(0, ShapeElem::dimVar(0), ShapeScheme::var(0));
  EXPECT_TRUE(F.match(Type::field(2, 3, Shape{3}), B));
  EXPECT_EQ(B.Diffs.at(0), 2);
  EXPECT_EQ(B.Dims.at(0), 3);
  EXPECT_EQ(B.Shapes.at(0), (Shape{3}));
  // Kind mismatch.
  EXPECT_FALSE(F.match(Type::tensor(Shape{3}), B));
}

TEST(Schemes, SignatureGuardRejects) {
  // f : field#k -> field#(k-1), guard k > 0.
  Signature Sig{
      {STy::field(0, ShapeElem::dimVar(0), ShapeScheme::scalar())},
      [](const Bindings &B) {
        return Type::field(B.Diffs.at(0) - 1, B.Dims.at(0), Shape{});
      },
      [](const Bindings &B) { return B.Diffs.at(0) > 0; }};
  auto R1 = Sig.apply({Type::field(2, 3, Shape{})});
  ASSERT_TRUE(R1.has_value());
  EXPECT_EQ(*R1, Type::field(1, 3, Shape{}));
  EXPECT_FALSE(Sig.apply({Type::field(0, 3, Shape{})}).has_value());
}

TEST(Schemes, OverloadResolutionPicksFirstMatch) {
  std::vector<Signature> Cands;
  Cands.push_back({{STy::integer(), STy::integer()},
                   [](const Bindings &) { return Type::integer(); },
                   nullptr});
  Cands.push_back({{STy::real(), STy::real()},
                   [](const Bindings &) { return Type::real(); },
                   nullptr});
  auto R = resolveOverload(Cands, {Type::integer(), Type::integer()});
  ASSERT_TRUE(R.has_value());
  EXPECT_EQ(R->first, 0);
  EXPECT_TRUE(R->second.isInt());
  auto R2 = resolveOverload(Cands, {Type::real(), Type::real()});
  ASSERT_TRUE(R2.has_value());
  EXPECT_EQ(R2->first, 1);
  EXPECT_FALSE(resolveOverload(Cands, {Type::real(), Type::integer()})
                   .has_value());
}

TEST(Schemes, ArityMismatchFailsCleanly) {
  Signature Sig{{STy::real()},
                [](const Bindings &) { return Type::real(); },
                nullptr};
  EXPECT_FALSE(Sig.apply({}).has_value());
  EXPECT_FALSE(Sig.apply({Type::real(), Type::real()}).has_value());
}

} // namespace
} // namespace diderot::sch

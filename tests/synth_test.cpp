//===--- tests/synth_test.cpp - synthetic data generator tests -------------===//

#include <cmath>

#include <gtest/gtest.h>

#include "synth/synth.h"

namespace diderot {
namespace {

TEST(Synth, CtHandShapeAndRange) {
  Image Img = synth::ctHand(24);
  EXPECT_EQ(Img.dim(), 3);
  EXPECT_EQ(Img.numComponents(), 1);
  double Max = 0, Min = 1e30;
  for (double V : Img.data()) {
    Max = std::max(Max, V);
    Min = std::min(Min, V);
  }
  EXPECT_GE(Min, 0.0);
  EXPECT_GT(Max, 0.5) << "palm should be dense";
  EXPECT_LT(Max, 3.0);
}

TEST(Synth, CtHandCenterDenserThanCorner) {
  Image Img = synth::ctHand(24);
  int C[3] = {12, 11, 12}, K[3] = {0, 0, 0};
  EXPECT_GT(Img.sample(C, 0), Img.sample(K, 0) + 0.3);
}

TEST(Synth, CtHandDeterministic) {
  Image A = synth::ctHand(16), B = synth::ctHand(16);
  EXPECT_EQ(A.data(), B.data());
}

TEST(Synth, LungVesselsCenterlinePeaks) {
  Image Img = synth::lungVessels(32);
  // The trunk runs along x=0,z=0 for y in [-0.85,-0.25]: world (0,-0.5,0)
  // maps to index ((0+1)/2*31, ...).
  double IdxPos[3] = {15.5, 7.75, 15.5}; // approx (0, -0.5, 0)
  int OnTrunk[3] = {16, 8, 16};
  int FarAway[3] = {2, 2, 2};
  (void)IdxPos;
  EXPECT_GT(Img.sample(OnTrunk, 0), 0.5);
  EXPECT_LT(Img.sample(FarAway, 0), 0.1);
}

TEST(Synth, Flow2dIsVectorField) {
  Image Img = synth::flow2d(16);
  EXPECT_EQ(Img.dim(), 2);
  EXPECT_EQ(Img.valueShape(), (Shape{2}));
  // Velocities bounded.
  for (double V : Img.data())
    EXPECT_LT(std::abs(V), 3.0);
}

TEST(Synth, Flow2dJetBetweenVortices) {
  // A counter-rotating vortex pair drives a jet between the cores: at the
  // origin the x-velocity cancels by symmetry and the y-velocity is the jet.
  Image Img = synth::flow2d(33); // odd so the center is a sample
  int C[2] = {16, 16};
  EXPECT_NEAR(Img.sample(C, 0), 0.0, 1e-12);
  EXPECT_GT(Img.sample(C, 1), 0.3);
}

TEST(Synth, NoiseRangeAndDeterminism) {
  Image A = synth::noise2d(32, 7), B = synth::noise2d(32, 7);
  EXPECT_EQ(A.data(), B.data());
  for (double V : A.data()) {
    EXPECT_GE(V, 0.0);
    EXPECT_LE(V, 1.0);
  }
  Image C = synth::noise2d(32, 8);
  EXPECT_NE(A.data(), C.data());
}

TEST(Synth, NoiseIsRoughlyUniform) {
  Image A = synth::noise2d(64, 3);
  double Mean = 0;
  for (double V : A.data())
    Mean += V;
  Mean /= static_cast<double>(A.data().size());
  EXPECT_NEAR(Mean, 0.5, 0.05);
}

TEST(Synth, PortraitCoversIsovalues) {
  Image Img = synth::portrait(64);
  double Max = 0, Min = 1e30;
  for (double V : Img.data()) {
    Max = std::max(Max, V);
    Min = std::min(Min, V);
  }
  // The paper's isocontour example searches for isovalues 10, 30, 50.
  EXPECT_LT(Min, 10.0);
  EXPECT_GT(Max, 50.0);
}

TEST(Synth, SampledPolynomial3dExactAtSamples) {
  double A = 1.0, B = 2.0, C = -0.5, D = 0.25, E = 0.0;
  Image Img = synth::sampledPolynomial3d(8, A, B, C, D, E);
  int Idx[3] = {3, 5, 2};
  double IdxD[3] = {3, 5, 2}, W[3];
  Img.indexToWorld(IdxD, W);
  EXPECT_NEAR(Img.sample(Idx, 0), A + B * W[0] + C * W[1] + D * W[2], 1e-12);
}

TEST(Synth, WorldExtentIsMinusOneToOne) {
  Image Img = synth::sampledPolynomial2d(11, 0, 1, 0, 0);
  double I0[2] = {0, 0}, IN[2] = {10, 10}, W[2];
  Img.indexToWorld(I0, W);
  EXPECT_DOUBLE_EQ(W[0], -1.0);
  Img.indexToWorld(IN, W);
  EXPECT_DOUBLE_EQ(W[0], 1.0);
}

} // namespace
} // namespace diderot

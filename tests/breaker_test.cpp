//===--- tests/breaker_test.cpp - compile circuit breaker golden tests -------===//
//
// Part of the Diderot-C++ reproduction (PLDI 2012).
//
// State-machine tests for serve/breaker.h with an injected clock, so every
// transition (Closed -> Open at the threshold, Open -> HalfOpen after the
// cooldown, the single-probe rule, re-open on probe failure) is
// deterministic — no sleeps, no wall time.
//
//===----------------------------------------------------------------------===//

#include "serve/breaker.h"

#include <string>
#include <utility>

#include <gtest/gtest.h>

namespace diderot::serve {
namespace {

constexpr uint64_t MsNs = 1000000ull;

/// A breaker wired to a manual clock the test advances.
struct Rig {
  uint64_t NowNs = 1000 * MsNs;
  CompileBreaker B;

  explicit Rig(int Threshold = 3, int64_t OpenMs = 100)
      : B(makeOpts(Threshold, OpenMs, &NowNs)) {}

  static CompileBreaker::Options makeOpts(int Threshold, int64_t OpenMs,
                                          uint64_t *Clock) {
    CompileBreaker::Options O;
    O.FailureThreshold = Threshold;
    O.OpenMs = OpenMs;
    O.NowNs = [Clock] { return *Clock; };
    return O;
  }

  void advanceMs(int64_t Ms) { NowNs += static_cast<uint64_t>(Ms) * MsNs; }
};

TEST(Breaker, StaysClosedBelowTheThreshold) {
  Rig R(/*Threshold=*/3);
  const std::string K = "prog-a";
  for (int I = 0; I < 2; ++I) {
    EXPECT_TRUE(R.B.admit(K).Allow);
    R.B.recordFailure(K);
  }
  EXPECT_EQ(R.B.state(K), CompileBreaker::State::Closed);
  EXPECT_TRUE(R.B.admit(K).Allow);
  EXPECT_EQ(R.B.trips(), 0u);
}

TEST(Breaker, OpensAtTheThresholdAndFailsFastWithRetryAfter) {
  Rig R(/*Threshold=*/3, /*OpenMs=*/100);
  const std::string K = "prog-a";
  for (int I = 0; I < 3; ++I)
    R.B.recordFailure(K);
  EXPECT_EQ(R.B.state(K), CompileBreaker::State::Open);
  EXPECT_EQ(R.B.trips(), 1u);

  R.advanceMs(40); // cooldown not over: 60 ms left
  CompileBreaker::Decision D = R.B.admit(K);
  EXPECT_FALSE(D.Allow);
  EXPECT_EQ(D.St, CompileBreaker::State::Open);
  EXPECT_EQ(D.RetryAfterMs, 60);
  EXPECT_EQ(R.B.fastFails(), 1u);
}

TEST(Breaker, SuccessResetsTheConsecutiveCount) {
  Rig R(/*Threshold=*/3);
  const std::string K = "prog-a";
  R.B.recordFailure(K);
  R.B.recordFailure(K);
  R.B.recordSuccess(K); // wipes the streak (and the tracking entry)
  R.B.recordFailure(K);
  R.B.recordFailure(K);
  EXPECT_EQ(R.B.state(K), CompileBreaker::State::Closed);
  EXPECT_TRUE(R.B.admit(K).Allow);
}

TEST(Breaker, HalfOpenAdmitsExactlyOneProbe) {
  Rig R(/*Threshold=*/1, /*OpenMs=*/100);
  const std::string K = "prog-a";
  R.B.recordFailure(K); // threshold 1: open immediately
  EXPECT_EQ(R.B.state(K), CompileBreaker::State::Open);

  R.advanceMs(100); // cooldown over
  CompileBreaker::Decision Probe = R.B.admit(K);
  EXPECT_TRUE(Probe.Allow);
  EXPECT_EQ(Probe.St, CompileBreaker::State::HalfOpen);

  // While the probe is in flight every other caller is denied.
  CompileBreaker::Decision Other = R.B.admit(K);
  EXPECT_FALSE(Other.Allow);
  EXPECT_EQ(Other.St, CompileBreaker::State::HalfOpen);
  EXPECT_EQ(Other.RetryAfterMs, 100);
}

TEST(Breaker, ProbeSuccessClosesAndForgetsTheKey) {
  Rig R(/*Threshold=*/1, /*OpenMs=*/100);
  const std::string K = "prog-a";
  R.B.recordFailure(K);
  R.advanceMs(100);
  ASSERT_TRUE(R.B.admit(K).Allow); // the probe
  R.B.recordSuccess(K);
  EXPECT_EQ(R.B.state(K), CompileBreaker::State::Closed);
  EXPECT_TRUE(R.B.tracked().empty()); // bounded tracking: closed = dropped
  EXPECT_TRUE(R.B.admit(K).Allow);
}

TEST(Breaker, ProbeFailureReopensAndRestartsTheCooldown) {
  Rig R(/*Threshold=*/1, /*OpenMs=*/100);
  const std::string K = "prog-a";
  R.B.recordFailure(K);
  R.advanceMs(100);
  ASSERT_TRUE(R.B.admit(K).Allow); // probe admitted
  R.B.recordFailure(K);            // probe failed
  EXPECT_EQ(R.B.state(K), CompileBreaker::State::Open);
  EXPECT_EQ(R.B.trips(), 2u); // initial trip + re-open

  // The cooldown restarted at the probe failure, so 50 ms later we are
  // still open with 50 ms left.
  R.advanceMs(50);
  CompileBreaker::Decision D = R.B.admit(K);
  EXPECT_FALSE(D.Allow);
  EXPECT_EQ(D.RetryAfterMs, 50);

  // And after the full cooldown a fresh probe gets through.
  R.advanceMs(50);
  EXPECT_TRUE(R.B.admit(K).Allow);
}

TEST(Breaker, AbandonedProbeReleasesTheSlotForTheNextCaller) {
  Rig R(/*Threshold=*/1, /*OpenMs=*/100);
  const std::string K = "prog-a";
  R.B.recordFailure(K);
  R.advanceMs(100);
  ASSERT_TRUE(R.B.admit(K).Allow); // probe admitted...
  R.B.abandonProbe(K);             // ...but bailed with no compile verdict
  EXPECT_EQ(R.B.state(K), CompileBreaker::State::HalfOpen);

  // The slot is free again immediately: the next caller becomes the probe
  // (before the fix this denied 503 forever).
  CompileBreaker::Decision D = R.B.admit(K);
  EXPECT_TRUE(D.Allow);
  EXPECT_EQ(D.St, CompileBreaker::State::HalfOpen);
  R.B.recordSuccess(K);
  EXPECT_EQ(R.B.state(K), CompileBreaker::State::Closed);
}

TEST(Breaker, AbandonProbeIsANoOpOutsideHalfOpen) {
  Rig R(/*Threshold=*/2, /*OpenMs=*/100);
  const std::string K = "prog-a";
  R.B.abandonProbe(K); // untracked: nothing to do
  EXPECT_EQ(R.B.state(K), CompileBreaker::State::Closed);
  R.B.recordFailure(K);
  R.B.abandonProbe(K); // Closed: the streak must survive
  R.B.recordFailure(K);
  EXPECT_EQ(R.B.state(K), CompileBreaker::State::Open);
  R.B.abandonProbe(K); // Open: stays open, cooldown untouched
  EXPECT_FALSE(R.B.admit(K).Allow);
}

TEST(Breaker, StaleProbeIsTakenOverAfterAFullCooldown) {
  Rig R(/*Threshold=*/1, /*OpenMs=*/100);
  const std::string K = "prog-a";
  R.B.recordFailure(K);
  R.advanceMs(100);
  ASSERT_TRUE(R.B.admit(K).Allow); // probe admitted, holder dies silently

  R.advanceMs(50); // probe only 50 ms old: still protected
  EXPECT_FALSE(R.B.admit(K).Allow);

  // A probe older than OpenMs is presumed lost; the next caller takes it
  // over rather than denying the key forever.
  R.advanceMs(50);
  CompileBreaker::Decision D = R.B.admit(K);
  EXPECT_TRUE(D.Allow);
  EXPECT_EQ(D.St, CompileBreaker::State::HalfOpen);
}

TEST(Breaker, TokenDestructorAbandonsAnUnresolvedAdmission) {
  Rig R(/*Threshold=*/1, /*OpenMs=*/100);
  const std::string K = "prog-a";
  R.B.recordFailure(K);
  R.advanceMs(100);
  ASSERT_TRUE(R.B.admit(K).Allow);
  {
    CompileBreaker::Token T(R.B, K);
    EXPECT_TRUE(T.armed());
    // T goes out of scope with no verdict: destructor abandons the probe.
  }
  EXPECT_TRUE(R.B.admit(K).Allow); // slot released
}

TEST(Breaker, TokenResolvesExactlyOnce) {
  Rig R(/*Threshold=*/1, /*OpenMs=*/100);
  const std::string K = "prog-a";
  R.B.recordFailure(K);
  R.advanceMs(100);
  ASSERT_TRUE(R.B.admit(K).Allow);
  CompileBreaker::Token T(R.B, K);
  CompileBreaker::Token Moved = std::move(T);
  EXPECT_FALSE(T.armed());
  EXPECT_TRUE(Moved.armed());
  Moved.success();
  EXPECT_FALSE(Moved.armed());
  Moved.failure(); // disarmed: must not reopen the now-forgotten key
  EXPECT_EQ(R.B.state(K), CompileBreaker::State::Closed);
  EXPECT_TRUE(R.B.tracked().empty());
}

TEST(Breaker, TrackingStaysBoundedUnderUniqueFailingKeys) {
  CompileBreaker::Options O;
  O.FailureThreshold = 3; // never reached: every key fails once
  O.OpenMs = 100;
  O.MaxTracked = 8;
  uint64_t Now = 1000 * MsNs;
  O.NowNs = [&Now] { return Now; };
  CompileBreaker B(O);
  for (int I = 0; I < 100; ++I) {
    std::string K = "prog-" + std::to_string(I);
    ASSERT_TRUE(B.admit(K).Allow);
    B.recordFailure(K);
    Now += MsNs; // distinct timestamps so eviction order is deterministic
  }
  EXPECT_LE(B.numTracked(), 8u);
}

TEST(Breaker, CapEvictsStaleClosedEntriesButKeepsOpenOnes) {
  CompileBreaker::Options O;
  O.FailureThreshold = 1; // every failure opens
  O.OpenMs = 100;
  O.MaxTracked = 4;
  uint64_t Now = 1000 * MsNs;
  O.NowNs = [&Now] { return Now; };
  CompileBreaker B(O);
  // Fill the map with open breakers: these are safety state and must
  // survive the cap sweep.
  for (int I = 0; I < 4; ++I)
    B.recordFailure("open-" + std::to_string(I));
  EXPECT_EQ(B.numTracked(), 4u);
  // A new failing key finds nothing evictable (all Open) and is simply
  // not tracked rather than growing the map.
  B.recordFailure("extra");
  EXPECT_LE(B.numTracked(), 4u);
  EXPECT_EQ(B.numOpen(), 4);
  for (int I = 0; I < 4; ++I)
    EXPECT_FALSE(B.admit("open-" + std::to_string(I)).Allow);
}

TEST(Breaker, KeysAreIndependent) {
  Rig R(/*Threshold=*/1, /*OpenMs=*/100);
  R.B.recordFailure("bad");
  EXPECT_FALSE(R.B.admit("bad").Allow);
  EXPECT_TRUE(R.B.admit("good").Allow);
  EXPECT_EQ(R.B.state("good"), CompileBreaker::State::Closed);
  EXPECT_EQ(R.B.numOpen(), 1);
  auto T = R.B.tracked();
  ASSERT_EQ(T.size(), 1u);
  EXPECT_EQ(T[0].first, "bad");
  EXPECT_EQ(T[0].second, CompileBreaker::State::Open);
}

TEST(Breaker, ZeroThresholdDisablesEverything) {
  Rig R(/*Threshold=*/0);
  const std::string K = "prog-a";
  for (int I = 0; I < 100; ++I)
    R.B.recordFailure(K);
  EXPECT_TRUE(R.B.admit(K).Allow);
  EXPECT_EQ(R.B.state(K), CompileBreaker::State::Closed);
  EXPECT_EQ(R.B.trips(), 0u);
  EXPECT_EQ(R.B.fastFails(), 0u);
  EXPECT_TRUE(R.B.tracked().empty());
}

TEST(Breaker, DenialRetryAfterNeverReportsZero) {
  Rig R(/*Threshold=*/1, /*OpenMs=*/100);
  const std::string K = "prog-a";
  R.B.recordFailure(K);
  R.advanceMs(99); // less than 1 ms of cooldown left after rounding
  R.NowNs += 999999;
  CompileBreaker::Decision D = R.B.admit(K);
  EXPECT_FALSE(D.Allow);
  EXPECT_GE(D.RetryAfterMs, 1);
}

TEST(Breaker, StateNames) {
  EXPECT_STREQ(CompileBreaker::stateName(CompileBreaker::State::Closed),
               "closed");
  EXPECT_STREQ(CompileBreaker::stateName(CompileBreaker::State::Open), "open");
  EXPECT_STREQ(CompileBreaker::stateName(CompileBreaker::State::HalfOpen),
               "half-open");
}

} // namespace
} // namespace diderot::serve

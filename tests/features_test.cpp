//===--- tests/features_test.cpp - language feature end-to-end tests ----------===//
//
// End-to-end coverage of features beyond the four paper benchmarks: field
// arithmetic, vector-field Jacobians, 1-D fields, the bspln5 kernel, the
// divergence/curl extension (paper §8.3 future work), sequences, and
// miscellaneous builtins. All run on the interpreter engine against analytic
// expectations.
//
//===----------------------------------------------------------------------===//

#include <cmath>

#include <gtest/gtest.h>

#include "driver/driver.h"
#include "synth/synth.h"

namespace diderot {
namespace {

std::unique_ptr<rt::ProgramInstance> runProgram(
    const std::string &Src,
    const std::vector<std::pair<std::string, Image>> &Images,
    Engine Eng = Engine::Interp) {
  CompileOptions Opts;
  Opts.Eng = Eng;
  Opts.DoublePrecision = true;
  Result<CompiledProgram> CP = compileString(Src, Opts, "feature");
  EXPECT_TRUE(CP.isOk()) << CP.message();
  if (!CP.isOk())
    return nullptr;
  Result<std::unique_ptr<rt::ProgramInstance>> I = CP->instantiate();
  EXPECT_TRUE(I.isOk()) << I.message();
  if (!I.isOk())
    return nullptr;
  for (const auto &[Name, Img] : Images) {
    Status S = (*I)->setInputImage(Name, Img);
    EXPECT_TRUE(S.isOk()) << S.message();
  }
  Status S = (*I)->initialize();
  EXPECT_TRUE(S.isOk()) << S.message();
  Result<rt::RunStats> R = (*I)->run(1000, 1);
  EXPECT_TRUE(R.isOk()) << R.message();
  return I.take();
}

/// A 2-D vector image V(x,y) = (a x + b y + e, c x + d y + f) over [-1,1]^2.
Image linearFlow2d(int Size, double A, double B, double C, double D,
                   double E = 0, double F = 0) {
  Image Img(2, Shape{2}, {Size, Size});
  std::vector<double> Spacing = {2.0 / (Size - 1), 2.0 / (Size - 1)};
  Img.setSpacing(Spacing);
  Img.setOrientation({Spacing[0], 0, 0, Spacing[1]}, {-1.0, -1.0});
  int Idx[2];
  for (int Y = 0; Y < Size; ++Y)
    for (int X = 0; X < Size; ++X) {
      double PX = -1 + 2.0 * X / (Size - 1), PY = -1 + 2.0 * Y / (Size - 1);
      Idx[0] = X;
      Idx[1] = Y;
      Img.setSample(Idx, 0, A * PX + B * PY + E);
      Img.setSample(Idx, 1, C * PX + D * PY + F);
    }
  return Img;
}

//===----------------------------------------------------------------------===//
// Divergence and curl (§8.3 extension)
//===----------------------------------------------------------------------===//

TEST(Features, DivergenceOfLinearFlow) {
  // V = (2x - y, 3x + 5y): div V = 2 + 5 = 7 everywhere.
  auto I = runProgram(R"(
input image(2)[2] vecs;
field#1(2)[2] V = vecs ⊛ ctmr;
field#0(2)[] divV = ∇•V;
strand S (int i) {
  vec2 pos = [ -0.4 + 0.2*real(i), 0.1 ];
  output real out = 0.0;
  update { out = divV(pos); stabilize; }
}
initially [ S(i) | i in 0 .. 4 ];
)",
                      {{"vecs", linearFlow2d(16, 2, -1, 3, 5)}});
  ASSERT_TRUE(I);
  std::vector<double> Out;
  ASSERT_TRUE(I->getOutput("out", Out).isOk());
  for (double V : Out)
    EXPECT_NEAR(V, 7.0, 1e-9);
}

TEST(Features, Curl2dOfLinearFlow) {
  // V = (2x - y, 3x + 5y): curl_z = dVy/dx - dVx/dy = 3 - (-1) = 4.
  auto I = runProgram(R"(
input image(2)[2] vecs;
field#1(2)[2] V = vecs ⊛ ctmr;
strand S (int i) {
  vec2 pos = [ -0.4 + 0.2*real(i), 0.1 ];
  output real out = 0.0;
  update { out = (∇×V)(pos); stabilize; }
}
initially [ S(i) | i in 0 .. 4 ];
)",
                      {{"vecs", linearFlow2d(16, 2, -1, 3, 5)}});
  ASSERT_TRUE(I);
  std::vector<double> Out;
  ASSERT_TRUE(I->getOutput("out", Out).isOk());
  for (double V : Out)
    EXPECT_NEAR(V, 4.0, 1e-9);
}

TEST(Features, Curl3dOfRotationalFlow) {
  // V = (y, z, x): curl V = (-1, -1, -1); div V = 0.
  Image Img(3, Shape{3}, {10, 10, 10});
  double Sp = 2.0 / 9.0;
  Img.setOrientation({Sp, 0, 0, 0, Sp, 0, 0, 0, Sp}, {-1, -1, -1});
  int Idx[3];
  for (int Z = 0; Z < 10; ++Z)
    for (int Y = 0; Y < 10; ++Y)
      for (int X = 0; X < 10; ++X) {
        double P[3] = {-1 + Sp * X, -1 + Sp * Y, -1 + Sp * Z};
        Idx[0] = X;
        Idx[1] = Y;
        Idx[2] = Z;
        Img.setSample(Idx, 0, P[1]);
        Img.setSample(Idx, 1, P[2]);
        Img.setSample(Idx, 2, P[0]);
      }
  auto I = runProgram(R"(
input image(3)[3] vecs;
field#1(3)[3] V = vecs ⊛ ctmr;
strand S (int i) {
  vec3 pos = [ -0.3 + 0.2*real(i), 0.1, -0.1 ];
  output vec3 c = [0.0, 0.0, 0.0];
  output real d = 1.0;
  update { c = (∇×V)(pos); d = (∇•V)(pos); stabilize; }
}
initially [ S(i) | i in 0 .. 3 ];
)",
                      {{"vecs", Img}});
  ASSERT_TRUE(I);
  std::vector<double> C, D;
  ASSERT_TRUE(I->getOutput("c", C).isOk());
  ASSERT_TRUE(I->getOutput("d", D).isOk());
  for (size_t K = 0; K < C.size(); ++K)
    EXPECT_NEAR(C[K], -1.0, 1e-9) << K;
  for (double V : D)
    EXPECT_NEAR(V, 0.0, 1e-9);
}

TEST(Features, DivergenceTypingErrors) {
  CompileOptions Opts;
  // ∇• of a scalar field is rejected.
  Result<CompiledProgram> CP = compileString(R"(
input image(3)[] img;
field#2(3)[] F = img ⊛ bspln3;
strand S (int i) {
  output real out = 0.0;
  update { out = (∇•F)([0.1,0.2,0.3]); stabilize; }
}
initially [ S(i) | i in 0 .. 3 ];
)",
                                             Opts);
  ASSERT_FALSE(CP.isOk());
  EXPECT_NE(CP.message().find("∇•"), std::string::npos);
}

TEST(Features, NativeAgreesOnDivCurl) {
  const char *Src = R"(
input image(2)[2] vecs;
field#1(2)[2] V = vecs ⊛ ctmr;
strand S (int xi, int yi) {
  vec2 pos = [ -0.5 + 0.25*real(xi), -0.5 + 0.25*real(yi) ];
  output vec2 out = [0.0, 0.0];
  update { out = [ (∇•V)(pos), (∇×V)(pos) ]; stabilize; }
}
initially [ S(xi, yi) | xi in 0 .. 4, yi in 0 .. 4 ];
)";
  Image Flow = synth::flow2d(64);
  std::vector<double> A, B;
  for (int Native = 0; Native < 2; ++Native) {
    auto I = runProgram(Src, {{"vecs", Flow}},
                        Native ? Engine::Native : Engine::Interp);
    ASSERT_TRUE(I);
    ASSERT_TRUE(I->getOutput("out", Native ? B : A).isOk());
  }
  ASSERT_EQ(A.size(), B.size());
  for (size_t K = 0; K < A.size(); ++K)
    EXPECT_NEAR(A[K], B[K], 1e-12);
}

//===----------------------------------------------------------------------===//
// Vector-field Jacobians
//===----------------------------------------------------------------------===//

TEST(Features, JacobianOfLinearFlow) {
  // ∇⊗V for V = (2x - y, 3x + 5y) is [[2,-1],[3,5]] (row c = component,
  // column j = derivative axis).
  auto I = runProgram(R"(
input image(2)[2] vecs;
field#1(2)[2] V = vecs ⊛ ctmr;
strand S (int i) {
  vec2 pos = [ 0.1*real(i), -0.2 ];
  output tensor[2,2] out = identity[2];
  update { out = ∇⊗V(pos); stabilize; }
}
initially [ S(i) | i in 0 .. 2 ];
)",
                      {{"vecs", linearFlow2d(16, 2, -1, 3, 5)}});
  ASSERT_TRUE(I);
  std::vector<double> Out;
  ASSERT_TRUE(I->getOutput("out", Out).isOk());
  ASSERT_EQ(Out.size(), 12u);
  for (size_t S = 0; S < 3; ++S) {
    EXPECT_NEAR(Out[S * 4 + 0], 2.0, 1e-9);
    EXPECT_NEAR(Out[S * 4 + 1], -1.0, 1e-9);
    EXPECT_NEAR(Out[S * 4 + 2], 3.0, 1e-9);
    EXPECT_NEAR(Out[S * 4 + 3], 5.0, 1e-9);
  }
}

//===----------------------------------------------------------------------===//
// Field arithmetic end-to-end
//===----------------------------------------------------------------------===//

TEST(Features, FieldArithmeticNumeric) {
  // S = (2*F - G)/4 probed where F = x+2y, G = 3x: S = (2x+4y-3x)/4.
  auto I = runProgram(R"(
input image(2)[] a;
input image(2)[] b;
field#1(2)[] F = a ⊛ ctmr;
field#1(2)[] G = b ⊛ ctmr;
field#1(2)[] S = (2.0*F - G)/4.0;
strand St (int i) {
  vec2 pos = [ -0.3 + 0.2*real(i), 0.25 ];
  output real out = 0.0;
  update { out = S(pos); stabilize; }
}
initially [ St(i) | i in 0 .. 3 ];
)",
                      {{"a", synth::sampledPolynomial2d(16, 0, 1, 2, 0)},
                       {"b", synth::sampledPolynomial2d(16, 0, 3, 0, 0)}});
  ASSERT_TRUE(I);
  std::vector<double> Out;
  ASSERT_TRUE(I->getOutput("out", Out).isOk());
  for (int K = 0; K < 4; ++K) {
    double X = -0.3 + 0.2 * K, Y = 0.25;
    EXPECT_NEAR(Out[static_cast<size_t>(K)],
                (2 * (X + 2 * Y) - 3 * X) / 4.0, 1e-10);
  }
}

TEST(Features, GradientOfFieldSum) {
  // ∇((F + G)) = ∇F + ∇G, F = x+2y, G = 3x -> (4, 2).
  auto I = runProgram(R"(
input image(2)[] a;
input image(2)[] b;
field#1(2)[] F = a ⊛ ctmr;
field#1(2)[] G = b ⊛ ctmr;
strand St (int i) {
  output vec2 out = [0.0, 0.0];
  update { out = ∇(F + G)([0.1, -0.2]); stabilize; }
}
initially [ St(i) | i in 0 .. 1 ];
)",
                      {{"a", synth::sampledPolynomial2d(16, 0, 1, 2, 0)},
                       {"b", synth::sampledPolynomial2d(16, 0, 3, 0, 0)}});
  ASSERT_TRUE(I);
  std::vector<double> Out;
  ASSERT_TRUE(I->getOutput("out", Out).isOk());
  EXPECT_NEAR(Out[0], 4.0, 1e-9);
  EXPECT_NEAR(Out[1], 2.0, 1e-9);
}

//===----------------------------------------------------------------------===//
// 1-D fields
//===----------------------------------------------------------------------===//

TEST(Features, OneDimensionalFields) {
  // A 1-D image of f(x) = 2x over [-1,1]; probe value and derivative.
  Image Img(1, Shape{}, {32});
  double Sp = 2.0 / 31.0;
  Img.setOrientation({Sp}, {-1.0});
  for (int X = 0; X < 32; ++X) {
    int Idx[1] = {X};
    Img.setSample(Idx, 0, 2.0 * (-1 + Sp * X));
  }
  auto I = runProgram(R"(
input image(1)[] img;
field#2(1)[] F = img ⊛ bspln3;
strand S (int i) {
  real x = -0.5 + 0.25*real(i);
  output real v = 0.0;
  output real dv = 0.0;
  update {
    if (inside(x, F)) {
      v = F(x);
      dv = ∇F(x);
    }
    stabilize;
  }
}
initially [ S(i) | i in 0 .. 4 ];
)",
                      {{"img", Img}});
  ASSERT_TRUE(I);
  std::vector<double> V, DV;
  ASSERT_TRUE(I->getOutput("v", V).isOk());
  ASSERT_TRUE(I->getOutput("dv", DV).isOk());
  for (int K = 0; K < 5; ++K) {
    double X = -0.5 + 0.25 * K;
    EXPECT_NEAR(V[static_cast<size_t>(K)], 2.0 * X, 1e-9);
    EXPECT_NEAR(DV[static_cast<size_t>(K)], 2.0, 1e-9);
  }
}

//===----------------------------------------------------------------------===//
// bspln5 (extension kernel, C4)
//===----------------------------------------------------------------------===//

TEST(Features, QuinticBSplineReconstruction) {
  auto I = runProgram(R"(
input image(2)[] img;
field#4(2)[] F = img ⊛ bspln5;
field#2(2)[2,2] H = ∇⊗∇F;
strand S (int i) {
  vec2 pos = [ 0.05*real(i), 0.1 ];
  output real v = 0.0;
  output real hxy = 0.0;
  update {
    v = F(pos);
    hxy = H(pos)[0,1];
    stabilize;
  }
}
initially [ S(i) | i in 0 .. 3 ];
)",
                      // f = 1 + x - y + 0.5 x y: hessian xy entry 0.5.
                      {{"img", synth::sampledPolynomial2d(24, 1, 1, -1, 0.5)}});
  ASSERT_TRUE(I);
  std::vector<double> V, H;
  ASSERT_TRUE(I->getOutput("v", V).isOk());
  ASSERT_TRUE(I->getOutput("hxy", H).isOk());
  for (int K = 0; K < 4; ++K) {
    double X = 0.05 * K, Y = 0.1;
    EXPECT_NEAR(V[static_cast<size_t>(K)], 1 + X - Y + 0.5 * X * Y, 1e-9);
    EXPECT_NEAR(H[static_cast<size_t>(K)], 0.5, 1e-8);
  }
}

//===----------------------------------------------------------------------===//
// Sequences
//===----------------------------------------------------------------------===//

TEST(Features, SequencesEndToEnd) {
  auto I = runProgram(R"(
real{4} weights = {0.1, 0.2, 0.3, 0.4};
strand S (int i) {
  output real out = 0.0;
  update {
    out = weights[i] * 10.0;
    stabilize;
  }
}
initially [ S(i) | i in 0 .. 3 ];
)",
                      {});
  ASSERT_TRUE(I);
  std::vector<double> Out;
  ASSERT_TRUE(I->getOutput("out", Out).isOk());
  EXPECT_NEAR(Out[0], 1.0, 1e-12);
  EXPECT_NEAR(Out[3], 4.0, 1e-12);
}

TEST(Features, SequencesNativeEngine) {
  auto I = runProgram(R"(
real{3} ws = {2.0, 4.0, 8.0};
strand S (int i) {
  int j = 2 - i;
  output real out = 0.0;
  update { out = ws[j]; stabilize; }
}
initially [ S(i) | i in 0 .. 2 ];
)",
                      {}, Engine::Native);
  ASSERT_TRUE(I);
  std::vector<double> Out;
  ASSERT_TRUE(I->getOutput("out", Out).isOk());
  EXPECT_DOUBLE_EQ(Out[0], 8.0);
  EXPECT_DOUBLE_EQ(Out[1], 4.0);
  EXPECT_DOUBLE_EQ(Out[2], 2.0);
}

//===----------------------------------------------------------------------===//
// Builtins through whole programs
//===----------------------------------------------------------------------===//

TEST(Features, MiscBuiltins) {
  auto I = runProgram(R"(
strand S (int i) {
  vec3 a = [1.0, 2.0, 2.0];
  vec3 b = [3.0, 0.0, 4.0];
  output real out = 0.0;
  update {
    vec3 l = lerp(a, b, 0.5);
    vec3 m = modulate(a, b);
    real c = clamp(real(i) - 1.0, 0.0, 2.0);
    out = |l| + m[2] + c + atan2(0.0, 1.0) + pow(2.0, 3.0);
    stabilize;
  }
}
initially [ S(i) | i in 0 .. 3 ];
)",
                      {});
  ASSERT_TRUE(I);
  std::vector<double> Out;
  ASSERT_TRUE(I->getOutput("out", Out).isOk());
  // l = (2,1,3), |l| = sqrt(14); m2 = 8; pow = 8.
  for (int K = 0; K < 4; ++K) {
    double C = std::clamp(K - 1.0, 0.0, 2.0);
    EXPECT_NEAR(Out[static_cast<size_t>(K)], std::sqrt(14.0) + 8 + C + 8,
                1e-9);
  }
}

TEST(Features, CrossAndDet) {
  auto I = runProgram(R"(
strand S (int i) {
  vec3 u = [1.0, 0.0, 0.0];
  vec3 v = [0.0, 1.0, 0.0];
  tensor[2,2] m = [[1.0, 2.0], [3.0, 4.0]];
  output real out = 0.0;
  update {
    out = (u × v)[2] + det(m) + det(inv(m));
    stabilize;
  }
}
initially [ S(i) | i in 0 .. 1 ];
)",
                      {});
  ASSERT_TRUE(I);
  std::vector<double> Out;
  ASSERT_TRUE(I->getOutput("out", Out).isOk());
  EXPECT_NEAR(Out[0], 1.0 - 2.0 - 0.5, 1e-12);
}

} // namespace
} // namespace diderot

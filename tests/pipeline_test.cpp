//===--- tests/pipeline_test.cpp - compiler pass pipeline tests --------------===//
//
// Exercises the paper's compilation pipeline stage by stage: field
// normalization (Section 5.2), probe expansion (5.3), and the
// domain-specific effects of contraction and value numbering (5.4).
//
//===----------------------------------------------------------------------===//

#include <gtest/gtest.h>

#include "frontend/parser.h"
#include "frontend/typecheck.h"
#include "passes/passes.h"
#include "simple/lower.h"
#include "ir/builder.h"
#include "testprograms.h"

namespace diderot {
namespace {

ir::Module toHigh(const std::string &Src) {
  DiagnosticEngine D;
  Parser P(Src, D);
  auto Prog = P.parseProgram();
  EXPECT_FALSE(D.hasErrors()) << D.str();
  EXPECT_TRUE(typeCheck(*Prog, D)) << D.str();
  Result<ir::Module> M = lowerToHighIR(*Prog, D);
  EXPECT_TRUE(M.isOk()) << M.message();
  return M.take();
}

/// Wrap update statements in a minimal field-using program.
std::string probeProgram(const std::string &GlobalsSrc,
                         const std::string &Update) {
  return strf(R"(
input image(3)[] img;
)",
              GlobalsSrc, R"(
strand S (int i) {
  output real out = 0.0;
  update { )",
              Update, R"( stabilize; }
}
initially [ S(i) | i in 0 .. 3 ];
)");
}

//===----------------------------------------------------------------------===//
// HighIR structure
//===----------------------------------------------------------------------===//

TEST(Pipeline, HighIrHasFieldOps) {
  ir::Module M = toHigh(probeProgram("field#2(3)[] F = img ⊛ bspln3;\n",
                                     "out = F([0.1,0.2,0.3]);"));
  EXPECT_EQ(M.CurLevel, unsigned(ir::High));
  EXPECT_EQ(ir::countOps(M.Update, ir::Op::Probe), 1);
  EXPECT_EQ(ir::countOps(M.Update, ir::Op::Convolve), 1);
}

TEST(Pipeline, FieldGlobalsAreInlinedNotStored) {
  ir::Module M = toHigh(probeProgram("field#2(3)[] F = img ⊛ bspln3;\n",
                                     "out = F([0.1,0.2,0.3]);"));
  // Only the image survives as a module global; the field was inlined.
  ASSERT_EQ(M.Globals.size(), 1u);
  EXPECT_EQ(M.Globals[0].Name, "img");
}

TEST(Pipeline, NestedLoadIsHoistedToImageGlobal) {
  ir::Module M = toHigh(R"(
field#1(2)[] f = ctmr ⊛ load("x.nrrd");
strand S (int i) {
  output real out = 0.0;
  update { out = f([0.1,0.2]); stabilize; }
}
initially [ S(i) | i in 0 .. 3 ];
)");
  ASSERT_EQ(M.Globals.size(), 1u);
  EXPECT_EQ(M.Globals[0].Name, "$img0");
  EXPECT_TRUE(M.Globals[0].Ty.isImage());
  // The load happens once, in global init.
  EXPECT_EQ(ir::countOps(M.GlobalInit, ir::Op::LoadImage), 1);
  EXPECT_EQ(ir::countOps(M.Update, ir::Op::LoadImage), 0);
}

//===----------------------------------------------------------------------===//
// Normalization (Figure 10)
//===----------------------------------------------------------------------===//

/// After normalization no field-arithmetic or differentiation ops remain and
/// every probe's operand is a direct convolution.
void expectNormalized(const ir::Function &F) {
  EXPECT_EQ(ir::countOps(F, ir::Op::FieldAdd), 0);
  EXPECT_EQ(ir::countOps(F, ir::Op::FieldSub), 0);
  EXPECT_EQ(ir::countOps(F, ir::Op::FieldNeg), 0);
  EXPECT_EQ(ir::countOps(F, ir::Op::FieldScale), 0);
  EXPECT_EQ(ir::countOps(F, ir::Op::FieldDivScale), 0);
  EXPECT_EQ(ir::countOps(F, ir::Op::FieldDiff), 0);
}

TEST(Pipeline, NormalizePushesDiffToKernel) {
  ir::Module M = toHigh(probeProgram("field#2(3)[] F = img ⊛ bspln3;\n",
                                     "out = |∇F([0.1,0.2,0.3])|;"));
  ASSERT_TRUE(passes::normalizeFields(M).isOk());
  expectNormalized(M.Update);
  // The gradient probe's convolution carries one derivative level.
  std::string S = ir::print(M.Update);
  EXPECT_NE(S.find("field.convolve[bspln3']"), std::string::npos) << S;
}

TEST(Pipeline, NormalizeHessianGetsTwoDerivLevels) {
  ir::Module M = toHigh(probeProgram(
      "field#2(3)[] F = img ⊛ bspln3;\n",
      "tensor[3,3] H = ∇⊗∇F([0.1,0.2,0.3]); out = trace(H);"));
  ASSERT_TRUE(passes::normalizeFields(M).isOk());
  std::string S = ir::print(M.Update);
  EXPECT_NE(S.find("field.convolve[bspln3'']"), std::string::npos) << S;
}

TEST(Pipeline, NormalizeDistributesFieldArithmetic) {
  // (F + G)(x) => F(x) + G(x): two probes, an Add, no field arithmetic.
  ir::Module M = toHigh(probeProgram(
      R"(
input image(3)[] img2;
field#2(3)[] F = img ⊛ bspln3;
field#2(3)[] G = img2 ⊛ bspln3;
field#2(3)[] Sum = F + G;
)",
      "out = Sum([0.1,0.2,0.3]);"));
  ASSERT_TRUE(passes::normalizeFields(M).isOk());
  expectNormalized(M.Update);
  EXPECT_EQ(ir::countOps(M.Update, ir::Op::Probe), 2);
  EXPECT_GE(ir::countOps(M.Update, ir::Op::Add), 1);
}

TEST(Pipeline, NormalizeScaleBecomesTensorScale) {
  // (e * F)(x) => e * F(x) — the paper's second probe rule.
  ir::Module M = toHigh(probeProgram(
      "input real s = 2.0;\nfield#2(3)[] F = img ⊛ bspln3;\n"
      "field#2(3)[] G = s * F;\n",
      "out = G([0.1,0.2,0.3]);"));
  ASSERT_TRUE(passes::normalizeFields(M).isOk());
  expectNormalized(M.Update);
  EXPECT_EQ(ir::countOps(M.Update, ir::Op::Probe), 1);
  EXPECT_EQ(ir::countOps(M.Update, ir::Op::Mul), 1);
}

TEST(Pipeline, NormalizeDiffOfSumDistributes) {
  // ∇(F + G) => ∇F + ∇G (with the diff pushed into both kernels).
  ir::Module M = toHigh(probeProgram(
      R"(
input image(3)[] img2;
field#2(3)[] F = img ⊛ bspln3;
field#1(3)[] G = img2 ⊛ ctmr;
field#1(3)[] Sum = F + G;
)",
      "out = |∇Sum([0.1,0.2,0.3])|;"));
  ASSERT_TRUE(passes::normalizeFields(M).isOk());
  expectNormalized(M.Update);
  std::string S = ir::print(M.Update);
  EXPECT_NE(S.find("bspln3'"), std::string::npos);
  EXPECT_NE(S.find("ctmr'"), std::string::npos);
}

TEST(Pipeline, InsideOfSumChecksBothDomains) {
  ir::Module M = toHigh(probeProgram(
      R"(
input image(3)[] img2;
field#2(3)[] F = img ⊛ bspln3;
field#2(3)[] G = img2 ⊛ bspln3;
field#2(3)[] Sum = F + G;
)",
      "if (inside([0.1,0.2,0.3], Sum)) { out = 1.0; }"));
  ASSERT_TRUE(passes::normalizeFields(M).isOk());
  EXPECT_EQ(ir::countOps(M.Update, ir::Op::FieldInside), 2);
  EXPECT_GE(ir::countOps(M.Update, ir::Op::And), 1);
}

TEST(Pipeline, PaperProgramsNormalize) {
  for (const char *Src : {testprog::VrLite, testprog::Lic2d,
                          testprog::Isocontour, testprog::Curvature}) {
    // These programs load() files; we only check the compile stages here.
    ir::Module M = toHigh(Src);
    Status S = passes::normalizeFields(M);
    EXPECT_TRUE(S.isOk()) << S.message();
    expectNormalized(M.Update);
    expectNormalized(M.StrandInit);
  }
}

//===----------------------------------------------------------------------===//
// Probe expansion (MidIR)
//===----------------------------------------------------------------------===//

ir::Module toMid(const std::string &Src, bool Optimize = false) {
  ir::Module M = toHigh(Src);
  EXPECT_TRUE(passes::normalizeFields(M).isOk());
  if (Optimize)
    passes::contract(M);
  EXPECT_TRUE(passes::lowerToMid(M).isOk());
  if (Optimize) {
    passes::valueNumber(M);
    passes::contract(M);
  }
  return M;
}

TEST(Pipeline, MidHasNoFieldOps) {
  ir::Module M = toMid(probeProgram("field#2(3)[] F = img ⊛ bspln3;\n",
                                    "out = F([0.1,0.2,0.3]);"));
  EXPECT_EQ(M.CurLevel, unsigned(ir::Mid));
  EXPECT_EQ(ir::countOps(M.Update, ir::Op::Probe), 0);
  EXPECT_EQ(ir::countOps(M.Update, ir::Op::Convolve), 0);
  EXPECT_EQ(ir::countOps(M.Update, ir::Op::WorldToImage), 1);
  // bspln3 support 2 => 4 taps/axis, 3 axes => 64 voxel loads.
  EXPECT_EQ(ir::countOps(M.Update, ir::Op::VoxelLoad), 64);
  // 4 taps * 3 axes at one derivative level.
  EXPECT_EQ(ir::countOps(M.Update, ir::Op::KernelWeight), 12);
}

TEST(Pipeline, GradientProbeTransformsToWorldSpace) {
  ir::Module M = toMid(probeProgram("field#2(3)[] F = img ⊛ bspln3;\n",
                                    "out = |∇F([0.1,0.2,0.3])|;"));
  EXPECT_EQ(ir::countOps(M.Update, ir::Op::ImageGradXform), 1);
  // Two derivative levels (h, h') per axis: 24 kernel weights.
  EXPECT_EQ(ir::countOps(M.Update, ir::Op::KernelWeight), 24);
  // One set of loads per gradient component: 3 * 64.
  EXPECT_EQ(ir::countOps(M.Update, ir::Op::VoxelLoad), 192);
}

TEST(Pipeline, InsideBecomesBoundsTests) {
  ir::Module M = toMid(probeProgram(
      "field#2(3)[] F = img ⊛ bspln3;\n",
      "if (inside([0.1,0.2,0.3], F)) { out = 1.0; }"));
  EXPECT_EQ(ir::countOps(M.Update, ir::Op::FieldInside), 0);
  EXPECT_EQ(ir::countOps(M.Update, ir::Op::InsideTest), 1);
}

//===----------------------------------------------------------------------===//
// Domain-specific optimization effects (Section 5.4)
//===----------------------------------------------------------------------===//

TEST(Pipeline, ValueNumberingSharesConvolutionsOfValueAndGradient) {
  // "if a program probes both a field F and the gradient field ∇F at the
  // same position, there are redundant convolution computations that can be
  // detected and eliminated."
  std::string Src = probeProgram(
      "field#2(3)[] F = img ⊛ bspln3;\n",
      "vec3 p = [0.1,0.2,0.3]; out = F(p) + |∇F(p)|;");
  ir::Module Plain = toMid(Src, /*Optimize=*/false);
  ir::Module Opt = toMid(Src, /*Optimize=*/true);
  // Unoptimized: F probe loads 64 voxels, gradient loads 3*64 = 192.
  EXPECT_EQ(ir::countOps(Plain.Update, ir::Op::VoxelLoad), 256);
  // The loads are shared after VN (they only differ in their weights):
  // 64 unique loads remain.
  EXPECT_EQ(ir::countOps(Opt.Update, ir::Op::VoxelLoad), 64);
  // Weight evaluations shared too: h and h' per axis = 24 unique.
  EXPECT_EQ(ir::countOps(Opt.Update, ir::Op::KernelWeight), 24);
  // And only one world-to-image transform.
  EXPECT_EQ(ir::countOps(Opt.Update, ir::Op::WorldToImage), 1);
}

TEST(Pipeline, ValueNumberingExploitsHessianSymmetry) {
  // "Another example is the symmetry of the Hessian, which is also detected
  // by our value-numbering pass": H[i][j] and H[j][i] have identical
  // convolution sums, so only 6 of the 9 component sums survive.
  std::string Src = probeProgram(
      "field#2(3)[] F = img ⊛ bspln3;\n",
      "tensor[3,3] H = ∇⊗∇F([0.1,0.2,0.3]); out = |H|;");
  ir::Module Plain = toMid(Src, false);
  ir::Module Opt = toMid(Src, true);
  int PlainAdds = ir::countOps(Plain.Update, ir::Op::Add);
  int OptAdds = ir::countOps(Opt.Update, ir::Op::Add);
  // 9 component sums of 64 taps each shrink to 6.
  EXPECT_GT(PlainAdds, OptAdds);
  EXPECT_LE(OptAdds * 3, PlainAdds * 2 + 64) << "expected ~6/9 of the sums";
  EXPECT_EQ(ir::countOps(Opt.Update, ir::Op::VoxelLoad), 64);
}

TEST(Pipeline, ConstantProbePositionDoesNotFoldThroughOrientation) {
  // Even with a constant probe position, the world-to-index transform is
  // runtime image metadata, so the kernel weights remain symbolic — exactly
  // 4 taps * 3 axes of them.
  ir::Module Opt = toMid(probeProgram("field#2(3)[] F = img ⊛ bspln3;\n",
                                      "out = F([0.1,0.2,0.3]);"),
                         true);
  EXPECT_EQ(ir::countOps(Opt.Update, ir::Op::KernelWeight), 12);
}

TEST(Pipeline, ContractFoldsConstantKernelWeights) {
  // When the fractional position itself is a constant, contract evaluates
  // the kernel's weight polynomial at compile time.
  ir::Function F;
  F.Name = "kw";
  F.ResultTypes = {Type::real()};
  {
    ir::Builder B(F);
    ir::ValueId Frac = B.constReal(0.25);
    ir::ValueId W = B.emit(ir::Op::KernelWeight, {Frac}, Type::real(),
                           ir::KernelWeightAttr{"bspln3", 0, 0});
    B.exit(ir::ExitAttr::Continue, {W});
    B.finish();
  }
  ir::Module M;
  M.GlobalInit = std::move(F);
  // Minimal well-formed placeholders for the other functions.
  auto Stub = [](const char *Name) {
    ir::Function S;
    S.Name = Name;
    ir::Builder B(S);
    B.exit(ir::ExitAttr::Continue, {});
    B.finish();
    return S;
  };
  M.StrandInit = Stub("strandInit");
  M.Update = Stub("update");
  M.CreateArgs = Stub("createArgs");
  M.CurLevel = ir::Mid;
  passes::contract(M);
  EXPECT_EQ(ir::countOps(M.GlobalInit, ir::Op::KernelWeight), 0);
  // The folded value is h(0.25 - 0) for bspln3.
  std::string S = ir::print(M.GlobalInit);
  EXPECT_NE(S.find("const.real"), std::string::npos) << S;
}

TEST(Pipeline, ContractFoldsArithmetic) {
  ir::Module M = toHigh(R"(
strand S (int i) {
  output real out = 0.0;
  update { out = 2.0 * 3.0 + 1.0; stabilize; }
}
initially [ S(i) | i in 0 .. 3 ];
)");
  passes::contract(M);
  std::string S = ir::print(M.Update);
  EXPECT_NE(S.find("const.real[7.0]"), std::string::npos) << S;
  EXPECT_EQ(ir::countOps(M.Update, ir::Op::Mul), 0);
  EXPECT_EQ(ir::countOps(M.Update, ir::Op::Add), 0);
}

TEST(Pipeline, ContractFoldsConstantConditionals) {
  ir::Module M = toHigh(R"(
strand S (int i) {
  output real out = 0.0;
  update {
    if (1 < 2) { out = 1.0; } else { out = 2.0; }
    stabilize;
  }
}
initially [ S(i) | i in 0 .. 3 ];
)");
  passes::contract(M);
  EXPECT_EQ(ir::countOps(M.Update, ir::Op::If), 0);
}

TEST(Pipeline, DeadCodeEliminated) {
  ir::Module M = toHigh(R"(
strand S (int i) {
  output real out = 0.0;
  update {
    real unused = sqrt(123.0);
    vec3 alsoUnused = [1.0, 2.0, 3.0];
    out = 1.0;
    stabilize;
  }
}
initially [ S(i) | i in 0 .. 3 ];
)");
  passes::contract(M);
  EXPECT_EQ(ir::countOps(M.Update, ir::Op::Sqrt), 0);
  EXPECT_EQ(ir::countOps(M.Update, ir::Op::TensorCons), 0);
}

//===----------------------------------------------------------------------===//
// Scalarization (LowIR)
//===----------------------------------------------------------------------===//

TEST(Pipeline, LowIrIsFullyScalar) {
  ir::Module M = toMid(probeProgram(
      "field#2(3)[] F = img ⊛ bspln3;\n",
      "vec3 g = ∇F([0.1,0.2,0.3]); out = g•g;"),
      true);
  ASSERT_TRUE(passes::lowerToLow(M).isOk());
  EXPECT_EQ(M.CurLevel, unsigned(ir::Low));
  EXPECT_EQ(ir::countOps(M.Update, ir::Op::TensorCons), 0);
  EXPECT_EQ(ir::countOps(M.Update, ir::Op::TensorIndex), 0);
  EXPECT_EQ(ir::countOps(M.Update, ir::Op::Dot), 0);
  EXPECT_EQ(ir::countOps(M.Update, ir::Op::KernelWeight), 0);
  EXPECT_GT(ir::countOps(M.Update, ir::Op::PolyEval), 0);
  std::string Err = ir::verify(M.Update, ir::Low);
  EXPECT_EQ(Err, "");
}

TEST(Pipeline, FullPipelineOnPaperPrograms) {
  for (const char *Src : {testprog::VrLite, testprog::Lic2d,
                          testprog::Isocontour, testprog::Curvature}) {
    ir::Module M = toHigh(Src);
    Status S = passes::runPipeline(M);
    EXPECT_TRUE(S.isOk()) << S.message();
    EXPECT_EQ(M.CurLevel, unsigned(ir::Low));
  }
}

//===----------------------------------------------------------------------===//
// Field staticization (Section 5.1's duplication)
//===----------------------------------------------------------------------===//

TEST(Pipeline, ConditionalFieldsAreDuplicated) {
  // (F1 if b else F2)(x) => F1(x) if b else F2(x).
  ir::Module M = toHigh(R"(
input image(3)[] a;
input image(3)[] b;
input bool pick = true;
field#2(3)[] F1 = a ⊛ bspln3;
field#2(3)[] F2 = b ⊛ bspln3;
strand S (int i) {
  output real out = 0.0;
  update {
    out = (F1 if pick else F2)([0.1,0.2,0.3]);
    stabilize;
  }
}
initially [ S(i) | i in 0 .. 3 ];
)");
  // Both probes exist, in the two branches of an If.
  EXPECT_EQ(ir::countOps(M.Update, ir::Op::Probe), 2);
  EXPECT_GE(ir::countOps(M.Update, ir::Op::If), 1);
  Status S = passes::runPipeline(M);
  EXPECT_TRUE(S.isOk()) << S.message();
}

TEST(Pipeline, ConditionalFieldUnderGradient) {
  ir::Module M = toHigh(R"(
input image(3)[] a;
input image(3)[] b;
input bool pick = true;
field#2(3)[] F1 = a ⊛ bspln3;
field#2(3)[] F2 = b ⊛ bspln3;
strand S (int i) {
  output real out = 0.0;
  update {
    out = |∇(F1 if pick else F2)([0.1,0.2,0.3])|;
    stabilize;
  }
}
initially [ S(i) | i in 0 .. 3 ];
)");
  EXPECT_EQ(ir::countOps(M.Update, ir::Op::FieldDiff), 2);
  EXPECT_TRUE(passes::runPipeline(M).isOk());
}

TEST(Pipeline, FieldLocalVariablesInline) {
  ir::Module M = toHigh(R"(
input image(3)[] img;
field#2(3)[] F = img ⊛ bspln3;
strand S (int i) {
  output real out = 0.0;
  update {
    field#1(3)[3] G = ∇F;
    out = |G([0.1,0.2,0.3])|;
    stabilize;
  }
}
initially [ S(i) | i in 0 .. 3 ];
)");
  EXPECT_EQ(ir::countOps(M.Update, ir::Op::Probe), 1);
  EXPECT_TRUE(passes::runPipeline(M).isOk());
}

} // namespace
} // namespace diderot

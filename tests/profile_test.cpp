//===--- tests/profile_test.cpp - source-level profiler tests ----------------===//
//
// End-to-end checks of the cost profiler through both engines: per-line
// probe counts must be identical between the interpreter and the native
// backend (they execute the same program), counts must be nonzero exactly
// on the source lines that probe, the JSON exporters must emit parseable
// output, strand lifecycle events must balance the retirement counters,
// and jsonEscape must neutralize every character that can break a JSON
// string literal.
//
//===----------------------------------------------------------------------===//

#include <cctype>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "driver/driver.h"
#include "observe/observe.h"
#include "synth/synth.h"

namespace diderot {
namespace {

// A probing program with distinct cost classes on distinct lines: an
// `inside` test, a value probe, and a gradient probe. Every strand either
// dies (outside the field's domain) or stabilizes after one update, so
// dynamic counts are exact functions of the strand grid.
const char *ProbeProgram = R"(
input int res = 8;
input image(2)[] img;
field#1(2)[] f = ctmr ⊛ img;
strand S (int ui, int vi) {
  output vec2 pos = [ -0.8 + 1.6*real(ui)/real(res-1),
                      -0.8 + 1.6*real(vi)/real(res-1) ];
  update {
    if (!inside(pos, f))
      die;
    real v = f(pos);
    vec2 g = ∇f(pos);
    pos += 0.01 * normalize(g) * v;
    stabilize;
  }
}
initially [ S(ui, vi) | vi in 0 .. res-1, ui in 0 .. res-1 ];
)";

std::unique_ptr<rt::ProgramInstance> makeProbeInstance(Engine Eng) {
  CompileOptions Opts;
  Opts.Eng = Eng;
  // Double precision on both engines so inside()/die control flow (and with
  // it every dynamic count) is bit-identical.
  Opts.DoublePrecision = true;
  Result<CompiledProgram> CP = compileString(ProbeProgram, Opts, "profiled");
  EXPECT_TRUE(CP.isOk()) << CP.message();
  if (!CP.isOk())
    return nullptr;
  Result<std::unique_ptr<rt::ProgramInstance>> I = CP->instantiate();
  EXPECT_TRUE(I.isOk()) << I.message();
  if (!I.isOk())
    return nullptr;
  EXPECT_TRUE((*I)->setInputImage("img", synth::portrait(24)).isOk());
  EXPECT_TRUE((*I)->initialize().isOk());
  return I.take();
}

observe::ProfileData profiledRun(Engine Eng, int Workers,
                                 rt::RunStats *StatsOut = nullptr) {
  auto I = makeProbeInstance(Eng);
  if (!I)
    return {};
  rt::RunConfig C;
  C.MaxSupersteps = 100;
  C.NumWorkers = Workers;
  C.CollectStats = StatsOut != nullptr;
  C.CollectProfile = true;
  Result<rt::RunStats> R = I->run(C);
  EXPECT_TRUE(R.isOk()) << R.message();
  if (StatsOut && R.isOk())
    *StatsOut = *R;
  return I->profile();
}

/// The 1-indexed source lines of ProbeProgram whose text contains \p Needle.
std::vector<int> linesContaining(const char *Needle) {
  std::vector<int> Out;
  std::string Src = ProbeProgram;
  int Line = 1;
  size_t Start = 0;
  while (Start <= Src.size()) {
    size_t End = Src.find('\n', Start);
    if (End == std::string::npos)
      End = Src.size();
    if (Src.substr(Start, End - Start).find(Needle) != std::string::npos)
      Out.push_back(Line);
    Start = End + 1;
    ++Line;
  }
  return Out;
}

bool contains(const std::vector<int> &V, int X) {
  for (int E : V)
    if (E == X)
      return true;
  return false;
}

//===----------------------------------------------------------------------===//
// Minimal JSON well-formedness checker (same approach as observe_test.cpp:
// enough to prove the exporters emit parseable JSON without a library).
//===----------------------------------------------------------------------===//

struct JsonChecker {
  const std::string &S;
  size_t P = 0;
  bool Ok = true;

  void ws() {
    while (P < S.size() && std::isspace(static_cast<unsigned char>(S[P])))
      ++P;
  }
  bool eat(char C) {
    ws();
    if (P < S.size() && S[P] == C) {
      ++P;
      return true;
    }
    return false;
  }
  void fail() { Ok = false; }
  void value() {
    if (!Ok)
      return;
    ws();
    if (P >= S.size())
      return fail();
    char C = S[P];
    if (C == '{')
      return object();
    if (C == '[')
      return array();
    if (C == '"')
      return string();
    if (C == '-' || std::isdigit(static_cast<unsigned char>(C)))
      return number();
    for (const char *Lit : {"true", "false", "null"})
      if (S.compare(P, std::strlen(Lit), Lit) == 0) {
        P += std::strlen(Lit);
        return;
      }
    fail();
  }
  void object() {
    if (!eat('{'))
      return fail();
    if (eat('}'))
      return;
    do {
      string();
      if (!Ok || !eat(':'))
        return fail();
      value();
      if (!Ok)
        return;
    } while (eat(','));
    if (!eat('}'))
      fail();
  }
  void array() {
    if (!eat('['))
      return fail();
    if (eat(']'))
      return;
    do {
      value();
      if (!Ok)
        return;
    } while (eat(','));
    if (!eat(']'))
      fail();
  }
  void string() {
    if (!eat('"'))
      return fail();
    while (P < S.size() && S[P] != '"') {
      if (S[P] == '\\')
        ++P;
      ++P;
    }
    if (P >= S.size())
      return fail();
    ++P;
  }
  void number() {
    while (P < S.size() &&
           (std::isdigit(static_cast<unsigned char>(S[P])) || S[P] == '-' ||
            S[P] == '+' || S[P] == '.' || S[P] == 'e' || S[P] == 'E'))
      ++P;
  }
};

bool jsonParses(const std::string &Text) {
  JsonChecker C{Text};
  C.value();
  C.ws();
  return C.Ok && C.P == Text.size();
}

//===----------------------------------------------------------------------===//
// jsonEscape
//===----------------------------------------------------------------------===//

TEST(JsonEscape, QuotesBackslashesAndControlCharacters) {
  EXPECT_EQ(observe::jsonEscape("plain text 123"), "plain text 123");
  EXPECT_EQ(observe::jsonEscape("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(observe::jsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(observe::jsonEscape("line1\nline2"), "line1\\nline2");
  EXPECT_EQ(observe::jsonEscape("tab\there"), "tab\\there");
  EXPECT_EQ(observe::jsonEscape("\r\b\f"), "\\r\\b\\f");
  EXPECT_EQ(observe::jsonEscape(std::string("\x01\x1f", 2)),
            "\\u0001\\u001f");
  // UTF-8 multibyte sequences pass through untouched.
  EXPECT_EQ(observe::jsonEscape("\xe2\x8a\x9b"), "\xe2\x8a\x9b");
}

TEST(JsonEscape, EscapedStringsEmbedIntoValidJson) {
  std::string Nasty = "quote\" backslash\\ newline\n ctrl\x02 end";
  std::string Doc = "{\"s\":\"" + observe::jsonEscape(Nasty) + "\"}";
  EXPECT_TRUE(jsonParses(Doc)) << Doc;
}

//===----------------------------------------------------------------------===//
// Profiler collection + wire format
//===----------------------------------------------------------------------===//

TEST(Profiler, ShardsMergeAcrossWorkers) {
  observe::Profiler P;
  EXPECT_FALSE(P.enabled());
  P.start(2, 10);
  ASSERT_TRUE(P.enabled());
  P.shard(0)[observe::Profiler::index(3, observe::ProfClass::Probe)] += 5;
  P.shard(1)[observe::Profiler::index(3, observe::ProfClass::Probe)] += 7;
  P.shard(1)[observe::Profiler::index(9, observe::ProfClass::TensorOp)] += 2;
  observe::ProfileData D = P.take();
  EXPECT_FALSE(P.enabled());
  ASSERT_EQ(D.Lines.size(), 2u);
  EXPECT_EQ(D.Lines[0].Line, 3);
  EXPECT_EQ(D.Lines[0].Counts[0], 12u);
  EXPECT_EQ(D.Lines[1].Line, 9);
  EXPECT_EQ(D.Lines[1].Counts[3], 2u);
}

TEST(Profiler, FlattenRoundTripsCountsAndSites) {
  observe::ProfileData D;
  D.Enabled = true;
  observe::ProfileLine &L = D.at(7);
  L.Counts[0] = 41;
  L.Counts[2] = 13;
  L.Sites[0] = 3;
  std::vector<uint64_t> Counts = observe::flattenProfile(D, /*Sites=*/false);
  std::vector<uint64_t> Sites = observe::flattenProfile(D, /*Sites=*/true);
  observe::ProfileData Back;
  ASSERT_TRUE(
      observe::unflattenProfile(Counts.data(), Counts.size(), Back, false));
  ASSERT_TRUE(
      observe::unflattenProfile(Sites.data(), Sites.size(), Back, true));
  const observe::ProfileLine *BL = Back.find(7);
  ASSERT_NE(BL, nullptr);
  EXPECT_EQ(BL->Counts[0], 41u);
  EXPECT_EQ(BL->Counts[2], 13u);
  EXPECT_EQ(BL->Sites[0], 3u);
  // Malformed input (truncated record) is rejected.
  observe::ProfileData Junk;
  uint64_t Bad[2] = {1, 7};
  EXPECT_FALSE(observe::unflattenProfile(Bad, 2, Junk, false));
}

//===----------------------------------------------------------------------===//
// Per-line counts: placement and cross-engine parity
//===----------------------------------------------------------------------===//

class ProfileEngines : public ::testing::TestWithParam<std::tuple<Engine, int>> {
};

TEST_P(ProfileEngines, ProbeCountsLandExactlyOnProbingLines) {
  auto [Eng, Workers] = GetParam();
  observe::ProfileData P = profiledRun(Eng, Workers);
  ASSERT_TRUE(P.Enabled);
  ASSERT_FALSE(P.Lines.empty());

  // Lines that probe the field f (value or gradient) or run inside().
  std::vector<int> FieldLines = linesContaining("f(pos)");
  std::vector<int> InsideLines = linesContaining("inside(");
  uint64_t TotalProbes = 0, TotalInside = 0;
  for (const observe::ProfileLine &L : P.Lines) {
    int Probe = static_cast<int>(observe::ProfClass::Probe);
    int Inside = static_cast<int>(observe::ProfClass::Inside);
    if (L.Counts[Probe] > 0)
      EXPECT_TRUE(contains(FieldLines, L.Line))
          << "probe count on non-probing line " << L.Line;
    if (L.Counts[Inside] > 0)
      EXPECT_TRUE(contains(InsideLines, L.Line))
          << "inside count on non-inside line " << L.Line;
    TotalProbes += L.Counts[Probe];
    TotalInside += L.Counts[Inside];
  }
  EXPECT_GT(TotalProbes, 0u);
  EXPECT_GT(TotalInside, 0u);
}

INSTANTIATE_TEST_SUITE_P(Engines, ProfileEngines,
                         ::testing::Combine(::testing::Values(Engine::Interp,
                                                              Engine::Native),
                                            ::testing::Values(0, 3)));

TEST(ProfileParity, InterpAndNativeAgreeOnPerLineProbeCounts) {
  observe::ProfileData PI = profiledRun(Engine::Interp, 0);
  observe::ProfileData PN = profiledRun(Engine::Native, 0);
  ASSERT_TRUE(PI.Enabled);
  ASSERT_TRUE(PN.Enabled);
  int Probe = static_cast<int>(observe::ProfClass::Probe);
  int Inside = static_cast<int>(observe::ProfClass::Inside);
  // Same program, same semantics: the probe and inside counts per source
  // line must match exactly across engines. (Other classes may differ —
  // scalarization changes the tensor-op and kernel-eval instruction mix.)
  for (int Line = 1; Line <= 32; ++Line) {
    const observe::ProfileLine *LI = PI.find(Line);
    const observe::ProfileLine *LN = PN.find(Line);
    uint64_t I0 = LI ? LI->Counts[Probe] : 0;
    uint64_t N0 = LN ? LN->Counts[Probe] : 0;
    EXPECT_EQ(I0, N0) << "probe count diverges on line " << Line;
    uint64_t I2 = LI ? LI->Counts[Inside] : 0;
    uint64_t N2 = LN ? LN->Counts[Inside] : 0;
    EXPECT_EQ(I2, N2) << "inside count diverges on line " << Line;
  }
}

TEST(ProfileParity, ParallelCountsMatchSequential) {
  observe::ProfileData Seq = profiledRun(Engine::Interp, 0);
  observe::ProfileData Par = profiledRun(Engine::Interp, 4);
  for (const observe::ProfileLine &L : Seq.Lines) {
    const observe::ProfileLine *PL = Par.find(L.Line);
    ASSERT_NE(PL, nullptr) << "line " << L.Line << " lost in parallel run";
    for (int C = 0; C < observe::NumProfClasses; ++C)
      EXPECT_EQ(L.Counts[C], PL->Counts[C]) << "line " << L.Line;
  }
}

TEST(Profile, DisabledRunCollectsNothing) {
  auto I = makeProbeInstance(Engine::Interp);
  ASSERT_TRUE(I);
  Result<rt::RunStats> R = I->run(100, 0);
  ASSERT_TRUE(R.isOk());
  EXPECT_FALSE(I->profile().Enabled);
  EXPECT_TRUE(I->profile().Lines.empty());
}

TEST(Profile, NativeSourceMapReportsStaticSites) {
  observe::ProfileData P = profiledRun(Engine::Native, 0);
  ASSERT_TRUE(P.Enabled);
  uint64_t Sites = 0;
  for (const observe::ProfileLine &L : P.Lines)
    for (int C = 0; C < observe::NumProfClasses; ++C)
      Sites += L.Sites[C];
  EXPECT_GT(Sites, 0u) << "ddr_prof_map reported no instrumented sites";
}

//===----------------------------------------------------------------------===//
// Exporters: listing, JSON, round-trip with statsJson
//===----------------------------------------------------------------------===//

TEST(ProfileExport, ListingMarksProbingLines) {
  observe::ProfileData P = profiledRun(Engine::Interp, 0);
  std::string Listing = observe::profileListing(P, ProbeProgram);
  EXPECT_NE(Listing.find("probes"), std::string::npos);
  EXPECT_NE(Listing.find("inside(pos, f)"), std::string::npos);
  EXPECT_NE(Listing.find("total"), std::string::npos);
}

TEST(ProfileExport, JsonParsesAndEmbedsSourceText) {
  rt::RunStats Stats;
  observe::ProfileData P = profiledRun(Engine::Interp, 0, &Stats);
  std::string PJ = observe::profileJson(P, ProbeProgram);
  EXPECT_TRUE(jsonParses(PJ)) << PJ;
  EXPECT_NE(PJ.find("\"line\":"), std::string::npos);
  EXPECT_NE(PJ.find("\"probe\":"), std::string::npos);
  // Driver round-trip: --profile-out and --stats-out of one run both parse.
  std::string SJ = observe::statsJson(Stats);
  EXPECT_TRUE(jsonParses(SJ)) << SJ;
}

TEST(ProfileExport, EmptyProfileStillValidJson) {
  observe::ProfileData P;
  EXPECT_TRUE(jsonParses(observe::profileJson(P, "")));
  EXPECT_NE(observe::profileListing(P, "").find("not collected"),
            std::string::npos);
}

//===----------------------------------------------------------------------===//
// Strand lifecycle tracing
//===----------------------------------------------------------------------===//

class LifecycleEngines
    : public ::testing::TestWithParam<std::tuple<Engine, int>> {};

TEST_P(LifecycleEngines, EventsBalanceRetirementCounters) {
  auto [Eng, Workers] = GetParam();
  auto I = makeProbeInstance(Eng);
  ASSERT_TRUE(I);
  rt::RunConfig C;
  C.MaxSupersteps = 100;
  C.NumWorkers = Workers;
  C.CollectStats = true;
  C.CollectLifecycle = true;
  Result<rt::RunStats> R = I->run(C);
  ASSERT_TRUE(R.isOk()) << R.message();

  size_t Starts = 0, Stabilizes = 0, Dies = 0;
  for (const observe::StrandEvent &E : R->Events) {
    switch (E.Kind) {
    case observe::StrandEventKind::Start:
      ++Starts;
      break;
    case observe::StrandEventKind::Stabilize:
      ++Stabilizes;
      break;
    case observe::StrandEventKind::Die:
      ++Dies;
      break;
    case observe::StrandEventKind::Fault:
      ADD_FAILURE() << "fault event in a policy-free run";
      break;
    }
    EXPECT_GE(E.Step, 0);
    if (Workers > 0)
      EXPECT_LT(E.Worker, Workers);
  }
  EXPECT_EQ(Starts, I->numStrands());
  EXPECT_EQ(Stabilizes, I->numStable());
  EXPECT_EQ(Dies, I->numDead());

  // The event log exports as valid JSON, and the Chrome trace embeds the
  // events as instant markers.
  std::string LJ = observe::lifecycleJson(*R);
  EXPECT_TRUE(jsonParses(LJ)) << LJ;
  EXPECT_NE(LJ.find("\"kind\":\"stabilize\""), std::string::npos);
  std::string CT = observe::chromeTrace(*R);
  EXPECT_TRUE(jsonParses(CT));
  EXPECT_NE(CT.find("\"ph\":\"i\""), std::string::npos);
}

INSTANTIATE_TEST_SUITE_P(Engines, LifecycleEngines,
                         ::testing::Combine(::testing::Values(Engine::Interp,
                                                              Engine::Native),
                                            ::testing::Values(0, 3)));

TEST(Lifecycle, EventWireFormatRoundTrips) {
  rt::RunStats S;
  S.Events.push_back({42, 3, observe::StrandEventKind::Die, 1, 12345});
  S.Events.push_back({7, 0, observe::StrandEventKind::Start, 0, 100});
  std::vector<uint64_t> Flat = observe::flattenEvents(S);
  rt::RunStats Back;
  ASSERT_TRUE(observe::unflattenEvents(Flat.data(), Flat.size(), Back));
  ASSERT_EQ(Back.Events.size(), 2u);
  EXPECT_EQ(Back.Events[0].Strand, 42u);
  EXPECT_EQ(Back.Events[0].Kind, observe::StrandEventKind::Die);
  EXPECT_EQ(Back.Events[1].Ns, 100u);
}

//===----------------------------------------------------------------------===//
// Compiler pass timing
//===----------------------------------------------------------------------===//

TEST(PassTiming, EveryPassReportsTimeAndOpCounts) {
  Result<CompiledProgram> CP = compileString(ProbeProgram, {}, "timed");
  ASSERT_TRUE(CP.isOk()) << CP.message();
  const std::vector<PassTiming> &T = CP->passTimings();
  ASSERT_GE(T.size(), 4u);
  bool SawMidLower = false, SawScalarize = false;
  for (const PassTiming &P : T) {
    EXPECT_FALSE(P.Pass.empty());
    EXPECT_GT(P.OpsBefore, 0);
    EXPECT_GT(P.OpsAfter, 0);
    SawMidLower = SawMidLower || P.Pass == "mid_lower";
    SawScalarize = SawScalarize || P.Pass == "scalarize";
  }
  EXPECT_TRUE(SawMidLower);
  EXPECT_TRUE(SawScalarize);
}

TEST(PassTiming, DisabledPassesAreAbsent) {
  CompileOptions Opts;
  Opts.EnableContract = false;
  Opts.EnableValueNumbering = false;
  Result<CompiledProgram> CP = compileString(ProbeProgram, Opts, "timed2");
  ASSERT_TRUE(CP.isOk()) << CP.message();
  for (const PassTiming &P : CP->passTimings()) {
    EXPECT_EQ(P.Pass.find("contract"), std::string::npos);
    EXPECT_EQ(P.Pass.find("value_number"), std::string::npos);
  }
}

} // namespace
} // namespace diderot

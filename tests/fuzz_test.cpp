//===--- tests/fuzz_test.cpp - differential expression fuzzing -----------------===//
//
// Generates random (seeded, deterministic) Diderot programs over a small
// expression grammar and checks that every configuration agrees:
//   * interpreter with optimizations off (reference),
//   * interpreter with contract + value numbering,
//   * native engine (double precision) fully optimized.
// Any divergence indicates a bug in the optimizer, the scalarizer, or the
// code generator.
//
//===----------------------------------------------------------------------===//

#include <cmath>
#include <cstdint>

#include <gtest/gtest.h>

#include "driver/driver.h"
#include "nrrd/nrrd.h"
#include "support/strings.h"

namespace diderot {
namespace {

/// Deterministic PRNG (xorshift) so failures are reproducible by seed.
struct Rng {
  uint32_t S;
  explicit Rng(uint32_t Seed) : S(Seed * 2654435761u + 1) {}
  uint32_t next() {
    S ^= S << 13;
    S ^= S >> 17;
    S ^= S << 5;
    return S;
  }
  int range(int N) { return static_cast<int>(next() % static_cast<uint32_t>(N)); }
  double lit() { return (range(41) - 20) / 4.0; }
};

/// A random scalar expression of bounded depth over: literals, the strand
/// index (as real), safe arithmetic, math builtins, comparisons feeding
/// conditional expressions, and vec3 subexpressions collapsed by dot/norm.
std::string genScalar(Rng &R, int Depth);

std::string genVec3(Rng &R, int Depth) {
  return strf("[", genScalar(R, Depth - 1), ", ", genScalar(R, Depth - 1),
              ", ", genScalar(R, Depth - 1), "]");
}

std::string genScalar(Rng &R, int Depth) {
  if (Depth <= 0) {
    switch (R.range(3)) {
    case 0:
      return formatReal(R.lit());
    case 1:
      return "real(i)";
    default:
      return "y";
    }
  }
  switch (R.range(12)) {
  case 0:
    return strf("(", genScalar(R, Depth - 1), " + ", genScalar(R, Depth - 1),
                ")");
  case 1:
    return strf("(", genScalar(R, Depth - 1), " - ", genScalar(R, Depth - 1),
                ")");
  case 2:
    return strf("(", genScalar(R, Depth - 1), " * ", genScalar(R, Depth - 1),
                ")");
  case 3: // division guarded away from zero
    return strf("(", genScalar(R, Depth - 1), " / (abs(",
                genScalar(R, Depth - 1), ") + 1.0))");
  case 4:
    return strf("sqrt(abs(", genScalar(R, Depth - 1), "))");
  case 5:
    return strf("sin(", genScalar(R, Depth - 1), ")");
  case 6:
    return strf("min(", genScalar(R, Depth - 1), ", ",
                genScalar(R, Depth - 1), ")");
  case 7:
    return strf("max(", genScalar(R, Depth - 1), ", ",
                genScalar(R, Depth - 1), ")");
  case 8: // conditional expression
    return strf("(", genScalar(R, Depth - 1), " if ",
                genScalar(R, Depth - 1), " < ", genScalar(R, Depth - 1),
                " else ", genScalar(R, Depth - 1), ")");
  case 9: // vec3 collapsed via dot
    return strf("(", genVec3(R, Depth - 1), " • ", genVec3(R, Depth - 1),
                ")");
  case 10: // norm of a cross product
    return strf("|", genVec3(R, Depth - 1), " × ", genVec3(R, Depth - 1),
                "|");
  default:
    return strf("clamp(", genScalar(R, Depth - 1), ", -100.0, 100.0)");
  }
}

std::string genProgram(uint32_t Seed) {
  Rng R(Seed);
  std::string E1 = genScalar(R, 3);
  std::string E2 = genScalar(R, 3);
  // Two update rounds so state feeds back through the superstep.
  return strf(R"(
strand S (int i) {
  real y = real(i) * 0.5;
  int it = 0;
  output real out = 0.0;
  update {
    y = )",
              E1, R"(;
    out = out + )",
              E2, R"(;
    it += 1;
    if (it == 2) stabilize;
  }
}
initially [ S(i) | i in 0 .. 7 ];
)");
}

std::vector<double> runConfig(const std::string &Src, Engine Eng, bool Opt,
                              uint32_t Seed) {
  CompileOptions Opts;
  Opts.Eng = Eng;
  Opts.DoublePrecision = true;
  Opts.EnableContract = Opt;
  Opts.EnableValueNumbering = Opt;
  Result<CompiledProgram> CP =
      compileString(Src, Opts, strf("fuzz", Seed, Opt ? "o" : "p"));
  EXPECT_TRUE(CP.isOk()) << "seed " << Seed << "\n"
                         << Src << "\n"
                         << CP.message();
  if (!CP.isOk())
    return {};
  auto I = CP->instantiate();
  EXPECT_TRUE(I.isOk()) << I.message();
  if (!I.isOk())
    return {};
  EXPECT_TRUE((*I)->initialize().isOk());
  EXPECT_TRUE((*I)->run(10, 0).isOk());
  std::vector<double> Out;
  EXPECT_TRUE((*I)->getOutput("out", Out).isOk());
  return Out;
}

class FuzzSweep : public ::testing::TestWithParam<uint32_t> {};

TEST_P(FuzzSweep, EnginesAndOptLevelsAgree) {
  uint32_t Seed = GetParam();
  std::string Src = genProgram(Seed);
  std::vector<double> Ref = runConfig(Src, Engine::Interp, false, Seed);
  std::vector<double> Opt = runConfig(Src, Engine::Interp, true, Seed);
  ASSERT_EQ(Ref.size(), 8u) << Src;
  ASSERT_EQ(Opt.size(), Ref.size());
  for (size_t K = 0; K < Ref.size(); ++K) {
    double Tol = 1e-9 * std::max(1.0, std::abs(Ref[K]));
    EXPECT_NEAR(Ref[K], Opt[K], Tol) << "seed " << Seed << " strand " << K
                                     << "\n" << Src;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSweep, ::testing::Range(0u, 24u));

/// The native engine is expensive (host compile per program); differential
/// check on a few seeds only.
class FuzzNative : public ::testing::TestWithParam<uint32_t> {};

TEST_P(FuzzNative, NativeMatchesInterp) {
  uint32_t Seed = GetParam();
  std::string Src = genProgram(Seed);
  std::vector<double> Ref = runConfig(Src, Engine::Interp, false, Seed);
  std::vector<double> Nat = runConfig(Src, Engine::Native, true, Seed);
  ASSERT_EQ(Nat.size(), Ref.size());
  for (size_t K = 0; K < Ref.size(); ++K) {
    double Tol = 1e-9 * std::max(1.0, std::abs(Ref[K]));
    EXPECT_NEAR(Ref[K], Nat[K], Tol) << "seed " << Seed << " strand " << K
                                     << "\n" << Src;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzNative, ::testing::Values(1u, 7u, 13u));

//===----------------------------------------------------------------------===//
// Malformed-NRRD corpus: every case must come back as an error Status —
// never a crash, never an attempt to allocate the declared (hostile) size.
//===----------------------------------------------------------------------===//

struct NrrdCase {
  const char *Name;
  const char *Contents;
};

class NrrdMalformed : public ::testing::TestWithParam<NrrdCase> {};

TEST_P(NrrdMalformed, ParseRejectsWithoutCrashing) {
  const NrrdCase &C = GetParam();
  Result<Nrrd> R = nrrdParse(C.Contents);
  EXPECT_FALSE(R.isOk()) << C.Name << " should have been rejected";
  EXPECT_FALSE(R.message().empty()) << C.Name;
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, NrrdMalformed,
    ::testing::Values(
        NrrdCase{"empty", ""},
        NrrdCase{"magic_only", "NRRD0005"},
        NrrdCase{"no_magic", "hello\ntype: float\nsizes: 4\n\n"},
        NrrdCase{"missing_sizes",
                 "NRRD0005\ntype: float\nencoding: ascii\n\n1 2 3\n"},
        NrrdCase{"truncated_raw",
                 "NRRD0005\ntype: float\nsizes: 8 8\nencoding: raw\n\nxx"},
        NrrdCase{"truncated_ascii",
                 "NRRD0005\ntype: float\nsizes: 4 4\nencoding: ascii\n\n1 2\n"},
        NrrdCase{"zero_size",
                 "NRRD0005\ntype: float\nsizes: 0 4\nencoding: ascii\n\n\n"},
        NrrdCase{"negative_size",
                 "NRRD0005\ntype: float\nsizes: -3 4\nencoding: ascii\n\n1\n"},
        // 2^31-ish per axis: the element product overflows 64 bits across
        // five axes; must be rejected before any allocation happens.
        NrrdCase{"overflow_sizes", "NRRD0005\ntype: double\nsizes: 2000000000 "
                                   "2000000000 2000000000 2000000000 "
                                   "2000000000\nencoding: raw\n\n"},
        // Fits in 64 bits as an element count but asks for ~64 GB of text
        // samples backed by a few bytes of payload.
        NrrdCase{"huge_ascii", "NRRD0005\ntype: double\nsizes: 1000000000 "
                               "8\nencoding: ascii\n\n1 2 3\n"},
        NrrdCase{"absurd_dim_count",
                 "NRRD0005\ntype: float\nsizes: 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 "
                 "1 1 1 1 1\nencoding: ascii\n\n1\n"},
        NrrdCase{"garbage_sizes",
                 "NRRD0005\ntype: float\nsizes: 4 x\nencoding: ascii\n\n1\n"},
        NrrdCase{"dim_mismatch",
                 "NRRD0005\ntype: float\ndimension: 3\nsizes: 2 "
                 "2\nencoding: ascii\n\n1 2 3 4\n"},
        NrrdCase{"garbage_dimension",
                 "NRRD0005\ntype: float\ndimension: banana\nsizes: "
                 "2\nencoding: ascii\n\n1 2\n"},
        NrrdCase{"garbage_space_dimension",
                 "NRRD0005\ntype: float\nsizes: 2\nspace dimension: "
                 "3x\nencoding: ascii\n\n1 2\n"},
        NrrdCase{"bad_encoding",
                 "NRRD0005\ntype: float\nsizes: 2\nencoding: gzip\n\n\x1f\x8b"},
        NrrdCase{"bad_type",
                 "NRRD0005\ntype: quaternion\nsizes: 2\nencoding: "
                 "ascii\n\n1 2\n"},
        NrrdCase{"big_endian_raw", "NRRD0005\ntype: float\nsizes: "
                                   "1\nencoding: raw\nendian: big\n\n\0\0\0\0"},
        NrrdCase{"header_not_terminated",
                 "NRRD0005\ntype: float\nsizes: 2\nencoding: ascii\n1 2"}),
    [](const ::testing::TestParamInfo<NrrdCase> &I) { return I.param.Name; });

/// A well-formed file still parses after the hardening.
TEST(NrrdMalformed, WellFormedStillParses) {
  Result<Nrrd> R = nrrdParse("NRRD0005\ntype: float\ndimension: 2\nsizes: 2 "
                             "2\nencoding: ascii\n\n1 2 3 4\n");
  ASSERT_TRUE(R.isOk()) << R.message();
  EXPECT_EQ(R->numSamples(), 4u);
  EXPECT_DOUBLE_EQ(R->sampleAsDouble(3), 4.0);
}

} // namespace
} // namespace diderot

//===--- tests/eigen_test.cpp - symmetric eigensystem tests ----------------===//

#include <cmath>

#include <gtest/gtest.h>

#include "tensor/eigen.h"

namespace diderot {
namespace {

TEST(Eigen2, DiagonalMatrix) {
  Tensor M(Shape{2, 2}, {3, 0, 0, 1});
  Tensor L = eigenvalues(M);
  EXPECT_DOUBLE_EQ(L[0], 3.0);
  EXPECT_DOUBLE_EQ(L[1], 1.0);
}

TEST(Eigen2, OffDiagonal) {
  // [[0,1],[1,0]] has eigenvalues +-1.
  Tensor M(Shape{2, 2}, {0, 1, 1, 0});
  Tensor L = eigenvalues(M);
  EXPECT_NEAR(L[0], 1.0, 1e-14);
  EXPECT_NEAR(L[1], -1.0, 1e-14);
}

TEST(Eigen3, DiagonalSorted) {
  Tensor M(Shape{3, 3}, {1, 0, 0, 0, 5, 0, 0, 0, 3});
  Tensor L = eigenvalues(M);
  EXPECT_NEAR(L[0], 5.0, 1e-12);
  EXPECT_NEAR(L[1], 3.0, 1e-12);
  EXPECT_NEAR(L[2], 1.0, 1e-12);
}

TEST(Eigen3, MultipleOfIdentity) {
  Tensor M = scale(2.5, Tensor::identity(3));
  Tensor L = eigenvalues(M);
  for (int I = 0; I < 3; ++I)
    EXPECT_NEAR(L[I], 2.5, 1e-14);
  // Eigenvectors should still be an orthonormal set.
  Tensor V = eigenvectors(M);
  for (int I = 0; I < 3; ++I) {
    Tensor Row = Tensor::vector({V.at(I, 0), V.at(I, 1), V.at(I, 2)});
    EXPECT_NEAR(norm(Row), 1.0, 1e-12);
  }
}

/// Build a symmetric matrix with known eigensystem: Q diag(L) Q^T where Q is
/// a rotation derived from the seed.
Tensor makeSym3(double L0, double L1, double L2, double Angle1, double Angle2) {
  double C1 = std::cos(Angle1), S1 = std::sin(Angle1);
  double C2 = std::cos(Angle2), S2 = std::sin(Angle2);
  // Rotation around z then x.
  Tensor RZ(Shape{3, 3}, {C1, -S1, 0, S1, C1, 0, 0, 0, 1});
  Tensor RX(Shape{3, 3}, {1, 0, 0, 0, C2, -S2, 0, S2, C2});
  Tensor Q = dot(RZ, RX);
  Tensor D(Shape{3, 3}, {L0, 0, 0, 0, L1, 0, 0, 0, L2});
  return dot(dot(Q, D), transpose(Q));
}

class Eigen3Property : public ::testing::TestWithParam<int> {};

TEST_P(Eigen3Property, RecoverEigenvaluesSorted) {
  int Seed = GetParam();
  double L0 = 3.0 + Seed, L1 = 1.0 + 0.5 * Seed, L2 = -2.0 - 0.25 * Seed;
  Tensor M = makeSym3(L0, L1, L2, 0.3 * Seed + 0.2, 0.7 * Seed + 0.1);
  Tensor L = eigenvalues(M);
  EXPECT_NEAR(L[0], L0, 1e-9);
  EXPECT_NEAR(L[1], L1, 1e-9);
  EXPECT_NEAR(L[2], L2, 1e-9);
}

TEST_P(Eigen3Property, EigenvectorsSatisfyDefinition) {
  int Seed = GetParam();
  Tensor M = makeSym3(4.0 + Seed, 1.0, -1.0 - Seed, 0.4 * Seed, 0.9 * Seed);
  Tensor L = eigenvalues(M);
  Tensor V = eigenvectors(M);
  for (int I = 0; I < 3; ++I) {
    Tensor X = Tensor::vector({V.at(I, 0), V.at(I, 1), V.at(I, 2)});
    Tensor MX = dot(M, X);
    Tensor LX = scale(L[I], X);
    for (int C = 0; C < 3; ++C)
      EXPECT_NEAR(MX[C], LX[C], 1e-8) << "eigenpair " << I;
    EXPECT_NEAR(norm(X), 1.0, 1e-12);
  }
}

TEST_P(Eigen3Property, EigenvectorsOrthogonal) {
  int Seed = GetParam();
  Tensor M = makeSym3(5.0, 2.0 + Seed * 0.1, -3.0, 1.1 * Seed, 0.3);
  Tensor V = eigenvectors(M);
  for (int I = 0; I < 3; ++I)
    for (int J = I + 1; J < 3; ++J) {
      double Dot = V.at(I, 0) * V.at(J, 0) + V.at(I, 1) * V.at(J, 1) +
                   V.at(I, 2) * V.at(J, 2);
      EXPECT_NEAR(Dot, 0.0, 1e-8);
    }
}

TEST_P(Eigen3Property, TraceAndDetInvariants) {
  int Seed = GetParam();
  Tensor M = makeSym3(2.0 + Seed, -1.0, 0.5 * Seed, 0.2 * Seed, 0.6);
  Tensor L = eigenvalues(M);
  EXPECT_NEAR(L[0] + L[1] + L[2], trace(M), 1e-9);
  EXPECT_NEAR(L[0] * L[1] * L[2], det(M), 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Sweep, Eigen3Property, ::testing::Range(0, 12));

TEST(Eigen3, RepeatedEigenvaluePair) {
  // diag(2,2,1) rotated: lambda = {2,2,1}.
  Tensor M = makeSym3(2, 2, 1, 0.7, 0.3);
  Tensor L = eigenvalues(M);
  // Repeated eigenvalues are recovered to closed-form precision only.
  EXPECT_NEAR(L[0], 2.0, 1e-7);
  EXPECT_NEAR(L[1], 2.0, 1e-7);
  EXPECT_NEAR(L[2], 1.0, 1e-7);
  Tensor V = eigenvectors(M);
  // Each eigenvector must satisfy M v = lambda v.
  for (int I = 0; I < 3; ++I) {
    Tensor X = Tensor::vector({V.at(I, 0), V.at(I, 1), V.at(I, 2)});
    Tensor MX = dot(M, X);
    for (int C = 0; C < 3; ++C)
      EXPECT_NEAR(MX[C], L[I] * X[C], 1e-8);
  }
}

TEST(Eigen2, EigenvectorsSatisfyDefinition) {
  Tensor M(Shape{2, 2}, {2, 1, 1, 3});
  Tensor L = eigenvalues(M);
  double V[4], LL[2];
  double MRaw[4] = {2, 1, 1, 3};
  eigensystemSym2(MRaw, LL, V);
  for (int I = 0; I < 2; ++I) {
    double VX = V[2 * I], VY = V[2 * I + 1];
    EXPECT_NEAR(2 * VX + 1 * VY, L[I] * VX, 1e-12);
    EXPECT_NEAR(1 * VX + 3 * VY, L[I] * VY, 1e-12);
  }
}

TEST(EigenRaw, FloatInstantiationWorks) {
  // The generated native code calls the float instantiation.
  float M[9] = {4, 0, 0, 0, 2, 0, 0, 0, 1};
  float L[3];
  eigenvalsSym3(M, L);
  EXPECT_NEAR(L[0], 4.0f, 1e-5f);
  EXPECT_NEAR(L[1], 2.0f, 1e-5f);
  EXPECT_NEAR(L[2], 1.0f, 1e-5f);
}

} // namespace
} // namespace diderot

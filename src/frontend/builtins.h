//===--- frontend/builtins.h - Diderot builtin functions -------------------===//
//
// Part of the Diderot-C++ reproduction (PLDI 2012).
//
//===----------------------------------------------------------------------===//

#ifndef DIDEROT_FRONTEND_BUILTINS_H
#define DIDEROT_FRONTEND_BUILTINS_H

namespace diderot {

/// Builtin functions callable from Diderot source. The type checker records
/// the resolved builtin on the Apply node; the simplifier maps each to an IR
/// operation.
enum class Builtin : int {
  // Field operations.
  Inside, ///< inside(x, F)
  // Tensor operations.
  Normalize,
  Trace,
  Det,
  Inv,
  Transpose,
  Evals, ///< eigenvalues of a symmetric matrix, descending, as a vector
  Evecs, ///< unit eigenvectors as matrix rows, matching evals order
  Modulate,
  Lerp,
  // Scalar math.
  Sqrt,
  Cos,
  Sin,
  Tan,
  Asin,
  Acos,
  Atan,
  Atan2,
  Exp,
  Log,
  Pow,
  MinR,
  MaxR,
  MinI,
  MaxI,
  AbsR,
  AbsI,
  Clamp,
  Floor,
  Ceil,
  Round,
  Trunc,
  // Casts.
  CastReal, ///< real(int)
  // Global-scope only.
  Load, ///< load("file.nrrd") — image loading, typed by the declaration
};

/// Diderot-source name of \p B (for diagnostics).
const char *builtinName(Builtin B);

} // namespace diderot

#endif // DIDEROT_FRONTEND_BUILTINS_H

//===--- frontend/parser.h - Diderot parser ---------------------------------===//
//
// Part of the Diderot-C++ reproduction (PLDI 2012).
//
//===----------------------------------------------------------------------===//

#ifndef DIDEROT_FRONTEND_PARSER_H
#define DIDEROT_FRONTEND_PARSER_H

#include <memory>

#include "frontend/ast.h"
#include "frontend/lexer.h"

namespace diderot {

/// Recursive-descent parser for Diderot. Produces a Program; errors are
/// reported to the DiagnosticEngine and parsing recovers where practical.
/// Callers must check Diags.hasErrors() before using the result.
class Parser {
public:
  Parser(std::string Source, DiagnosticEngine &Diags);

  /// Parse a whole program (globals, strand, initially).
  std::unique_ptr<Program> parseProgram();

  /// Parse a single expression (for tests).
  ExprPtr parseExpressionOnly();

private:
  // Token plumbing.
  const Token &cur() const { return Cur; }
  void bump();
  bool at(Tok K) const { return Cur.Kind == K; }
  bool accept(Tok K);
  bool expect(Tok K, const char *Context);
  [[noreturn]] void noteFatal();

  // Types.
  bool atTypeStart() const;
  Type parseType();
  Shape parseShapeBrackets();

  // Declarations.
  void parseGlobal(Program &P);
  void parseStrand(Program &P);
  void parseInitially(Program &P);

  // Statements.
  StmtPtr parseStmt();
  StmtPtr parseBlock();

  // Expressions (precedence climbing).
  ExprPtr parseExpr() { return parseCond(); }
  ExprPtr parseCond();
  ExprPtr parseOr();
  ExprPtr parseAnd();
  ExprPtr parseEquality();
  ExprPtr parseRelational();
  ExprPtr parseAdditive();
  ExprPtr parseMultiplicative();
  ExprPtr parsePower();
  ExprPtr parseUnary();
  ExprPtr parseNablaOperand();
  ExprPtr parsePostfix(ExprPtr Base);
  ExprPtr parsePrimary();

  ExprPtr makeErrorExpr(SourceLoc L);

  Lexer Lex;
  DiagnosticEngine &Diags;
  Token Cur;
  /// True while parsing inside |...| so a Bar token closes the norm instead
  /// of starting a nested one.
  bool InNorm = false;
  /// Bounded error count so a hopeless parse terminates.
  int FatalBudget = 64;
};

} // namespace diderot

#endif // DIDEROT_FRONTEND_PARSER_H

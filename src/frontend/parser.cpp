//===--- frontend/parser.cpp -----------------------------------------------===//

#include "frontend/parser.h"

namespace diderot {

Parser::Parser(std::string Source, DiagnosticEngine &Diags)
    : Lex(std::move(Source), Diags), Diags(Diags) {
  Cur = Lex.next();
}

void Parser::bump() {
  if (!Cur.is(Tok::Eof))
    Cur = Lex.next();
}

bool Parser::accept(Tok K) {
  if (!at(K))
    return false;
  bump();
  return true;
}

bool Parser::expect(Tok K, const char *Context) {
  if (accept(K))
    return true;
  Diags.error(Cur.Loc, strf("expected ", tokName(K), " ", Context, ", found ",
                            tokName(Cur.Kind)));
  if (--FatalBudget <= 0) {
    // Too many errors: drain the input so recursive descent terminates.
    while (!Cur.is(Tok::Eof))
      bump();
  }
  return false;
}

ExprPtr Parser::makeErrorExpr(SourceLoc L) {
  auto E = std::make_unique<Expr>(ExprKind::IntLit, L);
  E->Ty = Type::error();
  return E;
}

//===----------------------------------------------------------------------===//
// Types
//===----------------------------------------------------------------------===//

bool Parser::atTypeStart() const {
  switch (Cur.Kind) {
  case Tok::KwBool:
  case Tok::KwInt:
  case Tok::KwString:
  case Tok::KwReal:
  case Tok::KwVec2:
  case Tok::KwVec3:
  case Tok::KwVec4:
  case Tok::KwTensor:
  case Tok::KwImage:
  case Tok::KwKernel:
  case Tok::KwField:
    return true;
  default:
    return false;
  }
}

Shape Parser::parseShapeBrackets() {
  std::vector<int> Dims;
  expect(Tok::LBracket, "to begin tensor shape");
  if (!at(Tok::RBracket)) {
    do {
      if (at(Tok::IntLit)) {
        Dims.push_back(static_cast<int>(Cur.IntVal));
        bump();
      } else {
        Diags.error(Cur.Loc, "expected dimension in tensor shape");
        bump();
      }
    } while (accept(Tok::Comma));
  }
  expect(Tok::RBracket, "to end tensor shape");
  for (int D : Dims)
    if (D < 2) {
      Diags.error(Cur.Loc, "tensor axis extents must be at least 2");
      return Shape{};
    }
  return Shape(std::move(Dims));
}

Type Parser::parseType() {
  Type Base = Type::error();
  switch (Cur.Kind) {
  case Tok::KwBool:
    bump();
    Base = Type::boolean();
    break;
  case Tok::KwInt:
    bump();
    Base = Type::integer();
    break;
  case Tok::KwString:
    bump();
    Base = Type::string();
    break;
  case Tok::KwReal:
    bump();
    Base = Type::real();
    break;
  case Tok::KwVec2:
    bump();
    Base = Type::vec(2);
    break;
  case Tok::KwVec3:
    bump();
    Base = Type::vec(3);
    break;
  case Tok::KwVec4:
    bump();
    Base = Type::vec(4);
    break;
  case Tok::KwTensor:
    bump();
    Base = Type::tensor(parseShapeBrackets());
    break;
  case Tok::KwImage: {
    bump();
    expect(Tok::LParen, "after 'image'");
    int Dim = 0;
    if (at(Tok::IntLit)) {
      Dim = static_cast<int>(Cur.IntVal);
      bump();
    } else {
      Diags.error(Cur.Loc, "expected image dimension");
    }
    expect(Tok::RParen, "after image dimension");
    Shape S = parseShapeBrackets();
    if (Dim < 1 || Dim > 3)
      Diags.error(Cur.Loc, "image dimension must be 1, 2, or 3");
    else
      Base = Type::image(Dim, std::move(S));
    break;
  }
  case Tok::KwKernel: {
    bump();
    expect(Tok::Hash, "after 'kernel'");
    if (at(Tok::IntLit)) {
      Base = Type::kernel(static_cast<int>(Cur.IntVal));
      bump();
    } else {
      Diags.error(Cur.Loc, "expected continuity after 'kernel#'");
    }
    break;
  }
  case Tok::KwField: {
    bump();
    expect(Tok::Hash, "after 'field'");
    int K = -1;
    if (at(Tok::IntLit)) {
      K = static_cast<int>(Cur.IntVal);
      bump();
    } else {
      Diags.error(Cur.Loc, "expected continuity after 'field#'");
    }
    expect(Tok::LParen, "after field continuity");
    int Dim = 0;
    if (at(Tok::IntLit)) {
      Dim = static_cast<int>(Cur.IntVal);
      bump();
    } else {
      Diags.error(Cur.Loc, "expected field domain dimension");
    }
    expect(Tok::RParen, "after field dimension");
    Shape S = parseShapeBrackets();
    if (K >= 0 && Dim >= 1 && Dim <= 3)
      Base = Type::field(K, Dim, std::move(S));
    break;
  }
  default:
    Diags.error(Cur.Loc, strf("expected a type, found ", tokName(Cur.Kind)));
    bump();
    return Type::error();
  }
  // Sequence suffix: T{n}.
  while (at(Tok::LBrace)) {
    bump();
    int N = 0;
    if (at(Tok::IntLit)) {
      N = static_cast<int>(Cur.IntVal);
      bump();
    } else {
      Diags.error(Cur.Loc, "expected sequence length");
    }
    expect(Tok::RBrace, "to close sequence length");
    if (N < 1) {
      Diags.error(Cur.Loc, "sequence length must be positive");
      return Type::error();
    }
    Base = Type::sequence(std::move(Base), N);
  }
  return Base;
}

//===----------------------------------------------------------------------===//
// Top-level declarations
//===----------------------------------------------------------------------===//

std::unique_ptr<Program> Parser::parseProgram() {
  auto P = std::make_unique<Program>();
  while (!at(Tok::Eof) && !at(Tok::KwStrand))
    parseGlobal(*P);
  if (at(Tok::KwStrand))
    parseStrand(*P);
  else
    Diags.error(Cur.Loc, "expected a strand definition");
  if (at(Tok::KwInitially))
    parseInitially(*P);
  else
    Diags.error(Cur.Loc, "expected an 'initially' section");
  if (!at(Tok::Eof))
    Diags.error(Cur.Loc, "unexpected input after 'initially' section");
  return P;
}

void Parser::parseGlobal(Program &P) {
  GlobalDecl G;
  G.Loc = Cur.Loc;
  G.IsInput = accept(Tok::KwInput);
  G.Ty = parseType();
  if (at(Tok::Ident)) {
    G.Name = Cur.Text;
    bump();
  } else {
    Diags.error(Cur.Loc, "expected global variable name");
    // Recover to the next ';'.
    while (!at(Tok::Eof) && !accept(Tok::Semi))
      bump();
    return;
  }
  if (accept(Tok::Assign))
    G.Init = parseExpr();
  else if (!G.IsInput)
    Diags.error(G.Loc, strf("global '", G.Name,
                            "' must have an initializer (only inputs may "
                            "omit one)"));
  expect(Tok::Semi, "after global definition");
  P.Globals.push_back(std::move(G));
}

void Parser::parseStrand(Program &P) {
  StrandDecl &S = P.Strand;
  S.Loc = Cur.Loc;
  expect(Tok::KwStrand, "to begin strand definition");
  if (at(Tok::Ident)) {
    S.Name = Cur.Text;
    bump();
  } else {
    Diags.error(Cur.Loc, "expected strand name");
  }
  expect(Tok::LParen, "after strand name");
  if (!at(Tok::RParen)) {
    do {
      Param Prm;
      Prm.Loc = Cur.Loc;
      Prm.Ty = parseType();
      if (at(Tok::Ident)) {
        Prm.Name = Cur.Text;
        bump();
      } else {
        Diags.error(Cur.Loc, "expected parameter name");
      }
      S.Params.push_back(std::move(Prm));
    } while (accept(Tok::Comma));
  }
  expect(Tok::RParen, "after strand parameters");
  expect(Tok::LBrace, "to begin strand body");

  while (!at(Tok::RBrace) && !at(Tok::Eof)) {
    if (at(Tok::KwUpdate)) {
      SourceLoc L = Cur.Loc;
      bump();
      if (S.UpdateBody)
        Diags.error(L, "duplicate update method");
      S.UpdateBody = parseBlock();
      continue;
    }
    if (at(Tok::KwStabilize)) {
      SourceLoc L = Cur.Loc;
      bump();
      if (S.StabilizeBody)
        Diags.error(L, "duplicate stabilize method");
      S.StabilizeBody = parseBlock();
      continue;
    }
    // State variable.
    StateVar V;
    V.Loc = Cur.Loc;
    V.IsOutput = accept(Tok::KwOutput);
    V.Ty = parseType();
    if (at(Tok::Ident)) {
      V.Name = Cur.Text;
      bump();
    } else {
      Diags.error(Cur.Loc, "expected state variable name");
      while (!at(Tok::Eof) && !accept(Tok::Semi))
        bump();
      continue;
    }
    if (expect(Tok::Assign, "state variables require an initializer"))
      V.Init = parseExpr();
    expect(Tok::Semi, "after state variable");
    S.State.push_back(std::move(V));
  }
  expect(Tok::RBrace, "to end strand body");
  if (!S.UpdateBody)
    Diags.error(S.Loc, strf("strand '", S.Name, "' has no update method"));
}

void Parser::parseInitially(Program &P) {
  Initially &I = P.Init;
  I.Loc = Cur.Loc;
  expect(Tok::KwInitially, "to begin initialization");
  if (accept(Tok::LBracket))
    I.IsGrid = true;
  else if (accept(Tok::LBrace))
    I.IsGrid = false;
  else
    Diags.error(Cur.Loc, "expected '[' or '{' after 'initially'");
  if (at(Tok::Ident)) {
    I.StrandName = Cur.Text;
    bump();
  } else {
    Diags.error(Cur.Loc, "expected strand name in initialization");
  }
  expect(Tok::LParen, "after strand name");
  if (!at(Tok::RParen)) {
    do
      I.Args.push_back(parseExpr());
    while (accept(Tok::Comma));
  }
  expect(Tok::RParen, "after strand arguments");
  expect(Tok::Bar, "before comprehension iterators");
  do {
    Iterator It;
    It.Loc = Cur.Loc;
    if (at(Tok::Ident)) {
      It.Var = Cur.Text;
      bump();
    } else {
      Diags.error(Cur.Loc, "expected iterator variable");
    }
    expect(Tok::KwIn, "in comprehension iterator");
    It.Lo = parseExpr();
    expect(Tok::DotDot, "in iterator range");
    It.Hi = parseExpr();
    I.Iters.push_back(std::move(It));
  } while (accept(Tok::Comma));
  expect(I.IsGrid ? Tok::RBracket : Tok::RBrace, "to end initialization");
  expect(Tok::Semi, "after initialization");
}

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

StmtPtr Parser::parseBlock() {
  auto B = std::make_unique<Stmt>(StmtKind::Block, Cur.Loc);
  expect(Tok::LBrace, "to begin block");
  while (!at(Tok::RBrace) && !at(Tok::Eof))
    B->Body.push_back(parseStmt());
  expect(Tok::RBrace, "to end block");
  return B;
}

StmtPtr Parser::parseStmt() {
  SourceLoc L = Cur.Loc;
  if (at(Tok::LBrace))
    return parseBlock();
  if (accept(Tok::KwIf)) {
    auto S = std::make_unique<Stmt>(StmtKind::If, L);
    expect(Tok::LParen, "after 'if'");
    S->Value = parseExpr();
    expect(Tok::RParen, "after condition");
    S->Then = parseStmt();
    if (accept(Tok::KwElse))
      S->Else = parseStmt();
    return S;
  }
  if (accept(Tok::KwStabilize)) {
    expect(Tok::Semi, "after 'stabilize'");
    return std::make_unique<Stmt>(StmtKind::Stabilize, L);
  }
  if (accept(Tok::KwDie)) {
    expect(Tok::Semi, "after 'die'");
    return std::make_unique<Stmt>(StmtKind::Die, L);
  }
  if (atTypeStart()) {
    // Possible ambiguity: `real(x)` is a cast expression, but a statement
    // cannot start with an expression in Diderot (no expression statements),
    // so a leading type keyword always begins a declaration.
    auto S = std::make_unique<Stmt>(StmtKind::Decl, L);
    S->DeclTy = parseType();
    if (at(Tok::Ident)) {
      S->Name = Cur.Text;
      bump();
    } else {
      Diags.error(Cur.Loc, "expected variable name in declaration");
    }
    if (expect(Tok::Assign, "local variables require an initializer"))
      S->Value = parseExpr();
    expect(Tok::Semi, "after declaration");
    return S;
  }
  if (at(Tok::Ident)) {
    auto S = std::make_unique<Stmt>(StmtKind::Assign, L);
    S->Name = Cur.Text;
    bump();
    switch (Cur.Kind) {
    case Tok::Assign:
      S->AOp = AssignOp::Set;
      break;
    case Tok::PlusEq:
      S->AOp = AssignOp::AddSet;
      break;
    case Tok::MinusEq:
      S->AOp = AssignOp::SubSet;
      break;
    case Tok::StarEq:
      S->AOp = AssignOp::MulSet;
      break;
    case Tok::SlashEq:
      S->AOp = AssignOp::DivSet;
      break;
    default:
      Diags.error(Cur.Loc, "expected assignment operator");
      while (!at(Tok::Eof) && !accept(Tok::Semi))
        bump();
      return S;
    }
    bump();
    S->Value = parseExpr();
    expect(Tok::Semi, "after assignment");
    return S;
  }
  Diags.error(L, strf("expected a statement, found ", tokName(Cur.Kind)));
  bump();
  if (--FatalBudget <= 0)
    while (!Cur.is(Tok::Eof))
      bump();
  return std::make_unique<Stmt>(StmtKind::Block, L);
}

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

ExprPtr Parser::parseExpressionOnly() {
  ExprPtr E = parseExpr();
  if (!at(Tok::Eof))
    Diags.error(Cur.Loc, "unexpected input after expression");
  return E;
}

ExprPtr Parser::parseCond() {
  ExprPtr ThenE = parseOr();
  if (!at(Tok::KwIf))
    return ThenE;
  SourceLoc L = Cur.Loc;
  bump();
  ExprPtr CondE = parseOr();
  expect(Tok::KwElse, "in conditional expression");
  ExprPtr ElseE = parseCond(); // right-associative chain
  auto E = std::make_unique<Expr>(ExprKind::Cond, L);
  E->Kids.push_back(std::move(ThenE));
  E->Kids.push_back(std::move(CondE));
  E->Kids.push_back(std::move(ElseE));
  return E;
}

namespace {
ExprPtr makeBinary(BinaryOp Op, SourceLoc L, ExprPtr LHS, ExprPtr RHS) {
  auto E = std::make_unique<Expr>(ExprKind::Binary, L);
  E->BOp = Op;
  E->Kids.push_back(std::move(LHS));
  E->Kids.push_back(std::move(RHS));
  return E;
}
} // namespace

ExprPtr Parser::parseOr() {
  ExprPtr E = parseAnd();
  while (at(Tok::BarBar)) {
    SourceLoc L = Cur.Loc;
    bump();
    E = makeBinary(BinaryOp::Or, L, std::move(E), parseAnd());
  }
  return E;
}

ExprPtr Parser::parseAnd() {
  ExprPtr E = parseEquality();
  while (at(Tok::AmpAmp)) {
    SourceLoc L = Cur.Loc;
    bump();
    E = makeBinary(BinaryOp::And, L, std::move(E), parseEquality());
  }
  return E;
}

ExprPtr Parser::parseEquality() {
  ExprPtr E = parseRelational();
  while (at(Tok::EqEq) || at(Tok::BangEq)) {
    BinaryOp Op = at(Tok::EqEq) ? BinaryOp::Eq : BinaryOp::Ne;
    SourceLoc L = Cur.Loc;
    bump();
    E = makeBinary(Op, L, std::move(E), parseRelational());
  }
  return E;
}

ExprPtr Parser::parseRelational() {
  ExprPtr E = parseAdditive();
  for (;;) {
    BinaryOp Op;
    switch (Cur.Kind) {
    case Tok::Lt:
      Op = BinaryOp::Lt;
      break;
    case Tok::LtEq:
      Op = BinaryOp::Le;
      break;
    case Tok::Gt:
      Op = BinaryOp::Gt;
      break;
    case Tok::GtEq:
      Op = BinaryOp::Ge;
      break;
    default:
      return E;
    }
    SourceLoc L = Cur.Loc;
    bump();
    E = makeBinary(Op, L, std::move(E), parseAdditive());
  }
}

ExprPtr Parser::parseAdditive() {
  ExprPtr E = parseMultiplicative();
  while (at(Tok::Plus) || at(Tok::Minus)) {
    BinaryOp Op = at(Tok::Plus) ? BinaryOp::Add : BinaryOp::Sub;
    SourceLoc L = Cur.Loc;
    bump();
    E = makeBinary(Op, L, std::move(E), parseMultiplicative());
  }
  return E;
}

ExprPtr Parser::parseMultiplicative() {
  ExprPtr E = parsePower();
  for (;;) {
    BinaryOp Op;
    switch (Cur.Kind) {
    case Tok::Star:
      Op = BinaryOp::Mul;
      break;
    case Tok::Slash:
      Op = BinaryOp::Div;
      break;
    case Tok::Percent:
      Op = BinaryOp::Mod;
      break;
    case Tok::CircledAst:
      Op = BinaryOp::Convolve;
      break;
    case Tok::Bullet:
      Op = BinaryOp::Dot;
      break;
    case Tok::Cross:
      Op = BinaryOp::Cross;
      break;
    case Tok::OTimes:
      Op = BinaryOp::Outer;
      break;
    default:
      return E;
    }
    SourceLoc L = Cur.Loc;
    bump();
    E = makeBinary(Op, L, std::move(E), parsePower());
  }
}

ExprPtr Parser::parsePower() {
  // Exponentiation is handled inside parseUnary so that ^ binds tighter
  // than prefix minus: -x^2 parses as -(x^2).
  return parseUnary();
}

ExprPtr Parser::parseNablaOperand() {
  if (at(Tok::Nabla)) {
    SourceLoc L = Cur.Loc;
    bump();
    UnaryOp Op = UnaryOp::Nabla;
    if (accept(Tok::OTimes))
      Op = UnaryOp::NablaOtimes;
    else if (accept(Tok::Bullet))
      Op = UnaryOp::Divergence;
    else if (accept(Tok::Cross))
      Op = UnaryOp::Curl;
    auto E = std::make_unique<Expr>(ExprKind::Unary, L);
    E->UOp = Op;
    E->Kids.push_back(parseNablaOperand());
    return E;
  }
  return parsePrimary();
}

ExprPtr Parser::parseUnary() {
  SourceLoc L = Cur.Loc;
  if (accept(Tok::Minus)) {
    auto E = std::make_unique<Expr>(ExprKind::Unary, L);
    E->UOp = UnaryOp::Neg;
    E->Kids.push_back(parseUnary());
    return E;
  }
  if (accept(Tok::Bang)) {
    auto E = std::make_unique<Expr>(ExprKind::Unary, L);
    E->UOp = UnaryOp::Not;
    E->Kids.push_back(parseUnary());
    return E;
  }
  ExprPtr Base;
  if (at(Tok::Nabla)) {
    // Differentiation binds to its field operand *before* application:
    // ∇F(pos) is (∇F)(pos), so postfix is parsed around the ∇ node.
    Base = parsePostfix(parseNablaOperand());
  } else {
    Base = parsePostfix(parsePrimary());
  }
  if (at(Tok::Caret)) {
    SourceLoc PL = Cur.Loc;
    bump();
    // Right-associative, and binds tighter than prefix minus: the exponent
    // is a unary expression (2^-3 works, -x^2 is -(x^2)).
    return makeBinary(BinaryOp::Pow, PL, std::move(Base), parseUnary());
  }
  return Base;
}

ExprPtr Parser::parsePostfix(ExprPtr Base) {
  for (;;) {
    if (at(Tok::LParen)) {
      SourceLoc L = Cur.Loc;
      bump();
      auto E = std::make_unique<Expr>(ExprKind::Apply, L);
      if (Base->Kind == ExprKind::Ident)
        E->Name = Base->Name;
      E->Kids.push_back(std::move(Base));
      bool SavedNorm = InNorm;
      InNorm = false;
      if (!at(Tok::RParen)) {
        do
          E->Kids.push_back(parseExpr());
        while (accept(Tok::Comma));
      }
      InNorm = SavedNorm;
      expect(Tok::RParen, "to close call");
      Base = std::move(E);
      continue;
    }
    if (at(Tok::LBracket)) {
      SourceLoc L = Cur.Loc;
      bump();
      auto E = std::make_unique<Expr>(ExprKind::Index, L);
      E->Kids.push_back(std::move(Base));
      bool SavedNorm = InNorm;
      InNorm = false;
      do
        E->Kids.push_back(parseExpr());
      while (accept(Tok::Comma));
      InNorm = SavedNorm;
      expect(Tok::RBracket, "to close index");
      Base = std::move(E);
      continue;
    }
    return Base;
  }
}

ExprPtr Parser::parsePrimary() {
  SourceLoc L = Cur.Loc;
  switch (Cur.Kind) {
  case Tok::IntLit: {
    auto E = std::make_unique<Expr>(ExprKind::IntLit, L);
    E->IntVal = Cur.IntVal;
    bump();
    return E;
  }
  case Tok::RealLit: {
    auto E = std::make_unique<Expr>(ExprKind::RealLit, L);
    E->RealVal = Cur.RealVal;
    bump();
    return E;
  }
  case Tok::StringLit: {
    auto E = std::make_unique<Expr>(ExprKind::StringLit, L);
    E->StrVal = Cur.Text;
    bump();
    return E;
  }
  case Tok::KwTrue:
  case Tok::KwFalse: {
    auto E = std::make_unique<Expr>(ExprKind::BoolLit, L);
    E->BoolVal = Cur.is(Tok::KwTrue);
    bump();
    return E;
  }
  case Tok::Pi: {
    bump();
    return std::make_unique<Expr>(ExprKind::PiLit, L);
  }
  case Tok::Ident: {
    auto E = std::make_unique<Expr>(ExprKind::Ident, L);
    E->Name = Cur.Text;
    bump();
    return E;
  }
  case Tok::KwReal: {
    // real(e) cast: treated as a call to the builtin "real".
    bump();
    auto Callee = std::make_unique<Expr>(ExprKind::Ident, L);
    Callee->Name = "real";
    expect(Tok::LParen, "in real(...) cast");
    auto E = std::make_unique<Expr>(ExprKind::Apply, L);
    E->Name = "real";
    E->Kids.push_back(std::move(Callee));
    E->Kids.push_back(parseExpr());
    expect(Tok::RParen, "to close real(...) cast");
    return E;
  }
  case Tok::LParen: {
    bump();
    bool SavedNorm = InNorm;
    InNorm = false;
    ExprPtr E = parseExpr();
    InNorm = SavedNorm;
    expect(Tok::RParen, "to close parenthesized expression");
    return E;
  }
  case Tok::LBracket: {
    bump();
    auto E = std::make_unique<Expr>(ExprKind::TensorCons, L);
    bool SavedNorm = InNorm;
    InNorm = false;
    if (!at(Tok::RBracket)) {
      do
        E->Kids.push_back(parseExpr());
      while (accept(Tok::Comma));
    }
    InNorm = SavedNorm;
    expect(Tok::RBracket, "to close tensor constructor");
    return E;
  }
  case Tok::LBrace: {
    bump();
    auto E = std::make_unique<Expr>(ExprKind::SeqCons, L);
    bool SavedNorm = InNorm;
    InNorm = false;
    if (!at(Tok::RBrace)) {
      do
        E->Kids.push_back(parseExpr());
      while (accept(Tok::Comma));
    }
    InNorm = SavedNorm;
    expect(Tok::RBrace, "to close sequence constructor");
    return E;
  }
  case Tok::Bar: {
    if (InNorm)
      break;
    bump();
    InNorm = true;
    auto E = std::make_unique<Expr>(ExprKind::Norm, L);
    E->Kids.push_back(parseExpr());
    InNorm = false;
    expect(Tok::Bar, "to close norm");
    return E;
  }
  default:
    break;
  }
  Diags.error(L, strf("expected an expression, found ", tokName(Cur.Kind)));
  bump();
  if (--FatalBudget <= 0)
    while (!Cur.is(Tok::Eof))
      bump();
  return makeErrorExpr(L);
}

} // namespace diderot

//===--- frontend/token.h - Diderot tokens ---------------------------------===//
//
// Part of the Diderot-C++ reproduction (PLDI 2012).
//
//===----------------------------------------------------------------------===//

#ifndef DIDEROT_FRONTEND_TOKEN_H
#define DIDEROT_FRONTEND_TOKEN_H

#include <cstdint>
#include <string>

#include "support/location.h"

namespace diderot {

/// Token kinds. Diderot's surface syntax is C-like, extended with Unicode
/// mathematical operators (Section 3.2 of the paper).
enum class Tok : uint8_t {
  Eof,
  Error,

  Ident,
  IntLit,
  RealLit,
  StringLit,

  // Keywords.
  KwBool,
  KwInt,
  KwString,
  KwReal,
  KwVec2,
  KwVec3,
  KwVec4,
  KwTensor,
  KwImage,
  KwKernel,
  KwField,
  KwInput,
  KwOutput,
  KwStrand,
  KwUpdate,
  KwStabilize,
  KwDie,
  KwInitially,
  KwIn,
  KwIf,
  KwElse,
  KwTrue,
  KwFalse,

  // Punctuation and operators.
  LParen,
  RParen,
  LBracket,
  RBracket,
  LBrace,
  RBrace,
  Comma,
  Semi,
  Colon,
  Hash,     // #
  Bar,      // |
  DotDot,   // ..
  Assign,   // =
  PlusEq,
  MinusEq,
  StarEq,
  SlashEq,
  Plus,
  Minus,
  Star,
  Slash,
  Percent,
  Caret, // ^
  Bang,  // !
  EqEq,
  BangEq,
  Lt,
  LtEq,
  Gt,
  GtEq,
  AmpAmp,
  BarBar,

  // Unicode mathematical operators.
  Nabla,      // ∇  gradient / ∇⊗ when followed by OTimes
  CircledAst, // ⊛  convolution
  OTimes,     // ⊗  outer product
  Cross,      // ×  cross product
  Bullet,     // •  dot product
  Pi,         // π  constant
};

/// The spelling used in diagnostics for a token kind.
const char *tokName(Tok K);

/// One lexed token.
struct Token {
  Tok Kind = Tok::Eof;
  SourceLoc Loc;
  std::string Text;   ///< identifier / string-literal payload
  int64_t IntVal = 0; ///< for IntLit
  double RealVal = 0; ///< for RealLit

  bool is(Tok K) const { return Kind == K; }
};

} // namespace diderot

#endif // DIDEROT_FRONTEND_TOKEN_H

//===--- frontend/ast.h - Diderot abstract syntax ---------------------------===//
//
// Part of the Diderot-C++ reproduction (PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The parse tree for Diderot programs. A program has three sections
/// (Section 3.3 of the paper): global definitions (including inputs), one
/// strand definition (the computational core), and the initialization that
/// creates the initial set of strands.
///
/// The type checker annotates expressions in place (\c Expr::Ty); the
/// simplifier consumes the annotated tree.
///
//===----------------------------------------------------------------------===//

#ifndef DIDEROT_FRONTEND_AST_H
#define DIDEROT_FRONTEND_AST_H

#include <memory>
#include <string>
#include <vector>

#include "frontend/types.h"
#include "support/location.h"

namespace diderot {

struct Expr;
struct Stmt;
using ExprPtr = std::unique_ptr<Expr>;
using StmtPtr = std::unique_ptr<Stmt>;

enum class ExprKind : uint8_t {
  IntLit,
  RealLit,
  BoolLit,
  StringLit,
  PiLit,
  Ident,
  Unary,
  Binary,
  Cond,       ///< thenE if cond else elseE (Python-style)
  Apply,      ///< callee(args): builtin call, field probe, or cast
  TensorCons, ///< [e1, ..., en]
  SeqCons,    ///< {e1, ..., en}
  Index,      ///< base[e1, ..., en]
  Norm,       ///< |e|
};

enum class UnaryOp : uint8_t {
  Neg,
  Not,
  Nabla,       ///< ∇ on scalar fields
  NablaOtimes, ///< ∇⊗ on tensor fields
  Divergence,  ///< ∇• on vector fields (paper §8.3 extension)
  Curl,        ///< ∇× on vector fields (paper §8.3 extension)
};

enum class BinaryOp : uint8_t {
  Add,
  Sub,
  Mul,
  Div,
  Mod,
  Pow,      ///< e ^ k
  Convolve, ///< V ⊛ h  (either operand order; see checker)
  Dot,      ///< •
  Cross,    ///< ×
  Outer,    ///< ⊗
  Lt,
  Le,
  Gt,
  Ge,
  Eq,
  Ne,
  And,
  Or,
};

/// Which operator family the checker resolved an overloaded node to; drives
/// the simplifier's choice of IR op.
enum class ResolvedOp : uint8_t {
  None,
  // Arithmetic instances.
  IntArith,     ///< int x int
  RealArith,    ///< real x real (includes tensor +/- tensor elementwise)
  TensorAddSub, ///< tensor +/- tensor
  ScaleLeft,    ///< real * tensor
  ScaleRight,   ///< tensor * real
  TensorDivScalar,
  // Field instances.
  FieldAddSub, ///< field +/- field
  FieldScaleLeft,
  FieldScaleRight,
  FieldDivScalar,
  FieldNeg,
  // Apply instances.
  Probe,       ///< field(pos)
  BuiltinCall, ///< named builtin
  CastReal,    ///< real(int)
  // Index instances.
  TensorIndex,
  SeqIndex,
  IdentityCons, ///< identity[n]
};

/// An expression node. One struct covers all kinds (LLVM-style tagged
/// struct), keeping the tree simple to build and walk.
struct Expr {
  ExprKind Kind;
  SourceLoc Loc;

  // Literal payloads.
  int64_t IntVal = 0;
  double RealVal = 0.0;
  bool BoolVal = false;
  std::string StrVal;

  /// Identifier name / callee name for direct calls.
  std::string Name;

  UnaryOp UOp = UnaryOp::Neg;
  BinaryOp BOp = BinaryOp::Add;

  /// Children. Unary: [operand]. Binary: [lhs, rhs]. Cond: [then, cond,
  /// else]. Apply: [callee, args...]. TensorCons/SeqCons: elements.
  /// Index: [base, indices...]. Norm: [operand].
  std::vector<ExprPtr> Kids;

  // ---- Filled in by the type checker ----
  Type Ty;
  ResolvedOp Resolved = ResolvedOp::None;
  /// For Ident: what the name resolved to.
  enum class Ref : uint8_t { None, Global, Param, State, Local, Kernel, IterVar };
  Ref RefKind = Ref::None;
  int RefIndex = -1; ///< index into the corresponding declaration list
  /// For resolved builtin calls: the Builtin enum value (builtins.h).
  int BuiltinId = -1;

  explicit Expr(ExprKind K, SourceLoc L) : Kind(K), Loc(L) {}
};

enum class StmtKind : uint8_t {
  Block,
  Decl,      ///< type name = init;
  Assign,    ///< name op= expr;
  If,        ///< if (cond) then [else els]
  Stabilize, ///< stabilize;
  Die,       ///< die;
};

enum class AssignOp : uint8_t { Set, AddSet, SubSet, MulSet, DivSet };

struct Stmt {
  StmtKind Kind;
  SourceLoc Loc;

  std::vector<StmtPtr> Body; ///< Block
  Type DeclTy;               ///< Decl
  std::string Name;          ///< Decl / Assign target
  AssignOp AOp = AssignOp::Set;
  ExprPtr Value; ///< Decl init / Assign rhs / If condition
  StmtPtr Then, Else;

  explicit Stmt(StmtKind K, SourceLoc L) : Kind(K), Loc(L) {}
};

/// A global definition, possibly an `input`.
struct GlobalDecl {
  SourceLoc Loc;
  bool IsInput = false;
  Type Ty;
  std::string Name;
  ExprPtr Init; ///< may be null for inputs without defaults
};

/// A strand parameter.
struct Param {
  SourceLoc Loc;
  Type Ty;
  std::string Name;
};

/// A strand state variable.
struct StateVar {
  SourceLoc Loc;
  bool IsOutput = false;
  Type Ty;
  std::string Name;
  ExprPtr Init;
};

/// The strand definition.
struct StrandDecl {
  SourceLoc Loc;
  std::string Name;
  std::vector<Param> Params;
  std::vector<StateVar> State;
  StmtPtr UpdateBody;
  StmtPtr StabilizeBody; ///< optional
};

/// One `v in lo .. hi` iterator of the initialization comprehension.
struct Iterator {
  SourceLoc Loc;
  std::string Var;
  ExprPtr Lo, Hi;
};

/// The `initially [ ... ]` / `initially { ... }` section. Grid
/// initializations ([]) preserve the iteration structure in the output;
/// collections ({}) output one element per stable strand.
struct Initially {
  SourceLoc Loc;
  bool IsGrid = true;
  std::string StrandName;
  std::vector<ExprPtr> Args;
  std::vector<Iterator> Iters;
};

/// A complete Diderot program.
struct Program {
  std::vector<GlobalDecl> Globals;
  StrandDecl Strand;
  Initially Init;
};

} // namespace diderot

#endif // DIDEROT_FRONTEND_AST_H

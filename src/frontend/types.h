//===--- frontend/types.h - the Diderot type system ------------------------===//
//
// Part of the Diderot-C++ reproduction (PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Diderot's types (Section 3.1 / 3.4 of the paper): a monomorphic system
/// with five concrete types — bool, int, string, tensor[shape], fixed-size
/// sequences — and three abstract types — image(d)[s], kernel#k, and
/// field#k(d)[s]. The type system "captures the important mathematical
/// properties of the program, such as the continuity of fields": kernel#k is
/// a C^k kernel, and field#k(d)[s] has k continuous derivatives, domain
/// dimension d, and range shape s.
///
/// `real` is tensor[], `vec2/vec3/vec4` are tensor[2/3/4].
///
//===----------------------------------------------------------------------===//

#ifndef DIDEROT_FRONTEND_TYPES_H
#define DIDEROT_FRONTEND_TYPES_H

#include <memory>
#include <string>

#include "tensor/shape.h"

namespace diderot {

/// The kinds of Diderot types.
enum class TypeKind : uint8_t {
  Error,  ///< placeholder produced after a type error, absorbs all checks
  Bool,
  Int,
  String,
  Tensor,   ///< tensor[shape]; scalar `real` is tensor[]
  Sequence, ///< elem{n}
  Image,    ///< image(d)[shape]
  Kernel,   ///< kernel#k
  Field,    ///< field#k(d)[shape]
};

/// A Diderot type. Value semantics; cheap to copy (sequence element types are
/// shared).
class Type {
public:
  /// Defaults to the error type.
  Type() = default;

  static Type error() { return Type(); }
  static Type boolean() { return mk(TypeKind::Bool); }
  static Type integer() { return mk(TypeKind::Int); }
  static Type string() { return mk(TypeKind::String); }
  static Type real() { return tensor(Shape{}); }
  static Type vec(int N) { return tensor(Shape{N}); }
  static Type tensor(Shape S) {
    Type T = mk(TypeKind::Tensor);
    T.Shp = std::move(S);
    return T;
  }
  static Type sequence(Type Elem, int N) {
    Type T = mk(TypeKind::Sequence);
    T.Elem = std::make_shared<Type>(std::move(Elem));
    T.SeqLen = N;
    return T;
  }
  static Type image(int Dim, Shape S) {
    Type T = mk(TypeKind::Image);
    T.Dim = Dim;
    T.Shp = std::move(S);
    return T;
  }
  static Type kernel(int K) {
    Type T = mk(TypeKind::Kernel);
    T.Diff = K;
    return T;
  }
  static Type field(int K, int Dim, Shape S) {
    Type T = mk(TypeKind::Field);
    T.Diff = K;
    T.Dim = Dim;
    T.Shp = std::move(S);
    return T;
  }

  TypeKind kind() const { return Kind; }
  bool isError() const { return Kind == TypeKind::Error; }
  bool isBool() const { return Kind == TypeKind::Bool; }
  bool isInt() const { return Kind == TypeKind::Int; }
  bool isString() const { return Kind == TypeKind::String; }
  bool isTensor() const { return Kind == TypeKind::Tensor; }
  bool isReal() const { return isTensor() && Shp.isScalar(); }
  bool isVector() const { return isTensor() && Shp.order() == 1; }
  bool isMatrix() const { return isTensor() && Shp.order() == 2; }
  bool isSequence() const { return Kind == TypeKind::Sequence; }
  bool isImage() const { return Kind == TypeKind::Image; }
  bool isKernel() const { return Kind == TypeKind::Kernel; }
  bool isField() const { return Kind == TypeKind::Field; }
  /// Is this a value type a strand can store (not image/kernel/field)?
  bool isValueType() const {
    switch (Kind) {
    case TypeKind::Bool:
    case TypeKind::Int:
    case TypeKind::String:
    case TypeKind::Tensor:
      return true;
    case TypeKind::Sequence:
      return Elem->isValueType();
    default:
      return false;
    }
  }

  /// Shape of a tensor, image value, or field range.
  const Shape &shape() const { return Shp; }
  /// Spatial dimension of an image or field domain.
  int dim() const { return Dim; }
  /// Continuity k of a kernel#k or field#k.
  int diff() const { return Diff; }
  /// Element type of a sequence.
  const Type &elem() const { return *Elem; }
  /// Length of a sequence.
  int seqLen() const { return SeqLen; }

  bool operator==(const Type &O) const {
    if (Kind != O.Kind)
      return false;
    switch (Kind) {
    case TypeKind::Error:
    case TypeKind::Bool:
    case TypeKind::Int:
    case TypeKind::String:
      return true;
    case TypeKind::Tensor:
      return Shp == O.Shp;
    case TypeKind::Sequence:
      return SeqLen == O.SeqLen && *Elem == *O.Elem;
    case TypeKind::Image:
      return Dim == O.Dim && Shp == O.Shp;
    case TypeKind::Kernel:
      return Diff == O.Diff;
    case TypeKind::Field:
      return Diff == O.Diff && Dim == O.Dim && Shp == O.Shp;
    }
    return false;
  }
  bool operator!=(const Type &O) const { return !(*this == O); }

  /// Render in Diderot syntax, e.g. "field#2(3)[]", "tensor[3,3]", "real".
  std::string str() const;

private:
  static Type mk(TypeKind K) {
    Type T;
    T.Kind = K;
    return T;
  }

  TypeKind Kind = TypeKind::Error;
  Shape Shp;
  int Dim = 0;
  int Diff = 0;
  int SeqLen = 0;
  std::shared_ptr<Type> Elem;
};

} // namespace diderot

#endif // DIDEROT_FRONTEND_TYPES_H

//===--- frontend/typecheck.cpp --------------------------------------------===//

#include "frontend/typecheck.h"

#include <algorithm>
#include <map>
#include <optional>

#include "frontend/builtins.h"
#include "frontend/schemes.h"
#include "kernels/kernel.h"

namespace diderot {

const char *builtinName(Builtin B) {
  switch (B) {
  case Builtin::Inside:
    return "inside";
  case Builtin::Normalize:
    return "normalize";
  case Builtin::Trace:
    return "trace";
  case Builtin::Det:
    return "det";
  case Builtin::Inv:
    return "inv";
  case Builtin::Transpose:
    return "transpose";
  case Builtin::Evals:
    return "evals";
  case Builtin::Evecs:
    return "evecs";
  case Builtin::Modulate:
    return "modulate";
  case Builtin::Lerp:
    return "lerp";
  case Builtin::Sqrt:
    return "sqrt";
  case Builtin::Cos:
    return "cos";
  case Builtin::Sin:
    return "sin";
  case Builtin::Tan:
    return "tan";
  case Builtin::Asin:
    return "asin";
  case Builtin::Acos:
    return "acos";
  case Builtin::Atan:
    return "atan";
  case Builtin::Atan2:
    return "atan2";
  case Builtin::Exp:
    return "exp";
  case Builtin::Log:
    return "log";
  case Builtin::Pow:
    return "pow";
  case Builtin::MinR:
  case Builtin::MinI:
    return "min";
  case Builtin::MaxR:
  case Builtin::MaxI:
    return "max";
  case Builtin::AbsR:
  case Builtin::AbsI:
    return "abs";
  case Builtin::Clamp:
    return "clamp";
  case Builtin::Floor:
    return "floor";
  case Builtin::Ceil:
    return "ceil";
  case Builtin::Round:
    return "round";
  case Builtin::Trunc:
    return "trunc";
  case Builtin::CastReal:
    return "real";
  case Builtin::Load:
    return "load";
  }
  return "?";
}

namespace {

using sch::Bindings;
using sch::ShapeElem;
using sch::ShapeScheme;
using sch::Signature;
using sch::STy;

// Scheme variable ids used throughout the tables.
constexpr int S0 = 0, S1 = 1; // SHAPE vars
constexpr int D0 = 0, N0 = 1; // DIM vars (N0 doubles as an extent var)
constexpr int K0 = 0, K1 = 1; // DIFF vars

/// Result helpers.
sch::ResultFn retTy(Type T) {
  return [T](const Bindings &) { return T; };
}
sch::ResultFn retTensor(ShapeScheme S) {
  return [S](const Bindings &B) { return Type::tensor(S.instantiate(B)); };
}

/// A signature paired with the operator-instance tag the simplifier needs.
struct OverloadEntry {
  Signature Sig;
  ResolvedOp Op = ResolvedOp::None;
  Builtin Bi = Builtin::Inside; // only meaningful for builtin tables
};

std::optional<std::pair<const OverloadEntry *, Type>>
resolve(const std::vector<OverloadEntry> &Table, const std::vector<Type> &Args) {
  for (const OverloadEntry &E : Table)
    if (std::optional<Type> R = E.Sig.apply(Args))
      return std::make_pair(&E, *R);
  return std::nullopt;
}

//===----------------------------------------------------------------------===//
// Operator tables
//===----------------------------------------------------------------------===//

const std::vector<OverloadEntry> &addSubTable() {
  static const std::vector<OverloadEntry> Table = [] {
    std::vector<OverloadEntry> T;
    T.push_back({{{STy::integer(), STy::integer()}, retTy(Type::integer()),
                  nullptr},
                 ResolvedOp::IntArith,
                 {}});
    T.push_back({{{STy::tensor(ShapeScheme::var(S0)),
                   STy::tensor(ShapeScheme::var(S0))},
                  retTensor(ShapeScheme::var(S0)),
                  nullptr},
                 ResolvedOp::TensorAddSub,
                 {}});
    // field#k + field#k' -> field#min(k,k'): addition cannot add smoothness.
    T.push_back(
        {{{STy::field(K0, ShapeElem::dimVar(D0), ShapeScheme::var(S0)),
           STy::field(K1, ShapeElem::dimVar(D0), ShapeScheme::var(S0))},
          [](const Bindings &B) {
            int K = std::min(B.Diffs.at(K0), B.Diffs.at(K1));
            return Type::field(K, B.Dims.at(D0), B.Shapes.at(S0));
          },
          nullptr},
         ResolvedOp::FieldAddSub,
         {}});
    return T;
  }();
  return Table;
}

const std::vector<OverloadEntry> &mulTable() {
  static const std::vector<OverloadEntry> Table = [] {
    std::vector<OverloadEntry> T;
    T.push_back({{{STy::integer(), STy::integer()}, retTy(Type::integer()),
                  nullptr},
                 ResolvedOp::IntArith,
                 {}});
    T.push_back({{{STy::real(), STy::real()}, retTy(Type::real()), nullptr},
                 ResolvedOp::RealArith,
                 {}});
    T.push_back({{{STy::real(), STy::tensor(ShapeScheme::var(S0))},
                  retTensor(ShapeScheme::var(S0)), nullptr},
                 ResolvedOp::ScaleLeft,
                 {}});
    T.push_back({{{STy::tensor(ShapeScheme::var(S0)), STy::real()},
                  retTensor(ShapeScheme::var(S0)), nullptr},
                 ResolvedOp::ScaleRight,
                 {}});
    T.push_back(
        {{{STy::real(),
           STy::field(K0, ShapeElem::dimVar(D0), ShapeScheme::var(S0))},
          [](const Bindings &B) {
            return Type::field(B.Diffs.at(K0), B.Dims.at(D0), B.Shapes.at(S0));
          },
          nullptr},
         ResolvedOp::FieldScaleLeft,
         {}});
    T.push_back(
        {{{STy::field(K0, ShapeElem::dimVar(D0), ShapeScheme::var(S0)),
           STy::real()},
          [](const Bindings &B) {
            return Type::field(B.Diffs.at(K0), B.Dims.at(D0), B.Shapes.at(S0));
          },
          nullptr},
         ResolvedOp::FieldScaleRight,
         {}});
    return T;
  }();
  return Table;
}

const std::vector<OverloadEntry> &divTable() {
  static const std::vector<OverloadEntry> Table = [] {
    std::vector<OverloadEntry> T;
    T.push_back({{{STy::integer(), STy::integer()}, retTy(Type::integer()),
                  nullptr},
                 ResolvedOp::IntArith,
                 {}});
    T.push_back({{{STy::real(), STy::real()}, retTy(Type::real()), nullptr},
                 ResolvedOp::RealArith,
                 {}});
    T.push_back({{{STy::tensor(ShapeScheme::var(S0)), STy::real()},
                  retTensor(ShapeScheme::var(S0)), nullptr},
                 ResolvedOp::TensorDivScalar,
                 {}});
    T.push_back(
        {{{STy::field(K0, ShapeElem::dimVar(D0), ShapeScheme::var(S0)),
           STy::real()},
          [](const Bindings &B) {
            return Type::field(B.Diffs.at(K0), B.Dims.at(D0), B.Shapes.at(S0));
          },
          nullptr},
         ResolvedOp::FieldDivScalar,
         {}});
    return T;
  }();
  return Table;
}

const std::vector<OverloadEntry> &dotTable() {
  static const std::vector<OverloadEntry> Table = [] {
    std::vector<OverloadEntry> T;
    // tensor[sigma ++ n] . tensor[n ++ tau] -> tensor[sigma ++ tau]
    T.push_back(
        {{{STy::tensor(ShapeScheme::varThen(S0, ShapeElem::dimVar(N0))),
           STy::tensor(ShapeScheme::elemThenVar(ShapeElem::dimVar(N0), S1))},
          [](const Bindings &B) {
            std::vector<int> Out = B.Shapes.at(S0).dims();
            for (int D : B.Shapes.at(S1).dims())
              Out.push_back(D);
            return Type::tensor(Shape(std::move(Out)));
          },
          nullptr},
         ResolvedOp::None,
         {}});
    return T;
  }();
  return Table;
}

const std::vector<OverloadEntry> &crossTable() {
  static const std::vector<OverloadEntry> Table = [] {
    std::vector<OverloadEntry> T;
    T.push_back({{{STy::tensor(ShapeScheme::fixed({ShapeElem::fixed(3)})),
                   STy::tensor(ShapeScheme::fixed({ShapeElem::fixed(3)}))},
                  retTy(Type::vec(3)), nullptr},
                 ResolvedOp::None,
                 {}});
    T.push_back({{{STy::tensor(ShapeScheme::fixed({ShapeElem::fixed(2)})),
                   STy::tensor(ShapeScheme::fixed({ShapeElem::fixed(2)}))},
                  retTy(Type::real()), nullptr},
                 ResolvedOp::None,
                 {}});
    return T;
  }();
  return Table;
}

const std::vector<OverloadEntry> &outerTable() {
  static const std::vector<OverloadEntry> Table = [] {
    std::vector<OverloadEntry> T;
    T.push_back(
        {{{STy::tensor(ShapeScheme::var(S0)), STy::tensor(ShapeScheme::var(S1))},
          [](const Bindings &B) {
            std::vector<int> Out = B.Shapes.at(S0).dims();
            for (int D : B.Shapes.at(S1).dims())
              Out.push_back(D);
            return Type::tensor(Shape(std::move(Out)));
          },
          [](const Bindings &B) {
            return B.Shapes.at(S0).order() >= 1 &&
                   B.Shapes.at(S1).order() >= 1;
          }},
         ResolvedOp::None,
         {}});
    return T;
  }();
  return Table;
}

const std::vector<OverloadEntry> &convolveTable() {
  static const std::vector<OverloadEntry> Table = [] {
    std::vector<OverloadEntry> T;
    auto Res = [](const Bindings &B) {
      return Type::field(B.Diffs.at(K0), B.Dims.at(D0), B.Shapes.at(S0));
    };
    // V (*) h  and  h (*) V (Figure 7 writes `ctmr (*) load(...)`).
    T.push_back({{{STy::image(ShapeElem::dimVar(D0), ShapeScheme::var(S0)),
                   STy::kernel(K0)},
                  Res,
                  nullptr},
                 ResolvedOp::None,
                 {}});
    T.push_back({{{STy::kernel(K0),
                   STy::image(ShapeElem::dimVar(D0), ShapeScheme::var(S0))},
                  Res,
                  nullptr},
                 ResolvedOp::None,
                 {}});
    return T;
  }();
  return Table;
}

const std::vector<OverloadEntry> &powTable() {
  static const std::vector<OverloadEntry> Table = [] {
    std::vector<OverloadEntry> T;
    T.push_back({{{STy::real(), STy::real()}, retTy(Type::real()), nullptr},
                 ResolvedOp::RealArith,
                 {}});
    // |G|^2 : integer exponents are common in curvature formulas.
    T.push_back({{{STy::real(), STy::integer()}, retTy(Type::real()), nullptr},
                 ResolvedOp::RealArith,
                 {}});
    return T;
  }();
  return Table;
}

//===----------------------------------------------------------------------===//
// Builtin function table
//===----------------------------------------------------------------------===//

const std::map<std::string, std::vector<OverloadEntry>> &builtinTable() {
  static const std::map<std::string, std::vector<OverloadEntry>> Table = [] {
    std::map<std::string, std::vector<OverloadEntry>> T;
    auto Add = [&T](const char *Name, std::vector<STy> Params,
                    sch::ResultFn Res, Builtin B, sch::GuardFn Guard = nullptr) {
      T[Name].push_back(
          {{std::move(Params), std::move(Res), std::move(Guard)},
           ResolvedOp::BuiltinCall,
           B});
    };
    ShapeScheme SqMat = ShapeScheme::fixed(
        {ShapeElem::dimVar(N0), ShapeElem::dimVar(N0)});

    Add("normalize", {STy::tensor(ShapeScheme::var(S0))},
        retTensor(ShapeScheme::var(S0)), Builtin::Normalize,
        [](const Bindings &B) { return B.Shapes.at(S0).order() >= 1; });
    Add("trace", {STy::tensor(SqMat)}, retTy(Type::real()), Builtin::Trace);
    Add("det", {STy::tensor(SqMat)}, retTy(Type::real()), Builtin::Det);
    Add("inv", {STy::tensor(SqMat)}, retTensor(SqMat), Builtin::Inv);
    Add("transpose",
        {STy::tensor(
            ShapeScheme::fixed({ShapeElem::dimVar(D0), ShapeElem::dimVar(N0)}))},
        retTensor(
            ShapeScheme::fixed({ShapeElem::dimVar(N0), ShapeElem::dimVar(D0)})),
        Builtin::Transpose);
    Add("evals", {STy::tensor(SqMat)},
        retTensor(ShapeScheme::fixed({ShapeElem::dimVar(N0)})), Builtin::Evals,
        [](const Bindings &B) {
          int N = B.Dims.at(N0);
          return N == 2 || N == 3;
        });
    Add("evecs", {STy::tensor(SqMat)}, retTensor(SqMat), Builtin::Evecs,
        [](const Bindings &B) {
          int N = B.Dims.at(N0);
          return N == 2 || N == 3;
        });
    Add("modulate",
        {STy::tensor(ShapeScheme::var(S0)), STy::tensor(ShapeScheme::var(S0))},
        retTensor(ShapeScheme::var(S0)), Builtin::Modulate);
    Add("lerp",
        {STy::tensor(ShapeScheme::var(S0)), STy::tensor(ShapeScheme::var(S0)),
         STy::real()},
        retTensor(ShapeScheme::var(S0)), Builtin::Lerp);

    auto R1 = [&](const char *Name, Builtin B) {
      Add(Name, {STy::real()}, retTy(Type::real()), B);
    };
    R1("sqrt", Builtin::Sqrt);
    R1("cos", Builtin::Cos);
    R1("sin", Builtin::Sin);
    R1("tan", Builtin::Tan);
    R1("asin", Builtin::Asin);
    R1("acos", Builtin::Acos);
    R1("atan", Builtin::Atan);
    R1("exp", Builtin::Exp);
    R1("log", Builtin::Log);
    R1("floor", Builtin::Floor);
    R1("ceil", Builtin::Ceil);
    R1("round", Builtin::Round);
    R1("trunc", Builtin::Trunc);

    Add("atan2", {STy::real(), STy::real()}, retTy(Type::real()),
        Builtin::Atan2);
    Add("pow", {STy::real(), STy::real()}, retTy(Type::real()), Builtin::Pow);
    Add("min", {STy::real(), STy::real()}, retTy(Type::real()), Builtin::MinR);
    Add("min", {STy::integer(), STy::integer()}, retTy(Type::integer()),
        Builtin::MinI);
    Add("max", {STy::real(), STy::real()}, retTy(Type::real()), Builtin::MaxR);
    Add("max", {STy::integer(), STy::integer()}, retTy(Type::integer()),
        Builtin::MaxI);
    Add("abs", {STy::real()}, retTy(Type::real()), Builtin::AbsR);
    Add("abs", {STy::integer()}, retTy(Type::integer()), Builtin::AbsI);
    Add("clamp", {STy::real(), STy::real(), STy::real()}, retTy(Type::real()),
        Builtin::Clamp);
    Add("real", {STy::integer()}, retTy(Type::real()), Builtin::CastReal);
    Add("real", {STy::real()}, retTy(Type::real()), Builtin::CastReal);
    return T;
  }();
  return Table;
}

//===----------------------------------------------------------------------===//
// The checker
//===----------------------------------------------------------------------===//

class Checker {
public:
  Checker(Program &P, DiagnosticEngine &Diags) : P(P), Diags(Diags) {}

  bool run();

private:
  struct Binding {
    Expr::Ref Kind = Expr::Ref::None;
    int Index = -1;
    Type Ty;
    bool Mutable = false;
  };

  void pushScope() { Scopes.emplace_back(); }
  void popScope() { Scopes.pop_back(); }
  bool declare(SourceLoc Loc, const std::string &Name, Binding B);
  const Binding *lookup(const std::string &Name) const;

  void checkGlobals();
  void checkInputDefaultRefs(const Expr &E);
  void preResolveLoads(Expr &E, const Type &ImgTy);
  void checkStrand();
  void checkInitially();
  void checkStmt(Stmt &S);

  Type checkExpr(Expr &E);
  Type checkIdent(Expr &E);
  Type checkUnary(Expr &E);
  Type checkBinary(Expr &E);
  Type checkApply(Expr &E);
  Type checkIndex(Expr &E);
  Type checkCond(Expr &E);
  Type checkTensorCons(Expr &E);
  Type checkSeqCons(Expr &E);

  Type err(SourceLoc Loc, const std::string &Msg) {
    Diags.error(Loc, Msg);
    return Type::error();
  }

  /// Position type for probing a d-dimensional field: real for d == 1,
  /// otherwise tensor[d].
  static Type positionType(int D) {
    return D == 1 ? Type::real() : Type::vec(D);
  }

  Program &P;
  DiagnosticEngine &Diags;
  std::vector<std::map<std::string, Binding>> Scopes;
  bool InUpdate = false;
  bool SawDie = false;
};

bool Checker::declare(SourceLoc Loc, const std::string &Name, Binding B) {
  if (!Scopes.back().emplace(Name, std::move(B)).second) {
    Diags.error(Loc, strf("redefinition of '", Name, "'"));
    return false;
  }
  return true;
}

const Checker::Binding *Checker::lookup(const std::string &Name) const {
  for (auto It = Scopes.rbegin(); It != Scopes.rend(); ++It) {
    auto F = It->find(Name);
    if (F != It->end())
      return &F->second;
  }
  return nullptr;
}

bool Checker::run() {
  pushScope();
  // Built-in kernels are pre-bound globals of kernel type.
  for (const std::string &Name : kernels::allNames()) {
    const Kernel *K = kernels::byName(Name);
    declare({}, Name,
            {Expr::Ref::Kernel, 0, Type::kernel(K->continuity()), false});
  }
  checkGlobals();
  checkStrand();
  checkInitially();
  popScope();
  return !Diags.hasErrors();
}

void Checker::checkGlobals() {
  for (size_t I = 0; I < P.Globals.size(); ++I) {
    GlobalDecl &G = P.Globals[I];
    if (G.Ty.isError())
      continue;
    if (G.IsInput && (G.Ty.isField() || G.Ty.isKernel()))
      err(G.Loc, "fields and kernels cannot be input variables");
    if (G.Init) {
      // `load(...)` is only allowed in global initializers; its image type
      // is determined by the declaration: image-typed globals use it
      // directly, and within a field#k(d)[s] initializer (Figure 7 writes
      // `ctmr ⊛ load("ddro.nrrd")`) the image type is image(d)[s], since
      // field operations preserve domain dimension and range shape.
      if (G.Ty.isImage())
        preResolveLoads(*G.Init, G.Ty);
      else if (G.Ty.isField())
        preResolveLoads(*G.Init, Type::image(G.Ty.dim(), G.Ty.shape()));
      Type T = checkExpr(*G.Init);
      if (!T.isError() && T != G.Ty)
        err(G.Init->Loc, strf("global '", G.Name, "' declared ", G.Ty.str(),
                              " but initialized with ", T.str()));
      // Input defaults are evaluated before the (non-input) globals are
      // computed, so they may only reference other inputs.
      if (G.IsInput)
        checkInputDefaultRefs(*G.Init);
    } else if (G.Ty.isImage()) {
      // An image input without a default: the host must provide it.
    }
    declare(G.Loc, G.Name,
            {Expr::Ref::Global, static_cast<int>(I), G.Ty, false});
  }
}

void Checker::checkInputDefaultRefs(const Expr &E) {
  if (E.Kind == ExprKind::Ident && E.RefKind == Expr::Ref::Global &&
      E.RefIndex >= 0 &&
      !P.Globals[static_cast<size_t>(E.RefIndex)].IsInput) {
    err(E.Loc, strf("input default may not reference non-input global '",
                    E.Name, "'"));
  }
  for (const ExprPtr &Kid : E.Kids)
    checkInputDefaultRefs(*Kid);
}

void Checker::preResolveLoads(Expr &E, const Type &ImgTy) {
  if (E.Kind == ExprKind::Apply && E.Name == "load" && !lookup("load")) {
    if (E.Kids.size() != 2 || E.Kids[1]->Kind != ExprKind::StringLit) {
      err(E.Loc, "load(...) takes one string-literal file name");
      return;
    }
    E.Ty = ImgTy;
    E.Resolved = ResolvedOp::BuiltinCall;
    E.BuiltinId = static_cast<int>(Builtin::Load);
    E.Kids[1]->Ty = Type::string();
    return;
  }
  for (ExprPtr &Kid : E.Kids)
    preResolveLoads(*Kid, ImgTy);
}

void Checker::checkStrand() {
  StrandDecl &S = P.Strand;
  pushScope();
  for (size_t I = 0; I < S.Params.size(); ++I) {
    Param &Prm = S.Params[I];
    if (!Prm.Ty.isError() && !Prm.Ty.isValueType())
      err(Prm.Loc, strf("strand parameter '", Prm.Name,
                        "' must have a concrete value type"));
    declare(Prm.Loc, Prm.Name,
            {Expr::Ref::Param, static_cast<int>(I), Prm.Ty, false});
  }
  int NumOutputs = 0;
  for (size_t I = 0; I < S.State.size(); ++I) {
    StateVar &V = S.State[I];
    if (!V.Ty.isError() && !V.Ty.isValueType())
      err(V.Loc, strf("strand state variable '", V.Name,
                      "' must have a concrete value type"));
    if (V.IsOutput) {
      ++NumOutputs;
      if (!V.Ty.isTensor() && !V.Ty.isInt())
        err(V.Loc, "output variables must have tensor or int type");
    }
    if (V.Init) {
      Type T = checkExpr(*V.Init);
      if (!T.isError() && !V.Ty.isError() && T != V.Ty)
        err(V.Init->Loc, strf("state variable '", V.Name, "' declared ",
                              V.Ty.str(), " but initialized with ", T.str()));
    }
    declare(V.Loc, V.Name,
            {Expr::Ref::State, static_cast<int>(I), V.Ty, true});
  }
  if (NumOutputs == 0)
    err(S.Loc, strf("strand '", S.Name, "' has no output variables"));

  if (S.UpdateBody) {
    InUpdate = true;
    pushScope();
    checkStmt(*S.UpdateBody);
    popScope();
    InUpdate = false;
  }
  if (S.StabilizeBody) {
    pushScope();
    checkStmt(*S.StabilizeBody);
    popScope();
  }
  popScope();
}

void Checker::checkInitially() {
  Initially &I = P.Init;
  if (I.StrandName != P.Strand.Name && !I.StrandName.empty())
    err(I.Loc, strf("initialization names strand '", I.StrandName,
                    "' but the program defines '", P.Strand.Name, "'"));
  pushScope();
  if (I.Iters.empty())
    err(I.Loc, "initialization needs at least one iterator");
  // Bounds are checked before any iterator variable is in scope: ranges may
  // reference globals only, keeping grids rectangular.
  for (Iterator &It : I.Iters) {
    if (It.Lo) {
      Type T = checkExpr(*It.Lo);
      if (!T.isError() && !T.isInt())
        err(It.Lo->Loc, "iterator bounds must be int");
    }
    if (It.Hi) {
      Type T = checkExpr(*It.Hi);
      if (!T.isError() && !T.isInt())
        err(It.Hi->Loc, "iterator bounds must be int");
    }
  }
  for (size_t K = 0; K < I.Iters.size(); ++K)
    declare(I.Iters[K].Loc, I.Iters[K].Var,
            {Expr::Ref::IterVar, static_cast<int>(K), Type::integer(), false});
  if (I.Args.size() != P.Strand.Params.size()) {
    err(I.Loc, strf("strand '", P.Strand.Name, "' takes ",
                    P.Strand.Params.size(), " arguments but ", I.Args.size(),
                    " were supplied"));
  } else {
    for (size_t K = 0; K < I.Args.size(); ++K) {
      Type T = checkExpr(*I.Args[K]);
      const Type &Want = P.Strand.Params[K].Ty;
      if (!T.isError() && !Want.isError() && T != Want)
        err(I.Args[K]->Loc, strf("strand argument ", K + 1, " has type ",
                                 T.str(), " but parameter '",
                                 P.Strand.Params[K].Name, "' is ", Want.str()));
    }
  }
  popScope();
  if (I.IsGrid && SawDie)
    Diags.warning(I.Loc,
                  "grid initializations assume strands never die; `die` "
                  "found in the update method");
}

void Checker::checkStmt(Stmt &S) {
  switch (S.Kind) {
  case StmtKind::Block:
    pushScope();
    for (StmtPtr &Child : S.Body)
      checkStmt(*Child);
    popScope();
    return;
  case StmtKind::Decl: {
    if (S.Value) {
      Type T = checkExpr(*S.Value);
      if (!T.isError() && !S.DeclTy.isError() && T != S.DeclTy)
        err(S.Value->Loc, strf("variable '", S.Name, "' declared ",
                               S.DeclTy.str(), " but initialized with ",
                               T.str()));
    }
    if (S.DeclTy.isImage() || S.DeclTy.isKernel())
      err(S.Loc, "image and kernel values can only be bound at global scope");
    declare(S.Loc, S.Name, {Expr::Ref::Local, -1, S.DeclTy, true});
    return;
  }
  case StmtKind::Assign: {
    const Binding *B = lookup(S.Name);
    if (!B) {
      err(S.Loc, strf("assignment to undefined variable '", S.Name, "'"));
      if (S.Value)
        checkExpr(*S.Value);
      return;
    }
    if (!B->Mutable)
      err(S.Loc, strf("'", S.Name, "' is immutable"));
    // Desugar `x op= e` to `x = x op e` so later phases see one form.
    if (S.AOp != AssignOp::Set) {
      auto Lhs = std::make_unique<Expr>(ExprKind::Ident, S.Loc);
      Lhs->Name = S.Name;
      auto Bin = std::make_unique<Expr>(ExprKind::Binary, S.Loc);
      switch (S.AOp) {
      case AssignOp::AddSet:
        Bin->BOp = BinaryOp::Add;
        break;
      case AssignOp::SubSet:
        Bin->BOp = BinaryOp::Sub;
        break;
      case AssignOp::MulSet:
        Bin->BOp = BinaryOp::Mul;
        break;
      case AssignOp::DivSet:
        Bin->BOp = BinaryOp::Div;
        break;
      case AssignOp::Set:
        break;
      }
      Bin->Kids.push_back(std::move(Lhs));
      Bin->Kids.push_back(std::move(S.Value));
      S.Value = std::move(Bin);
      S.AOp = AssignOp::Set;
    }
    Type T = checkExpr(*S.Value);
    if (!T.isError() && !B->Ty.isError() && T != B->Ty)
      err(S.Value->Loc, strf("cannot assign ", T.str(), " to '", S.Name,
                             "' of type ", B->Ty.str()));
    return;
  }
  case StmtKind::If: {
    Type T = checkExpr(*S.Value);
    if (!T.isError() && !T.isBool())
      err(S.Value->Loc, strf("condition must be bool, found ", T.str()));
    pushScope();
    checkStmt(*S.Then);
    popScope();
    if (S.Else) {
      pushScope();
      checkStmt(*S.Else);
      popScope();
    }
    return;
  }
  case StmtKind::Stabilize:
    if (!InUpdate)
      err(S.Loc, "'stabilize' is only allowed in the update method");
    return;
  case StmtKind::Die:
    if (!InUpdate)
      err(S.Loc, "'die' is only allowed in the update method");
    SawDie = true;
    return;
  }
}

Type Checker::checkExpr(Expr &E) {
  Type T = Type::error();
  switch (E.Kind) {
  case ExprKind::IntLit:
    T = Type::integer();
    break;
  case ExprKind::RealLit:
  case ExprKind::PiLit:
    T = Type::real();
    break;
  case ExprKind::BoolLit:
    T = Type::boolean();
    break;
  case ExprKind::StringLit:
    T = Type::string();
    break;
  case ExprKind::Ident:
    T = checkIdent(E);
    break;
  case ExprKind::Unary:
    T = checkUnary(E);
    break;
  case ExprKind::Binary:
    T = checkBinary(E);
    break;
  case ExprKind::Cond:
    T = checkCond(E);
    break;
  case ExprKind::Apply:
    T = checkApply(E);
    break;
  case ExprKind::TensorCons:
    T = checkTensorCons(E);
    break;
  case ExprKind::SeqCons:
    T = checkSeqCons(E);
    break;
  case ExprKind::Index:
    T = checkIndex(E);
    break;
  case ExprKind::Norm: {
    Type A = checkExpr(*E.Kids[0]);
    if (A.isError())
      break;
    if (!A.isTensor()) {
      T = err(E.Loc, strf("|...| requires a tensor operand, found ", A.str()));
      break;
    }
    T = Type::real();
    break;
  }
  }
  E.Ty = T;
  return T;
}

Type Checker::checkIdent(Expr &E) {
  const Binding *B = lookup(E.Name);
  if (!B) {
    if (builtinTable().count(E.Name))
      return err(E.Loc, strf("builtin '", E.Name,
                             "' must be applied to arguments"));
    return err(E.Loc, strf("undefined variable '", E.Name, "'"));
  }
  E.RefKind = B->Kind;
  E.RefIndex = B->Index;
  return B->Ty;
}

Type Checker::checkUnary(Expr &E) {
  Type A = checkExpr(*E.Kids[0]);
  if (A.isError())
    return A;
  switch (E.UOp) {
  case UnaryOp::Neg:
    if (A.isInt()) {
      E.Resolved = ResolvedOp::IntArith;
      return A;
    }
    if (A.isTensor()) {
      E.Resolved = ResolvedOp::TensorAddSub;
      return A;
    }
    if (A.isField()) {
      E.Resolved = ResolvedOp::FieldNeg;
      return A;
    }
    return err(E.Loc, strf("cannot negate ", A.str()));
  case UnaryOp::Not:
    if (A.isBool())
      return A;
    return err(E.Loc, strf("'!' requires bool, found ", A.str()));
  case UnaryOp::Nabla:
    // Figure 2: nabla F : field#k(d)[] with k > 0 gives field#(k-1)(d)[d].
    if (!A.isField() || !A.shape().isScalar())
      return err(E.Loc,
                 strf("∇ requires a scalar field, found ", A.str(),
                      (A.isField() ? " (use ∇⊗ for tensor fields)" : "")));
    if (A.diff() <= 0)
      return err(E.Loc, strf("∇ requires a differentiable field; ", A.str(),
                             " has no continuous derivatives"));
    // In 1-D the derivative is again a scalar field (tensor axes must have
    // extent >= 2, so there is no tensor[1]).
    if (A.dim() == 1)
      return Type::field(A.diff() - 1, 1, Shape{});
    return Type::field(A.diff() - 1, A.dim(), Shape{A.dim()});
  case UnaryOp::NablaOtimes:
    if (!A.isField() || A.shape().order() < 1)
      return err(E.Loc,
                 strf("∇⊗ requires a tensor field of order >= 1, found ",
                      A.str(), (A.isField() ? " (use ∇ for scalar fields)" : "")));
    if (A.diff() <= 0)
      return err(E.Loc, strf("∇⊗ requires a differentiable field; ", A.str(),
                             " has no continuous derivatives"));
    return Type::field(A.diff() - 1, A.dim(), A.shape().append(A.dim()));
  case UnaryOp::Divergence:
    // §8.3 extension: ∇• : field#k(d)[d] -> field#(k-1)(d)[], k > 0.
    if (!A.isField() || A.shape().order() != 1 || A.shape()[0] != A.dim())
      return err(E.Loc, strf("∇• requires a field of d-vectors over a d-D "
                             "domain, found ",
                             A.str()));
    if (A.diff() <= 0)
      return err(E.Loc, strf("∇• requires a differentiable field; ", A.str(),
                             " has no continuous derivatives"));
    return Type::field(A.diff() - 1, A.dim(), Shape{});
  case UnaryOp::Curl:
    // §8.3 extension: ∇× : field#k(3)[3] -> field#(k-1)(3)[3], and the 2-D
    // scalar curl field#k(2)[2] -> field#(k-1)(2)[].
    if (!A.isField() || A.shape().order() != 1 || A.shape()[0] != A.dim() ||
        A.dim() < 2)
      return err(E.Loc, strf("∇× requires a 2-D or 3-D vector field, found ",
                             A.str()));
    if (A.diff() <= 0)
      return err(E.Loc, strf("∇× requires a differentiable field; ", A.str(),
                             " has no continuous derivatives"));
    return Type::field(A.diff() - 1, A.dim(),
                       A.dim() == 3 ? Shape{3} : Shape{});
  }
  return Type::error();
}

Type Checker::checkBinary(Expr &E) {
  Type L = checkExpr(*E.Kids[0]);
  Type R = checkExpr(*E.Kids[1]);
  if (L.isError() || R.isError())
    return Type::error();
  std::vector<Type> Args = {L, R};

  const std::vector<OverloadEntry> *Table = nullptr;
  const char *OpName = "?";
  switch (E.BOp) {
  case BinaryOp::Add:
  case BinaryOp::Sub:
    Table = &addSubTable();
    OpName = E.BOp == BinaryOp::Add ? "+" : "-";
    break;
  case BinaryOp::Mul:
    Table = &mulTable();
    OpName = "*";
    break;
  case BinaryOp::Div:
    Table = &divTable();
    OpName = "/";
    break;
  case BinaryOp::Pow:
    Table = &powTable();
    OpName = "^";
    break;
  case BinaryOp::Dot:
    Table = &dotTable();
    OpName = "•";
    break;
  case BinaryOp::Cross:
    Table = &crossTable();
    OpName = "×";
    break;
  case BinaryOp::Outer:
    Table = &outerTable();
    OpName = "⊗";
    break;
  case BinaryOp::Convolve:
    Table = &convolveTable();
    OpName = "⊛";
    break;
  case BinaryOp::Mod:
    if (L.isInt() && R.isInt()) {
      E.Resolved = ResolvedOp::IntArith;
      return Type::integer();
    }
    return err(E.Loc, strf("'%' requires int operands, found ", L.str(), " and ",
                           R.str()));
  case BinaryOp::Lt:
  case BinaryOp::Le:
  case BinaryOp::Gt:
  case BinaryOp::Ge:
    if ((L.isInt() && R.isInt()) || (L.isReal() && R.isReal()))
      return Type::boolean();
    return err(E.Loc, strf("comparison requires matching int or real "
                           "operands, found ",
                           L.str(), " and ", R.str()));
  case BinaryOp::Eq:
  case BinaryOp::Ne:
    if (L == R && (L.isInt() || L.isReal() || L.isBool() || L.isString()))
      return Type::boolean();
    return err(E.Loc, strf("cannot compare ", L.str(), " and ", R.str()));
  case BinaryOp::And:
  case BinaryOp::Or:
    if (L.isBool() && R.isBool())
      return Type::boolean();
    return err(E.Loc, "logical operators require bool operands");
  }

  if (auto Hit = resolve(*Table, Args)) {
    E.Resolved = Hit->first->Op;
    return Hit->second;
  }
  return err(E.Loc, strf("no instance of '", OpName, "' for operands ",
                         L.str(), " and ", R.str()));
}

Type Checker::checkCond(Expr &E) {
  Type ThenT = checkExpr(*E.Kids[0]);
  Type CondT = checkExpr(*E.Kids[1]);
  Type ElseT = checkExpr(*E.Kids[2]);
  if (!CondT.isError() && !CondT.isBool())
    err(E.Kids[1]->Loc, strf("condition must be bool, found ", CondT.str()));
  if (ThenT.isError() || ElseT.isError())
    return Type::error();
  if (ThenT != ElseT)
    return err(E.Loc, strf("conditional branches have different types: ",
                           ThenT.str(), " and ", ElseT.str()));
  return ThenT;
}

Type Checker::checkApply(Expr &E) {
  // load(...) nodes in global initializers are resolved ahead of time
  // (preResolveLoads); accept them as-is.
  if (E.BuiltinId == static_cast<int>(Builtin::Load) && !E.Ty.isError())
    return E.Ty;
  Expr &Callee = *E.Kids[0];
  // Builtins (only when the name is not shadowed by a variable).
  if (Callee.Kind == ExprKind::Ident && !lookup(Callee.Name)) {
    if (Callee.Name == "load")
      return err(E.Loc, "load(...) may only appear as a global initializer");
    if (Callee.Name == "inside") {
      // inside(x, F): the position type depends on the field dimension.
      if (E.Kids.size() != 3)
        return err(E.Loc, "inside(x, F) takes two arguments");
      Type PosT = checkExpr(*E.Kids[1]);
      Type FldT = checkExpr(*E.Kids[2]);
      if (PosT.isError() || FldT.isError())
        return Type::error();
      if (!FldT.isField())
        return err(E.Loc, strf("inside's second argument must be a field, "
                               "found ",
                               FldT.str()));
      if (PosT != positionType(FldT.dim()))
        return err(E.Loc, strf("inside position must be ",
                               positionType(FldT.dim()).str(), " for a ",
                               FldT.dim(), "-D field, found ", PosT.str()));
      E.Resolved = ResolvedOp::BuiltinCall;
      E.BuiltinId = static_cast<int>(Builtin::Inside);
      return Type::boolean();
    }
    // ASCII function spellings of the Unicode binary operators: rewrite the
    // application into the equivalent binary node and check that instead.
    {
      BinaryOp BOp{};
      bool IsAlias = true;
      if (Callee.Name == "dot")
        BOp = BinaryOp::Dot;
      else if (Callee.Name == "cross")
        BOp = BinaryOp::Cross;
      else if (Callee.Name == "outer")
        BOp = BinaryOp::Outer;
      else if (Callee.Name == "convolve")
        BOp = BinaryOp::Convolve;
      else
        IsAlias = false;
      if (IsAlias) {
        if (E.Kids.size() != 3)
          return err(E.Loc, strf("'", Callee.Name, "' takes two arguments"));
        E.Kind = ExprKind::Binary;
        E.BOp = BOp;
        E.Kids.erase(E.Kids.begin()); // drop the callee
        E.Name.clear();
        return checkBinary(E);
      }
    }
    auto TableIt = builtinTable().find(Callee.Name);
    if (TableIt != builtinTable().end()) {
      std::vector<Type> Args;
      bool Bad = false;
      for (size_t I = 1; I < E.Kids.size(); ++I) {
        Args.push_back(checkExpr(*E.Kids[I]));
        Bad |= Args.back().isError();
      }
      if (Bad)
        return Type::error();
      if (auto Hit = resolve(TableIt->second, Args)) {
        E.Resolved = ResolvedOp::BuiltinCall;
        E.BuiltinId = static_cast<int>(Hit->first->Bi);
        return Hit->second;
      }
      std::string ArgStr;
      for (const Type &A : Args)
        ArgStr += (ArgStr.empty() ? "" : ", ") + A.str();
      return err(E.Loc, strf("no instance of builtin '", Callee.Name,
                             "' for arguments (", ArgStr, ")"));
    }
  }

  // Otherwise the callee must be a field and this is a probe (Figure 2's
  // application rule).
  Type CalleeT = checkExpr(Callee);
  if (CalleeT.isError())
    return Type::error();
  if (!CalleeT.isField())
    return err(E.Loc, strf("cannot apply a value of type ", CalleeT.str()));
  if (E.Kids.size() != 2)
    return err(E.Loc, "a field probe takes exactly one position argument");
  Type PosT = checkExpr(*E.Kids[1]);
  if (PosT.isError())
    return Type::error();
  if (PosT != positionType(CalleeT.dim()))
    return err(E.Loc,
               strf("probe position must be ", positionType(CalleeT.dim()).str(),
                    " for a ", CalleeT.dim(), "-D field, found ", PosT.str()));
  E.Resolved = ResolvedOp::Probe;
  return Type::tensor(CalleeT.shape());
}

Type Checker::checkTensorCons(Expr &E) {
  if (E.Kids.empty())
    return err(E.Loc, "empty tensor constructor");
  Type ElemT;
  for (size_t I = 0; I < E.Kids.size(); ++I) {
    Type T = checkExpr(*E.Kids[I]);
    if (T.isError())
      return Type::error();
    if (I == 0)
      ElemT = T;
    else if (T != ElemT)
      return err(E.Kids[I]->Loc,
                 strf("tensor constructor elements must agree: ", ElemT.str(),
                      " vs ", T.str()));
  }
  if (!ElemT.isTensor())
    return err(E.Loc, strf("tensor constructor elements must be tensors, "
                           "found ",
                           ElemT.str()));
  int N = static_cast<int>(E.Kids.size());
  if (N < 2)
    return err(E.Loc, "tensor axes must have extent at least 2");
  std::vector<int> Dims = {N};
  for (int D : ElemT.shape().dims())
    Dims.push_back(D);
  return Type::tensor(Shape(std::move(Dims)));
}

Type Checker::checkSeqCons(Expr &E) {
  if (E.Kids.empty())
    return err(E.Loc, "empty sequence constructor");
  Type ElemT;
  for (size_t I = 0; I < E.Kids.size(); ++I) {
    Type T = checkExpr(*E.Kids[I]);
    if (T.isError())
      return Type::error();
    if (I == 0)
      ElemT = T;
    else if (T != ElemT)
      return err(E.Kids[I]->Loc, "sequence elements must have the same type");
  }
  if (!ElemT.isValueType())
    return err(E.Loc, "sequence elements must be concrete values");
  return Type::sequence(ElemT, static_cast<int>(E.Kids.size()));
}

Type Checker::checkIndex(Expr &E) {
  Expr &Base = *E.Kids[0];
  // identity[n] — only when `identity` is not a user variable.
  if (Base.Kind == ExprKind::Ident && Base.Name == "identity" &&
      !lookup("identity")) {
    if (E.Kids.size() != 2 || E.Kids[1]->Kind != ExprKind::IntLit)
      return err(E.Loc, "identity[n] takes one integer literal");
    int N = static_cast<int>(E.Kids[1]->IntVal);
    if (N < 2)
      return err(E.Loc, "identity[n] requires n >= 2");
    E.Resolved = ResolvedOp::IdentityCons;
    E.Kids[1]->Ty = Type::integer();
    return Type::tensor(Shape{N, N});
  }
  Type BaseT = checkExpr(Base);
  if (BaseT.isError())
    return Type::error();
  std::vector<Type> IdxT;
  for (size_t I = 1; I < E.Kids.size(); ++I) {
    IdxT.push_back(checkExpr(*E.Kids[I]));
    if (IdxT.back().isError())
      return Type::error();
    if (!IdxT.back().isInt())
      return err(E.Kids[I]->Loc, "indices must be int");
  }
  if (BaseT.isSequence()) {
    if (IdxT.size() != 1)
      return err(E.Loc, "sequences take one index");
    E.Resolved = ResolvedOp::SeqIndex;
    return BaseT.elem();
  }
  if (BaseT.isTensor()) {
    int Order = BaseT.shape().order();
    int N = static_cast<int>(IdxT.size());
    if (N > Order || N == 0)
      return err(E.Loc, strf("tensor of order ", Order, " cannot be indexed "
                             "with ",
                             N, " indices"));
    for (size_t I = 1; I < E.Kids.size(); ++I) {
      if (E.Kids[I]->Kind != ExprKind::IntLit)
        return err(E.Kids[I]->Loc,
                   "tensor indices must be integer literals (sequences "
                   "support computed indices)");
      int64_t Idx = E.Kids[I]->IntVal;
      int Extent = BaseT.shape()[static_cast<int>(I - 1)];
      if (Idx < 0 || Idx >= Extent)
        return err(E.Kids[I]->Loc, strf("index ", Idx, " out of range for "
                                        "axis of extent ",
                                        Extent));
    }
    E.Resolved = ResolvedOp::TensorIndex;
    std::vector<int> Rest;
    for (int I = N; I < Order; ++I)
      Rest.push_back(BaseT.shape()[I]);
    return Type::tensor(Shape(std::move(Rest)));
  }
  return err(E.Loc, strf("cannot index a value of type ", BaseT.str()));
}

} // namespace

bool typeCheck(Program &P, DiagnosticEngine &Diags) {
  unsigned Before = Diags.numErrors();
  Checker C(P, Diags);
  C.run();
  return Diags.numErrors() == Before;
}

} // namespace diderot

//===--- frontend/lexer.cpp ------------------------------------------------===//

#include "frontend/lexer.h"

#include <cctype>
#include <cstdlib>
#include <map>

#include "support/unicode.h"

namespace diderot {

const char *tokName(Tok K) {
  switch (K) {
  case Tok::Eof:
    return "<eof>";
  case Tok::Error:
    return "<error>";
  case Tok::Ident:
    return "identifier";
  case Tok::IntLit:
    return "integer literal";
  case Tok::RealLit:
    return "real literal";
  case Tok::StringLit:
    return "string literal";
  case Tok::KwBool:
    return "'bool'";
  case Tok::KwInt:
    return "'int'";
  case Tok::KwString:
    return "'string'";
  case Tok::KwReal:
    return "'real'";
  case Tok::KwVec2:
    return "'vec2'";
  case Tok::KwVec3:
    return "'vec3'";
  case Tok::KwVec4:
    return "'vec4'";
  case Tok::KwTensor:
    return "'tensor'";
  case Tok::KwImage:
    return "'image'";
  case Tok::KwKernel:
    return "'kernel'";
  case Tok::KwField:
    return "'field'";
  case Tok::KwInput:
    return "'input'";
  case Tok::KwOutput:
    return "'output'";
  case Tok::KwStrand:
    return "'strand'";
  case Tok::KwUpdate:
    return "'update'";
  case Tok::KwStabilize:
    return "'stabilize'";
  case Tok::KwDie:
    return "'die'";
  case Tok::KwInitially:
    return "'initially'";
  case Tok::KwIn:
    return "'in'";
  case Tok::KwIf:
    return "'if'";
  case Tok::KwElse:
    return "'else'";
  case Tok::KwTrue:
    return "'true'";
  case Tok::KwFalse:
    return "'false'";
  case Tok::LParen:
    return "'('";
  case Tok::RParen:
    return "')'";
  case Tok::LBracket:
    return "'['";
  case Tok::RBracket:
    return "']'";
  case Tok::LBrace:
    return "'{'";
  case Tok::RBrace:
    return "'}'";
  case Tok::Comma:
    return "','";
  case Tok::Semi:
    return "';'";
  case Tok::Colon:
    return "':'";
  case Tok::Hash:
    return "'#'";
  case Tok::Bar:
    return "'|'";
  case Tok::DotDot:
    return "'..'";
  case Tok::Assign:
    return "'='";
  case Tok::PlusEq:
    return "'+='";
  case Tok::MinusEq:
    return "'-='";
  case Tok::StarEq:
    return "'*='";
  case Tok::SlashEq:
    return "'/='";
  case Tok::Plus:
    return "'+'";
  case Tok::Minus:
    return "'-'";
  case Tok::Star:
    return "'*'";
  case Tok::Slash:
    return "'/'";
  case Tok::Percent:
    return "'%'";
  case Tok::Caret:
    return "'^'";
  case Tok::Bang:
    return "'!'";
  case Tok::EqEq:
    return "'=='";
  case Tok::BangEq:
    return "'!='";
  case Tok::Lt:
    return "'<'";
  case Tok::LtEq:
    return "'<='";
  case Tok::Gt:
    return "'>'";
  case Tok::GtEq:
    return "'>='";
  case Tok::AmpAmp:
    return "'&&'";
  case Tok::BarBar:
    return "'||'";
  case Tok::Nabla:
    return "'∇'";
  case Tok::CircledAst:
    return "'⊛'";
  case Tok::OTimes:
    return "'⊗'";
  case Tok::Cross:
    return "'×'";
  case Tok::Bullet:
    return "'•'";
  case Tok::Pi:
    return "'π'";
  }
  return "?";
}

namespace {

const std::map<std::string, Tok> &keywordTable() {
  static const std::map<std::string, Tok> Table = {
      {"bool", Tok::KwBool},       {"int", Tok::KwInt},
      {"string", Tok::KwString},   {"real", Tok::KwReal},
      {"vec2", Tok::KwVec2},       {"vec3", Tok::KwVec3},
      {"vec4", Tok::KwVec4},       {"tensor", Tok::KwTensor},
      {"image", Tok::KwImage},     {"kernel", Tok::KwKernel},
      {"field", Tok::KwField},     {"input", Tok::KwInput},
      {"output", Tok::KwOutput},   {"strand", Tok::KwStrand},
      {"update", Tok::KwUpdate},   {"stabilize", Tok::KwStabilize},
      {"die", Tok::KwDie},         {"initially", Tok::KwInitially},
      {"in", Tok::KwIn},           {"if", Tok::KwIf},
      {"else", Tok::KwElse},       {"true", Tok::KwTrue},
      {"false", Tok::KwFalse},
  };
  return Table;
}

} // namespace

Lexer::Lexer(std::string Source, DiagnosticEngine &Diags)
    : Src(std::move(Source)), Diags(Diags) {}

char Lexer::peek(int Ahead) const {
  size_t P = Pos + static_cast<size_t>(Ahead);
  return P < Src.size() ? Src[P] : '\0';
}

char Lexer::advance() {
  char C = peek();
  ++Pos;
  if (C == '\n') {
    ++Line;
    Col = 1;
  } else {
    ++Col;
  }
  return C;
}

bool Lexer::match(char C) {
  if (peek() != C)
    return false;
  advance();
  return true;
}

void Lexer::skipTrivia() {
  for (;;) {
    char C = peek();
    if (C == ' ' || C == '\t' || C == '\r' || C == '\n') {
      advance();
    } else if (C == '/' && peek(1) == '/') {
      while (peek() && peek() != '\n')
        advance();
    } else if (C == '/' && peek(1) == '*') {
      SourceLoc Start = loc();
      advance();
      advance();
      while (peek() && !(peek() == '*' && peek(1) == '/'))
        advance();
      if (!peek())
        Diags.error(Start, "unterminated block comment");
      else {
        advance();
        advance();
      }
    } else {
      return;
    }
  }
}

Token Lexer::lexNumber(SourceLoc L) {
  size_t Start = Pos;
  while (std::isdigit(static_cast<unsigned char>(peek())))
    advance();
  bool IsReal = false;
  // A '.' starts a fraction only when not part of '..' (range syntax).
  if (peek() == '.' && peek(1) != '.') {
    IsReal = true;
    advance();
    while (std::isdigit(static_cast<unsigned char>(peek())))
      advance();
  }
  if (peek() == 'e' || peek() == 'E') {
    char Sign = peek(1);
    if (std::isdigit(static_cast<unsigned char>(Sign)) ||
        ((Sign == '+' || Sign == '-') &&
         std::isdigit(static_cast<unsigned char>(peek(2))))) {
      IsReal = true;
      advance(); // e
      if (peek() == '+' || peek() == '-')
        advance();
      while (std::isdigit(static_cast<unsigned char>(peek())))
        advance();
    }
  }
  std::string Text = Src.substr(Start, Pos - Start);
  Token T = make(IsReal ? Tok::RealLit : Tok::IntLit, L);
  T.Text = Text;
  if (IsReal)
    T.RealVal = std::strtod(Text.c_str(), nullptr);
  else
    T.IntVal = std::strtoll(Text.c_str(), nullptr, 10);
  return T;
}

Token Lexer::lexIdent(SourceLoc L) {
  size_t Start = Pos;
  while (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_')
    advance();
  std::string Text = Src.substr(Start, Pos - Start);
  auto It = keywordTable().find(Text);
  if (It != keywordTable().end())
    return make(It->second, L);
  Token T = make(Tok::Ident, L);
  T.Text = std::move(Text);
  return T;
}

Token Lexer::lexString(SourceLoc L) {
  advance(); // opening quote
  std::string Value;
  while (peek() && peek() != '"' && peek() != '\n') {
    char C = advance();
    if (C == '\\') {
      char E = advance();
      switch (E) {
      case 'n':
        Value += '\n';
        break;
      case 't':
        Value += '\t';
        break;
      case '\\':
        Value += '\\';
        break;
      case '"':
        Value += '"';
        break;
      default:
        Diags.error(loc(), strf("unknown escape '\\", E, "' in string"));
      }
    } else {
      Value += C;
    }
  }
  if (peek() != '"') {
    Diags.error(L, "unterminated string literal");
    return make(Tok::Error, L);
  }
  advance();
  Token T = make(Tok::StringLit, L);
  T.Text = std::move(Value);
  return T;
}

Token Lexer::next() {
  skipTrivia();
  SourceLoc L = loc();
  char C = peek();
  if (!C)
    return make(Tok::Eof, L);

  if (std::isdigit(static_cast<unsigned char>(C)))
    return lexNumber(L);
  if (std::isalpha(static_cast<unsigned char>(C)) || C == '_')
    return lexIdent(L);
  if (C == '"')
    return lexString(L);

  // Multi-byte (Unicode) operators.
  if (static_cast<unsigned char>(C) >= 0x80) {
    size_t P = Pos;
    uint32_t CP = decodeUtf8(Src, P);
    int Bytes = static_cast<int>(P - Pos);
    for (int I = 0; I < Bytes; ++I)
      advance();
    switch (CP) {
    case uchar::Nabla:
      return make(Tok::Nabla, L);
    case uchar::CircledAst:
      return make(Tok::CircledAst, L);
    case uchar::OTimes:
      return make(Tok::OTimes, L);
    case uchar::Times:
      return make(Tok::Cross, L);
    case uchar::Bullet:
      return make(Tok::Bullet, L);
    case uchar::Pi:
      return make(Tok::Pi, L);
    default:
      Diags.error(L, strf("unexpected character U+", CP));
      return make(Tok::Error, L);
    }
  }

  advance();
  switch (C) {
  case '(':
    return make(Tok::LParen, L);
  case ')':
    return make(Tok::RParen, L);
  case '[':
    return make(Tok::LBracket, L);
  case ']':
    return make(Tok::RBracket, L);
  case '{':
    return make(Tok::LBrace, L);
  case '}':
    return make(Tok::RBrace, L);
  case ',':
    return make(Tok::Comma, L);
  case ';':
    return make(Tok::Semi, L);
  case ':':
    return make(Tok::Colon, L);
  case '#':
    return make(Tok::Hash, L);
  case '^':
    return make(Tok::Caret, L);
  case '%':
    return make(Tok::Percent, L);
  case '+':
    return make(match('=') ? Tok::PlusEq : Tok::Plus, L);
  case '-':
    return make(match('=') ? Tok::MinusEq : Tok::Minus, L);
  case '*':
    return make(match('=') ? Tok::StarEq : Tok::Star, L);
  case '/':
    return make(match('=') ? Tok::SlashEq : Tok::Slash, L);
  case '=':
    return make(match('=') ? Tok::EqEq : Tok::Assign, L);
  case '!':
    return make(match('=') ? Tok::BangEq : Tok::Bang, L);
  case '<':
    return make(match('=') ? Tok::LtEq : Tok::Lt, L);
  case '>':
    return make(match('=') ? Tok::GtEq : Tok::Gt, L);
  case '&':
    if (match('&'))
      return make(Tok::AmpAmp, L);
    Diags.error(L, "expected '&&'");
    return make(Tok::Error, L);
  case '|':
    return make(match('|') ? Tok::BarBar : Tok::Bar, L);
  case '.':
    if (match('.'))
      return make(Tok::DotDot, L);
    Diags.error(L, "unexpected '.'");
    return make(Tok::Error, L);
  default:
    Diags.error(L, strf("unexpected character '", C, "'"));
    return make(Tok::Error, L);
  }
}

std::vector<Token> Lexer::lexAll() {
  std::vector<Token> Out;
  for (;;) {
    Out.push_back(next());
    if (Out.back().is(Tok::Eof) || Out.back().is(Tok::Error))
      break;
  }
  return Out;
}

} // namespace diderot

//===--- frontend/lexer.h - Diderot lexer ----------------------------------===//
//
// Part of the Diderot-C++ reproduction (PLDI 2012).
//
//===----------------------------------------------------------------------===//

#ifndef DIDEROT_FRONTEND_LEXER_H
#define DIDEROT_FRONTEND_LEXER_H

#include <vector>

#include "frontend/token.h"
#include "support/diagnostics.h"

namespace diderot {

/// Lexes UTF-8 Diderot source into tokens. Unicode math operators and `//`,
/// `/* */` comments are handled here; malformed input produces diagnostics
/// and an Error token, letting the parser recover.
class Lexer {
public:
  Lexer(std::string Source, DiagnosticEngine &Diags);

  /// Lex the next token.
  Token next();

  /// Lex the entire input (for tests).
  std::vector<Token> lexAll();

private:
  char peek(int Ahead = 0) const;
  char advance();
  bool match(char C);
  SourceLoc loc() const { return {Line, Col}; }
  Token make(Tok K, SourceLoc L) const {
    Token T;
    T.Kind = K;
    T.Loc = L;
    return T;
  }
  Token lexNumber(SourceLoc L);
  Token lexIdent(SourceLoc L);
  Token lexString(SourceLoc L);
  void skipTrivia();

  std::string Src;
  DiagnosticEngine &Diags;
  size_t Pos = 0;
  int Line = 1;
  int Col = 1;
};

} // namespace diderot

#endif // DIDEROT_FRONTEND_LEXER_H

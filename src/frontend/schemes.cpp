//===--- frontend/schemes.cpp ----------------------------------------------===//

#include "frontend/schemes.h"

#include <cassert>

namespace diderot::sch {

bool Bindings::bindDim(int Var, int Val) {
  auto [It, Inserted] = Dims.emplace(Var, Val);
  return Inserted || It->second == Val;
}

bool Bindings::bindShape(int Var, const Shape &Val) {
  auto [It, Inserted] = Shapes.emplace(Var, Val);
  return Inserted || It->second == Val;
}

bool Bindings::bindDiff(int Var, int Val) {
  auto [It, Inserted] = Diffs.emplace(Var, Val);
  return Inserted || It->second == Val;
}

namespace {

bool matchElem(const ShapeElem &E, int Concrete, Bindings &B) {
  if (E.IsVar)
    return B.bindDim(E.Val, Concrete);
  return E.Val == Concrete;
}

} // namespace

bool ShapeScheme::match(const Shape &Concrete, Bindings &B) const {
  assert(!(PrefixVar && SuffixVar) &&
         "at most one shape variable per scheme shape");
  int NFixed = static_cast<int>(Elems.size());
  int NConc = Concrete.order();
  if (!PrefixVar && !SuffixVar) {
    if (NConc != NFixed)
      return false;
    for (int I = 0; I < NFixed; ++I)
      if (!matchElem(Elems[static_cast<size_t>(I)], Concrete[I], B))
        return false;
    return true;
  }
  if (NConc < NFixed)
    return false;
  if (PrefixVar) {
    // The variable absorbs the leading axes; fixed elements match the tail.
    std::vector<int> Seg;
    for (int I = 0; I < NConc - NFixed; ++I)
      Seg.push_back(Concrete[I]);
    if (!B.bindShape(*PrefixVar, Shape(std::move(Seg))))
      return false;
    for (int I = 0; I < NFixed; ++I)
      if (!matchElem(Elems[static_cast<size_t>(I)],
                     Concrete[NConc - NFixed + I], B))
        return false;
    return true;
  }
  // SuffixVar: fixed elements match the head, variable absorbs the tail.
  for (int I = 0; I < NFixed; ++I)
    if (!matchElem(Elems[static_cast<size_t>(I)], Concrete[I], B))
      return false;
  std::vector<int> Seg;
  for (int I = NFixed; I < NConc; ++I)
    Seg.push_back(Concrete[I]);
  return B.bindShape(*SuffixVar, Shape(std::move(Seg)));
}

Shape ShapeScheme::instantiate(const Bindings &B) const {
  std::vector<int> Out;
  auto AppendVar = [&](int Var) {
    auto It = B.Shapes.find(Var);
    assert(It != B.Shapes.end() && "unbound shape variable at instantiation");
    for (int D : It->second.dims())
      Out.push_back(D);
  };
  if (PrefixVar)
    AppendVar(*PrefixVar);
  for (const ShapeElem &E : Elems) {
    if (E.IsVar) {
      auto It = B.Dims.find(E.Val);
      assert(It != B.Dims.end() && "unbound dim variable at instantiation");
      Out.push_back(It->second);
    } else {
      Out.push_back(E.Val);
    }
  }
  if (SuffixVar)
    AppendVar(*SuffixVar);
  return Shape(std::move(Out));
}

bool STy::match(const Type &Concrete, Bindings &B) const {
  if (Concrete.kind() != Kind)
    return false;
  switch (Kind) {
  case TypeKind::Bool:
  case TypeKind::Int:
  case TypeKind::String:
    return true;
  case TypeKind::Tensor:
    return Shp.match(Concrete.shape(), B);
  case TypeKind::Image:
    return matchElem(Dim, Concrete.dim(), B) &&
           Shp.match(Concrete.shape(), B);
  case TypeKind::Kernel:
    return B.bindDiff(DiffVar, Concrete.diff());
  case TypeKind::Field:
    return B.bindDiff(DiffVar, Concrete.diff()) &&
           matchElem(Dim, Concrete.dim(), B) && Shp.match(Concrete.shape(), B);
  default:
    return false;
  }
}

std::optional<Type> Signature::apply(const std::vector<Type> &Args) const {
  if (Args.size() != Params.size())
    return std::nullopt;
  Bindings B;
  for (size_t I = 0; I < Args.size(); ++I)
    if (!Params[I].match(Args[I], B))
      return std::nullopt;
  if (Guard && !Guard(B))
    return std::nullopt;
  return Result(B);
}

std::optional<std::pair<int, Type>>
resolveOverload(const std::vector<Signature> &Candidates,
                const std::vector<Type> &Args) {
  for (size_t I = 0; I < Candidates.size(); ++I)
    if (std::optional<Type> R = Candidates[I].apply(Args))
      return std::make_pair(static_cast<int>(I), *R);
  return std::nullopt;
}

} // namespace diderot::sch

//===--- frontend/typecheck.h - Diderot type checker -----------------------===//
//
// Part of the Diderot-C++ reproduction (PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The type checker (paper Sections 3.4 and 5.1). It enforces the field
/// typing judgments of Figure 2 — convolution, differentiation (which lowers
/// continuity and raises order), and probing — resolves operator overloads by
/// matching kinded scheme variables (see schemes.h), and annotates the AST in
/// place with types, resolved operator instances, and name bindings.
///
//===----------------------------------------------------------------------===//

#ifndef DIDEROT_FRONTEND_TYPECHECK_H
#define DIDEROT_FRONTEND_TYPECHECK_H

#include "frontend/ast.h"
#include "support/diagnostics.h"

namespace diderot {

/// Type-check \p P, reporting problems to \p Diags and annotating the tree.
/// Returns true when no errors were produced by this phase.
bool typeCheck(Program &P, DiagnosticEngine &Diags);

} // namespace diderot

#endif // DIDEROT_FRONTEND_TYPECHECK_H

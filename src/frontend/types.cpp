//===--- frontend/types.cpp ------------------------------------------------===//

#include "frontend/types.h"

#include "support/strings.h"

namespace diderot {

std::string Type::str() const {
  switch (Kind) {
  case TypeKind::Error:
    return "<error>";
  case TypeKind::Bool:
    return "bool";
  case TypeKind::Int:
    return "int";
  case TypeKind::String:
    return "string";
  case TypeKind::Tensor:
    if (Shp.isScalar())
      return "real";
    if (Shp.order() == 1)
      return strf("vec", Shp[0]);
    return strf("tensor", Shp.str());
  case TypeKind::Sequence:
    return strf(Elem->str(), "{", SeqLen, "}");
  case TypeKind::Image:
    return strf("image(", Dim, ")", Shp.str());
  case TypeKind::Kernel:
    return strf("kernel#", Diff);
  case TypeKind::Field:
    return strf("field#", Diff, "(", Dim, ")", Shp.str());
  }
  return "?";
}

} // namespace diderot

//===--- frontend/schemes.h - type schemes & unification -------------------===//
//
// Part of the Diderot-C++ reproduction (PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Operator signatures with kinded meta-variables, and the matcher that
/// instantiates them. The paper (Section 5.1): "we use a mix of ad hoc
/// overloading and polymorphism in the type checker. The internal
/// representation of types includes kinded type variables, shape variables,
/// and dimension variables. The type checking process introduces constraints
/// between the variables, which are solved by unification."
///
/// Because Diderot programs are monomorphic, argument types at a use are
/// always concrete; unification therefore reduces to one-way matching of a
/// signature's scheme types against concrete types, binding
///   * dimension variables  (kind DIM:   1..3)
///   * shape variables      (kind SHAPE: a tensor shape segment)
///   * differentiation variables (kind DIFF: the k of kernel#k / field#k)
/// plus per-signature guards (e.g. "k > 0" for differentiation) and computed
/// result types (e.g. "field#(k-1)").
///
//===----------------------------------------------------------------------===//

#ifndef DIDEROT_FRONTEND_SCHEMES_H
#define DIDEROT_FRONTEND_SCHEMES_H

#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "frontend/types.h"

namespace diderot::sch {

/// A binding environment for scheme variables, keyed by small variable ids.
struct Bindings {
  std::map<int, int> Dims;     ///< DIM variables
  std::map<int, Shape> Shapes; ///< SHAPE variables
  std::map<int, int> Diffs;    ///< DIFF variables

  /// Bind or check a DIM variable.
  bool bindDim(int Var, int Val);
  bool bindShape(int Var, const Shape &Val);
  bool bindDiff(int Var, int Val);
};

/// An element of a shape scheme: either a fixed extent or a DIM variable.
struct ShapeElem {
  bool IsVar = false;
  int Val = 0; ///< fixed extent, or DIM variable id

  static ShapeElem fixed(int N) { return {false, N}; }
  static ShapeElem dimVar(int Id) { return {true, Id}; }
};

/// A shape scheme: an optional SHAPE-variable prefix, fixed/DIM elements,
/// and an optional SHAPE-variable suffix. At most one of Prefix/Suffix may
/// be present together with elements; this covers every Diderot operator
/// (e.g. dot contracts [sigma ++ n] with [n ++ tau]).
struct ShapeScheme {
  std::optional<int> PrefixVar;
  std::vector<ShapeElem> Elems;
  std::optional<int> SuffixVar;

  static ShapeScheme scalar() { return {}; }
  static ShapeScheme var(int Id) {
    ShapeScheme S;
    S.PrefixVar = Id;
    return S;
  }
  /// sigma ++ [elem]
  static ShapeScheme varThen(int Id, ShapeElem E) {
    ShapeScheme S;
    S.PrefixVar = Id;
    S.Elems.push_back(E);
    return S;
  }
  /// [elem] ++ tau
  static ShapeScheme elemThenVar(ShapeElem E, int Id) {
    ShapeScheme S;
    S.Elems.push_back(E);
    S.SuffixVar = Id;
    return S;
  }
  static ShapeScheme fixed(std::vector<ShapeElem> Es) {
    ShapeScheme S;
    S.Elems = std::move(Es);
    return S;
  }

  bool match(const Shape &Concrete, Bindings &B) const;
  Shape instantiate(const Bindings &B) const;
};

/// A scheme type, mirroring Type with variables allowed in the dimension,
/// shape, and differentiation positions.
struct STy {
  TypeKind Kind = TypeKind::Error;
  ShapeScheme Shp;
  /// DIM position for image/field domain: variable id or fixed value.
  ShapeElem Dim = ShapeElem::fixed(0);
  /// DIFF variable id for kernel/field (always a variable in our schemes).
  int DiffVar = 0;

  static STy boolean() { return {TypeKind::Bool, {}, {}, 0}; }
  static STy integer() { return {TypeKind::Int, {}, {}, 0}; }
  static STy string() { return {TypeKind::String, {}, {}, 0}; }
  static STy real() { return tensor(ShapeScheme::scalar()); }
  static STy tensor(ShapeScheme S) { return {TypeKind::Tensor, std::move(S), {}, 0}; }
  static STy image(ShapeElem D, ShapeScheme S) {
    return {TypeKind::Image, std::move(S), D, 0};
  }
  static STy kernel(int KVar) { return {TypeKind::Kernel, {}, {}, KVar}; }
  static STy field(int KVar, ShapeElem D, ShapeScheme S) {
    return {TypeKind::Field, std::move(S), D, KVar};
  }

  /// Match against a concrete type, extending \p B.
  bool match(const Type &Concrete, Bindings &B) const;
};

/// How a signature computes its result type from the bindings.
using ResultFn = std::function<Type(const Bindings &)>;
/// An extra satisfiability condition on the bindings (e.g. k > 0).
using GuardFn = std::function<bool(const Bindings &)>;

/// One overload candidate.
struct Signature {
  std::vector<STy> Params;
  ResultFn Result;
  GuardFn Guard; ///< may be null

  /// Try to match \p Args; on success returns the instantiated result type.
  std::optional<Type> apply(const std::vector<Type> &Args) const;
};

/// Resolve \p Args against candidates in order; first match wins.
std::optional<std::pair<int, Type>>
resolveOverload(const std::vector<Signature> &Candidates,
                const std::vector<Type> &Args);

} // namespace diderot::sch

#endif // DIDEROT_FRONTEND_SCHEMES_H

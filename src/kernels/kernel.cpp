//===--- kernels/kernel.cpp -----------------------------------------------===//

#include "kernels/kernel.h"

#include <cassert>
#include <cmath>
#include <map>

namespace diderot {

Kernel::Kernel(std::string Name, int Continuity,
               std::vector<Polynomial> HalfPieces)
    : Name(std::move(Name)), Support(static_cast<int>(HalfPieces.size())),
      Continuity(Continuity) {
  assert(Support >= 1 && "kernel must have at least one piece");
  Pieces.resize(static_cast<size_t>(2 * Support));
  for (int J = 0; J < Support; ++J) {
    // Positive side, x in [J, J+1): t = x - J, so h(x) = Half_J(t + J).
    Pieces[static_cast<size_t>(J + Support)] =
        HalfPieces[static_cast<size_t>(J)].composeLinear(1.0, J);
    // Negative side, x in [-J-1, -J): |x| = -x = -(t - J - 1) = (J+1) - t,
    // in [J, J+1], so h(x) = Half_J((J+1) - t) by even symmetry.
    Pieces[static_cast<size_t>(Support - J - 1)] =
        HalfPieces[static_cast<size_t>(J)].composeLinear(-1.0, J + 1);
  }
}

double Kernel::eval(double X) const {
  if (X <= -Support || X >= Support)
    return 0.0;
  int J = static_cast<int>(std::floor(X));
  return piece(J).eval(X - J);
}

double Kernel::evalDeriv(double X, int Level) const {
  if (Level == 0)
    return eval(X);
  if (X <= -Support || X >= Support)
    return 0.0;
  int J = static_cast<int>(std::floor(X));
  Polynomial P = piece(J);
  for (int I = 0; I < Level; ++I)
    P = P.derivative();
  return P.eval(X - J);
}

Kernel Kernel::derivative() const {
  Kernel Out;
  Out.Name = Name;
  Out.Support = Support;
  Out.Continuity = Continuity > 0 ? Continuity - 1 : -1;
  Out.DerivLevel = DerivLevel + 1;
  Out.Pieces.reserve(Pieces.size());
  for (const Polynomial &P : Pieces)
    Out.Pieces.push_back(P.derivative());
  return Out;
}

const Polynomial &Kernel::piece(int J) const {
  assert(J >= -Support && J < Support && "piece index outside support");
  return Pieces[static_cast<size_t>(J + Support)];
}

double Kernel::integral() const {
  double Sum = 0.0;
  for (const Polynomial &P : Pieces) {
    Polynomial A = P.antiderivative();
    Sum += A.eval(1.0) - A.eval(0.0);
  }
  return Sum;
}

namespace kernels {

const Kernel &tent() {
  // h(x) = 1 - x for x in [0, 1).
  static const Kernel K("tent", 0, {Polynomial({1.0, -1.0})});
  return K;
}

const Kernel &ctmr() {
  // Catmull-Rom: 1 - 5/2 x^2 + 3/2 x^3 on [0,1); 2 - 4x + 5/2 x^2 - 1/2 x^3
  // on [1,2).
  static const Kernel K("ctmr", 1,
                        {Polynomial({1.0, 0.0, -2.5, 1.5}),
                         Polynomial({2.0, -4.0, 2.5, -0.5})});
  return K;
}

const Kernel &bspln3() {
  // Cubic B-spline: 2/3 - x^2 + x^3/2 on [0,1); (2-x)^3/6 on [1,2).
  static const Kernel K(
      "bspln3", 2,
      {Polynomial({2.0 / 3.0, 0.0, -1.0, 0.5}),
       (Polynomial({2.0, -1.0}).pow(3)) * (1.0 / 6.0)});
  return K;
}

const Kernel &bspln5() {
  // Quintic B-spline via the truncated-power expansion
  //   120 h(x) = (3-x)^5 - 6 (2-x)^5 + 15 (1-x)^5   on [0,1)
  //   120 h(x) = (3-x)^5 - 6 (2-x)^5                on [1,2)
  //   120 h(x) = (3-x)^5                            on [2,3)
  static const Kernel K = [] {
    Polynomial P3 = Polynomial({3.0, -1.0}).pow(5);
    Polynomial P2 = Polynomial({2.0, -1.0}).pow(5);
    Polynomial P1 = Polynomial({1.0, -1.0}).pow(5);
    double Inv = 1.0 / 120.0;
    return Kernel("bspln5", 4,
                  {(P3 - P2 * 6.0 + P1 * 15.0) * Inv, (P3 - P2 * 6.0) * Inv,
                   P3 * Inv});
  }();
  return K;
}

const Kernel *byName(const std::string &Name) {
  if (Name == "tent")
    return &tent();
  if (Name == "ctmr")
    return &ctmr();
  if (Name == "bspln3")
    return &bspln3();
  if (Name == "bspln5")
    return &bspln5();
  return nullptr;
}

std::vector<std::string> allNames() {
  return {"tent", "ctmr", "bspln3", "bspln5"};
}

} // namespace kernels
} // namespace diderot

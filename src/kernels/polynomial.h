//===--- kernels/polynomial.h - univariate polynomial algebra -------------===//
//
// Part of the Diderot-C++ reproduction (PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Dense univariate polynomials over double coefficients. Diderot's
/// reconstruction kernels "are all piecewise polynomial, so it [is]
/// straightforward to symbolically differentiate them" (Section 5.3); this
/// class provides that symbolic algebra, and the Horner evaluation scheme the
/// code generator emits.
///
//===----------------------------------------------------------------------===//

#ifndef DIDEROT_KERNELS_POLYNOMIAL_H
#define DIDEROT_KERNELS_POLYNOMIAL_H

#include <string>
#include <vector>

namespace diderot {

/// A polynomial c0 + c1 x + c2 x^2 + ...; the zero polynomial has no
/// coefficients.
class Polynomial {
public:
  Polynomial() = default;
  /// Coefficients in ascending-degree order.
  explicit Polynomial(std::vector<double> Coeffs);

  /// The constant polynomial \p C.
  static Polynomial constant(double C);
  /// The monomial x.
  static Polynomial x();

  /// Degree; the zero polynomial reports -1.
  int degree() const { return static_cast<int>(Coeffs.size()) - 1; }
  bool isZero() const { return Coeffs.empty(); }

  /// Coefficient of x^i (0 beyond the stored degree).
  double coeff(int I) const;
  const std::vector<double> &coeffs() const { return Coeffs; }

  /// Horner evaluation at \p X.
  double eval(double X) const;

  /// d/dx of this polynomial.
  Polynomial derivative() const;
  /// Antiderivative with zero constant term.
  Polynomial antiderivative() const;

  /// The polynomial p(a x + b) (used to re-express kernel pieces in the
  /// local coordinate of each unit interval).
  Polynomial composeLinear(double A, double B) const;

  Polynomial operator+(const Polynomial &O) const;
  Polynomial operator-(const Polynomial &O) const;
  Polynomial operator*(const Polynomial &O) const;
  Polynomial operator*(double S) const;
  /// p^n for n >= 0.
  Polynomial pow(unsigned N) const;

  bool operator==(const Polynomial &O) const { return Coeffs == O.Coeffs; }

  /// Render as e.g. "1 - 2.5*x^2 + 1.5*x^3".
  std::string str() const;

private:
  void trim();

  std::vector<double> Coeffs;
};

} // namespace diderot

#endif // DIDEROT_KERNELS_POLYNOMIAL_H

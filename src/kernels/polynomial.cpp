//===--- kernels/polynomial.cpp -------------------------------------------===//

#include "kernels/polynomial.h"

#include <cassert>
#include <cmath>

#include "support/strings.h"

namespace diderot {

Polynomial::Polynomial(std::vector<double> Coeffs) : Coeffs(std::move(Coeffs)) {
  trim();
}

Polynomial Polynomial::constant(double C) {
  return Polynomial(std::vector<double>{C});
}

Polynomial Polynomial::x() { return Polynomial(std::vector<double>{0.0, 1.0}); }

double Polynomial::coeff(int I) const {
  if (I < 0 || I >= static_cast<int>(Coeffs.size()))
    return 0.0;
  return Coeffs[static_cast<size_t>(I)];
}

double Polynomial::eval(double X) const {
  double Acc = 0.0;
  for (size_t I = Coeffs.size(); I-- > 0;)
    Acc = Acc * X + Coeffs[I];
  return Acc;
}

Polynomial Polynomial::derivative() const {
  if (Coeffs.size() <= 1)
    return Polynomial();
  std::vector<double> Out(Coeffs.size() - 1);
  for (size_t I = 1; I < Coeffs.size(); ++I)
    Out[I - 1] = Coeffs[I] * static_cast<double>(I);
  return Polynomial(std::move(Out));
}

Polynomial Polynomial::antiderivative() const {
  if (Coeffs.empty())
    return Polynomial();
  std::vector<double> Out(Coeffs.size() + 1, 0.0);
  for (size_t I = 0; I < Coeffs.size(); ++I)
    Out[I + 1] = Coeffs[I] / static_cast<double>(I + 1);
  return Polynomial(std::move(Out));
}

Polynomial Polynomial::composeLinear(double A, double B) const {
  // Evaluate p at (A x + B) by Horner over polynomial arithmetic.
  Polynomial Arg(std::vector<double>{B, A});
  Polynomial Acc;
  for (size_t I = Coeffs.size(); I-- > 0;)
    Acc = Acc * Arg + Polynomial::constant(Coeffs[I]);
  return Acc;
}

Polynomial Polynomial::operator+(const Polynomial &O) const {
  std::vector<double> Out(std::max(Coeffs.size(), O.Coeffs.size()), 0.0);
  for (size_t I = 0; I < Out.size(); ++I)
    Out[I] = coeff(static_cast<int>(I)) + O.coeff(static_cast<int>(I));
  return Polynomial(std::move(Out));
}

Polynomial Polynomial::operator-(const Polynomial &O) const {
  return *this + O * -1.0;
}

Polynomial Polynomial::operator*(const Polynomial &O) const {
  if (isZero() || O.isZero())
    return Polynomial();
  std::vector<double> Out(Coeffs.size() + O.Coeffs.size() - 1, 0.0);
  for (size_t I = 0; I < Coeffs.size(); ++I)
    for (size_t J = 0; J < O.Coeffs.size(); ++J)
      Out[I + J] += Coeffs[I] * O.Coeffs[J];
  return Polynomial(std::move(Out));
}

Polynomial Polynomial::operator*(double S) const {
  std::vector<double> Out = Coeffs;
  for (double &C : Out)
    C *= S;
  return Polynomial(std::move(Out));
}

Polynomial Polynomial::pow(unsigned N) const {
  Polynomial Acc = Polynomial::constant(1.0);
  for (unsigned I = 0; I < N; ++I)
    Acc = Acc * *this;
  return Acc;
}

std::string Polynomial::str() const {
  if (isZero())
    return "0";
  std::string Out;
  for (size_t I = 0; I < Coeffs.size(); ++I) {
    double C = Coeffs[I];
    if (C == 0.0)
      continue;
    if (!Out.empty())
      Out += C < 0 ? " - " : " + ";
    else if (C < 0)
      Out += "-";
    double A = std::abs(C);
    if (I == 0)
      Out += formatReal(A);
    else {
      if (A != 1.0)
        Out += formatReal(A) + "*";
      Out += (I == 1) ? "x" : strf("x^", I);
    }
  }
  return Out.empty() ? "0" : Out;
}

void Polynomial::trim() {
  while (!Coeffs.empty() && Coeffs.back() == 0.0)
    Coeffs.pop_back();
}

} // namespace diderot

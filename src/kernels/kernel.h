//===--- kernels/kernel.h - separable reconstruction kernels --------------===//
//
// Part of the Diderot-C++ reproduction (PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Piecewise-polynomial reconstruction kernels (Section 2 / 3.1 of the
/// paper). A kernel of support s is nonzero on (-s, s) and is stored as 2s
/// polynomial pieces, one per unit interval [j, j+1) for j in [-s, s); each
/// piece is a polynomial in the local coordinate t = x - j, t in [0,1).
///
/// This representation is exactly what probe expansion needs: a separable
/// convolution sum at fractional position f in [0,1) weighs the sample at
/// integer offset i in [1-s, s] by h(f - i), and since f - i lies in the unit
/// interval [-i, -i+1), that weight is piece (-i) evaluated at t = f — a
/// *statically known* polynomial. The MidIR -> LowIR expansion therefore
/// emits straight-line Horner code with these coefficients baked in.
///
/// Built-in kernels match the paper: `tent` (C0 linear interpolation),
/// `ctmr` (C1 interpolating Catmull-Rom cubic), `bspln3` (C2 cubic B-spline,
/// non-interpolating), plus `bspln5` (C4 quintic B-spline) as an extension.
///
//===----------------------------------------------------------------------===//

#ifndef DIDEROT_KERNELS_KERNEL_H
#define DIDEROT_KERNELS_KERNEL_H

#include <string>
#include <vector>

#include "kernels/polynomial.h"

namespace diderot {

/// A symmetric piecewise-polynomial reconstruction kernel.
class Kernel {
public:
  /// Build a kernel from its positive-half pieces: \p HalfPieces[k] is the
  /// polynomial giving h(x) for x in [k, k+1); the negative half is derived
  /// from the even symmetry h(-x) = h(x). \p Continuity is the C^k class.
  Kernel(std::string Name, int Continuity,
         std::vector<Polynomial> HalfPieces);

  const std::string &name() const { return Name; }
  /// Support radius s: the kernel is zero outside (-s, s).
  int support() const { return Support; }
  /// Number of continuous derivatives (the k in kernel#k). Derived kernels
  /// (derivatives) report max(k - levels, -1); -1 means not even C0.
  int continuity() const { return Continuity; }
  /// How many times this kernel has been differentiated from its base.
  int derivLevel() const { return DerivLevel; }

  /// Evaluate h(x) (0 outside the support).
  double eval(double X) const;
  /// Evaluate the \p Level -th derivative at \p X without constructing the
  /// derived kernel.
  double evalDeriv(double X, int Level) const;

  /// The symbolic derivative kernel h'. Note h' is odd, which the piece
  /// table already captures (pieces are stored over the full domain).
  Kernel derivative() const;

  /// The polynomial piece for x in [j, j+1), as a polynomial in t = x - j;
  /// \p J in [-support, support).
  const Polynomial &piece(int J) const;

  /// The weight polynomial for integer sample offset \p I in [1-s, s]: the
  /// polynomial in f (f in [0,1)) giving h(f - I). This is piece(-I).
  const Polynomial &weightPoly(int I) const { return piece(-I); }

  /// Integral of the kernel over its support (1 for partition-of-unity
  /// reconstruction kernels, 0 for their derivatives).
  double integral() const;

  bool operator==(const Kernel &O) const {
    return Name == O.Name && DerivLevel == O.DerivLevel;
  }

private:
  Kernel() = default;

  std::string Name;
  int Support = 0;
  int Continuity = 0;
  int DerivLevel = 0;
  /// Pieces[j + Support] covers x in [j, j+1), polynomial in t = x - j.
  std::vector<Polynomial> Pieces;
};

/// The built-in kernels.
namespace kernels {
/// C0 tent: linear interpolation, support 1.
const Kernel &tent();
/// C1 interpolating Catmull-Rom cubic spline, support 2.
const Kernel &ctmr();
/// C2 (non-interpolating) uniform cubic B-spline basis, support 2.
const Kernel &bspln3();
/// C4 quintic B-spline basis, support 3 (extension beyond the paper's list).
const Kernel &bspln5();

/// Look up a built-in kernel by its Diderot name; nullptr if unknown.
const Kernel *byName(const std::string &Name);

/// Names of all built-in kernels.
std::vector<std::string> allNames();
} // namespace kernels

} // namespace diderot

#endif // DIDEROT_KERNELS_KERNEL_H

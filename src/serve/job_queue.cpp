//===--- serve/job_queue.cpp - bounded fair job scheduler --------------------===//
//
// Part of the Diderot-C++ reproduction (PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "serve/job_queue.h"

#include <chrono>
#include <condition_variable>
#include <deque>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

namespace diderot::serve {

struct FairScheduler::Impl {
  std::mutex Mu;
  std::condition_variable WorkCv; // signaled on submit and stop
  std::condition_variable IdleCv; // signaled when a worker finishes a job
  // A queued job: the work itself plus what to do if stop() discards it
  // before any worker picks it up.
  struct Entry {
    Task Run;
    Task Cancel;
  };
  // Per-key FIFOs plus the round-robin rotation: Order lists exactly the
  // keys with a non-empty queue, front = next key to serve. A worker pops
  // the front key's oldest job; if that key still has work it goes to the
  // back of Order, otherwise it leaves the rotation.
  std::map<std::string, std::deque<Entry>> Queues;
  std::deque<std::string> Order;
  std::vector<std::thread> Workers;
  Options Opts;
  int Depth = 0;    // queued, not yet started (== sum of queue sizes)
  int InFlight = 0; // executing on a worker right now
  bool Running = false;
  bool Stopping = false;

  void workerMain() {
    std::unique_lock<std::mutex> L(Mu);
    for (;;) {
      WorkCv.wait(L, [&] { return Stopping || !Order.empty(); });
      if (Stopping)
        return;
      std::string Key = std::move(Order.front());
      Order.pop_front();
      auto It = Queues.find(Key);
      Task T = std::move(It->second.front().Run);
      It->second.pop_front();
      if (It->second.empty())
        Queues.erase(It);
      else
        Order.push_back(std::move(Key));
      --Depth;
      ++InFlight;
      L.unlock();
      T();
      L.lock();
      --InFlight;
      IdleCv.notify_all();
    }
  }
};

FairScheduler::FairScheduler() : I(new Impl) {}

FairScheduler::~FairScheduler() { stop(); }

void FairScheduler::start(Options O) {
  std::lock_guard<std::mutex> G(I->Mu);
  if (I->Running)
    return;
  I->Opts = O;
  if (I->Opts.Workers < 1)
    I->Opts.Workers = 1;
  I->Running = true;
  I->Stopping = false;
  for (int W = 0; W < I->Opts.Workers; ++W)
    I->Workers.emplace_back([this] { I->workerMain(); });
}

void FairScheduler::stop() {
  std::vector<std::thread> ToJoin;
  std::vector<Task> Cancels;
  {
    std::lock_guard<std::mutex> G(I->Mu);
    if (!I->Running)
      return;
    I->Stopping = true;
    I->Running = false;
    for (auto &[Key, Q] : I->Queues)
      for (Impl::Entry &E : Q)
        if (E.Cancel)
          Cancels.push_back(std::move(E.Cancel));
    I->Queues.clear();
    I->Order.clear();
    I->Depth = 0;
    ToJoin.swap(I->Workers);
  }
  I->WorkCv.notify_all();
  for (std::thread &T : ToJoin)
    T.join();
  // After the join: running jobs have finished, so a cancellation callback
  // observes final state and never races the task it stands in for. Outside
  // the lock: callbacks may call back into depth()/inFlight() or take the
  // caller's own locks.
  for (Task &C : Cancels)
    C();
  I->IdleCv.notify_all();
}

Status FairScheduler::submit(const std::string &Key, Task T, Task OnCancel) {
  std::lock_guard<std::mutex> G(I->Mu);
  if (!I->Running)
    return Status::error("scheduler is not running");
  if (I->Depth >= I->Opts.Capacity)
    return Status::error("queue full");
  auto [It, Fresh] = I->Queues.try_emplace(Key);
  It->second.push_back({std::move(T), std::move(OnCancel)});
  if (Fresh)
    I->Order.push_back(Key);
  ++I->Depth;
  I->WorkCv.notify_one();
  return Status::ok();
}

int FairScheduler::depth() const {
  std::lock_guard<std::mutex> G(I->Mu);
  return I->Depth;
}

int FairScheduler::inFlight() const {
  std::lock_guard<std::mutex> G(I->Mu);
  return I->InFlight;
}

void FairScheduler::waitIdle() {
  std::unique_lock<std::mutex> L(I->Mu);
  I->IdleCv.wait(L, [&] { return I->Depth == 0 && I->InFlight == 0; });
}

bool FairScheduler::waitIdleFor(int64_t Ms) {
  std::unique_lock<std::mutex> L(I->Mu);
  auto Idle = [&] { return I->Depth == 0 && I->InFlight == 0; };
  if (Ms <= 0)
    return Idle();
  return I->IdleCv.wait_for(L, std::chrono::milliseconds(Ms), Idle);
}

} // namespace diderot::serve

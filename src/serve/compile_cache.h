//===--- serve/compile_cache.h - the daemon's program registry ---------------===//
//
// Part of the Diderot-C++ reproduction (PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The "compile once" half of compile-once-serve-many. Two cache layers
/// stack under a daemon:
///
///  1. the ProgramRegistry here, keyed on the *Diderot source* (via the
///     same content hash as codegen/cache.h), holding compiled front-end
///     artifacts (CompiledProgram) as shared_ptr<const ...> so any number
///     of job workers can instantiate concurrently;
///  2. the native loader's on-disk .so cache (codegen/native_load.cpp),
///     keyed on the *generated C++*, which survives daemon restarts.
///
/// A registry miss after a restart still avoids the host compiler: the
/// front end re-runs (milliseconds) and the loader then finds the .so on
/// disk (a DiskHit in codegen::nativeCacheStats()).
///
/// Also here: helpers for the cache directory itself — the default
/// location (DIDEROT_CACHE_DIR or <temp>/diderot-cpp) and a reader for the
/// loader's append-only index.tsv inventory.
///
//===----------------------------------------------------------------------===//

#ifndef DIDEROT_SERVE_COMPILE_CACHE_H
#define DIDEROT_SERVE_COMPILE_CACHE_H

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "driver/driver.h"
#include "support/result.h"

namespace diderot::serve {

/// The cache directory a daemon uses when none is configured: the
/// DIDEROT_CACHE_DIR environment variable, else <system-temp>/diderot-cpp
/// (the native loader's historical scratch directory, so pre-daemon builds
/// stay warm).
std::string defaultCacheDir();

/// One line of the loader's index.tsv (see codegen/cache.h for the layout).
struct CacheEntry {
  std::string Key;        ///< 32-hex content key
  std::string Program;    ///< program name at compile time
  int64_t UnixMs = 0;     ///< when the host compile happened
  std::string CompilerId; ///< codegen::hostCompilerId() that built it
  int64_t SoBytes = -1;   ///< artifact size at install; -1 = v1 row (unknown)
  std::string SoHash;     ///< 32-hex fnv1a128 of the .so; empty = unknown
  int64_t LastUsedMs = 0; ///< recency the LRU eviction policy uses
};

/// Parse \p Dir's index.tsv. Missing file = empty vector (a cache with no
/// compiles yet); malformed lines are skipped — the index is an inventory,
/// the .so files are the cache.
std::vector<CacheEntry> readCacheIndex(const std::string &Dir);

/// In-process registry of compiled programs, keyed by source content.
/// Thread-safe; lookups are a mutex-guarded map probe, compiles happen
/// outside the lock (two racing misses may both compile — the loser's
/// result is discarded, and the expensive .so build below is already
/// singleflighted by the loader).
class ProgramRegistry {
public:
  explicit ProgramRegistry(CompileOptions Opts) : Opts(std::move(Opts)) {}

  struct Lookup {
    std::shared_ptr<const CompiledProgram> Prog;
    std::string Key;       ///< registry key (content hash of the source)
    bool Cached = false;   ///< true = registry hit, no front-end work done
    uint64_t CompileNs = 0; ///< front-end time on a miss (0 on a hit)
  };

  /// Return the compiled form of \p Source, compiling on first sight.
  /// \p Name feeds diagnostics and the cache index.
  Result<Lookup> getOrCompile(const std::string &Source,
                              const std::string &Name);

  /// The options every registry program is compiled under.
  const CompileOptions &options() const { return Opts; }

  uint64_t hits() const { return Hits.load(std::memory_order_relaxed); }
  uint64_t misses() const { return Misses.load(std::memory_order_relaxed); }
  size_t size() const;

private:
  CompileOptions Opts;
  mutable std::mutex Mu;
  std::map<std::string, std::shared_ptr<const CompiledProgram>> Programs;
  std::atomic<uint64_t> Hits{0}, Misses{0};
};

} // namespace diderot::serve

#endif // DIDEROT_SERVE_COMPILE_CACHE_H

//===--- serve/job_queue.h - bounded fair job scheduler ----------------------===//
//
// Part of the Diderot-C++ reproduction (PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The "serve many" half of compile-once-serve-many: a bounded queue of
/// jobs drained by a persistent worker pool, scheduled fairly across
/// programs. Jobs are grouped by an opaque key (the daemon passes the
/// program's cache key) and workers rotate round-robin over the keys that
/// have pending work, so one client hammering program A cannot starve a
/// single queued job for program B — B's job waits behind at most one job
/// per distinct key, never behind A's whole backlog.
///
/// Capacity is enforced at submit (an error, which the daemon maps to HTTP
/// 429), never by blocking: the accept path must stay non-blocking so
/// shedding load is cheap. Per-job deadlines are not the scheduler's
/// business — the daemon folds them into each job's RunPolicy, the
/// fault-containment layer from the runtime.
///
//===----------------------------------------------------------------------===//

#ifndef DIDEROT_SERVE_JOB_QUEUE_H
#define DIDEROT_SERVE_JOB_QUEUE_H

#include <functional>
#include <memory>
#include <string>

#include "support/result.h"

namespace diderot::serve {

/// Round-robin-over-keys worker pool. start() -> submit()xN -> stop().
/// All methods are thread-safe.
class FairScheduler {
public:
  struct Options {
    int Workers = 2;   ///< persistent worker threads
    int Capacity = 64; ///< max queued (not yet started) jobs; 0 = reject all
  };
  using Task = std::function<void()>;

  FairScheduler();
  ~FairScheduler(); // stops (discarding queued jobs) if still running

  FairScheduler(const FairScheduler &) = delete;
  FairScheduler &operator=(const FairScheduler &) = delete;

  /// Spin up the worker pool (no-op if already started).
  void start(Options O);

  /// Stop accepting, finish the jobs already *running*, discard the ones
  /// still queued, join the workers. Each discarded job's cancellation
  /// callback (see submit) runs exactly once, after the workers have
  /// joined, so callers can resolve whatever state the queued task was
  /// going to — without it, a daemon shutdown left queued JobRecs parked
  /// in "queued" forever. Idempotent. Callers who need the queue drained
  /// rather than discarded call waitIdle() first.
  void stop();

  /// Enqueue \p T under fairness key \p Key. Errors (without enqueueing)
  /// when the queue is at capacity or the scheduler is not running.
  /// \p OnCancel, if non-null, is invoked by stop() iff the job is
  /// discarded while still queued; a job that starts running never has its
  /// cancellation invoked.
  Status submit(const std::string &Key, Task T, Task OnCancel = nullptr);

  /// Jobs queued but not yet started.
  int depth() const;
  /// Jobs currently executing on a worker.
  int inFlight() const;
  /// Block until depth() == 0 and inFlight() == 0.
  void waitIdle();
  /// waitIdle with a budget: returns true if the queue drained within
  /// \p Ms milliseconds, false on timeout (jobs still pending — the
  /// graceful-drain path then falls through to stop(), which cancels
  /// whatever is left). Ms <= 0 checks once without blocking.
  bool waitIdleFor(int64_t Ms);

private:
  struct Impl;
  std::unique_ptr<Impl> I;
};

} // namespace diderot::serve

#endif // DIDEROT_SERVE_JOB_QUEUE_H

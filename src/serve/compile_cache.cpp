//===--- serve/compile_cache.cpp - the daemon's program registry -------------===//
//
// Part of the Diderot-C++ reproduction (PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "serve/compile_cache.h"

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "codegen/cache.h"
#include "support/strings.h"

namespace diderot::serve {

std::string defaultCacheDir() {
  if (const char *Env = std::getenv("DIDEROT_CACHE_DIR"))
    if (*Env)
      return Env;
  return (std::filesystem::temp_directory_path() / "diderot-cpp").string();
}

std::vector<CacheEntry> readCacheIndex(const std::string &Dir) {
  // One parser for both layers: the loader's reader already handles v1
  // (4-column) and v2 (integrity-carrying) rows.
  std::vector<CacheEntry> Entries;
  for (codegen::CacheIndexEntry &E : codegen::readCacheIndexEntries(Dir)) {
    CacheEntry S;
    S.Key = std::move(E.Key);
    S.Program = std::move(E.Program);
    S.UnixMs = E.UnixMs;
    S.CompilerId = std::move(E.CompilerId);
    S.SoBytes = E.SoBytes;
    S.SoHash = std::move(E.SoHash);
    S.LastUsedMs = E.LastUsedMs;
    Entries.push_back(std::move(S));
  }
  return Entries;
}

size_t ProgramRegistry::size() const {
  std::lock_guard<std::mutex> G(Mu);
  return Programs.size();
}

Result<ProgramRegistry::Lookup>
ProgramRegistry::getOrCompile(const std::string &Source,
                              const std::string &Name) {
  Lookup L;
  L.Key = codegen::programCacheKey(Source, Opts).hex();
  {
    std::lock_guard<std::mutex> G(Mu);
    auto It = Programs.find(L.Key);
    if (It != Programs.end()) {
      Hits.fetch_add(1, std::memory_order_relaxed);
      L.Prog = It->second;
      L.Cached = true;
      return L;
    }
  }
  Misses.fetch_add(1, std::memory_order_relaxed);
  auto T0 = std::chrono::steady_clock::now();
  Result<CompiledProgram> C = compileString(Source, Opts, Name);
  if (!C.isOk())
    return Result<Lookup>::error(C.message());
  L.CompileNs = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - T0)
          .count());
  auto Fresh = std::make_shared<const CompiledProgram>(C.take());
  std::lock_guard<std::mutex> G(Mu);
  auto [It, Inserted] = Programs.emplace(L.Key, std::move(Fresh));
  (void)Inserted; // a racing miss may have beaten us; serve the winner
  L.Prog = It->second;
  return L;
}

} // namespace diderot::serve

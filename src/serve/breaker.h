//===--- serve/breaker.h - per-program compile circuit breaker ---------------===//
//
// Part of the Diderot-C++ reproduction (PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A circuit breaker over the daemon's compile path, keyed per program
/// (the content-addressed cache key). The host C++ compiler is part of the
/// serving hot path (paper Section 5.1); a program whose host compile
/// fails deterministically — or times out under the supervised runner —
/// would otherwise burn a full compile attempt out of a job-worker slot on
/// every request. The breaker remembers consecutive failures per key and,
/// once open, fails requests for that program fast (the daemon maps a
/// denial to 503 + Retry-After) without consuming a compile slot.
///
/// States, per key:
///
///   Closed    normal operation; failures count consecutively.
///   Open      FailureThreshold consecutive failures seen. All requests
///             denied until OpenMs elapses.
///   HalfOpen  cooldown expired: exactly one probe request is admitted.
///             Success closes the breaker; failure re-opens it (and
///             restarts the cooldown). Other requests keep failing fast
///             while the probe is in flight.
///
/// An admitted request owes the breaker exactly one of three outcomes:
/// recordSuccess, recordFailure, or abandonProbe (no compile verdict —
/// the request bailed before reaching the compiler: bad headers, queue
/// full, drained, deadline already spent). The Token RAII guard makes
/// the abandon automatic on any exit path that forgets to report; as a
/// second line of defense, a half-open probe older than OpenMs is
/// considered lost and the next admit() takes it over.
///
/// The clock is injectable (Options::NowNs) so state transitions are
/// deterministic under test; the default reads tracing::steadyClock().
/// Thread-safe; one mutex — admission happens once per HTTP request, far
/// off any per-strand path. Tracking is bounded: successful keys are
/// forgotten immediately, and the map is capped at MaxTracked entries —
/// at the cap, Closed entries idle for OpenMs (then the coldest Closed
/// entry) are evicted before a new key is tracked, so a stream of unique
/// failing programs cannot grow it without bound.
///
//===----------------------------------------------------------------------===//

#ifndef DIDEROT_SERVE_BREAKER_H
#define DIDEROT_SERVE_BREAKER_H

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace diderot::serve {

class CompileBreaker {
public:
  enum class State { Closed, Open, HalfOpen };

  struct Options {
    /// Consecutive failures that open the breaker; <= 0 disables it
    /// entirely (admit() always allows, nothing is tracked).
    int FailureThreshold = 3;
    /// Cooldown after opening before one half-open probe is admitted.
    int64_t OpenMs = 10000;
    /// Hard cap on tracked keys (see the class comment). <= 0 means
    /// unbounded (tests only).
    int MaxTracked = 4096;
    /// Injectable monotonic clock (nanoseconds). Null = steady clock.
    std::function<uint64_t()> NowNs;
  };

  /// Outcome of an admission check.
  struct Decision {
    bool Allow = true;
    State St = State::Closed;  ///< state *after* the check
    int64_t RetryAfterMs = 0;  ///< advisory wait when denied
  };

  CompileBreaker();
  explicit CompileBreaker(Options O);

  /// Admission check for one compile/run of \p Key. May transition
  /// Open -> HalfOpen (cooldown expired; this caller becomes the probe).
  /// A denial must not be followed by recordSuccess/recordFailure.
  Decision admit(const std::string &Key);

  /// The admitted request's compile (or instantiate) succeeded: close and
  /// forget the key.
  void recordSuccess(const std::string &Key);

  /// The admitted request's compile failed. In HalfOpen this re-opens the
  /// breaker; in Closed it opens once the consecutive count reaches the
  /// threshold.
  void recordFailure(const std::string &Key);

  /// The admitted request exited without a compile verdict (malformed
  /// request, queue full, drain cancellation, deadline spent in queue).
  /// Releases the half-open probe slot so the next caller can probe;
  /// a no-op for keys in any other state.
  void abandonProbe(const std::string &Key);

  /// Move-only guard tying one admitted request to exactly one breaker
  /// outcome. Construct it right after a successful admit(); call
  /// success() or failure() when the compile verdict is known. Any other
  /// exit — including ones added later — abandons the probe in the
  /// destructor, so a half-open breaker can never jam on a probe that
  /// returned early without reporting.
  class Token {
  public:
    Token() = default;
    Token(CompileBreaker &Breaker, std::string K)
        : B(&Breaker), Key(std::move(K)) {}
    Token(const Token &) = delete;
    Token &operator=(const Token &) = delete;
    Token(Token &&O) noexcept : B(O.B), Key(std::move(O.Key)) {
      O.B = nullptr;
    }
    Token &operator=(Token &&O) noexcept {
      if (this != &O) {
        abandon();
        B = O.B;
        Key = std::move(O.Key);
        O.B = nullptr;
      }
      return *this;
    }
    ~Token() { abandon(); }

    void success() {
      if (CompileBreaker *T = disarm())
        T->recordSuccess(Key);
    }
    void failure() {
      if (CompileBreaker *T = disarm())
        T->recordFailure(Key);
    }
    void abandon() {
      if (CompileBreaker *T = disarm())
        T->abandonProbe(Key);
    }
    bool armed() const { return B != nullptr; }

  private:
    CompileBreaker *disarm() {
      CompileBreaker *T = B;
      B = nullptr;
      return T;
    }
    CompileBreaker *B = nullptr;
    std::string Key;
  };

  State state(const std::string &Key) const;
  /// Keys whose breaker is not Closed right now (for /metrics labels;
  /// bounded — closed keys are dropped from tracking).
  std::vector<std::pair<std::string, State>> tracked() const;
  int numOpen() const;      ///< keys in Open or HalfOpen
  size_t numTracked() const; ///< all tracked keys, any state

  uint64_t trips() const;     ///< transitions into Open (incl. re-opens)
  uint64_t fastFails() const; ///< admissions denied

  static const char *stateName(State S);

private:
  struct Rec {
    State St = State::Closed;
    int Consecutive = 0;      ///< consecutive failures while Closed
    uint64_t OpenedAtNs = 0;  ///< when the breaker last opened
    uint64_t LastFailNs = 0;  ///< last recordFailure (cap eviction order)
    uint64_t ProbeAtNs = 0;   ///< when the in-flight probe was admitted
    bool ProbeInFlight = false;
  };
  uint64_t now() const;
  /// Mu held. Make room for one more entry when the map is at the cap:
  /// sweep Closed entries idle for OpenMs, then the coldest Closed entry.
  /// Returns false when every entry is Open/HalfOpen and nothing can go.
  bool evictForInsert(uint64_t Now);

  Options Opts;
  mutable std::mutex Mu;
  std::map<std::string, Rec> Keys;
  uint64_t Trips = 0, FastFails = 0;
};

} // namespace diderot::serve

#endif // DIDEROT_SERVE_BREAKER_H

//===--- serve/daemon.cpp - the diderotd compile-and-run service -------------===//
//
// Part of the Diderot-C++ reproduction (PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "serve/daemon.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <map>
#include <mutex>
#include <sstream>
#include <vector>

#include "codegen/cache.h"
#include "driver/inputs.h"
#include "nrrd/nrrd.h"
#include "observe/observe.h"
#include "serve/compile_cache.h"
#include "serve/job_queue.h"
#include "support/http.h"
#include "support/strings.h"

namespace diderot::serve {

namespace {

/// Octave-bucket latency histogram, Prometheus-ready. Bucket B counts
/// samples <= 1ms * 2^B; 20 buckets reach ~9 minutes, everything slower
/// lands in +Inf only. Lock-free record, racy-but-monotonic scrape — the
/// same contract as the runtime metrics registry.
struct LatencyHisto {
  static constexpr int NumBuckets = 20;
  std::atomic<uint64_t> Buckets[NumBuckets] = {};
  std::atomic<uint64_t> Count{0};
  std::atomic<uint64_t> SumNs{0};

  void record(uint64_t Ns) {
    uint64_t Ms = Ns / 1000000;
    for (int B = 0; B < NumBuckets; ++B)
      if (Ms <= (1ull << B)) {
        Buckets[B].fetch_add(1, std::memory_order_relaxed);
        break;
      }
    Count.fetch_add(1, std::memory_order_relaxed);
    SumNs.fetch_add(Ns, std::memory_order_relaxed);
  }

  /// Append HELP/TYPE/bucket/sum/count lines for metric \p Name (seconds).
  void prom(std::string &Out, const std::string &Name,
            const std::string &Help) const {
    Out += strf("# HELP ", Name, " ", Help, "\n# TYPE ", Name,
                " histogram\n");
    uint64_t Cum = 0;
    for (int B = 0; B < NumBuckets; ++B) {
      Cum += Buckets[B].load(std::memory_order_relaxed);
      Out += strf(Name, "_bucket{le=\"", 0.001 * (1ull << B), "\"} ", Cum,
                  "\n");
    }
    uint64_t N = Count.load(std::memory_order_relaxed);
    Out += strf(Name, "_bucket{le=\"+Inf\"} ", N, "\n");
    Out += strf(Name, "_sum ",
                SumNs.load(std::memory_order_relaxed) / 1e9, "\n");
    Out += strf(Name, "_count ", N, "\n");
  }
};

enum class JobState { Queued, Running, Done, Failed };

const char *jobStateName(JobState S) {
  switch (S) {
  case JobState::Queued:
    return "queued";
  case JobState::Running:
    return "running";
  case JobState::Done:
    return "done";
  case JobState::Failed:
    return "failed";
  }
  return "?";
}

/// One submitted run. Guarded by Impl::JobsMu (the fields are small and
/// job transitions are rare next to strand updates; one lock keeps the
/// done-then-pruned lifecycle trivially correct).
struct JobRec {
  std::string Id;
  std::string Program; ///< program name
  std::string Key;     ///< registry key
  JobState State = JobState::Queued;
  std::string Error;   ///< non-empty iff Failed
  std::string Outcome; ///< runOutcomeName once finished
  int Steps = 0;
  uint64_t WallNs = 0;
  size_t Strands = 0, Stable = 0, Dead = 0, Faulted = 0;
  std::string OutputNrrd; ///< serialized first output (may be empty)
};

} // namespace

struct Daemon::Impl {
  DaemonOptions Opts;
  std::unique_ptr<ProgramRegistry> Registry;
  FairScheduler Sched;
  http::Server Http;

  std::mutex JobsMu;
  std::map<std::string, std::shared_ptr<JobRec>> Jobs;
  std::deque<std::string> Finished; // pruning order (oldest first)
  uint64_t NextJobId = 1;

  std::atomic<uint64_t> JobsDone{0}, JobsFailed{0}, JobsRejected{0};
  std::atomic<uint64_t> HttpRequests{0};
  LatencyHisto CompileHisto, RunHisto;

  http::Response handle(const http::Request &Req);
  http::Response handleCompile(const http::Request &Req);
  http::Response handleRun(const http::Request &Req);
  http::Response handleJob(const std::string &Id, bool WantOutput);
  http::Response metricsText();
  void runJob(const std::shared_ptr<JobRec> &Job,
              std::shared_ptr<const CompiledProgram> Prog,
              std::vector<std::pair<std::string, std::string>> Inputs,
              rt::RunConfig RC, std::string OutputName);
  void finishJob(const std::shared_ptr<JobRec> &Job);
};

namespace {

http::Response textResponse(int Code, const std::string &Body) {
  return {Code, "text/plain; charset=utf-8", Body, {}};
}

http::Response jsonResponse(int Code, const std::string &Body) {
  return {Code, "application/json", Body, {}};
}

std::string jobJson(const JobRec &J) {
  std::ostringstream S;
  S << "{\"job\":\"" << observe::jsonEscape(J.Id) << "\""
    << ",\"state\":\"" << jobStateName(J.State) << "\""
    << ",\"program\":\"" << observe::jsonEscape(J.Program) << "\""
    << ",\"key\":\"" << J.Key << "\"";
  if (J.State == JobState::Done) {
    S << ",\"outcome\":\"" << J.Outcome << "\""
      << ",\"steps\":" << J.Steps << ",\"wallMs\":" << (J.WallNs / 1e6)
      << ",\"strands\":" << J.Strands << ",\"stable\":" << J.Stable
      << ",\"dead\":" << J.Dead << ",\"faulted\":" << J.Faulted
      << ",\"outputBytes\":" << J.OutputNrrd.size();
  }
  if (!J.Error.empty())
    S << ",\"error\":\"" << observe::jsonEscape(J.Error) << "\"";
  S << "}\n";
  return S.str();
}

} // namespace

http::Response Daemon::Impl::handle(const http::Request &Req) {
  HttpRequests.fetch_add(1, std::memory_order_relaxed);
  if (Req.Path == "/compile") {
    if (Req.Method != "POST")
      return textResponse(405, "POST only\n");
    return handleCompile(Req);
  }
  if (Req.Path == "/run") {
    if (Req.Method != "POST")
      return textResponse(405, "POST only\n");
    return handleRun(Req);
  }
  if (startsWith(Req.Path, "/jobs/")) {
    if (Req.Method != "GET")
      return textResponse(405, "GET only\n");
    std::string Rest = Req.Path.substr(6);
    bool WantOutput = false;
    size_t Slash = Rest.find('/');
    if (Slash != std::string::npos) {
      if (Rest.substr(Slash) != "/output")
        return textResponse(404, "not found\n");
      WantOutput = true;
      Rest = Rest.substr(0, Slash);
    }
    return handleJob(Rest, WantOutput);
  }
  if (Req.Path == "/metrics" && Req.Method == "GET")
    return metricsText();
  return textResponse(404, "not found\n");
}

http::Response Daemon::Impl::handleCompile(const http::Request &Req) {
  if (Req.Body.empty())
    return textResponse(400, "empty program body\n");
  std::string Name = Req.header("x-diderot-program");
  if (Name.empty())
    Name = "program";
  auto T0 = std::chrono::steady_clock::now();
  Result<ProgramRegistry::Lookup> L = Registry->getOrCompile(Req.Body, Name);
  if (!L.isOk())
    return textResponse(400, L.message() + "\n");
  if (!L->Cached) {
    // Warm the expensive artifact now: instantiating a native program
    // emits the C++ and builds (or disk-hits) the shared object, so the
    // first POST /run finds everything hot.
    Result<std::unique_ptr<rt::ProgramInstance>> Inst = L->Prog->instantiate();
    if (!Inst.isOk())
      return textResponse(400, Inst.message() + "\n");
  }
  uint64_t Ns = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - T0)
          .count());
  if (!L->Cached)
    CompileHisto.record(Ns);
  std::ostringstream S;
  S << "{\"key\":\"" << L->Key << "\",\"program\":\""
    << observe::jsonEscape(Name) << "\",\"cached\":"
    << (L->Cached ? "true" : "false") << ",\"compileMs\":" << (Ns / 1e6)
    << "}\n";
  return jsonResponse(200, S.str());
}

http::Response Daemon::Impl::handleRun(const http::Request &Req) {
  if (Req.Body.empty())
    return textResponse(400, "empty program body\n");
  std::string Name = Req.header("x-diderot-program");
  if (Name.empty())
    Name = "program";
  Result<ProgramRegistry::Lookup> L = Registry->getOrCompile(Req.Body, Name);
  if (!L.isOk())
    return textResponse(400, L.message() + "\n");
  if (L->CompileNs)
    CompileHisto.record(L->CompileNs);

  // Inputs arrive as repeated X-Diderot-Input: NAME=VALUE headers; they are
  // validated on the worker, where the instance (and so the declared input
  // types) exists.
  std::vector<std::pair<std::string, std::string>> Inputs;
  for (const std::string &KV : Req.headerValues("x-diderot-input")) {
    size_t Eq = KV.find('=');
    if (Eq == std::string::npos)
      return textResponse(400, "X-Diderot-Input needs NAME=VALUE\n");
    Inputs.emplace_back(KV.substr(0, Eq), KV.substr(Eq + 1));
  }
  rt::RunConfig RC;
  RC.MaxSupersteps = Opts.MaxSupersteps;
  RC.NumWorkers = Opts.RunWorkers;
  RC.Policy.DeadlineNs = Opts.DefaultDeadlineNs;
  if (std::string V = Req.header("x-diderot-steps"); !V.empty())
    RC.MaxSupersteps = std::atoi(V.c_str());
  if (std::string V = Req.header("x-diderot-run-workers"); !V.empty())
    RC.NumWorkers = std::atoi(V.c_str());
  if (std::string V = Req.header("x-diderot-deadline-ms"); !V.empty())
    RC.Policy.DeadlineNs = std::atoll(V.c_str()) * 1000000;
  std::string OutputName = Req.header("x-diderot-output");

  auto Job = std::make_shared<JobRec>();
  Job->Program = Name;
  Job->Key = L->Key;
  {
    std::lock_guard<std::mutex> G(JobsMu);
    Job->Id = strf("j-", NextJobId++);
    Jobs[Job->Id] = Job;
  }
  Status S = Sched.submit(
      L->Key, [this, Job, Prog = L->Prog, Inputs = std::move(Inputs), RC,
               OutputName]() mutable {
        runJob(Job, std::move(Prog), std::move(Inputs), RC, OutputName);
      });
  if (!S.isOk()) {
    JobsRejected.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> G(JobsMu);
    Jobs.erase(Job->Id);
    return textResponse(429, S.message() + "\n");
  }
  http::Response R = jsonResponse(
      202, strf("{\"job\":\"", Job->Id, "\",\"key\":\"", Job->Key, "\"}\n"));
  R.ExtraHeaders.emplace_back("X-Diderot-Job", Job->Id);
  return R;
}

void Daemon::Impl::runJob(
    const std::shared_ptr<JobRec> &Job,
    std::shared_ptr<const CompiledProgram> Prog,
    std::vector<std::pair<std::string, std::string>> Inputs, rt::RunConfig RC,
    std::string OutputName) {
  {
    std::lock_guard<std::mutex> G(JobsMu);
    Job->State = JobState::Running;
  }
  auto Fail = [&](const std::string &Msg) {
    std::lock_guard<std::mutex> G(JobsMu);
    Job->State = JobState::Failed;
    Job->Error = Msg;
    JobsFailed.fetch_add(1, std::memory_order_relaxed);
    finishJob(Job);
  };
  Result<std::unique_ptr<rt::ProgramInstance>> Inst = Prog->instantiate();
  if (!Inst.isOk())
    return Fail(Inst.message());
  rt::ProgramInstance &P = **Inst;
  for (const auto &[IName, IValue] : Inputs) {
    Status S = setInputFromText(P, IName, IValue);
    if (!S.isOk())
      return Fail(S.message());
  }
  Status S = P.initialize();
  if (!S.isOk())
    return Fail(S.message());
  Result<rt::RunStats> Run = P.run(RC);
  if (!Run.isOk())
    return Fail(Run.message());
  std::string NrrdBytes;
  if (!P.outputs().empty()) {
    Result<Nrrd> N = outputToNrrd(P, OutputName);
    if (!N.isOk())
      return Fail(N.message());
    Result<std::string> Bytes = nrrdSerialize(*N);
    if (!Bytes.isOk())
      return Fail(Bytes.message());
    NrrdBytes = Bytes.take();
  }
  RunHisto.record(Run->WallNs);
  std::lock_guard<std::mutex> G(JobsMu);
  Job->State = JobState::Done;
  Job->Outcome = observe::runOutcomeName(Run->Outcome);
  Job->Steps = Run->Steps;
  Job->WallNs = Run->WallNs;
  Job->Strands = P.numStrands();
  Job->Stable = P.numStable();
  Job->Dead = P.numDead();
  Job->Faulted = P.numFaulted();
  Job->OutputNrrd = std::move(NrrdBytes);
  JobsDone.fetch_add(1, std::memory_order_relaxed);
  finishJob(Job);
}

/// JobsMu held. Record the finish order and prune the oldest finished jobs
/// beyond the retention cap so a long-lived daemon's job table stays
/// bounded.
void Daemon::Impl::finishJob(const std::shared_ptr<JobRec> &Job) {
  Finished.push_back(Job->Id);
  while (Finished.size() > static_cast<size_t>(Opts.MaxFinishedJobs)) {
    Jobs.erase(Finished.front());
    Finished.pop_front();
  }
}

http::Response Daemon::Impl::handleJob(const std::string &Id,
                                       bool WantOutput) {
  std::lock_guard<std::mutex> G(JobsMu);
  auto It = Jobs.find(Id);
  if (It == Jobs.end())
    return textResponse(404, "no such job\n");
  const JobRec &J = *It->second;
  if (!WantOutput)
    return jsonResponse(200, jobJson(J));
  if (J.State == JobState::Failed)
    return textResponse(409, "job failed: " + J.Error + "\n");
  if (J.State != JobState::Done)
    return textResponse(409,
                        strf("job is ", jobStateName(J.State), "\n"));
  if (J.OutputNrrd.empty())
    return textResponse(404, "job has no output\n");
  return {200, "application/octet-stream", J.OutputNrrd, {}};
}

http::Response Daemon::Impl::metricsText() {
  std::string Out;
  auto Counter = [&](const char *Name, const char *Help, uint64_t V) {
    Out += strf("# HELP ", Name, " ", Help, "\n# TYPE ", Name,
                " counter\n", Name, " ", V, "\n");
  };
  auto Gauge = [&](const char *Name, const char *Help, int64_t V) {
    Out += strf("# HELP ", Name, " ", Help, "\n# TYPE ", Name, " gauge\n",
                Name, " ", V, "\n");
  };
  Counter("diderot_daemon_cache_hits_total",
          "Program registry hits (no front-end work)", Registry->hits());
  Counter("diderot_daemon_cache_misses_total",
          "Program registry misses (front-end compiles)",
          Registry->misses());
  codegen::NativeCacheStats NC = codegen::nativeCacheStats();
  Counter("diderot_daemon_native_mem_hits_total",
          "Native loader in-process .so hits", NC.MemHits);
  Counter("diderot_daemon_native_disk_hits_total",
          "Native loader on-disk .so hits (no host compile)", NC.DiskHits);
  Counter("diderot_daemon_native_host_compiles_total",
          "Host C++ compiler invocations", NC.HostCompiles);
  Counter("diderot_daemon_http_requests_total", "HTTP requests handled",
          HttpRequests.load(std::memory_order_relaxed));
  Out += strf("# HELP diderot_daemon_jobs_total Jobs by terminal state\n",
              "# TYPE diderot_daemon_jobs_total counter\n");
  Out += strf("diderot_daemon_jobs_total{state=\"done\"} ",
              JobsDone.load(std::memory_order_relaxed), "\n");
  Out += strf("diderot_daemon_jobs_total{state=\"failed\"} ",
              JobsFailed.load(std::memory_order_relaxed), "\n");
  Out += strf("diderot_daemon_jobs_total{state=\"rejected\"} ",
              JobsRejected.load(std::memory_order_relaxed), "\n");
  Gauge("diderot_daemon_queue_depth", "Jobs queued, not yet started",
        Sched.depth());
  Gauge("diderot_daemon_jobs_inflight", "Jobs executing right now",
        Sched.inFlight());
  Gauge("diderot_daemon_programs", "Programs in the registry",
        static_cast<int64_t>(Registry->size()));
  CompileHisto.prom(Out, "diderot_daemon_compile_seconds",
                    "Cold compile latency (front end + native build)");
  RunHisto.prom(Out, "diderot_daemon_run_seconds", "Job run latency");
  return {200, "text/plain; version=0.0.4; charset=utf-8", Out, {}};
}

Daemon::Daemon() : I(new Impl) {}

Daemon::~Daemon() { stop(); }

Status Daemon::start(DaemonOptions O) {
  if (O.Compile.WorkDir.empty())
    O.Compile.WorkDir = defaultCacheDir();
  I->Opts = O;
  I->Registry = std::make_unique<ProgramRegistry>(O.Compile);
  FairScheduler::Options SO;
  SO.Workers = O.JobWorkers;
  SO.Capacity = O.QueueCapacity;
  I->Sched.start(SO);
  http::Server::Options HO;
  HO.HandlerThreads = O.HttpThreads;
  Status S = I->Http.start(
      O.Port, [Impl = I.get()](const http::Request &R) {
        return Impl->handle(R);
      },
      HO);
  if (!S.isOk()) {
    I->Sched.stop();
    return S;
  }
  return Status::ok();
}

void Daemon::stop() {
  // HTTP first so no new jobs arrive, then the scheduler (finishes running
  // jobs, discards queued ones).
  I->Http.stop();
  I->Sched.stop();
}

int Daemon::port() const { return I->Http.port(); }

std::string Daemon::cacheDir() const { return I->Opts.Compile.WorkDir; }

Daemon::Counters Daemon::counters() const {
  Counters C;
  if (I->Registry) {
    C.CacheHits = I->Registry->hits();
    C.CacheMisses = I->Registry->misses();
  }
  C.JobsDone = I->JobsDone.load(std::memory_order_relaxed);
  C.JobsFailed = I->JobsFailed.load(std::memory_order_relaxed);
  C.JobsRejected = I->JobsRejected.load(std::memory_order_relaxed);
  C.QueueDepth = I->Sched.depth();
  C.JobsInFlight = I->Sched.inFlight();
  return C;
}

void Daemon::waitIdle() { I->Sched.waitIdle(); }

void Daemon::stampEnvMeta() const {
  Counters C = counters();
  uint64_t Lookups = C.CacheHits + C.CacheMisses;
  double Rate = Lookups ? static_cast<double>(C.CacheHits) /
                              static_cast<double>(Lookups)
                        : 0.0;
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%.4f", Rate);
  ::setenv("DIDEROT_DAEMON_CACHE_HIT_RATE", Buf, 1);
  std::snprintf(Buf, sizeof(Buf), "%d", C.QueueDepth);
  ::setenv("DIDEROT_DAEMON_QUEUE_DEPTH", Buf, 1);
}

} // namespace diderot::serve

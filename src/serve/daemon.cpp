//===--- serve/daemon.cpp - the diderotd compile-and-run service -------------===//
//
// Part of the Diderot-C++ reproduction (PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "serve/daemon.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <filesystem>
#include <map>
#include <mutex>
#include <sstream>
#include <vector>

#include "codegen/cache.h"
#include "driver/inputs.h"
#include "driver/record.h"
#include "nrrd/nrrd.h"
#include "observe/fault.h"
#include "observe/observe.h"
#include "observe/replay.h"
#include "serve/breaker.h"
#include "serve/compile_cache.h"
#include "serve/job_queue.h"
#include "support/http.h"
#include "support/log.h"
#include "support/strings.h"
#include "support/tarball.h"
#include "support/trace.h"

namespace diderot::serve {

namespace {

namespace lg = diderot::logging;
namespace fs = std::filesystem;

/// Octave-bucket latency histogram, Prometheus-ready. Bucket B counts
/// samples <= 1ms * 2^B; 20 buckets reach ~9 minutes, everything slower
/// lands in +Inf only. Lock-free record, racy-but-monotonic scrape — the
/// same contract as the runtime metrics registry.
///
/// Each bucket keeps the trace id of its slowest sample as an
/// OpenMetrics-style exemplar, so a `/metrics` scrape that shows a fat
/// tail bucket also says which request to pull up in `GET /jobs/<id>/trace`.
struct LatencyHisto {
  static constexpr int NumBuckets = 20;
  std::atomic<uint64_t> Buckets[NumBuckets] = {};
  std::atomic<uint64_t> Count{0};
  std::atomic<uint64_t> SumNs{0};
  std::atomic<uint64_t> WorstNs[NumBuckets] = {};
  mutable std::mutex ExemplarMu;          ///< guards WorstTrace only
  std::string WorstTrace[NumBuckets];     ///< 32-hex trace id per bucket

  void record(uint64_t Ns, const std::string &TraceHex = std::string()) {
    uint64_t Ms = Ns / 1000000;
    int Bucket = NumBuckets;
    for (int B = 0; B < NumBuckets; ++B)
      if (Ms <= (1ull << B)) {
        Buckets[B].fetch_add(1, std::memory_order_relaxed);
        Bucket = B;
        break;
      }
    Count.fetch_add(1, std::memory_order_relaxed);
    SumNs.fetch_add(Ns, std::memory_order_relaxed);
    if (TraceHex.empty() || Bucket >= NumBuckets)
      return;
    // Keep the worst sample per bucket. The CAS decides the winner; the
    // string store behind the mutex may briefly lag a concurrent winner,
    // which is acceptable for an exemplar.
    uint64_t Prev = WorstNs[Bucket].load(std::memory_order_relaxed);
    while (Ns > Prev)
      if (WorstNs[Bucket].compare_exchange_weak(Prev, Ns,
                                                std::memory_order_relaxed)) {
        std::lock_guard<std::mutex> G(ExemplarMu);
        WorstTrace[Bucket] = TraceHex;
        break;
      }
  }

  /// Append HELP/TYPE/bucket/sum/count lines for metric \p Name (seconds).
  /// Buckets with a recorded exemplar append it OpenMetrics-style:
  ///   name_bucket{le="0.128"} 17 # {trace_id="<32 hex>"} 0.093
  void prom(std::string &Out, const std::string &Name,
            const std::string &Help) const {
    Out += strf("# HELP ", Name, " ", Help, "\n# TYPE ", Name,
                " histogram\n");
    uint64_t Cum = 0;
    for (int B = 0; B < NumBuckets; ++B) {
      Cum += Buckets[B].load(std::memory_order_relaxed);
      Out += strf(Name, "_bucket{le=\"", 0.001 * (1ull << B), "\"} ", Cum);
      uint64_t Worst = WorstNs[B].load(std::memory_order_relaxed);
      if (Worst) {
        std::string Trace;
        {
          std::lock_guard<std::mutex> G(ExemplarMu);
          Trace = WorstTrace[B];
        }
        if (!Trace.empty())
          Out += strf(" # {trace_id=\"", Trace, "\"} ", Worst / 1e9);
      }
      Out += "\n";
    }
    uint64_t N = Count.load(std::memory_order_relaxed);
    Out += strf(Name, "_bucket{le=\"+Inf\"} ", N, "\n");
    Out += strf(Name, "_sum ",
                SumNs.load(std::memory_order_relaxed) / 1e9, "\n");
    Out += strf(Name, "_count ", N, "\n");
  }
};

enum class JobState { Queued, Running, Done, Failed };

const char *jobStateName(JobState S) {
  switch (S) {
  case JobState::Queued:
    return "queued";
  case JobState::Running:
    return "running";
  case JobState::Done:
    return "done";
  case JobState::Failed:
    return "failed";
  }
  return "?";
}

/// One submitted run. Guarded by Impl::JobsMu (the fields are small and
/// job transitions are rare next to strand updates; one lock keeps the
/// done-then-pruned lifecycle trivially correct).
struct JobRec {
  std::string Id;
  std::string Program; ///< program name
  std::string Key;     ///< registry key
  JobState State = JobState::Queued;
  std::string Error;   ///< non-empty iff Failed
  std::string Outcome; ///< runOutcomeName once finished
  /// The breaker outcome this job owes. Resolved in runJob (success or
  /// failure at instantiate) or abandoned when the job never reaches the
  /// compiler (deadline spent in queue, drain cancellation).
  CompileBreaker::Token BreakerTok;
  int Steps = 0;
  uint64_t WallNs = 0;
  size_t Strands = 0, Stable = 0, Dead = 0, Faulted = 0;
  std::string OutputNrrd; ///< serialized first output (may be empty)

  // -- Flight recorder (docs/REPLAY.md) ------------------------------------
  /// The submitted Diderot source, retained only under --record-on-failure:
  /// whether a job needs a bundle is known after it ends, so the recorder's
  /// raw material must survive until then.
  std::string Source;
  /// Bundle directory once a failure bundle was recorded (GET
  /// /jobs/<id>/bundle); empty otherwise.
  std::string BundleDir;

  // -- Tracing (docs/TRACING.md) -------------------------------------------
  tracing::TraceContext Ctx; ///< root context; Ctx.Span = root span id
  tracing::SpanTree Tree;    ///< coarse spans always; supersteps if sampled
  uint64_t AcceptNs = 0;     ///< handler entry (steadyClock domain)
  uint64_t EnqueueNs = 0;    ///< just before Sched.submit
  uint64_t QueueWaitNs = 0, CompileNs = 0, RunNs = 0; ///< slow-log breakdown
};

} // namespace

struct Daemon::Impl {
  DaemonOptions Opts;
  std::unique_ptr<ProgramRegistry> Registry;
  /// Per-program compile circuit breaker (constructed at start(), when the
  /// thresholds are known). Declared before the job table: JobRec holds a
  /// breaker token, so Jobs must be destroyed while the breaker is alive.
  std::unique_ptr<CompileBreaker> Breaker;
  FairScheduler Sched;
  http::Server Http;

  std::mutex JobsMu;
  std::map<std::string, std::shared_ptr<JobRec>> Jobs;
  std::deque<std::string> Finished; // pruning order (oldest first)
  uint64_t NextJobId = 1;

  std::atomic<uint64_t> JobsDone{0}, JobsFailed{0}, JobsRejected{0};
  std::atomic<uint64_t> HttpRequests{0};
  std::atomic<uint64_t> DeadlineExpired{0};
  std::atomic<uint64_t> RecordingsTotal{0}, RecordingsEvicted{0};
  std::atomic<uint64_t> ReplayDivergence{0};
  /// Serializes recordings-directory scans and evictions (bundle writes
  /// themselves are atomic-per-file and land in per-job directories, so
  /// only the LRU bookkeeping needs the lock).
  std::mutex RecMu;
  LatencyHisto CompileHisto, RunHisto;

  /// Draining: POSTs are refused with 503 + Retry-After while queued and
  /// running jobs finish; GETs keep working so pollers can collect results.
  std::atomic<bool> Draining{false};

  tracing::HeadSampler Sampler;
  std::unique_ptr<tracing::TraceRing> Ring;
  uint64_t StartNs = 0; ///< steadyClock at start(), for /healthz uptime

  http::Response handle(const http::Request &Req);
  http::Response handleCompile(const http::Request &Req);
  http::Response handleRun(const http::Request &Req);
  /// 429/503 with the shed-contract headers: Retry-After (whole seconds,
  /// rounded up, at least 1) and X-Diderot-Queue-Depth, so clients can
  /// back off intelligently instead of hammering a saturated daemon.
  http::Response shedResponse(int Code, const std::string &Body,
                              int64_t RetryAfterMs);
  http::Response handleJob(const std::string &Id, bool WantOutput,
                           bool WantTrace, bool WantBundle);
  http::Response handleHealthz();
  http::Response metricsText();
  http::Response handleRecordings();
  http::Response handleRecording(const std::string &Id, bool Replay);
  void runJob(const std::shared_ptr<JobRec> &Job,
              std::shared_ptr<const CompiledProgram> Prog,
              std::vector<std::pair<std::string, std::string>> Inputs,
              rt::RunConfig RC, std::string OutputName);
  void cancelQueuedJob(const std::shared_ptr<JobRec> &Job);
  void finishJob(const std::shared_ptr<JobRec> &Job);
  void sealTrace(const std::shared_ptr<JobRec> &Job, uint64_t EndNs);
  /// Persist a failure bundle for \p Job under the recordings directory.
  /// \p P and \p Stats are null for jobs that never ran (then \p TrapLabel
  /// becomes the recorded outcome). Best-effort: a recording failure is
  /// logged, never propagated into the job's own verdict.
  void recordFailureBundle(
      const std::shared_ptr<JobRec> &Job, const CompiledProgram &Prog,
      const std::vector<std::pair<std::string, std::string>> &Inputs,
      const rt::RunConfig &RC, rt::ProgramInstance *P,
      const rt::RunStats *Stats, const char *TrapLabel);
  /// LRU-bound the recordings directory to RecordingsMaxBytes, evicting
  /// oldest-written bundles first — the same policy the .so cache applies
  /// (codegen/native_load.cpp). The newest bundle is never evicted.
  void enforceRecordingsCap();
};

namespace {

http::Response textResponse(int Code, const std::string &Body) {
  return {Code, "text/plain; charset=utf-8", Body, {}};
}

http::Response jsonResponse(int Code, const std::string &Body) {
  return {Code, "application/json", Body, {}};
}

/// Join an incoming W3C traceparent (child context, keeping the caller's
/// trace id) or mint a fresh root. The sampling decision is made here, at
/// the head of the request: an incoming sampled flag wins, otherwise the
/// daemon's own 1-in-N sampler decides.
tracing::TraceContext mintContext(const http::Request &Req,
                                  tracing::HeadSampler &Sampler) {
  tracing::IdSource &Ids = tracing::defaultIdSource();
  tracing::TraceContext Parent;
  if (tracing::parseTraceparent(Req.header("traceparent"), Parent)) {
    tracing::TraceContext C = tracing::makeChild(Parent, Ids);
    C.Sampled = Parent.Sampled || Sampler.sample();
    return C;
  }
  return tracing::makeRoot(Ids, Sampler.sample());
}

/// Echo the request's trace id so callers can correlate without parsing
/// the body — on every response, including 4xx.
http::Response withTrace(http::Response R, const std::string &TraceHex) {
  R.ExtraHeaders.emplace_back("X-Diderot-Trace", TraceHex);
  return R;
}

std::string jobJson(const JobRec &J) {
  std::ostringstream S;
  S << "{\"job\":\"" << observe::jsonEscape(J.Id) << "\""
    << ",\"state\":\"" << jobStateName(J.State) << "\""
    << ",\"program\":\"" << observe::jsonEscape(J.Program) << "\""
    << ",\"key\":\"" << J.Key << "\""
    << ",\"trace\":\"" << tracing::hexTraceId(J.Ctx.Trace) << "\"";
  if (J.State == JobState::Done) {
    S << ",\"outcome\":\"" << J.Outcome << "\""
      << ",\"steps\":" << J.Steps << ",\"wallMs\":" << (J.WallNs / 1e6)
      << ",\"strands\":" << J.Strands << ",\"stable\":" << J.Stable
      << ",\"dead\":" << J.Dead << ",\"faulted\":" << J.Faulted
      << ",\"outputBytes\":" << J.OutputNrrd.size();
  }
  if (!J.Error.empty())
    S << ",\"error\":\"" << observe::jsonEscape(J.Error) << "\"";
  if (!J.BundleDir.empty())
    S << ",\"bundle\":true";
  S << "}\n";
  return S.str();
}

} // namespace

http::Response Daemon::Impl::shedResponse(int Code, const std::string &Body,
                                          int64_t RetryAfterMs) {
  http::Response R = textResponse(Code, Body);
  int64_t Secs = (RetryAfterMs + 999) / 1000;
  R.ExtraHeaders.emplace_back("Retry-After", strf(Secs > 0 ? Secs : 1));
  R.ExtraHeaders.emplace_back("X-Diderot-Queue-Depth", strf(Sched.depth()));
  return R;
}

http::Response Daemon::Impl::handle(const http::Request &Req) {
  HttpRequests.fetch_add(1, std::memory_order_relaxed);
  // Retry-After for drain shedding: when the drain window closes the
  // process exits, so pointing clients at exactly DrainMs invites a retry
  // against a dead socket. Pad with enough slack for a restart (or for a
  // load balancer to have moved on).
  const int64_t DrainRetryMs = Opts.DrainMs + 5000;
  if (Req.Path == "/compile") {
    if (Req.Method != "POST")
      return textResponse(405, "POST only\n");
    if (Draining.load(std::memory_order_relaxed))
      return shedResponse(503, "draining: not accepting new work\n",
                          DrainRetryMs);
    return handleCompile(Req);
  }
  if (Req.Path == "/run") {
    if (Req.Method != "POST")
      return textResponse(405, "POST only\n");
    if (Draining.load(std::memory_order_relaxed))
      return shedResponse(503, "draining: not accepting new work\n",
                          DrainRetryMs);
    return handleRun(Req);
  }
  if (startsWith(Req.Path, "/jobs/")) {
    if (Req.Method != "GET")
      return textResponse(405, "GET only\n");
    std::string Rest = Req.Path.substr(6);
    bool WantOutput = false, WantTrace = false, WantBundle = false;
    size_t Slash = Rest.find('/');
    if (Slash != std::string::npos) {
      std::string Sub = Rest.substr(Slash);
      if (Sub == "/output")
        WantOutput = true;
      else if (Sub == "/trace")
        WantTrace = true;
      else if (Sub == "/bundle")
        WantBundle = true;
      else
        return textResponse(404, "not found\n");
      Rest = Rest.substr(0, Slash);
    }
    return handleJob(Rest, WantOutput, WantTrace, WantBundle);
  }
  if (Req.Path == "/recordings") {
    if (Req.Method != "GET")
      return textResponse(405, "GET only\n");
    return handleRecordings();
  }
  if (startsWith(Req.Path, "/recordings/")) {
    if (Req.Method != "GET")
      return textResponse(405, "GET only\n");
    std::string Rest = Req.Path.substr(12);
    bool Replay = false;
    if (endsWith(Rest, "/replay")) {
      Replay = true;
      Rest = Rest.substr(0, Rest.size() - 7);
    }
    return handleRecording(Rest, Replay);
  }
  if (Req.Path == "/trace" && Req.Method == "GET")
    return jsonResponse(200, observe::mergedChromeTrace(Ring->snapshot()));
  if (Req.Path == "/healthz" && Req.Method == "GET")
    return handleHealthz();
  if (Req.Path == "/metrics" && Req.Method == "GET")
    return metricsText();
  return textResponse(404, "not found\n");
}

http::Response Daemon::Impl::handleCompile(const http::Request &Req) {
  tracing::TraceContext Ctx = mintContext(Req, Sampler);
  std::string TraceHex = tracing::hexTraceId(Ctx.Trace);
  if (Req.Body.empty())
    return withTrace(textResponse(400, "empty program body\n"), TraceHex);
  std::string Name = Req.header("x-diderot-program");
  if (Name.empty())
    Name = "program";
  // Breaker admission happens before any compile work, on the same
  // content key the registry uses — a denial costs a hash, not a slot.
  std::string BKey =
      codegen::programCacheKey(Req.Body, Registry->options()).hex();
  if (CompileBreaker::Decision D = Breaker->admit(BKey); !D.Allow) {
    lg::Logger::global().logEvery(
        "breaker-deny", 2, lg::Level::Warn, "compile denied: breaker open",
        {lg::strField("key", BKey), lg::strField("trace", TraceHex)});
    return withTrace(
        shedResponse(503,
                     strf("compile breaker ", CompileBreaker::stateName(D.St),
                          " for this program\n"),
                     D.RetryAfterMs),
        TraceHex);
  }
  // The admission above must be balanced by exactly one outcome; the
  // token's destructor abandons the half-open probe slot on any exit path
  // that returns before a compile verdict exists.
  CompileBreaker::Token BTok(*Breaker, BKey);
  tracing::Clock &Clk = tracing::steadyClock();
  uint64_t T0 = Clk.nowNs();
  Result<ProgramRegistry::Lookup> L = Registry->getOrCompile(Req.Body, Name);
  if (!L.isOk()) {
    BTok.failure();
    lg::warn("compile failed", {lg::strField("program", Name),
                                lg::strField("trace", TraceHex),
                                lg::strField("error", L.message())});
    return withTrace(textResponse(400, L.message() + "\n"), TraceHex);
  }
  {
    // Warm the expensive artifact now: instantiating a native program
    // emits the C++ and builds (or disk-hits) the shared object, so the
    // first POST /run finds everything hot. Run it even on a registry hit
    // — for a healthy warm program it is a memory-cache lookup, and it is
    // what notices a program whose earlier .so build failed (or whose
    // artifact has since been corrupted): a hit must not mask that.
    Result<std::unique_ptr<rt::ProgramInstance>> Inst = L->Prog->instantiate();
    if (!Inst.isOk()) {
      BTok.failure();
      return withTrace(textResponse(400, Inst.message() + "\n"), TraceHex);
    }
  }
  BTok.success();
  uint64_t Ns = Clk.nowNs() - T0;
  if (!L->Cached)
    CompileHisto.record(Ns, TraceHex);
  lg::info("compile", {lg::strField("program", Name),
                       lg::strField("key", L->Key),
                       lg::boolField("cached", L->Cached),
                       lg::numField("ms", Ns / 1e6),
                       lg::strField("trace", TraceHex)});
  std::ostringstream S;
  S << "{\"key\":\"" << L->Key << "\",\"program\":\""
    << observe::jsonEscape(Name) << "\",\"cached\":"
    << (L->Cached ? "true" : "false") << ",\"compileMs\":" << (Ns / 1e6)
    << ",\"trace\":\"" << TraceHex << "\"}\n";
  return withTrace(jsonResponse(200, S.str()), TraceHex);
}

http::Response Daemon::Impl::handleRun(const http::Request &Req) {
  tracing::Clock &Clk = tracing::steadyClock();
  tracing::IdSource &Ids = tracing::defaultIdSource();
  uint64_t AcceptNs = Clk.nowNs();
  tracing::TraceContext Ctx = mintContext(Req, Sampler);
  std::string TraceHex = tracing::hexTraceId(Ctx.Trace);

  if (Req.Body.empty())
    return withTrace(textResponse(400, "empty program body\n"), TraceHex);
  std::string Name = Req.header("x-diderot-program");
  if (Name.empty())
    Name = "program";
  // Breaker admission before the front end runs and before a queue slot is
  // taken: a program whose compiles keep failing (or timing out under the
  // supervised runner) fails fast here with 503 + Retry-After.
  std::string BKey =
      codegen::programCacheKey(Req.Body, Registry->options()).hex();
  if (CompileBreaker::Decision D = Breaker->admit(BKey); !D.Allow) {
    lg::Logger::global().logEvery(
        "breaker-deny", 2, lg::Level::Warn, "run denied: breaker open",
        {lg::strField("key", BKey), lg::strField("trace", TraceHex)});
    return withTrace(
        shedResponse(503,
                     strf("compile breaker ", CompileBreaker::stateName(D.St),
                          " for this program\n"),
                     D.RetryAfterMs),
        TraceHex);
  }
  // Every return below must resolve this admission. Compile verdicts call
  // failure()/success(); the 400s for malformed inputs/limit headers and
  // the 429 queue-full shed return with the token still armed, and its
  // destructor releases the half-open probe slot — without this, a probe
  // that exited early would jam the breaker shut for the key forever.
  CompileBreaker::Token BTok(*Breaker, BKey);
  uint64_t CompileBeginNs = Clk.nowNs();
  Result<ProgramRegistry::Lookup> L = Registry->getOrCompile(Req.Body, Name);
  uint64_t CompileEndNs = Clk.nowNs();
  if (!L.isOk()) {
    BTok.failure();
    lg::warn("run rejected: compile failed",
             {lg::strField("program", Name), lg::strField("trace", TraceHex),
              lg::strField("error", L.message())});
    return withTrace(textResponse(400, L.message() + "\n"), TraceHex);
  }
  if (L->CompileNs)
    CompileHisto.record(L->CompileNs, TraceHex);

  // Inputs arrive as repeated X-Diderot-Input: NAME=VALUE headers; they are
  // validated on the worker, where the instance (and so the declared input
  // types) exists.
  std::vector<std::pair<std::string, std::string>> Inputs;
  for (const std::string &KV : Req.headerValues("x-diderot-input")) {
    size_t Eq = KV.find('=');
    if (Eq == std::string::npos)
      return withTrace(textResponse(400, "X-Diderot-Input needs NAME=VALUE\n"),
                       TraceHex);
    Inputs.emplace_back(KV.substr(0, Eq), KV.substr(Eq + 1));
  }
  rt::RunConfig RC;
  RC.MaxSupersteps = Opts.MaxSupersteps;
  RC.NumWorkers = Opts.RunWorkers;
  RC.Sched = Opts.RunScheduler;
  RC.Policy.DeadlineNs = Opts.DefaultDeadlineNs;
  // Run-limit headers are validated here, at the head of the request:
  // these used to go through bare atoi/atoll, where "forever" became 0
  // steps, negatives slipped into the RunPolicy, and overflow was UB.
  // Malformed values are a 400 naming the offending header, not a silent
  // zero.
  auto BadHeader = [&](const char *Header) {
    return withTrace(textResponse(400, strf("malformed ", Header,
                                            " header\n")),
                     TraceHex);
  };
  if (std::string V = Req.header("x-diderot-steps"); !V.empty()) {
    if (!parseInt(V, RC.MaxSupersteps) || RC.MaxSupersteps < 0)
      return BadHeader("X-Diderot-Steps");
  }
  if (std::string V = Req.header("x-diderot-run-workers"); !V.empty()) {
    if (!parseInt(V, RC.NumWorkers) || RC.NumWorkers < 0)
      return BadHeader("X-Diderot-Run-Workers");
  }
  if (std::string V = Req.header("x-diderot-deadline-ms"); !V.empty()) {
    int64_t Ms = 0;
    if (!parseInt64(V, Ms) || Ms < 0 || Ms > INT64_MAX / 1000000)
      return BadHeader("X-Diderot-Deadline-Ms");
    RC.Policy.DeadlineNs = Ms * 1000000;
  }
  if (std::string V = Req.header("x-diderot-scheduler"); !V.empty()) {
    if (!rt::parseSchedulerName(V, RC.Sched))
      return BadHeader("X-Diderot-Scheduler");
  }
  // Deterministic fault injection for chaos drills (tests/daemon_chaos.sh):
  // each X-Diderot-Fault: STRAND@STEP header plants one injected fault at
  // that strand and superstep. The plan rides into the job's failure bundle
  // as recorded input, so a replay re-injects the same faults.
  for (const std::string &FV : Req.headerValues("x-diderot-fault")) {
    size_t At = FV.find('@');
    int64_t Strand = -1;
    int Step = -1;
    if (At == std::string::npos || !parseInt64(FV.substr(0, At), Strand) ||
        !parseInt(FV.substr(At + 1), Step) || Strand < 0 || Step < 0)
      return BadHeader("X-Diderot-Fault");
    RC.Policy.Plan.at(static_cast<uint64_t>(Strand), Step,
                      observe::FaultKind::Injected);
  }
  std::string OutputName = Req.header("x-diderot-output");

  auto Job = std::make_shared<JobRec>();
  Job->Program = Name;
  Job->Key = L->Key;
  if (Opts.RecordOnFailure)
    Job->Source = Req.Body;
  // The breaker outcome now rides with the job: the worker resolves it at
  // instantiate (runJob), and every path that kills the job before then
  // abandons it.
  Job->BreakerTok = std::move(BTok);
  Job->Ctx = Ctx;
  Job->AcceptNs = AcceptNs;
  Job->CompileNs = CompileEndNs - CompileBeginNs;
  Job->Tree.Trace = Ctx.Trace;
  Job->Tree.Sampled = Ctx.Sampled;
  Job->Tree.Program = Name;
  {
    // Root span first (Spans[0] by convention), then the compile-or-cache
    // span; EndNs of the root is sealed when the job finishes.
    tracing::Span Root;
    Root.Id = Ctx.Span;
    Root.Name = "job";
    Root.Cat = "serve";
    Root.BeginNs = AcceptNs;
    Job->Tree.add(std::move(Root));
    tracing::Span CS;
    CS.Id = Ids.nextId();
    CS.Parent = Ctx.Span;
    CS.Name = L->CompileNs ? "compile" : "cache-hit";
    CS.Cat = "serve";
    CS.BeginNs = CompileBeginNs;
    CS.EndNs = CompileEndNs;
    CS.Args.emplace_back("key", L->Key);
    Job->Tree.add(std::move(CS));
  }
  {
    std::lock_guard<std::mutex> G(JobsMu);
    Job->Id = strf("j-", NextJobId++);
    Job->Tree.Job = Job->Id;
    Jobs[Job->Id] = Job;
  }
  Job->EnqueueNs = Clk.nowNs();
  Status S = Sched.submit(
      L->Key,
      [this, Job, Prog = L->Prog, Inputs = std::move(Inputs), RC,
       OutputName]() mutable {
        runJob(Job, std::move(Prog), std::move(Inputs), RC, OutputName);
      },
      // A shutdown that discards this job before it starts must still
      // resolve the record: GET /jobs/<id> polls would otherwise see
      // "queued" forever.
      [this, Job] { cancelQueuedJob(Job); });
  if (!S.isOk()) {
    JobsRejected.fetch_add(1, std::memory_order_relaxed);
    // No compile verdict: queue-full shedding must not count against the
    // program, and must hand back the half-open probe slot if it held it.
    Job->BreakerTok.abandon();
    {
      std::lock_guard<std::mutex> G(JobsMu);
      Jobs.erase(Job->Id);
    }
    // Shedding happens in bursts; keep the log readable under overload.
    lg::Logger::global().logEvery(
        "queue-full", 2, lg::Level::Warn, "job rejected: queue full",
        {lg::strField("program", Name), lg::strField("trace", TraceHex)});
    return withTrace(shedResponse(429, S.message() + "\n",
                                  /*RetryAfterMs=*/1000),
                     TraceHex);
  }
  lg::debug("job accepted",
            {lg::strField("job", Job->Id), lg::strField("program", Name),
             lg::strField("trace", TraceHex),
             lg::boolField("sampled", Ctx.Sampled)});
  http::Response R = jsonResponse(
      202, strf("{\"job\":\"", Job->Id, "\",\"key\":\"", Job->Key,
                "\",\"trace\":\"", TraceHex, "\"}\n"));
  R.ExtraHeaders.emplace_back("X-Diderot-Job", Job->Id);
  return withTrace(std::move(R), TraceHex);
}

void Daemon::Impl::runJob(
    const std::shared_ptr<JobRec> &Job,
    std::shared_ptr<const CompiledProgram> Prog,
    std::vector<std::pair<std::string, std::string>> Inputs, rt::RunConfig RC,
    std::string OutputName) {
  tracing::Clock &Clk = tracing::steadyClock();
  tracing::IdSource &Ids = tracing::defaultIdSource();
  std::string TraceHex = tracing::hexTraceId(Job->Ctx.Trace);

  // Append a finished coarse span to the job's tree (JobsMu guards Tree).
  auto AddSpan = [&](const char *SpanName, uint64_t BeginNs, uint64_t EndNs,
                     uint64_t UseId = 0) {
    tracing::Span S;
    S.Id = UseId ? UseId : Ids.nextId();
    S.Parent = Job->Ctx.Span;
    S.Name = SpanName;
    S.Cat = "serve";
    S.BeginNs = BeginNs;
    S.EndNs = EndNs;
    std::lock_guard<std::mutex> G(JobsMu);
    Job->Tree.add(std::move(S));
  };

  uint64_t DequeueNs = Clk.nowNs();
  Job->QueueWaitNs = DequeueNs - Job->EnqueueNs;
  {
    std::lock_guard<std::mutex> G(JobsMu);
    Job->State = JobState::Running;
  }
  AddSpan("queue-wait", Job->EnqueueNs, DequeueNs);

  auto Fail = [&](const std::string &Msg) {
    uint64_t EndNs = Clk.nowNs();
    // A failure before the instantiate verdict (deadline spent in queue)
    // carries no information about the compiler: release the breaker
    // admission instead of leaking it. No-op once resolved.
    Job->BreakerTok.abandon();
    {
      std::lock_guard<std::mutex> G(JobsMu);
      Job->State = JobState::Failed;
      Job->Error = Msg;
      if (!Job->Tree.Spans.empty())
        Job->Tree.Spans[0].Args.emplace_back("error", Msg);
      JobsFailed.fetch_add(1, std::memory_order_relaxed);
      finishJob(Job);
    }
    sealTrace(Job, EndNs);
    lg::warn("job failed",
             {lg::strField("job", Job->Id),
              lg::strField("program", Job->Program),
              lg::strField("trace", TraceHex), lg::strField("error", Msg)});
  };

  // Deadline-aware admission: a job whose wall-clock deadline was fully
  // consumed by queue wait fails fast here, before paying for instantiate
  // (which for a cold native program is a host compile).
  if (RC.Policy.DeadlineNs > 0 &&
      DequeueNs - Job->AcceptNs >= static_cast<uint64_t>(RC.Policy.DeadlineNs)) {
    DeadlineExpired.fetch_add(1, std::memory_order_relaxed);
    return Fail(strf("DeadlineExceeded: deadline of ",
                     RC.Policy.DeadlineNs / 1000000,
                     " ms elapsed while queued (waited ",
                     (DequeueNs - Job->AcceptNs) / 1000000, " ms)"));
  }

  uint64_t InstBeginNs = Clk.nowNs();
  Result<std::unique_ptr<rt::ProgramInstance>> Inst = Prog->instantiate();
  uint64_t InstEndNs = Clk.nowNs();
  AddSpan("instantiate", InstBeginNs, InstEndNs);
  if (!Inst.isOk()) {
    // Instantiate is where a native program meets the host compiler; its
    // failure (including a supervised-compile timeout) feeds the breaker.
    Job->BreakerTok.failure();
    if (Opts.RecordOnFailure) {
      uint64_t RecBeginNs = Clk.nowNs();
      recordFailureBundle(Job, *Prog, Inputs, RC, nullptr, nullptr,
                          "compile-trapped");
      AddSpan("record", RecBeginNs, Clk.nowNs());
    }
    return Fail(Inst.message());
  }
  Job->BreakerTok.success();
  rt::ProgramInstance &P = **Inst;
  for (const auto &[IName, IValue] : Inputs) {
    Status S = setInputFromText(P, IName, IValue);
    if (!S.isOk())
      return Fail(S.message());
  }
  Status S = P.initialize();
  uint64_t InitEndNs = Clk.nowNs();
  AddSpan("initialize", InstEndNs, InitEndNs);
  if (!S.isOk())
    return Fail(S.message());

  // The run span: sampled jobs arm Recorder stats so the per-superstep /
  // per-worker spans can attach underneath; unsampled jobs keep collection
  // off and pay nothing beyond the two clock reads.
  uint64_t RunSpanId = Ids.nextId();
  if (Job->Ctx.Sampled) {
    RC.CollectStats = true;
    // Pooled runs count steals and parks in the metrics registry; arm it
    // for sampled jobs so the pool span grafted below carries them.
    if (RC.Sched == rt::Scheduler::Pooled)
      RC.CollectMetrics = true;
  }
  // Under --record-on-failure every run captures the per-superstep digest
  // stream (one 128-bit hash per superstep) so a failing job's bundle can
  // carry it; the full per-strand state log stays off, bounding the
  // recorder's memory on large grids.
  if (Opts.RecordOnFailure)
    RC.CollectDigests = true;
  RC.Trace.Trace = Job->Ctx.Trace;
  RC.Trace.Span = RunSpanId;
  RC.Trace.Sampled = Job->Ctx.Sampled;
  uint64_t RunBeginNs = Clk.nowNs();
  Result<rt::RunStats> Run = P.run(RC);
  uint64_t RunEndNs = Clk.nowNs();
  Job->RunNs = RunEndNs - RunBeginNs;
  if (!Run.isOk()) {
    AddSpan("run", RunBeginNs, RunEndNs, RunSpanId);
    if (Opts.RecordOnFailure) {
      uint64_t RecBeginNs = Clk.nowNs();
      recordFailureBundle(Job, *Prog, Inputs, RC, nullptr, nullptr,
                          "run-error");
      AddSpan("record", RecBeginNs, Clk.nowNs());
    }
    return Fail(Run.message());
  }
  {
    tracing::Span RS;
    RS.Id = RunSpanId;
    RS.Parent = Job->Ctx.Span;
    RS.Name = "run";
    RS.Cat = "serve";
    RS.BeginNs = RunBeginNs;
    RS.EndNs = RunEndNs;
    RS.Args.emplace_back("steps", strf(Run->Steps));
    RS.Args.emplace_back("outcome", observe::runOutcomeName(Run->Outcome));
    std::lock_guard<std::mutex> G(JobsMu);
    Job->Tree.add(std::move(RS));
    if (Job->Ctx.Sampled && !Run->Workers.empty())
      observe::appendRunSpans(Job->Tree, RunSpanId, RunBeginNs, *Run, Ids);
    if (Job->Ctx.Sampled && RC.Sched == rt::Scheduler::Pooled)
      observe::appendPoolSpan(Job->Tree, RunSpanId, RunBeginNs, RunEndNs,
                              *Run, Ids);
  }

  // Failure capture (docs/REPLAY.md): a job that ended over-deadline,
  // diverged, over its fault budget, or with faulted strands leaves a
  // self-contained replay bundle behind before its record goes terminal,
  // so GET /jobs/<id>/bundle never races the write.
  if (Opts.RecordOnFailure &&
      (Run->Outcome == observe::RunOutcome::Deadline ||
       Run->Outcome == observe::RunOutcome::Diverged ||
       Run->Outcome == observe::RunOutcome::FaultBudget ||
       P.numFaulted() > 0)) {
    uint64_t RecBeginNs = Clk.nowNs();
    recordFailureBundle(Job, *Prog, Inputs, RC, &P, &*Run, nullptr);
    AddSpan("record", RecBeginNs, Clk.nowNs());
  }

  std::string NrrdBytes;
  if (!P.outputs().empty()) {
    uint64_t OutBeginNs = Clk.nowNs();
    Result<Nrrd> N = outputToNrrd(P, OutputName);
    if (!N.isOk())
      return Fail(N.message());
    Result<std::string> Bytes = nrrdSerialize(*N);
    if (!Bytes.isOk())
      return Fail(Bytes.message());
    NrrdBytes = Bytes.take();
    AddSpan("serialize-output", OutBeginNs, Clk.nowNs());
  }
  RunHisto.record(Run->WallNs, TraceHex);
  uint64_t DoneNs = Clk.nowNs();
  {
    std::lock_guard<std::mutex> G(JobsMu);
    Job->State = JobState::Done;
    Job->Outcome = observe::runOutcomeName(Run->Outcome);
    Job->Steps = Run->Steps;
    Job->WallNs = Run->WallNs;
    Job->Strands = P.numStrands();
    Job->Stable = P.numStable();
    Job->Dead = P.numDead();
    Job->Faulted = P.numFaulted();
    Job->OutputNrrd = std::move(NrrdBytes);
    JobsDone.fetch_add(1, std::memory_order_relaxed);
    finishJob(Job);
  }
  sealTrace(Job, DoneNs);
  lg::info("job done",
           {lg::strField("job", Job->Id),
            lg::strField("program", Job->Program),
            lg::strField("outcome", Job->Outcome),
            lg::numField("steps", static_cast<int64_t>(Job->Steps)),
            lg::numField("wallMs", Job->WallNs / 1e6),
            lg::strField("trace", TraceHex),
            lg::boolField("sampled", Job->Ctx.Sampled)});
}

/// Cancellation path for jobs FairScheduler::stop() discarded while still
/// queued (runs on the thread that called Daemon::stop(), after the job
/// workers joined): mark them failed so pollers get a terminal state.
void Daemon::Impl::cancelQueuedJob(const std::shared_ptr<JobRec> &Job) {
  uint64_t EndNs = tracing::steadyClock().nowNs();
  // The job never reached the compiler; give its breaker admission back
  // (the record outlives this call in the finished-jobs table, so waiting
  // for the destructor would leak the probe slot until pruning).
  Job->BreakerTok.abandon();
  {
    std::lock_guard<std::mutex> G(JobsMu);
    Job->State = JobState::Failed;
    Job->Error = "shut down before start";
    if (!Job->Tree.Spans.empty())
      Job->Tree.Spans[0].Args.emplace_back("error", Job->Error);
    JobsFailed.fetch_add(1, std::memory_order_relaxed);
    finishJob(Job);
  }
  sealTrace(Job, EndNs);
  lg::warn("job cancelled: shut down before start",
           {lg::strField("job", Job->Id),
            lg::strField("program", Job->Program),
            lg::strField("trace", tracing::hexTraceId(Job->Ctx.Trace))});
}

/// Close the root span and decide retention: sampled jobs always enter the
/// /trace ring; jobs slower than SlowJobNs are promoted even when unsampled
/// and logged with the breakdown an operator needs first (where did the
/// time go: queue, compile, or run?).
void Daemon::Impl::sealTrace(const std::shared_ptr<JobRec> &Job,
                             uint64_t EndNs) {
  tracing::SpanTree Copy;
  bool Slow = false;
  {
    std::lock_guard<std::mutex> G(JobsMu);
    if (!Job->Tree.Spans.empty())
      Job->Tree.Spans[0].EndNs = EndNs;
    Slow = Opts.SlowJobNs > 0 &&
           EndNs - Job->AcceptNs > static_cast<uint64_t>(Opts.SlowJobNs);
    if (Job->Ctx.Sampled || Slow)
      Copy = Job->Tree;
  }
  if (!Copy.Spans.empty())
    Ring->add(std::move(Copy));
  if (Slow)
    lg::warn("slow job",
             {lg::strField("job", Job->Id),
              lg::strField("program", Job->Program),
              lg::numField("totalMs", (EndNs - Job->AcceptNs) / 1e6),
              lg::numField("queueWaitMs", Job->QueueWaitNs / 1e6),
              lg::numField("compileMs", Job->CompileNs / 1e6),
              lg::numField("runMs", Job->RunNs / 1e6),
              lg::strField("trace", tracing::hexTraceId(Job->Ctx.Trace))});
}

/// JobsMu held. Record the finish order and prune the oldest finished jobs
/// beyond the retention cap so a long-lived daemon's job table stays
/// bounded.
void Daemon::Impl::finishJob(const std::shared_ptr<JobRec> &Job) {
  Finished.push_back(Job->Id);
  while (Finished.size() > static_cast<size_t>(Opts.MaxFinishedJobs)) {
    Jobs.erase(Finished.front());
    Finished.pop_front();
  }
}

void Daemon::Impl::recordFailureBundle(
    const std::shared_ptr<JobRec> &Job, const CompiledProgram &Prog,
    const std::vector<std::pair<std::string, std::string>> &Inputs,
    const rt::RunConfig &RC, rt::ProgramInstance *P,
    const rt::RunStats *Stats, const char *TrapLabel) {
  std::string Dir = (fs::path(Opts.RecordingsDir) / Job->Id).string();
  FlightRecorder Rec;
  Rec.begin(Dir, Job->Program, Job->Source, Registry->options(),
            Prog.midModule());
  for (const auto &[IName, IValue] : Inputs)
    if (Status S = Rec.addInput(IName, IValue); !S.isOk()) {
      lg::warn("recording dropped: input unreadable",
               {lg::strField("job", Job->Id), lg::strField("input", IName),
                lg::strField("error", S.message())});
      return;
    }
  // armConfig records the configuration into the bundle; it also arms the
  // capture flags on its argument, which is why it gets a copy — the run
  // this bundle describes already happened.
  rt::RunConfig Cfg = RC;
  Rec.armConfig(Cfg);
  Status W = (P && Stats) ? Rec.finish(*P, *Stats)
                          : Rec.finishTrapped(TrapLabel ? TrapLabel : "trap");
  if (!W.isOk()) {
    lg::warn("recording failed",
             {lg::strField("job", Job->Id), lg::strField("dir", Dir),
              lg::strField("error", W.message())});
    return;
  }
  RecordingsTotal.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> G(JobsMu);
    Job->BundleDir = Dir;
  }
  if (Opts.RecordingsMaxBytes > 0)
    enforceRecordingsCap();
  lg::info("failure bundle recorded",
           {lg::strField("job", Job->Id),
            lg::strField("program", Job->Program),
            lg::strField("outcome", Rec.bundle().Outcome),
            lg::strField("dir", Dir),
            lg::strField("trace", tracing::hexTraceId(Job->Ctx.Trace))});
}

void Daemon::Impl::enforceRecordingsCap() {
  std::lock_guard<std::mutex> G(RecMu);
  std::error_code EC;
  struct RecInfo {
    fs::path Path;
    fs::file_time_type MTime;
    uint64_t Bytes = 0;
  };
  std::vector<RecInfo> All;
  uint64_t Total = 0;
  for (const fs::directory_entry &E :
       fs::directory_iterator(Opts.RecordingsDir, EC)) {
    if (!E.is_directory(EC))
      continue;
    RecInfo R;
    R.Path = E.path();
    R.MTime = fs::last_write_time(E.path(), EC);
    for (const fs::directory_entry &F : fs::directory_iterator(E.path(), EC))
      if (F.is_regular_file(EC))
        R.Bytes += F.file_size(EC);
    Total += R.Bytes;
    All.push_back(std::move(R));
  }
  std::sort(All.begin(), All.end(),
            [](const RecInfo &A, const RecInfo &B) { return A.MTime < B.MTime; });
  // Oldest first, and never the newest bundle: the cap must not eat the
  // recording that triggered this sweep.
  for (size_t I = 0; I + 1 < All.size() && Total > Opts.RecordingsMaxBytes;
       ++I) {
    fs::remove_all(All[I].Path, EC);
    if (EC)
      continue;
    Total -= All[I].Bytes;
    RecordingsEvicted.fetch_add(1, std::memory_order_relaxed);
    lg::info("recording evicted",
             {lg::strField("dir", All[I].Path.string()),
              lg::numField("bytes", static_cast<int64_t>(All[I].Bytes))});
  }
}

http::Response Daemon::Impl::handleRecordings() {
  // id -> bytes, only bundles whose manifest landed (the manifest is
  // written last, so its presence marks a complete bundle).
  std::vector<std::pair<std::string, uint64_t>> Recs;
  {
    std::lock_guard<std::mutex> G(RecMu);
    std::error_code EC;
    for (const fs::directory_entry &E :
         fs::directory_iterator(Opts.RecordingsDir, EC)) {
      if (!E.is_directory(EC))
        continue;
      if (!fs::exists(E.path() / observe::bundleManifestFile(), EC))
        continue;
      uint64_t Bytes = 0;
      for (const fs::directory_entry &F : fs::directory_iterator(E.path(), EC))
        if (F.is_regular_file(EC))
          Bytes += F.file_size(EC);
      Recs.emplace_back(E.path().filename().string(), Bytes);
    }
  }
  std::sort(Recs.begin(), Recs.end());
  std::ostringstream S;
  S << "{\"recordings\":[";
  for (size_t I = 0; I < Recs.size(); ++I)
    S << (I ? "," : "") << "{\"id\":\"" << observe::jsonEscape(Recs[I].first)
      << "\",\"bytes\":" << Recs[I].second << "}";
  S << "]}\n";
  return jsonResponse(200, S.str());
}

http::Response Daemon::Impl::handleRecording(const std::string &Id,
                                             bool Replay) {
  // The id becomes a path component; reject anything that could escape the
  // recordings directory.
  if (Id.empty() || Id.find('/') != std::string::npos ||
      Id.find("..") != std::string::npos)
    return textResponse(404, "not found\n");
  std::string Dir = (fs::path(Opts.RecordingsDir) / Id).string();
  std::error_code EC;
  if (!fs::is_directory(Dir, EC) ||
      !fs::exists(fs::path(Dir) / observe::bundleManifestFile(), EC))
    return textResponse(404, "no such recording\n");
  if (!Replay) {
    Result<std::string> Tar = support::tarDirectory(Dir);
    if (!Tar.isOk())
      return textResponse(500, Tar.message() + "\n");
    return {200, "application/x-tar", Tar.take(), {}};
  }
  // Replay verification, in-process: recompile the bundled source under the
  // bundled options (sharing this daemon's .so cache) and re-run it under
  // the bundled configuration. The verdict text is diderotc --replay's.
  Result<ReplayReport> RR = replayBundle(Dir, Opts.Compile.WorkDir);
  if (!RR.isOk())
    return textResponse(500, RR.message() + "\n");
  if (!RR->Match) {
    ReplayDivergence.fetch_add(1, std::memory_order_relaxed);
    lg::warn("replay diverged from recording",
             {lg::strField("recording", Id),
              lg::strField("outcome", RR->ReplayedOutcome)});
  }
  return textResponse(200, RR->Text);
}

http::Response Daemon::Impl::handleJob(const std::string &Id, bool WantOutput,
                                       bool WantTrace, bool WantBundle) {
  if (WantBundle) {
    // Copy what is needed under the lock, then tar outside it — archiving
    // a bundle reads the filesystem and must not stall job transitions.
    std::string BundleDir;
    {
      std::lock_guard<std::mutex> G(JobsMu);
      auto It = Jobs.find(Id);
      if (It == Jobs.end())
        return textResponse(404, "no such job\n");
      const JobRec &J = *It->second;
      if (J.State != JobState::Done && J.State != JobState::Failed)
        return textResponse(409, strf("job is ", jobStateName(J.State), "\n"));
      BundleDir = J.BundleDir;
    }
    if (BundleDir.empty())
      return textResponse(404, "no bundle recorded for this job\n");
    // The recordings cap may have evicted the bundle after the job record
    // was stamped; a missing manifest means gone, not a server error.
    std::error_code EC;
    if (!fs::exists(fs::path(BundleDir) / observe::bundleManifestFile(), EC))
      return textResponse(404, "bundle was evicted by the recordings cap\n");
    Result<std::string> Tar = support::tarDirectory(BundleDir);
    if (!Tar.isOk())
      return textResponse(500, Tar.message() + "\n");
    return {200, "application/x-tar", Tar.take(), {}};
  }
  std::lock_guard<std::mutex> G(JobsMu);
  auto It = Jobs.find(Id);
  if (It == Jobs.end())
    return textResponse(404, "no such job\n");
  const JobRec &J = *It->second;
  if (WantTrace) {
    // The tree is sealed when the job finishes (either way); before that
    // it is still being built on the worker.
    if (J.State != JobState::Done && J.State != JobState::Failed)
      return textResponse(409, strf("job is ", jobStateName(J.State), "\n"));
    return jsonResponse(200, observe::spanTreeChromeTrace(J.Tree));
  }
  if (!WantOutput)
    return jsonResponse(200, jobJson(J));
  if (J.State == JobState::Failed)
    return textResponse(409, "job failed: " + J.Error + "\n");
  if (J.State != JobState::Done)
    return textResponse(409,
                        strf("job is ", jobStateName(J.State), "\n"));
  if (J.OutputNrrd.empty())
    return textResponse(404, "job has no output\n");
  return {200, "application/octet-stream", J.OutputNrrd, {}};
}

/// Liveness + the numbers a wait-for-ready loop or load balancer wants,
/// cheap enough to poll: a 200 here means the HTTP stack, scheduler, and
/// registry are all up.
http::Response Daemon::Impl::handleHealthz() {
  size_t NumFinished, RingSize;
  {
    std::lock_guard<std::mutex> G(JobsMu);
    NumFinished = Finished.size();
  }
  RingSize = Ring->size();
  uint64_t UpNs = tracing::steadyClock().nowNs() - StartNs;
  bool Drain = Draining.load(std::memory_order_relaxed);
  std::ostringstream S;
  S << "{\"status\":\"" << (Drain ? "draining" : "ok") << "\""
    << ",\"draining\":" << (Drain ? "true" : "false")
    << ",\"breakerOpen\":" << Breaker->numOpen()
    << ",\"queueDepth\":" << Sched.depth()
    << ",\"jobsInflight\":" << Sched.inFlight()
    << ",\"jobWorkers\":" << Opts.JobWorkers
    << ",\"programs\":" << Registry->size()
    << ",\"finishedJobs\":" << NumFinished
    << ",\"traceRing\":" << RingSize
    << ",\"traceSampleN\":" << Sampler.rate()
    << ",\"uptimeMs\":" << (UpNs / 1e6) << "}\n";
  return jsonResponse(200, S.str());
}

http::Response Daemon::Impl::metricsText() {
  std::string Out;
  auto Counter = [&](const char *Name, const char *Help, uint64_t V) {
    Out += strf("# HELP ", Name, " ", Help, "\n# TYPE ", Name,
                " counter\n", Name, " ", V, "\n");
  };
  auto Gauge = [&](const char *Name, const char *Help, int64_t V) {
    Out += strf("# HELP ", Name, " ", Help, "\n# TYPE ", Name, " gauge\n",
                Name, " ", V, "\n");
  };
  Counter("diderot_daemon_cache_hits_total",
          "Program registry hits (no front-end work)", Registry->hits());
  Counter("diderot_daemon_cache_misses_total",
          "Program registry misses (front-end compiles)",
          Registry->misses());
  codegen::NativeCacheStats NC = codegen::nativeCacheStats();
  Counter("diderot_daemon_native_mem_hits_total",
          "Native loader in-process .so hits", NC.MemHits);
  Counter("diderot_daemon_native_disk_hits_total",
          "Native loader on-disk .so hits (no host compile)", NC.DiskHits);
  Counter("diderot_daemon_native_host_compiles_total",
          "Host C++ compiler invocations", NC.HostCompiles);
  Counter("diderot_daemon_compile_timeouts_total",
          "Supervised host compiles killed at the wall-clock budget",
          NC.CompileTimeouts);
  Counter("diderot_daemon_cache_quarantined_total",
          "Corrupt cache artifacts moved into quarantine/", NC.Quarantined);
  Counter("diderot_daemon_cache_evictions_total",
          "Cache artifacts evicted by the LRU size cap", NC.Evicted);
  Counter("diderot_daemon_breaker_trips_total",
          "Compile breaker transitions into the open state",
          Breaker->trips());
  Counter("diderot_daemon_breaker_fast_fails_total",
          "Requests denied fast (503) by an open compile breaker",
          Breaker->fastFails());
  Counter("diderot_daemon_deadline_expired_total",
          "Jobs failed before start: deadline consumed by queue wait",
          DeadlineExpired.load(std::memory_order_relaxed));
  Counter("diderot_daemon_recordings_total",
          "Failure replay bundles recorded (docs/REPLAY.md)",
          RecordingsTotal.load(std::memory_order_relaxed));
  Counter("diderot_daemon_recordings_evicted_total",
          "Recorded bundles evicted by the recordings size cap",
          RecordingsEvicted.load(std::memory_order_relaxed));
  Counter("diderot_daemon_replay_divergence_total",
          "Replay verifications that diverged from their recording",
          ReplayDivergence.load(std::memory_order_relaxed));
  Counter("diderot_daemon_http_requests_total", "HTTP requests handled",
          HttpRequests.load(std::memory_order_relaxed));
  Out += strf("# HELP diderot_daemon_jobs_total Jobs by terminal state\n",
              "# TYPE diderot_daemon_jobs_total counter\n");
  Out += strf("diderot_daemon_jobs_total{state=\"done\"} ",
              JobsDone.load(std::memory_order_relaxed), "\n");
  Out += strf("diderot_daemon_jobs_total{state=\"failed\"} ",
              JobsFailed.load(std::memory_order_relaxed), "\n");
  Out += strf("diderot_daemon_jobs_total{state=\"rejected\"} ",
              JobsRejected.load(std::memory_order_relaxed), "\n");
  Gauge("diderot_daemon_queue_depth", "Jobs queued, not yet started",
        Sched.depth());
  Gauge("diderot_daemon_jobs_inflight", "Jobs executing right now",
        Sched.inFlight());
  Gauge("diderot_daemon_programs", "Programs in the registry",
        static_cast<int64_t>(Registry->size()));
  Gauge("diderot_daemon_trace_ring", "Span trees retained for GET /trace",
        static_cast<int64_t>(Ring->size()));
  Gauge("diderot_daemon_draining", "1 while the daemon is draining",
        Draining.load(std::memory_order_relaxed) ? 1 : 0);
  Gauge("diderot_daemon_breaker_open",
        "Programs whose compile breaker is open or half-open",
        Breaker->numOpen());
  // Per-key breaker state (1 open, 2 half-open). Only non-closed keys are
  // tracked, so the label cardinality stays bounded by what is failing.
  Out += strf("# HELP diderot_daemon_compile_breaker_state Compile breaker "
              "state per program key (1=open, 2=half-open)\n",
              "# TYPE diderot_daemon_compile_breaker_state gauge\n");
  for (const auto &[Key, St] : Breaker->tracked())
    if (St != CompileBreaker::State::Closed)
      Out += strf("diderot_daemon_compile_breaker_state{key=\"", Key,
                  "\"} ", St == CompileBreaker::State::Open ? 1 : 2, "\n");
  CompileHisto.prom(Out, "diderot_daemon_compile_seconds",
                    "Cold compile latency (front end + native build)");
  RunHisto.prom(Out, "diderot_daemon_run_seconds", "Job run latency");
  return {200, "text/plain; version=0.0.4; charset=utf-8", Out, {}};
}

Daemon::Daemon() : I(new Impl) {}

Daemon::~Daemon() { stop(); }

Status Daemon::start(DaemonOptions O) {
  if (O.Compile.WorkDir.empty())
    O.Compile.WorkDir = defaultCacheDir();
  if (O.RecordingsDir.empty())
    O.RecordingsDir = (fs::path(O.Compile.WorkDir) / "recordings").string();
  I->Opts = O;
  I->Registry = std::make_unique<ProgramRegistry>(O.Compile);
  CompileBreaker::Options BO;
  BO.FailureThreshold = O.BreakerThreshold;
  BO.OpenMs = O.BreakerOpenMs;
  I->Breaker = std::make_unique<CompileBreaker>(BO);
  I->Draining.store(false, std::memory_order_relaxed);
  I->Sampler.setRate(O.TraceSampleN);
  I->Ring = std::make_unique<tracing::TraceRing>(
      O.TraceRingCapacity > 0 ? static_cast<size_t>(O.TraceRingCapacity) : 1);
  I->StartNs = tracing::steadyClock().nowNs();
  FairScheduler::Options SO;
  SO.Workers = O.JobWorkers;
  SO.Capacity = O.QueueCapacity;
  I->Sched.start(SO);
  http::Server::Options HO;
  HO.HandlerThreads = O.HttpThreads;
  Status S = I->Http.start(
      O.Port, [Impl = I.get()](const http::Request &R) {
        return Impl->handle(R);
      },
      HO);
  if (!S.isOk()) {
    I->Sched.stop();
    return S;
  }
  lg::info("daemon started",
           {lg::numField("port", static_cast<int64_t>(I->Http.port())),
            lg::numField("jobWorkers", static_cast<int64_t>(O.JobWorkers)),
            lg::numField("traceSampleN", static_cast<uint64_t>(O.TraceSampleN)),
            lg::strField("cacheDir", O.Compile.WorkDir)});
  return Status::ok();
}

void Daemon::stop() {
  // HTTP first so no new jobs arrive, then the scheduler (finishes running
  // jobs, discards queued ones).
  I->Http.stop();
  I->Sched.stop();
}

void Daemon::beginDrain() {
  if (I->Draining.exchange(true, std::memory_order_relaxed))
    return;
  lg::info("draining: refusing new work",
           {lg::numField("queueDepth",
                         static_cast<int64_t>(I->Sched.depth())),
            lg::numField("inFlight",
                         static_cast<int64_t>(I->Sched.inFlight()))});
}

bool Daemon::drainAndStop() {
  beginDrain();
  bool Drained = I->Sched.waitIdleFor(I->Opts.DrainMs);
  if (!Drained)
    lg::warn("drain budget exhausted; cancelling remaining queued jobs",
             {lg::numField("drainMs", I->Opts.DrainMs),
              lg::numField("queueDepth",
                           static_cast<int64_t>(I->Sched.depth())),
              lg::numField("inFlight",
                           static_cast<int64_t>(I->Sched.inFlight()))});
  stop();
  return Drained;
}

bool Daemon::draining() const {
  return I->Draining.load(std::memory_order_relaxed);
}

int Daemon::port() const { return I->Http.port(); }

std::string Daemon::cacheDir() const { return I->Opts.Compile.WorkDir; }

std::string Daemon::recordingsDir() const { return I->Opts.RecordingsDir; }

Daemon::Counters Daemon::counters() const {
  Counters C;
  if (I->Registry) {
    C.CacheHits = I->Registry->hits();
    C.CacheMisses = I->Registry->misses();
  }
  C.JobsDone = I->JobsDone.load(std::memory_order_relaxed);
  C.JobsFailed = I->JobsFailed.load(std::memory_order_relaxed);
  C.JobsRejected = I->JobsRejected.load(std::memory_order_relaxed);
  C.DeadlineExpired = I->DeadlineExpired.load(std::memory_order_relaxed);
  C.RecordingsTotal = I->RecordingsTotal.load(std::memory_order_relaxed);
  C.RecordingsEvicted = I->RecordingsEvicted.load(std::memory_order_relaxed);
  C.ReplayDivergence = I->ReplayDivergence.load(std::memory_order_relaxed);
  if (I->Breaker) {
    C.BreakerDenied = I->Breaker->fastFails();
    C.BreakerTrips = I->Breaker->trips();
    C.BreakerOpen = I->Breaker->numOpen();
  }
  C.QueueDepth = I->Sched.depth();
  C.JobsInFlight = I->Sched.inFlight();
  return C;
}

void Daemon::waitIdle() { I->Sched.waitIdle(); }

void Daemon::stampEnvMeta() const {
  Counters C = counters();
  uint64_t Lookups = C.CacheHits + C.CacheMisses;
  double Rate = Lookups ? static_cast<double>(C.CacheHits) /
                              static_cast<double>(Lookups)
                        : 0.0;
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%.4f", Rate);
  ::setenv("DIDEROT_DAEMON_CACHE_HIT_RATE", Buf, 1);
  std::snprintf(Buf, sizeof(Buf), "%d", C.QueueDepth);
  ::setenv("DIDEROT_DAEMON_QUEUE_DEPTH", Buf, 1);
}

} // namespace diderot::serve

//===--- serve/breaker.cpp - per-program compile circuit breaker -------------===//
//
// Part of the Diderot-C++ reproduction (PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "serve/breaker.h"

#include "support/trace.h"

namespace diderot::serve {

CompileBreaker::CompileBreaker() = default;

CompileBreaker::CompileBreaker(Options O) : Opts(std::move(O)) {}

uint64_t CompileBreaker::now() const {
  return Opts.NowNs ? Opts.NowNs() : tracing::steadyClock().nowNs();
}

const char *CompileBreaker::stateName(State S) {
  switch (S) {
  case State::Closed:
    return "closed";
  case State::Open:
    return "open";
  case State::HalfOpen:
    return "half-open";
  }
  return "?";
}

CompileBreaker::Decision CompileBreaker::admit(const std::string &Key) {
  Decision D;
  if (Opts.FailureThreshold <= 0)
    return D;
  std::lock_guard<std::mutex> G(Mu);
  auto It = Keys.find(Key);
  if (It == Keys.end())
    return D; // untracked = Closed
  Rec &R = It->second;
  switch (R.St) {
  case State::Closed:
    return D;
  case State::Open: {
    uint64_t Now = now();
    uint64_t OpenNs = static_cast<uint64_t>(Opts.OpenMs) * 1000000ull;
    if (Now - R.OpenedAtNs >= OpenNs) {
      // Cooldown over: this caller becomes the single half-open probe.
      R.St = State::HalfOpen;
      R.ProbeInFlight = true;
      D.St = State::HalfOpen;
      return D;
    }
    D.Allow = false;
    D.St = State::Open;
    int64_t LeftMs =
        static_cast<int64_t>((OpenNs - (Now - R.OpenedAtNs)) / 1000000ull);
    D.RetryAfterMs = LeftMs > 0 ? LeftMs : 1;
    ++FastFails;
    return D;
  }
  case State::HalfOpen:
    if (!R.ProbeInFlight) {
      // The previous probe vanished without reporting (its worker died on
      // an unrelated error path); let the next caller probe.
      R.ProbeInFlight = true;
      D.St = State::HalfOpen;
      return D;
    }
    D.Allow = false;
    D.St = State::HalfOpen;
    D.RetryAfterMs = Opts.OpenMs > 0 ? Opts.OpenMs : 1;
    ++FastFails;
    return D;
  }
  return D;
}

void CompileBreaker::recordSuccess(const std::string &Key) {
  if (Opts.FailureThreshold <= 0)
    return;
  std::lock_guard<std::mutex> G(Mu);
  Keys.erase(Key); // closed and forgotten — tracking stays bounded
}

void CompileBreaker::recordFailure(const std::string &Key) {
  if (Opts.FailureThreshold <= 0)
    return;
  std::lock_guard<std::mutex> G(Mu);
  Rec &R = Keys[Key];
  switch (R.St) {
  case State::HalfOpen:
    // The probe failed: back to Open, restart the cooldown.
    R.St = State::Open;
    R.OpenedAtNs = now();
    R.ProbeInFlight = false;
    R.Consecutive = 0;
    ++Trips;
    break;
  case State::Closed:
    if (++R.Consecutive >= Opts.FailureThreshold) {
      R.St = State::Open;
      R.OpenedAtNs = now();
      R.Consecutive = 0;
      ++Trips;
    }
    break;
  case State::Open:
    // A failure from a request admitted before the trip; already open.
    break;
  }
}

CompileBreaker::State CompileBreaker::state(const std::string &Key) const {
  std::lock_guard<std::mutex> G(Mu);
  auto It = Keys.find(Key);
  return It == Keys.end() ? State::Closed : It->second.St;
}

std::vector<std::pair<std::string, CompileBreaker::State>>
CompileBreaker::tracked() const {
  std::lock_guard<std::mutex> G(Mu);
  std::vector<std::pair<std::string, State>> Out;
  for (const auto &[Key, R] : Keys)
    Out.emplace_back(Key, R.St);
  return Out;
}

int CompileBreaker::numOpen() const {
  std::lock_guard<std::mutex> G(Mu);
  int N = 0;
  for (const auto &[Key, R] : Keys)
    if (R.St != State::Closed)
      ++N;
  return N;
}

uint64_t CompileBreaker::trips() const {
  std::lock_guard<std::mutex> G(Mu);
  return Trips;
}

uint64_t CompileBreaker::fastFails() const {
  std::lock_guard<std::mutex> G(Mu);
  return FastFails;
}

} // namespace diderot::serve

//===--- serve/breaker.cpp - per-program compile circuit breaker -------------===//
//
// Part of the Diderot-C++ reproduction (PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "serve/breaker.h"

#include "support/trace.h"

namespace diderot::serve {

CompileBreaker::CompileBreaker() = default;

CompileBreaker::CompileBreaker(Options O) : Opts(std::move(O)) {}

uint64_t CompileBreaker::now() const {
  return Opts.NowNs ? Opts.NowNs() : tracing::steadyClock().nowNs();
}

const char *CompileBreaker::stateName(State S) {
  switch (S) {
  case State::Closed:
    return "closed";
  case State::Open:
    return "open";
  case State::HalfOpen:
    return "half-open";
  }
  return "?";
}

CompileBreaker::Decision CompileBreaker::admit(const std::string &Key) {
  Decision D;
  if (Opts.FailureThreshold <= 0)
    return D;
  std::lock_guard<std::mutex> G(Mu);
  auto It = Keys.find(Key);
  if (It == Keys.end())
    return D; // untracked = Closed
  Rec &R = It->second;
  switch (R.St) {
  case State::Closed:
    return D;
  case State::Open: {
    uint64_t Now = now();
    uint64_t OpenNs = static_cast<uint64_t>(Opts.OpenMs) * 1000000ull;
    if (Now - R.OpenedAtNs >= OpenNs) {
      // Cooldown over: this caller becomes the single half-open probe.
      R.St = State::HalfOpen;
      R.ProbeInFlight = true;
      R.ProbeAtNs = Now;
      D.St = State::HalfOpen;
      return D;
    }
    D.Allow = false;
    D.St = State::Open;
    int64_t LeftMs =
        static_cast<int64_t>((OpenNs - (Now - R.OpenedAtNs)) / 1000000ull);
    D.RetryAfterMs = LeftMs > 0 ? LeftMs : 1;
    ++FastFails;
    return D;
  }
  case State::HalfOpen: {
    uint64_t Now = now();
    uint64_t OpenNs = static_cast<uint64_t>(Opts.OpenMs) * 1000000ull;
    if (!R.ProbeInFlight ||
        (R.ProbeInFlight && Now - R.ProbeAtNs >= OpenNs)) {
      // No probe in flight (the previous one abandoned its slot via
      // abandonProbe), or the in-flight probe is older than a full
      // cooldown — its holder is gone without reporting. Either way this
      // caller takes over as the probe.
      R.ProbeInFlight = true;
      R.ProbeAtNs = Now;
      D.St = State::HalfOpen;
      return D;
    }
    D.Allow = false;
    D.St = State::HalfOpen;
    D.RetryAfterMs = Opts.OpenMs > 0 ? Opts.OpenMs : 1;
    ++FastFails;
    return D;
  }
  }
  return D;
}

void CompileBreaker::recordSuccess(const std::string &Key) {
  if (Opts.FailureThreshold <= 0)
    return;
  std::lock_guard<std::mutex> G(Mu);
  Keys.erase(Key); // closed and forgotten — tracking stays bounded
}

/// Mu held. The map is at the cap and a new key wants in: first drop
/// Closed entries whose last failure is at least OpenMs old (their streak
/// is stale anyway), then the coldest remaining Closed entry. Open and
/// half-open entries are never evicted — they are the safety state the
/// breaker exists for, and each one cost FailureThreshold failures to
/// create, so they bound themselves at MaxTracked.
bool CompileBreaker::evictForInsert(uint64_t Now) {
  uint64_t OpenNs = static_cast<uint64_t>(Opts.OpenMs) * 1000000ull;
  size_t Cap = static_cast<size_t>(Opts.MaxTracked);
  for (auto It = Keys.begin(); It != Keys.end() && Keys.size() >= Cap;)
    if (It->second.St == State::Closed && Now - It->second.LastFailNs >= OpenNs)
      It = Keys.erase(It);
    else
      ++It;
  if (Keys.size() < Cap)
    return true;
  auto Coldest = Keys.end();
  for (auto It = Keys.begin(); It != Keys.end(); ++It)
    if (It->second.St == State::Closed &&
        (Coldest == Keys.end() ||
         It->second.LastFailNs < Coldest->second.LastFailNs))
      Coldest = It;
  if (Coldest == Keys.end())
    return false;
  Keys.erase(Coldest);
  return true;
}

void CompileBreaker::recordFailure(const std::string &Key) {
  if (Opts.FailureThreshold <= 0)
    return;
  std::lock_guard<std::mutex> G(Mu);
  uint64_t Now = now();
  auto It = Keys.find(Key);
  if (It == Keys.end()) {
    // New key: keep the map at the cap. If every slot holds an open
    // breaker (nothing evictable), skip tracking this one failure rather
    // than grow without bound — the next failure retries the insert.
    if (Opts.MaxTracked > 0 &&
        Keys.size() >= static_cast<size_t>(Opts.MaxTracked) &&
        !evictForInsert(Now))
      return;
    It = Keys.emplace(Key, Rec{}).first;
  }
  Rec &R = It->second;
  R.LastFailNs = Now;
  switch (R.St) {
  case State::HalfOpen:
    // The probe failed: back to Open, restart the cooldown.
    R.St = State::Open;
    R.OpenedAtNs = Now;
    R.ProbeInFlight = false;
    R.Consecutive = 0;
    ++Trips;
    break;
  case State::Closed:
    if (++R.Consecutive >= Opts.FailureThreshold) {
      R.St = State::Open;
      R.OpenedAtNs = Now;
      R.Consecutive = 0;
      ++Trips;
    }
    break;
  case State::Open:
    // A failure from a request admitted before the trip; already open.
    break;
  }
}

void CompileBreaker::abandonProbe(const std::string &Key) {
  if (Opts.FailureThreshold <= 0)
    return;
  std::lock_guard<std::mutex> G(Mu);
  auto It = Keys.find(Key);
  if (It == Keys.end())
    return;
  Rec &R = It->second;
  // Only a half-open probe holds state worth releasing; a Closed or Open
  // entry saw no verdict, so there is nothing to unwind.
  if (R.St == State::HalfOpen)
    R.ProbeInFlight = false;
}

CompileBreaker::State CompileBreaker::state(const std::string &Key) const {
  std::lock_guard<std::mutex> G(Mu);
  auto It = Keys.find(Key);
  return It == Keys.end() ? State::Closed : It->second.St;
}

std::vector<std::pair<std::string, CompileBreaker::State>>
CompileBreaker::tracked() const {
  std::lock_guard<std::mutex> G(Mu);
  std::vector<std::pair<std::string, State>> Out;
  for (const auto &[Key, R] : Keys)
    Out.emplace_back(Key, R.St);
  return Out;
}

int CompileBreaker::numOpen() const {
  std::lock_guard<std::mutex> G(Mu);
  int N = 0;
  for (const auto &[Key, R] : Keys)
    if (R.St != State::Closed)
      ++N;
  return N;
}

size_t CompileBreaker::numTracked() const {
  std::lock_guard<std::mutex> G(Mu);
  return Keys.size();
}

uint64_t CompileBreaker::trips() const {
  std::lock_guard<std::mutex> G(Mu);
  return Trips;
}

uint64_t CompileBreaker::fastFails() const {
  std::lock_guard<std::mutex> G(Mu);
  return FastFails;
}

} // namespace diderot::serve

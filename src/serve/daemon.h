//===--- serve/daemon.h - the diderotd compile-and-run service ---------------===//
//
// Part of the Diderot-C++ reproduction (PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The library behind the diderotd binary: an HTTP service that compiles
/// Diderot programs once and serves many runs of them, amortizing the
/// paper's expensive step — emitting C++ and invoking the host compiler —
/// across requests and (via the on-disk .so cache) across restarts.
///
/// API (full request/response details and curl examples in docs/SERVING.md):
///
///   POST /compile            body = Diderot source; compiles and, for the
///                            native engine, builds the .so now, so the
///                            first /run is already warm. JSON reply with
///                            the program key and whether it was cached.
///   POST /run                body = Diderot source; inputs and run limits
///                            ride in X-Diderot-* headers. Asynchronous:
///                            replies 202 with a job id (X-Diderot-Job
///                            header and JSON body), or 429 when the queue
///                            is full.
///   GET  /jobs/<id>          job state as JSON (queued/running/done/failed).
///   GET  /jobs/<id>/output   the finished job's first output as NRRD bytes
///                            (409 until the job is done).
///   GET  /jobs/<id>/trace    the job's span tree as Chrome-trace JSON
///                            (409 until the job finished; see
///                            docs/TRACING.md).
///   GET  /jobs/<id>/bundle   the job's replay bundle as a ustar stream
///                            (recorded when --record-on-failure is set and
///                            the job ended faulted / over-deadline /
///                            compile-trapped; 404 when none was recorded;
///                            see docs/REPLAY.md).
///   GET  /trace              recently sampled/slow jobs merged into one
///                            Chrome-trace timeline.
///   GET  /recordings         failure bundles on disk as JSON (id, bytes).
///   GET  /recordings/<id>    one recorded bundle as a ustar stream, even
///                            after its job record was pruned.
///   GET  /recordings/<id>/replay  re-run the recording in-process and
///                            report the comparison (diderotc --replay's
///                            verdict text); divergences bump the
///                            replay_divergence_total metric.
///   GET  /healthz            liveness + queue/cache gauges as JSON; 200
///                            as soon as the daemon accepts requests.
///   GET  /metrics            daemon counters in Prometheus text format;
///                            the latency histograms carry the trace id of
///                            the slowest sample per bucket as an
///                            OpenMetrics-style exemplar.
///
/// One Daemon owns: a ProgramRegistry (compile_cache.h), a FairScheduler
/// (job_queue.h) whose workers run jobs round-robin across programs, a job
/// table with bounded retention of finished jobs, and an http::Server.
///
/// Tracing: every request gets a TraceContext (support/trace.h) — joined
/// from an incoming W3C `traceparent` header or freshly minted — echoed
/// back as X-Diderot-Trace. Every job records its coarse spans (queue-wait,
/// compile-or-cache-hit, instantiate, initialize, run); 1-in-TraceSampleN
/// jobs additionally arm per-superstep Recorder collection and land in the
/// /trace ring. Jobs slower than SlowJobNs are promoted into the ring and
/// logged with a breakdown even when unsampled.
///
//===----------------------------------------------------------------------===//

#ifndef DIDEROT_SERVE_DAEMON_H
#define DIDEROT_SERVE_DAEMON_H

#include <cstdint>
#include <memory>
#include <string>

#include "driver/driver.h"
#include "support/result.h"

namespace diderot::serve {

struct DaemonOptions {
  int Port = 0;          ///< 0 = pick an ephemeral port (see Daemon::port())
  int HttpThreads = 4;   ///< HTTP connection handler threads
  int JobWorkers = 2;    ///< job-queue worker threads
  int QueueCapacity = 64;
  int RunWorkers = 1;        ///< strand workers per job run
  /// Default parallel scheduler for job runs (bsp or pooled); requests
  /// override per job with X-Diderot-Scheduler. Pooled reuses the parked
  /// StrandPool threads across runs instead of re-spawning a thread set
  /// per /run job (docs/SCHEDULING.md).
  rt::Scheduler RunScheduler = rt::Scheduler::Bsp;
  int MaxSupersteps = 10000; ///< per-job superstep cap
  /// Deadline applied to jobs that do not send X-Diderot-Deadline-Ms
  /// (0 = none). Folds into the job's RunPolicy.
  int64_t DefaultDeadlineNs = 0;
  /// Finished (done/failed) jobs retained for polling; the oldest are
  /// pruned beyond this.
  int MaxFinishedJobs = 256;
  /// Head-sampling denominator for detailed tracing: 1-in-N jobs arm
  /// per-superstep Recorder collection and are retained in the /trace
  /// ring. 0 = never, 1 = every job. Coarse spans (queue-wait, compile,
  /// instantiate, initialize, run) are recorded for every job regardless —
  /// they cost a handful of monotonic clock reads.
  uint32_t TraceSampleN = 16;
  /// Recently finished span trees retained for GET /trace.
  int TraceRingCapacity = 64;
  /// Jobs slower than this end-to-end (accept to finish) are promoted into
  /// the trace ring and logged with a queue/compile/run breakdown even when
  /// unsampled (0 = disabled).
  int64_t SlowJobNs = 1000000000;
  /// Compile circuit breaker (serve/breaker.h): consecutive compile
  /// failures per program before requests for it fail fast with 503 +
  /// Retry-After (0 = breaker disabled), and the cooldown before a
  /// half-open probe is admitted.
  int BreakerThreshold = 3;
  int64_t BreakerOpenMs = 10000;
  /// Graceful-drain budget for drainAndStop() (the diderotd SIGTERM path):
  /// how long queued + running jobs get to finish before the hard stop
  /// cancels what is left.
  int64_t DrainMs = 5000;
  /// Flight recorder (docs/REPLAY.md): persist a replay bundle for every
  /// job that ends faulted, over-deadline, diverged, over the fault budget,
  /// or compile-trapped. Costs one digest hash per strand per superstep on
  /// every job while armed (digest stream only — the full per-strand state
  /// log stays off, so memory is bounded at 16 bytes per superstep).
  bool RecordOnFailure = false;
  /// Where failure bundles land, one directory per job id; empty =
  /// <cache-dir>/recordings.
  std::string RecordingsDir;
  /// Cap the recordings directory; least-recently-written bundles are
  /// evicted after each new recording (0 = no cap).
  uint64_t RecordingsMaxBytes = 0;
  /// Options every program is compiled under. WorkDir doubles as the .so
  /// cache directory; empty = serve::defaultCacheDir().
  CompileOptions Compile;
};

class Daemon {
public:
  Daemon();
  ~Daemon(); // stops if still running

  Daemon(const Daemon &) = delete;
  Daemon &operator=(const Daemon &) = delete;

  Status start(DaemonOptions O);
  void stop(); // idempotent

  /// Flip into draining mode: new POST /run and POST /compile get 503 +
  /// Retry-After, GETs (job polls, /healthz, /metrics) keep working, and
  /// queued + running jobs proceed normally. Idempotent.
  void beginDrain();
  /// Graceful shutdown: beginDrain(), wait up to DrainMs for the queue to
  /// empty, then stop() — which fails whatever is still queued through the
  /// cancellation path, so no job record is ever left in "queued".
  /// Returns true if the queue drained within the budget.
  bool drainAndStop();
  /// Whether beginDrain() has been called.
  bool draining() const;
  /// The bound HTTP port (valid after a successful start).
  int port() const;
  /// The .so cache directory in use.
  std::string cacheDir() const;
  /// The failure-recordings directory (valid after start; bundles only
  /// appear there when RecordOnFailure is set).
  std::string recordingsDir() const;

  /// Monotonic counters + instantaneous gauges, for tests and the bench
  /// harness (the same numbers /metrics exposes).
  struct Counters {
    uint64_t CacheHits = 0;   ///< program-registry hits
    uint64_t CacheMisses = 0; ///< program-registry misses (compiles)
    uint64_t JobsDone = 0;
    uint64_t JobsFailed = 0;
    uint64_t JobsRejected = 0;  ///< submits shed with 429
    uint64_t BreakerDenied = 0; ///< requests failed fast with 503 (breaker)
    uint64_t BreakerTrips = 0;  ///< breaker transitions into Open
    uint64_t DeadlineExpired = 0; ///< jobs failed before start (queue wait
                                  ///< consumed the whole deadline)
    uint64_t RecordingsTotal = 0;   ///< failure replay bundles written
    uint64_t RecordingsEvicted = 0; ///< bundles evicted by the size cap
    uint64_t ReplayDivergence = 0;  ///< replay verifications that diverged
    int QueueDepth = 0;
    int JobsInFlight = 0;
    int BreakerOpen = 0; ///< programs currently Open or HalfOpen
  };
  Counters counters() const;

  /// Block until no job is queued or running (tests).
  void waitIdle();

  /// Export daemon health into the environment the bench harness reads
  /// (DIDEROT_DAEMON_CACHE_HIT_RATE, DIDEROT_DAEMON_QUEUE_DEPTH), so
  /// BENCH_*.json files produced under a daemon carry its cache hit rate
  /// and queue depth in their meta block.
  void stampEnvMeta() const;

private:
  struct Impl;
  std::unique_ptr<Impl> I;
};

} // namespace diderot::serve

#endif // DIDEROT_SERVE_DAEMON_H

//===--- serve/diderotd.cpp - the Diderot compile-and-run daemon -------------===//
//
// Part of the Diderot-C++ reproduction (PLDI 2012).
//
// Compile once, serve many: a long-lived process holding the compiled form
// of every program it has seen (serve/compile_cache.h) and running jobs
// from a bounded fair queue (serve/job_queue.h) over HTTP
// (serve/daemon.h). See docs/SERVING.md for the API and curl examples,
// docs/TRACING.md for the request-tracing and structured-logging side.
//
//===----------------------------------------------------------------------===//

#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <thread>

#include "serve/compile_cache.h"
#include "serve/daemon.h"
#include "support/log.h"
#include "support/strings.h"
#include "support/trace.h"

using namespace diderot;

namespace {

void usage() {
  std::fprintf(stderr, R"(usage: diderotd [options]

options:
  --port N            listen on 127.0.0.1:N (default 0 = ephemeral; the
                      bound port is printed to stderr)
  --port-file FILE    also write the bound port to FILE (for scripts that
                      start the daemon with --port 0)
  --job-workers N     job-queue worker threads (default 2)
  --run-workers N     strand workers per job run (default 1)
  --scheduler S       default parallel scheduler for job runs: bsp (fresh
                      threads per run, the paper's model) or pooled
                      (persistent work-stealing strand pool; see
                      docs/SCHEDULING.md). Clients override per request
                      with X-Diderot-Scheduler. (default bsp)
  --queue-cap N       max queued jobs; beyond it POST /run gets 429
                      (default 64)
  --steps N           per-job superstep cap (default 10000)
  --deadline-ms N     default per-job wall-clock deadline (0 = none;
                      clients override with X-Diderot-Deadline-Ms)
  --drain-ms N        graceful-drain budget on SIGTERM/SIGINT: new work is
                      refused with 503 immediately, queued + running jobs
                      get up to N ms to finish, then the hard stop cancels
                      the rest (default 5000)
  --breaker-fails N   consecutive compile failures per program before its
                      requests fail fast with 503 + Retry-After
                      (0 = breaker disabled; default 3)
  --breaker-open-ms N breaker cooldown before one half-open probe compile
                      is admitted (default 10000)
  --compile-timeout-ms N  wall-clock budget for one host-compiler run; on
                      expiry the compiler's whole process group is killed
                      and the job fails with a typed error (default 120000)
  --cache-max-bytes N cap the on-disk .so cache; least-recently-used
                      artifacts are evicted after each compile (0 = no
                      cap; default 0)
  --cache-dir DIR     compiled-object cache directory (default:
                      $DIDEROT_CACHE_DIR, else the system temp scratch)
  --record-on-failure persist a replay bundle (docs/REPLAY.md) for every
                      job that ends faulted, over-deadline, diverged, or
                      compile-trapped; fetch with GET /jobs/<id>/bundle or
                      GET /recordings/<id>, verify with diderotc --replay
  --recordings-dir DIR  where failure bundles land (default:
                      <cache-dir>/recordings)
  --recordings-max-bytes N  cap the recordings directory; the oldest
                      bundles are evicted past it (0 = no cap; default 0)
  --engine=native|interp  execution engine (default native)
  --double            double-precision reals (native engine)
  --trace-sample SPEC detailed-tracing head sample rate: "1/16" or a bare
                      denominator N (1-in-N jobs), "all", "off"
                      (default 1/16; coarse per-job spans are always on)
  --trace-ring N      span trees retained for GET /trace (default 64)
  --slow-ms N         jobs slower than N ms end-to-end are traced and
                      logged even when unsampled (0 = off; default 1000)
  --log-level LVL     debug|info|warn|error (default info)
  --log-json          structured JSONL log records on stderr
  --quiet             only print errors (same as --log-level error)
)");
}

std::atomic<int> GotSignal{0};

void onSignal(int Sig) { GotSignal.store(Sig); }

/// Checked replacements for the bare atoi/atoll the numeric flags used to
/// make: a malformed or out-of-range value is a usage error naming the
/// flag, not a silent zero.
bool argInt(const char *Flag, const char *Text, int &Out) {
  if (parseInt(Text, Out))
    return true;
  std::fprintf(stderr, "error: bad %s '%s' (want an integer)\n", Flag, Text);
  return false;
}

bool argMsToNs(const char *Flag, const char *Text, int64_t &OutNs) {
  int64_t Ms = 0;
  if (parseInt64(Text, Ms) && Ms >= 0 && Ms <= INT64_MAX / 1000000) {
    OutNs = Ms * 1000000;
    return true;
  }
  std::fprintf(stderr,
               "error: bad %s '%s' (want a non-negative millisecond count)\n",
               Flag, Text);
  return false;
}

bool argMs(const char *Flag, const char *Text, int64_t &OutMs) {
  int64_t Ms = 0;
  if (parseInt64(Text, Ms) && Ms >= 0) {
    OutMs = Ms;
    return true;
  }
  std::fprintf(stderr,
               "error: bad %s '%s' (want a non-negative millisecond count)\n",
               Flag, Text);
  return false;
}

bool argBytes(const char *Flag, const char *Text, uint64_t &Out) {
  int64_t V = 0;
  if (parseInt64(Text, V) && V >= 0) {
    Out = static_cast<uint64_t>(V);
    return true;
  }
  std::fprintf(stderr, "error: bad %s '%s' (want a non-negative byte count)\n",
               Flag, Text);
  return false;
}

} // namespace

int main(int Argc, char **Argv) {
  serve::DaemonOptions Opts;
  std::string PortFile;
  logging::Logger::Options LogOpts;

  for (int A = 1; A < Argc; ++A) {
    std::string Arg = Argv[A];
    if (Arg == "--help" || Arg == "-h") {
      usage();
      return 0;
    } else if (Arg == "--port" && A + 1 < Argc) {
      if (!argInt("--port", Argv[++A], Opts.Port))
        return 1;
    } else if (Arg == "--port-file" && A + 1 < Argc) {
      PortFile = Argv[++A];
    } else if (Arg == "--job-workers" && A + 1 < Argc) {
      if (!argInt("--job-workers", Argv[++A], Opts.JobWorkers))
        return 1;
    } else if (Arg == "--run-workers" && A + 1 < Argc) {
      if (!argInt("--run-workers", Argv[++A], Opts.RunWorkers))
        return 1;
    } else if (Arg == "--scheduler" && A + 1 < Argc) {
      if (!rt::parseSchedulerName(Argv[++A], Opts.RunScheduler)) {
        std::fprintf(stderr,
                     "error: bad --scheduler '%s' (want bsp or pooled)\n",
                     Argv[A]);
        return 1;
      }
    } else if (Arg == "--queue-cap" && A + 1 < Argc) {
      if (!argInt("--queue-cap", Argv[++A], Opts.QueueCapacity))
        return 1;
    } else if (Arg == "--steps" && A + 1 < Argc) {
      if (!argInt("--steps", Argv[++A], Opts.MaxSupersteps))
        return 1;
    } else if (Arg == "--deadline-ms" && A + 1 < Argc) {
      if (!argMsToNs("--deadline-ms", Argv[++A], Opts.DefaultDeadlineNs))
        return 1;
    } else if (Arg == "--drain-ms" && A + 1 < Argc) {
      if (!argMs("--drain-ms", Argv[++A], Opts.DrainMs))
        return 1;
    } else if (Arg == "--breaker-fails" && A + 1 < Argc) {
      if (!argInt("--breaker-fails", Argv[++A], Opts.BreakerThreshold))
        return 1;
    } else if (Arg == "--breaker-open-ms" && A + 1 < Argc) {
      if (!argMs("--breaker-open-ms", Argv[++A], Opts.BreakerOpenMs))
        return 1;
    } else if (Arg == "--compile-timeout-ms" && A + 1 < Argc) {
      if (!argMs("--compile-timeout-ms", Argv[++A],
                 Opts.Compile.HostCompileTimeoutMs))
        return 1;
    } else if (Arg == "--cache-max-bytes" && A + 1 < Argc) {
      if (!argBytes("--cache-max-bytes", Argv[++A], Opts.Compile.CacheMaxBytes))
        return 1;
    } else if (Arg == "--cache-dir" && A + 1 < Argc) {
      Opts.Compile.WorkDir = Argv[++A];
    } else if (Arg == "--record-on-failure") {
      Opts.RecordOnFailure = true;
    } else if (Arg == "--recordings-dir" && A + 1 < Argc) {
      Opts.RecordingsDir = Argv[++A];
    } else if (Arg == "--recordings-max-bytes" && A + 1 < Argc) {
      if (!argBytes("--recordings-max-bytes", Argv[++A],
                    Opts.RecordingsMaxBytes))
        return 1;
    } else if (Arg == "--engine=interp") {
      Opts.Compile.Eng = Engine::Interp;
    } else if (Arg == "--engine=native") {
      Opts.Compile.Eng = Engine::Native;
    } else if (Arg == "--double") {
      Opts.Compile.DoublePrecision = true;
    } else if (Arg == "--trace-sample" && A + 1 < Argc) {
      uint32_t N = 0;
      if (!tracing::parseSampleSpec(Argv[++A], N)) {
        std::fprintf(stderr, "error: bad --trace-sample '%s'\n", Argv[A]);
        return 1;
      }
      Opts.TraceSampleN = N;
    } else if (Arg == "--trace-ring" && A + 1 < Argc) {
      if (!argInt("--trace-ring", Argv[++A], Opts.TraceRingCapacity))
        return 1;
    } else if (Arg == "--slow-ms" && A + 1 < Argc) {
      if (!argMsToNs("--slow-ms", Argv[++A], Opts.SlowJobNs))
        return 1;
    } else if (Arg == "--log-level" && A + 1 < Argc) {
      if (!logging::parseLevel(Argv[++A], LogOpts.MinLevel)) {
        std::fprintf(stderr, "error: bad --log-level '%s'\n", Argv[A]);
        return 1;
      }
    } else if (Arg == "--log-json") {
      LogOpts.Json = true;
    } else if (Arg == "--quiet") {
      LogOpts.MinLevel = logging::Level::Error;
    } else {
      std::fprintf(stderr, "error: unknown option '%s'\n", Arg.c_str());
      usage();
      return 1;
    }
  }
  logging::Logger::global().configure(LogOpts);

  serve::Daemon D;
  Status S = D.start(Opts);
  if (!S.isOk()) {
    logging::error("daemon start failed",
                   {logging::strField("error", S.message())});
    return 1;
  }
  // The daemon logs its own "daemon started" record; keep the legacy
  // human-readable line too — scripts grep for it.
  if (LogOpts.MinLevel <= logging::Level::Info && !LogOpts.Json)
    std::fprintf(stderr,
                 "diderotd listening on http://127.0.0.1:%d (cache %s)\n",
                 D.port(), D.cacheDir().c_str());
  if (!PortFile.empty()) {
    std::ofstream Out(PortFile);
    if (!Out) {
      logging::error("cannot write port file",
                     {logging::strField("path", PortFile)});
      return 1;
    }
    Out << D.port() << "\n";
  }

  std::signal(SIGINT, onSignal);
  std::signal(SIGTERM, onSignal);
  while (GotSignal.load() == 0)
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  logging::info("shutting down",
                {logging::numField("signal",
                                   static_cast<int64_t>(GotSignal.load()))});
  D.stampEnvMeta();
  // Graceful drain: refuse new work, let queued + running jobs finish
  // within --drain-ms, then hard-stop (which fails anything left through
  // the cancellation path — no job record stays "queued").
  bool Drained = D.drainAndStop();
  if (!Drained)
    logging::warn("drain budget exhausted; queued jobs were cancelled",
                  {logging::numField("drainMs", Opts.DrainMs)});
  return Drained ? 0 : 1;
}

//===--- simple/lower.h - typed AST -> HighIR -------------------------------===//
//
// Part of the Diderot-C++ reproduction (PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The simplification phase (paper Section 5.1): "the typed AST is then
/// converted into a simplified representation, where temporaries are
/// introduced for intermediate values and operators are applied only to
/// variables. At this point we also duplicate code, as necessary, to ensure
/// that fields are statically determined."
///
/// Our simplified representation *is* HighIR (structured SSA in A-normal
/// form). Static determination of fields is achieved by (a) hoisting
/// `load(...)` calls buried in field initializers into fresh image globals,
/// (b) inlining field- and kernel-typed variables into their use sites, and
/// (c) duplicating conditional field expressions through their consumers:
///     (F1 if b else F2)(x)  ==>  F1(x) if b else F2(x)
/// exactly the transformation the paper describes.
///
//===----------------------------------------------------------------------===//

#ifndef DIDEROT_SIMPLE_LOWER_H
#define DIDEROT_SIMPLE_LOWER_H

#include <memory>

#include "frontend/ast.h"
#include "ir/ir.h"
#include "support/diagnostics.h"
#include "support/result.h"

namespace diderot {

/// Lower a type-checked program to a HighIR module. The program is consumed
/// (staticization rewrites it in place). Errors (e.g. fields that cannot be
/// statically determined) are reported to \p Diags.
Result<ir::Module> lowerToHighIR(Program &P, DiagnosticEngine &Diags);

/// Deep-copy an expression tree, including type annotations (exposed for the
/// staticization tests).
ExprPtr cloneExpr(const Expr &E);

} // namespace diderot

#endif // DIDEROT_SIMPLE_LOWER_H

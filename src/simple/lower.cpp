//===--- simple/lower.cpp --------------------------------------------------===//

#include "simple/lower.h"

#include <cassert>
#include <map>

#include "frontend/builtins.h"
#include "ir/builder.h"

namespace diderot {

using ir::Builder;
using ir::Op;
using ir::ValueId;

ExprPtr cloneExpr(const Expr &E) {
  auto C = std::make_unique<Expr>(E.Kind, E.Loc);
  C->IntVal = E.IntVal;
  C->RealVal = E.RealVal;
  C->BoolVal = E.BoolVal;
  C->StrVal = E.StrVal;
  C->Name = E.Name;
  C->UOp = E.UOp;
  C->BOp = E.BOp;
  C->Ty = E.Ty;
  C->Resolved = E.Resolved;
  C->RefKind = E.RefKind;
  C->RefIndex = E.RefIndex;
  C->BuiltinId = E.BuiltinId;
  for (const ExprPtr &Kid : E.Kids)
    C->Kids.push_back(cloneExpr(*Kid));
  return C;
}

namespace {

constexpr double PiValue = 3.141592653589793238462643383279502884;

//===----------------------------------------------------------------------===//
// Environment: variable name -> SSA value, with block scoping.
//===----------------------------------------------------------------------===//

class Env {
public:
  void push() { Scopes.emplace_back(); }
  void pop() { Scopes.pop_back(); }

  void insert(const std::string &Name, ValueId V) {
    Scopes.back()[Name] = V;
  }
  /// Rebind an existing variable (assignment), wherever it was declared.
  void assign(const std::string &Name, ValueId V) {
    for (auto It = Scopes.rbegin(); It != Scopes.rend(); ++It) {
      auto F = It->find(Name);
      if (F != It->end()) {
        F->second = V;
        return;
      }
    }
    assert(false && "assignment to unknown variable");
  }
  ValueId lookup(const std::string &Name) const {
    for (auto It = Scopes.rbegin(); It != Scopes.rend(); ++It) {
      auto F = It->find(Name);
      if (F != It->end())
        return F->second;
    }
    return ir::NoValue;
  }
  /// All visible bindings, innermost definition winning.
  std::map<std::string, ValueId> flatten() const {
    std::map<std::string, ValueId> Out;
    for (const auto &Scope : Scopes)
      for (const auto &[K, V] : Scope)
        Out[K] = V;
    return Out;
  }

  Env clone() const { return *this; }

private:
  std::vector<std::map<std::string, ValueId>> Scopes;
};

//===----------------------------------------------------------------------===//
// Staticization (field determination)
//===----------------------------------------------------------------------===//

class Staticizer {
public:
  Staticizer(Program &P, DiagnosticEngine &Diags) : P(P), Diags(Diags) {}

  void run() {
    hoistLoads();
    inlineGlobalFieldInits();
    // Inline field/kernel variables and distribute conditionals everywhere
    // expressions occur.
    for (GlobalDecl &G : P.Globals)
      if (G.Init)
        staticizeExpr(G.Init);
    FieldLocals.clear();
    for (StateVar &V : P.Strand.State)
      if (V.Init)
        staticizeExpr(V.Init);
    if (P.Strand.UpdateBody)
      staticizeStmt(*P.Strand.UpdateBody);
    if (P.Strand.StabilizeBody)
      staticizeStmt(*P.Strand.StabilizeBody);
    for (ExprPtr &A : P.Init.Args)
      staticizeExpr(A);
    for (Iterator &It : P.Init.Iters) {
      staticizeExpr(It.Lo);
      staticizeExpr(It.Hi);
    }
  }

private:
  /// Replace load(...) calls nested inside non-image globals with references
  /// to fresh image globals, so image loading happens once at startup.
  void hoistLoads() {
    size_t NumOriginal = P.Globals.size();
    for (size_t I = 0; I < NumOriginal; ++I) {
      GlobalDecl &G = P.Globals[I];
      if (!G.Init || G.Ty.isImage())
        continue;
      hoistLoadsIn(G.Init);
    }
  }

  void hoistLoadsIn(ExprPtr &E) {
    if (E->Kind == ExprKind::Apply &&
        E->BuiltinId == static_cast<int>(Builtin::Load)) {
      GlobalDecl NewG;
      NewG.Loc = E->Loc;
      NewG.IsInput = false;
      NewG.Ty = E->Ty;
      NewG.Name = strf("$img", NextHoisted++);
      auto Ref = std::make_unique<Expr>(ExprKind::Ident, E->Loc);
      Ref->Name = NewG.Name;
      Ref->Ty = E->Ty;
      Ref->RefKind = Expr::Ref::Global;
      Ref->RefIndex = static_cast<int>(P.Globals.size());
      NewG.Init = std::move(E);
      P.Globals.push_back(std::move(NewG));
      E = std::move(Ref);
      return;
    }
    for (ExprPtr &Kid : E->Kids)
      hoistLoadsIn(Kid);
  }

  /// Field/kernel globals are compile-time symbolic: substitute each one's
  /// (already staticized) initializer into later initializers, so every
  /// use site sees convolutions directly.
  void inlineGlobalFieldInits() {
    for (GlobalDecl &G : P.Globals) {
      if (!G.Init)
        continue;
      inlineVarsIn(G.Init);
      distributeConds(G.Init);
    }
  }

  void staticizeExpr(ExprPtr &E) {
    if (!E)
      return;
    inlineVarsIn(E);
    distributeConds(E);
  }

  void staticizeStmt(Stmt &S) {
    switch (S.Kind) {
    case StmtKind::Block: {
      // Field-typed locals are scoped to the block.
      auto Saved = FieldLocals;
      for (StmtPtr &Child : S.Body)
        staticizeStmt(*Child);
      FieldLocals = std::move(Saved);
      return;
    }
    case StmtKind::Decl:
      staticizeExpr(S.Value);
      if (S.DeclTy.isField() || S.DeclTy.isKernel()) {
        // Record the definition and neuter the declaration: uses are
        // replaced by the definition, so nothing remains to execute.
        FieldLocals[S.Name] = S.Value.get();
        S.Kind = StmtKind::Block;
        S.Body.clear();
      }
      return;
    case StmtKind::Assign:
      if (FieldLocals.count(S.Name)) {
        Diags.error(S.Loc, strf("field variable '", S.Name,
                                "' cannot be reassigned (fields must be "
                                "statically determined)"));
        return;
      }
      staticizeExpr(S.Value);
      return;
    case StmtKind::If:
      staticizeExpr(S.Value);
      staticizeStmt(*S.Then);
      if (S.Else)
        staticizeStmt(*S.Else);
      return;
    case StmtKind::Stabilize:
    case StmtKind::Die:
      return;
    }
  }

  void inlineVarsIn(ExprPtr &E) {
    if (E->Kind == ExprKind::Ident && (E->Ty.isField() || E->Ty.isKernel())) {
      const Expr *Def = nullptr;
      if (E->RefKind == Expr::Ref::Global) {
        const GlobalDecl &G = P.Globals[static_cast<size_t>(E->RefIndex)];
        Def = G.Init.get();
        if (!Def) {
          Diags.error(E->Loc, strf("field '", E->Name,
                                   "' has no definition to inline"));
          return;
        }
      } else if (E->RefKind == Expr::Ref::Local) {
        auto It = FieldLocals.find(E->Name);
        assert(It != FieldLocals.end() && "field local lost during lowering");
        Def = It->second;
      } else {
        return; // built-in kernel name: stays symbolic
      }
      E = cloneExpr(*Def);
      return;
    }
    for (ExprPtr &Kid : E->Kids)
      inlineVarsIn(Kid);
  }

  /// Is kid \p K of \p E consumed as a field (so a conditional there must be
  /// distributed)?
  static bool consumesFieldKid(const Expr &E, size_t K) {
    const Expr &Kid = *E.Kids[K];
    if (!Kid.Ty.isField())
      return false;
    switch (E.Kind) {
    case ExprKind::Unary:
      return true; // ∇, ∇⊗, -f
    case ExprKind::Binary:
      return true; // field arithmetic
    case ExprKind::Apply:
      // probe callee (kid 0) or inside's field argument.
      return true;
    default:
      return false;
    }
  }

  void distributeConds(ExprPtr &E) {
    for (ExprPtr &Kid : E->Kids)
      distributeConds(Kid);
    for (size_t K = 0; K < E->Kids.size(); ++K) {
      if (E->Kids[K]->Kind != ExprKind::Cond || !consumesFieldKid(*E, K))
        continue;
      // E[..., (a if c else b), ...] => E[...,a,...] if c else E[...,b,...]
      ExprPtr CondE = std::move(E->Kids[K]);
      ExprPtr ThenV = std::move(CondE->Kids[0]);
      ExprPtr CondV = std::move(CondE->Kids[1]);
      ExprPtr ElseV = std::move(CondE->Kids[2]);

      // Install the then-arm before cloning: E must have no null kids.
      E->Kids[K] = std::move(ThenV);
      ExprPtr ElseCopy = cloneExpr(*E);
      ElseCopy->Kids[K] = std::move(ElseV);

      auto NewCond = std::make_unique<Expr>(ExprKind::Cond, CondE->Loc);
      NewCond->Ty = E->Ty;
      NewCond->Kids.push_back(std::move(E));
      NewCond->Kids.push_back(std::move(CondV));
      NewCond->Kids.push_back(std::move(ElseCopy));
      E = std::move(NewCond);
      // The new branches may still contain conditional fields; recurse.
      distributeConds(E->Kids[0]);
      distributeConds(E->Kids[2]);
      return;
    }
  }

  Program &P;
  DiagnosticEngine &Diags;
  std::map<std::string, const Expr *> FieldLocals;
  int NextHoisted = 0;
};

//===----------------------------------------------------------------------===//
// Lowering
//===----------------------------------------------------------------------===//

class Lowering {
public:
  Lowering(Program &P, DiagnosticEngine &Diags) : P(P), Diags(Diags) {}

  Result<ir::Module> run() {
    M.Name = P.Strand.Name;
    M.CurLevel = ir::High;
    Staticizer(P, Diags).run();
    if (Diags.hasErrors())
      return Result<ir::Module>::error(Diags.str());

    buildGlobals();
    lowerGlobalInit();
    lowerStrand();
    lowerInitially();
    if (Diags.hasErrors())
      return Result<ir::Module>::error(Diags.str());
    std::string Err = ir::verify(M);
    if (!Err.empty())
      return Result<ir::Module>::error(
          strf("internal error: HighIR verification failed: ", Err));
    return std::move(M);
  }

private:
  /// Module globals are the AST globals that need runtime storage: value
  /// types and images. Field/kernel globals were inlined away.
  void buildGlobals() {
    GlobalMap.assign(P.Globals.size(), -1);
    for (size_t I = 0; I < P.Globals.size(); ++I) {
      const GlobalDecl &G = P.Globals[I];
      if (G.Ty.isField() || G.Ty.isKernel())
        continue;
      GlobalMap[I] = static_cast<int>(M.Globals.size());
      M.Globals.push_back({G.Name, G.Ty, G.IsInput, -1});
    }
  }

  //===--------------------------------------------------------------------===//
  // Functions
  //===--------------------------------------------------------------------===//

  void lowerGlobalInit() {
    ir::Function &F = M.GlobalInit;
    F.Name = "globalInit";
    Builder B(F);
    Env E;
    E.push();
    // Parameters: one per input global (module order).
    for (size_t I = 0; I < P.Globals.size(); ++I) {
      const GlobalDecl &G = P.Globals[I];
      if (GlobalMap[I] < 0 || !G.IsInput)
        continue;
      ValueId V = B.addParam(G.Ty);
      E.insert(G.Name, V);
    }
    // Compute non-input globals in order.
    std::vector<ValueId> Results;
    for (size_t I = 0; I < P.Globals.size(); ++I) {
      const GlobalDecl &G = P.Globals[I];
      if (GlobalMap[I] < 0)
        continue;
      if (G.IsInput) {
        // Also lower the default into its own function.
        if (G.Init) {
          ir::Function DF;
          DF.Name = strf("default$", G.Name);
          DF.ResultTypes = {G.Ty};
          Builder DB(DF);
          Env DE;
          DE.push();
          CurB = &DB;
          CurEnv = &DE;
          InGlobalInit = false;
          ValueId V = lowerExpr(*G.Init);
          DB.exit(ir::ExitAttr::Continue, {V});
          DB.finish();
          M.Globals[static_cast<size_t>(GlobalMap[I])].DefaultFn =
              static_cast<int>(M.InputDefaults.size());
          M.InputDefaults.push_back(std::move(DF));
        }
        continue;
      }
      CurB = &B;
      CurEnv = &E;
      InGlobalInit = true;
      assert(G.Init && "non-input global without initializer");
      ValueId V = lowerExpr(*G.Init);
      E.insert(G.Name, V);
      Results.push_back(V);
      F.ResultTypes.push_back(G.Ty);
    }
    CurB = &B;
    B.exit(ir::ExitAttr::Continue, Results);
    B.finish();
    InGlobalInit = false;
  }

  void lowerStrand() {
    const StrandDecl &S = P.Strand;
    M.StrandName = S.Name;
    for (const Param &Prm : S.Params)
      M.StrandParams.push_back(Prm.Ty);
    for (const StateVar &V : S.State)
      M.State.push_back({V.Name, V.Ty, V.IsOutput});

    // strandInit: params -> initial state.
    {
      ir::Function &F = M.StrandInit;
      F.Name = "strandInit";
      Builder B(F);
      Env E;
      E.push();
      for (const Param &Prm : S.Params)
        E.insert(Prm.Name, B.addParam(Prm.Ty));
      CurB = &B;
      CurEnv = &E;
      std::vector<ValueId> StateVals;
      for (const StateVar &V : S.State) {
        ValueId Val = lowerExpr(*V.Init);
        E.insert(V.Name, Val);
        StateVals.push_back(Val);
        F.ResultTypes.push_back(V.Ty);
      }
      B.exit(ir::ExitAttr::Continue, StateVals);
      B.finish();
    }

    lowerMethod(M.Update, "update", *S.UpdateBody);
    if (S.StabilizeBody)
      lowerMethod(M.Stabilize, "stabilize", *S.StabilizeBody);
  }

  /// Lower update/stabilize. Strand parameters are carried as hidden leading
  /// state slots so methods can read them; the function maps the full state
  /// vector to a new state vector, with the Exit kind giving the strand
  /// status.
  void lowerMethod(ir::Function &F, const char *Name, Stmt &Body) {
    const StrandDecl &S = P.Strand;
    F.Name = Name;
    Builder B(F);
    Env E;
    E.push();
    // Hidden state: strand parameters first, then declared state.
    for (const Param &Prm : S.Params)
      E.insert(Prm.Name, B.addParam(Prm.Ty));
    for (const StateVar &V : S.State)
      E.insert(V.Name, B.addParam(V.Ty));
    for (const Param &Prm : S.Params)
      F.ResultTypes.push_back(Prm.Ty);
    for (const StateVar &V : S.State)
      F.ResultTypes.push_back(V.Ty);
    CurB = &B;
    CurEnv = &E;
    E.push();
    lowerStmt(Body);
    // If control fell through (or an if with both branches exiting left the
    // region without its own terminator), complete the superstep normally.
    if (!B.terminated())
      B.exit(ir::ExitAttr::Continue, stateValues(E));
    B.finish();
  }

  /// The full state vector (params + state vars) from the environment.
  std::vector<ValueId> stateValues(const Env &E) const {
    std::vector<ValueId> Out;
    for (const Param &Prm : P.Strand.Params)
      Out.push_back(E.lookup(Prm.Name));
    for (const StateVar &V : P.Strand.State)
      Out.push_back(E.lookup(V.Name));
    return Out;
  }

  void lowerInitially() {
    const Initially &I = P.Init;
    M.IsGrid = I.IsGrid;
    for (size_t K = 0; K < I.Iters.size(); ++K) {
      for (bool IsLo : {true, false}) {
        ir::Function F;
        F.Name = strf(IsLo ? "iterLo" : "iterHi", K);
        F.ResultTypes = {Type::integer()};
        Builder B(F);
        Env E;
        E.push();
        CurB = &B;
        CurEnv = &E;
        ValueId V = lowerExpr(IsLo ? *I.Iters[K].Lo : *I.Iters[K].Hi);
        B.exit(ir::ExitAttr::Continue, {V});
        B.finish();
        (IsLo ? M.IterLo : M.IterHi).push_back(std::move(F));
      }
    }
    ir::Function &F = M.CreateArgs;
    F.Name = "createArgs";
    Builder B(F);
    Env E;
    E.push();
    for (const Iterator &It : I.Iters)
      E.insert(It.Var, B.addParam(Type::integer()));
    CurB = &B;
    CurEnv = &E;
    std::vector<ValueId> Args;
    for (const ExprPtr &A : I.Args) {
      Args.push_back(lowerExpr(*A));
      F.ResultTypes.push_back(A->Ty);
    }
    B.exit(ir::ExitAttr::Continue, Args);
    B.finish();
  }

  //===--------------------------------------------------------------------===//
  // Statements
  //===--------------------------------------------------------------------===//

  /// Lower a statement; returns false when control cannot continue past it
  /// (both paths exited).
  bool lowerStmt(Stmt &S) {
    Builder &B = *CurB;
    Env &E = *CurEnv;
    switch (S.Kind) {
    case StmtKind::Block: {
      E.push();
      bool Live = true;
      for (StmtPtr &Child : S.Body) {
        if (!Live) {
          Diags.warning(Child->Loc, "unreachable statement");
          break;
        }
        Live = lowerStmt(*Child);
      }
      E.pop();
      return Live;
    }
    case StmtKind::Decl: {
      ValueId V = lowerExpr(*S.Value);
      E.insert(S.Name, V);
      return true;
    }
    case StmtKind::Assign: {
      ValueId V = lowerExpr(*S.Value);
      E.assign(S.Name, V);
      return true;
    }
    case StmtKind::Stabilize:
      B.exit(ir::ExitAttr::Stabilize, stateValues(E));
      return false;
    case StmtKind::Die:
      B.exit(ir::ExitAttr::Die, stateValues(E));
      return false;
    case StmtKind::If:
      return lowerIfStmt(S);
    }
    return true;
  }

  bool lowerIfStmt(Stmt &S) {
    Builder &B = *CurB;
    Env &E = *CurEnv;
    ValueId Cond = lowerExpr(*S.Value);
    Env PreEnv = E.clone();

    // Then branch.
    B.pushRegion();
    E.push();
    bool ThenLive = lowerStmt(*S.Then);
    E.pop();
    // A dead branch whose exit happened inside a nested if still needs a
    // (unreachable) terminator of its own.
    if (!ThenLive && !B.terminated())
      B.exit(ir::ExitAttr::Continue, stateValues(E));
    Env ThenEnv = E.clone();
    ir::Region ThenR = stealRegion(B);

    // Else branch.
    E = PreEnv.clone();
    B.pushRegion();
    bool ElseLive = true;
    if (S.Else) {
      E.push();
      ElseLive = lowerStmt(*S.Else);
      E.pop();
    }
    if (!ElseLive && !B.terminated())
      B.exit(ir::ExitAttr::Continue, stateValues(E));
    Env ElseEnv = E.clone();
    ir::Region ElseR = stealRegion(B);
    E = PreEnv.clone();

    // Which visible variables need merging?
    std::vector<std::string> Merged;
    std::map<std::string, ValueId> Pre = PreEnv.flatten();
    for (const auto &[Name, PreV] : Pre) {
      ValueId TV = ThenEnv.lookup(Name);
      ValueId EV = ElseEnv.lookup(Name);
      bool Differs = ThenLive && ElseLive ? TV != EV
                     : ThenLive           ? TV != PreV
                     : ElseLive           ? EV != PreV
                                          : false;
      if (Differs)
        Merged.push_back(Name);
    }

    std::vector<Type> ResultTys;
    for (const std::string &Name : Merged)
      ResultTys.push_back(B.function().typeOf(Pre[Name]));

    // Terminate live branches with yields of the merged values.
    auto Terminate = [&](ir::Region &R, const Env &BranchEnv, bool Live) {
      if (!Live)
        return;
      ir::Instr Y(Op::Yield);
      for (const std::string &Name : Merged)
        Y.Operands.push_back(BranchEnv.lookup(Name));
      R.Body.push_back(std::move(Y));
    };
    Terminate(ThenR, ThenEnv, ThenLive);
    Terminate(ElseR, ElseEnv, ElseLive);

    if (!ThenLive && !ElseLive) {
      // Neither branch falls through; the if is a terminator in effect.
      B.emitIf(Cond, std::move(ThenR), std::move(ElseR), {});
      return false;
    }
    std::vector<ValueId> Rs =
        B.emitIf(Cond, std::move(ThenR), std::move(ElseR), ResultTys);
    for (size_t I = 0; I < Merged.size(); ++I)
      E.assign(Merged[I], Rs[I]);
    return true;
  }

  /// Pop the builder's current region without requiring a terminator (the
  /// caller appends the Yield once merge sets are known).
  static ir::Region stealRegion(Builder &B) { return B.popRegionUnchecked(); }

  //===--------------------------------------------------------------------===//
  // Expressions
  //===--------------------------------------------------------------------===//

  ValueId lowerExpr(const Expr &E);
  ValueId lowerIdent(const Expr &E);
  ValueId lowerUnary(const Expr &E);
  ValueId lowerBinary(const Expr &E);
  ValueId lowerCondExpr(const Expr &E);
  ValueId lowerApply(const Expr &E);
  ValueId lowerBuiltin(const Expr &E);
  ValueId lowerTensorCons(const Expr &E);
  ValueId lowerIndex(const Expr &E);
  ValueId lowerShortCircuit(const Expr &E, bool IsAnd);

  Program &P;
  DiagnosticEngine &Diags;
  ir::Module M;
  std::vector<int> GlobalMap;
  Builder *CurB = nullptr;
  Env *CurEnv = nullptr;
  bool InGlobalInit = false;
};

ValueId Lowering::lowerExpr(const Expr &E) {
  Builder &B = *CurB;
  switch (E.Kind) {
  case ExprKind::IntLit:
    return B.constInt(E.IntVal);
  case ExprKind::RealLit:
    return B.constReal(E.RealVal);
  case ExprKind::PiLit:
    return B.constReal(PiValue);
  case ExprKind::BoolLit:
    return B.constBool(E.BoolVal);
  case ExprKind::StringLit:
    return B.constString(E.StrVal);
  case ExprKind::Ident:
    return lowerIdent(E);
  case ExprKind::Unary:
    return lowerUnary(E);
  case ExprKind::Binary:
    return lowerBinary(E);
  case ExprKind::Cond:
    return lowerCondExpr(E);
  case ExprKind::Apply:
    return lowerApply(E);
  case ExprKind::TensorCons:
    return lowerTensorCons(E);
  case ExprKind::SeqCons: {
    std::vector<ValueId> Elems;
    for (const ExprPtr &Kid : E.Kids)
      Elems.push_back(lowerExpr(*Kid));
    return B.emit(Op::SeqCons, std::move(Elems), E.Ty, std::monostate{}, E.Loc);
  }
  case ExprKind::Index:
    return lowerIndex(E);
  case ExprKind::Norm: {
    ValueId V = lowerExpr(*E.Kids[0]);
    if (E.Kids[0]->Ty.isReal())
      return B.emit(Op::Abs, {V}, Type::real(), std::monostate{}, E.Loc);
    return B.emit(Op::Norm, {V}, Type::real(), std::monostate{}, E.Loc);
  }
  }
  assert(false && "unhandled expression kind");
  return ir::NoValue;
}

ValueId Lowering::lowerIdent(const Expr &E) {
  switch (E.RefKind) {
  case Expr::Ref::Global: {
    int MIdx = GlobalMap[static_cast<size_t>(E.RefIndex)];
    assert(MIdx >= 0 && "field/kernel globals are inlined before lowering");
    if (InGlobalInit) {
      ValueId V = CurEnv->lookup(E.Name);
      assert(V != ir::NoValue && "global referenced before its definition");
      return V;
    }
    return CurB->emit(Op::GlobalGet, {}, E.Ty,
                      static_cast<int64_t>(MIdx), E.Loc);
  }
  case Expr::Ref::Param:
  case Expr::Ref::State:
  case Expr::Ref::Local:
  case Expr::Ref::IterVar: {
    ValueId V = CurEnv->lookup(E.Name);
    assert(V != ir::NoValue && "unbound variable after type checking");
    return V;
  }
  case Expr::Ref::Kernel:
  case Expr::Ref::None:
    break;
  }
  Diags.error(E.Loc, strf("cannot use '", E.Name, "' as a value here"));
  return CurB->constInt(0);
}

ValueId Lowering::lowerUnary(const Expr &E) {
  Builder &B = *CurB;
  if (E.UOp == UnaryOp::Nabla || E.UOp == UnaryOp::NablaOtimes) {
    ValueId F = lowerExpr(*E.Kids[0]);
    return B.emit(Op::FieldDiff, {F}, E.Ty, std::monostate{}, E.Loc);
  }
  if (E.UOp == UnaryOp::Divergence || E.UOp == UnaryOp::Curl) {
    ValueId F = lowerExpr(*E.Kids[0]);
    return B.emit(E.UOp == UnaryOp::Divergence ? Op::FieldDivergence
                                               : Op::FieldCurl,
                  {F}, E.Ty, std::monostate{}, E.Loc);
  }
  ValueId V = lowerExpr(*E.Kids[0]);
  if (E.UOp == UnaryOp::Not)
    return B.emit(Op::Not, {V}, Type::boolean(), std::monostate{}, E.Loc);
  if (E.Resolved == ResolvedOp::FieldNeg)
    return B.emit(Op::FieldNeg, {V}, E.Ty, std::monostate{}, E.Loc);
  return B.emit(Op::Neg, {V}, E.Ty, std::monostate{}, E.Loc);
}

ValueId Lowering::lowerBinary(const Expr &E) {
  Builder &B = *CurB;
  if (E.BOp == BinaryOp::And || E.BOp == BinaryOp::Or)
    return lowerShortCircuit(E, E.BOp == BinaryOp::And);

  if (E.BOp == BinaryOp::Convolve) {
    // One side is the image, the other a built-in kernel name.
    const Expr &L = *E.Kids[0];
    const Expr &R = *E.Kids[1];
    const Expr &ImgE = L.Ty.isImage() ? L : R;
    const Expr &KernE = L.Ty.isImage() ? R : L;
    if (KernE.Kind != ExprKind::Ident || KernE.RefKind != Expr::Ref::Kernel) {
      Diags.error(KernE.Loc, "convolution kernel must be a built-in kernel");
      return B.constInt(0);
    }
    ValueId Img = lowerExpr(ImgE);
    return B.emit(Op::Convolve, {Img}, E.Ty,
                  ir::ConvolveAttr{KernE.Name, 0}, E.Loc);
  }

  ValueId L = lowerExpr(*E.Kids[0]);
  ValueId R = lowerExpr(*E.Kids[1]);
  auto Bin = [&](Op O) {
    return B.emit(O, {L, R}, E.Ty, std::monostate{}, E.Loc);
  };

  switch (E.BOp) {
  case BinaryOp::Add:
    return Bin(E.Resolved == ResolvedOp::FieldAddSub ? Op::FieldAdd : Op::Add);
  case BinaryOp::Sub:
    return Bin(E.Resolved == ResolvedOp::FieldAddSub ? Op::FieldSub : Op::Sub);
  case BinaryOp::Mul:
    switch (E.Resolved) {
    case ResolvedOp::ScaleLeft:
      return Bin(Op::Scale);
    case ResolvedOp::ScaleRight:
      return B.emit(Op::Scale, {R, L}, E.Ty, std::monostate{}, E.Loc);
    case ResolvedOp::FieldScaleLeft:
      return Bin(Op::FieldScale);
    case ResolvedOp::FieldScaleRight:
      return B.emit(Op::FieldScale, {R, L}, E.Ty, std::monostate{}, E.Loc);
    default:
      return Bin(Op::Mul);
    }
  case BinaryOp::Div:
    switch (E.Resolved) {
    case ResolvedOp::TensorDivScalar:
      return Bin(Op::DivScale);
    case ResolvedOp::FieldDivScalar:
      return Bin(Op::FieldDivScale);
    default:
      return Bin(Op::Div);
    }
  case BinaryOp::Mod:
    return Bin(Op::Mod);
  case BinaryOp::Pow: {
    if (E.Kids[1]->Ty.isInt())
      R = B.emit(Op::IntToReal, {R}, Type::real());
    return B.emit(Op::Pow, {L, R}, Type::real(), std::monostate{}, E.Loc);
  }
  case BinaryOp::Dot:
    return Bin(Op::Dot);
  case BinaryOp::Cross:
    return Bin(Op::Cross);
  case BinaryOp::Outer:
    return Bin(Op::Outer);
  case BinaryOp::Lt:
    return Bin(Op::Lt);
  case BinaryOp::Le:
    return Bin(Op::Le);
  case BinaryOp::Gt:
    return Bin(Op::Gt);
  case BinaryOp::Ge:
    return Bin(Op::Ge);
  case BinaryOp::Eq:
    return Bin(Op::Eq);
  case BinaryOp::Ne:
    return Bin(Op::Ne);
  default:
    break;
  }
  assert(false && "unhandled binary operator");
  return ir::NoValue;
}

ValueId Lowering::lowerShortCircuit(const Expr &E, bool IsAnd) {
  // Short-circuit semantics matter: `inside(p, F) && F(p) > t` must not
  // probe outside the field domain. Lower to an If.
  Builder &B = *CurB;
  ValueId L = lowerExpr(*E.Kids[0]);
  B.pushRegion();
  if (IsAnd) {
    ValueId R = lowerExpr(*E.Kids[1]);
    B.yield({R});
  } else {
    ValueId T = B.constBool(true);
    B.yield({T});
  }
  ir::Region Then = B.popRegion();
  B.pushRegion();
  if (IsAnd) {
    ValueId F = B.constBool(false);
    B.yield({F});
  } else {
    ValueId R = lowerExpr(*E.Kids[1]);
    B.yield({R});
  }
  ir::Region Else = B.popRegion();
  return B.emitIf(L, std::move(Then), std::move(Else), {Type::boolean()})[0];
}

ValueId Lowering::lowerCondExpr(const Expr &E) {
  Builder &B = *CurB;
  assert(!E.Ty.isField() &&
         "field conditionals are distributed by staticization");
  ValueId Cond = lowerExpr(*E.Kids[1]);
  B.pushRegion();
  ValueId T = lowerExpr(*E.Kids[0]);
  B.yield({T});
  ir::Region Then = B.popRegion();
  B.pushRegion();
  ValueId F = lowerExpr(*E.Kids[2]);
  B.yield({F});
  ir::Region Else = B.popRegion();
  return B.emitIf(Cond, std::move(Then), std::move(Else), {E.Ty})[0];
}

ValueId Lowering::lowerApply(const Expr &E) {
  Builder &B = *CurB;
  if (E.Resolved == ResolvedOp::Probe) {
    ValueId F = lowerExpr(*E.Kids[0]);
    ValueId Pos = lowerExpr(*E.Kids[1]);
    return B.emit(Op::Probe, {F, Pos}, E.Ty, std::monostate{}, E.Loc);
  }
  assert(E.Resolved == ResolvedOp::BuiltinCall && "unresolved application");
  return lowerBuiltin(E);
}

ValueId Lowering::lowerBuiltin(const Expr &E) {
  Builder &B = *CurB;
  Builtin Bi = static_cast<Builtin>(E.BuiltinId);
  auto Arg = [&](size_t I) { return lowerExpr(*E.Kids[I + 1]); };
  auto Un = [&](Op O) {
    ValueId V = Arg(0);
    return B.emit(O, {V}, E.Ty, std::monostate{}, E.Loc);
  };
  auto Bin2 = [&](Op O) {
    ValueId A = Arg(0);
    ValueId C = Arg(1);
    return B.emit(O, {A, C}, E.Ty, std::monostate{}, E.Loc);
  };
  switch (Bi) {
  case Builtin::Inside: {
    ValueId Pos = Arg(0);
    ValueId F = Arg(1);
    return B.emit(Op::FieldInside, {Pos, F}, Type::boolean(), std::monostate{},
                  E.Loc);
  }
  case Builtin::Normalize:
    return Un(Op::Normalize);
  case Builtin::Trace:
    return Un(Op::Trace);
  case Builtin::Det:
    return Un(Op::Det);
  case Builtin::Inv:
    return Un(Op::Inverse);
  case Builtin::Transpose:
    return Un(Op::Transpose);
  case Builtin::Evals:
    return Un(Op::Evals);
  case Builtin::Evecs:
    return Un(Op::Evecs);
  case Builtin::Modulate:
    return Bin2(Op::Modulate);
  case Builtin::Lerp: {
    ValueId A = Arg(0), C = Arg(1), T = Arg(2);
    return B.emit(Op::Lerp, {A, C, T}, E.Ty, std::monostate{}, E.Loc);
  }
  case Builtin::Sqrt:
    return Un(Op::Sqrt);
  case Builtin::Cos:
    return Un(Op::Cos);
  case Builtin::Sin:
    return Un(Op::Sin);
  case Builtin::Tan:
    return Un(Op::Tan);
  case Builtin::Asin:
    return Un(Op::Asin);
  case Builtin::Acos:
    return Un(Op::Acos);
  case Builtin::Atan:
    return Un(Op::Atan);
  case Builtin::Atan2:
    return Bin2(Op::Atan2);
  case Builtin::Exp:
    return Un(Op::Exp);
  case Builtin::Log:
    return Un(Op::Log);
  case Builtin::Pow:
    return Bin2(Op::Pow);
  case Builtin::MinR:
  case Builtin::MinI:
    return Bin2(Op::Min);
  case Builtin::MaxR:
  case Builtin::MaxI:
    return Bin2(Op::Max);
  case Builtin::AbsR:
  case Builtin::AbsI:
    return Un(Op::Abs);
  case Builtin::Clamp: {
    ValueId X = Arg(0), Lo = Arg(1), Hi = Arg(2);
    return B.emit(Op::Clamp, {X, Lo, Hi}, E.Ty, std::monostate{}, E.Loc);
  }
  case Builtin::Floor:
    return Un(Op::Floor);
  case Builtin::Ceil:
    return Un(Op::Ceil);
  case Builtin::Round:
    return Un(Op::Round);
  case Builtin::Trunc:
    return Un(Op::Trunc);
  case Builtin::CastReal: {
    ValueId V = Arg(0);
    if (E.Kids[1]->Ty.isInt())
      return B.emit(Op::IntToReal, {V}, Type::real(), std::monostate{}, E.Loc);
    return V;
  }
  case Builtin::Load:
    return B.emit(Op::LoadImage, {}, E.Ty, E.Kids[1]->StrVal, E.Loc);
  }
  assert(false && "unhandled builtin");
  return ir::NoValue;
}

ValueId Lowering::lowerTensorCons(const Expr &E) {
  Builder &B = *CurB;
  std::vector<ValueId> Comps;
  for (const ExprPtr &Kid : E.Kids) {
    ValueId V = lowerExpr(*Kid);
    const Shape &KS = Kid->Ty.shape();
    if (KS.isScalar()) {
      Comps.push_back(V);
      continue;
    }
    // Flatten nested constructors by extracting each component.
    int N = KS.numComponents();
    for (int C = 0; C < N; ++C) {
      // Unflatten C into a multi-index.
      std::vector<int> Idx(static_cast<size_t>(KS.order()));
      int Rem = C;
      for (int A = KS.order() - 1; A >= 0; --A) {
        Idx[static_cast<size_t>(A)] = Rem % KS[A];
        Rem /= KS[A];
      }
      Comps.push_back(B.emit(Op::TensorIndex, {V}, Type::real(), Idx, E.Loc));
    }
  }
  return B.emit(Op::TensorCons, std::move(Comps), E.Ty, std::monostate{},
                E.Loc);
}

ValueId Lowering::lowerIndex(const Expr &E) {
  Builder &B = *CurB;
  if (E.Resolved == ResolvedOp::IdentityCons)
    return B.constTensor(Tensor::identity(static_cast<int>(E.Kids[1]->IntVal)));
  ValueId Base = lowerExpr(*E.Kids[0]);
  if (E.Resolved == ResolvedOp::SeqIndex) {
    ValueId Idx = lowerExpr(*E.Kids[1]);
    return B.emit(Op::SeqIndex, {Base, Idx}, E.Ty, std::monostate{}, E.Loc);
  }
  assert(E.Resolved == ResolvedOp::TensorIndex);
  std::vector<int> Idx;
  for (size_t I = 1; I < E.Kids.size(); ++I)
    Idx.push_back(static_cast<int>(E.Kids[I]->IntVal));
  return B.emit(Op::TensorIndex, {Base}, E.Ty, Idx, E.Loc);
}

} // namespace

Result<ir::Module> lowerToHighIR(Program &P, DiagnosticEngine &Diags) {
  return Lowering(P, Diags).run();
}

} // namespace diderot

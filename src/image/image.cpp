//===--- image/image.cpp --------------------------------------------------===//

#include "image/image.h"

#include <cassert>
#include <cmath>

#include "support/strings.h"

namespace diderot {

namespace {

/// Invert a d x d row-major matrix for d in {1,2,3}.
std::vector<double> invertSmall(int D, const std::vector<double> &M) {
  std::vector<double> Out(static_cast<size_t>(D * D), 0.0);
  if (D == 1) {
    Out[0] = 1.0 / M[0];
    return Out;
  }
  if (D == 2) {
    double Det = M[0] * M[3] - M[1] * M[2];
    Out[0] = M[3] / Det;
    Out[1] = -M[1] / Det;
    Out[2] = -M[2] / Det;
    Out[3] = M[0] / Det;
    return Out;
  }
  assert(D == 3 && "images are 1-, 2-, or 3-dimensional");
  Tensor T(Shape{3, 3}, M);
  Tensor Inv = inverse(T);
  return Inv.data();
}

std::vector<double> transposeSmall(int D, const std::vector<double> &M) {
  std::vector<double> Out(static_cast<size_t>(D * D));
  for (int I = 0; I < D; ++I)
    for (int J = 0; J < D; ++J)
      Out[static_cast<size_t>(J * D + I)] = M[static_cast<size_t>(I * D + J)];
  return Out;
}

} // namespace

Image::Image(int Dim, Shape ValueShape, std::vector<int> Sizes)
    : Dim(Dim), ValShape(std::move(ValueShape)),
      NComp(ValShape.numComponents()), Sizes(std::move(Sizes)) {
  assert(Dim >= 1 && Dim <= 3 && "images are 1-, 2-, or 3-dimensional");
  assert(static_cast<int>(this->Sizes.size()) == Dim &&
         "one size per spatial axis");
  size_t N = static_cast<size_t>(NComp);
  for (int S : this->Sizes) {
    assert(S >= 1);
    N *= static_cast<size_t>(S);
  }
  Data.assign(N, 0.0);
  // Identity orientation by default.
  std::vector<double> Id(static_cast<size_t>(Dim * Dim), 0.0);
  for (int I = 0; I < Dim; ++I)
    Id[static_cast<size_t>(I * Dim + I)] = 1.0;
  setOrientation(std::move(Id), std::vector<double>(Dim, 0.0));
}

size_t Image::numSamples() const {
  size_t N = 1;
  for (int S : Sizes)
    N *= static_cast<size_t>(S);
  return N;
}

void Image::setOrientation(std::vector<double> DirIn,
                           std::vector<double> OriginIn) {
  assert(static_cast<int>(DirIn.size()) == Dim * Dim);
  assert(static_cast<int>(OriginIn.size()) == Dim);
  Dir = std::move(DirIn);
  Origin = std::move(OriginIn);
  InvDir = invertSmall(Dim, Dir);
  InvDirT = transposeSmall(Dim, InvDir);
}

void Image::setSpacing(const std::vector<double> &Spacing) {
  assert(static_cast<int>(Spacing.size()) == Dim);
  std::vector<double> D(static_cast<size_t>(Dim * Dim), 0.0);
  for (int I = 0; I < Dim; ++I)
    D[static_cast<size_t>(I * Dim + I)] = Spacing[static_cast<size_t>(I)];
  setOrientation(std::move(D), std::vector<double>(Dim, 0.0));
}

void Image::indexToWorld(const double *Idx, double *World) const {
  for (int R = 0; R < Dim; ++R) {
    double Acc = Origin[static_cast<size_t>(R)];
    for (int C = 0; C < Dim; ++C)
      Acc += Dir[static_cast<size_t>(R * Dim + C)] * Idx[C];
    World[R] = Acc;
  }
}

void Image::worldToIndex(const double *World, double *Idx) const {
  double Tmp[3];
  for (int I = 0; I < Dim; ++I)
    Tmp[I] = World[I] - Origin[static_cast<size_t>(I)];
  for (int R = 0; R < Dim; ++R) {
    double Acc = 0.0;
    for (int C = 0; C < Dim; ++C)
      Acc += InvDir[static_cast<size_t>(R * Dim + C)] * Tmp[C];
    Idx[R] = Acc;
  }
}

double Image::sample(const int *Idx, int C) const {
  size_t Flat = 0, Stride = 1;
  for (int A = 0; A < Dim; ++A) {
    int I = Idx[A];
    int Sz = Sizes[static_cast<size_t>(A)];
    I = I < 0 ? 0 : (I >= Sz ? Sz - 1 : I);
    Flat += static_cast<size_t>(I) * Stride;
    Stride *= static_cast<size_t>(Sz);
  }
  return Data[Flat * static_cast<size_t>(NComp) + static_cast<size_t>(C)];
}

void Image::setSample(const int *Idx, int C, double V) {
  size_t Flat = 0, Stride = 1;
  for (int A = 0; A < Dim; ++A) {
    assert(Idx[A] >= 0 && Idx[A] < Sizes[static_cast<size_t>(A)]);
    Flat += static_cast<size_t>(Idx[A]) * Stride;
    Stride *= static_cast<size_t>(Sizes[static_cast<size_t>(A)]);
  }
  Data[Flat * static_cast<size_t>(NComp) + static_cast<size_t>(C)] = V;
}

Tensor Image::tensorAt(const int *Idx) const {
  Tensor T{ValShape};
  for (int C = 0; C < NComp; ++C)
    T[C] = sample(Idx, C);
  return T;
}

bool Image::insideSupport(const double *Idx, int Support) const {
  // The convolution at fractional position n + f (f in [0,1)) touches
  // samples n + 1 - s ... n + s; all must lie in [0, size-1].
  for (int A = 0; A < Dim; ++A) {
    double X = Idx[A];
    int N = static_cast<int>(std::floor(X));
    if (N + 1 - Support < 0 ||
        N + Support > Sizes[static_cast<size_t>(A)] - 1)
      return false;
  }
  return true;
}

Result<Image> Image::fromNrrd(const Nrrd &N, int ExpectedDim,
                              const Shape &ExpectedShape) {
  using RI = Result<Image>;
  int NComp = ExpectedShape.numComponents();
  int WantAxes = ExpectedDim + (ExpectedShape.isScalar() ? 0 : 1);
  if (N.dimension() != WantAxes)
    return RI::error(strf("NRRD has ", N.dimension(),
                          " axes but the image type needs ", WantAxes));
  int AxisBase = ExpectedShape.isScalar() ? 0 : 1;
  if (!ExpectedShape.isScalar() && N.Sizes[0] != NComp)
    return RI::error(strf("NRRD component axis has ", N.Sizes[0],
                          " samples but the image type needs ", NComp));
  std::vector<int> Sizes;
  for (int A = 0; A < ExpectedDim; ++A)
    Sizes.push_back(N.Sizes[static_cast<size_t>(A + AxisBase)]);

  Image Img(ExpectedDim, ExpectedShape, Sizes);
  // Copy samples: NRRD layout is already component-fastest / x-next.
  size_t Total = N.numSamples();
  if (Total != Img.numSamples() * static_cast<size_t>(NComp))
    return RI::error("NRRD sample count mismatch");
  for (size_t I = 0; I < Total; ++I)
    Img.Data[I] = N.sampleAsDouble(I);

  // Orientation: use space directions when present and complete.
  if (N.SpaceDim == ExpectedDim &&
      static_cast<int>(N.SpaceDirections.size()) == ExpectedDim) {
    std::vector<double> Dir(static_cast<size_t>(ExpectedDim * ExpectedDim),
                            0.0);
    for (int C = 0; C < ExpectedDim; ++C) {
      const std::vector<double> &Col =
          N.SpaceDirections[static_cast<size_t>(C)];
      if (static_cast<int>(Col.size()) != ExpectedDim)
        return RI::error("space direction dimension mismatch");
      for (int R = 0; R < ExpectedDim; ++R)
        Dir[static_cast<size_t>(R * ExpectedDim + C)] =
            Col[static_cast<size_t>(R)];
    }
    std::vector<double> Origin(static_cast<size_t>(ExpectedDim), 0.0);
    if (static_cast<int>(N.SpaceOrigin.size()) == ExpectedDim)
      Origin = N.SpaceOrigin;
    Img.setOrientation(std::move(Dir), std::move(Origin));
  }
  return Img;
}

Nrrd Image::toNrrd(NrrdType Type) const {
  Nrrd N;
  N.Type = Type;
  if (!ValShape.isScalar())
    N.Sizes.push_back(NComp);
  for (int S : Sizes)
    N.Sizes.push_back(S);
  N.SpaceDim = Dim;
  for (int C = 0; C < Dim; ++C) {
    std::vector<double> Col(static_cast<size_t>(Dim));
    for (int R = 0; R < Dim; ++R)
      Col[static_cast<size_t>(R)] = Dir[static_cast<size_t>(R * Dim + C)];
    N.SpaceDirections.push_back(std::move(Col));
  }
  N.SpaceOrigin = Origin;
  N.allocate();
  for (size_t I = 0; I < Data.size(); ++I)
    N.setSampleFromDouble(I, Data[I]);
  return N;
}

} // namespace diderot

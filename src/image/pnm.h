//===--- image/pnm.h - PGM/PPM image writers --------------------------------===//
//
// Part of the Diderot-C++ reproduction (PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tiny writers for the portable graymap/pixmap formats, used by the figure
/// benchmarks and examples to emit the renderings corresponding to the
/// paper's Figures 4, 6, and 8.
///
//===----------------------------------------------------------------------===//

#ifndef DIDEROT_IMAGE_PNM_H
#define DIDEROT_IMAGE_PNM_H

#include <string>
#include <vector>

#include "support/result.h"

namespace diderot {

/// Write \p Pix (row-major, \p W x \p H, values mapped from [\p Lo, \p Hi]
/// to 0..255) as a binary PGM file.
Status writePgm(const std::string &Path, int W, int H,
                const std::vector<double> &Pix, double Lo = 0.0,
                double Hi = 1.0);

/// Write RGB \p Pix (row-major, 3 doubles per pixel in [\p Lo, \p Hi]) as a
/// binary PPM file.
Status writePpm(const std::string &Path, int W, int H,
                const std::vector<double> &Pix, double Lo = 0.0,
                double Hi = 1.0);

} // namespace diderot

#endif // DIDEROT_IMAGE_PNM_H

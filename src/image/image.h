//===--- image/image.h - oriented tensor-valued sample grids --------------===//
//
// Part of the Diderot-C++ reproduction (PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The image abstraction of Section 2/5.3: "Measured image data is discretely
/// sampled on a regular grid ... but the underlying objects being scanned
/// exist in a continuous space, which we call world space. ... An image
/// dataset comes with orientation information that can be represented as a
/// transform M mapping from position in the image's index space to position
/// in world space."
///
/// An Image is a d-dimensional grid (d in {1,2,3}) of tensor-valued samples
/// plus the affine transform M (direction matrix + origin). Probing machinery
/// needs M^{-1} (to take world positions to index space) and M^{-T} (to take
/// index-space gradients back to world space, gradients being covariant);
/// both are precomputed here.
///
/// Sample storage matches NRRD: tensor components form the fastest axis,
/// then the spatial axes, x fastest.
///
//===----------------------------------------------------------------------===//

#ifndef DIDEROT_IMAGE_IMAGE_H
#define DIDEROT_IMAGE_IMAGE_H

#include <vector>

#include "nrrd/nrrd.h"
#include "support/result.h"
#include "tensor/shape.h"
#include "tensor/tensor.h"

namespace diderot {

/// A d-dimensional, tensor-valued, oriented image.
class Image {
public:
  Image() = default;

  /// Create a zero-filled image. \p Sizes has d entries (x fastest). The
  /// orientation defaults to the identity (index space == world space).
  Image(int Dim, Shape ValueShape, std::vector<int> Sizes);

  int dim() const { return Dim; }
  const Shape &valueShape() const { return ValShape; }
  const std::vector<int> &sizes() const { return Sizes; }
  int size(int Axis) const { return Sizes[static_cast<size_t>(Axis)]; }
  /// Components per sample.
  int numComponents() const { return NComp; }
  size_t numSamples() const;

  //===--------------------------------------------------------------------===//
  // Orientation
  //===--------------------------------------------------------------------===//

  /// Set the index->world transform: \p Dir is d x d row-major whose column
  /// j is the world-space step between samples along axis j; \p Origin is
  /// the world position of index (0,...,0). Also computes the inverse maps.
  void setOrientation(std::vector<double> Dir, std::vector<double> Origin);

  /// Convenience: axis-aligned spacing along each axis with origin at 0.
  void setSpacing(const std::vector<double> &Spacing);

  const std::vector<double> &dirMatrix() const { return Dir; }
  const std::vector<double> &origin() const { return Origin; }
  /// Row-major d x d inverse of the direction matrix.
  const std::vector<double> &worldToIndexMatrix() const { return InvDir; }
  /// Row-major d x d M^{-T}: maps index-space gradients to world space.
  const std::vector<double> &gradientTransform() const { return InvDirT; }

  /// Map an index-space position to world space (d entries each).
  void indexToWorld(const double *Idx, double *World) const;
  /// Map a world-space position to (continuous) index space.
  void worldToIndex(const double *World, double *Idx) const;

  //===--------------------------------------------------------------------===//
  // Samples
  //===--------------------------------------------------------------------===//

  /// Flat data, component fastest then x, y, z.
  const std::vector<double> &data() const { return Data; }
  std::vector<double> &data() { return Data; }

  /// Component \p C of the sample at integer coordinates \p Idx (d entries);
  /// coordinates are clamped to the grid.
  double sample(const int *Idx, int C) const;
  /// Set component \p C of the sample at \p Idx (no clamping; must be valid).
  void setSample(const int *Idx, int C, double V);
  /// The full tensor at \p Idx.
  Tensor tensorAt(const int *Idx) const;

  /// True when every integer coordinate n with |n - idx| <= s-1 ... s lies on
  /// the grid; i.e. the separable support of a kernel with radius \p Support
  /// centered at continuous index-space position \p Idx is fully inside.
  /// This is the semantics of Diderot's `inside(x, F)`.
  bool insideSupport(const double *Idx, int Support) const;

  //===--------------------------------------------------------------------===//
  // NRRD conversion
  //===--------------------------------------------------------------------===//

  /// Build an image from a NRRD. \p ExpectedDim / \p ExpectedShape come from
  /// the Diderot-level image type (`image(d)[s]`); the NRRD must match: its
  /// dimension must be d (scalar values) or d+1 with leading component axes
  /// matching the shape. Orientation metadata is honored when present.
  static Result<Image> fromNrrd(const Nrrd &N, int ExpectedDim,
                                const Shape &ExpectedShape);

  /// Serialize to a NRRD with the given sample type.
  Nrrd toNrrd(NrrdType Type = NrrdType::Double) const;

private:
  int Dim = 0;
  Shape ValShape;
  int NComp = 1;
  std::vector<int> Sizes;
  std::vector<double> Dir, Origin, InvDir, InvDirT;
  std::vector<double> Data;
};

} // namespace diderot

#endif // DIDEROT_IMAGE_IMAGE_H

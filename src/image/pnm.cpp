//===--- image/pnm.cpp -----------------------------------------------------===//

#include "image/pnm.h"

#include <algorithm>
#include <fstream>

#include "support/strings.h"

namespace diderot {

namespace {

unsigned char quantize(double V, double Lo, double Hi) {
  double T = (V - Lo) / (Hi - Lo);
  T = std::clamp(T, 0.0, 1.0);
  return static_cast<unsigned char>(T * 255.0 + 0.5);
}

Status writePnm(const std::string &Path, const char *Magic, int W, int H,
                int Comps, const std::vector<double> &Pix, double Lo,
                double Hi) {
  if (static_cast<size_t>(W) * static_cast<size_t>(H) *
          static_cast<size_t>(Comps) !=
      Pix.size())
    return Status::error(strf("pixel count mismatch: ", Pix.size(), " for ",
                              W, "x", H, "x", Comps));
  std::ofstream Out(Path, std::ios::binary);
  if (!Out)
    return Status::error(strf("cannot open '", Path, "' for writing"));
  Out << Magic << "\n" << W << " " << H << "\n255\n";
  std::vector<unsigned char> Row(static_cast<size_t>(W * Comps));
  for (int Y = 0; Y < H; ++Y) {
    for (int X = 0; X < W * Comps; ++X)
      Row[static_cast<size_t>(X)] =
          quantize(Pix[static_cast<size_t>(Y * W * Comps + X)], Lo, Hi);
    Out.write(reinterpret_cast<const char *>(Row.data()),
              static_cast<std::streamsize>(Row.size()));
  }
  if (!Out)
    return Status::error(strf("write to '", Path, "' failed"));
  return Status::ok();
}

} // namespace

Status writePgm(const std::string &Path, int W, int H,
                const std::vector<double> &Pix, double Lo, double Hi) {
  return writePnm(Path, "P5", W, H, 1, Pix, Lo, Hi);
}

Status writePpm(const std::string &Path, int W, int H,
                const std::vector<double> &Pix, double Lo, double Hi) {
  return writePnm(Path, "P6", W, H, 3, Pix, Lo, Hi);
}

} // namespace diderot

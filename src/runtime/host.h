//===--- runtime/host.h - the host-side program interface -------------------===//
//
// Part of the Diderot-C++ reproduction (PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The interface through which a host application drives a Diderot program,
/// regardless of engine: the interpreter engine implements it directly over
/// MidIR; the native engine's generated C++ implements it in the emitted
/// shared object ("Diderot's runtime has been designed to allow Diderot
/// programs to be embedded as libraries in any host language that supports
/// calling C code" — Section 7).
///
/// Protocol: set inputs -> initialize() -> run(...) -> read outputs.
///
/// Multi-instance contract (what the serve daemon relies on): any number of
/// ProgramInstance objects — of the same program or different programs —
/// may coexist in one process and run() concurrently on different threads.
/// Instances share nothing mutable: each owns its inputs, globals, strand
/// state, and outputs. Interp instances own a private copy of the MidIR
/// module; native instances are objects created inside a dlopen'd shared
/// object, which stays mapped for the life of the process (the loader's
/// library cache never dlcloses, so instances may outlive the
/// CompiledProgram that made them). A single instance is NOT itself
/// thread-safe — drive it from one thread at a time; the documented
/// exceptions are liveMetrics() and the const statistics accessors.
///
//===----------------------------------------------------------------------===//

#ifndef DIDEROT_RUNTIME_HOST_H
#define DIDEROT_RUNTIME_HOST_H

#include <cstdint>
#include <string>
#include <vector>

#include "image/image.h"
#include "observe/digest.h"
#include "observe/profiler.h"
#include "runtime/scheduler.h"
#include "support/result.h"
#include "support/trace.h"
#include "tensor/shape.h"

namespace diderot::rt {

/// Description of one program input.
struct InputDesc {
  std::string Name;
  std::string TypeName; ///< Diderot type syntax
  bool HasDefault = false;
};

/// Description of one output (an `output` strand state variable).
struct OutputDesc {
  std::string Name;
  Shape ValShape;     ///< per-strand tensor shape ([] for int outputs too)
  bool IsInt = false; ///< int-typed output
};

/// Everything run() needs to know: scheduling shape plus which observability
/// layers to arm. All collection is off by default and costs nothing when
/// off.
struct RunConfig {
  int MaxSupersteps = 1;
  /// <= 0 selects the sequential scheduler; >= 1 the worker pool.
  int NumWorkers = 0;
  int BlockSize = DefaultBlockSize;
  /// Which parallel substrate runs the supersteps when NumWorkers >= 1:
  /// Bsp (the paper's fresh-threads + shared work-list model) or Pooled
  /// (persistent StrandPool with intra-superstep block stealing; see
  /// docs/SCHEDULING.md). Ignored by the sequential scheduler. Old native
  /// .so files that predate the scheduler flag silently run Bsp.
  Scheduler Sched = Scheduler::Bsp;
  /// Per-superstep / per-worker telemetry (observe::Recorder).
  bool CollectStats = false;
  /// Source-level (line, op-class) counters (observe::Profiler); results are
  /// read back through ProgramInstance::profile().
  bool CollectProfile = false;
  /// Per-strand start/stabilize/die events (implies stats collection; the
  /// events ride in RunStats::Events).
  bool CollectLifecycle = false;
  /// Metrics registry: superstep/imbalance/claim-latency histograms and the
  /// live-run gauges (implies stats collection). Results ride in
  /// RunStats::Metrics; a running instance can be scraped concurrently
  /// through liveMetrics().
  bool CollectMetrics = false;
  /// Capture a 128-bit canonical state digest per superstep (entry 0 =
  /// post-initialize) for record/replay (docs/REPLAY.md); read back through
  /// digestLog(). Native .so files older than ABI v7 degrade gracefully:
  /// the run succeeds but digestLog() has no per-step entries.
  bool CollectDigests = false;
  /// Additionally retain the full canonicalized per-strand state behind
  /// every digest entry (memory: entries x strands x (1 + slots) words).
  /// Implies CollectDigests. Powers first-divergent-strand diagnosis and
  /// --dump-strand; leave off for plain digest recording of large grids.
  bool CollectStateLog = false;
  /// Fault-containment limits: deadline, fault budget, convergence
  /// watchdog, strict-fp, injection plan. Inert by default (Policy.active()
  /// false) — the schedulers then skip every policy branch and runs behave
  /// exactly as before.
  RunPolicy Policy;
  /// Request-trace context of the enclosing job (docs/TRACING.md). Host-side
  /// only: it never crosses the dlopen ABI (native_load.cpp translates
  /// RunConfig into flat C calls), so engines ignore it; the serve daemon
  /// reads it back out of the config it passed in to stamp run spans and
  /// log records with the job's trace id.
  tracing::TraceContext Trace;
};

/// A running (or runnable) instance of a compiled Diderot program.
class ProgramInstance {
public:
  virtual ~ProgramInstance() = default;

  // -- Introspection ------------------------------------------------------
  virtual std::vector<InputDesc> inputs() const = 0;
  virtual std::vector<OutputDesc> outputs() const = 0;

  // -- Inputs (before initialize) ------------------------------------------
  virtual Status setInputReal(const std::string &Name, double V) = 0;
  virtual Status setInputInt(const std::string &Name, int64_t V) = 0;
  virtual Status setInputBool(const std::string &Name, bool V) = 0;
  virtual Status setInputString(const std::string &Name,
                                const std::string &V) = 0;
  /// Tensor-typed input; \p Components in row-major order.
  virtual Status setInputTensor(const std::string &Name,
                                const std::vector<double> &Components) = 0;
  /// Image-typed input; the image is copied into the instance.
  virtual Status setInputImage(const std::string &Name, const Image &Img) = 0;

  // -- Lifecycle ------------------------------------------------------------
  /// Apply input defaults, evaluate the globals, create the initial strands.
  virtual Status initialize() = 0;

  /// Run bulk-synchronous supersteps until every strand is stable or dead,
  /// or \p MaxSupersteps elapse. \p NumWorkers <= 0 selects the sequential
  /// scheduler (a plain loop nest); >= 1 uses the pthread-style worker pool
  /// with that many workers (1P measures the scheduler's own overhead).
  /// \p BlockSize is the work-list granularity (strands per block).
  ///
  /// The returned RunStats always carries the superstep count (Steps),
  /// worker count, and wall time; when \p C.CollectStats is set it also
  /// carries per-superstep and per-worker telemetry (see observe/recorder.h
  /// and the exporters in observe/observe.h); with \p C.CollectLifecycle,
  /// per-strand lifecycle events; with \p C.CollectProfile, the source-level
  /// profile readable through profile() afterwards.
  virtual Result<RunStats> run(const RunConfig &C) = 0;

  /// Convenience wrapper preserving the pre-RunConfig signature.
  Result<RunStats> run(int MaxSupersteps, int NumWorkers,
                       int BlockSize = DefaultBlockSize,
                       bool CollectStats = false) {
    RunConfig C;
    C.MaxSupersteps = MaxSupersteps;
    C.NumWorkers = NumWorkers;
    C.BlockSize = BlockSize;
    C.CollectStats = CollectStats;
    return run(C);
  }

  /// Source-level profile of the most recent profiled run (Enabled=false if
  /// the last run did not collect one, or the engine cannot profile).
  virtual observe::ProfileData profile() const { return {}; }

  /// Point-in-time registry snapshot (Enabled=false when the engine cannot
  /// report metrics or no metrics-armed run has started). Safe to call from
  /// another thread while run() executes — the snapshot only loads the
  /// registry's merged atomics — which is what the driver's embedded
  /// `/metrics` endpoint does for long-running programs.
  virtual observe::MetricsData liveMetrics() const { return {}; }

  /// Digest log of the most recent run with CollectDigests set, or nullptr
  /// when the last run did not record (or the engine/ABI cannot). The
  /// pointer stays valid until the next run() or destruction.
  virtual const observe::DigestLog *digestLog() const { return nullptr; }

  // -- Outputs (after run) --------------------------------------------------
  /// Grid dimensions for grid-initialized programs (first iterator is the
  /// slowest axis); for collections, one dimension = number of stable
  /// strands.
  virtual std::vector<int> outputDims() const = 0;
  /// Fetch output \p Name: \p Data receives per-strand components (strand
  /// major, components fastest). Dead strands of a grid contribute zeros.
  virtual Status getOutput(const std::string &Name,
                           std::vector<double> &Data) const = 0;

  // -- Statistics -----------------------------------------------------------
  virtual size_t numStrands() const = 0;
  virtual size_t numStable() const = 0;
  virtual size_t numDead() const = 0;
  /// Strands parked in StrandStatus::Faulted by the most recent run's trap
  /// boundaries (0 when no policy was active). Faulted strands are not
  /// counted by numStable()/numDead() and contribute zeros to grid outputs.
  virtual size_t numFaulted() const { return 0; }
};

/// Factory signature exported (extern "C") by generated shared objects as
/// the symbol "diderot_create_instance".
using CreateInstanceFn = ProgramInstance *(*)();

} // namespace diderot::rt

#endif // DIDEROT_RUNTIME_HOST_H

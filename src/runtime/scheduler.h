//===--- runtime/scheduler.h - bulk-synchronous strand scheduling -----------===//
//
// Part of the Diderot-C++ reproduction (PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The strand execution model of Sections 3.3 and 5.5: "Diderot uses a
/// bulk-synchronous parallelism model. In this model, execution is divided
/// into super steps; during a super-step each strand's update method is
/// evaluated once. The program executes until all of the strands are either
/// stabilized or dead.
///
/// For the sequential target, the runtime implements this model as a loop
/// nest, with the outer loop iterating once per super-step and the inner
/// loop iterating once per strand. The parallel version ... creates a
/// collection of worker threads (the default is one per hardware core) and
/// manages a work-list of strands. To keep synchronization overhead low, the
/// strands in the work-list are organized into blocks of strands (currently
/// 4096 strands per block). During a super-step, each worker grabs and
/// updates strands until the work-list is empty. Barrier synchronization is
/// used to coordinate the threads at the end of a super step."
///
/// Both schedulers are templates over the update callable so the interpreter
/// engine and compiled native programs share them.
///
//===----------------------------------------------------------------------===//

#ifndef DIDEROT_RUNTIME_SCHEDULER_H
#define DIDEROT_RUNTIME_SCHEDULER_H

#include <barrier>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <type_traits>
#include <vector>

#include "observe/recorder.h"

namespace diderot::rt {

/// Telemetry types surface through the runtime namespace so host code can
/// say rt::RunStats (collection lives in observe/recorder.h, the fault
/// model in observe/fault.h).
using observe::RunStats;
using observe::RunOutcome;
using observe::FaultKind;
using observe::StrandFault;

/// Lifecycle state of one strand.
enum class StrandStatus : uint8_t {
  Active,  ///< will be updated next superstep
  Stable,  ///< stabilized; state is part of the output
  Dead,    ///< died; produces no output
  Faulted, ///< trapped fault; parked, produces no output
};

/// The paper's work-list granularity.
constexpr int DefaultBlockSize = 4096;

/// Declarative limits on a run, threaded through both schedulers and both
/// engines. The default-constructed policy is inert (active() is false) and
/// the schedulers skip every policy branch, so runs without limits pay
/// nothing.
struct RunPolicy {
  int64_t DeadlineNs = 0;  ///< wall-clock budget in ns; 0 = unlimited
  int64_t MaxFaults = -1;  ///< strand faults tolerated; -1 = unlimited
  int WatchdogSteps = 0;   ///< K supersteps with zero retirements =>
                           ///< Diverged; 0 = watchdog off
  bool StrictFp = false;   ///< engines reject non-finite strand state
  observe::FaultPlan Plan; ///< deterministic fault injection (tests)

  bool active() const {
    return DeadlineNs > 0 || MaxFaults >= 0 || WatchdogSteps > 0 ||
           StrictFp || !Plan.empty();
  }
};

/// Shared run-control state for one policied run: the deadline clock, the
/// stop flag, fault records, and the convergence watchdog. Workers call the
/// const-ish query/record methods; only the scheduler coordinator calls
/// begin/setStep/stepEnd/finish/takeFaults.
///
/// Threading: CurStep and QuietSteps are plain fields written by the
/// coordinator strictly between superstep barriers (or single-threaded),
/// so the barriers order them against worker reads. Fault records go into
/// per-worker rows (same ownership discipline as Recorder spans). The stop
/// flag and counters are relaxed atomics — stopping is advisory and
/// monotonic, so no ordering beyond the barriers is needed.
class RunControl {
public:
  explicit RunControl(const RunPolicy &P) : Policy(P) {}

  const RunPolicy &policy() const { return Policy; }

  /// Coordinator, once before the superstep loop: reset state and size the
  /// per-worker fault rows (a sequential run passes 0 and gets one row).
  void begin(int NumWorkers) {
    Rows.assign(static_cast<size_t>(NumWorkers < 1 ? 1 : NumWorkers), {});
    NFaults.store(0, std::memory_order_relaxed);
    StopCode.store(-1, std::memory_order_relaxed);
    Stop.store(false, std::memory_order_relaxed);
    RetiredThisStep.store(0, std::memory_order_relaxed);
    QuietSteps = 0;
    CurStep = 0;
    T0 = Clock::now();
  }

  /// Coordinator only, between barriers: the superstep about to run.
  void setStep(int S) { CurStep = S; }
  int curStep() const { return CurStep; }

  /// Nanoseconds since begin() on the monotonic clock.
  uint64_t nowNs() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             T0)
            .count());
  }

  bool stopRequested() const {
    return Stop.load(std::memory_order_relaxed);
  }

  /// First stop reason wins; later requests only reassert the flag.
  void requestStop(RunOutcome O) {
    int Expected = -1;
    StopCode.compare_exchange_strong(Expected, static_cast<int>(O),
                                     std::memory_order_relaxed);
    Stop.store(true, std::memory_order_relaxed);
  }

  /// Check the wall-clock budget; on expiry request a Deadline stop. False
  /// fast (one comparison) when the policy has no deadline.
  bool deadlineExpired() {
    if (Policy.DeadlineNs <= 0)
      return false;
    if (static_cast<int64_t>(nowNs()) < Policy.DeadlineNs)
      return false;
    requestStop(RunOutcome::Deadline);
    return true;
  }

  /// The planned injection for \p Strand in the current superstep, or null.
  const observe::PlannedFault *injectAt(uint64_t Strand) const {
    return Policy.Plan.match(Strand, CurStep);
  }

  /// Worker \p W records a trapped fault for \p Strand. Each worker owns
  /// its row; the fault-budget check rides on the shared atomic count.
  void recordFault(int W, uint64_t Strand, FaultKind K, std::string Msg) {
    StrandFault F;
    F.Strand = Strand;
    F.Step = CurStep;
    F.Worker = W;
    F.Kind = K;
    F.Ns = nowNs();
    F.Message = std::move(Msg);
    Rows[static_cast<size_t>(W)].push_back(std::move(F));
    int64_t Count = NFaults.fetch_add(1, std::memory_order_relaxed) + 1;
    if (Policy.MaxFaults >= 0 && Count > Policy.MaxFaults)
      requestStop(RunOutcome::FaultBudget);
  }

  /// A strand left the Active state this superstep (stabilized, died, or
  /// faulted) — progress, as far as the watchdog is concerned.
  void noteRetired(uint64_t N = 1) {
    RetiredThisStep.fetch_add(N, std::memory_order_relaxed);
  }

  /// Coordinator, after each superstep's barrier: roll the watchdog and
  /// report whether the run must stop.
  bool stepEnd() {
    uint64_t Ret = RetiredThisStep.exchange(0, std::memory_order_relaxed);
    if (stopRequested())
      return true;
    if (Policy.WatchdogSteps > 0) {
      QuietSteps = Ret == 0 ? QuietSteps + 1 : 0;
      if (QuietSteps >= Policy.WatchdogSteps) {
        requestStop(RunOutcome::Diverged);
        return true;
      }
    }
    return false;
  }

  /// After the scheduler returns: resolve the verdict. \p Quiesced is
  /// whether no strand remains Active.
  RunOutcome finish(bool Quiesced) {
    int Code = StopCode.load(std::memory_order_relaxed);
    Verdict = Code >= 0 ? static_cast<RunOutcome>(Code)
              : Quiesced ? RunOutcome::Converged
                         : RunOutcome::StepLimit;
    return Verdict;
  }

  RunOutcome outcome() const { return Verdict; }

  int64_t faultCount() const {
    return NFaults.load(std::memory_order_relaxed);
  }

  /// Coordinator, after workers joined: merge the per-worker fault rows
  /// into one timestamp-ordered list.
  std::vector<StrandFault> takeFaults() {
    std::vector<StrandFault> Out;
    for (std::vector<StrandFault> &Row : Rows) {
      Out.insert(Out.end(), std::make_move_iterator(Row.begin()),
                 std::make_move_iterator(Row.end()));
      Row.clear();
    }
    std::sort(Out.begin(), Out.end(),
              [](const StrandFault &A, const StrandFault &B) {
                return A.Ns != B.Ns ? A.Ns < B.Ns : A.Strand < B.Strand;
              });
    return Out;
  }

private:
  using Clock = std::chrono::steady_clock;
  RunPolicy Policy;
  Clock::time_point T0{};
  int CurStep = 0;    // coordinator-written, barrier-ordered
  int QuietSteps = 0; // coordinator-only
  RunOutcome Verdict = RunOutcome::Converged;
  std::vector<std::vector<StrandFault>> Rows;
  std::atomic<int64_t> NFaults{0};
  std::atomic<int> StopCode{-1};
  std::atomic<bool> Stop{false};
  std::atomic<uint64_t> RetiredThisStep{0};
};

namespace detail {
/// Update callables come in two shapes: the classic Update(strandIndex) and
/// the worker-aware Update(strandIndex, workerId) used by profiled runs
/// (the worker id selects the profiler shard). Dispatch on invocability so
/// existing call sites keep compiling unchanged.
template <typename UpdateFn>
inline StrandStatus callUpdate(UpdateFn &Update, size_t I, int W) {
  if constexpr (std::is_invocable_v<UpdateFn &, size_t, int>)
    return Update(I, W);
  else
    return Update(I);
}

/// The trap boundary: run one strand update with fault containment. A
/// planned Exception injection throws a real std::runtime_error so the
/// catch path below is the one exercised; any escaping C++ exception is
/// converted into a recorded StrandFault and the strand parks in Faulted
/// instead of tearing down the process (an exception escaping a worker
/// lambda would otherwise call std::terminate).
template <typename UpdateFn>
inline StrandStatus trappedUpdate(UpdateFn &Update, size_t I, int W,
                                  RunControl &Ctl) {
  FaultKind Kind = FaultKind::Exception;
  try {
    if (const observe::PlannedFault *P =
            Ctl.injectAt(static_cast<uint64_t>(I))) {
      Kind = P->Kind;
      if (P->Kind == FaultKind::Exception)
        throw std::runtime_error("injected C++ exception");
      Ctl.recordFault(W, static_cast<uint64_t>(I), P->Kind,
                      "injected fault");
      return StrandStatus::Faulted;
    }
    return callUpdate(Update, I, W);
  } catch (const std::exception &E) {
    Ctl.recordFault(W, static_cast<uint64_t>(I), Kind, E.what());
  } catch (...) {
    Ctl.recordFault(W, static_cast<uint64_t>(I), Kind,
                    "unknown C++ exception");
  }
  return StrandStatus::Faulted;
}
} // namespace detail

/// Run supersteps sequentially until no strand is active or \p MaxSteps is
/// reached. \p Update is invoked as Update(strandIndex) and returns the
/// strand's new status. Returns the number of supersteps executed.
///
/// When \p Rec is non-null, each superstep is recorded as one span on
/// timeline row 0 (Rec must have been start()ed). The strand counters are
/// accumulated in locals either way — their cost is a few registers per
/// superstep — so the disabled path stays overhead-free.
///
/// When \p Ctl is non-null the run is policied: updates go through the trap
/// boundary (detail::trappedUpdate), the deadline is checked per strand,
/// and the coordinator consults the watchdog/stop state after each
/// superstep. Ctl->begin() is called here; the caller resolves the verdict
/// with Ctl->finish() afterwards. Faulted strands count toward
/// Span.Updated but not Stabilized/Died — fault accounting is separate
/// (RunControl::takeFaults, RunStats::Faults).
///
/// The policy dimension is a compile-time split (detail::runSequentialImpl
/// is templated on it), so the unpolicied path carries no per-strand branch
/// for the fault machinery at all.
namespace detail {
template <bool Policied, typename UpdateFn>
int runSequentialImpl(std::vector<StrandStatus> &Status, UpdateFn &Update,
                      int MaxSteps, observe::Recorder *Rec,
                      RunControl *Ctl) {
  int Steps = 0;
  size_t N = Status.size();
  const bool Trace = Rec && Rec->lifecycle();
  if constexpr (Policied)
    Ctl->begin(0);
  while (Steps < MaxSteps) {
    if constexpr (Policied)
      Ctl->setStep(Steps);
    observe::WorkerSpan Span;
    if (Rec)
      Span.BeginNs = Rec->nowNs();
    bool Any = false;
    for (size_t I = 0; I < N; ++I) {
      if (Status[I] != StrandStatus::Active)
        continue;
      if constexpr (Policied)
        if (Ctl->stopRequested() || Ctl->deadlineExpired())
          break;
      Any = true;
      if (Trace && Steps == 0)
        Rec->event(0, {static_cast<uint64_t>(I), Steps,
                       observe::StrandEventKind::Start, 0, Rec->nowNs()});
      StrandStatus S;
      if constexpr (Policied)
        S = trappedUpdate(Update, I, 0, *Ctl);
      else
        S = callUpdate(Update, I, 0);
      Status[I] = S;
      ++Span.Updated;
      Span.Stabilized += S == StrandStatus::Stable;
      Span.Died += S == StrandStatus::Dead;
      if constexpr (Policied)
        if (S != StrandStatus::Active)
          Ctl->noteRetired();
      if (Trace && S != StrandStatus::Active)
        Rec->event(0, {static_cast<uint64_t>(I), Steps,
                       S == StrandStatus::Stable
                           ? observe::StrandEventKind::Stabilize
                       : S == StrandStatus::Dead
                           ? observe::StrandEventKind::Die
                           : observe::StrandEventKind::Fault,
                       0, Rec->nowNs()});
    }
    if (!Any)
      break;
    if (Rec) {
      Span.EndNs = Rec->nowNs();
      Rec->beginStep(Steps);
      Rec->commit(0, Span);
      if (observe::Metrics *MX = Rec->metrics()) {
        uint64_t Live = 0;
        for (StrandStatus St : Status)
          Live += St == StrandStatus::Active;
        MX->gauge(observe::MgLiveStrands).set(static_cast<int64_t>(Live));
        MX->gauge(observe::MgWorklistDepth).set(0);
      }
    }
    ++Steps;
    if constexpr (Policied)
      if (Ctl->stepEnd())
        break;
  }
  return Steps;
}
} // namespace detail

template <typename UpdateFn>
int runSequential(std::vector<StrandStatus> &Status, UpdateFn &&Update,
                  int MaxSteps, observe::Recorder *Rec = nullptr,
                  RunControl *Ctl = nullptr) {
  if (Ctl)
    return detail::runSequentialImpl<true>(Status, Update, MaxSteps, Rec,
                                           Ctl);
  return detail::runSequentialImpl<false>(Status, Update, MaxSteps, Rec,
                                          nullptr);
}

/// Parallel supersteps with \p NumWorkers worker threads pulling blocks of
/// \p BlockSize strands from a lock-guarded work-list, with a barrier at the
/// end of each superstep. Returns the number of supersteps executed.
///
/// When \p Rec is non-null it records one span per worker per superstep
/// (timeline row = worker index). Workers only ever write their own row and
/// the superstep barriers order those writes against the coordinator's
/// beginStep()/take(), so the span paths are race-free by construction; the
/// Recorder's run-wide atomics are the only shared counters.
///
/// When \p Ctl is non-null the run is policied (see runSequential). A stop
/// requested mid-superstep — deadline expiry, fault budget — makes every
/// worker fall out of its strand and block loops, but each still commits
/// its span and reaches both barriers, so the superstep completes cleanly:
/// no hung workers, no torn Recorder rows. The coordinator then observes
/// the stop in Ctl->stepEnd() and shuts the pool down through the normal
/// Done path. As with runSequential, the policy dimension is a
/// compile-time split: the unpolicied worker loop is the pre-fault-runtime
/// loop, branch for branch.
namespace detail {
template <bool Policied, typename UpdateFn>
int runParallelImpl(std::vector<StrandStatus> &Status, UpdateFn &Update,
                    int MaxSteps, int NumWorkers, int BlockSize,
                    observe::Recorder *Rec, RunControl *Ctl) {

  const size_t N = Status.size();
  const size_t NumBlocks = (N + static_cast<size_t>(BlockSize) - 1) /
                           static_cast<size_t>(BlockSize);

  // Work-list state, rebuilt by the coordinator each superstep.
  std::vector<uint32_t> ActiveBlocks;
  ActiveBlocks.reserve(NumBlocks);
  std::mutex WorkLock;
  size_t NextBlock = 0;
  bool Done = false;

  // Two rendezvous per superstep: workers wait for the work-list, then the
  // coordinator waits for all updates to finish.
  std::barrier Sync(NumWorkers + 1);

  const bool Trace = Rec && Rec->lifecycle();
  // Armed metrics registry, or null. Hoisted so the hot paths pay a single
  // pointer test; the unarmed run is branch-for-branch the old loop.
  observe::Metrics *const MX = Rec ? Rec->metrics() : nullptr;
  auto Worker = [&](int W) {
    // Workers learn the superstep number by counting barrier iterations;
    // the coordinator's Steps counter advances in lock-step with them.
    int StepNo = 0;
    // This worker's private claim-latency shard; merged by the coordinator
    // at superstep barriers (observe/metrics.h documents the contract).
    observe::HistCell *const ClaimCell =
        MX ? &MX->hist(observe::MhClaimNs).cell(W) : nullptr;
    for (;;) {
      Sync.arrive_and_wait(); // work-list published
      if (Done)
        return;
      observe::WorkerSpan Span;
      if (Rec)
        Span.BeginNs = Rec->nowNs();
      bool Stopping = false;
      for (;;) {
        size_t Idx;
        if (ClaimCell) {
          uint64_t C0 = Rec->nowNs();
          {
            std::lock_guard<std::mutex> G(WorkLock);
            Idx = NextBlock++;
          }
          ClaimCell->record(Rec->nowNs() - C0);
        } else {
          std::lock_guard<std::mutex> G(WorkLock);
          Idx = NextBlock++;
        }
        ++Span.LockAcquires;
        if (Idx >= ActiveBlocks.size())
          break;
        ++Span.BlocksClaimed;
        size_t Block = ActiveBlocks[Idx];
        size_t Lo = Block * static_cast<size_t>(BlockSize);
        size_t Hi = std::min(N, Lo + static_cast<size_t>(BlockSize));
        for (size_t I = Lo; I < Hi; ++I) {
          if (Status[I] != StrandStatus::Active)
            continue;
          if constexpr (Policied)
            if (Ctl->stopRequested() || Ctl->deadlineExpired()) {
              Stopping = true;
              break;
            }
          if (Trace && StepNo == 0)
            Rec->event(W, {static_cast<uint64_t>(I), StepNo,
                           observe::StrandEventKind::Start, W, Rec->nowNs()});
          StrandStatus S;
          if constexpr (Policied)
            S = trappedUpdate(Update, I, W, *Ctl);
          else
            S = callUpdate(Update, I, W);
          Status[I] = S;
          ++Span.Updated;
          Span.Stabilized += S == StrandStatus::Stable;
          Span.Died += S == StrandStatus::Dead;
          if constexpr (Policied)
            if (S != StrandStatus::Active)
              Ctl->noteRetired();
          if (Trace && S != StrandStatus::Active)
            Rec->event(W, {static_cast<uint64_t>(I), StepNo,
                           S == StrandStatus::Stable
                               ? observe::StrandEventKind::Stabilize
                           : S == StrandStatus::Dead
                               ? observe::StrandEventKind::Die
                               : observe::StrandEventKind::Fault,
                           W, Rec->nowNs()});
        }
        if (Stopping)
          break; // fall through to the barriers; coordinator handles stop
      }
      ++StepNo;
      if (Rec) {
        Span.EndNs = Rec->nowNs();
        Span.BarrierWaits = 2; // this superstep's two rendezvous
        Rec->commit(W, Span);
      }
      Sync.arrive_and_wait(); // superstep complete
    }
  };

  std::vector<std::thread> Threads;
  Threads.reserve(static_cast<size_t>(NumWorkers));
  for (int W = 0; W < NumWorkers; ++W)
    Threads.emplace_back(Worker, W);

  if constexpr (Policied)
    Ctl->begin(NumWorkers);
  int Steps = 0;
  while (Steps < MaxSteps) {
    ActiveBlocks.clear();
    for (size_t B = 0; B < NumBlocks; ++B) {
      size_t Lo = B * static_cast<size_t>(BlockSize);
      size_t Hi = std::min(N, Lo + static_cast<size_t>(BlockSize));
      for (size_t I = Lo; I < Hi; ++I)
        if (Status[I] == StrandStatus::Active) {
          ActiveBlocks.push_back(static_cast<uint32_t>(B));
          break;
        }
    }
    if (MX) {
      // Between barriers: the previous superstep is complete and workers
      // are parked, so this is the superstep-boundary view live scrapes see.
      uint64_t Live = 0;
      for (StrandStatus St : Status)
        Live += St == StrandStatus::Active;
      MX->gauge(observe::MgLiveStrands).set(static_cast<int64_t>(Live));
      MX->gauge(observe::MgWorklistDepth)
          .set(static_cast<int64_t>(ActiveBlocks.size()));
    }
    if (ActiveBlocks.empty())
      break;
    NextBlock = 0;
    if (Rec)
      Rec->beginStep(Steps); // before workers can commit this superstep
    if constexpr (Policied)
      Ctl->setStep(Steps); // barrier below orders this for workers
    Sync.arrive_and_wait(); // release workers
    Sync.arrive_and_wait(); // wait for completion
    ++Steps;
    if constexpr (Policied)
      if (Ctl->stepEnd())
        break;
  }
  Done = true;
  Sync.arrive_and_wait(); // release workers into shutdown
  for (std::thread &T : Threads)
    T.join();
  return Steps;
}
} // namespace detail

template <typename UpdateFn>
int runParallel(std::vector<StrandStatus> &Status, UpdateFn &&Update,
                int MaxSteps, int NumWorkers, int BlockSize = DefaultBlockSize,
                observe::Recorder *Rec = nullptr, RunControl *Ctl = nullptr) {
  // NumWorkers == 1 still runs the full work-list machinery (one worker
  // thread, lock, barrier) so that the paper's "Seq" vs "1P" comparison —
  // the cost of the scheduler itself — is measurable.
  if (NumWorkers < 1)
    return runSequential(Status, Update, MaxSteps, Rec, Ctl);
  if (BlockSize <= 0)
    BlockSize = DefaultBlockSize;
  if (Ctl)
    return detail::runParallelImpl<true>(Status, Update, MaxSteps, NumWorkers,
                                         BlockSize, Rec, Ctl);
  return detail::runParallelImpl<false>(Status, Update, MaxSteps, NumWorkers,
                                        BlockSize, Rec, nullptr);
}

} // namespace diderot::rt

#endif // DIDEROT_RUNTIME_SCHEDULER_H

//===--- runtime/scheduler.h - bulk-synchronous strand scheduling -----------===//
//
// Part of the Diderot-C++ reproduction (PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The strand execution model of Sections 3.3 and 5.5: "Diderot uses a
/// bulk-synchronous parallelism model. In this model, execution is divided
/// into super steps; during a super-step each strand's update method is
/// evaluated once. The program executes until all of the strands are either
/// stabilized or dead.
///
/// For the sequential target, the runtime implements this model as a loop
/// nest, with the outer loop iterating once per super-step and the inner
/// loop iterating once per strand. The parallel version ... creates a
/// collection of worker threads (the default is one per hardware core) and
/// manages a work-list of strands. To keep synchronization overhead low, the
/// strands in the work-list are organized into blocks of strands (currently
/// 4096 strands per block). During a super-step, each worker grabs and
/// updates strands until the work-list is empty. Barrier synchronization is
/// used to coordinate the threads at the end of a super step."
///
/// Both schedulers are templates over the update callable so the interpreter
/// engine and compiled native programs share them.
///
//===----------------------------------------------------------------------===//

#ifndef DIDEROT_RUNTIME_SCHEDULER_H
#define DIDEROT_RUNTIME_SCHEDULER_H

#include <atomic>
#include <barrier>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <type_traits>
#include <vector>

#include "observe/recorder.h"

namespace diderot::rt {

/// Telemetry types surface through the runtime namespace so host code can
/// say rt::RunStats (collection lives in observe/recorder.h, the fault
/// model in observe/fault.h).
using observe::RunStats;
using observe::RunOutcome;
using observe::FaultKind;
using observe::StrandFault;

/// Lifecycle state of one strand.
enum class StrandStatus : uint8_t {
  Active,  ///< will be updated next superstep
  Stable,  ///< stabilized; state is part of the output
  Dead,    ///< died; produces no output
  Faulted, ///< trapped fault; parked, produces no output
};

/// The paper's work-list granularity.
constexpr int DefaultBlockSize = 4096;

/// Coordinator-side superstep hook (flight recorder, docs/REPLAY.md):
/// invoked with the just-completed 0-based superstep index after that
/// superstep's second barrier, when every worker is parked at the next
/// release barrier — so the strand states and the status vector are
/// barrier-ordered and safe to read without synchronization. Null (the
/// default everywhere) costs one pointer test per superstep.
using StepHook = std::function<void(int)>;

/// Which substrate runs the supersteps. Bsp is the paper's model: a fresh
/// thread set per run pulling blocks off one lock-guarded work-list.
/// Pooled keeps the BSP semantics observable at superstep boundaries but
/// executes on the process-wide persistent StrandPool, with per-worker
/// deques and block stealing inside a superstep. The sequential scheduler
/// is selected by NumWorkers <= 0, not here.
enum class Scheduler : int {
  Bsp = 0,
  Pooled = 1,
};

/// The CLI / HTTP-header vocabulary ("--scheduler=bsp|pooled",
/// "X-Diderot-Scheduler: pooled").
inline const char *schedulerName(Scheduler S) {
  return S == Scheduler::Pooled ? "pooled" : "bsp";
}

/// Parse the vocabulary above; returns false (Out untouched) on anything
/// else so callers can report the bad value.
inline bool parseSchedulerName(const std::string &Name, Scheduler &Out) {
  if (Name == "bsp") {
    Out = Scheduler::Bsp;
    return true;
  }
  if (Name == "pooled") {
    Out = Scheduler::Pooled;
    return true;
  }
  return false;
}

/// Declarative limits on a run, threaded through both schedulers and both
/// engines. The default-constructed policy is inert (active() is false) and
/// the schedulers skip every policy branch, so runs without limits pay
/// nothing.
struct RunPolicy {
  int64_t DeadlineNs = 0;  ///< wall-clock budget in ns; 0 = unlimited
  int64_t MaxFaults = -1;  ///< strand faults tolerated; -1 = unlimited
  int WatchdogSteps = 0;   ///< K supersteps with zero retirements =>
                           ///< Diverged; 0 = watchdog off
  bool StrictFp = false;   ///< engines reject non-finite strand state
  observe::FaultPlan Plan; ///< deterministic fault injection (tests)

  bool active() const {
    return DeadlineNs > 0 || MaxFaults >= 0 || WatchdogSteps > 0 ||
           StrictFp || !Plan.empty();
  }
};

/// Shared run-control state for one policied run: the deadline clock, the
/// stop flag, fault records, and the convergence watchdog. Workers call the
/// const-ish query/record methods; only the scheduler coordinator calls
/// begin/setStep/stepEnd/finish/takeFaults.
///
/// Threading: CurStep and QuietSteps are plain fields written by the
/// coordinator strictly between superstep barriers (or single-threaded),
/// so the barriers order them against worker reads. Fault records go into
/// per-worker rows (same ownership discipline as Recorder spans). The stop
/// flag and counters are relaxed atomics — stopping is advisory and
/// monotonic, so no ordering beyond the barriers is needed.
class RunControl {
public:
  explicit RunControl(const RunPolicy &P) : Policy(P) {}

  const RunPolicy &policy() const { return Policy; }

  /// Coordinator, once before the superstep loop: reset state and size the
  /// per-worker fault rows (a sequential run passes 0 and gets one row).
  void begin(int NumWorkers) {
    Rows.assign(static_cast<size_t>(NumWorkers < 1 ? 1 : NumWorkers), {});
    NFaults.store(0, std::memory_order_relaxed);
    StopCode.store(-1, std::memory_order_relaxed);
    Stop.store(false, std::memory_order_relaxed);
    RetiredThisStep.store(0, std::memory_order_relaxed);
    QuietSteps = 0;
    CurStep = 0;
    T0 = Clock::now();
  }

  /// Coordinator only, between barriers: the superstep about to run.
  void setStep(int S) { CurStep = S; }
  int curStep() const { return CurStep; }

  /// Nanoseconds since begin() on the monotonic clock.
  uint64_t nowNs() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             T0)
            .count());
  }

  bool stopRequested() const {
    return Stop.load(std::memory_order_relaxed);
  }

  /// First stop reason wins; later requests only reassert the flag.
  void requestStop(RunOutcome O) {
    int Expected = -1;
    StopCode.compare_exchange_strong(Expected, static_cast<int>(O),
                                     std::memory_order_relaxed);
    Stop.store(true, std::memory_order_relaxed);
  }

  /// Check the wall-clock budget; on expiry request a Deadline stop. False
  /// fast (one comparison) when the policy has no deadline.
  bool deadlineExpired() {
    if (Policy.DeadlineNs <= 0)
      return false;
    if (static_cast<int64_t>(nowNs()) < Policy.DeadlineNs)
      return false;
    requestStop(RunOutcome::Deadline);
    return true;
  }

  /// The planned injection for \p Strand in the current superstep, or null.
  const observe::PlannedFault *injectAt(uint64_t Strand) const {
    return Policy.Plan.match(Strand, CurStep);
  }

  /// Worker \p W records a trapped fault for \p Strand. Each worker owns
  /// its row; the fault-budget check rides on the shared atomic count.
  void recordFault(int W, uint64_t Strand, FaultKind K, std::string Msg) {
    StrandFault F;
    F.Strand = Strand;
    F.Step = CurStep;
    F.Worker = W;
    F.Kind = K;
    F.Ns = nowNs();
    F.Message = std::move(Msg);
    Rows[static_cast<size_t>(W)].push_back(std::move(F));
    int64_t Count = NFaults.fetch_add(1, std::memory_order_relaxed) + 1;
    if (Policy.MaxFaults >= 0 && Count > Policy.MaxFaults)
      requestStop(RunOutcome::FaultBudget);
  }

  /// A strand left the Active state this superstep (stabilized, died, or
  /// faulted) — progress, as far as the watchdog is concerned.
  void noteRetired(uint64_t N = 1) {
    RetiredThisStep.fetch_add(N, std::memory_order_relaxed);
  }

  /// Coordinator, after each superstep's barrier: roll the watchdog and
  /// report whether the run must stop.
  bool stepEnd() {
    uint64_t Ret = RetiredThisStep.exchange(0, std::memory_order_relaxed);
    if (stopRequested())
      return true;
    if (Policy.WatchdogSteps > 0) {
      QuietSteps = Ret == 0 ? QuietSteps + 1 : 0;
      if (QuietSteps >= Policy.WatchdogSteps) {
        requestStop(RunOutcome::Diverged);
        return true;
      }
    }
    return false;
  }

  /// After the scheduler returns: resolve the verdict. \p Quiesced is
  /// whether no strand remains Active.
  RunOutcome finish(bool Quiesced) {
    int Code = StopCode.load(std::memory_order_relaxed);
    Verdict = Code >= 0 ? static_cast<RunOutcome>(Code)
              : Quiesced ? RunOutcome::Converged
                         : RunOutcome::StepLimit;
    return Verdict;
  }

  RunOutcome outcome() const { return Verdict; }

  int64_t faultCount() const {
    return NFaults.load(std::memory_order_relaxed);
  }

  /// Coordinator, after workers joined: merge the per-worker fault rows
  /// into one timestamp-ordered list.
  std::vector<StrandFault> takeFaults() {
    std::vector<StrandFault> Out;
    for (std::vector<StrandFault> &Row : Rows) {
      Out.insert(Out.end(), std::make_move_iterator(Row.begin()),
                 std::make_move_iterator(Row.end()));
      Row.clear();
    }
    std::sort(Out.begin(), Out.end(),
              [](const StrandFault &A, const StrandFault &B) {
                return A.Ns != B.Ns ? A.Ns < B.Ns : A.Strand < B.Strand;
              });
    return Out;
  }

private:
  using Clock = std::chrono::steady_clock;
  RunPolicy Policy;
  Clock::time_point T0{};
  int CurStep = 0;    // coordinator-written, barrier-ordered
  int QuietSteps = 0; // coordinator-only
  RunOutcome Verdict = RunOutcome::Converged;
  std::vector<std::vector<StrandFault>> Rows;
  std::atomic<int64_t> NFaults{0};
  std::atomic<int> StopCode{-1};
  std::atomic<bool> Stop{false};
  std::atomic<uint64_t> RetiredThisStep{0};
};

namespace detail {
/// Update callables come in two shapes: the classic Update(strandIndex) and
/// the worker-aware Update(strandIndex, workerId) used by profiled runs
/// (the worker id selects the profiler shard). Dispatch on invocability so
/// existing call sites keep compiling unchanged.
template <typename UpdateFn>
inline StrandStatus callUpdate(UpdateFn &Update, size_t I, int W) {
  if constexpr (std::is_invocable_v<UpdateFn &, size_t, int>)
    return Update(I, W);
  else
    return Update(I);
}

/// The trap boundary: run one strand update with fault containment. A
/// planned Exception injection throws a real std::runtime_error so the
/// catch path below is the one exercised; any escaping C++ exception is
/// converted into a recorded StrandFault and the strand parks in Faulted
/// instead of tearing down the process (an exception escaping a worker
/// lambda would otherwise call std::terminate).
template <typename UpdateFn>
inline StrandStatus trappedUpdate(UpdateFn &Update, size_t I, int W,
                                  RunControl &Ctl) {
  FaultKind Kind = FaultKind::Exception;
  try {
    if (const observe::PlannedFault *P =
            Ctl.injectAt(static_cast<uint64_t>(I))) {
      Kind = P->Kind;
      if (P->Kind == FaultKind::Exception)
        throw std::runtime_error("injected C++ exception");
      Ctl.recordFault(W, static_cast<uint64_t>(I), P->Kind,
                      "injected fault");
      return StrandStatus::Faulted;
    }
    return callUpdate(Update, I, W);
  } catch (const std::exception &E) {
    Ctl.recordFault(W, static_cast<uint64_t>(I), Kind, E.what());
  } catch (...) {
    Ctl.recordFault(W, static_cast<uint64_t>(I), Kind,
                    "unknown C++ exception");
  }
  return StrandStatus::Faulted;
}
} // namespace detail

/// Run supersteps sequentially until no strand is active or \p MaxSteps is
/// reached. \p Update is invoked as Update(strandIndex) and returns the
/// strand's new status. Returns the number of supersteps executed.
///
/// When \p Rec is non-null, each superstep is recorded as one span on
/// timeline row 0 (Rec must have been start()ed). The strand counters are
/// accumulated in locals either way — their cost is a few registers per
/// superstep — so the disabled path stays overhead-free.
///
/// When \p Ctl is non-null the run is policied: updates go through the trap
/// boundary (detail::trappedUpdate), the deadline is checked per strand,
/// and the coordinator consults the watchdog/stop state after each
/// superstep. Ctl->begin() is called here; the caller resolves the verdict
/// with Ctl->finish() afterwards. Faulted strands count toward
/// Span.Updated but not Stabilized/Died — fault accounting is separate
/// (RunControl::takeFaults, RunStats::Faults).
///
/// The policy dimension is a compile-time split (detail::runSequentialImpl
/// is templated on it), so the unpolicied path carries no per-strand branch
/// for the fault machinery at all.
namespace detail {
template <bool Policied, typename UpdateFn>
int runSequentialImpl(std::vector<StrandStatus> &Status, UpdateFn &Update,
                      int MaxSteps, observe::Recorder *Rec,
                      RunControl *Ctl, const StepHook *OnStep) {
  int Steps = 0;
  size_t N = Status.size();
  const bool Trace = Rec && Rec->lifecycle();
  if constexpr (Policied)
    Ctl->begin(0);
  while (Steps < MaxSteps) {
    if constexpr (Policied)
      Ctl->setStep(Steps);
    observe::WorkerSpan Span;
    if (Rec)
      Span.BeginNs = Rec->nowNs();
    bool Any = false;
    // Deadline amortization: deadlineExpired() costs a steady_clock read,
    // so it runs once per 256 strands instead of per strand. Tick 0 still
    // checks before the first update, so an already-expired deadline stops
    // the run with zero work done. The stop flag stays per-strand — it is
    // one relaxed load.
    [[maybe_unused]] unsigned PolicyTick = 0;
    for (size_t I = 0; I < N; ++I) {
      if (Status[I] != StrandStatus::Active)
        continue;
      if constexpr (Policied) {
        if (Ctl->stopRequested())
          break;
        if ((PolicyTick++ & 255u) == 0 && Ctl->deadlineExpired())
          break;
      }
      Any = true;
      if (Trace && Steps == 0)
        Rec->event(0, {static_cast<uint64_t>(I), Steps,
                       observe::StrandEventKind::Start, 0, Rec->nowNs()});
      StrandStatus S;
      if constexpr (Policied)
        S = trappedUpdate(Update, I, 0, *Ctl);
      else
        S = callUpdate(Update, I, 0);
      Status[I] = S;
      ++Span.Updated;
      Span.Stabilized += S == StrandStatus::Stable;
      Span.Died += S == StrandStatus::Dead;
      if constexpr (Policied)
        if (S != StrandStatus::Active)
          Ctl->noteRetired();
      if (Trace && S != StrandStatus::Active)
        Rec->event(0, {static_cast<uint64_t>(I), Steps,
                       S == StrandStatus::Stable
                           ? observe::StrandEventKind::Stabilize
                       : S == StrandStatus::Dead
                           ? observe::StrandEventKind::Die
                           : observe::StrandEventKind::Fault,
                       0, Rec->nowNs()});
    }
    if (!Any)
      break;
    if (Rec) {
      Span.EndNs = Rec->nowNs();
      Rec->beginStep(Steps);
      Rec->commit(0, Span);
      if (observe::Metrics *MX = Rec->metrics()) {
        uint64_t Live = 0;
        for (StrandStatus St : Status)
          Live += St == StrandStatus::Active;
        MX->gauge(observe::MgLiveStrands).set(static_cast<int64_t>(Live));
        MX->gauge(observe::MgWorklistDepth).set(0);
      }
    }
    ++Steps;
    if (OnStep && *OnStep)
      (*OnStep)(Steps - 1);
    if constexpr (Policied)
      if (Ctl->stepEnd())
        break;
  }
  return Steps;
}
} // namespace detail

template <typename UpdateFn>
int runSequential(std::vector<StrandStatus> &Status, UpdateFn &&Update,
                  int MaxSteps, observe::Recorder *Rec = nullptr,
                  RunControl *Ctl = nullptr, const StepHook *OnStep = nullptr) {
  if (Ctl)
    return detail::runSequentialImpl<true>(Status, Update, MaxSteps, Rec,
                                           Ctl, OnStep);
  return detail::runSequentialImpl<false>(Status, Update, MaxSteps, Rec,
                                          nullptr, OnStep);
}

/// Parallel supersteps with \p NumWorkers worker threads pulling blocks of
/// \p BlockSize strands from a lock-guarded work-list, with a barrier at the
/// end of each superstep. Returns the number of supersteps executed.
///
/// When \p Rec is non-null it records one span per worker per superstep
/// (timeline row = worker index). Workers only ever write their own row and
/// the superstep barriers order those writes against the coordinator's
/// beginStep()/take(), so the span paths are race-free by construction; the
/// Recorder's run-wide atomics are the only shared counters.
///
/// When \p Ctl is non-null the run is policied (see runSequential). A stop
/// requested mid-superstep — deadline expiry, fault budget — makes every
/// worker fall out of its strand and block loops, but each still commits
/// its span and reaches both barriers, so the superstep completes cleanly:
/// no hung workers, no torn Recorder rows. The coordinator then observes
/// the stop in Ctl->stepEnd() and shuts the pool down through the normal
/// Done path. As with runSequential, the policy dimension is a
/// compile-time split: the unpolicied worker loop is the pre-fault-runtime
/// loop, branch for branch.
namespace detail {
template <bool Policied, typename UpdateFn>
int runParallelImpl(std::vector<StrandStatus> &Status, UpdateFn &Update,
                    int MaxSteps, int NumWorkers, int BlockSize,
                    observe::Recorder *Rec, RunControl *Ctl,
                    const StepHook *OnStep) {

  const size_t N = Status.size();
  const size_t NumBlocks = (N + static_cast<size_t>(BlockSize) - 1) /
                           static_cast<size_t>(BlockSize);

  // Work-list state, rebuilt by the coordinator each superstep.
  std::vector<uint32_t> ActiveBlocks;
  ActiveBlocks.reserve(NumBlocks);
  std::mutex WorkLock;
  size_t NextBlock = 0;
  bool Done = false;

  const bool Trace = Rec && Rec->lifecycle();
  // Armed metrics registry, or null. Hoisted so the hot paths pay a single
  // pointer test; the unarmed run is branch-for-branch the old loop.
  observe::Metrics *const MX = Rec ? Rec->metrics() : nullptr;

  // Rebuild the work-list from the strand status vector. Runs between
  // barriers (workers parked), so this is also the superstep-boundary view
  // live metric scrapes see.
  auto BuildActive = [&] {
    ActiveBlocks.clear();
    for (size_t B = 0; B < NumBlocks; ++B) {
      size_t Lo = B * static_cast<size_t>(BlockSize);
      size_t Hi = std::min(N, Lo + static_cast<size_t>(BlockSize));
      for (size_t I = Lo; I < Hi; ++I)
        if (Status[I] == StrandStatus::Active) {
          ActiveBlocks.push_back(static_cast<uint32_t>(B));
          break;
        }
    }
    if (MX) {
      uint64_t Live = 0;
      for (StrandStatus St : Status)
        Live += St == StrandStatus::Active;
      MX->gauge(observe::MgLiveStrands).set(static_cast<int64_t>(Live));
      MX->gauge(observe::MgWorklistDepth)
          .set(static_cast<int64_t>(ActiveBlocks.size()));
    }
  };

  if constexpr (Policied)
    Ctl->begin(NumWorkers);

  // Edge cases first, before any thread exists: a zero-step budget or no
  // active strand means there is no work to hand out. (Workers used to be
  // spawned unconditionally, hit the barrier once, and shut down having
  // done nothing.)
  BuildActive();
  if (MaxSteps <= 0 || ActiveBlocks.empty())
    return 0;
  // Strands only ever leave the Active set, so the block count cannot grow
  // mid-run: surplus workers beyond the first superstep's block count could
  // never claim anything. Clamp before spawning.
  if (static_cast<size_t>(NumWorkers) > ActiveBlocks.size())
    NumWorkers = static_cast<int>(ActiveBlocks.size());

  // Two rendezvous per superstep: workers wait for the work-list, then the
  // coordinator waits for all updates to finish.
  std::barrier Sync(NumWorkers + 1);

  auto Worker = [&](int W) {
    // Workers learn the superstep number by counting barrier iterations;
    // the coordinator's Steps counter advances in lock-step with them.
    int StepNo = 0;
    // Deadline amortization (see runSequentialImpl): one clock read per
    // claimed block plus one per 256 strands, not one per strand. The tick
    // spans supersteps; tick 0 fires on this worker's first strand.
    [[maybe_unused]] unsigned PolicyTick = 0;
    // This worker's private claim-latency shard; merged by the coordinator
    // at superstep barriers (observe/metrics.h documents the contract).
    observe::HistCell *const ClaimCell =
        MX ? &MX->hist(observe::MhClaimNs).cell(W) : nullptr;
    for (;;) {
      Sync.arrive_and_wait(); // work-list published
      if (Done)
        return;
      observe::WorkerSpan Span;
      if (Rec)
        Span.BeginNs = Rec->nowNs();
      bool Stopping = false;
      for (;;) {
        size_t Idx;
        if (ClaimCell) {
          uint64_t C0 = Rec->nowNs();
          {
            std::lock_guard<std::mutex> G(WorkLock);
            Idx = NextBlock++;
          }
          ClaimCell->record(Rec->nowNs() - C0);
        } else {
          std::lock_guard<std::mutex> G(WorkLock);
          Idx = NextBlock++;
        }
        ++Span.LockAcquires;
        if (Idx >= ActiveBlocks.size())
          break;
        ++Span.BlocksClaimed;
        if constexpr (Policied)
          if (Ctl->stopRequested() || Ctl->deadlineExpired()) {
            Stopping = true;
            break;
          }
        size_t Block = ActiveBlocks[Idx];
        size_t Lo = Block * static_cast<size_t>(BlockSize);
        size_t Hi = std::min(N, Lo + static_cast<size_t>(BlockSize));
        for (size_t I = Lo; I < Hi; ++I) {
          if (Status[I] != StrandStatus::Active)
            continue;
          if constexpr (Policied) {
            if (Ctl->stopRequested()) {
              Stopping = true;
              break;
            }
            if ((PolicyTick++ & 255u) == 0 && Ctl->deadlineExpired()) {
              Stopping = true;
              break;
            }
          }
          if (Trace && StepNo == 0)
            Rec->event(W, {static_cast<uint64_t>(I), StepNo,
                           observe::StrandEventKind::Start, W, Rec->nowNs()});
          StrandStatus S;
          if constexpr (Policied)
            S = trappedUpdate(Update, I, W, *Ctl);
          else
            S = callUpdate(Update, I, W);
          Status[I] = S;
          ++Span.Updated;
          Span.Stabilized += S == StrandStatus::Stable;
          Span.Died += S == StrandStatus::Dead;
          if constexpr (Policied)
            if (S != StrandStatus::Active)
              Ctl->noteRetired();
          if (Trace && S != StrandStatus::Active)
            Rec->event(W, {static_cast<uint64_t>(I), StepNo,
                           S == StrandStatus::Stable
                               ? observe::StrandEventKind::Stabilize
                           : S == StrandStatus::Dead
                               ? observe::StrandEventKind::Die
                               : observe::StrandEventKind::Fault,
                           W, Rec->nowNs()});
        }
        if (Stopping)
          break; // fall through to the barriers; coordinator handles stop
      }
      ++StepNo;
      if (Rec) {
        Span.EndNs = Rec->nowNs();
        Span.BarrierWaits = 2; // this superstep's two rendezvous
        Rec->commit(W, Span);
      }
      Sync.arrive_and_wait(); // superstep complete
    }
  };

  std::vector<std::thread> Threads;
  Threads.reserve(static_cast<size_t>(NumWorkers));
  for (int W = 0; W < NumWorkers; ++W)
    Threads.emplace_back(Worker, W);

  int Steps = 0;
  for (;;) {
    NextBlock = 0;
    if (Rec)
      Rec->beginStep(Steps); // before workers can commit this superstep
    if constexpr (Policied)
      Ctl->setStep(Steps); // barrier below orders this for workers
    Sync.arrive_and_wait(); // release workers
    Sync.arrive_and_wait(); // wait for completion
    ++Steps;
    // Workers are parked at the next release barrier here; the barrier just
    // crossed ordered their Status/strand writes before this read.
    if (OnStep && *OnStep)
      (*OnStep)(Steps - 1);
    if constexpr (Policied)
      if (Ctl->stepEnd())
        break;
    if (Steps >= MaxSteps)
      break;
    BuildActive();
    if (ActiveBlocks.empty())
      break;
    // One clock read per superstep boundary, so an expiry is caught here
    // even when the supersteps are too small for the per-block checks.
    if constexpr (Policied)
      if (Ctl->deadlineExpired())
        break;
  }
  Done = true;
  Sync.arrive_and_wait(); // release workers into shutdown
  for (std::thread &T : Threads)
    T.join();
  return Steps;
}
} // namespace detail

template <typename UpdateFn>
int runParallel(std::vector<StrandStatus> &Status, UpdateFn &&Update,
                int MaxSteps, int NumWorkers, int BlockSize = DefaultBlockSize,
                observe::Recorder *Rec = nullptr, RunControl *Ctl = nullptr,
                const StepHook *OnStep = nullptr) {
  // NumWorkers == 1 still runs the full work-list machinery (one worker
  // thread, lock, barrier) so that the paper's "Seq" vs "1P" comparison —
  // the cost of the scheduler itself — is measurable.
  if (NumWorkers < 1)
    return runSequential(Status, Update, MaxSteps, Rec, Ctl, OnStep);
  if (BlockSize <= 0)
    BlockSize = DefaultBlockSize;
  if (Ctl)
    return detail::runParallelImpl<true>(Status, Update, MaxSteps, NumWorkers,
                                         BlockSize, Rec, Ctl, OnStep);
  return detail::runParallelImpl<false>(Status, Update, MaxSteps, NumWorkers,
                                        BlockSize, Rec, nullptr, OnStep);
}

//===----------------------------------------------------------------------===//
// Persistent pool scheduler
//===----------------------------------------------------------------------===//

/// Process-wide persistent worker pool behind runPooled. Threads are spawned
/// lazily up to the largest worker count any run has asked for, park on a
/// condvar between runs, and are never re-spawned — a diderotd job worker
/// issuing thousands of /run requests reuses the same OS threads instead of
/// paying thread churn per run (the generation counter is the "futex word"
/// the parked threads watch).
///
/// Dispatch protocol: a Lease takes RunMu (runs on the pool are serialized;
/// concurrent runPooled calls queue here), publishes the job closure, bumps
/// the generation, and wakes the pool. Each selected worker runs the
/// closure once with its slot id, then re-parks; the Lease destructor waits
/// until all of them are back. Coordination *inside* a run (the superstep
/// barriers) is the job closure's own business.
///
/// Scope note: this is a Meyers singleton in a header, so each dlopen'd
/// generated .so carries its own pool instance — native in-process runs
/// park in their .so's pool, interpreter runs in the host's. Either way the
/// thread count is bounded and stable across runs, which is the property
/// the no-thread-growth tests assert.
class StrandPool {
public:
  static StrandPool &instance() {
    static StrandPool P;
    return P;
  }

  /// Threads currently alive in the pool (monotone under the lazy-growth
  /// policy; never shrinks until process exit).
  int threadCount() const {
    std::lock_guard<std::mutex> G(Mu);
    return static_cast<int>(Threads.size());
  }

  /// Total park events: one per worker per completed run.
  uint64_t parkCount() const {
    return Parks.load(std::memory_order_relaxed);
  }

  /// Exclusive use of the pool for one run. Construction dispatches
  /// \p Fn(slot) on \p NW workers; destruction waits for all of them to
  /// finish and re-park. \p Fn must stay alive for the Lease's lifetime.
  class Lease {
  public:
    Lease(StrandPool &P, int NW, std::function<void(int)> Fn)
        : P(P), NW(NW) {
      P.RunMu.lock();
      std::lock_guard<std::mutex> G(P.Mu);
      P.grow(NW);
      P.Job = std::move(Fn);
      P.JobWorkers = NW;
      P.JobDone = 0;
      ++P.Gen;
      P.WorkCv.notify_all();
    }

    Lease(const Lease &) = delete;
    Lease &operator=(const Lease &) = delete;

    ~Lease() {
      {
        std::unique_lock<std::mutex> L(P.Mu);
        P.DoneCv.wait(L, [&] { return P.JobDone == NW; });
        P.Job = nullptr;
        P.JobWorkers = 0;
      }
      P.RunMu.unlock();
    }

  private:
    StrandPool &P;
    int NW;
  };

private:
  StrandPool() = default;

  ~StrandPool() {
    {
      std::lock_guard<std::mutex> G(Mu);
      ShuttingDown = true;
    }
    WorkCv.notify_all();
    for (std::thread &T : Threads)
      T.join();
  }

  /// Mu held. Spawn up to \p NW total threads.
  void grow(int NW) {
    while (static_cast<int>(Threads.size()) < NW) {
      int Slot = static_cast<int>(Threads.size());
      Threads.emplace_back([this, Slot] { threadMain(Slot); });
    }
  }

  void threadMain(int Slot) {
    uint64_t SeenGen = 0;
    std::unique_lock<std::mutex> L(Mu);
    for (;;) {
      WorkCv.wait(L, [&] {
        return ShuttingDown || (Gen != SeenGen && Slot < JobWorkers);
      });
      if (ShuttingDown)
        return;
      SeenGen = Gen;
      // Copy the closure so the Lease can clear the shared slot while we
      // are still inside Fn.
      std::function<void(int)> Fn = Job;
      L.unlock();
      Fn(Slot);
      L.lock();
      Parks.fetch_add(1, std::memory_order_relaxed);
      if (++JobDone == JobWorkers)
        DoneCv.notify_all();
    }
  }

  mutable std::mutex Mu;     ///< guards everything below
  std::mutex RunMu;          ///< serializes Leases (one run at a time)
  std::condition_variable WorkCv;
  std::condition_variable DoneCv;
  std::vector<std::thread> Threads;
  std::function<void(int)> Job;
  int JobWorkers = 0;
  int JobDone = 0;
  uint64_t Gen = 0;
  bool ShuttingDown = false;
  std::atomic<uint64_t> Parks{0};
};

/// Work-stealing variant of runParallelImpl on the persistent StrandPool.
/// Semantics are still bulk-synchronous — the two superstep barriers and
/// everything observable at them (Recorder spans, metrics folds, policy
/// decisions) are identical to the bsp scheduler — but inside a superstep
/// each worker owns a deque of blocks and, when it runs dry, steals from
/// the fronts of its neighbours' deques instead of idling at the barrier.
/// That replaces the single WorkLock every claim contends on with
/// per-worker locks that only see cross-worker traffic when stealing
/// actually happens, and it is what turns the imbalance the metrics
/// registry measures (MhImbalanceNs) into reclaimed wall time.
namespace detail {
template <bool Policied, typename UpdateFn>
int runPooledImpl(std::vector<StrandStatus> &Status, UpdateFn &Update,
                  int MaxSteps, int NumWorkers, int BlockSize,
                  observe::Recorder *Rec, RunControl *Ctl,
                  const StepHook *OnStep) {

  const size_t N = Status.size();
  const size_t NumBlocks = (N + static_cast<size_t>(BlockSize) - 1) /
                           static_cast<size_t>(BlockSize);

  std::vector<uint32_t> ActiveBlocks;
  ActiveBlocks.reserve(NumBlocks);
  bool Done = false;

  const bool Trace = Rec && Rec->lifecycle();
  observe::Metrics *const MX = Rec ? Rec->metrics() : nullptr;

  auto BuildActive = [&] {
    ActiveBlocks.clear();
    for (size_t B = 0; B < NumBlocks; ++B) {
      size_t Lo = B * static_cast<size_t>(BlockSize);
      size_t Hi = std::min(N, Lo + static_cast<size_t>(BlockSize));
      for (size_t I = Lo; I < Hi; ++I)
        if (Status[I] == StrandStatus::Active) {
          ActiveBlocks.push_back(static_cast<uint32_t>(B));
          break;
        }
    }
    if (MX) {
      uint64_t Live = 0;
      for (StrandStatus St : Status)
        Live += St == StrandStatus::Active;
      MX->gauge(observe::MgLiveStrands).set(static_cast<int64_t>(Live));
      MX->gauge(observe::MgWorklistDepth)
          .set(static_cast<int64_t>(ActiveBlocks.size()));
    }
  };

  if constexpr (Policied)
    Ctl->begin(NumWorkers);

  BuildActive();
  if (MaxSteps <= 0 || ActiveBlocks.empty())
    return 0;
  if (static_cast<size_t>(NumWorkers) > ActiveBlocks.size())
    NumWorkers = static_cast<int>(ActiveBlocks.size());

  // Per-worker deques. The coordinator refills them between barriers (no
  // lock needed: the barrier orders those writes against the workers);
  // during a superstep the owner pops from the tail and thieves pop from
  // the head, each under the per-deque lock. Blocks only ever leave a
  // deque, so a thief's full scan finding every deque empty is a stable
  // "superstep drained" verdict.
  struct BlockDeque {
    std::mutex Mu;
    std::vector<uint32_t> Blocks;
    size_t Head = 0; ///< steal side
    size_t Tail = 0; ///< owner side; empty when Head == Tail
  };
  std::vector<BlockDeque> Deques(static_cast<size_t>(NumWorkers));

  std::barrier Sync(NumWorkers + 1);

  auto Worker = [&](int W) {
    int StepNo = 0;
    [[maybe_unused]] unsigned PolicyTick = 0;
    observe::HistCell *const ClaimCell =
        MX ? &MX->hist(observe::MhClaimNs).cell(W) : nullptr;
    // Claim one block: own deque first (tail side), then a round-robin
    // steal scan over the others (head side). Returns false only when
    // every deque is empty.
    auto Claim = [&](uint32_t &Block, uint64_t &Locks, uint64_t &Steals) {
      {
        BlockDeque &D = Deques[static_cast<size_t>(W)];
        std::lock_guard<std::mutex> G(D.Mu);
        ++Locks;
        if (D.Head < D.Tail) {
          Block = D.Blocks[--D.Tail];
          return true;
        }
      }
      for (int K = 1; K < NumWorkers; ++K) {
        BlockDeque &V =
            Deques[static_cast<size_t>((W + K) % NumWorkers)];
        std::lock_guard<std::mutex> G(V.Mu);
        ++Locks;
        if (V.Head < V.Tail) {
          Block = V.Blocks[V.Head++];
          ++Steals;
          return true;
        }
      }
      return false;
    };
    for (;;) {
      Sync.arrive_and_wait(); // deques filled
      if (Done)
        return;
      observe::WorkerSpan Span;
      if (Rec)
        Span.BeginNs = Rec->nowNs();
      uint64_t Steals = 0;
      bool Stopping = false;
      for (;;) {
        uint32_t Block;
        uint64_t Locks = 0;
        bool Got;
        if (ClaimCell) {
          uint64_t C0 = Rec->nowNs();
          Got = Claim(Block, Locks, Steals);
          ClaimCell->record(Rec->nowNs() - C0);
        } else {
          Got = Claim(Block, Locks, Steals);
        }
        Span.LockAcquires += Locks;
        if (!Got)
          break;
        ++Span.BlocksClaimed;
        if constexpr (Policied)
          if (Ctl->stopRequested() || Ctl->deadlineExpired()) {
            Stopping = true;
            break;
          }
        size_t Lo = static_cast<size_t>(Block) *
                    static_cast<size_t>(BlockSize);
        size_t Hi = std::min(N, Lo + static_cast<size_t>(BlockSize));
        for (size_t I = Lo; I < Hi; ++I) {
          if (Status[I] != StrandStatus::Active)
            continue;
          if constexpr (Policied) {
            if (Ctl->stopRequested()) {
              Stopping = true;
              break;
            }
            if ((PolicyTick++ & 255u) == 0 && Ctl->deadlineExpired()) {
              Stopping = true;
              break;
            }
          }
          if (Trace && StepNo == 0)
            Rec->event(W, {static_cast<uint64_t>(I), StepNo,
                           observe::StrandEventKind::Start, W, Rec->nowNs()});
          StrandStatus S;
          if constexpr (Policied)
            S = trappedUpdate(Update, I, W, *Ctl);
          else
            S = callUpdate(Update, I, W);
          Status[I] = S;
          ++Span.Updated;
          Span.Stabilized += S == StrandStatus::Stable;
          Span.Died += S == StrandStatus::Dead;
          if constexpr (Policied)
            if (S != StrandStatus::Active)
              Ctl->noteRetired();
          if (Trace && S != StrandStatus::Active)
            Rec->event(W, {static_cast<uint64_t>(I), StepNo,
                           S == StrandStatus::Stable
                               ? observe::StrandEventKind::Stabilize
                           : S == StrandStatus::Dead
                               ? observe::StrandEventKind::Die
                               : observe::StrandEventKind::Fault,
                           W, Rec->nowNs()});
        }
        if (Stopping)
          break;
      }
      ++StepNo;
      if (MX && Steals)
        MX->counter(observe::McBlocksStolen).add(Steals);
      if (Rec) {
        Span.EndNs = Rec->nowNs();
        Span.BarrierWaits = 2;
        Rec->commit(W, Span);
      }
      Sync.arrive_and_wait(); // superstep complete
    }
  };

  StrandPool &Pool = StrandPool::instance();
  int Steps = 0;
  {
    StrandPool::Lease Run(Pool, NumWorkers, Worker);
    for (;;) {
      // Deal the work-list into the deques in contiguous chunks, so each
      // worker starts on a cache-friendly span and stealing moves whole
      // far-away chunks of the index space.
      size_t Per = ActiveBlocks.size() / static_cast<size_t>(NumWorkers);
      size_t Extra = ActiveBlocks.size() % static_cast<size_t>(NumWorkers);
      size_t At = 0;
      for (int W = 0; W < NumWorkers; ++W) {
        size_t Take = Per + (static_cast<size_t>(W) < Extra ? 1 : 0);
        BlockDeque &D = Deques[static_cast<size_t>(W)];
        D.Blocks.assign(ActiveBlocks.begin() +
                            static_cast<std::ptrdiff_t>(At),
                        ActiveBlocks.begin() +
                            static_cast<std::ptrdiff_t>(At + Take));
        D.Head = 0;
        D.Tail = D.Blocks.size();
        At += Take;
      }
      if (Rec)
        Rec->beginStep(Steps);
      if constexpr (Policied)
        Ctl->setStep(Steps);
      Sync.arrive_and_wait(); // release workers
      Sync.arrive_and_wait(); // wait for completion
      ++Steps;
      // Same race-free window as the bsp coordinator: workers parked, their
      // superstep writes ordered by the barrier just crossed.
      if (OnStep && *OnStep)
        (*OnStep)(Steps - 1);
      if constexpr (Policied)
        if (Ctl->stepEnd())
          break;
      if (Steps >= MaxSteps)
        break;
      BuildActive();
      if (ActiveBlocks.empty())
        break;
      if constexpr (Policied)
        if (Ctl->deadlineExpired())
          break;
    }
    Done = true;
    Sync.arrive_and_wait(); // release workers back to the pool
  } // Lease dtor: all workers re-parked
  if (MX) {
    MX->counter(observe::McPoolParks)
        .add(static_cast<uint64_t>(NumWorkers));
    MX->gauge(observe::MgPoolThreads).set(Pool.threadCount());
  }
  return Steps;
}
} // namespace detail

/// Pool-backed work-stealing scheduler; drop-in for runParallel (same
/// contract, spans, and policy behavior — see runPooledImpl above for what
/// differs inside a superstep). NumWorkers < 1 falls back to the
/// sequential scheduler, exactly like runParallel.
template <typename UpdateFn>
int runPooled(std::vector<StrandStatus> &Status, UpdateFn &&Update,
              int MaxSteps, int NumWorkers, int BlockSize = DefaultBlockSize,
              observe::Recorder *Rec = nullptr, RunControl *Ctl = nullptr,
              const StepHook *OnStep = nullptr) {
  if (NumWorkers < 1)
    return runSequential(Status, Update, MaxSteps, Rec, Ctl, OnStep);
  if (BlockSize <= 0)
    BlockSize = DefaultBlockSize;
  if (Ctl)
    return detail::runPooledImpl<true>(Status, Update, MaxSteps, NumWorkers,
                                       BlockSize, Rec, Ctl, OnStep);
  return detail::runPooledImpl<false>(Status, Update, MaxSteps, NumWorkers,
                                      BlockSize, Rec, nullptr, OnStep);
}

/// Dispatch on a runtime Scheduler value; the compile-time split stays
/// inside the chosen scheduler.
template <typename UpdateFn>
int runScheduled(Scheduler Sched, std::vector<StrandStatus> &Status,
                 UpdateFn &&Update, int MaxSteps, int NumWorkers,
                 int BlockSize = DefaultBlockSize,
                 observe::Recorder *Rec = nullptr, RunControl *Ctl = nullptr,
                 const StepHook *OnStep = nullptr) {
  if (Sched == Scheduler::Pooled)
    return runPooled(Status, Update, MaxSteps, NumWorkers, BlockSize, Rec,
                     Ctl, OnStep);
  return runParallel(Status, Update, MaxSteps, NumWorkers, BlockSize, Rec,
                     Ctl, OnStep);
}

} // namespace diderot::rt

#endif // DIDEROT_RUNTIME_SCHEDULER_H

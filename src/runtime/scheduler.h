//===--- runtime/scheduler.h - bulk-synchronous strand scheduling -----------===//
//
// Part of the Diderot-C++ reproduction (PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The strand execution model of Sections 3.3 and 5.5: "Diderot uses a
/// bulk-synchronous parallelism model. In this model, execution is divided
/// into super steps; during a super-step each strand's update method is
/// evaluated once. The program executes until all of the strands are either
/// stabilized or dead.
///
/// For the sequential target, the runtime implements this model as a loop
/// nest, with the outer loop iterating once per super-step and the inner
/// loop iterating once per strand. The parallel version ... creates a
/// collection of worker threads (the default is one per hardware core) and
/// manages a work-list of strands. To keep synchronization overhead low, the
/// strands in the work-list are organized into blocks of strands (currently
/// 4096 strands per block). During a super-step, each worker grabs and
/// updates strands until the work-list is empty. Barrier synchronization is
/// used to coordinate the threads at the end of a super step."
///
/// Both schedulers are templates over the update callable so the interpreter
/// engine and compiled native programs share them.
///
//===----------------------------------------------------------------------===//

#ifndef DIDEROT_RUNTIME_SCHEDULER_H
#define DIDEROT_RUNTIME_SCHEDULER_H

#include <barrier>
#include <cstdint>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

#include "observe/recorder.h"

namespace diderot::rt {

/// Telemetry types surface through the runtime namespace so host code can
/// say rt::RunStats (collection lives in observe/recorder.h).
using observe::RunStats;

/// Lifecycle state of one strand.
enum class StrandStatus : uint8_t {
  Active, ///< will be updated next superstep
  Stable, ///< stabilized; state is part of the output
  Dead,   ///< died; produces no output
};

/// The paper's work-list granularity.
constexpr int DefaultBlockSize = 4096;

namespace detail {
/// Update callables come in two shapes: the classic Update(strandIndex) and
/// the worker-aware Update(strandIndex, workerId) used by profiled runs
/// (the worker id selects the profiler shard). Dispatch on invocability so
/// existing call sites keep compiling unchanged.
template <typename UpdateFn>
inline StrandStatus callUpdate(UpdateFn &Update, size_t I, int W) {
  if constexpr (std::is_invocable_v<UpdateFn &, size_t, int>)
    return Update(I, W);
  else
    return Update(I);
}
} // namespace detail

/// Run supersteps sequentially until no strand is active or \p MaxSteps is
/// reached. \p Update is invoked as Update(strandIndex) and returns the
/// strand's new status. Returns the number of supersteps executed.
///
/// When \p Rec is non-null, each superstep is recorded as one span on
/// timeline row 0 (Rec must have been start()ed). The strand counters are
/// accumulated in locals either way — their cost is a few registers per
/// superstep — so the disabled path stays overhead-free.
template <typename UpdateFn>
int runSequential(std::vector<StrandStatus> &Status, UpdateFn &&Update,
                  int MaxSteps, observe::Recorder *Rec = nullptr) {
  int Steps = 0;
  size_t N = Status.size();
  const bool Trace = Rec && Rec->lifecycle();
  while (Steps < MaxSteps) {
    observe::WorkerSpan Span;
    if (Rec)
      Span.BeginNs = Rec->nowNs();
    bool Any = false;
    for (size_t I = 0; I < N; ++I) {
      if (Status[I] != StrandStatus::Active)
        continue;
      Any = true;
      if (Trace && Steps == 0)
        Rec->event(0, {static_cast<uint64_t>(I), Steps,
                       observe::StrandEventKind::Start, 0, Rec->nowNs()});
      StrandStatus S = detail::callUpdate(Update, I, 0);
      Status[I] = S;
      ++Span.Updated;
      Span.Stabilized += S == StrandStatus::Stable;
      Span.Died += S == StrandStatus::Dead;
      if (Trace && S != StrandStatus::Active)
        Rec->event(0, {static_cast<uint64_t>(I), Steps,
                       S == StrandStatus::Stable
                           ? observe::StrandEventKind::Stabilize
                           : observe::StrandEventKind::Die,
                       0, Rec->nowNs()});
    }
    if (!Any)
      break;
    if (Rec) {
      Span.EndNs = Rec->nowNs();
      Rec->beginStep(Steps);
      Rec->commit(0, Span);
    }
    ++Steps;
  }
  return Steps;
}

/// Parallel supersteps with \p NumWorkers worker threads pulling blocks of
/// \p BlockSize strands from a lock-guarded work-list, with a barrier at the
/// end of each superstep. Returns the number of supersteps executed.
///
/// When \p Rec is non-null it records one span per worker per superstep
/// (timeline row = worker index). Workers only ever write their own row and
/// the superstep barriers order those writes against the coordinator's
/// beginStep()/take(), so the span paths are race-free by construction; the
/// Recorder's run-wide atomics are the only shared counters.
template <typename UpdateFn>
int runParallel(std::vector<StrandStatus> &Status, UpdateFn &&Update,
                int MaxSteps, int NumWorkers, int BlockSize = DefaultBlockSize,
                observe::Recorder *Rec = nullptr) {
  // NumWorkers == 1 still runs the full work-list machinery (one worker
  // thread, lock, barrier) so that the paper's "Seq" vs "1P" comparison —
  // the cost of the scheduler itself — is measurable.
  if (NumWorkers < 1)
    return runSequential(Status, Update, MaxSteps, Rec);
  if (BlockSize <= 0)
    BlockSize = DefaultBlockSize;

  const size_t N = Status.size();
  const size_t NumBlocks = (N + static_cast<size_t>(BlockSize) - 1) /
                           static_cast<size_t>(BlockSize);

  // Work-list state, rebuilt by the coordinator each superstep.
  std::vector<uint32_t> ActiveBlocks;
  ActiveBlocks.reserve(NumBlocks);
  std::mutex WorkLock;
  size_t NextBlock = 0;
  bool Done = false;

  // Two rendezvous per superstep: workers wait for the work-list, then the
  // coordinator waits for all updates to finish.
  std::barrier Sync(NumWorkers + 1);

  const bool Trace = Rec && Rec->lifecycle();
  auto Worker = [&](int W) {
    // Workers learn the superstep number by counting barrier iterations;
    // the coordinator's Steps counter advances in lock-step with them.
    int StepNo = 0;
    for (;;) {
      Sync.arrive_and_wait(); // work-list published
      if (Done)
        return;
      observe::WorkerSpan Span;
      if (Rec)
        Span.BeginNs = Rec->nowNs();
      for (;;) {
        size_t Idx;
        {
          std::lock_guard<std::mutex> G(WorkLock);
          Idx = NextBlock++;
        }
        ++Span.LockAcquires;
        if (Idx >= ActiveBlocks.size())
          break;
        ++Span.BlocksClaimed;
        size_t Block = ActiveBlocks[Idx];
        size_t Lo = Block * static_cast<size_t>(BlockSize);
        size_t Hi = std::min(N, Lo + static_cast<size_t>(BlockSize));
        for (size_t I = Lo; I < Hi; ++I) {
          if (Status[I] != StrandStatus::Active)
            continue;
          if (Trace && StepNo == 0)
            Rec->event(W, {static_cast<uint64_t>(I), StepNo,
                           observe::StrandEventKind::Start, W, Rec->nowNs()});
          StrandStatus S = detail::callUpdate(Update, I, W);
          Status[I] = S;
          ++Span.Updated;
          Span.Stabilized += S == StrandStatus::Stable;
          Span.Died += S == StrandStatus::Dead;
          if (Trace && S != StrandStatus::Active)
            Rec->event(W, {static_cast<uint64_t>(I), StepNo,
                           S == StrandStatus::Stable
                               ? observe::StrandEventKind::Stabilize
                               : observe::StrandEventKind::Die,
                           W, Rec->nowNs()});
        }
      }
      ++StepNo;
      if (Rec) {
        Span.EndNs = Rec->nowNs();
        Span.BarrierWaits = 2; // this superstep's two rendezvous
        Rec->commit(W, Span);
      }
      Sync.arrive_and_wait(); // superstep complete
    }
  };

  std::vector<std::thread> Threads;
  Threads.reserve(static_cast<size_t>(NumWorkers));
  for (int W = 0; W < NumWorkers; ++W)
    Threads.emplace_back(Worker, W);

  int Steps = 0;
  while (Steps < MaxSteps) {
    ActiveBlocks.clear();
    for (size_t B = 0; B < NumBlocks; ++B) {
      size_t Lo = B * static_cast<size_t>(BlockSize);
      size_t Hi = std::min(N, Lo + static_cast<size_t>(BlockSize));
      for (size_t I = Lo; I < Hi; ++I)
        if (Status[I] == StrandStatus::Active) {
          ActiveBlocks.push_back(static_cast<uint32_t>(B));
          break;
        }
    }
    if (ActiveBlocks.empty())
      break;
    NextBlock = 0;
    if (Rec)
      Rec->beginStep(Steps); // before workers can commit this superstep
    Sync.arrive_and_wait(); // release workers
    Sync.arrive_and_wait(); // wait for completion
    ++Steps;
  }
  Done = true;
  Sync.arrive_and_wait(); // release workers into shutdown
  for (std::thread &T : Threads)
    T.join();
  return Steps;
}

} // namespace diderot::rt

#endif // DIDEROT_RUNTIME_SCHEDULER_H

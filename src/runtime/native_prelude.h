//===--- runtime/native_prelude.h - support for generated native code -------===//
//
// Part of the Diderot-C++ reproduction (PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Everything a generated Diderot translation unit needs besides the strand
/// code itself. Deliberately self-contained (STL only): the shared object a
/// program compiles into exposes a plain C ABI ("Diderot's runtime has been
/// designed to allow Diderot programs to be embedded as libraries in any
/// host language that supports calling C code" — Section 7), so it must not
/// depend on the compiler's own libraries.
///
/// Contents:
///  * ImageData<Real>: the in-memory image proxy (samples + orientation)
///  * a minimal NRRD reader (for load("file.nrrd") in generated globals)
///  * ProgramBase<Derived, Real>: CRTP base implementing strand storage,
///    input/output plumbing, and the C ABI entry points' behavior, reusing
///    the bulk-synchronous schedulers from runtime/scheduler.h
///  * the C ABI declaration (ddr_* functions) the driver binds via dlsym
///
//===----------------------------------------------------------------------===//

#ifndef DIDEROT_RUNTIME_NATIVE_PRELUDE_H
#define DIDEROT_RUNTIME_NATIVE_PRELUDE_H

#include <cmath>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "observe/digest.h"
#include "observe/profiler.h"
#include "runtime/scheduler.h"
#include "tensor/eigen_raw.h"

namespace diderot::ndr {

//===----------------------------------------------------------------------===//
// Images
//===----------------------------------------------------------------------===//

/// The generated code's view of an image: samples (component-fastest, x
/// next) plus the precomputed world->index and gradient transforms.
template <typename Real> struct ImageData {
  int Dim = 0;
  int64_t Sizes[3] = {1, 1, 1};
  int64_t NComp = 1;
  int64_t Stride[3] = {1, 1, 1}; ///< per-axis stride in components
  std::vector<Real> Data;
  Real W2I[9] = {};    ///< row-major dim x dim world-to-index matrix
  Real GradXf[9] = {}; ///< row-major dim x dim M^{-T}
  Real Origin[3] = {}; ///< world origin

  void computeStrides() {
    Stride[0] = NComp;
    Stride[1] = NComp * Sizes[0];
    Stride[2] = NComp * Sizes[0] * Sizes[1];
  }
};

/// Clamp an index into [0, Hi].
inline int64_t clampIndex(int64_t V, int64_t Hi) {
  return V < 0 ? 0 : (V > Hi ? Hi : V);
}

//===----------------------------------------------------------------------===//
// Minimal NRRD reading (raw/ascii, little-endian) for load("...") globals.
//===----------------------------------------------------------------------===//

namespace detail {

inline std::string trimWs(const std::string &S) {
  size_t B = S.find_first_not_of(" \t\r\n");
  size_t E = S.find_last_not_of(" \t\r\n");
  if (B == std::string::npos)
    return "";
  return S.substr(B, E - B + 1);
}

inline bool parseVec(const std::string &Tok, std::vector<double> &Out) {
  Out.clear();
  std::string S = trimWs(Tok);
  if (S == "none")
    return true;
  if (S.size() < 2 || S.front() != '(' || S.back() != ')')
    return false;
  std::istringstream In(S.substr(1, S.size() - 2));
  std::string Part;
  while (std::getline(In, Part, ','))
    Out.push_back(std::strtod(Part.c_str(), nullptr));
  return true;
}

/// Invert a small row-major matrix (d <= 3).
inline bool invertSmall(int D, const double *M, double *Inv) {
  if (D == 1) {
    if (M[0] == 0)
      return false;
    Inv[0] = 1.0 / M[0];
    return true;
  }
  if (D == 2) {
    double Det = M[0] * M[3] - M[1] * M[2];
    if (Det == 0)
      return false;
    Inv[0] = M[3] / Det;
    Inv[1] = -M[1] / Det;
    Inv[2] = -M[2] / Det;
    Inv[3] = M[0] / Det;
    return true;
  }
  double Det = M[0] * (M[4] * M[8] - M[5] * M[7]) -
               M[1] * (M[3] * M[8] - M[5] * M[6]) +
               M[2] * (M[3] * M[7] - M[4] * M[6]);
  if (Det == 0)
    return false;
  auto Cof = [&](int I, int J) {
    int I0 = (I + 1) % 3, I1 = (I + 2) % 3;
    int J0 = (J + 1) % 3, J1 = (J + 2) % 3;
    return M[I0 * 3 + J0] * M[I1 * 3 + J1] - M[I0 * 3 + J1] * M[I1 * 3 + J0];
  };
  for (int I = 0; I < 3; ++I)
    for (int J = 0; J < 3; ++J)
      Inv[I * 3 + J] = Cof(J, I) / Det;
  return true;
}

} // namespace detail

/// Load a NRRD file into \p Out, checking dimension/components against the
/// program's image type. Returns false with \p Err set on failure.
template <typename Real>
bool loadNrrdFile(const std::string &Path, int Dim, int64_t NComp,
                  ImageData<Real> &Out, std::string &Err) {
  std::ifstream In(Path, std::ios::binary);
  if (!In) {
    Err = "cannot open NRRD file '" + Path + "'";
    return false;
  }
  std::ostringstream Buf;
  Buf << In.rdbuf();
  std::string C = Buf.str();

  size_t Pos = C.find('\n');
  if (Pos == std::string::npos || C.compare(0, 4, "NRRD") != 0) {
    Err = "not a NRRD file: " + Path;
    return false;
  }
  std::string Type = "float", Encoding = "raw";
  std::vector<int64_t> Sizes;
  std::vector<std::vector<double>> Dirs;
  std::vector<double> Origin;
  size_t DataStart = std::string::npos;
  size_t LineStart = Pos + 1;
  while (LineStart < C.size()) {
    size_t LineEnd = C.find('\n', LineStart);
    if (LineEnd == std::string::npos)
      LineEnd = C.size();
    std::string Line = C.substr(LineStart, LineEnd - LineStart);
    if (!Line.empty() && Line.back() == '\r')
      Line.pop_back();
    LineStart = LineEnd + 1;
    if (Line.empty()) {
      DataStart = LineStart;
      break;
    }
    if (Line[0] == '#')
      continue;
    size_t Colon = Line.find(": ");
    if (Colon == std::string::npos)
      continue;
    std::string Key = Line.substr(0, Colon);
    std::string Val = detail::trimWs(Line.substr(Colon + 2));
    if (Key == "type")
      Type = Val;
    else if (Key == "sizes") {
      std::istringstream VS(Val);
      int64_t S;
      while (VS >> S)
        Sizes.push_back(S);
    } else if (Key == "encoding")
      Encoding = Val;
    else if (Key == "space directions") {
      std::istringstream VS(Val);
      std::string Tok;
      while (VS >> Tok) {
        std::vector<double> D;
        if (detail::parseVec(Tok, D) && !D.empty())
          Dirs.push_back(D);
      }
    } else if (Key == "space origin")
      detail::parseVec(Val, Origin);
  }
  if (DataStart == std::string::npos || Sizes.empty()) {
    Err = "malformed NRRD header: " + Path;
    return false;
  }
  int WantAxes = Dim + (NComp > 1 ? 1 : 0);
  if (static_cast<int>(Sizes.size()) != WantAxes) {
    Err = "NRRD axis count mismatch in " + Path;
    return false;
  }
  if (NComp > 1 && Sizes[0] != NComp) {
    Err = "NRRD component count mismatch in " + Path;
    return false;
  }
  Out.Dim = Dim;
  Out.NComp = NComp;
  int Base = NComp > 1 ? 1 : 0;
  int64_t Total = 1;
  for (int A = 0; A < Dim; ++A) {
    Out.Sizes[A] = Sizes[static_cast<size_t>(A + Base)];
    Total *= Out.Sizes[A];
  }
  Total *= NComp;
  Out.Data.resize(static_cast<size_t>(Total));

  size_t ElemSize = Type == "double"                                   ? 8
                    : (Type == "float" || Type == "int" ||
                       Type == "unsigned int")                          ? 4
                    : (Type == "short" || Type == "unsigned short")     ? 2
                                                                        : 1;
  auto ReadSample = [&](size_t I) -> double {
    const char *P = C.data() + DataStart + I * ElemSize;
    if (Type == "float") {
      float V;
      std::memcpy(&V, P, 4);
      return V;
    }
    if (Type == "double") {
      double V;
      std::memcpy(&V, P, 8);
      return V;
    }
    if (Type == "short") {
      int16_t V;
      std::memcpy(&V, P, 2);
      return V;
    }
    if (Type == "unsigned short") {
      uint16_t V;
      std::memcpy(&V, P, 2);
      return V;
    }
    if (Type == "int") {
      int32_t V;
      std::memcpy(&V, P, 4);
      return V;
    }
    if (Type == "unsigned int") {
      uint32_t V;
      std::memcpy(&V, P, 4);
      return V;
    }
    return static_cast<unsigned char>(*P);
  };
  if (Encoding == "raw") {
    if (C.size() - DataStart < static_cast<size_t>(Total) * ElemSize) {
      Err = "truncated NRRD data in " + Path;
      return false;
    }
    for (int64_t I = 0; I < Total; ++I)
      Out.Data[static_cast<size_t>(I)] =
          static_cast<Real>(ReadSample(static_cast<size_t>(I)));
  } else if (Encoding == "ascii" || Encoding == "text") {
    std::istringstream DS(C.substr(DataStart));
    double V;
    for (int64_t I = 0; I < Total; ++I) {
      if (!(DS >> V)) {
        Err = "truncated NRRD ascii data in " + Path;
        return false;
      }
      Out.Data[static_cast<size_t>(I)] = static_cast<Real>(V);
    }
  } else {
    Err = "unsupported NRRD encoding '" + Encoding + "' in " + Path;
    return false;
  }
  Out.computeStrides();

  // Orientation: index -> world direction matrix, inverted.
  double DirM[9] = {1, 0, 0, 0, 1, 0, 0, 0, 1};
  double Org[3] = {0, 0, 0};
  if (static_cast<int>(Dirs.size()) == Dim) {
    for (int Col = 0; Col < Dim; ++Col)
      for (int Row = 0; Row < Dim && Row < static_cast<int>(Dirs[Col].size());
           ++Row)
        DirM[Row * Dim + Col] = Dirs[static_cast<size_t>(Col)][static_cast<size_t>(Row)];
    for (int A = 0; A < Dim && A < static_cast<int>(Origin.size()); ++A)
      Org[A] = Origin[static_cast<size_t>(A)];
  }
  double Inv[9];
  if (!detail::invertSmall(Dim, DirM, Inv)) {
    Err = "singular orientation in " + Path;
    return false;
  }
  for (int R = 0; R < Dim; ++R)
    for (int Cc = 0; Cc < Dim; ++Cc) {
      Out.W2I[R * Dim + Cc] = static_cast<Real>(Inv[R * Dim + Cc]);
      Out.GradXf[R * Dim + Cc] = static_cast<Real>(Inv[Cc * Dim + R]);
    }
  for (int A = 0; A < Dim; ++A)
    Out.Origin[A] = static_cast<Real>(Org[A]);
  return true;
}

//===----------------------------------------------------------------------===//
// Program base
//===----------------------------------------------------------------------===//

using rt::StrandStatus;

enum class ExitKind : uint8_t { Continue, Stabilize, Die };

/// Metadata about a global, generated as a static table.
struct GlobalMeta {
  const char *Name;
  int Kind;  ///< 0 real, 1 int, 2 bool, 3 string, 4 tensor, 5 image
  int Comps; ///< tensor components (1 for real)
  int Dim;   ///< image dimension
  bool IsInput;
  bool HasDefault;
  const char *TypeName;
};

/// Metadata about an output state variable.
struct OutputMeta {
  const char *Name;
  int Comps;
  bool IsInt;
};

/// CRTP base (StrandT passed separately because Derived is incomplete at
/// base instantiation): Derived supplies
///   struct Globals;  struct Strand (== StrandT);
///   static const GlobalMeta *globalMeta(int &count);
///   static const OutputMeta *outputMeta(int &count);
///   static constexpr int NumIters; static constexpr bool IsGrid;
///   bool applyDefault(int gIdx);                     // false = no default
///   bool setScalars(int gIdx, const double *v, int n);
///   bool setString(int gIdx, const char *v);
///   bool setImage(int gIdx, ...);                    // fills ImageData
///   bool globalInit();                               // may set Error
///   int64_t iterLo(int k); int64_t iterHi(int k);
///   void initStrand(const int64_t *iters, Strand &s);
///   ExitKind update(Strand &s);
///   void stabilizeStrand(Strand &s);                 // optional hook
///   double outputComp(const Strand &s, int out, int comp);
template <typename Derived, typename Real, typename StrandT>
class ProgramBase {
public:
  std::string Error;

  Derived &self() { return *static_cast<Derived *>(this); }

  int findGlobal(const char *Name) const {
    int N = 0;
    const GlobalMeta *G = Derived::globalMeta(N);
    for (int I = 0; I < N; ++I)
      if (std::strcmp(G[I].Name, Name) == 0)
        return I;
    return -1;
  }

  bool setInputScalars(const char *Name, const double *Vals, int N) {
    int Idx = findGlobal(Name);
    int Cnt = 0;
    const GlobalMeta *G = Derived::globalMeta(Cnt);
    if (Idx < 0 || !G[Idx].IsInput) {
      Error = std::string("no input named '") + Name + "'";
      return false;
    }
    if (!self().setScalars(Idx, Vals, N)) {
      Error = std::string("wrong arity or kind for input '") + Name + "'";
      return false;
    }
    InputSet[Idx] = true;
    return true;
  }

  bool setInputString(const char *Name, const char *V) {
    int Idx = findGlobal(Name);
    if (Idx < 0 || !self().setString(Idx, V)) {
      Error = std::string("cannot set string input '") + Name + "'";
      return false;
    }
    InputSet[Idx] = true;
    return true;
  }

  bool setInputImage(const char *Name, int Dim, const int64_t *Sizes,
                     int64_t NComp, const double *Data, const double *W2I,
                     const double *GradXf, const double *Origin) {
    int Idx = findGlobal(Name);
    if (Idx < 0 ||
        !self().setImage(Idx, Dim, Sizes, NComp, Data, W2I, GradXf, Origin)) {
      Error = std::string("cannot set image input '") + Name + "'";
      return false;
    }
    InputSet[Idx] = true;
    return true;
  }

  bool initialize() {
    if (Initialized) {
      Error = "already initialized";
      return false;
    }
    int N = 0;
    const GlobalMeta *G = Derived::globalMeta(N);
    for (int I = 0; I < N; ++I) {
      if (!G[I].IsInput || InputSet.count(I))
        continue;
      if (!self().applyDefault(I)) {
        Error = std::string("input '") + G[I].Name +
                "' has no default and was not set";
        return false;
      }
    }
    if (!self().globalInit())
      return false;
    // Grid extents and strand creation.
    int64_t Total = 1;
    GridDims.clear();
    std::vector<int64_t> Lo(Derived::NumIters), Hi(Derived::NumIters);
    for (int K = 0; K < Derived::NumIters; ++K) {
      Lo[K] = self().iterLo(K);
      Hi[K] = self().iterHi(K);
      int64_t Extent = Hi[K] >= Lo[K] ? Hi[K] - Lo[K] + 1 : 0;
      GridDims.push_back(Extent);
      Total *= Extent;
    }
    Strands.resize(static_cast<size_t>(Total));
    Status.assign(static_cast<size_t>(Total), StrandStatus::Active);
    std::vector<int64_t> It(Lo);
    for (int64_t S = 0; S < Total; ++S) {
      self().initStrand(It.data(), Strands[static_cast<size_t>(S)]);
      for (int K = Derived::NumIters; K-- > 0;) {
        if (++It[static_cast<size_t>(K)] <= Hi[static_cast<size_t>(K)])
          break;
        It[static_cast<size_t>(K)] = Lo[static_cast<size_t>(K)];
      }
    }
    Initialized = true;
    return true;
  }

  /// Run flags of the ddr_run_flags C ABI entry point. Stats implies the
  /// PR-1 recorder; Profile selects the instrumented update bodies
  /// (updateProf / stabilizeStrandProf) so the clean path stays
  /// zero-overhead; Lifecycle records per-strand start/stabilize/die events
  /// (and implies stats collection, which carries them).
  static constexpr int RunStatsFlag = 1;
  static constexpr int RunProfileFlag = 2;
  static constexpr int RunLifecycleFlag = 4;
  /// Arm the metrics registry (runtime ABI v5): per-worker sharded counter /
  /// histogram cells, scraped live through ddr_metrics_read. Implies stats
  /// collection like Lifecycle does.
  static constexpr int RunMetricsFlag = 8;
  /// Run parallel supersteps on the persistent work-stealing StrandPool
  /// (runtime ABI v6) instead of the per-run BSP thread set. Ignored when
  /// Workers <= 0 (sequential). Hosts probing an older .so that predates
  /// this flag fall back to BSP on their side.
  static constexpr int RunPooledFlag = 16;
  /// Record a canonical state digest per superstep (runtime ABI v7; see
  /// observe/digest.h): entry 0 post-initialize, entry k after superstep k.
  /// Read back through ddr_digest_read. Hosts probing a pre-v7 .so see no
  /// ddr_digest_read symbol and degrade to final-output-only digests.
  static constexpr int RunDigestFlag = 32;
  /// Additionally retain the full canonicalized per-strand state behind
  /// every digest entry (implies RunDigestFlag); read back through
  /// ddr_state_read. Memory scales with entries x strands x slots.
  static constexpr int RunStateLogFlag = 64;

  /// The highest DSL source line the generated profiled code instruments
  /// (Derived::ProfMaxLine when the emitter provided one).
  static constexpr int profMaxLine() {
    if constexpr (requires { Derived::ProfMaxLine; })
      return Derived::ProfMaxLine;
    else
      return 0;
  }

  /// Number of scalar state slots the emitter exposed for digesting
  /// (Derived::NumStateSlots). Hand-written Derived classes in tests that
  /// predate v7 have none — their digests cover status bytes only.
  static constexpr int numStateSlots() {
    if constexpr (requires { Derived::NumStateSlots; })
      return Derived::NumStateSlots;
    else
      return 0;
  }

  /// Slot \p K of strand \p S as a double (Derived::strandSlotValue — the
  /// emitter's switch over the scalarized members, params first then state
  /// vars, matching the interpreter's flattening order).
  double slotValue(const StrandT &S, int K) {
    if constexpr (requires(Derived &D, const StrandT &St) {
                    D.strandSlotValue(St, 0);
                  })
      return self().strandSlotValue(S, K);
    else {
      (void)S;
      (void)K;
      return 0.0;
    }
  }

  /// Append one canonical digest entry (observe/digest.h) over the current
  /// Status vector and strand states; with the state log armed, also retain
  /// the canonicalized per-strand words.
  void captureDigestEntry() {
    observe::StrandStateHasher H;
    const int NS = numStateSlots();
    for (size_t S = 0; S < Strands.size(); ++S) {
      uint8_t St = static_cast<uint8_t>(Status[S]);
      H.status(St);
      if (DLog.HasStates)
        DLog.Status.push_back(St);
      for (int K = 0; K < NS; ++K) {
        double V = slotValue(Strands[S], K);
        H.slot(V);
        if (DLog.HasStates)
          DLog.Slots.push_back(observe::canonicalBits(V));
      }
    }
    DLog.Entries.push_back(H.digest());
  }

  int run(int MaxSteps, int Workers, int BlockSize, int Collect) {
    return runFlags(MaxSteps, Workers, BlockSize,
                    Collect ? RunStatsFlag : 0);
  }

  /// Install the fault-injection plan for the next runPolicy call (flat
  /// observe::unflattenPlan layout). Returns false on a malformed buffer.
  bool setFaultPlan(const uint64_t *Data, int64_t N) {
    if (!observe::unflattenPlan(Data, static_cast<size_t>(N),
                                PendingPolicy.Plan)) {
      Error = "malformed fault plan";
      return false;
    }
    return true;
  }

  /// The policied run entry point behind ddr_run_policy (runtime ABI v4):
  /// arm the run policy, run, disarm. A plain ddr_run/ddr_run_flags call
  /// never inherits a stale policy — the armed flag lives only for the
  /// duration of this call.
  int runPolicy(int MaxSteps, int Workers, int BlockSize, int Flags,
                int64_t DeadlineNs, int64_t MaxFaults, int WatchdogSteps,
                int StrictFp) {
    PendingPolicy.DeadlineNs = DeadlineNs;
    PendingPolicy.MaxFaults = MaxFaults;
    PendingPolicy.WatchdogSteps = WatchdogSteps;
    PendingPolicy.StrictFp = StrictFp != 0;
    PolicyArmed = true;
    int Steps = runFlags(MaxSteps, Workers, BlockSize, Flags);
    PolicyArmed = false;
    PendingPolicy = rt::RunPolicy();
    return Steps;
  }

  int runFlags(int MaxSteps, int Workers, int BlockSize, int Flags) {
    if (!Initialized) {
      Error = "run() before initialize()";
      return -1;
    }
    const bool Lifecycle = Flags & RunLifecycleFlag;
    const bool Metrics = Flags & RunMetricsFlag;
    const bool Collect = (Flags & RunStatsFlag) || Lifecycle || Metrics;
    const bool Profile = Flags & RunProfileFlag;
    const bool Digest = Flags & (RunDigestFlag | RunStateLogFlag);
    const rt::Scheduler Sched = (Flags & RunPooledFlag)
                                    ? rt::Scheduler::Pooled
                                    : rt::Scheduler::Bsp;
    if (Profile)
      Prof.start(Workers <= 0 ? 1 : Workers, profMaxLine());
    observe::Recorder *R = Collect ? &Rec : nullptr;
    Rec.start(Workers <= 0 ? 0 : Workers, Lifecycle, Metrics);
    rt::RunControl Ctl(PolicyArmed ? PendingPolicy : rt::RunPolicy());
    rt::RunControl *CtlP =
        PolicyArmed && Ctl.policy().active() ? &Ctl : nullptr;
    const bool StrictFp = CtlP && Ctl.policy().StrictFp;
    DLog.clear(); // stale digests must not outlive a non-digest run
    rt::StepHook Hook;
    const rt::StepHook *HookP = nullptr;
    if (Digest) {
      DLog.NumStrands = static_cast<int64_t>(Strands.size());
      DLog.NumSlots = numStateSlots();
      DLog.HasStates = Flags & RunStateLogFlag;
      captureDigestEntry(); // entry 0: post-initialize state
      Hook = [this](int) { captureDigestEntry(); };
      HookP = &Hook;
    }
    int Steps;
    if (Profile) {
      auto Update = [this, CtlP, StrictFp](size_t I, int W) -> StrandStatus {
        uint64_t *P = Prof.shard(W);
        ExitKind K = self().updateProf(Strands[I], P);
        StrandStatus Ret = StrandStatus::Dead;
        switch (K) {
        case ExitKind::Continue:
          Ret = StrandStatus::Active;
          break;
        case ExitKind::Stabilize:
          self().stabilizeStrandProf(Strands[I], P);
          Ret = StrandStatus::Stable;
          break;
        case ExitKind::Die:
          Ret = StrandStatus::Dead;
          break;
        }
        if (StrictFp && Ret != StrandStatus::Dead &&
            !self().strandFinite(Strands[I])) {
          CtlP->recordFault(W, static_cast<uint64_t>(I),
                            rt::FaultKind::NonFinite,
                            "strand state is not finite");
          return StrandStatus::Faulted;
        }
        return Ret;
      };
      Steps = Workers <= 0
                  ? rt::runSequential(Status, Update, MaxSteps, R, CtlP,
                                      HookP)
                  : rt::runScheduled(Sched, Status, Update, MaxSteps,
                                     Workers, BlockSize, R, CtlP, HookP);
    } else {
      auto Update = [this, CtlP, StrictFp](size_t I, int W) -> StrandStatus {
        ExitKind K = self().update(Strands[I]);
        StrandStatus Ret = StrandStatus::Dead;
        switch (K) {
        case ExitKind::Continue:
          Ret = StrandStatus::Active;
          break;
        case ExitKind::Stabilize:
          self().stabilizeStrand(Strands[I]);
          Ret = StrandStatus::Stable;
          break;
        case ExitKind::Die:
          Ret = StrandStatus::Dead;
          break;
        }
        if (StrictFp && Ret != StrandStatus::Dead &&
            !self().strandFinite(Strands[I])) {
          CtlP->recordFault(W, static_cast<uint64_t>(I),
                            rt::FaultKind::NonFinite,
                            "strand state is not finite");
          return StrandStatus::Faulted;
        }
        (void)W;
        return Ret;
      };
      Steps = Workers <= 0
                  ? rt::runSequential(Status, Update, MaxSteps, R, CtlP,
                                      HookP)
                  : rt::runScheduled(Sched, Status, Update, MaxSteps,
                                     Workers, BlockSize, R, CtlP, HookP);
    }
    if (CtlP)
      Rec.countFault(static_cast<uint64_t>(Ctl.faultCount()));
    if (Collect)
      Stats = Rec.take(Steps, Workers <= 0 ? 0 : Workers);
    else
      Stats = observe::RunStats();
    ProfData = Profile ? Prof.take() : observe::ProfileData();
    bool Quiesced = true;
    for (StrandStatus S : Status)
      if (S == StrandStatus::Active) {
        Quiesced = false;
        break;
      }
    if (CtlP) {
      LastOutcome = static_cast<int>(Ctl.finish(Quiesced));
      LastFaults = Ctl.takeFaults();
    } else {
      LastOutcome = static_cast<int>(Quiesced ? rt::RunOutcome::Converged
                                              : rt::RunOutcome::StepLimit);
      LastFaults.clear();
    }
    Stats.Outcome = static_cast<rt::RunOutcome>(LastOutcome);
    return Steps;
  }

  /// Flatten the stats of the last collected run into \p Out (see
  /// observe::flattenStats for the layout). With Out == nullptr returns the
  /// required word count; otherwise writes at most \p Cap words and returns
  /// the number written.
  int64_t readStats(uint64_t *Out, int64_t Cap) const {
    return copyFlat(observe::flattenStats(Stats), Out, Cap);
  }

  /// Flatten the source-level profile counters of the last profiled run
  /// (observe::flattenProfile layout; same null/size protocol as readStats).
  int64_t readProf(uint64_t *Out, int64_t Cap) const {
    return copyFlat(observe::flattenProfile(ProfData, /*Sites=*/false), Out,
                    Cap);
  }

  /// Flatten the metrics registry (observe::flattenMetrics layout; same
  /// null/size protocol as readStats). Unlike readStats this is valid to
  /// call concurrently with runFlags: the snapshot reads only the merged
  /// atomics the coordinator publishes at superstep barriers, which is what
  /// makes live `GET /metrics` scrapes of a native run race-free.
  int64_t readMetrics(uint64_t *Out, int64_t Cap) const {
    return copyFlat(observe::flattenMetrics(Rec.metricsData()), Out, Cap);
  }

  /// Flatten the strand lifecycle events of the last collected run
  /// (observe::flattenEvents layout; same null/size protocol as readStats).
  int64_t readEvents(uint64_t *Out, int64_t Cap) const {
    return copyFlat(observe::flattenEvents(Stats), Out, Cap);
  }

  /// Flatten the fault records of the last run (observe::flattenFaults
  /// layout; same null/size protocol as readStats). Messages are read
  /// per-index through faultMsg.
  int64_t readFaults(uint64_t *Out, int64_t Cap) const {
    return copyFlat(observe::flattenFaults(LastFaults), Out, Cap);
  }

  /// Flatten the digest stream of the last digest-armed run
  /// (observe::flattenDigests layout; same null/size protocol as
  /// readStats). Empty stream when the last run did not record.
  int64_t readDigests(uint64_t *Out, int64_t Cap) const {
    return copyFlat(observe::flattenDigests(DLog), Out, Cap);
  }

  /// Flatten the per-strand state log of the last state-log-armed run
  /// (observe::flattenStates layout). Returns 0 when the last run recorded
  /// digests only (or nothing) — hosts treat < 3 words as absent.
  int64_t readStates(uint64_t *Out, int64_t Cap) const {
    if (!DLog.HasStates)
      return 0;
    return copyFlat(observe::flattenStates(DLog), Out, Cap);
  }

  /// Digest log of the last digest-armed run (tests linking the prelude
  /// directly read it here; the C ABI goes through readDigests/readStates).
  const observe::DigestLog &digestLog() const { return DLog; }

  /// Message text of fault \p I of the last run, or null when out of range.
  /// The pointer stays valid until the next run.
  const char *faultMsg(int64_t I) const {
    if (I < 0 || static_cast<size_t>(I) >= LastFaults.size())
      return nullptr;
    return LastFaults[static_cast<size_t>(I)].Message.c_str();
  }

  /// observe::RunOutcome of the last run, as an int for the C ABI.
  int lastOutcome() const { return LastOutcome; }

  int outputDims(int64_t *Dims, int MaxD) const {
    if (Derived::IsGrid) {
      int N = std::min<int>(MaxD, static_cast<int>(GridDims.size()));
      for (int I = 0; I < N; ++I)
        Dims[I] = GridDims[static_cast<size_t>(I)];
      return static_cast<int>(GridDims.size());
    }
    if (MaxD >= 1)
      Dims[0] = static_cast<int64_t>(numStable());
    return 1;
  }

  int64_t getOutput(const char *Name, double *Data, int64_t Cap) {
    int NOut = 0;
    const OutputMeta *O = Derived::outputMeta(NOut);
    int Out = -1;
    for (int I = 0; I < NOut; ++I)
      if (std::strcmp(O[I].Name, Name) == 0)
        Out = I;
    if (Out < 0) {
      Error = std::string("no output named '") + Name + "'";
      return -1;
    }
    int Comps = O[Out].Comps;
    int64_t Written = 0;
    for (size_t S = 0; S < Strands.size(); ++S) {
      bool Emit;
      bool Zero = false;
      if (Derived::IsGrid) {
        Emit = true;
        Zero = Status[S] == StrandStatus::Dead ||
               Status[S] == StrandStatus::Faulted;
      } else {
        Emit = Status[S] == StrandStatus::Stable;
      }
      if (!Emit)
        continue;
      for (int C = 0; C < Comps; ++C) {
        if (Written >= Cap)
          return Written;
        Data[Written++] =
            Zero ? 0.0 : self().outputComp(Strands[S], Out, C);
      }
    }
    return Written;
  }

  size_t numStrands() const { return Strands.size(); }
  size_t numStable() const {
    size_t N = 0;
    for (StrandStatus S : Status)
      N += S == StrandStatus::Stable;
    return N;
  }
  size_t numDead() const {
    size_t N = 0;
    for (StrandStatus S : Status)
      N += S == StrandStatus::Dead;
    return N;
  }
  size_t numFaulted() const {
    size_t N = 0;
    for (StrandStatus S : Status)
      N += S == StrandStatus::Faulted;
    return N;
  }

  /// Default stabilize hook (overridden when the strand has one).
  void stabilizeStrand(StrandT &) {}

  /// Default strict-fp predicate: the emitter overrides this with a check
  /// over every Real-typed strand slot; state layouts with no Real slots
  /// (or old generated code) are vacuously finite.
  bool strandFinite(const StrandT &) const { return true; }

  /// Default profiled bodies: fall back to the clean ones. The emitter
  /// overrides both with instrumented copies when profiling support is
  /// compiled in, so old generated code keeps loading (ddr_run_flags simply
  /// yields empty profiles).
  ExitKind updateProf(StrandT &S, uint64_t *) { return self().update(S); }
  void stabilizeStrandProf(StrandT &S, uint64_t *) {
    self().stabilizeStrand(S);
  }

protected:
  static int64_t copyFlat(const std::vector<uint64_t> &Flat, uint64_t *Out,
                          int64_t Cap) {
    if (!Out)
      return static_cast<int64_t>(Flat.size());
    int64_t N = std::min<int64_t>(Cap, static_cast<int64_t>(Flat.size()));
    for (int64_t I = 0; I < N; ++I)
      Out[I] = Flat[static_cast<size_t>(I)];
    return N;
  }

  std::map<int, bool> InputSet;
  std::vector<StrandT> Strands;
  std::vector<StrandStatus> Status;
  std::vector<int64_t> GridDims;
  observe::RunStats Stats; ///< telemetry of the last collected run
  observe::Recorder Rec;   ///< member (not run-local) so readMetrics can
                           ///< scrape the registry mid-run
  observe::Profiler Prof;
  observe::ProfileData ProfData; ///< profile of the last profiled run
  rt::RunPolicy PendingPolicy;   ///< staged by setFaultPlan/runPolicy
  bool PolicyArmed = false;      ///< true only inside runPolicy
  std::vector<observe::StrandFault> LastFaults; ///< faults of the last run
  int LastOutcome = 0; ///< observe::RunOutcome of the last run
  observe::DigestLog DLog; ///< digest stream of the last digest-armed run
  bool Initialized = false;
};

} // namespace diderot::ndr

#endif // DIDEROT_RUNTIME_NATIVE_PRELUDE_H

//===--- codegen/emit_cpp.cpp - LowIR -> C++ translation unit ----------------===//
//
// The code generation phase (paper Section 5.1): "Because these targets are
// all block-structured languages, our first step in code generation is to
// convert the LowIR SSA representation into a block-structured AST" — our
// structured SSA already *is* block-structured, so emission is a direct walk.
// "The target-specific backends translate this representation into the
// appropriate representation and augment the code with type definitions and
// runtime support. The output is then passed to the host system's compiler."
//
// The emitted translation unit is self-contained modulo the header-only
// native prelude, defines the Globals and Strand structs, one C++ function
// per IR function, and the plain C ABI (ddr_*) the driver binds with dlsym.
//
//===----------------------------------------------------------------------===//

#include <cassert>
#include <cctype>
#include <functional>
#include <map>
#include <sstream>
#include <utility>

#include "driver/driver.h"
#include "ir/ir.h"
#include "observe/profiler.h"
#include "support/strings.h"

namespace diderot::codegen {

namespace {

using ir::Instr;
using ir::Module;
using ir::Op;
using ir::ValueId;

/// Scalar slot count of a (Low-level) type.
int slotCount(const Type &T) {
  switch (T.kind()) {
  case TypeKind::Tensor:
    return T.shape().numComponents();
  case TypeKind::Sequence:
    return T.seqLen() * slotCount(T.elem());
  default:
    return 1;
  }
}

Type slotType(const Type &T, int I) {
  switch (T.kind()) {
  case TypeKind::Tensor:
    return Type::real();
  case TypeKind::Sequence:
    return slotType(T.elem(), I % slotCount(T.elem()));
  default:
    return T;
  }
}

/// C++ type for a Low scalar type.
std::string cxxType(const Type &T) {
  switch (T.kind()) {
  case TypeKind::Bool:
    return "bool";
  case TypeKind::Int:
    return "int64_t";
  case TypeKind::String:
    return "std::string";
  case TypeKind::Tensor:
    assert(T.isReal() && "tensors are scalarized before codegen");
    return "Real";
  case TypeKind::Image:
    return "ImgPtr"; // alias for const ImageData<Real>*, avoids "const const"
  default:
    assert(false && "no C++ type for this Diderot type");
    return "void";
  }
}

std::string sanitize(const std::string &Name) {
  std::string Out;
  for (char C : Name)
    Out += (std::isalnum(static_cast<unsigned char>(C)) || C == '_') ? C : '_';
  return Out;
}

/// Global field name in the Globals struct.
std::string globalField(const Module &M, int Idx) {
  return strf("g", Idx, "_", sanitize(M.Globals[static_cast<size_t>(Idx)].Name));
}

/// Kind code for GlobalMeta: 0 real, 1 int, 2 bool, 3 string, 4 tensor,
/// 5 image.
int globalKind(const Type &T) {
  if (T.isReal())
    return 0;
  if (T.isInt())
    return 1;
  if (T.isBool())
    return 2;
  if (T.isString())
    return 3;
  if (T.isTensor() || T.isSequence())
    return 4;
  return 5;
}

//===----------------------------------------------------------------------===//
// Function body emission
//===----------------------------------------------------------------------===//

/// How an Exit terminator is rendered, per function role.
using ExitEmitter = std::function<void(std::ostringstream &, int Indent,
                                       ir::ExitAttr::Kind,
                                       const std::vector<std::string> &)>;

class FnEmitter {
public:
  /// With \p Profiled set, the emitted body bumps the DDRPROF counter array
  /// (dense (line, class) layout, see observe::Profiler) for every profiled
  /// instruction. Increments are aggregated per *segment* — a maximal run of
  /// consecutive non-If instructions — and flushed at segment start, so a
  /// branch that Exits early never charges for the instructions it skipped
  /// (matching the interpreter, where an Exit propagates out of every
  /// region).
  FnEmitter(const Module &M, const ir::Function &F, std::string Prefix,
            ExitEmitter OnExit, bool InGlobalInit, bool Profiled = false)
      : M(M), F(F), Prefix(std::move(Prefix)), OnExit(std::move(OnExit)),
        InGlobalInit(InGlobalInit), Profiled(Profiled) {}

  /// Name of SSA value \p V.
  std::string name(ValueId V) const { return strf(Prefix, V); }

  /// Emit declarations binding parameter value names to \p ParamInits
  /// (caller-provided C++ expressions, one per parameter).
  void emitParams(std::ostringstream &OS, int Indent,
                  const std::vector<std::string> &ParamInits) {
    assert(static_cast<int>(ParamInits.size()) == F.NumParams);
    for (int P = 0; P < F.NumParams; ++P)
      line(OS, Indent,
           strf("const ", cxxType(F.typeOf(P)), " ", name(P), " = ",
                ParamInits[static_cast<size_t>(P)], ";"));
  }

  void emitRegion(std::ostringstream &OS, int Indent, const ir::Region &R,
                  const std::vector<std::string> *IfResultNames) {
    if (!Profiled) {
      for (const Instr &I : R.Body)
        emitInstr(OS, Indent, I, IfResultNames);
      return;
    }
    size_t I = 0;
    while (I < R.Body.size()) {
      if (R.Body[I].Opcode == Op::If) {
        emitInstr(OS, Indent, R.Body[I], IfResultNames);
        ++I;
        continue;
      }
      // Aggregate this segment's profile increments and flush them up front
      // (every instruction of a segment executes once the segment starts).
      size_t End = I;
      std::map<std::pair<int, int>, uint64_t> Counts;
      while (End < R.Body.size() && R.Body[End].Opcode != Op::If) {
        const Instr &In = R.Body[End];
        int C = ir::profClassOf(In.Opcode);
        if (C >= 0 && In.Loc.isValid())
          ++Counts[{In.Loc.Line, C}];
        ++End;
      }
      for (const auto &[Key, N] : Counts)
        line(OS, Indent,
             strf("DDRPROF[", Key.first * observe::NumProfClasses + Key.second,
                  "] += ", N, ";"));
      for (; I < End; ++I)
        emitInstr(OS, Indent, R.Body[I], IfResultNames);
    }
  }

private:
  const Module &M;
  const ir::Function &F;
  std::string Prefix;
  ExitEmitter OnExit;
  bool InGlobalInit;
  bool Profiled;

  static void line(std::ostringstream &OS, int Indent, const std::string &S) {
    OS << std::string(static_cast<size_t>(Indent) * 2, ' ') << S << "\n";
  }

  std::string op(const Instr &I, size_t K) const { return name(I.Operands[K]); }

  /// Declare instruction result 0 with initializer \p Expr.
  void def(std::ostringstream &OS, int Indent, const Instr &I,
           const std::string &Expr) {
    line(OS, Indent,
         strf("const ", cxxType(F.typeOf(I.Results[0])), " ",
              name(I.Results[0]), " = ", Expr, ";"));
  }

  void emitInstr(std::ostringstream &OS, int Indent, const Instr &I,
                 const std::vector<std::string> *IfResultNames);
};

void FnEmitter::emitInstr(std::ostringstream &OS, int Indent, const Instr &I,
                          const std::vector<std::string> *IfResultNames) {
  auto Infix = [&](const char *Sym) {
    def(OS, Indent, I, strf("(", op(I, 0), " ", Sym, " ", op(I, 1), ")"));
  };
  auto Call1 = [&](const char *Fn) {
    def(OS, Indent, I, strf(Fn, "(", op(I, 0), ")"));
  };
  auto Call2 = [&](const char *Fn) {
    def(OS, Indent, I, strf(Fn, "(", op(I, 0), ", ", op(I, 1), ")"));
  };

  switch (I.Opcode) {
  case Op::ConstBool:
    def(OS, Indent, I, std::get<bool>(I.A) ? "true" : "false");
    return;
  case Op::ConstInt:
    def(OS, Indent, I, strf("INT64_C(", std::get<int64_t>(I.A), ")"));
    return;
  case Op::ConstReal:
    def(OS, Indent, I, strf("Real(", formatReal(std::get<double>(I.A)), ")"));
    return;
  case Op::ConstString: {
    std::string Esc;
    for (char C : std::get<std::string>(I.A)) {
      if (C == '"' || C == '\\')
        Esc += '\\';
      Esc += C;
    }
    def(OS, Indent, I, strf("std::string(\"", Esc, "\")"));
    return;
  }
  case Op::GlobalGet: {
    int GIdx = static_cast<int>(std::get<int64_t>(I.A));
    const Type &GTy = M.Globals[static_cast<size_t>(GIdx)].Ty;
    std::string Field = strf("G.", globalField(M, GIdx));
    if (GTy.isImage()) {
      def(OS, Indent, I, strf("&", Field));
      return;
    }
    int N = slotCount(GTy);
    if (N == 1) {
      def(OS, Indent, I, Field);
      return;
    }
    for (int K = 0; K < N; ++K)
      line(OS, Indent,
           strf("const ", cxxType(F.typeOf(I.Results[static_cast<size_t>(K)])),
                " ", name(I.Results[static_cast<size_t>(K)]), " = ", Field,
                "[", K, "];"));
    return;
  }

  case Op::Add:
    Infix("+");
    return;
  case Op::Sub:
    Infix("-");
    return;
  case Op::Mul:
    Infix("*");
    return;
  case Op::Div:
    Infix("/");
    return;
  case Op::Mod:
    Infix("%");
    return;
  case Op::Neg:
    def(OS, Indent, I, strf("-", op(I, 0)));
    return;
  case Op::Min:
    def(OS, Indent, I,
        strf("(", op(I, 0), " < ", op(I, 1), " ? ", op(I, 0), " : ", op(I, 1),
             ")"));
    return;
  case Op::Max:
    def(OS, Indent, I,
        strf("(", op(I, 0), " > ", op(I, 1), " ? ", op(I, 0), " : ", op(I, 1),
             ")"));
    return;
  case Op::Pow:
    Call2("std::pow");
    return;
  case Op::Sqrt:
    Call1("std::sqrt");
    return;
  case Op::Sin:
    Call1("std::sin");
    return;
  case Op::Cos:
    Call1("std::cos");
    return;
  case Op::Tan:
    Call1("std::tan");
    return;
  case Op::Asin:
    Call1("std::asin");
    return;
  case Op::Acos:
    Call1("std::acos");
    return;
  case Op::Atan:
    Call1("std::atan");
    return;
  case Op::Atan2:
    Call2("std::atan2");
    return;
  case Op::Exp:
    Call1("std::exp");
    return;
  case Op::Log:
    Call1("std::log");
    return;
  case Op::Floor:
    Call1("std::floor");
    return;
  case Op::Ceil:
    Call1("std::ceil");
    return;
  case Op::Round:
    Call1("std::round");
    return;
  case Op::Trunc:
    Call1("std::trunc");
    return;
  case Op::Abs:
    Call1("std::abs");
    return;
  case Op::Clamp:
    def(OS, Indent, I,
        strf("std::min(", op(I, 2), ", std::max(", op(I, 1), ", ", op(I, 0),
             "))"));
    return;
  case Op::IntToReal:
    def(OS, Indent, I, strf("Real(", op(I, 0), ")"));
    return;
  case Op::RealToInt:
    def(OS, Indent, I, strf("(int64_t)std::floor(", op(I, 0), ")"));
    return;

  case Op::Lt:
    Infix("<");
    return;
  case Op::Le:
    Infix("<=");
    return;
  case Op::Gt:
    Infix(">");
    return;
  case Op::Ge:
    Infix(">=");
    return;
  case Op::Eq:
    Infix("==");
    return;
  case Op::Ne:
    Infix("!=");
    return;
  case Op::And:
    Infix("&&"); // operands are pure bools; short-circuiting was resolved
    return;      // into control flow during simplification
  case Op::Or:
    Infix("||");
    return;
  case Op::Not:
    def(OS, Indent, I, strf("!", op(I, 0)));
    return;
  case Op::Select:
    def(OS, Indent, I,
        strf("(", op(I, 0), " ? ", op(I, 1), " : ", op(I, 2), ")"));
    return;

  case Op::PolyEval: {
    const auto &C = std::get<std::vector<double>>(I.A);
    // Horner: ((c_n x + c_{n-1}) x + ...) x + c_0
    std::string E = strf("Real(", formatReal(C.back()), ")");
    for (size_t K = C.size() - 1; K-- > 0;)
      E = strf("(", E, " * ", op(I, 0), " + Real(", formatReal(C[K]), "))");
    def(OS, Indent, I, E);
    return;
  }

  case Op::ImgMeta: {
    const auto &A = std::get<ir::MetaAttr>(I.A);
    int D = F.typeOf(I.Operands[0]).dim();
    switch (A.K) {
    case ir::MetaAttr::W2I:
      def(OS, Indent, I, strf(op(I, 0), "->W2I[", A.R * D + A.C, "]"));
      return;
    case ir::MetaAttr::Origin:
      def(OS, Indent, I, strf(op(I, 0), "->Origin[", A.R, "]"));
      return;
    case ir::MetaAttr::GradXf:
      def(OS, Indent, I, strf(op(I, 0), "->GradXf[", A.R * D + A.C, "]"));
      return;
    case ir::MetaAttr::Size:
      def(OS, Indent, I, strf(op(I, 0), "->Sizes[", A.R, "]"));
      return;
    }
    return;
  }
  case Op::InsideTest: {
    int Support = static_cast<int>(std::get<int64_t>(I.A));
    std::string E;
    for (size_t A = 1; A < I.Operands.size(); ++A) {
      if (!E.empty())
        E += " && ";
      E += strf("(", op(I, A), " >= ", Support - 1, " && ", op(I, A),
                " <= ", op(I, 0), "->Sizes[", A - 1, "] - 1 - ", Support, ")");
    }
    def(OS, Indent, I, E);
    return;
  }
  case Op::VoxelLoad: {
    const auto &VA = std::get<ir::VoxelAttr>(I.A);
    std::string Flat = strf(VA.Comp);
    for (size_t A = 1; A < I.Operands.size(); ++A) {
      int Off = VA.Offsets[A - 1];
      std::string IdxE =
          Off == 0 ? op(I, A) : strf("(", op(I, A), " + ", Off, ")");
      Flat += strf(" + clampIndex(", IdxE, ", ", op(I, 0), "->Sizes[", A - 1,
                   "] - 1) * ", op(I, 0), "->Stride[", A - 1, "]");
    }
    def(OS, Indent, I, strf(op(I, 0), "->Data[(size_t)(", Flat, ")]"));
    return;
  }
  case Op::LoadImage: {
    assert(InGlobalInit && "load() is restricted to global initialization");
    std::string Var = strf("img_", name(I.Results[0]));
    const Type &T = F.typeOf(I.Results[0]);
    std::string Esc = std::get<std::string>(I.A);
    line(OS, Indent, strf("ImageData<Real> ", Var, ";"));
    line(OS, Indent,
         strf("if (!loadNrrdFile<Real>(\"", Esc, "\", ", T.dim(), ", ",
              T.shape().numComponents(), ", ", Var, ", Err)) return false;"));
    def(OS, Indent, I, strf("&", Var));
    return;
  }

  case Op::EigenVals:
  case Op::EigenVecs: {
    int N = static_cast<int>(std::get<int64_t>(I.A));
    std::string Tag = name(I.Results[0]);
    std::string MV = strf("em_", Tag);
    std::string LV = strf("el_", Tag);
    std::string VV = strf("ev_", Tag);
    std::string Init;
    for (size_t K = 0; K < I.Operands.size(); ++K)
      Init += strf(K ? ", " : "", op(I, K));
    line(OS, Indent, strf("Real ", MV, "[", N * N, "] = {", Init, "};"));
    line(OS, Indent, strf("Real ", LV, "[", N, "];"));
    if (I.Opcode == Op::EigenVals) {
      line(OS, Indent, strf(N == 2 ? "diderot::eigenvalsSym2(" :
                                     "diderot::eigenvalsSym3(",
                            MV, ", ", LV, ");"));
      for (int K = 0; K < N; ++K)
        line(OS, Indent,
             strf("const Real ", name(I.Results[static_cast<size_t>(K)]),
                  " = ", LV, "[", K, "];"));
    } else {
      line(OS, Indent, strf("Real ", VV, "[", N * N, "];"));
      line(OS, Indent, strf(N == 2 ? "diderot::eigensystemSym2(" :
                                     "diderot::eigensystemSym3(",
                            MV, ", ", LV, ", ", VV, ");"));
      for (int K = 0; K < N * N; ++K)
        line(OS, Indent,
             strf("const Real ", name(I.Results[static_cast<size_t>(K)]),
                  " = ", VV, "[", K, "];"));
    }
    return;
  }

  case Op::If: {
    // Declare the merged results, then branch.
    std::vector<std::string> ResultNames;
    for (ValueId R : I.Results) {
      ResultNames.push_back(name(R));
      line(OS, Indent, strf(cxxType(F.typeOf(R)), " ", name(R), ";"));
    }
    line(OS, Indent, strf("if (", op(I, 0), ") {"));
    emitRegion(OS, Indent + 1, I.Regions[0], &ResultNames);
    line(OS, Indent, "} else {");
    emitRegion(OS, Indent + 1, I.Regions[1], &ResultNames);
    line(OS, Indent, "}");
    return;
  }
  case Op::Yield: {
    assert(IfResultNames && "yield outside an if");
    for (size_t K = 0; K < I.Operands.size(); ++K)
      line(OS, Indent, strf((*IfResultNames)[K], " = ", op(I, K), ";"));
    return;
  }
  case Op::Exit: {
    std::vector<std::string> Vals;
    for (size_t K = 0; K < I.Operands.size(); ++K)
      Vals.push_back(op(I, K));
    OnExit(OS, Indent, std::get<ir::ExitAttr>(I.A).K, Vals);
    return;
  }

  default:
    assert(false && "op not expected at LowIR during emission");
    line(OS, Indent, strf("#error unhandled op ", ir::opName(I.Opcode)));
    return;
  }
}

//===----------------------------------------------------------------------===//
// Module emission
//===----------------------------------------------------------------------===//

class ModuleEmitter {
public:
  ModuleEmitter(const Module &M, bool DoublePrecision)
      : M(M), DoublePrecision(DoublePrecision) {
    // Strand layout: params then state, flattened.
    for (const Type &T : M.StrandParams)
      addSlots(T);
    ParamSlots = static_cast<int>(SlotTypes.size());
    for (const ir::StateSlot &S : M.State) {
      StateSlotBase.push_back(static_cast<int>(SlotTypes.size()));
      addSlots(S.Ty);
    }
  }

  std::string run();

private:
  void addSlots(const Type &T) {
    for (int I = 0; I < slotCount(T); ++I)
      SlotTypes.push_back(slotType(T, I));
  }

  std::string slotName(int I) const { return strf("m", I); }

  void emitHeader(std::ostringstream &OS);
  void emitGlobalsStruct(std::ostringstream &OS);
  void emitStrandStruct(std::ostringstream &OS);
  void emitMetaTables(std::ostringstream &OS);
  void emitGlobalInit(std::ostringstream &OS);
  void emitDefaults(std::ostringstream &OS);
  void emitIters(std::ostringstream &OS);
  void emitInitStrand(std::ostringstream &OS);
  void emitMethod(std::ostringstream &OS, const ir::Function &F,
                  const std::string &CxxName, bool Profiled = false);
  void emitProfMap(std::ostringstream &OS);
  void emitProgClass(std::ostringstream &OS);
  void emitCApi(std::ostringstream &OS);

  const Module &M;
  bool DoublePrecision;
  std::vector<Type> SlotTypes;
  int ParamSlots = 0;
  std::vector<int> StateSlotBase;
};

/// Count the static (line, class) instrumentation sites of a region tree —
/// the d2x-style source map served through ddr_prof_map.
void addProfSites(const ir::Region &R,
                  std::map<std::pair<int, int>, uint64_t> &Sites) {
  for (const Instr &I : R.Body) {
    int C = ir::profClassOf(I.Opcode);
    if (C >= 0 && I.Loc.isValid())
      ++Sites[{I.Loc.Line, C}];
    for (const ir::Region &Sub : I.Regions)
      addProfSites(Sub, Sites);
  }
}

void ModuleEmitter::emitHeader(std::ostringstream &OS) {
  OS << "//===-- generated by diderot-cpp from program '" << M.Name
     << "' --===//\n";
  // The ABI tag participates in the shared-object cache key (native_load
  // hashes the generated source), so bumping it invalidates .so files built
  // against an older prelude/C API.
  OS << "// Do not edit; regenerate with diderotc. runtime ABI v7\n\n";
  OS << "#include <algorithm>\n#include <cmath>\n#include <cstdint>\n";
  OS << "#include \"runtime/native_prelude.h\"\n\n";
  OS << "namespace {\n\n";
  OS << "using namespace diderot::ndr;\n";
  OS << "using Real = " << (DoublePrecision ? "double" : "float") << ";\n";
  OS << "using ImgPtr = const ImageData<Real>*;\n\n";
}

void ModuleEmitter::emitGlobalsStruct(std::ostringstream &OS) {
  OS << "struct Globals {\n";
  for (size_t I = 0; I < M.Globals.size(); ++I) {
    const ir::GlobalVar &G = M.Globals[I];
    std::string Field = globalField(M, static_cast<int>(I));
    if (G.Ty.isImage())
      OS << "  ImageData<Real> " << Field << ";\n";
    else if (G.Ty.isString())
      OS << "  std::string " << Field << ";\n";
    else if (slotCount(G.Ty) == 1)
      OS << "  " << cxxType(slotType(G.Ty, 0)) << " " << Field << " = {};\n";
    else
      OS << "  Real " << Field << "[" << slotCount(G.Ty) << "] = {};\n";
  }
  OS << "};\n\n";
}

void ModuleEmitter::emitStrandStruct(std::ostringstream &OS) {
  OS << "struct Strand {\n";
  for (size_t I = 0; I < SlotTypes.size(); ++I)
    OS << "  " << cxxType(SlotTypes[I]) << " " << slotName(static_cast<int>(I))
       << ";\n";
  OS << "};\n\n";
}

void ModuleEmitter::emitMetaTables(std::ostringstream &OS) {
  OS << "const GlobalMeta kGlobals[] = {\n";
  for (size_t I = 0; I < M.Globals.size(); ++I) {
    const ir::GlobalVar &G = M.Globals[I];
    OS << "  {\"" << G.Name << "\", " << globalKind(G.Ty) << ", "
       << (G.Ty.isImage() ? G.Ty.shape().numComponents() : slotCount(G.Ty))
       << ", " << (G.Ty.isImage() ? G.Ty.dim() : 0) << ", "
       << (G.IsInput ? "true" : "false") << ", "
       << (G.DefaultFn >= 0 ? "true" : "false") << ", \"" << G.Ty.str()
       << "\"},\n";
  }
  OS << "};\n\n";
  OS << "const OutputMeta kOutputs[] = {\n";
  for (size_t I = 0; I < M.State.size(); ++I) {
    if (!M.State[I].IsOutput)
      continue;
    OS << "  {\"" << M.State[I].Name << "\", " << slotCount(M.State[I].Ty)
       << ", " << (M.State[I].Ty.isInt() ? "true" : "false") << "},\n";
  }
  OS << "};\n\n";
}

void ModuleEmitter::emitGlobalInit(std::ostringstream &OS) {
  const ir::Function &F = M.GlobalInit;
  std::ostringstream Body;
  // Exit assigns the non-input globals.
  std::vector<std::pair<int, int>> ResultSlots; // (global idx, comp)
  for (size_t I = 0; I < M.Globals.size(); ++I) {
    if (M.Globals[I].IsInput)
      continue;
    int N = M.Globals[I].Ty.isImage() ? 1 : slotCount(M.Globals[I].Ty);
    for (int K = 0; K < N; ++K)
      ResultSlots.push_back({static_cast<int>(I), K});
  }
  ExitEmitter OnExit = [&](std::ostringstream &O, int Indent,
                           ir::ExitAttr::Kind,
                           const std::vector<std::string> &Vals) {
    assert(Vals.size() == ResultSlots.size());
    for (size_t K = 0; K < Vals.size(); ++K) {
      auto [GIdx, Comp] = ResultSlots[K];
      const ir::GlobalVar &G = M.Globals[static_cast<size_t>(GIdx)];
      std::string Field = strf("G.", globalField(M, GIdx));
      std::string Pad(static_cast<size_t>(Indent) * 2, ' ');
      if (G.Ty.isImage())
        O << Pad << Field << " = *" << Vals[K] << ";\n";
      else if (slotCount(G.Ty) == 1)
        O << Pad << Field << " = " << Vals[K] << ";\n";
      else
        O << Pad << Field << "[" << Comp << "] = " << Vals[K] << ";\n";
    }
    O << std::string(static_cast<size_t>(Indent) * 2, ' ') << "return true;\n";
  };
  FnEmitter E(M, F, "gi", OnExit, /*InGlobalInit=*/true);
  // Params: one slot group per input global.
  std::vector<std::string> ParamInits;
  for (size_t I = 0; I < M.Globals.size(); ++I) {
    const ir::GlobalVar &G = M.Globals[I];
    if (!G.IsInput)
      continue;
    std::string Field = strf("G.", globalField(M, static_cast<int>(I)));
    if (G.Ty.isImage())
      ParamInits.push_back(strf("&", Field));
    else if (slotCount(G.Ty) == 1)
      ParamInits.push_back(Field);
    else
      for (int K = 0; K < slotCount(G.Ty); ++K)
        ParamInits.push_back(strf(Field, "[", K, "]"));
  }
  // Note: image inputs are single slots; tensor inputs expand, matching the
  // scalarized parameter list.
  OS << "bool f_globalInit(Globals& G, std::string& Err) {\n";
  OS << "  (void)Err; (void)G;\n";
  std::ostringstream B;
  E.emitParams(B, 1, ParamInits);
  E.emitRegion(B, 1, F.Body, nullptr);
  OS << B.str();
  OS << "}\n\n";
}

void ModuleEmitter::emitDefaults(std::ostringstream &OS) {
  for (size_t GI = 0; GI < M.Globals.size(); ++GI) {
    const ir::GlobalVar &G = M.Globals[GI];
    if (G.DefaultFn < 0)
      continue;
    const ir::Function &F =
        M.InputDefaults[static_cast<size_t>(G.DefaultFn)];
    std::string Field = strf("G.", globalField(M, static_cast<int>(GI)));
    ExitEmitter OnExit = [&](std::ostringstream &O, int Indent,
                             ir::ExitAttr::Kind,
                             const std::vector<std::string> &Vals) {
      std::string Pad(static_cast<size_t>(Indent) * 2, ' ');
      if (G.Ty.isImage()) {
        O << Pad << Field << " = *" << Vals[0] << ";\n";
      } else if (slotCount(G.Ty) == 1) {
        O << Pad << Field << " = " << Vals[0] << ";\n";
      } else {
        for (size_t K = 0; K < Vals.size(); ++K)
          O << Pad << Field << "[" << K << "] = " << Vals[K] << ";\n";
      }
      O << Pad << "return true;\n";
    };
    FnEmitter E(M, F, strf("d", GI, "_"), OnExit, /*InGlobalInit=*/true);
    OS << "bool f_default_" << GI << "(Globals& G, std::string& Err) {\n";
    OS << "  (void)Err; (void)G;\n";
    std::ostringstream B;
    E.emitRegion(B, 1, F.Body, nullptr);
    OS << B.str();
    OS << "}\n\n";
  }
}

void ModuleEmitter::emitIters(std::ostringstream &OS) {
  for (size_t K = 0; K < M.IterLo.size(); ++K) {
    for (bool Lo : {true, false}) {
      const ir::Function &F = Lo ? M.IterLo[K] : M.IterHi[K];
      ExitEmitter OnExit = [](std::ostringstream &O, int Indent,
                              ir::ExitAttr::Kind,
                              const std::vector<std::string> &Vals) {
        O << std::string(static_cast<size_t>(Indent) * 2, ' ') << "return "
          << Vals[0] << ";\n";
      };
      FnEmitter E(M, F, strf(Lo ? "lo" : "hi", K, "_"), OnExit, false);
      OS << "int64_t f_iter" << (Lo ? "Lo" : "Hi") << K
         << "(const Globals& G) {\n  (void)G;\n";
      std::ostringstream B;
      E.emitRegion(B, 1, F.Body, nullptr);
      OS << B.str();
      OS << "}\n\n";
    }
  }
}

void ModuleEmitter::emitInitStrand(std::ostringstream &OS) {
  OS << "void f_initStrand(const Globals& G, const int64_t* iters, Strand& S) "
        "{\n";
  OS << "  (void)G; (void)iters;\n";
  std::ostringstream B;

  // Stage 1: createArgs -> arg slot variables.
  const ir::Function &CA = M.CreateArgs;
  std::vector<std::string> ArgNames;
  {
    int Count = 0;
    for (const Type &T : CA.ResultTypes) {
      (void)T;
      ArgNames.push_back(strf("arg", Count++));
    }
    ExitEmitter OnExit = [&](std::ostringstream &O, int Indent,
                             ir::ExitAttr::Kind,
                             const std::vector<std::string> &Vals) {
      std::string Pad(static_cast<size_t>(Indent) * 2, ' ');
      for (size_t K = 0; K < Vals.size(); ++K)
        O << Pad << "const " << cxxType(CA.ResultTypes[K]) << " "
          << ArgNames[K] << " = " << Vals[K] << ";\n";
    };
    FnEmitter E(M, CA, "ca", OnExit, false);
    std::vector<std::string> ParamInits;
    for (int P = 0; P < CA.NumParams; ++P)
      ParamInits.push_back(strf("iters[", P, "]"));
    E.emitParams(B, 1, ParamInits);
    E.emitRegion(B, 1, CA.Body, nullptr);
  }

  // Stage 2: strandInit consumes the args and fills the state slots.
  const ir::Function &SI = M.StrandInit;
  {
    ExitEmitter OnExit = [&](std::ostringstream &O, int Indent,
                             ir::ExitAttr::Kind,
                             const std::vector<std::string> &Vals) {
      std::string Pad(static_cast<size_t>(Indent) * 2, ' ');
      // Parameters first (hidden leading state), then the declared state.
      for (size_t K = 0; K < ArgNames.size(); ++K)
        O << Pad << "S." << slotName(static_cast<int>(K)) << " = "
          << ArgNames[K] << ";\n";
      for (size_t K = 0; K < Vals.size(); ++K)
        O << Pad << "S."
          << slotName(static_cast<int>(K + ArgNames.size())) << " = "
          << Vals[K] << ";\n";
    };
    FnEmitter E(M, SI, "si", OnExit, false);
    std::vector<std::string> ParamInits = ArgNames;
    E.emitParams(B, 1, ParamInits);
    E.emitRegion(B, 1, SI.Body, nullptr);
  }
  OS << B.str();
  OS << "}\n\n";
}

void ModuleEmitter::emitMethod(std::ostringstream &OS, const ir::Function &F,
                               const std::string &CxxName, bool Profiled) {
  bool IsUpdate = CxxName == "f_update" || CxxName == "f_update_prof";
  ExitEmitter OnExit = [&](std::ostringstream &O, int Indent,
                           ir::ExitAttr::Kind K,
                           const std::vector<std::string> &Vals) {
    std::string Pad(static_cast<size_t>(Indent) * 2, ' ');
    for (size_t S = 0; S < Vals.size(); ++S)
      O << Pad << "S." << slotName(static_cast<int>(S)) << " = " << Vals[S]
        << ";\n";
    const char *Kind = K == ir::ExitAttr::Continue    ? "Continue"
                       : K == ir::ExitAttr::Stabilize ? "Stabilize"
                                                      : "Die";
    if (IsUpdate)
      O << Pad << "return ExitKind::" << Kind << ";\n";
    else
      O << Pad << "return;\n";
  };
  FnEmitter E(M, F, IsUpdate ? "u" : "st", OnExit, false, Profiled);
  OS << (IsUpdate ? "ExitKind " : "void ") << CxxName
     << "(const Globals& G, Strand& S"
     << (Profiled ? ", uint64_t* DDRPROF" : "") << ") {\n";
  OS << "  (void)G;" << (Profiled ? " (void)DDRPROF;" : "") << "\n";
  std::ostringstream B;
  std::vector<std::string> ParamInits;
  for (int P = 0; P < F.NumParams; ++P)
    ParamInits.push_back(strf("S.", slotName(P)));
  E.emitParams(B, 1, ParamInits);
  E.emitRegion(B, 1, F.Body, nullptr);
  OS << B.str();
  OS << "}\n\n";
}

void ModuleEmitter::emitProfMap(std::ostringstream &OS) {
  // Static (line, class) -> site-count source map of the instrumented
  // methods, pre-flattened in the ddr_prof_map wire format.
  std::map<std::pair<int, int>, uint64_t> Sites;
  addProfSites(M.Update.Body, Sites);
  if (M.hasStabilize())
    addProfSites(M.Stabilize.Body, Sites);
  int MaxLine = ir::maxSourceLine(M);
  OS << "constexpr int kProfMaxLine = " << MaxLine << ";\n";
  OS << "const uint64_t kProfMap[] = {" << Sites.size() << "ull";
  for (const auto &[Key, N] : Sites)
    OS << ", " << Key.first << "ull, " << Key.second << "ull, " << N << "ull";
  OS << "};\n\n";
}

void ModuleEmitter::emitProgClass(std::ostringstream &OS) {
  OS << R"(struct Prog : ProgramBase<Prog, Real, Strand> {
  using Strand = ::Strand;
  Globals G;

  static const GlobalMeta *globalMeta(int &N) {
    N = (int)(sizeof(kGlobals) / sizeof(kGlobals[0]));
    return kGlobals;
  }
  static const OutputMeta *outputMeta(int &N) {
    N = (int)(sizeof(kOutputs) / sizeof(kOutputs[0]));
    return kOutputs;
  }
)";
  OS << "  static constexpr int NumIters = " << M.IterLo.size() << ";\n";
  OS << "  static constexpr bool IsGrid = " << (M.IsGrid ? "true" : "false")
     << ";\n\n";

  // applyDefault
  OS << "  bool applyDefault(int GIdx) {\n    switch (GIdx) {\n";
  for (size_t GI = 0; GI < M.Globals.size(); ++GI)
    if (M.Globals[GI].DefaultFn >= 0)
      OS << "    case " << GI << ": { std::string Err; if (!f_default_" << GI
         << "(G, Err)) { Error = Err; return false; } return true; }\n";
  OS << "    default: return false;\n    }\n  }\n\n";

  // setScalars
  OS << "  bool setScalars(int GIdx, const double *V, int N) {\n"
        "    switch (GIdx) {\n";
  for (size_t GI = 0; GI < M.Globals.size(); ++GI) {
    const ir::GlobalVar &G = M.Globals[GI];
    if (!G.IsInput || G.Ty.isImage() || G.Ty.isString())
      continue;
    std::string Field = strf("G.", globalField(M, static_cast<int>(GI)));
    int N = slotCount(G.Ty);
    OS << "    case " << GI << ": if (N != " << N << ") return false; ";
    if (G.Ty.isInt())
      OS << Field << " = (int64_t)llround(V[0]); ";
    else if (G.Ty.isBool())
      OS << Field << " = V[0] != 0.0; ";
    else if (N == 1)
      OS << Field << " = (Real)V[0]; ";
    else
      OS << "for (int K = 0; K < " << N << "; ++K) " << Field
         << "[K] = (Real)V[K]; ";
    OS << "return true;\n";
  }
  OS << "    default: return false;\n    }\n  }\n\n";

  // setString
  OS << "  bool setString(int GIdx, const char *V) {\n    switch (GIdx) {\n";
  for (size_t GI = 0; GI < M.Globals.size(); ++GI) {
    const ir::GlobalVar &G = M.Globals[GI];
    if (!G.IsInput || !G.Ty.isString())
      continue;
    OS << "    case " << GI << ": G." << globalField(M, static_cast<int>(GI))
       << " = V; return true;\n";
  }
  OS << "    default: return false;\n    }\n  }\n\n";

  // setImage
  OS << "  bool setImage(int GIdx, int Dim, const int64_t *Sizes, int64_t "
        "NComp,\n"
        "                const double *Data, const double *W2I,\n"
        "                const double *GradXf, const double *Origin) {\n"
        "    ImageData<Real> *Img = nullptr;\n    int WantDim = 0; int64_t "
        "WantComp = 0;\n    switch (GIdx) {\n";
  for (size_t GI = 0; GI < M.Globals.size(); ++GI) {
    const ir::GlobalVar &G = M.Globals[GI];
    if (!G.IsInput || !G.Ty.isImage())
      continue;
    OS << "    case " << GI << ": Img = &G."
       << globalField(M, static_cast<int>(GI)) << "; WantDim = " << G.Ty.dim()
       << "; WantComp = " << G.Ty.shape().numComponents() << "; break;\n";
  }
  OS << R"(    default: return false;
    }
    if (Dim != WantDim || NComp != WantComp) return false;
    Img->Dim = Dim; Img->NComp = NComp;
    int64_t Total = NComp;
    for (int A = 0; A < Dim; ++A) { Img->Sizes[A] = Sizes[A]; Total *= Sizes[A]; }
    Img->Data.resize((size_t)Total);
    for (int64_t K = 0; K < Total; ++K) Img->Data[(size_t)K] = (Real)Data[K];
    for (int K = 0; K < Dim * Dim; ++K) {
      Img->W2I[K] = (Real)W2I[K];
      Img->GradXf[K] = (Real)GradXf[K];
    }
    for (int A = 0; A < Dim; ++A) Img->Origin[A] = (Real)Origin[A];
    Img->computeStrides();
    return true;
  }

)";

  // Hooks.
  OS << "  bool globalInit() {\n    std::string Err;\n"
        "    if (!f_globalInit(G, Err)) { Error = Err; return false; }\n"
        "    return true;\n  }\n";
  OS << "  int64_t iterLo(int K) {\n    switch (K) {\n";
  for (size_t K = 0; K < M.IterLo.size(); ++K)
    OS << "    case " << K << ": return f_iterLo" << K << "(G);\n";
  OS << "    default: return 0;\n    }\n  }\n";
  OS << "  int64_t iterHi(int K) {\n    switch (K) {\n";
  for (size_t K = 0; K < M.IterHi.size(); ++K)
    OS << "    case " << K << ": return f_iterHi" << K << "(G);\n";
  OS << "    default: return -1;\n    }\n  }\n";
  OS << "  void initStrand(const int64_t *It, Strand &S) { f_initStrand(G, "
        "It, S); }\n";
  OS << "  ExitKind update(Strand &S) { return f_update(G, S); }\n";
  if (M.hasStabilize())
    OS << "  void stabilizeStrand(Strand &S) { f_stabilize(G, S); }\n";
  else
    OS << "  void stabilizeStrand(Strand &) {}\n";
  OS << "  static constexpr int ProfMaxLine = kProfMaxLine;\n";
  OS << "  ExitKind updateProf(Strand &S, uint64_t *P) { return "
        "f_update_prof(G, S, P); }\n";
  if (M.hasStabilize())
    OS << "  void stabilizeStrandProf(Strand &S, uint64_t *P) { "
          "f_stabilize_prof(G, S, P); }\n";
  else
    OS << "  void stabilizeStrandProf(Strand &, uint64_t *) {}\n";

  // strandFinite: the strict-fp trap boundary's predicate, checking every
  // Real-typed strand slot (runtime ABI v4).
  {
    std::vector<int> RealSlots;
    for (size_t I = 0; I < SlotTypes.size(); ++I)
      if (SlotTypes[I].isTensor())
        RealSlots.push_back(static_cast<int>(I));
    if (RealSlots.empty()) {
      OS << "  bool strandFinite(const Strand &) const { return true; }\n";
    } else {
      OS << "  bool strandFinite(const Strand &S) const {\n    return ";
      for (size_t K = 0; K < RealSlots.size(); ++K) {
        if (K)
          OS << " &&\n           ";
        OS << "std::isfinite((double)S." << slotName(RealSlots[K]) << ")";
      }
      OS << ";\n  }\n";
    }
  }

  // Canonical digest view of the strand (runtime ABI v7): every scalarized
  // slot, params first then state vars — the same order the interpreter
  // flattens RtVals, which is what makes cross-engine digests bit-equal.
  OS << "  static constexpr int NumStateSlots = "
     << static_cast<int>(SlotTypes.size()) << ";\n";
  OS << "  double strandSlotValue(const Strand &S, int K) const {\n"
        "    switch (K) {\n";
  for (size_t I = 0; I < SlotTypes.size(); ++I)
    OS << "    case " << I << ": return (double)S."
       << slotName(static_cast<int>(I)) << ";\n";
  OS << "    default: return 0.0;\n    }\n  }\n\n";

  // outputComp
  OS << "  double outputComp(const Strand &S, int Out, int Comp) const {\n"
        "    switch (Out) {\n";
  int OutIdx = 0;
  for (size_t SI = 0; SI < M.State.size(); ++SI) {
    if (!M.State[SI].IsOutput)
      continue;
    // StateSlotBase already accounts for the hidden parameter slots.
    int Base = StateSlotBase[SI];
    int N = slotCount(M.State[SI].Ty);
    OS << "    case " << OutIdx << ":\n      switch (Comp) {\n";
    for (int K = 0; K < N; ++K)
      OS << "      case " << K << ": return (double)S." << slotName(Base + K)
         << ";\n";
    OS << "      default: return 0.0;\n      }\n";
    ++OutIdx;
  }
  OS << "    default: return 0.0;\n    }\n  }\n";
  OS << "};\n\n";
}

void ModuleEmitter::emitCApi(std::ostringstream &OS) {
  OS << R"(} // namespace

extern "C" {

void *ddr_create() { return new Prog(); }
void ddr_destroy(void *P) { delete static_cast<Prog *>(P); }
const char *ddr_error(void *P) { return static_cast<Prog *>(P)->Error.c_str(); }

int ddr_set_input_scalars(void *P, const char *Name, const double *V, int N) {
  return static_cast<Prog *>(P)->setInputScalars(Name, V, N) ? 0 : 1;
}
int ddr_set_input_string(void *P, const char *Name, const char *V) {
  return static_cast<Prog *>(P)->setInputString(Name, V) ? 0 : 1;
}
int ddr_set_input_image(void *P, const char *Name, int Dim,
                        const int64_t *Sizes, int64_t NComp,
                        const double *Data, const double *W2I,
                        const double *GradXf, const double *Origin) {
  return static_cast<Prog *>(P)->setInputImage(Name, Dim, Sizes, NComp, Data,
                                               W2I, GradXf, Origin)
             ? 0
             : 1;
}
int ddr_initialize(void *P) {
  return static_cast<Prog *>(P)->initialize() ? 0 : 1;
}
int ddr_run(void *P, int MaxSteps, int Workers, int BlockSize) {
  return static_cast<Prog *>(P)->run(MaxSteps, Workers, BlockSize, 0);
}
int ddr_run_stats(void *P, int MaxSteps, int Workers, int BlockSize) {
  return static_cast<Prog *>(P)->run(MaxSteps, Workers, BlockSize, 1);
}
int ddr_run_flags(void *P, int MaxSteps, int Workers, int BlockSize,
                  int Flags) {
  return static_cast<Prog *>(P)->runFlags(MaxSteps, Workers, BlockSize, Flags);
}
int ddr_run_policy(void *P, int MaxSteps, int Workers, int BlockSize,
                   int Flags, int64_t DeadlineNs, int64_t MaxFaults,
                   int WatchdogSteps, int StrictFp) {
  return static_cast<Prog *>(P)->runPolicy(MaxSteps, Workers, BlockSize,
                                           Flags, DeadlineNs, MaxFaults,
                                           WatchdogSteps, StrictFp);
}
int ddr_set_fault_plan(void *P, const uint64_t *Data, int64_t N) {
  return static_cast<Prog *>(P)->setFaultPlan(Data, N) ? 0 : 1;
}
int ddr_outcome(void *P) { return static_cast<Prog *>(P)->lastOutcome(); }
int64_t ddr_faults_read(void *P, uint64_t *Out, int64_t Cap) {
  return static_cast<Prog *>(P)->readFaults(Out, Cap);
}
const char *ddr_fault_msg(void *P, int64_t I) {
  return static_cast<Prog *>(P)->faultMsg(I);
}
int64_t ddr_num_faulted(void *P) {
  return (int64_t)static_cast<Prog *>(P)->numFaulted();
}
int64_t ddr_stats_read(void *P, uint64_t *Out, int64_t Cap) {
  return static_cast<Prog *>(P)->readStats(Out, Cap);
}
int64_t ddr_prof_read(void *P, uint64_t *Out, int64_t Cap) {
  return static_cast<Prog *>(P)->readProf(Out, Cap);
}
int64_t ddr_prof_map(void *, uint64_t *Out, int64_t Cap) {
  const int64_t N = (int64_t)(sizeof(kProfMap) / sizeof(kProfMap[0]));
  if (!Out)
    return N;
  int64_t W = Cap < N ? Cap : N;
  for (int64_t I = 0; I < W; ++I)
    Out[I] = kProfMap[I];
  return W;
}
int64_t ddr_trace_read(void *P, uint64_t *Out, int64_t Cap) {
  return static_cast<Prog *>(P)->readEvents(Out, Cap);
}
int64_t ddr_metrics_read(void *P, uint64_t *Out, int64_t Cap) {
  return static_cast<Prog *>(P)->readMetrics(Out, Cap);
}
int64_t ddr_digest_read(void *P, uint64_t *Out, int64_t Cap) {
  return static_cast<Prog *>(P)->readDigests(Out, Cap);
}
int64_t ddr_state_read(void *P, uint64_t *Out, int64_t Cap) {
  return static_cast<Prog *>(P)->readStates(Out, Cap);
}
int ddr_output_dims(void *P, int64_t *Dims, int MaxD) {
  return static_cast<Prog *>(P)->outputDims(Dims, MaxD);
}
int64_t ddr_get_output(void *P, const char *Name, double *Data, int64_t Cap) {
  return static_cast<Prog *>(P)->getOutput(Name, Data, Cap);
}
int64_t ddr_num_strands(void *P) {
  return (int64_t)static_cast<Prog *>(P)->numStrands();
}
int64_t ddr_num_stable(void *P) {
  return (int64_t)static_cast<Prog *>(P)->numStable();
}
int64_t ddr_num_dead(void *P) {
  return (int64_t)static_cast<Prog *>(P)->numDead();
}
int ddr_num_outputs(void *) {
  return (int)(sizeof(kOutputs) / sizeof(kOutputs[0]));
}
const char *ddr_output_name(void *, int I) { return kOutputs[I].Name; }
int ddr_output_comps(void *, int I) { return kOutputs[I].Comps; }
int ddr_output_isint(void *, int I) { return kOutputs[I].IsInt ? 1 : 0; }
int ddr_num_inputs(void *) {
  int N = 0;
  const GlobalMeta *G = Prog::globalMeta(N);
  int C = 0;
  for (int I = 0; I < N; ++I)
    C += G[I].IsInput ? 1 : 0;
  return C;
}

} // extern "C"
)";
}

std::string ModuleEmitter::run() {
  std::ostringstream OS;
  emitHeader(OS);
  emitGlobalsStruct(OS);
  emitStrandStruct(OS);
  emitMetaTables(OS);
  emitDefaults(OS);
  emitGlobalInit(OS);
  emitIters(OS);
  emitInitStrand(OS);
  emitMethod(OS, M.Update, "f_update");
  if (M.hasStabilize())
    emitMethod(OS, M.Stabilize, "f_stabilize");
  // Instrumented twins: only these bump DDRPROF, keeping the clean update
  // path zero-overhead when profiling is off.
  emitProfMap(OS);
  emitMethod(OS, M.Update, "f_update_prof", /*Profiled=*/true);
  if (M.hasStabilize())
    emitMethod(OS, M.Stabilize, "f_stabilize_prof", /*Profiled=*/true);
  emitProgClass(OS);
  emitCApi(OS);
  return OS.str();
}

} // namespace

std::string emitCpp(const ir::Module &M, bool DoublePrecision) {
  assert(M.CurLevel == ir::Low && "codegen consumes LowIR");
  ModuleEmitter E(M, DoublePrecision);
  return E.run();
}

} // namespace diderot::codegen

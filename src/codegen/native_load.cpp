//===--- codegen/native_load.cpp - host-compiler invocation + dlopen ---------===//
//
// The native engine's back half: write the generated translation unit to a
// scratch directory, compile it with the host system's compiler (paper
// Section 5.1) into a shared object, dlopen it, and wrap its C ABI in the
// rt::ProgramInstance interface. Compiled objects are content-addressed
// (codegen/cache.h): the 128-bit key covers the generated source, the
// compile options, the ddr_* ABI version, and the host compiler identity,
// so a cache directory can be shared across processes and daemon restarts
// and a warm cache never re-invokes the host compiler.
//
//===----------------------------------------------------------------------===//

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <dlfcn.h>
#include <unistd.h>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include "observe/observe.h"
#include "observe/profiler.h"
#include "observe/recorder.h"

#include "codegen/cache.h"
#include "codegen/config.h"
#include "driver/driver.h"
#include "support/strings.h"
#include "support/subprocess.h"

namespace diderot::codegen {

std::string emitCpp(const ir::Module &M, bool DoublePrecision);

std::string hostCompilerId() {
  // The configured compiler plus the banner of the compiler that built this
  // driver (a stable proxy for the toolchain revision). See cache.h for why
  // the DIDEROT_CXX environment override is intentionally excluded.
  return strf(DIDEROT_HOST_CXX, " host=", __VERSION__);
}

support::Hash128 programCacheKey(const std::string &Text,
                                 const CompileOptions &Opts) {
  support::Fnv128 H;
  H.updateField("ddr-abi");
  H.updateField(static_cast<int64_t>(DdrAbiVersion));
  H.updateField(hostCompilerId());
  H.updateField(static_cast<int64_t>(Opts.Eng == Engine::Interp ? 0 : 1));
  H.updateField(static_cast<int64_t>(Opts.DoublePrecision ? 1 : 0));
  H.updateField(static_cast<int64_t>(Opts.EnableContract ? 1 : 0));
  H.updateField(static_cast<int64_t>(Opts.EnableValueNumbering ? 1 : 0));
  H.updateField(Opts.ExtraCxxFlags);
  H.update(Text);
  return H.digest();
}

namespace {
std::atomic<uint64_t> NMemHits{0}, NDiskHits{0}, NHostCompiles{0},
    NCompileTimeouts{0};
} // namespace

NativeCacheStats nativeCacheStats() {
  NativeCacheStats S;
  S.MemHits = NMemHits.load(std::memory_order_relaxed);
  S.DiskHits = NDiskHits.load(std::memory_order_relaxed);
  S.HostCompiles = NHostCompiles.load(std::memory_order_relaxed);
  S.CompileTimeouts = NCompileTimeouts.load(std::memory_order_relaxed);
  S.Quarantined = cacheQuarantineCount();
  S.Evicted = cacheEvictionCount();
  return S;
}

namespace {

namespace fs = std::filesystem;

/// The dlsym'd C ABI of a generated program.
struct CApi {
  void *(*Create)();
  void (*Destroy)(void *);
  const char *(*Error)(void *);
  int (*SetScalars)(void *, const char *, const double *, int);
  int (*SetString)(void *, const char *, const char *);
  int (*SetImage)(void *, const char *, int, const int64_t *, int64_t,
                  const double *, const double *, const double *,
                  const double *);
  int (*Initialize)(void *);
  int (*Run)(void *, int, int, int);
  /// Like Run but with telemetry collection on (null in pre-v2 .so files).
  int (*RunStats)(void *, int, int, int);
  /// Flatten the last collected run's stats (see observe::flattenStats).
  int64_t (*StatsRead)(void *, uint64_t *, int64_t);
  /// v3 protocol (all null in older .so files, handled gracefully): Run with
  /// a flags word (1 stats, 2 profile, 4 lifecycle), then readers for the
  /// profile counters, the static source map, and the lifecycle events.
  int (*RunFlags)(void *, int, int, int, int);
  int64_t (*ProfRead)(void *, uint64_t *, int64_t);
  int64_t (*ProfMap)(void *, uint64_t *, int64_t);
  int64_t (*TraceRead)(void *, uint64_t *, int64_t);
  /// v4 protocol — the fault-containment layer (all null in older .so
  /// files). Unlike the v3 readers these do NOT degrade silently when a
  /// policy is requested: silently ignoring a deadline or fault budget
  /// would be unsafe, so run() reports an explicit error instead.
  int (*RunPolicy)(void *, int, int, int, int, int64_t, int64_t, int, int);
  int (*SetFaultPlan)(void *, const uint64_t *, int64_t);
  int (*Outcome)(void *);
  int64_t (*FaultsRead)(void *, uint64_t *, int64_t);
  const char *(*FaultMsg)(void *, int64_t);
  int64_t (*NumFaulted)(void *);
  /// v5 protocol (null in older .so files): snapshot the metrics registry
  /// (flag 8 on RunFlags arms it). Safe to call concurrently with a run —
  /// the snapshot reads only barrier-published atomics — which is what the
  /// driver's live GET /metrics endpoint uses. Degrades to deriveMetrics
  /// over the v2 stats when absent.
  int64_t (*MetricsRead)(void *, uint64_t *, int64_t);
  /// v7 protocol (null in older .so files): readers for the per-superstep
  /// digest stream and the per-strand state log armed by run flags 32/64
  /// (record/replay, docs/REPLAY.md). Degrades gracefully when absent —
  /// replay falls back to final-output-only digests, a documented weaker
  /// fidelity, unlike policies which must fail loudly.
  int64_t (*DigestRead)(void *, uint64_t *, int64_t);
  int64_t (*StateRead)(void *, uint64_t *, int64_t);
  int (*OutputDims)(void *, int64_t *, int);
  int64_t (*GetOutput)(void *, const char *, double *, int64_t);
  int64_t (*NumStrands)(void *);
  int64_t (*NumStable)(void *);
  int64_t (*NumDead)(void *);
  int (*NumOutputs)(void *);
  const char *(*OutputName)(void *, int);
  int (*OutputComps)(void *, int);
  int (*OutputIsInt)(void *, int);
};

/// A loaded shared object (kept open for the process lifetime).
struct LoadedLib {
  void *Handle = nullptr;
  CApi Api{};
};

std::mutex CacheLock;
std::map<std::string, LoadedLib> LibCache;
// Singleflight: one build mutex per key, so N threads requesting the same
// not-yet-loaded program trigger one compile and N-1 waiters — the property
// the serve daemon's shared worker pool depends on.
std::map<std::string, std::shared_ptr<std::mutex>> Building;

Result<LoadedLib *> compileAndLoad(const std::string &Source,
                                   const CompileOptions &Opts,
                                   const std::string &Name) {
  using RL = Result<LoadedLib *>;
  std::string Key = programCacheKey(Source, Opts).hex();
  std::shared_ptr<std::mutex> Build;
  {
    std::lock_guard<std::mutex> G(CacheLock);
    auto It = LibCache.find(Key);
    if (It != LibCache.end()) {
      NMemHits.fetch_add(1, std::memory_order_relaxed);
      return &It->second;
    }
    auto &Slot = Building[Key];
    if (!Slot)
      Slot = std::make_shared<std::mutex>();
    Build = Slot;
  }
  // Serialize builds of this key only; different programs compile in
  // parallel. Re-check the cache once we hold the build lock — a concurrent
  // requester may have finished the work while we waited.
  std::lock_guard<std::mutex> BG(*Build);
  {
    std::lock_guard<std::mutex> G(CacheLock);
    auto It = LibCache.find(Key);
    if (It != LibCache.end()) {
      NMemHits.fetch_add(1, std::memory_order_relaxed);
      return &It->second;
    }
  }

  fs::path Dir = Opts.WorkDir.empty()
                     ? fs::temp_directory_path() / "diderot-cpp"
                     : fs::path(Opts.WorkDir);
  std::error_code EC;
  fs::create_directories(Dir, EC);
  if (EC)
    return RL::error(strf("cannot create scratch directory ", Dir.string()));
  // Artifact names are the content key alone (not the program name): the
  // same program text under two names must map to one cached object.
  std::string Stem = strf("ddr-", Key);
  fs::path CppPath = Dir / (Stem + ".cpp");
  fs::path SoPath = Dir / (Stem + ".so");
  // Write and compile under process-unique names and rename the result into
  // place, so concurrent processes building the same program never observe a
  // half-written source file or shared object (rename within a directory is
  // atomic).
  std::string Unique = strf(Stem, ".", ::getpid());
  fs::path TmpCppPath = Dir / (Unique + ".cpp");
  fs::path TmpSoPath = Dir / (Unique + ".so.tmp");

  // One supervised host-compile attempt: write the source, run the compiler
  // under a wall-clock budget (subprocess.h — the group is killed on
  // expiry, so a hung compiler can never wedge a daemon job worker), and
  // rename the result into place.
  auto HostCompile = [&]() -> Status {
    {
      std::ofstream Out(TmpCppPath);
      if (!Out)
        return Status::error(strf("cannot write ", TmpCppPath.string()));
      Out << Source;
    }
    const char *CxxEnv = std::getenv("DIDEROT_CXX");
    std::string Cxx = CxxEnv ? CxxEnv : DIDEROT_HOST_CXX;
    support::SubprocessCommand Cmd;
    // The override may carry flags ("ccache g++ -pipe"): split into words.
    Cmd.Argv = support::splitCommandWords(Cxx);
    // -O3 matches the paper's experimental setup; the generated
    // straight-line convolution code is what the host compiler vectorizes.
    for (const char *F : {"-O3", "-std=c++20", "-shared", "-fPIC"})
      Cmd.Argv.push_back(F);
    Cmd.Argv.push_back(strf("-I", DIDEROT_SRC_DIR));
    for (std::string &F : support::splitCommandWords(Opts.ExtraCxxFlags))
      Cmd.Argv.push_back(std::move(F));
    Cmd.Argv.push_back("-o");
    Cmd.Argv.push_back(TmpSoPath.string());
    Cmd.Argv.push_back(TmpCppPath.string());
    Cmd.Argv.push_back("-lpthread");
    Cmd.TimeoutMs = Opts.HostCompileTimeoutMs;
    Cmd.MaxRetries = Opts.HostCompileRetries;
    Cmd.BackoffMs = Opts.HostCompileBackoffMs;
    NHostCompiles.fetch_add(1, std::memory_order_relaxed);
    Result<support::SubprocessResult> Run = support::runSupervised(Cmd);
    auto CleanTmp = [&] {
      std::error_code E2;
      fs::remove(TmpSoPath, E2);
      fs::remove(TmpCppPath, E2);
    };
    if (!Run.isOk()) {
      CleanTmp();
      return Status::error(Run.message());
    }
    if (Run->TimedOut) {
      NCompileTimeouts.fetch_add(1, std::memory_order_relaxed);
      CleanTmp();
      return Status::error(
          strf("host compile timed out after ", Opts.HostCompileTimeoutMs,
               " ms (compiler process group killed): ", Cxx, " on ", Name));
    }
    if (!Run->succeeded()) {
      CleanTmp();
      if (Run->TermSignal != 0)
        return Status::error(strf("host compiler died on signal ",
                                  Run->TermSignal, " after ", Run->Attempts,
                                  " attempt(s):\n", Run->Output));
      return Status::error(strf("host compiler failed (exit ", Run->ExitCode,
                                "): ", Cxx, "\n", Run->Output));
    }
    fs::rename(TmpSoPath, SoPath, EC);
    if (EC && !fs::exists(SoPath))
      return Status::error(strf("cannot install ", SoPath.string()));
    if (Opts.KeepCpp)
      fs::rename(TmpCppPath, CppPath, EC); // publish under the stable name
    else
      fs::remove(TmpCppPath, EC);
    recordCacheArtifact(Dir.string(), Key, Name);
    if (Opts.CacheMaxBytes > 0)
      enforceCacheCap(Dir.string(), Opts.CacheMaxBytes, /*ProtectKey=*/Key);
    return Status::ok();
  };

  // Disk hit: verify the artifact against its index row before loading. A
  // corrupt .so (crashed writer, torn disk) is quarantined and recompiled —
  // never dlopen'd.
  if (fs::exists(SoPath) &&
      verifyCacheArtifact(Dir.string(), Key) == ArtifactVerdict::Corrupt)
    quarantineCacheArtifact(Dir.string(), Key,
                            "size/hash mismatch against index on disk hit");

  bool Compiled = false;
  if (!fs::exists(SoPath)) {
    Status S = HostCompile();
    if (!S.isOk())
      return RL::error(S.message());
    Compiled = true;
  } else {
    NDiskHits.fetch_add(1, std::memory_order_relaxed);
    touchCacheArtifact(Dir.string(), Key);
  }

  void *Handle = dlopen(SoPath.string().c_str(), RTLD_NOW | RTLD_LOCAL);
  if (!Handle && !Compiled) {
    // An unverifiable disk artifact (v1 index row, or an index lost in a
    // crash) can still fail to load; quarantine it and compile fresh once.
    const char *DlMsg = dlerror();
    std::string DlErr = DlMsg ? DlMsg : "unknown dlopen failure";
    quarantineCacheArtifact(Dir.string(), Key, strf("dlopen failed: ", DlErr));
    Status S = HostCompile();
    if (!S.isOk())
      return RL::error(S.message());
    Handle = dlopen(SoPath.string().c_str(), RTLD_NOW | RTLD_LOCAL);
  }
  if (!Handle)
    return RL::error(strf("dlopen failed: ", dlerror()));

  LoadedLib Lib;
  Lib.Handle = Handle;
  auto Sym = [&](const char *S) { return dlsym(Handle, S); };
  Lib.Api.Create = reinterpret_cast<void *(*)()>(Sym("ddr_create"));
  Lib.Api.Destroy = reinterpret_cast<void (*)(void *)>(Sym("ddr_destroy"));
  Lib.Api.Error =
      reinterpret_cast<const char *(*)(void *)>(Sym("ddr_error"));
  Lib.Api.SetScalars =
      reinterpret_cast<int (*)(void *, const char *, const double *, int)>(
          Sym("ddr_set_input_scalars"));
  Lib.Api.SetString =
      reinterpret_cast<int (*)(void *, const char *, const char *)>(
          Sym("ddr_set_input_string"));
  Lib.Api.SetImage = reinterpret_cast<int (*)(
      void *, const char *, int, const int64_t *, int64_t, const double *,
      const double *, const double *, const double *)>(
      Sym("ddr_set_input_image"));
  Lib.Api.Initialize =
      reinterpret_cast<int (*)(void *)>(Sym("ddr_initialize"));
  Lib.Api.Run = reinterpret_cast<int (*)(void *, int, int, int)>(
      Sym("ddr_run"));
  Lib.Api.RunStats = reinterpret_cast<int (*)(void *, int, int, int)>(
      Sym("ddr_run_stats"));
  Lib.Api.StatsRead =
      reinterpret_cast<int64_t (*)(void *, uint64_t *, int64_t)>(
          Sym("ddr_stats_read"));
  Lib.Api.RunFlags = reinterpret_cast<int (*)(void *, int, int, int, int)>(
      Sym("ddr_run_flags"));
  Lib.Api.ProfRead =
      reinterpret_cast<int64_t (*)(void *, uint64_t *, int64_t)>(
          Sym("ddr_prof_read"));
  Lib.Api.ProfMap =
      reinterpret_cast<int64_t (*)(void *, uint64_t *, int64_t)>(
          Sym("ddr_prof_map"));
  Lib.Api.TraceRead =
      reinterpret_cast<int64_t (*)(void *, uint64_t *, int64_t)>(
          Sym("ddr_trace_read"));
  Lib.Api.RunPolicy = reinterpret_cast<int (*)(void *, int, int, int, int,
                                               int64_t, int64_t, int, int)>(
      Sym("ddr_run_policy"));
  Lib.Api.SetFaultPlan =
      reinterpret_cast<int (*)(void *, const uint64_t *, int64_t)>(
          Sym("ddr_set_fault_plan"));
  Lib.Api.Outcome = reinterpret_cast<int (*)(void *)>(Sym("ddr_outcome"));
  Lib.Api.FaultsRead =
      reinterpret_cast<int64_t (*)(void *, uint64_t *, int64_t)>(
          Sym("ddr_faults_read"));
  Lib.Api.FaultMsg = reinterpret_cast<const char *(*)(void *, int64_t)>(
      Sym("ddr_fault_msg"));
  Lib.Api.NumFaulted =
      reinterpret_cast<int64_t (*)(void *)>(Sym("ddr_num_faulted"));
  Lib.Api.MetricsRead =
      reinterpret_cast<int64_t (*)(void *, uint64_t *, int64_t)>(
          Sym("ddr_metrics_read"));
  Lib.Api.DigestRead =
      reinterpret_cast<int64_t (*)(void *, uint64_t *, int64_t)>(
          Sym("ddr_digest_read"));
  Lib.Api.StateRead =
      reinterpret_cast<int64_t (*)(void *, uint64_t *, int64_t)>(
          Sym("ddr_state_read"));
  Lib.Api.OutputDims = reinterpret_cast<int (*)(void *, int64_t *, int)>(
      Sym("ddr_output_dims"));
  Lib.Api.GetOutput =
      reinterpret_cast<int64_t (*)(void *, const char *, double *, int64_t)>(
          Sym("ddr_get_output"));
  Lib.Api.NumStrands =
      reinterpret_cast<int64_t (*)(void *)>(Sym("ddr_num_strands"));
  Lib.Api.NumStable =
      reinterpret_cast<int64_t (*)(void *)>(Sym("ddr_num_stable"));
  Lib.Api.NumDead =
      reinterpret_cast<int64_t (*)(void *)>(Sym("ddr_num_dead"));
  Lib.Api.NumOutputs =
      reinterpret_cast<int (*)(void *)>(Sym("ddr_num_outputs"));
  Lib.Api.OutputName =
      reinterpret_cast<const char *(*)(void *, int)>(Sym("ddr_output_name"));
  Lib.Api.OutputComps =
      reinterpret_cast<int (*)(void *, int)>(Sym("ddr_output_comps"));
  Lib.Api.OutputIsInt =
      reinterpret_cast<int (*)(void *, int)>(Sym("ddr_output_isint"));
  if (!Lib.Api.Create || !Lib.Api.Run || !Lib.Api.GetOutput)
    return RL::error("generated library is missing ddr_* symbols");

  std::lock_guard<std::mutex> G(CacheLock);
  auto [It, _] = LibCache.emplace(Key, Lib);
  return &It->second;
}

/// rt::ProgramInstance adapter over the C ABI.
class NativeInstance final : public rt::ProgramInstance {
public:
  NativeInstance(const LoadedLib *Lib, const ir::Module &M)
      : Api(&Lib->Api), Prog(Api->Create()) {
    for (const ir::GlobalVar &G : M.Globals)
      if (G.IsInput)
        Inputs.push_back({G.Name, G.Ty.str(), G.DefaultFn >= 0});
    for (const ir::StateSlot &S : M.State)
      if (S.IsOutput)
        Outputs.push_back({S.Name, S.Ty.isTensor() ? S.Ty.shape() : Shape{},
                           S.Ty.isInt()});
  }
  ~NativeInstance() override {
    if (Prog)
      Api->Destroy(Prog);
  }

  std::vector<rt::InputDesc> inputs() const override { return Inputs; }
  std::vector<rt::OutputDesc> outputs() const override { return Outputs; }

  Status setInputReal(const std::string &Name, double V) override {
    return check(Api->SetScalars(Prog, Name.c_str(), &V, 1));
  }
  Status setInputInt(const std::string &Name, int64_t V) override {
    double D = static_cast<double>(V);
    return check(Api->SetScalars(Prog, Name.c_str(), &D, 1));
  }
  Status setInputBool(const std::string &Name, bool V) override {
    double D = V ? 1.0 : 0.0;
    return check(Api->SetScalars(Prog, Name.c_str(), &D, 1));
  }
  Status setInputString(const std::string &Name,
                        const std::string &V) override {
    return check(Api->SetString(Prog, Name.c_str(), V.c_str()));
  }
  Status setInputTensor(const std::string &Name,
                        const std::vector<double> &C) override {
    return check(Api->SetScalars(Prog, Name.c_str(), C.data(),
                                 static_cast<int>(C.size())));
  }
  Status setInputImage(const std::string &Name, const Image &Img) override {
    int D = Img.dim();
    int64_t Sizes[3] = {1, 1, 1};
    for (int A = 0; A < D; ++A)
      Sizes[A] = Img.size(A);
    // Gradient transform is M^{-T}; worldToIndexMatrix is M^{-1}.
    return check(Api->SetImage(Prog, Name.c_str(), D, Sizes,
                               Img.numComponents(), Img.data().data(),
                               Img.worldToIndexMatrix().data(),
                               Img.gradientTransform().data(),
                               Img.origin().data()));
  }

  Status initialize() override { return check(Api->Initialize(Prog)); }

  Result<rt::RunStats> run(const rt::RunConfig &C) override {
    using RS = Result<rt::RunStats>;
    LastProfile = observe::ProfileData();
    // Each capability degrades independently when loading an older .so that
    // lacks the v3 symbols: stats fall back to the v2 ddr_run_stats entry
    // point, profile and lifecycle silently turn off.
    bool WantStats =
        (C.CollectStats || C.CollectLifecycle || C.CollectMetrics) &&
        Api->StatsRead;
    bool WantProf = C.CollectProfile && Api->RunFlags && Api->ProfRead;
    bool WantTrace = C.CollectLifecycle && Api->RunFlags && Api->TraceRead;
    // Metrics prefer the v5 in-.so registry; a v4 library degrades to
    // deriveMetrics over the stats below (claim-latency histogram empty).
    bool NativeMetrics =
        C.CollectMetrics && Api->RunFlags && Api->MetricsRead;
    bool Collect = WantStats && (Api->RunStats || Api->RunFlags);
    // A run policy must not degrade silently — ignoring a deadline or a
    // fault budget is unsafe — so a pre-v4 .so is an explicit error.
    const bool Policied = C.Policy.active();
    if (Policied && (!Api->RunPolicy || !Api->SetFaultPlan))
      return RS::error("generated library does not support run policies "
                       "(pre-v4 runtime ABI); regenerate the program");
    // The pooled scheduler rides a v6 run-flag bit; a .so predating
    // ddr_run_flags silently degrades to BSP (a scheduler choice is a
    // performance knob, not a safety contract — unlike policies below).
    bool WantPooled =
        C.Sched == rt::Scheduler::Pooled && C.NumWorkers >= 1 &&
        Api->RunFlags;
    // Digests ride the v7 run flags. A pre-v7 .so degrades gracefully:
    // LastDigests stays empty and the replay layer falls back to comparing
    // final outputs only (a documented weaker fidelity, not an error).
    bool WantDigest = (C.CollectDigests || C.CollectStateLog) &&
                      Api->RunFlags && Api->DigestRead;
    bool WantStateLog = C.CollectStateLog && WantDigest && Api->StateRead;
    LastDigests.clear();
    auto T0 = std::chrono::steady_clock::now();
    int Steps;
    int Flags = (Collect ? 1 : 0) | (WantProf ? 2 : 0) | (WantTrace ? 4 : 0) |
                (NativeMetrics ? 8 : 0) | (WantPooled ? 16 : 0) |
                (WantDigest ? 32 : 0) | (WantStateLog ? 64 : 0);
    if (Policied) {
      std::vector<uint64_t> Plan = observe::flattenPlan(C.Policy.Plan);
      if (Api->SetFaultPlan(Prog, Plan.data(),
                            static_cast<int64_t>(Plan.size())) != 0)
        return RS::error(Api->Error(Prog));
      Steps = Api->RunPolicy(Prog, C.MaxSupersteps, C.NumWorkers, C.BlockSize,
                             Flags, C.Policy.DeadlineNs, C.Policy.MaxFaults,
                             C.Policy.WatchdogSteps,
                             C.Policy.StrictFp ? 1 : 0);
    } else if (Api->RunFlags &&
               (Collect || WantProf || WantTrace || NativeMetrics ||
                WantPooled || WantDigest)) {
      Steps = Api->RunFlags(Prog, C.MaxSupersteps, C.NumWorkers, C.BlockSize,
                            Flags);
    } else if (Collect) {
      Steps = Api->RunStats(Prog, C.MaxSupersteps, C.NumWorkers, C.BlockSize);
    } else {
      Steps = Api->Run(Prog, C.MaxSupersteps, C.NumWorkers, C.BlockSize);
    }
    if (Steps < 0)
      return RS::error(Api->Error(Prog));
    if (WantDigest) {
      std::vector<uint64_t> Flat = readFlat(Api->DigestRead);
      if (!observe::unflattenDigests(Flat.data(), Flat.size(), LastDigests))
        return RS::error("generated library returned malformed digests");
      if (WantStateLog) {
        std::vector<uint64_t> St = readFlat(Api->StateRead);
        // A .so may report 0 words when the state log was not retained.
        if (St.size() >= 3 &&
            !observe::unflattenStates(St.data(), St.size(), LastDigests))
          return RS::error("generated library returned malformed state log");
      }
    }
    rt::RunStats Stats;
    if (WantProf) {
      std::vector<uint64_t> Flat = readFlat(Api->ProfRead);
      if (!observe::unflattenProfile(Flat.data(), Flat.size(), LastProfile,
                                     /*Sites=*/false))
        return RS::error("generated library returned malformed profile");
      if (Api->ProfMap) {
        std::vector<uint64_t> Map = readFlat(Api->ProfMap);
        if (!observe::unflattenProfile(Map.data(), Map.size(), LastProfile,
                                       /*Sites=*/true))
          return RS::error("generated library returned malformed profile map");
      }
      LastProfile.Enabled = true;
    }
    if (Collect) {
      std::vector<uint64_t> Flat = readFlat(Api->StatsRead);
      if (!observe::unflattenStats(Flat.data(), Flat.size(), Stats))
        return RS::error("generated library returned malformed stats");
      if (WantTrace) {
        std::vector<uint64_t> Ev = readFlat(Api->TraceRead);
        if (!observe::unflattenEvents(Ev.data(), Ev.size(), Stats))
          return RS::error("generated library returned malformed trace");
      }
      Stats.Steps = Steps;
      Status V = attachVerdict(Stats);
      if (!V.isOk())
        return RS::error(V.message());
      attachMetrics(C, NativeMetrics, Stats);
      return Stats;
    }
    Stats.Steps = Steps;
    Stats.NumWorkers = C.NumWorkers <= 0 ? 0 : C.NumWorkers;
    Stats.WallNs = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - T0)
            .count());
    Status V = attachVerdict(Stats);
    if (!V.isOk())
      return RS::error(V.message());
    attachMetrics(C, NativeMetrics, Stats);
    return Stats;
  }

  /// Live registry snapshot while run() executes on another thread (v5
  /// libraries only; empty data when the symbol is absent).
  observe::MetricsData liveMetrics() const override {
    observe::MetricsData D;
    if (!Api->MetricsRead)
      return D;
    std::vector<uint64_t> Flat = readFlat(Api->MetricsRead);
    observe::unflattenMetrics(Flat.data(), Flat.size(), D);
    return D;
  }

  observe::ProfileData profile() const override { return LastProfile; }

  const observe::DigestLog *digestLog() const override {
    return LastDigests.Entries.empty() ? nullptr : &LastDigests;
  }

  std::vector<int> outputDims() const override {
    int64_t Dims[8] = {};
    int N = Api->OutputDims(Prog, Dims, 8);
    std::vector<int> Out;
    for (int I = 0; I < N && I < 8; ++I)
      Out.push_back(static_cast<int>(Dims[I]));
    return Out;
  }

  Status getOutput(const std::string &Name,
                   std::vector<double> &Data) const override {
    int Comps = 1;
    bool Found = false;
    for (size_t I = 0; I < Outputs.size(); ++I)
      if (Outputs[I].Name == Name) {
        Comps = Outputs[I].ValShape.numComponents();
        Found = true;
      }
    if (!Found)
      return Status::error(strf("no output named '", Name, "'"));
    size_t N = 1;
    for (int D : outputDims())
      N *= static_cast<size_t>(D);
    Data.assign(N * static_cast<size_t>(Comps), 0.0);
    int64_t Written = Api->GetOutput(Prog, Name.c_str(), Data.data(),
                                     static_cast<int64_t>(Data.size()));
    if (Written < 0)
      return Status::error(Api->Error(Prog));
    Data.resize(static_cast<size_t>(Written));
    return Status::ok();
  }

  size_t numStrands() const override {
    return static_cast<size_t>(Api->NumStrands(Prog));
  }
  size_t numStable() const override {
    return static_cast<size_t>(Api->NumStable(Prog));
  }
  size_t numDead() const override {
    return static_cast<size_t>(Api->NumDead(Prog));
  }
  size_t numFaulted() const override {
    return Api->NumFaulted ? static_cast<size_t>(Api->NumFaulted(Prog)) : 0;
  }

private:
  /// Read the run's verdict and fault records back out of the .so. A pre-v4
  /// library has no ddr_outcome; derive Converged/StepLimit from the
  /// retirement counts (faults cannot exist there — policied runs were
  /// rejected above).
  Status attachVerdict(rt::RunStats &Stats) const {
    if (Api->Outcome) {
      Stats.Outcome = static_cast<rt::RunOutcome>(Api->Outcome(Prog));
    } else {
      Stats.Outcome = numStable() + numDead() == numStrands()
                          ? rt::RunOutcome::Converged
                          : rt::RunOutcome::StepLimit;
    }
    if (Api->FaultsRead) {
      std::vector<uint64_t> Flat = readFlat(Api->FaultsRead);
      if (!observe::unflattenFaults(Flat.data(), Flat.size(), Stats.Faults))
        return Status::error("generated library returned malformed faults");
      if (Api->FaultMsg)
        for (size_t I = 0; I < Stats.Faults.size(); ++I)
          if (const char *Msg = Api->FaultMsg(Prog, static_cast<int64_t>(I)))
            Stats.Faults[I].Message = Msg;
    }
    return Status::ok();
  }

  /// Fill Stats.Metrics after a metrics-collecting run: read the in-.so v5
  /// registry when armed, otherwise rebuild superstep-level histograms from
  /// the spans (runs after attachVerdict so Faults are populated).
  void attachMetrics(const rt::RunConfig &C, bool NativeMetrics,
                     rt::RunStats &Stats) const {
    if (!C.CollectMetrics)
      return;
    if (NativeMetrics) {
      std::vector<uint64_t> Flat = readFlat(Api->MetricsRead);
      if (observe::unflattenMetrics(Flat.data(), Flat.size(), Stats.Metrics) &&
          Stats.Metrics.Enabled)
        return;
    }
    Stats.Metrics = observe::deriveMetrics(Stats);
  }

  Status check(int RC) {
    if (RC == 0)
      return Status::ok();
    return Status::error(Api->Error(Prog));
  }

  /// Null-size-then-fill read protocol shared by all flat-array readers.
  std::vector<uint64_t> readFlat(int64_t (*Read)(void *, uint64_t *,
                                                 int64_t)) const {
    int64_t Need = Read(Prog, nullptr, 0);
    std::vector<uint64_t> Flat(static_cast<size_t>(Need > 0 ? Need : 0));
    if (Need > 0)
      Read(Prog, Flat.data(), Need);
    return Flat;
  }

  const CApi *Api;
  void *Prog;
  std::vector<rt::InputDesc> Inputs;
  std::vector<rt::OutputDesc> Outputs;
  observe::ProfileData LastProfile;
  observe::DigestLog LastDigests; ///< digest stream of the last recorded run
};

} // namespace

Result<std::unique_ptr<rt::ProgramInstance>>
loadNative(const ir::Module &M, const CompileOptions &Opts,
           const std::string &Name) {
  using RP = Result<std::unique_ptr<rt::ProgramInstance>>;
  std::string Source = emitCpp(M, Opts.DoublePrecision);
  Result<LoadedLib *> Lib = compileAndLoad(Source, Opts, Name);
  if (!Lib.isOk())
    return RP::error(Lib.message());
  std::unique_ptr<rt::ProgramInstance> P =
      std::make_unique<NativeInstance>(*Lib, M);
  return P;
}

} // namespace diderot::codegen

//===--- codegen/cache.h - content-addressed compile cache interface ---------===//
//
// Part of the Diderot-C++ reproduction (PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The native engine's compiled-object cache, content-addressed so that a
/// cache directory can be shared across processes and daemon restarts
/// ("compile once, serve many"). The key is a 128-bit FNV-1a hash over the
/// program text, the compile options that change the generated code or its
/// binary, the ddr_* runtime ABI version, and the host compiler identity —
/// replacing the earlier std::hash<std::string> size_t key, which had no
/// collision guarantee, was unstable across standard libraries, and omitted
/// ABI and compiler identity entirely.
///
/// Cache directory layout (Opts.WorkDir, or <temp>/diderot-cpp):
///   ddr-<32-hex-key>.so    the compiled shared object
///   ddr-<32-hex-key>.cpp   the generated translation unit (KeepCpp only)
///   index.tsv              inventory: one line per cached artifact,
///                          "<key>\t<program>\t<unix-ms>\t<compiler-id>
///                           \t<so-bytes>\t<so-hash>\t<last-used-ms>"
///   quarantine/            artifacts that failed integrity checks, moved
///                          aside (never deleted) for post-mortem
///
/// The index is rewritten via temp-file + rename (atomic within the
/// directory), so a crash mid-update leaves either the old or the new
/// index, never a torn one. Rows carry the artifact's size and Hash128 so
/// a disk-hit can be verified before dlopen — a corrupt .so (crashed
/// writer, bit rot) is quarantined and recompiled instead of loaded. Rows
/// written by pre-v2 builds have only the first four columns; they parse
/// with SoBytes = -1 and are loaded unverified, exactly as before.
///
/// Invalidation is by key, never in place: a new ABI revision, compiler, or
/// flag set hashes to new file names and old entries simply go cold (or are
/// LRU-evicted once a --cache-max-bytes cap is set).
/// serve/compile_cache.h reads the index.
///
//===----------------------------------------------------------------------===//

#ifndef DIDEROT_CODEGEN_CACHE_H
#define DIDEROT_CODEGEN_CACHE_H

#include <cstdint>
#include <string>
#include <vector>

#include "driver/driver.h"
#include "support/hash.h"

namespace diderot::codegen {

/// Version of the ddr_* C ABI between the driver and generated shared
/// objects (v5 added ddr_metrics_read; v6 the pooled-scheduler run flag
/// bit and the persistent StrandPool behind it; v7 the digest/state-log
/// run flags plus ddr_digest_read / ddr_state_read for record/replay).
/// Part of every cache key: a .so built for an older protocol must never
/// be served to a newer driver. The loader probes the v7 symbols with
/// dlsym and degrades gracefully — a v6 .so still runs, it just cannot
/// report per-superstep digests.
constexpr int DdrAbiVersion = 7;

/// Identity of the host toolchain baked into cache keys: the configured
/// compiler path plus the version banner of the compiler that built this
/// driver. Deliberately NOT the DIDEROT_CXX environment override — that is
/// an operational redirect (and the poison-the-compiler cache tests rely on
/// a warm cache surviving it), not a different artifact identity.
std::string hostCompilerId();

/// The cache key for \p Text compiled under \p Opts. \p Text is whatever
/// feeds the next stage: the native loader keys on the generated C++
/// translation unit; the serve daemon keys its program registry on Diderot
/// source. Both incorporate every CompileOptions field that changes the
/// result, plus DdrAbiVersion and hostCompilerId().
support::Hash128 programCacheKey(const std::string &Text,
                                 const CompileOptions &Opts);

/// Name of the index file inside a cache directory.
inline const char *cacheIndexFile() { return "index.tsv"; }

/// Subdirectory corrupt artifacts are moved into (never deleted in place).
inline const char *cacheQuarantineDir() { return "quarantine"; }

/// One row of the cache index. Rows written by pre-v2 builds have only the
/// first four columns and parse with SoBytes = -1 (artifact unverifiable).
struct CacheIndexEntry {
  std::string Key;        ///< 32-hex content key (artifact stem is ddr-<key>)
  std::string Program;    ///< program name at compile time
  int64_t UnixMs = 0;     ///< when the host compile happened
  std::string CompilerId; ///< hostCompilerId() that built it
  int64_t SoBytes = -1;   ///< .so size at install time; -1 = unknown (v1 row)
  std::string SoHash;     ///< 32-hex fnv1a128 of the .so; empty = unknown
  int64_t LastUsedMs = 0; ///< recency for LRU eviction (install or last hit)
};

/// Parse \p Dir's index.tsv. Missing file = empty vector; malformed lines
/// are skipped — the index is an inventory, the .so files are the cache.
std::vector<CacheIndexEntry> readCacheIndexEntries(const std::string &Dir);

/// Record a just-installed artifact: hash and stat ddr-<key>.so, then
/// upsert its index row via an atomic temp-file + rename rewrite.
/// Best-effort — index failures never fail a compile.
void recordCacheArtifact(const std::string &Dir, const std::string &Key,
                         const std::string &Program);

/// Refresh a disk-hit artifact's LastUsedMs so LRU eviction sees it as
/// warm. Best-effort, atomic rewrite as above.
void touchCacheArtifact(const std::string &Dir, const std::string &Key);

/// Outcome of checking an on-disk artifact against its index row.
enum class ArtifactVerdict {
  Ok,           ///< size and hash match the index
  Unverifiable, ///< no index row or a v1 row — load it like before
  Corrupt,      ///< size or hash mismatch — quarantine and recompile
};
ArtifactVerdict verifyCacheArtifact(const std::string &Dir,
                                    const std::string &Key);

/// Move a corrupt artifact into quarantine/ (with a .reason sidecar) and
/// drop its index row, so the caller's recompile sees a clean miss.
void quarantineCacheArtifact(const std::string &Dir, const std::string &Key,
                             const std::string &Reason);

/// Evict least-recently-used artifacts until the directory's total
/// ddr-*.so bytes fit \p MaxBytes. \p ProtectKey (typically the artifact
/// just installed) is never evicted. Returns the number evicted.
uint64_t enforceCacheCap(const std::string &Dir, uint64_t MaxBytes,
                         const std::string &ProtectKey = {});

/// Process-lifetime counters for the native compile cache, exposed so the
/// serve daemon can report cache effectiveness without reaching into the
/// loader. Monotonic; read with relaxed ordering.
struct NativeCacheStats {
  uint64_t MemHits = 0;      ///< .so already dlopen'd in this process
  uint64_t DiskHits = 0;     ///< .so found on disk; dlopen'd without compiling
  uint64_t HostCompiles = 0; ///< host compiler actually invoked
  uint64_t CompileTimeouts = 0; ///< supervised compiles killed at the budget
  uint64_t Quarantined = 0;  ///< corrupt artifacts moved into quarantine/
  uint64_t Evicted = 0;      ///< artifacts removed by the LRU size cap
};
NativeCacheStats nativeCacheStats();

/// The two counters owned by the cache maintenance layer (cache.cpp);
/// folded into nativeCacheStats() by the loader.
uint64_t cacheQuarantineCount();
uint64_t cacheEvictionCount();

} // namespace diderot::codegen

#endif // DIDEROT_CODEGEN_CACHE_H

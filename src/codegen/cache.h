//===--- codegen/cache.h - content-addressed compile cache interface ---------===//
//
// Part of the Diderot-C++ reproduction (PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The native engine's compiled-object cache, content-addressed so that a
/// cache directory can be shared across processes and daemon restarts
/// ("compile once, serve many"). The key is a 128-bit FNV-1a hash over the
/// program text, the compile options that change the generated code or its
/// binary, the ddr_* runtime ABI version, and the host compiler identity —
/// replacing the earlier std::hash<std::string> size_t key, which had no
/// collision guarantee, was unstable across standard libraries, and omitted
/// ABI and compiler identity entirely.
///
/// Cache directory layout (Opts.WorkDir, or <temp>/diderot-cpp):
///   ddr-<32-hex-key>.so    the compiled shared object
///   ddr-<32-hex-key>.cpp   the generated translation unit (KeepCpp only)
///   index.tsv              append-only index: one line per compile,
///                          "<key>\t<program>\t<unix-ms>\t<compiler-id>"
///
/// Invalidation is by key, never in place: a new ABI revision, compiler, or
/// flag set hashes to new file names and old entries simply go cold (delete
/// the directory to reclaim space). serve/compile_cache.h reads the index.
///
//===----------------------------------------------------------------------===//

#ifndef DIDEROT_CODEGEN_CACHE_H
#define DIDEROT_CODEGEN_CACHE_H

#include <cstdint>
#include <string>

#include "driver/driver.h"
#include "support/hash.h"

namespace diderot::codegen {

/// Version of the ddr_* C ABI between the driver and generated shared
/// objects (v5 added ddr_metrics_read; v6 the pooled-scheduler run flag
/// bit and the persistent StrandPool behind it). Part of every cache key:
/// a .so built for an older protocol must never be served to a newer
/// driver.
constexpr int DdrAbiVersion = 6;

/// Identity of the host toolchain baked into cache keys: the configured
/// compiler path plus the version banner of the compiler that built this
/// driver. Deliberately NOT the DIDEROT_CXX environment override — that is
/// an operational redirect (and the poison-the-compiler cache tests rely on
/// a warm cache surviving it), not a different artifact identity.
std::string hostCompilerId();

/// The cache key for \p Text compiled under \p Opts. \p Text is whatever
/// feeds the next stage: the native loader keys on the generated C++
/// translation unit; the serve daemon keys its program registry on Diderot
/// source. Both incorporate every CompileOptions field that changes the
/// result, plus DdrAbiVersion and hostCompilerId().
support::Hash128 programCacheKey(const std::string &Text,
                                 const CompileOptions &Opts);

/// Name of the append-only index file inside a cache directory.
inline const char *cacheIndexFile() { return "index.tsv"; }

/// Process-lifetime counters for the native compile cache, exposed so the
/// serve daemon can report cache effectiveness without reaching into the
/// loader. Monotonic; read with relaxed ordering.
struct NativeCacheStats {
  uint64_t MemHits = 0;      ///< .so already dlopen'd in this process
  uint64_t DiskHits = 0;     ///< .so found on disk; dlopen'd without compiling
  uint64_t HostCompiles = 0; ///< host compiler actually invoked
};
NativeCacheStats nativeCacheStats();

} // namespace diderot::codegen

#endif // DIDEROT_CODEGEN_CACHE_H

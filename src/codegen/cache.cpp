//===--- codegen/cache.cpp - crash-consistent cache maintenance --------------===//
//
// Part of the Diderot-C++ reproduction (PLDI 2012).
//
// The maintenance half of the native compile cache: the index.tsv inventory
// (read, atomic rewrite), artifact integrity verification on disk hits,
// quarantine of corrupt artifacts, and the LRU size cap. The loader
// (native_load.cpp) calls in here around each compile/load; the serve
// daemon reads the counters through nativeCacheStats().
//
// Crash-consistency model: every index mutation is read-modify-write into a
// process-unique temp file, then rename(2)'d over index.tsv — atomic within
// a directory, so a reader (or a crash) sees either the old or the new
// index, never a torn line. In-process mutations serialize on one mutex;
// across processes the last rename wins, which can lose a *row update* but
// never corrupts the file — acceptable for an inventory whose source of
// truth is the .so files themselves.
//
//===----------------------------------------------------------------------===//

#include "codegen/cache.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <unistd.h>

#include "support/atomic_file.h"
#include "support/hash.h"
#include "support/strings.h"

namespace diderot::codegen {

namespace fs = std::filesystem;

namespace {

std::atomic<uint64_t> NQuarantined{0}, NEvicted{0};

/// Serializes in-process read-modify-write cycles on any index file. One
/// process rarely touches two cache directories, so a single mutex is fine.
std::mutex IndexMu;

int64_t nowUnixMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

fs::path soPath(const fs::path &Dir, const std::string &Key) {
  return Dir / strf("ddr-", Key, ".so");
}

/// Hash a file's bytes. Returns false when the file cannot be read.
bool hashFile(const fs::path &P, support::Hash128 &Out, int64_t &Bytes) {
  std::ifstream In(P, std::ios::binary);
  if (!In)
    return false;
  support::Fnv128 H;
  char Buf[65536];
  Bytes = 0;
  while (In.read(Buf, sizeof(Buf)) || In.gcount() > 0) {
    H.update(Buf, static_cast<size_t>(In.gcount()));
    Bytes += In.gcount();
    if (In.eof())
      break;
  }
  Out = H.digest();
  return true;
}

std::vector<CacheIndexEntry> readEntriesLocked(const fs::path &Dir) {
  std::vector<CacheIndexEntry> Entries;
  std::ifstream In(Dir / cacheIndexFile());
  if (!In)
    return Entries;
  std::string Line;
  while (std::getline(In, Line)) {
    std::vector<std::string> Cols = splitString(Line, '\t');
    if (Cols.size() < 4 || Cols[0].size() != 32)
      continue;
    CacheIndexEntry E;
    E.Key = Cols[0];
    E.Program = Cols[1];
    E.UnixMs = std::atoll(Cols[2].c_str());
    E.CompilerId = Cols[3];
    if (Cols.size() >= 7) {
      E.SoBytes = std::atoll(Cols[4].c_str());
      E.SoHash = Cols[5];
      E.LastUsedMs = std::atoll(Cols[6].c_str());
    } else {
      // v1 row: no integrity data; treat install time as last use so LRU
      // ordering still has something to go on.
      E.LastUsedMs = E.UnixMs;
    }
    Entries.push_back(std::move(E));
  }
  return Entries;
}

/// Write the full index atomically (support/atomic_file.h). Failures are
/// swallowed: the index is an inventory, not a source of truth.
void writeEntriesLocked(const fs::path &Dir,
                        const std::vector<CacheIndexEntry> &Entries) {
  std::string Text;
  for (const CacheIndexEntry &E : Entries)
    Text += strf(E.Key, '\t', E.Program, '\t', E.UnixMs, '\t', E.CompilerId,
                 '\t', E.SoBytes, '\t', E.SoHash, '\t', E.LastUsedMs, '\n');
  support::writeFileAtomicBestEffort((Dir / cacheIndexFile()).string(), Text);
}

/// Read-modify-write under the index mutex.
template <typename Fn> void mutateIndex(const fs::path &Dir, Fn &&Mutate) {
  std::lock_guard<std::mutex> G(IndexMu);
  std::vector<CacheIndexEntry> Entries = readEntriesLocked(Dir);
  if (Mutate(Entries))
    writeEntriesLocked(Dir, Entries);
}

} // namespace

std::vector<CacheIndexEntry> readCacheIndexEntries(const std::string &Dir) {
  std::lock_guard<std::mutex> G(IndexMu);
  return readEntriesLocked(Dir);
}

void recordCacheArtifact(const std::string &Dir, const std::string &Key,
                         const std::string &Program) {
  support::Hash128 H;
  int64_t Bytes = 0;
  if (!hashFile(soPath(Dir, Key), H, Bytes))
    return;
  int64_t Now = nowUnixMs();
  mutateIndex(Dir, [&](std::vector<CacheIndexEntry> &Entries) {
    for (CacheIndexEntry &E : Entries)
      if (E.Key == Key) {
        E.Program = Program;
        E.UnixMs = Now;
        E.CompilerId = hostCompilerId();
        E.SoBytes = Bytes;
        E.SoHash = H.hex();
        E.LastUsedMs = Now;
        return true;
      }
    CacheIndexEntry E;
    E.Key = Key;
    E.Program = Program;
    E.UnixMs = Now;
    E.CompilerId = hostCompilerId();
    E.SoBytes = Bytes;
    E.SoHash = H.hex();
    E.LastUsedMs = Now;
    Entries.push_back(std::move(E));
    return true;
  });
}

void touchCacheArtifact(const std::string &Dir, const std::string &Key) {
  int64_t Now = nowUnixMs();
  mutateIndex(Dir, [&](std::vector<CacheIndexEntry> &Entries) {
    for (CacheIndexEntry &E : Entries)
      if (E.Key == Key) {
        E.LastUsedMs = Now;
        return true;
      }
    return false; // no row (v0 cache dir) — nothing to refresh
  });
}

ArtifactVerdict verifyCacheArtifact(const std::string &Dir,
                                    const std::string &Key) {
  CacheIndexEntry Row;
  bool Found = false;
  {
    std::lock_guard<std::mutex> G(IndexMu);
    for (CacheIndexEntry &E : readEntriesLocked(Dir))
      if (E.Key == Key) {
        Row = std::move(E);
        Found = true;
        break;
      }
  }
  if (!Found || Row.SoBytes < 0 || Row.SoHash.size() != 32)
    return ArtifactVerdict::Unverifiable;
  support::Hash128 H;
  int64_t Bytes = 0;
  if (!hashFile(soPath(Dir, Key), H, Bytes))
    return ArtifactVerdict::Corrupt; // indexed but unreadable
  if (Bytes != Row.SoBytes || H.hex() != Row.SoHash)
    return ArtifactVerdict::Corrupt;
  return ArtifactVerdict::Ok;
}

void quarantineCacheArtifact(const std::string &Dir, const std::string &Key,
                             const std::string &Reason) {
  fs::path Q = fs::path(Dir) / cacheQuarantineDir();
  std::error_code EC;
  fs::create_directories(Q, EC);
  fs::path From = soPath(Dir, Key);
  fs::path To = Q / strf("ddr-", Key, ".so.", nowUnixMs(), ".", ::getpid());
  fs::rename(From, To, EC);
  if (EC) {
    // Cross-device or permission trouble: removal still unblocks the
    // recompile, at the cost of the post-mortem copy.
    fs::remove(From, EC);
  } else {
    std::ofstream Note(To.string() + ".reason");
    Note << Reason << '\n';
  }
  NQuarantined.fetch_add(1, std::memory_order_relaxed);
  mutateIndex(Dir, [&](std::vector<CacheIndexEntry> &Entries) {
    size_t Before = Entries.size();
    std::erase_if(Entries,
                  [&](const CacheIndexEntry &E) { return E.Key == Key; });
    return Entries.size() != Before;
  });
}

uint64_t enforceCacheCap(const std::string &Dir, uint64_t MaxBytes,
                         const std::string &ProtectKey) {
  if (MaxBytes == 0)
    return 0;
  struct Victim {
    std::string Key;
    uint64_t Bytes;
    int64_t LastUsedMs;
  };
  std::vector<Victim> OnDisk;
  uint64_t Total = 0;
  std::lock_guard<std::mutex> G(IndexMu);
  std::vector<CacheIndexEntry> Entries = readEntriesLocked(Dir);
  std::error_code EC;
  for (fs::directory_iterator It(Dir, EC), End; !EC && It != End;
       It.increment(EC)) {
    std::string Name = It->path().filename().string();
    // ddr-<32 hex>.so
    if (Name.size() != 4 + 32 + 3 || Name.rfind("ddr-", 0) != 0 ||
        Name.substr(36) != ".so")
      continue;
    Victim V;
    V.Key = Name.substr(4, 32);
    V.Bytes = static_cast<uint64_t>(fs::file_size(It->path(), EC));
    if (EC) {
      EC.clear();
      continue;
    }
    V.LastUsedMs = 0;
    bool Indexed = false;
    for (const CacheIndexEntry &E : Entries)
      if (E.Key == V.Key) {
        V.LastUsedMs = E.LastUsedMs;
        Indexed = true;
        break;
      }
    if (!Indexed) {
      // Orphan (pre-v2 or foreign writer): fall back to the file clock.
      auto T = fs::last_write_time(It->path(), EC);
      if (!EC)
        V.LastUsedMs = std::chrono::duration_cast<std::chrono::milliseconds>(
                           T.time_since_epoch())
                           .count();
      EC.clear();
    }
    Total += V.Bytes;
    OnDisk.push_back(std::move(V));
  }
  if (Total <= MaxBytes)
    return 0;
  std::sort(OnDisk.begin(), OnDisk.end(), [](const Victim &A, const Victim &B) {
    return A.LastUsedMs < B.LastUsedMs;
  });
  uint64_t Evicted = 0;
  bool Changed = false;
  for (const Victim &V : OnDisk) {
    if (Total <= MaxBytes)
      break;
    if (V.Key == ProtectKey)
      continue;
    fs::remove(soPath(Dir, V.Key), EC);
    fs::remove(fs::path(Dir) / strf("ddr-", V.Key, ".cpp"), EC);
    Total -= V.Bytes < Total ? V.Bytes : Total;
    size_t Before = Entries.size();
    std::erase_if(Entries,
                  [&](const CacheIndexEntry &E) { return E.Key == V.Key; });
    Changed |= Entries.size() != Before;
    ++Evicted;
  }
  if (Changed)
    writeEntriesLocked(Dir, Entries);
  NEvicted.fetch_add(Evicted, std::memory_order_relaxed);
  return Evicted;
}

uint64_t cacheQuarantineCount() {
  return NQuarantined.load(std::memory_order_relaxed);
}
uint64_t cacheEvictionCount() {
  return NEvicted.load(std::memory_order_relaxed);
}

} // namespace diderot::codegen

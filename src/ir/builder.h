//===--- ir/builder.h - IR construction helper ------------------------------===//
//
// Part of the Diderot-C++ reproduction (PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small builder for constructing structured SSA functions. Regions are
/// built on an explicit stack: pushRegion()/popRegion() bracket the bodies
/// of If instructions, so nested regions are completed before being attached
/// to their parent (keeping iterator/pointer stability trivial).
///
//===----------------------------------------------------------------------===//

#ifndef DIDEROT_IR_BUILDER_H
#define DIDEROT_IR_BUILDER_H

#include <cassert>

#include "ir/ir.h"

namespace diderot::ir {

class Builder {
public:
  explicit Builder(Function &F) : F(F) { Stack.emplace_back(); }

  Function &function() { return F; }

  /// Add a function parameter of type \p T; returns its value id. Must be
  /// called before any instruction values are created.
  ValueId addParam(Type T) {
    assert(F.numValues() == F.NumParams &&
           "parameters must be added before instructions");
    ValueId V = F.newValue(std::move(T));
    F.NumParams = F.numValues();
    return V;
  }

  /// Emit a single-result instruction.
  ValueId emit(Op O, std::vector<ValueId> Operands, Type ResultTy,
               Attr A = std::monostate{}, SourceLoc Loc = {}) {
    Instr I(O);
    I.Operands = std::move(Operands);
    I.A = std::move(A);
    I.Loc = Loc;
    ValueId R = F.newValue(std::move(ResultTy));
    I.Results.push_back(R);
    cur().Body.push_back(std::move(I));
    return R;
  }

  /// Emit an instruction with \p ResultTys.size() results.
  std::vector<ValueId> emitMulti(Op O, std::vector<ValueId> Operands,
                                 std::vector<Type> ResultTys,
                                 Attr A = std::monostate{}) {
    Instr I(O);
    I.Operands = std::move(Operands);
    I.A = std::move(A);
    std::vector<ValueId> Rs;
    for (Type &T : ResultTys)
      Rs.push_back(F.newValue(std::move(T)));
    I.Results = Rs;
    cur().Body.push_back(std::move(I));
    return Rs;
  }

  /// Emit an instruction with no results (e.g. terminators).
  void emitVoid(Op O, std::vector<ValueId> Operands,
                Attr A = std::monostate{}) {
    Instr I(O);
    I.Operands = std::move(Operands);
    I.A = std::move(A);
    cur().Body.push_back(std::move(I));
  }

  // Convenience constant emitters.
  ValueId constBool(bool B) {
    return emit(Op::ConstBool, {}, Type::boolean(), B);
  }
  ValueId constInt(int64_t V) {
    return emit(Op::ConstInt, {}, Type::integer(), V);
  }
  ValueId constReal(double V) {
    return emit(Op::ConstReal, {}, Type::real(), V);
  }
  ValueId constString(std::string S) {
    return emit(Op::ConstString, {}, Type::string(), std::move(S));
  }
  ValueId constTensor(Tensor T) {
    Type Ty = Type::tensor(T.shape());
    if (T.isScalar())
      return constReal(T.asScalar());
    return emit(Op::ConstTensor, {}, std::move(Ty), std::move(T));
  }

  /// Begin building a nested region (an If branch).
  void pushRegion() { Stack.emplace_back(); }
  /// Finish the innermost nested region and return it.
  Region popRegion() {
    assert(Stack.size() > 1 && "cannot pop the function body region");
    Region R = std::move(Stack.back());
    Stack.pop_back();
    // A region must end in a terminator; callers emit Yield/Exit themselves.
    assert(R.hasTerminator() && "popped region lacks a terminator");
    return R;
  }

  /// Finish the innermost region *without* requiring a terminator; used when
  /// the caller computes the terminator after seeing both branches (e.g. the
  /// merge set of an if statement).
  Region popRegionUnchecked() {
    assert(Stack.size() > 1 && "cannot pop the function body region");
    Region R = std::move(Stack.back());
    Stack.pop_back();
    return R;
  }

  /// Emit an If with prebuilt branch regions; returns the result ids.
  std::vector<ValueId> emitIf(ValueId Cond, Region Then, Region Else,
                              std::vector<Type> ResultTys) {
    Instr I(Op::If);
    I.Operands.push_back(Cond);
    I.Regions.push_back(std::move(Then));
    I.Regions.push_back(std::move(Else));
    std::vector<ValueId> Rs;
    for (Type &T : ResultTys)
      Rs.push_back(F.newValue(std::move(T)));
    I.Results = Rs;
    cur().Body.push_back(std::move(I));
    return Rs;
  }

  void yield(std::vector<ValueId> Vals) {
    emitVoid(Op::Yield, std::move(Vals));
  }
  void exit(ExitAttr::Kind K, std::vector<ValueId> Vals) {
    emitVoid(Op::Exit, std::move(Vals), ExitAttr{K});
  }

  /// True when the current region already ends in a terminator (i.e. the
  /// remaining source statements are unreachable).
  bool terminated() const { return Stack.back().hasTerminator(); }

  /// Finish the function: moves the outermost region into F.Body.
  void finish() {
    assert(Stack.size() == 1 && "unbalanced pushRegion/popRegion");
    F.Body = std::move(Stack.back());
    Stack.clear();
  }

private:
  Region &cur() { return Stack.back(); }

  Function &F;
  std::vector<Region> Stack;
};

} // namespace diderot::ir

#endif // DIDEROT_IR_BUILDER_H

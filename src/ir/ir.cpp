//===--- ir/ir.cpp ---------------------------------------------------------===//

#include "ir/ir.h"

#include <set>

#include "support/strings.h"

namespace diderot::ir {

const char *opName(Op O) {
  switch (O) {
  case Op::ConstBool:
    return "const.bool";
  case Op::ConstInt:
    return "const.int";
  case Op::ConstReal:
    return "const.real";
  case Op::ConstString:
    return "const.string";
  case Op::ConstTensor:
    return "const.tensor";
  case Op::GlobalGet:
    return "global.get";
  case Op::Add:
    return "add";
  case Op::Sub:
    return "sub";
  case Op::Mul:
    return "mul";
  case Op::Div:
    return "div";
  case Op::Mod:
    return "mod";
  case Op::Neg:
    return "neg";
  case Op::Min:
    return "min";
  case Op::Max:
    return "max";
  case Op::Scale:
    return "scale";
  case Op::DivScale:
    return "divscale";
  case Op::Pow:
    return "pow";
  case Op::Dot:
    return "dot";
  case Op::Cross:
    return "cross";
  case Op::Outer:
    return "outer";
  case Op::Norm:
    return "norm";
  case Op::Normalize:
    return "normalize";
  case Op::Trace:
    return "trace";
  case Op::Det:
    return "det";
  case Op::Inverse:
    return "inverse";
  case Op::Transpose:
    return "transpose";
  case Op::Modulate:
    return "modulate";
  case Op::Lerp:
    return "lerp";
  case Op::TensorCons:
    return "tensor.cons";
  case Op::TensorIndex:
    return "tensor.index";
  case Op::Evals:
    return "evals";
  case Op::Evecs:
    return "evecs";
  case Op::SeqCons:
    return "seq.cons";
  case Op::SeqIndex:
    return "seq.index";
  case Op::Sqrt:
    return "sqrt";
  case Op::Sin:
    return "sin";
  case Op::Cos:
    return "cos";
  case Op::Tan:
    return "tan";
  case Op::Asin:
    return "asin";
  case Op::Acos:
    return "acos";
  case Op::Atan:
    return "atan";
  case Op::Atan2:
    return "atan2";
  case Op::Exp:
    return "exp";
  case Op::Log:
    return "log";
  case Op::Floor:
    return "floor";
  case Op::Ceil:
    return "ceil";
  case Op::Round:
    return "round";
  case Op::Trunc:
    return "trunc";
  case Op::Abs:
    return "abs";
  case Op::Clamp:
    return "clamp";
  case Op::IntToReal:
    return "int.to.real";
  case Op::RealToInt:
    return "real.to.int";
  case Op::Lt:
    return "lt";
  case Op::Le:
    return "le";
  case Op::Gt:
    return "gt";
  case Op::Ge:
    return "ge";
  case Op::Eq:
    return "eq";
  case Op::Ne:
    return "ne";
  case Op::And:
    return "and";
  case Op::Or:
    return "or";
  case Op::Not:
    return "not";
  case Op::Select:
    return "select";
  case Op::LoadImage:
    return "image.load";
  case Op::Convolve:
    return "field.convolve";
  case Op::FieldAdd:
    return "field.add";
  case Op::FieldSub:
    return "field.sub";
  case Op::FieldNeg:
    return "field.neg";
  case Op::FieldScale:
    return "field.scale";
  case Op::FieldDivScale:
    return "field.divscale";
  case Op::FieldDiff:
    return "field.diff";
  case Op::FieldDivergence:
    return "field.div";
  case Op::FieldCurl:
    return "field.curl";
  case Op::Probe:
    return "field.probe";
  case Op::FieldInside:
    return "field.inside";
  case Op::WorldToImage:
    return "world.to.image";
  case Op::ImageGradXform:
    return "image.gradxform";
  case Op::InsideTest:
    return "inside.test";
  case Op::VoxelLoad:
    return "voxel.load";
  case Op::KernelWeight:
    return "kernel.weight";
  case Op::PolyEval:
    return "poly.eval";
  case Op::ImgMeta:
    return "img.meta";
  case Op::EigenVals:
    return "eigen.vals";
  case Op::EigenVecs:
    return "eigen.vecs";
  case Op::If:
    return "if";
  case Op::Yield:
    return "yield";
  case Op::Exit:
    return "exit";
  }
  return "?";
}

unsigned opLevels(Op O) {
  switch (O) {
  case Op::ConstTensor:
  case Op::Scale:
  case Op::DivScale:
  case Op::Dot:
  case Op::Cross:
  case Op::Outer:
  case Op::Norm:
  case Op::Normalize:
  case Op::Trace:
  case Op::Det:
  case Op::Inverse:
  case Op::Transpose:
  case Op::Modulate:
  case Op::Lerp:
  case Op::TensorCons:
  case Op::TensorIndex:
  case Op::Evals:
  case Op::Evecs:
  case Op::SeqCons:
  case Op::SeqIndex:
    return High | Mid;
  case Op::Convolve:
  case Op::FieldAdd:
  case Op::FieldSub:
  case Op::FieldNeg:
  case Op::FieldScale:
  case Op::FieldDivScale:
  case Op::FieldDiff:
  case Op::FieldDivergence:
  case Op::FieldCurl:
  case Op::Probe:
  case Op::FieldInside:
    return High;
  case Op::WorldToImage:
  case Op::ImageGradXform:
  case Op::KernelWeight:
    return Mid;
  case Op::InsideTest:
  case Op::VoxelLoad:
  case Op::Select:
    return Mid | Low;
  case Op::PolyEval:
  case Op::ImgMeta:
  case Op::EigenVals:
  case Op::EigenVecs:
    return Low;
  default:
    return High | Mid | Low;
  }
}

std::string attrStr(const Attr &A) {
  struct Visitor {
    std::string operator()(std::monostate) { return ""; }
    std::string operator()(bool B) { return B ? "true" : "false"; }
    std::string operator()(int64_t I) { return strf(I); }
    std::string operator()(double D) { return formatReal(D); }
    std::string operator()(const std::string &S) { return strf("\"", S, "\""); }
    std::string operator()(const Tensor &T) { return T.str(); }
    std::string operator()(const std::vector<int> &V) {
      std::string S = "[";
      for (size_t I = 0; I < V.size(); ++I)
        S += strf(I ? "," : "", V[I]);
      return S + "]";
    }
    std::string operator()(const std::vector<double> &V) {
      std::string S = "[";
      for (size_t I = 0; I < V.size(); ++I)
        S += strf(I ? "," : "", formatReal(V[I]));
      return S + "]";
    }
    std::string operator()(const ConvolveAttr &C) {
      std::string S = C.Kernel;
      for (int I = 0; I < C.Deriv; ++I)
        S += "'";
      return S;
    }
    std::string operator()(const KernelWeightAttr &K) {
      return strf(K.Kernel, "/d", K.Deriv, "/tap", K.Tap);
    }
    std::string operator()(const VoxelAttr &V) {
      std::string S = "off=[";
      for (size_t I = 0; I < V.Offsets.size(); ++I)
        S += strf(I ? "," : "", V.Offsets[I]);
      return S + strf("] comp=", V.Comp);
    }
    std::string operator()(const MetaAttr &M) {
      const char *K = M.K == MetaAttr::W2I      ? "w2i"
                      : M.K == MetaAttr::Origin ? "origin"
                      : M.K == MetaAttr::GradXf ? "gradxf"
                                                : "size";
      return strf(K, "(", M.R, ",", M.C, ")");
    }
    std::string operator()(const ExitAttr &E) {
      return E.K == ExitAttr::Continue    ? "continue"
             : E.K == ExitAttr::Stabilize ? "stabilize"
                                          : "die";
    }
  };
  return std::visit(Visitor{}, A);
}

namespace {

void printRegion(const Region &R, int Indent, std::string &Out) {
  std::string Pad(static_cast<size_t>(Indent) * 2, ' ');
  for (const Instr &I : R.Body) {
    Out += Pad;
    for (size_t K = 0; K < I.Results.size(); ++K)
      Out += strf(K ? ", " : "", "v", I.Results[K]);
    if (!I.Results.empty())
      Out += " = ";
    Out += opName(I.Opcode);
    std::string AS = attrStr(I.A);
    if (!AS.empty())
      Out += strf("[", AS, "]");
    for (size_t K = 0; K < I.Operands.size(); ++K)
      Out += strf(K ? ", v" : " v", I.Operands[K]);
    if (!I.Regions.empty()) {
      Out += " {\n";
      printRegion(I.Regions[0], Indent + 1, Out);
      Out += Pad + "}";
      if (I.Regions.size() > 1) {
        Out += " else {\n";
        printRegion(I.Regions[1], Indent + 1, Out);
        Out += Pad + "}";
      }
    }
    Out += "\n";
  }
}

} // namespace

std::string print(const Function &F) {
  std::string Out = strf("func @", F.Name, "(");
  for (int I = 0; I < F.NumParams; ++I)
    Out += strf(I ? ", v" : "v", I, ": ",
                F.ValueTypes[static_cast<size_t>(I)].str());
  Out += ") -> (";
  for (size_t I = 0; I < F.ResultTypes.size(); ++I)
    Out += strf(I ? ", " : "", F.ResultTypes[I].str());
  Out += ") {\n";
  printRegion(F.Body, 1, Out);
  Out += "}\n";
  return Out;
}

std::string print(const Module &M) {
  std::string Out = strf("module @", M.Name, " level=",
                         M.CurLevel == High  ? "high"
                         : M.CurLevel == Mid ? "mid"
                                             : "low",
                         "\n");
  for (size_t I = 0; I < M.Globals.size(); ++I)
    Out += strf("global ", I, ": ", M.Globals[I].IsInput ? "input " : "",
                M.Globals[I].Ty.str(), " ", M.Globals[I].Name, "\n");
  for (const Function &F : M.InputDefaults)
    Out += print(F);
  Out += print(M.GlobalInit);
  Out += print(M.StrandInit);
  Out += print(M.Update);
  if (M.hasStabilize())
    Out += print(M.Stabilize);
  for (size_t I = 0; I < M.IterLo.size(); ++I) {
    Out += print(M.IterLo[I]);
    Out += print(M.IterHi[I]);
  }
  Out += print(M.CreateArgs);
  return Out;
}

namespace {

int countOpsRegion(const Region &R, Op O) {
  int N = 0;
  for (const Instr &I : R.Body) {
    if (I.Opcode == O)
      ++N;
    for (const Region &Sub : I.Regions)
      N += countOpsRegion(Sub, O);
  }
  return N;
}

int countAllRegion(const Region &R) {
  int N = 0;
  for (const Instr &I : R.Body) {
    ++N;
    for (const Region &Sub : I.Regions)
      N += countAllRegion(Sub);
  }
  return N;
}

struct Verifier {
  const Function &F;
  unsigned Lvl;
  std::string Err;
  std::set<ValueId> Defined;

  bool fail(const std::string &Msg) {
    if (Err.empty())
      Err = strf("@", F.Name, ": ", Msg);
    return false;
  }

  bool checkValue(ValueId V, const char *What) {
    if (V < 0 || V >= F.numValues())
      return fail(strf("invalid ", What, " v", V));
    if (!Defined.count(V))
      return fail(strf(What, " v", V, " used before definition"));
    return true;
  }

  bool run() {
    for (int I = 0; I < F.NumParams; ++I)
      Defined.insert(I);
    return checkRegion(F.Body, 0);
  }

  bool checkRegion(const Region &R, size_t NumIfResults) {
    if (R.Body.empty())
      return fail("empty region");
    for (size_t I = 0; I < R.Body.size(); ++I) {
      const Instr &In = R.Body[I];
      bool IsLast = I + 1 == R.Body.size();
      if (isTerminator(In.Opcode) != IsLast)
        return fail(IsLast ? "region does not end in a terminator"
                           : strf("terminator '", opName(In.Opcode),
                                  "' in the middle of a region"));
      if (!(opLevels(In.Opcode) & Lvl))
        return fail(strf("op '", opName(In.Opcode),
                         "' is not legal at this IR level"));
      for (ValueId V : In.Operands)
        if (!checkValue(V, "operand"))
          return false;
      if (In.Opcode == Op::If) {
        if (In.Regions.size() != 2)
          return fail("if needs exactly two regions");
        if (In.Operands.size() != 1)
          return fail("if takes exactly one condition operand");
        // Save and restore the scope across each branch: values defined in
        // one branch are not visible in the other or after the if.
        for (const Region &Sub : In.Regions) {
          std::set<ValueId> Saved = Defined;
          if (!checkRegion(Sub, In.Results.size()))
            return false;
          Defined = std::move(Saved);
        }
      } else if (!In.Regions.empty()) {
        return fail(strf("op '", opName(In.Opcode), "' cannot have regions"));
      }
      if (In.Opcode == Op::Yield) {
        if (In.Operands.size() != NumIfResults)
          return fail(strf("yield arity ", In.Operands.size(),
                           " does not match if results ", NumIfResults));
      }
      if (In.Opcode == Op::Exit) {
        if (!std::holds_alternative<ExitAttr>(In.A))
          return fail("exit requires an ExitAttr");
        if (In.Operands.size() != F.ResultTypes.size())
          return fail(strf("exit arity ", In.Operands.size(),
                           " does not match function results ",
                           F.ResultTypes.size()));
      }
      for (ValueId V : In.Results) {
        if (V < 0 || V >= F.numValues())
          return fail(strf("invalid result v", V));
        if (!Defined.insert(V).second)
          return fail(strf("value v", V, " defined twice"));
      }
    }
    return true;
  }
};

} // namespace

int countOps(const Function &F, Op O) { return countOpsRegion(F.Body, O); }
int countAllOps(const Function &F) { return countAllRegion(F.Body); }

int countModuleOps(const Module &M) {
  int N = countAllOps(M.GlobalInit) + countAllOps(M.StrandInit) +
          countAllOps(M.Update) + countAllOps(M.CreateArgs);
  if (M.hasStabilize())
    N += countAllOps(M.Stabilize);
  for (const Function &F : M.InputDefaults)
    N += countAllOps(F);
  for (const Function &F : M.IterLo)
    N += countAllOps(F);
  for (const Function &F : M.IterHi)
    N += countAllOps(F);
  return N;
}

int profClassOf(Op O) {
  switch (O) {
  case Op::VoxelLoad:
    return 0; // probe
  case Op::KernelWeight:
  case Op::PolyEval:
    return 1; // kernel piece evaluation
  case Op::InsideTest:
    return 2; // inside test
  case Op::Dot:
  case Op::Cross:
  case Op::Outer:
  case Op::Norm:
  case Op::Normalize:
  case Op::Trace:
  case Op::Det:
  case Op::Inverse:
  case Op::Transpose:
  case Op::Modulate:
  case Op::Lerp:
  case Op::Evals:
  case Op::Evecs:
  case Op::Scale:
  case Op::DivScale:
  case Op::EigenVals:
  case Op::EigenVecs:
    return 3; // tensor op
  default:
    return -1;
  }
}

namespace {
int maxLineRegion(const Region &R) {
  int Max = 0;
  for (const Instr &I : R.Body) {
    if (I.Loc.Line > Max)
      Max = I.Loc.Line;
    for (const Region &Sub : I.Regions) {
      int S = maxLineRegion(Sub);
      Max = S > Max ? S : Max;
    }
  }
  return Max;
}
} // namespace

int maxSourceLine(const Function &F) { return maxLineRegion(F.Body); }

int maxSourceLine(const Module &M) {
  int Max = maxSourceLine(M.Update);
  if (M.hasStabilize()) {
    int S = maxSourceLine(M.Stabilize);
    Max = S > Max ? S : Max;
  }
  return Max;
}

std::string verify(const Function &F, unsigned Lvl) {
  Verifier V{F, Lvl, {}, {}};
  V.run();
  return V.Err;
}

std::string verify(const Module &M) {
  for (const Function *F :
       {&M.GlobalInit, &M.StrandInit, &M.Update, &M.CreateArgs}) {
    std::string E = verify(*F, M.CurLevel);
    if (!E.empty())
      return E;
  }
  if (M.hasStabilize()) {
    std::string E = verify(M.Stabilize, M.CurLevel);
    if (!E.empty())
      return E;
  }
  for (const Function &F : M.InputDefaults) {
    std::string E = verify(F, M.CurLevel);
    if (!E.empty())
      return E;
  }
  for (size_t I = 0; I < M.IterLo.size(); ++I) {
    std::string E = verify(M.IterLo[I], M.CurLevel);
    if (E.empty())
      E = verify(M.IterHi[I], M.CurLevel);
    if (!E.empty())
      return E;
  }
  return "";
}

} // namespace diderot::ir

//===--- ir/ir.h - structured SSA IR for the Diderot compiler --------------===//
//
// Part of the Diderot-C++ reproduction (PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The compiler's intermediate representation. The paper uses "a series of
/// three intermediate representations (IRs) based on Static Single
/// Assignment (SSA) form. These IRs share a common control-flow graph
/// representation, but differ in their types and operations. HighIR is
/// essentially a desugared version of the source language... MidIR supports
/// vectors, transforms between coordinate spaces, loading image data, and
/// kernel evaluations... LowIR supports basic operations on vectors,
/// scalars, and memory objects."
///
/// We implement the three levels over one instruction infrastructure,
/// distinguished by a per-op level mask that the verifier enforces. Because
/// Diderot v1 is loop-free (the bulk-synchronous superstep *is* the loop),
/// the CFG is always a tree of if/else diamonds; we therefore use
/// *structured* SSA — an `If` instruction carries two nested regions and
/// yields merged values (phi nodes become region results) — which makes the
/// paper's final "convert SSA to a block-structured AST" codegen step
/// trivial.
///
/// Early exits: `stabilize`/`die`/normal completion are Exit terminators
/// carrying the full strand state; a region ends in either Yield (fall
/// through, with values for the parent If's results) or Exit.
///
//===----------------------------------------------------------------------===//

#ifndef DIDEROT_IR_IR_H
#define DIDEROT_IR_IR_H

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "frontend/types.h"
#include "support/location.h"
#include "tensor/tensor.h"

namespace diderot::ir {

/// IR level bit mask.
enum Level : unsigned { High = 1, Mid = 2, Low = 4 };

/// All IR operations across the three levels (see opLevels() for which ops
/// are legal where).
enum class Op : uint8_t {
  // Constants and references.
  ConstBool,
  ConstInt,
  ConstReal,
  ConstString,
  ConstTensor, ///< non-scalar tensor literal (exploded before LowIR)
  GlobalGet,   ///< attr: global index

  // Arithmetic (int or real or, at High/Mid, elementwise tensor).
  Add,
  Sub,
  Mul, ///< int*int or real*real
  Div,
  Mod, ///< int
  Neg,
  Min,
  Max,
  Scale,    ///< real * tensor (High/Mid)
  DivScale, ///< tensor / real (High/Mid)
  Pow,      ///< real ^ real

  // Tensor operations (High/Mid; scalarized for Low).
  Dot,
  Cross,
  Outer,
  Norm,
  Normalize,
  Trace,
  Det,
  Inverse,
  Transpose,
  Modulate,
  Lerp,
  TensorCons,  ///< build a tensor from scalar components (row-major)
  TensorIndex, ///< attr: vector<int> constant indices (may be partial)
  Evals,       ///< symmetric eigenvalues, descending (High/Mid)
  Evecs,       ///< unit eigenvectors as rows (High/Mid)

  // Sequences.
  SeqCons,
  SeqIndex, ///< dynamic index operand

  // Scalar math.
  Sqrt,
  Sin,
  Cos,
  Tan,
  Asin,
  Acos,
  Atan,
  Atan2,
  Exp,
  Log,
  Floor,
  Ceil,
  Round,
  Trunc,
  Abs,
  Clamp,
  IntToReal,
  RealToInt, ///< truncation toward negative infinity (floor), for voxel bases

  // Comparisons and logic.
  Lt,
  Le,
  Gt,
  Ge,
  Eq,
  Ne,
  And,
  Or,
  Not,
  Select, ///< (cond, a, b) without control flow (Mid/Low only)

  // Field operations (HighIR only; normalized + lowered away).
  LoadImage,    ///< attr: string file name; global init only
  Convolve,     ///< (image) attr ConvolveAttr{kernel, deriv}: V ⊛ ∂^deriv h
  FieldAdd,     ///< f + f
  FieldSub,     ///< f - f
  FieldNeg,     ///< -f
  FieldScale,   ///< (real, field)
  FieldDivScale,///< (field, real)
  FieldDiff,    ///< ∇ / ∇⊗: appends a domain axis to the range shape
  FieldDivergence, ///< ∇• (extension, paper §8.3)
  FieldCurl,       ///< ∇× (extension, paper §8.3)
  Probe,        ///< (field, pos)
  FieldInside,  ///< (pos, field)

  // Probing machinery (MidIR).
  WorldToImage,   ///< (image, worldPos) -> tensor[d] index-space position
  ImageGradXform, ///< (image) -> tensor[d,d] = M^{-T}
  InsideTest,     ///< (image, base ints...) attr: support -> bool
  VoxelLoad,      ///< (image, base ints...) attr VoxelAttr -> real
  KernelWeight,   ///< (fracPos) attr KernelWeightAttr -> real

  // LowIR expansion.
  PolyEval,   ///< (x) attr vector<double> coefficients (Horner)
  ImgMeta,    ///< (image) attr MetaAttr -> scalar/int image metadata
  EigenVals,  ///< (n*n scalars) attr n -> n scalar results
  EigenVecs,  ///< (n*n scalars) attr n -> n*n scalar results

  // Structured control flow.
  If, ///< (cond) regions {then, else}; results = merged yields

  // Terminators.
  Yield, ///< region falls through with values for the parent's results
  Exit,  ///< leave the function; attr ExitAttr; operands = function results
};

/// Printable op name.
const char *opName(Op O);
/// Level mask where \p O is legal.
unsigned opLevels(Op O);
/// Is \p O a region terminator?
inline bool isTerminator(Op O) { return O == Op::Yield || O == Op::Exit; }
/// Pure ops are eligible for value numbering and dead-code elimination.
/// (Everything except control flow and terminators is pure in Diderot.)
inline bool isPure(Op O) { return O != Op::If && !isTerminator(O); }

//===----------------------------------------------------------------------===//
// Attributes
//===----------------------------------------------------------------------===//

struct ConvolveAttr {
  std::string Kernel; ///< built-in kernel name
  int Deriv = 0;      ///< levels of differentiation pushed into the kernel
  bool operator==(const ConvolveAttr &) const = default;
};

struct KernelWeightAttr {
  std::string Kernel;
  int Deriv = 0; ///< which kernel derivative h^(Deriv)
  int Tap = 0;   ///< integer sample offset i in [1-s, s]
  bool operator==(const KernelWeightAttr &) const = default;
};

struct VoxelAttr {
  std::vector<int> Offsets; ///< per-axis sample offset from the base index
  int Comp = 0;             ///< component within the sample's tensor value
  bool operator==(const VoxelAttr &) const = default;
};

struct MetaAttr {
  enum Kind : uint8_t {
    W2I,    ///< world-to-index matrix entry (R, C)
    Origin, ///< world-space origin component R of the inverse map
    GradXf, ///< M^{-T} entry (R, C)
    Size,   ///< axis R size (int result)
  } K = W2I;
  int R = 0;
  int C = 0;
  bool operator==(const MetaAttr &) const = default;
};

struct ExitAttr {
  enum Kind : uint8_t {
    Continue,  ///< update completed; strand remains active
    Stabilize, ///< strand stabilizes
    Die,       ///< strand dies (no output)
  } K = Continue;
  bool operator==(const ExitAttr &) const = default;
};

using Attr =
    std::variant<std::monostate, bool, int64_t, double, std::string, Tensor,
                 std::vector<int>, std::vector<double>, ConvolveAttr,
                 KernelWeightAttr, VoxelAttr, MetaAttr, ExitAttr>;

/// Render an attribute for the printer.
std::string attrStr(const Attr &A);

//===----------------------------------------------------------------------===//
// Instructions, regions, functions
//===----------------------------------------------------------------------===//

/// SSA value id: an index into the owning Function's value-type table.
using ValueId = int32_t;
constexpr ValueId NoValue = -1;

struct Region;

struct Instr {
  Op Opcode;
  std::vector<ValueId> Operands;
  std::vector<ValueId> Results;
  Attr A;
  std::vector<Region> Regions; ///< If: {then, else}
  SourceLoc Loc;

  Instr() : Opcode(Op::Yield) {}
  explicit Instr(Op O) : Opcode(O) {}
};

struct Region {
  std::vector<Instr> Body; ///< last instruction is the terminator

  bool hasTerminator() const {
    return !Body.empty() && isTerminator(Body.back().Opcode);
  }
  const Instr &terminator() const { return Body.back(); }
};

/// One SSA function. Parameters are values 0..NumParams-1. Results are
/// carried by Exit terminators (every Exit in the function has the same
/// arity, matching ResultTypes).
struct Function {
  std::string Name;
  std::vector<Type> ValueTypes; ///< indexed by ValueId
  int NumParams = 0;
  std::vector<Type> ResultTypes;
  Region Body;

  ValueId newValue(Type T) {
    ValueTypes.push_back(std::move(T));
    return static_cast<ValueId>(ValueTypes.size() - 1);
  }
  const Type &typeOf(ValueId V) const {
    return ValueTypes[static_cast<size_t>(V)];
  }
  int numValues() const { return static_cast<int>(ValueTypes.size()); }
};

//===----------------------------------------------------------------------===//
// Module
//===----------------------------------------------------------------------===//

/// A program global.
struct GlobalVar {
  std::string Name;
  Type Ty;
  bool IsInput = false;
  /// For inputs: index of the default-value function in Module::InputDefaults
  /// (-1 = no default; host must set it).
  int DefaultFn = -1;
};

/// A strand state variable.
struct StateSlot {
  std::string Name;
  Type Ty;
  bool IsOutput = false;
};

/// A whole compiled program at some IR level.
struct Module {
  std::string Name;
  unsigned CurLevel = High;

  std::vector<GlobalVar> Globals;
  /// Default-value functions for inputs (no params; one Exit result).
  std::vector<Function> InputDefaults;
  /// Computes non-input globals. Params: one per *input* global (in global
  /// order). Results: one per *non-input* global (in global order).
  Function GlobalInit;

  std::string StrandName;
  std::vector<Type> StrandParams;
  std::vector<StateSlot> State;
  /// Params: strand creation arguments; results: the initial state vector.
  Function StrandInit;
  /// Params: state vector; results: new state vector (Exit kind gives the
  /// strand status).
  Function Update;
  /// Optional (empty Name when absent): params state, results state.
  Function Stabilize;

  bool IsGrid = true;
  /// Per-iterator bounds: functions with no params and one int result.
  std::vector<Function> IterLo, IterHi;
  /// Params: one int per iterator; results: strand creation arguments.
  Function CreateArgs;

  bool hasStabilize() const { return !Stabilize.Name.empty(); }
};

//===----------------------------------------------------------------------===//
// Utilities
//===----------------------------------------------------------------------===//

/// Pretty-print a function (for tests and -emit-ir).
std::string print(const Function &F);
/// Pretty-print a whole module.
std::string print(const Module &M);

/// Count instructions with opcode \p O in \p F (tests and ablation benches).
int countOps(const Function &F, Op O);
/// Count all instructions in \p F.
int countAllOps(const Function &F);
/// Count all instructions across every function in \p M (GlobalInit,
/// defaults, iterators, strand methods) — the pass-timing "IR size" metric.
int countModuleOps(const Module &M);

/// The profiler op-class of \p O, matching observe::ProfClass numerically:
/// 0 = field probe (VoxelLoad), 1 = kernel piece evaluation (KernelWeight /
/// PolyEval), 2 = inside test, 3 = tensor op; -1 = not profiled. Returns a
/// plain int so ir stays independent of observe.
int profClassOf(Op O);

/// Largest source line attached to any instruction in \p F (0 if none).
int maxSourceLine(const Function &F);
/// Largest source line across \p M's Update and Stabilize methods — the
/// profiler's counter-table bound.
int maxSourceLine(const Module &M);

/// Structural verifier: checks op level legality against \p Lvl, terminator
/// placement, operand/result arity, and value-id validity. Returns an error
/// description, or empty string when the function is well-formed.
std::string verify(const Function &F, unsigned Lvl);
/// Verify every function in \p M at its current level.
std::string verify(const Module &M);

} // namespace diderot::ir

#endif // DIDEROT_IR_IR_H

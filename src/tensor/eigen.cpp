//===--- tensor/eigen.cpp -------------------------------------------------===//

#include "tensor/eigen.h"

namespace diderot {

Tensor eigenvalues(const Tensor &M) {
  assert(M.order() == 2 && M.shape()[0] == M.shape()[1] &&
         "eigenvalues needs a square matrix");
  int N = M.shape()[0];
  if (N == 2) {
    double L[2];
    eigenvalsSym2(M.data().data(), L);
    return Tensor::vector({L[0], L[1]});
  }
  assert(N == 3 && "eigenvalues supports 2x2 and 3x3 matrices");
  double L[3];
  eigenvalsSym3(M.data().data(), L);
  return Tensor::vector({L[0], L[1], L[2]});
}

Tensor eigenvectors(const Tensor &M) {
  assert(M.order() == 2 && M.shape()[0] == M.shape()[1] &&
         "eigenvectors needs a square matrix");
  int N = M.shape()[0];
  if (N == 2) {
    double L[2], V[4];
    eigensystemSym2(M.data().data(), L, V);
    return Tensor(Shape{2, 2}, {V[0], V[1], V[2], V[3]});
  }
  assert(N == 3 && "eigenvectors supports 2x2 and 3x3 matrices");
  double L[3], V[9];
  eigensystemSym3(M.data().data(), L, V);
  return Tensor(Shape{3, 3},
                {V[0], V[1], V[2], V[3], V[4], V[5], V[6], V[7], V[8]});
}

} // namespace diderot

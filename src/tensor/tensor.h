//===--- tensor/tensor.h - dynamically shaped tensor values ---------------===//
//
// Part of the Diderot-C++ reproduction (PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tensor values and the tensor operations Diderot exposes (Section 3.2 of
/// the paper): arithmetic, dot product (u • v), cross product (u × v), tensor
/// product (u ⊗ v), norm |u|, trace, determinant, inverse, transpose,
/// normalization, and identity.
///
/// This class is used by the compiler (constant folding, global evaluation)
/// and by the interpreter engine. Generated native code instead works on flat
/// arrays with all loops unrolled at compile time.
///
//===----------------------------------------------------------------------===//

#ifndef DIDEROT_TENSOR_TENSOR_H
#define DIDEROT_TENSOR_TENSOR_H

#include <cassert>
#include <string>
#include <vector>

#include "tensor/shape.h"

namespace diderot {

/// A tensor value: a shape plus row-major scalar components.
///
/// Components are stored in row-major (C) order: for a matrix, element
/// (i, j) lives at index i*cols + j.
class Tensor {
public:
  /// A scalar zero.
  Tensor() : Data(1, 0.0) {}

  /// Zero tensor of shape \p S.
  explicit Tensor(Shape S)
      : Shp(std::move(S)), Data(static_cast<size_t>(Shp.numComponents()), 0.0) {}

  /// Tensor with explicit components (row-major), checked against \p S.
  Tensor(Shape S, std::vector<double> Components)
      : Shp(std::move(S)), Data(std::move(Components)) {
    assert(static_cast<int>(Data.size()) == Shp.numComponents() &&
           "component count does not match shape");
  }

  /// A scalar.
  static Tensor scalar(double V) { return Tensor(Shape{}, {V}); }
  /// A d-vector from components.
  static Tensor vector(std::vector<double> Components);
  /// The n-by-n identity matrix (Diderot's identity[n]).
  static Tensor identity(int N);

  const Shape &shape() const { return Shp; }
  int order() const { return Shp.order(); }
  bool isScalar() const { return Shp.isScalar(); }

  /// Scalar payload of an order-0 tensor.
  double asScalar() const {
    assert(isScalar() && "asScalar on non-scalar tensor");
    return Data[0];
  }

  double operator[](int I) const { return Data[static_cast<size_t>(I)]; }
  double &operator[](int I) { return Data[static_cast<size_t>(I)]; }

  /// Matrix element access (order must be 2).
  double at(int I, int J) const {
    assert(order() == 2);
    return Data[static_cast<size_t>(I * Shp[1] + J)];
  }

  const std::vector<double> &data() const { return Data; }
  std::vector<double> &data() { return Data; }
  int numComponents() const { return static_cast<int>(Data.size()); }

  bool operator==(const Tensor &) const = default;

  /// Render for diagnostics, e.g. "[1, 0, 0]".
  std::string str() const;

private:
  Shape Shp;
  std::vector<double> Data;
};

//===----------------------------------------------------------------------===//
// Elementwise arithmetic
//===----------------------------------------------------------------------===//

/// Componentwise sum; shapes must agree.
Tensor add(const Tensor &A, const Tensor &B);
/// Componentwise difference; shapes must agree.
Tensor sub(const Tensor &A, const Tensor &B);
/// Negation.
Tensor neg(const Tensor &A);
/// Scale by a scalar.
Tensor scale(double S, const Tensor &A);
/// Componentwise product with a scalar divisor.
Tensor divide(const Tensor &A, double S);
/// Hadamard (componentwise) product via the `modulate` builtin.
Tensor modulate(const Tensor &A, const Tensor &B);

//===----------------------------------------------------------------------===//
// Products and contractions
//===----------------------------------------------------------------------===//

/// Diderot's inner product `u • v`: contracts the last axis of \p A with the
/// first axis of \p B (vector dot, matrix-vector, matrix-matrix, ...).
/// Scalars are handled by `scale` instead; both arguments must have order>=1.
Tensor dot(const Tensor &A, const Tensor &B);

/// Double-dot `A : B`: contracts the last two axes of A with the first two
/// of B (used for tensor invariants).
Tensor ddot(const Tensor &A, const Tensor &B);

/// Cross product. For 3-vectors yields a 3-vector; for 2-vectors yields the
/// scalar z-component (Diderot's 2-D cross).
Tensor cross(const Tensor &A, const Tensor &B);

/// Tensor (outer) product `u ⊗ v`.
Tensor outer(const Tensor &A, const Tensor &B);

/// Frobenius norm |u| (absolute value for scalars).
double norm(const Tensor &A);

/// u / |u|; returns u unchanged when |u| == 0 (matching the runtime's
/// guarded normalize).
Tensor normalize(const Tensor &A);

//===----------------------------------------------------------------------===//
// Matrix operations (order-2 tensors)
//===----------------------------------------------------------------------===//

/// Sum of the diagonal of a square matrix.
double trace(const Tensor &A);
/// Determinant of a 2x2 or 3x3 matrix.
double det(const Tensor &A);
/// Inverse of a 2x2 or 3x3 matrix. Asserts the matrix is square; returns the
/// adjugate / det without pivoting (fields of use are well-conditioned).
Tensor inverse(const Tensor &A);
/// Matrix transpose.
Tensor transpose(const Tensor &A);

//===----------------------------------------------------------------------===//
// Interpolation
//===----------------------------------------------------------------------===//

/// Linear interpolation lerp(a, b, t) = a + t*(b - a), componentwise.
Tensor lerp(const Tensor &A, const Tensor &B, double T);

} // namespace diderot

#endif // DIDEROT_TENSOR_TENSOR_H

//===--- tensor/shape.h - tensor shapes -----------------------------------===//
//
// Part of the Diderot-C++ reproduction (PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tensor shapes, following the paper's terminology: the *order* of a tensor
/// is the number of axes ("0-order tensors, or scalars, ... 1-order tensors,
/// or vectors, ... 2-order tensors, represented as matrices"), and every axis
/// extent is at least 2. The empty shape [] is a scalar.
///
//===----------------------------------------------------------------------===//

#ifndef DIDEROT_TENSOR_SHAPE_H
#define DIDEROT_TENSOR_SHAPE_H

#include <cassert>
#include <initializer_list>
#include <string>
#include <vector>

#include "support/strings.h"

namespace diderot {

/// The shape of a tensor value: a list of axis extents, each >= 2.
class Shape {
public:
  Shape() = default;
  Shape(std::initializer_list<int> Dims) : Dims(Dims) { checkValid(); }
  explicit Shape(std::vector<int> Dims) : Dims(std::move(Dims)) {
    checkValid();
  }

  /// Number of axes ("order" in the paper).
  int order() const { return static_cast<int>(Dims.size()); }
  bool isScalar() const { return Dims.empty(); }

  int operator[](int Axis) const {
    assert(Axis >= 0 && Axis < order() && "shape axis out of range");
    return Dims[static_cast<size_t>(Axis)];
  }

  const std::vector<int> &dims() const { return Dims; }

  /// Total number of scalar components (1 for a scalar).
  int numComponents() const {
    int N = 1;
    for (int D : Dims)
      N *= D;
    return N;
  }

  /// The shape with axis extent \p D appended: differentiation of a field
  /// with this range shape yields a field with shape `append(d)`.
  Shape append(int D) const {
    std::vector<int> Out = Dims;
    Out.push_back(D);
    return Shape(std::move(Out));
  }

  /// The shape with the final axis dropped (inverse of \c append).
  Shape dropLast() const {
    assert(!Dims.empty() && "dropLast on scalar shape");
    std::vector<int> Out(Dims.begin(), Dims.end() - 1);
    return Shape(std::move(Out));
  }

  int last() const {
    assert(!Dims.empty());
    return Dims.back();
  }
  int first() const {
    assert(!Dims.empty());
    return Dims.front();
  }

  bool operator==(const Shape &) const = default;

  /// Render as Diderot source syntax, e.g. "[3,3]" or "[]".
  std::string str() const {
    std::string Out = "[";
    for (size_t I = 0; I < Dims.size(); ++I) {
      if (I != 0)
        Out += ",";
      Out += strf(Dims[I]);
    }
    Out += "]";
    return Out;
  }

private:
  void checkValid() const {
#ifndef NDEBUG
    for (int D : Dims)
      assert(D >= 2 && "tensor axis extents must be at least 2");
#endif
  }

  std::vector<int> Dims;
};

} // namespace diderot

#endif // DIDEROT_TENSOR_SHAPE_H

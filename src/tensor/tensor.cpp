//===--- tensor/tensor.cpp ------------------------------------------------===//

#include "tensor/tensor.h"

#include <cmath>

#include "support/strings.h"

namespace diderot {

Tensor Tensor::vector(std::vector<double> Components) {
  int N = static_cast<int>(Components.size());
  assert(N >= 2 && "vectors have at least two components");
  return Tensor(Shape{N}, std::move(Components));
}

Tensor Tensor::identity(int N) {
  Tensor T{Shape{N, N}};
  for (int I = 0; I < N; ++I)
    T[I * N + I] = 1.0;
  return T;
}

std::string Tensor::str() const {
  if (isScalar())
    return formatReal(Data[0]);
  std::string Out = "[";
  for (size_t I = 0; I < Data.size(); ++I) {
    if (I != 0)
      Out += ", ";
    Out += formatReal(Data[I]);
  }
  Out += "]";
  return Out;
}

Tensor add(const Tensor &A, const Tensor &B) {
  assert(A.shape() == B.shape() && "shape mismatch in tensor add");
  Tensor Out = A;
  for (int I = 0; I < Out.numComponents(); ++I)
    Out[I] += B[I];
  return Out;
}

Tensor sub(const Tensor &A, const Tensor &B) {
  assert(A.shape() == B.shape() && "shape mismatch in tensor sub");
  Tensor Out = A;
  for (int I = 0; I < Out.numComponents(); ++I)
    Out[I] -= B[I];
  return Out;
}

Tensor neg(const Tensor &A) { return scale(-1.0, A); }

Tensor scale(double S, const Tensor &A) {
  Tensor Out = A;
  for (int I = 0; I < Out.numComponents(); ++I)
    Out[I] *= S;
  return Out;
}

Tensor divide(const Tensor &A, double S) {
  // Component-wise division, NOT scale(1.0 / S, ...): the native lowering
  // scalarizes tensor/scalar into per-component Div ops, and record/replay
  // digests require both engines to round identically.
  Tensor Out = A;
  for (int I = 0; I < Out.numComponents(); ++I)
    Out[I] /= S;
  return Out;
}

Tensor modulate(const Tensor &A, const Tensor &B) {
  assert(A.shape() == B.shape() && "shape mismatch in modulate");
  Tensor Out = A;
  for (int I = 0; I < Out.numComponents(); ++I)
    Out[I] *= B[I];
  return Out;
}

Tensor dot(const Tensor &A, const Tensor &B) {
  assert(A.order() >= 1 && B.order() >= 1 && "dot needs order >= 1 operands");
  int K = A.shape().last();
  assert(K == B.shape().first() && "contracted axes must agree");

  // Result shape: A's shape minus its last axis, then B's minus its first.
  std::vector<int> OutDims;
  for (int I = 0; I + 1 < A.order(); ++I)
    OutDims.push_back(A.shape()[I]);
  for (int I = 1; I < B.order(); ++I)
    OutDims.push_back(B.shape()[I]);
  Tensor Out{Shape(OutDims)};

  int ARows = A.numComponents() / K; // leading index of A
  int BCols = B.numComponents() / K; // trailing index of B
  for (int I = 0; I < ARows; ++I)
    for (int J = 0; J < BCols; ++J) {
      double Sum = 0.0;
      for (int L = 0; L < K; ++L)
        Sum += A[I * K + L] * B[L * BCols + J];
      Out[I * BCols + J] = Sum;
    }
  return Out;
}

Tensor ddot(const Tensor &A, const Tensor &B) {
  assert(A.order() >= 2 && B.order() >= 2 && "ddot needs order >= 2 operands");
  int K1 = A.shape()[A.order() - 2];
  int K2 = A.shape().last();
  assert(K1 == B.shape()[0] && K2 == B.shape()[1] &&
         "contracted axes must agree in ddot");
  int K = K1 * K2;
  std::vector<int> OutDims;
  for (int I = 0; I + 2 < A.order(); ++I)
    OutDims.push_back(A.shape()[I]);
  for (int I = 2; I < B.order(); ++I)
    OutDims.push_back(B.shape()[I]);
  Tensor Out{Shape(OutDims)};
  int ARows = A.numComponents() / K;
  int BCols = B.numComponents() / K;
  for (int I = 0; I < ARows; ++I)
    for (int J = 0; J < BCols; ++J) {
      double Sum = 0.0;
      for (int L = 0; L < K; ++L)
        Sum += A[I * K + L] * B[L * BCols + J];
      Out[I * BCols + J] = Sum;
    }
  return Out;
}

Tensor cross(const Tensor &A, const Tensor &B) {
  assert(A.order() == 1 && B.order() == 1 && A.shape() == B.shape() &&
         "cross product needs same-length vectors");
  if (A.shape()[0] == 3) {
    return Tensor::vector({A[1] * B[2] - A[2] * B[1],
                           A[2] * B[0] - A[0] * B[2],
                           A[0] * B[1] - A[1] * B[0]});
  }
  assert(A.shape()[0] == 2 && "cross product is defined for 2- and 3-vectors");
  return Tensor::scalar(A[0] * B[1] - A[1] * B[0]);
}

Tensor outer(const Tensor &A, const Tensor &B) {
  std::vector<int> OutDims;
  for (int D : A.shape().dims())
    OutDims.push_back(D);
  for (int D : B.shape().dims())
    OutDims.push_back(D);
  Tensor Out{Shape(OutDims)};
  int NB = B.numComponents();
  for (int I = 0; I < A.numComponents(); ++I)
    for (int J = 0; J < NB; ++J)
      Out[I * NB + J] = A[I] * B[J];
  return Out;
}

double norm(const Tensor &A) {
  double Sum = 0.0;
  for (int I = 0; I < A.numComponents(); ++I)
    Sum += A[I] * A[I];
  return std::sqrt(Sum);
}

Tensor normalize(const Tensor &A) {
  double N = norm(A);
  if (N == 0.0)
    return A;
  // divide(), not scale(1/N): must round exactly like the scalarized
  // per-component Div the native lowering emits (see divide above).
  return divide(A, N);
}

double trace(const Tensor &A) {
  assert(A.order() == 2 && A.shape()[0] == A.shape()[1] &&
         "trace needs a square matrix");
  int N = A.shape()[0];
  double Sum = 0.0;
  for (int I = 0; I < N; ++I)
    Sum += A.at(I, I);
  return Sum;
}

double det(const Tensor &A) {
  assert(A.order() == 2 && A.shape()[0] == A.shape()[1] &&
         "det needs a square matrix");
  int N = A.shape()[0];
  if (N == 2)
    return A.at(0, 0) * A.at(1, 1) - A.at(0, 1) * A.at(1, 0);
  assert(N == 3 && "det supports 2x2 and 3x3 matrices");
  return A.at(0, 0) * (A.at(1, 1) * A.at(2, 2) - A.at(1, 2) * A.at(2, 1)) -
         A.at(0, 1) * (A.at(1, 0) * A.at(2, 2) - A.at(1, 2) * A.at(2, 0)) +
         A.at(0, 2) * (A.at(1, 0) * A.at(2, 1) - A.at(1, 1) * A.at(2, 0));
}

Tensor inverse(const Tensor &A) {
  assert(A.order() == 2 && A.shape()[0] == A.shape()[1] &&
         "inverse needs a square matrix");
  int N = A.shape()[0];
  double D = det(A);
  Tensor Out{A.shape()};
  if (N == 2) {
    Out[0] = A.at(1, 1) / D;
    Out[1] = -A.at(0, 1) / D;
    Out[2] = -A.at(1, 0) / D;
    Out[3] = A.at(0, 0) / D;
    return Out;
  }
  assert(N == 3 && "inverse supports 2x2 and 3x3 matrices");
  auto Cof = [&](int I, int J) {
    int I0 = (I + 1) % 3, I1 = (I + 2) % 3;
    int J0 = (J + 1) % 3, J1 = (J + 2) % 3;
    return A.at(I0, J0) * A.at(I1, J1) - A.at(I0, J1) * A.at(I1, J0);
  };
  for (int I = 0; I < 3; ++I)
    for (int J = 0; J < 3; ++J)
      Out[I * 3 + J] = Cof(J, I) / D; // adjugate is the transposed cofactors
  return Out;
}

Tensor transpose(const Tensor &A) {
  assert(A.order() == 2 && "transpose needs a matrix");
  int R = A.shape()[0], C = A.shape()[1];
  Tensor Out{Shape{C, R}};
  for (int I = 0; I < R; ++I)
    for (int J = 0; J < C; ++J)
      Out[J * R + I] = A.at(I, J);
  return Out;
}

Tensor lerp(const Tensor &A, const Tensor &B, double T) {
  assert(A.shape() == B.shape() && "shape mismatch in lerp");
  Tensor Out = A;
  for (int I = 0; I < Out.numComponents(); ++I)
    Out[I] += T * (B[I] - A[I]);
  return Out;
}

} // namespace diderot

//===--- tensor/eigen.h - symmetric eigensystems ---------------------------===//
//
// Part of the Diderot-C++ reproduction (PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tensor-typed wrappers around the closed-form symmetric eigensystem
/// routines of tensor/eigen_raw.h — the `evals` / `evecs` builtins that
/// Diderot's ridge-detection benchmark relies on. Eigenvalues are returned
/// descending; eigenvectors are unit length, in matching order.
///
//===----------------------------------------------------------------------===//

#ifndef DIDEROT_TENSOR_EIGEN_H
#define DIDEROT_TENSOR_EIGEN_H

#include "tensor/eigen_raw.h"
#include "tensor/tensor.h"

namespace diderot {

//===----------------------------------------------------------------------===//
// Tensor-typed wrappers (used by the interpreter and constant folder)
//===----------------------------------------------------------------------===//

/// Eigenvalues of a symmetric 2x2 or 3x3 matrix, descending, as a vector.
Tensor eigenvalues(const Tensor &M);

/// Unit eigenvectors of a symmetric 2x2 or 3x3 matrix: row i of the result
/// is the eigenvector for the i-th (descending) eigenvalue.
Tensor eigenvectors(const Tensor &M);

} // namespace diderot

#endif // DIDEROT_TENSOR_EIGEN_H

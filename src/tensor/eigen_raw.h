//===--- tensor/eigen_raw.h - raw symmetric eigensystem templates ----------===//
//
// Part of the Diderot-C++ reproduction (PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Closed-form symmetric 2x2/3x3 eigendecomposition on raw arrays, templated
/// over the scalar type. STL-only so generated native code (which must not
/// depend on the compiler's libraries) can include it directly; the
/// Tensor-typed wrappers live in tensor/eigen.h.
///
//===----------------------------------------------------------------------===//

#ifndef DIDEROT_TENSOR_EIGEN_RAW_H
#define DIDEROT_TENSOR_EIGEN_RAW_H

#include <algorithm>
#include <cmath>

namespace diderot {

/// Eigenvalues of the symmetric 2x2 matrix {{M[0],M[1]},{M[2],M[3]}},
/// descending, into L[0..1].
template <typename Real> inline void eigenvalsSym2(const Real *M, Real *L) {
  Real Mean = (M[0] + M[3]) / Real(2);
  Real Diff = (M[0] - M[3]) / Real(2);
  Real Disc = std::sqrt(Diff * Diff + M[1] * M[2]);
  L[0] = Mean + Disc;
  L[1] = Mean - Disc;
}

/// Eigenvalues and unit eigenvectors of a symmetric 2x2 matrix; V is a 2x2
/// row-major matrix whose row i is the eigenvector for L[i].
template <typename Real>
inline void eigensystemSym2(const Real *M, Real *L, Real *V) {
  eigenvalsSym2(M, L);
  for (int I = 0; I < 2; ++I) {
    // (M - L I) v = 0: take the larger-magnitude row's orthogonal complement.
    Real R0[2] = {M[0] - L[I], M[1]};
    Real R1[2] = {M[2], M[3] - L[I]};
    Real N0 = R0[0] * R0[0] + R0[1] * R0[1];
    Real N1 = R1[0] * R1[0] + R1[1] * R1[1];
    Real VX, VY;
    if (N0 >= N1 && N0 > Real(0)) {
      VX = -R0[1];
      VY = R0[0];
    } else if (N1 > Real(0)) {
      VX = -R1[1];
      VY = R1[0];
    } else { // multiple of identity: any basis works
      VX = (I == 0) ? Real(1) : Real(0);
      VY = (I == 0) ? Real(0) : Real(1);
    }
    Real N = std::sqrt(VX * VX + VY * VY);
    V[2 * I + 0] = VX / N;
    V[2 * I + 1] = VY / N;
  }
}

/// Eigenvalues of a symmetric 3x3 row-major matrix M, descending, into
/// L[0..2]. Uses the trigonometric (Cardano) method, which is the approach
/// Teem's ell library takes.
template <typename Real> inline void eigenvalsSym3(const Real *M, Real *L) {
  const Real A = M[0], B = M[1], C = M[2];
  const Real D = M[4], E = M[5];
  const Real F = M[8];
  Real Q = (A + D + F) / Real(3);
  // Shifted matrix K = M - q*I; p = sqrt(tr(K^2)/6).
  Real KA = A - Q, KD = D - Q, KF = F - Q;
  Real P2 = (KA * KA + KD * KD + KF * KF + Real(2) * (B * B + C * C + E * E)) /
            Real(6);
  Real P = std::sqrt(P2);
  if (P == Real(0)) {
    L[0] = L[1] = L[2] = Q;
    return;
  }
  // det(K)/2 / p^3 = cos(3 theta)
  Real DetK = KA * (KD * KF - E * E) - B * (B * KF - E * C) +
              C * (B * E - KD * C);
  Real R = DetK / (Real(2) * P * P2);
  R = std::clamp(R, Real(-1), Real(1));
  Real Phi = std::acos(R) / Real(3);
  const Real TwoPiOver3 = Real(2.0943951023931953);
  L[0] = Q + Real(2) * P * std::cos(Phi);
  L[2] = Q + Real(2) * P * std::cos(Phi + TwoPiOver3);
  L[1] = Real(3) * Q - L[0] - L[2];
}

/// Unit-length eigenvector of symmetric 3x3 M for eigenvalue Lam, written to
/// V[0..2]. Uses cross products of rows of (M - Lam I), picking the most
/// linearly independent pair; falls back to coordinate axes for repeated
/// eigenvalues.
template <typename Real>
inline void eigenvecSym3(const Real *M, Real Lam, Real *V) {
  Real R0[3] = {M[0] - Lam, M[1], M[2]};
  Real R1[3] = {M[3], M[4] - Lam, M[5]};
  Real R2[3] = {M[6], M[7], M[8] - Lam};
  auto CrossInto = [](const Real *X, const Real *Y, Real *Out) {
    Out[0] = X[1] * Y[2] - X[2] * Y[1];
    Out[1] = X[2] * Y[0] - X[0] * Y[2];
    Out[2] = X[0] * Y[1] - X[1] * Y[0];
  };
  Real C01[3], C02[3], C12[3];
  CrossInto(R0, R1, C01);
  CrossInto(R0, R2, C02);
  CrossInto(R1, R2, C12);
  auto Sq = [](const Real *X) {
    return X[0] * X[0] + X[1] * X[1] + X[2] * X[2];
  };
  Real N01 = Sq(C01), N02 = Sq(C02), N12 = Sq(C12);
  const Real *Best = C01;
  Real BestN = N01;
  if (N02 > BestN) {
    Best = C02;
    BestN = N02;
  }
  if (N12 > BestN) {
    Best = C12;
    BestN = N12;
  }
  if (BestN <= Real(0)) {
    // (M - Lam I) has rank <= 1: pick any vector orthogonal to its image.
    // Find the largest row; if all rows vanish the matrix is Lam*I.
    const Real *Rows[3] = {R0, R1, R2};
    int BigRow = -1;
    Real BigN = Real(0);
    for (int I = 0; I < 3; ++I)
      if (Sq(Rows[I]) > BigN) {
        BigN = Sq(Rows[I]);
        BigRow = I;
      }
    if (BigRow < 0) {
      V[0] = Real(1);
      V[1] = Real(0);
      V[2] = Real(0);
      return;
    }
    // Orthogonal complement of that row: cross with the least-aligned axis.
    Real Axis[3] = {Real(0), Real(0), Real(0)};
    const Real *Rw = Rows[BigRow];
    int Min = 0;
    if (std::abs(Rw[1]) < std::abs(Rw[Min]))
      Min = 1;
    if (std::abs(Rw[2]) < std::abs(Rw[Min]))
      Min = 2;
    Axis[Min] = Real(1);
    Real Tmp[3];
    CrossInto(Rw, Axis, Tmp);
    Real N = std::sqrt(Sq(Tmp));
    V[0] = Tmp[0] / N;
    V[1] = Tmp[1] / N;
    V[2] = Tmp[2] / N;
    return;
  }
  Real N = std::sqrt(BestN);
  V[0] = Best[0] / N;
  V[1] = Best[1] / N;
  V[2] = Best[2] / N;
}

/// Full symmetric 3x3 eigensystem: eigenvalues descending in L[0..2],
/// matching unit eigenvectors as rows of the row-major 3x3 matrix V.
template <typename Real>
inline void eigensystemSym3(const Real *M, Real *L, Real *V) {
  eigenvalsSym3(M, L);
  eigenvecSym3(M, L[0], V + 0);
  eigenvecSym3(M, L[2], V + 6);
  // Middle eigenvector: orthogonal to the other two (robust for clustered
  // eigenvalues).
  V[3] = V[7] * V[2] - V[8] * V[1];
  V[4] = V[8] * V[0] - V[6] * V[2];
  V[5] = V[6] * V[1] - V[7] * V[0];
  Real N = std::sqrt(V[3] * V[3] + V[4] * V[4] + V[5] * V[5]);
  if (N > Real(0)) {
    V[3] /= N;
    V[4] /= N;
    V[5] /= N;
  } else {
    eigenvecSym3(M, L[1], V + 3);
  }
}

} // namespace diderot

#endif // DIDEROT_TENSOR_EIGEN_RAW_H

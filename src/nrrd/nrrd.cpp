//===--- nrrd/nrrd.cpp ----------------------------------------------------===//

#include "nrrd/nrrd.h"

#include <cassert>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#include "support/strings.h"

namespace diderot {

size_t nrrdTypeSize(NrrdType T) {
  switch (T) {
  case NrrdType::UChar:
    return 1;
  case NrrdType::Short:
  case NrrdType::UShort:
    return 2;
  case NrrdType::Int:
  case NrrdType::UInt:
  case NrrdType::Float:
    return 4;
  case NrrdType::Double:
    return 8;
  }
  return 0;
}

const char *nrrdTypeName(NrrdType T) {
  switch (T) {
  case NrrdType::UChar:
    return "unsigned char";
  case NrrdType::Short:
    return "short";
  case NrrdType::UShort:
    return "unsigned short";
  case NrrdType::Int:
    return "int";
  case NrrdType::UInt:
    return "unsigned int";
  case NrrdType::Float:
    return "float";
  case NrrdType::Double:
    return "double";
  }
  return "?";
}

namespace {

/// Map a NRRD header type token to NrrdType. NRRD has many aliases.
bool parseTypeName(const std::string &S, NrrdType &T) {
  if (S == "unsigned char" || S == "uchar" || S == "uint8" || S == "uint8_t") {
    T = NrrdType::UChar;
    return true;
  }
  if (S == "short" || S == "short int" || S == "signed short" ||
      S == "int16" || S == "int16_t") {
    T = NrrdType::Short;
    return true;
  }
  if (S == "unsigned short" || S == "ushort" || S == "uint16" ||
      S == "uint16_t") {
    T = NrrdType::UShort;
    return true;
  }
  if (S == "int" || S == "signed int" || S == "int32" || S == "int32_t") {
    T = NrrdType::Int;
    return true;
  }
  if (S == "unsigned int" || S == "uint" || S == "uint32" || S == "uint32_t") {
    T = NrrdType::UInt;
    return true;
  }
  if (S == "float") {
    T = NrrdType::Float;
    return true;
  }
  if (S == "double") {
    T = NrrdType::Double;
    return true;
  }
  return false;
}

/// Axis-count cap for parsed files. NRRD itself allows 16; anything larger
/// in the wild is a malformed or hostile header.
constexpr size_t MaxNrrdAxes = 16;

/// Parse a decimal integer with full-token validation (no std::stoi, which
/// throws on garbage). Returns false on trailing junk or out-of-range.
bool parseBoundedInt(const std::string &S, long Lo, long Hi, int &Out) {
  std::string T = trimString(S);
  if (T.empty())
    return false;
  char *End = nullptr;
  errno = 0;
  long V = std::strtol(T.c_str(), &End, 10);
  if (errno == ERANGE || End != T.c_str() + T.size() || V < Lo || V > Hi)
    return false;
  Out = static_cast<int>(V);
  return true;
}

/// Compute the byte count implied by Sizes and Type, rejecting non-positive
/// axis sizes and any overflow of elements or elements*typeSize. Runs before
/// any allocation so a hostile header cannot trigger a huge or wrapped-size
/// buffer.
Status checkedByteCount(const std::vector<int> &Sizes, NrrdType Type,
                        size_t &Elems, size_t &Bytes) {
  if (Sizes.empty())
    return Status::error("NRRD header missing sizes");
  if (Sizes.size() > MaxNrrdAxes)
    return Status::error(
        strf("NRRD dimension ", Sizes.size(), " exceeds limit ", MaxNrrdAxes));
  Elems = 1;
  for (int S : Sizes) {
    if (S < 1)
      return Status::error(strf("bad NRRD axis size ", S));
    if (__builtin_mul_overflow(Elems, static_cast<size_t>(S), &Elems))
      return Status::error("NRRD sample count overflows size_t");
  }
  if (__builtin_mul_overflow(Elems, nrrdTypeSize(Type), &Bytes))
    return Status::error("NRRD byte count overflows size_t");
  return Status::ok();
}

/// Parse a vector literal like "(1.0,0.0,0.0)"; "none" yields empty.
bool parseSpaceVector(const std::string &Tok, std::vector<double> &Out) {
  Out.clear();
  std::string S = trimString(Tok);
  if (S == "none")
    return true;
  if (S.size() < 2 || S.front() != '(' || S.back() != ')')
    return false;
  for (const std::string &Part : splitString(S.substr(1, S.size() - 2), ',')) {
    char *End = nullptr;
    std::string P = trimString(Part);
    double V = std::strtod(P.c_str(), &End);
    if (End == P.c_str())
      return false;
    Out.push_back(V);
  }
  return true;
}

} // namespace

size_t Nrrd::numSamples() const {
  size_t N = 1;
  for (int S : Sizes)
    N *= static_cast<size_t>(S);
  return N;
}

double Nrrd::sampleAsDouble(size_t I) const {
  const unsigned char *P = Data.data() + I * nrrdTypeSize(Type);
  switch (Type) {
  case NrrdType::UChar:
    return *P;
  case NrrdType::Short: {
    int16_t V;
    std::memcpy(&V, P, 2);
    return V;
  }
  case NrrdType::UShort: {
    uint16_t V;
    std::memcpy(&V, P, 2);
    return V;
  }
  case NrrdType::Int: {
    int32_t V;
    std::memcpy(&V, P, 4);
    return V;
  }
  case NrrdType::UInt: {
    uint32_t V;
    std::memcpy(&V, P, 4);
    return V;
  }
  case NrrdType::Float: {
    float V;
    std::memcpy(&V, P, 4);
    return V;
  }
  case NrrdType::Double: {
    double V;
    std::memcpy(&V, P, 8);
    return V;
  }
  }
  return 0.0;
}

void Nrrd::setSampleFromDouble(size_t I, double V) {
  unsigned char *P = Data.data() + I * nrrdTypeSize(Type);
  auto ClampTo = [&](double Lo, double Hi) {
    return std::min(Hi, std::max(Lo, std::round(V)));
  };
  switch (Type) {
  case NrrdType::UChar: {
    *P = static_cast<unsigned char>(ClampTo(0, 255));
    return;
  }
  case NrrdType::Short: {
    int16_t W = static_cast<int16_t>(ClampTo(-32768, 32767));
    std::memcpy(P, &W, 2);
    return;
  }
  case NrrdType::UShort: {
    uint16_t W = static_cast<uint16_t>(ClampTo(0, 65535));
    std::memcpy(P, &W, 2);
    return;
  }
  case NrrdType::Int: {
    int32_t W = static_cast<int32_t>(ClampTo(-2147483648.0, 2147483647.0));
    std::memcpy(P, &W, 4);
    return;
  }
  case NrrdType::UInt: {
    uint32_t W = static_cast<uint32_t>(ClampTo(0, 4294967295.0));
    std::memcpy(P, &W, 4);
    return;
  }
  case NrrdType::Float: {
    float W = static_cast<float>(V);
    std::memcpy(P, &W, 4);
    return;
  }
  case NrrdType::Double: {
    std::memcpy(P, &V, 8);
    return;
  }
  }
}

void Nrrd::allocate() { Data.assign(expectedByteCount(), 0); }

Result<Nrrd> nrrdRead(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return Result<Nrrd>::error(strf("cannot open NRRD file '", Path, "'"));
  std::ostringstream SS;
  SS << In.rdbuf();
  Result<Nrrd> R = nrrdParse(SS.str());
  if (!R.isOk())
    return Result<Nrrd>::error(strf(Path, ": ", R.message()));
  return R;
}

Result<Nrrd> nrrdParse(const std::string &Contents) {
  using RN = Result<Nrrd>;
  // Header is newline-separated up to the first blank line.
  size_t Pos = Contents.find('\n');
  if (Pos == std::string::npos)
    return RN::error("truncated NRRD file");
  std::string Magic = trimString(Contents.substr(0, Pos));
  if (!startsWith(Magic, "NRRD000"))
    return RN::error("missing NRRD magic");

  Nrrd N;
  int DeclaredDim = -1;
  std::string Encoding = "raw";
  std::string Endian = "little";
  size_t LineStart = Pos + 1;
  size_t DataStart = std::string::npos;
  while (LineStart < Contents.size()) {
    size_t LineEnd = Contents.find('\n', LineStart);
    if (LineEnd == std::string::npos)
      LineEnd = Contents.size();
    std::string Line = Contents.substr(LineStart, LineEnd - LineStart);
    if (!Line.empty() && Line.back() == '\r')
      Line.pop_back();
    LineStart = LineEnd + 1;
    if (Line.empty()) {
      DataStart = LineStart;
      break;
    }
    if (Line[0] == '#')
      continue;
    size_t Colon = Line.find(": ");
    if (Colon == std::string::npos) {
      // Could be a "key:=value" pair; we ignore those.
      if (Line.find(":=") != std::string::npos)
        continue;
      return RN::error(strf("malformed NRRD header line '", Line, "'"));
    }
    std::string Key = trimString(Line.substr(0, Colon));
    std::string Value = trimString(Line.substr(Colon + 2));
    if (Key == "type") {
      if (!parseTypeName(Value, N.Type))
        return RN::error(strf("unsupported NRRD type '", Value, "'"));
    } else if (Key == "dimension") {
      if (!parseBoundedInt(Value, 1, static_cast<long>(MaxNrrdAxes),
                           DeclaredDim))
        return RN::error(strf("bad NRRD dimension '", Value, "'"));
    } else if (Key == "sizes") {
      N.Sizes.clear();
      std::istringstream VS(Value);
      int S;
      while (VS >> S) {
        if (N.Sizes.size() >= MaxNrrdAxes)
          return RN::error(
              strf("NRRD sizes line has more than ", MaxNrrdAxes, " axes"));
        N.Sizes.push_back(S);
      }
      if (!VS.eof())
        return RN::error(strf("bad NRRD sizes line '", Value, "'"));
    } else if (Key == "encoding") {
      Encoding = Value;
    } else if (Key == "endian") {
      Endian = Value;
    } else if (Key == "space dimension") {
      if (!parseBoundedInt(Value, 0, static_cast<long>(MaxNrrdAxes),
                           N.SpaceDim))
        return RN::error(strf("bad NRRD space dimension '", Value, "'"));
    } else if (Key == "space") {
      // Named spaces: count the words separated by '-' (e.g. left-posterior-
      // superior is 3-D).
      N.SpaceDim =
          static_cast<int>(splitString(Value, '-').size());
    } else if (Key == "space directions") {
      N.SpaceDirections.clear();
      std::istringstream VS(Value);
      std::string Tok;
      while (VS >> Tok) {
        std::vector<double> Dir;
        if (!parseSpaceVector(Tok, Dir))
          return RN::error(strf("bad space direction '", Tok, "'"));
        if (!Dir.empty())
          N.SpaceDirections.push_back(std::move(Dir));
      }
    } else if (Key == "space origin") {
      if (!parseSpaceVector(Value, N.SpaceOrigin))
        return RN::error(strf("bad space origin '", Value, "'"));
    } else if (Key == "content") {
      N.Content = Value;
    } else {
      // Unknown fields (spacings, kinds, ...) are tolerated.
    }
  }
  if (N.Sizes.empty())
    return RN::error("NRRD header missing sizes");
  if (DeclaredDim >= 0 && DeclaredDim != N.dimension())
    return RN::error(strf("NRRD dimension ", DeclaredDim, " does not match ",
                          N.dimension(), " axis sizes"));
  if (DataStart == std::string::npos)
    return RN::error("NRRD header not terminated by blank line");
  if (Encoding == "raw" && Endian != "little")
    return RN::error("only little-endian raw NRRD data is supported");

  // All size arithmetic is checked before any buffer is allocated.
  size_t Elems = 0, Expected = 0;
  if (Status SZ = checkedByteCount(N.Sizes, N.Type, Elems, Expected);
      !SZ.isOk())
    return RN::error(SZ.message());
  size_t Remaining = Contents.size() - DataStart;
  if (Encoding == "raw") {
    if (Remaining < Expected)
      return RN::error(strf("NRRD data truncated: expected ", Expected,
                            " bytes, found ", Remaining));
    N.Data.assign(Contents.begin() + static_cast<long>(DataStart),
                  Contents.begin() + static_cast<long>(DataStart + Expected));
  } else if (Encoding == "ascii" || Encoding == "text" || Encoding == "txt") {
    // Each ascii sample needs at least one digit plus a separator, so a
    // payload of R bytes can hold at most (R+1)/2 samples. Reject before
    // allocating so a tiny file with huge declared sizes cannot reserve
    // gigabytes only to fail during the read loop.
    if (Elems > Remaining / 2 + 1)
      return RN::error(strf("NRRD ascii data truncated: ", Elems,
                            " samples declared, ", Remaining,
                            " bytes of text"));
    N.allocate();
    std::istringstream DS(Contents.substr(DataStart));
    for (size_t I = 0; I < Elems; ++I) {
      double V;
      if (!(DS >> V))
        return RN::error(strf("NRRD ascii data truncated at sample ", I));
      N.setSampleFromDouble(I, V);
    }
  } else {
    return RN::error(strf("unsupported NRRD encoding '", Encoding, "'"));
  }
  if (N.SpaceDim != 0 &&
      static_cast<int>(N.SpaceDirections.size()) > N.dimension())
    return RN::error("more space directions than axes");
  return N;
}

Result<std::string> nrrdSerialize(const Nrrd &N, const std::string &Encoding) {
  if (N.Sizes.empty())
    return Result<std::string>::error("cannot write NRRD with no axes");
  if (N.Data.size() != N.expectedByteCount())
    return Result<std::string>::error(
        strf("NRRD data size mismatch: have ", N.Data.size(), ", expected ",
             N.expectedByteCount()));
  std::ostringstream OS;
  OS << "NRRD0005\n";
  OS << "# generated by diderot-cpp\n";
  if (!N.Content.empty())
    OS << "content: " << N.Content << "\n";
  OS << "type: " << nrrdTypeName(N.Type) << "\n";
  OS << "dimension: " << N.dimension() << "\n";
  OS << "sizes:";
  for (int S : N.Sizes)
    OS << " " << S;
  OS << "\n";
  if (N.SpaceDim > 0) {
    OS << "space dimension: " << N.SpaceDim << "\n";
    OS << "space directions:";
    int NonSpatial = N.dimension() - static_cast<int>(N.SpaceDirections.size());
    for (int I = 0; I < NonSpatial; ++I)
      OS << " none";
    for (const std::vector<double> &Dir : N.SpaceDirections) {
      OS << " (";
      for (size_t I = 0; I < Dir.size(); ++I)
        OS << (I ? "," : "") << formatReal(Dir[I]);
      OS << ")";
    }
    OS << "\n";
    if (!N.SpaceOrigin.empty()) {
      OS << "space origin: (";
      for (size_t I = 0; I < N.SpaceOrigin.size(); ++I)
        OS << (I ? "," : "") << formatReal(N.SpaceOrigin[I]);
      OS << ")\n";
    }
  }
  OS << "encoding: " << Encoding << "\n";
  if (Encoding == "raw")
    OS << "endian: little\n";
  OS << "\n";
  if (Encoding == "raw") {
    OS.write(reinterpret_cast<const char *>(N.Data.data()),
             static_cast<std::streamsize>(N.Data.size()));
  } else if (Encoding == "ascii") {
    for (size_t I = 0; I < N.numSamples(); ++I)
      OS << formatReal(N.sampleAsDouble(I)) << "\n";
  } else {
    return Result<std::string>::error(
        strf("unsupported NRRD encoding '", Encoding, "'"));
  }
  return OS.str();
}

Status nrrdWrite(const Nrrd &N, const std::string &Path,
                 const std::string &Encoding) {
  Result<std::string> S = nrrdSerialize(N, Encoding);
  if (!S.isOk())
    return Status::error(S.message());
  std::ofstream Out(Path, std::ios::binary);
  if (!Out)
    return Status::error(strf("cannot open '", Path, "' for writing"));
  Out << *S;
  if (!Out)
    return Status::error(strf("write to '", Path, "' failed"));
  return Status::ok();
}

} // namespace diderot

//===--- nrrd/nrrd.h - NRRD file format I/O --------------------------------===//
//
// Part of the Diderot-C++ reproduction (PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reader and writer for a practical subset of the NRRD ("nearly raw raster
/// data") file format, which Diderot's runtime uses for all image input and
/// output (Section 5.5: "loading image data from Nrrd files and writing the
/// program's output to either a text or Nrrd file"). NRRD carries the
/// orientation metadata (space directions / space origin) that defines the
/// index-space to world-space transform M of Section 5.3.
///
/// Supported: attached-data files ("NRRD000x" magic followed by header lines
/// and raw data), types {uchar, short, ushort, int, uint, float, double},
/// encodings {raw, ascii}, little-endian raw data, and the orientation
/// fields. This covers everything the original system's examples use.
///
//===----------------------------------------------------------------------===//

#ifndef DIDEROT_NRRD_NRRD_H
#define DIDEROT_NRRD_NRRD_H

#include <cstdint>
#include <string>
#include <vector>

#include "support/result.h"

namespace diderot {

/// Sample types a NRRD file can carry.
enum class NrrdType : uint8_t {
  UChar,
  Short,
  UShort,
  Int,
  UInt,
  Float,
  Double,
};

/// Size in bytes of one sample of \p T.
size_t nrrdTypeSize(NrrdType T);
/// The NRRD header spelling of \p T ("unsigned char", "short", ...).
const char *nrrdTypeName(NrrdType T);

/// An in-memory NRRD: header metadata plus the sample buffer. Axis 0 is the
/// fastest axis, as in the file format.
class Nrrd {
public:
  NrrdType Type = NrrdType::Float;
  /// Axis sizes, fastest first.
  std::vector<int> Sizes;
  /// Dimension of world space; 0 when the file carries no orientation. When
  /// present, equals the number of *spatial* axes (trailing axes); leading
  /// non-spatial axes hold tensor components.
  int SpaceDim = 0;
  /// Per spatial axis: the world-space column vector of the index-to-world
  /// transform (SpaceDim entries each). Indexed [spatialAxis][component].
  std::vector<std::vector<double>> SpaceDirections;
  /// World-space position of index (0,...,0).
  std::vector<double> SpaceOrigin;
  /// Optional content description (round-tripped).
  std::string Content;

  /// Raw sample bytes, axis 0 fastest, little-endian.
  std::vector<unsigned char> Data;

  int dimension() const { return static_cast<int>(Sizes.size()); }
  size_t numSamples() const;
  size_t expectedByteCount() const {
    return numSamples() * nrrdTypeSize(Type);
  }

  /// Read sample \p I (flat index) converted to double.
  double sampleAsDouble(size_t I) const;
  /// Store \p V into sample \p I with conversion (and clamping for the
  /// integer types).
  void setSampleFromDouble(size_t I, double V);

  /// Allocate the data buffer to match Type and Sizes (zero-filled).
  void allocate();
};

/// Parse a NRRD file from disk.
Result<Nrrd> nrrdRead(const std::string &Path);
/// Parse a NRRD from an in-memory buffer (the full file contents).
Result<Nrrd> nrrdParse(const std::string &Contents);

/// Write \p N to \p Path. \p Encoding is "raw" or "ascii".
Status nrrdWrite(const Nrrd &N, const std::string &Path,
                 const std::string &Encoding = "raw");
/// Serialize \p N to a string (a complete NRRD file image).
Result<std::string> nrrdSerialize(const Nrrd &N,
                                  const std::string &Encoding = "raw");

} // namespace diderot

#endif // DIDEROT_NRRD_NRRD_H
